// Banking: the worked example of Section 2 — two accounts A and B, a
// transfer transaction, a withdrawal with an audit counter, and an auditor
// computing S = A + B. Shows a consistency-violating interleaving, the
// fixpoint hierarchy on the 1260-schedule space, and the optimal
// schedulers at each information level.
package main

import (
	"fmt"
	"log"

	"optcc/internal/core"
	"optcc/internal/fixpoint"
	"optcc/internal/info"
	"optcc/internal/workload"
)

func main() {
	sys := workload.Banking()
	fmt.Print(sys)
	fmt.Printf("integrity constraints: %s\n\n", sys.IC.Name)

	// The paper's initial state.
	init := core.DB{"A": 150, "B": 50, "S": 200, "C": 0}
	fmt.Printf("initial state %v consistent: %v\n", init, sys.Consistent(init))

	// A serial run: audit after transfer and withdrawal.
	final, err := core.ExecSerialOrder(sys, []int{0, 1, 2}, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial T1;T2;T3 → %v consistent: %v\n", final, sys.Consistent(final))

	// An interleaving in which the auditor reads A before the transfer
	// and B after it: the classic inconsistent audit.
	h := core.Schedule{
		{Tx: 2, Idx: 0}, // T3 reads A = 150
		{Tx: 0, Idx: 0}, // T1 reads A
		{Tx: 0, Idx: 1}, // T1 deposits into B
		{Tx: 0, Idx: 2}, // T1 withdraws from A
		{Tx: 2, Idx: 1}, // T3 reads B = 150 (post-transfer!)
		{Tx: 2, Idx: 2}, // T3 writes S = 300
		{Tx: 2, Idx: 3}, // T3 clears C
		{Tx: 1, Idx: 0}, // T2 withdraws from B
		{Tx: 1, Idx: 1}, // T2 increments C
	}
	bad, err := core.Exec(sys, h, init)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaved audit  → %v consistent: %v\n\n", bad, sys.Consistent(bad))

	// The whole hierarchy on |H| = 1260 schedules.
	counts, err := fixpoint.Classify(sys, fixpoint.Options{WithCorrect: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(counts.Table())

	// What each optimal scheduler does with the bad history.
	fmt.Println()
	for _, level := range []info.Level{info.Minimum, info.Syntactic, info.Maximum} {
		oracle, err := info.NewOracle(sys, level)
		if err != nil {
			log.Fatal(err)
		}
		in, err := oracle.InFixpoint(h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimal @ %-10s passes inconsistent audit undelayed: %v\n", oracle.Level(), in)
	}
}
