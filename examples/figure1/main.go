// Figure 1: the paper's separating example between serializability and
// weak serializability. The history (T11, T21, T12) is NOT serializable
// under Herbrand semantics, yet with the actual interpretations
// (+1, ×2 / +1) it produces exactly the state of the serial history
// (T21, T11, T12) — so a scheduler that knows the semantics (but not the
// integrity constraints) may pass it.
package main

import (
	"fmt"
	"log"

	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/workload"
	"optcc/internal/wsr"
)

func main() {
	sys := workload.Figure1()
	fmt.Print(sys)
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	fmt.Printf("history h = %v\n\n", h)

	// Herbrand view: h differs from both serial histories.
	checker, err := herbrand.NewChecker(sys)
	if err != nil {
		log.Fatal(err)
	}
	f, err := checker.Final(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Herbrand value of x under h:      %s\n", f["x"])
	for _, order := range [][]int{{0, 1}, {1, 0}} {
		sf, err := checker.Final(core.SerialSchedule(sys.Format(), order))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Herbrand value of x under %v: %s\n", order, sf["x"])
	}
	sr, _, err := checker.Serializable(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("h ∈ SR(T): %v\n\n", sr)

	// Concrete view: from any x, h computes 2(x+2) = 2x+4, the same as the
	// serial history T2;T1.
	for _, x := range []core.Value{0, 3, 10} {
		got, err := core.Exec(sys, h, core.DB{"x": x})
		if err != nil {
			log.Fatal(err)
		}
		serial, err := core.ExecSerialOrder(sys, []int{1, 0}, core.DB{"x": x})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("x0=%-3d h → %v   T2;T1 → %v\n", x, got, serial)
	}

	wc, err := wsr.NewChecker(sys, wsr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	weak, witness, err := wc.Weak(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nh ∈ WSR(T): %v (witness: serial order %v)\n", weak, witness)
	fmt.Println("⇒ the weak serialization scheduler (Theorem 4) passes h; the serialization scheduler (Theorem 3) must delay it.")
}
