// Quickstart: define a transaction system, check schedules against the
// paper's fixpoint classes, and run an online scheduler over a request
// history.
package main

import (
	"fmt"
	"log"

	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/info"
	"optcc/internal/online"
	"optcc/internal/schedule"
)

func main() {
	// A two-transaction system: T1 moves 10 from x to y, T2 doubles x.
	// The integrity constraint says the total x+y is preserved modulo
	// doubling — here simply x ≥ 0.
	last := func(l []core.Value) core.Value { return l[len(l)-1] }
	sys := (&core.System{
		Name: "quickstart",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) - 10 }},
				{Var: "y", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 10 }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
		},
		IC: &core.IC{
			Name:     "x>=0",
			Check:    func(db core.DB) bool { return db["x"] >= 0 },
			Initials: func() []core.DB { return []core.DB{{"x": 100, "y": 0}} },
		},
	}).Normalize()

	fmt.Print(sys)
	fmt.Printf("|H| = %v schedules\n\n", schedule.Count(sys.Format()))

	// Classify every history: serial? Herbrand-serializable? correct?
	checker, err := herbrand.NewChecker(sys)
	if err != nil {
		log.Fatal(err)
	}
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		sr, witness, err := checker.Serializable(h)
		if err != nil {
			log.Fatal(err)
		}
		correct, err := core.ScheduleCorrect(sys, h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s serial=%-5v SR=%-5v (witness %v) correct=%v\n",
			h, h.IsSerial(), sr, witness, correct)
		return true
	})

	// The optimal scheduler for complete syntactic information (Theorem 3)
	// passes exactly SR(T); everything else is rearranged serially.
	oracle, err := info.NewOracle(sys, info.Syntactic)
	if err != nil {
		log.Fatal(err)
	}
	h := core.Schedule{{Tx: 1, Idx: 0}, {Tx: 0, Idx: 0}, {Tx: 0, Idx: 1}}
	out, err := oracle.Apply(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal syntactic scheduler: S(%v) = %v\n", h, out)

	// An online SGT scheduler replaying the same history.
	res, err := online.Replay(sys, online.NewSGT(), h, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online SGT: undelayed=%v delays=%d output=%v\n",
		res.Undelayed, res.Delays, res.FinalSchedule(sys))
}
