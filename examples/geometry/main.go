// Geometry: the progress-space view of locking (Section 5.3). Renders the
// forbidden blocks and deadlock region of a 2PL-locked pair (Figure 3),
// walks a progress curve through the space, and checks homotopy
// serializability and the 2PL common-point property (Figure 4).
package main

import (
	"fmt"
	"log"

	"optcc/internal/core"
	"optcc/internal/geometry"
	"optcc/internal/locking"
)

func main() {
	// Two transactions locking x and y in opposite orders.
	sys := (&core.System{
		Name: "figure3",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update},
				{Var: "y", Kind: core.Update},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "y", Kind: core.Update},
				{Var: "x", Kind: core.Update},
			}},
		},
	}).Normalize()
	ls, err := locking.TwoPhase{}.Transform(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ls.Txs[0].String())
	fmt.Print(ls.Txs[1].String())

	sp, err := geometry.NewSpace(ls, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	// A progress curve: T1 moves three ops, then T2 runs to completion,
	// then T1 finishes.
	moves := []int{0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0}
	path, err := sp.PathFromMoves(moves)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sp.Render(path))

	fmt.Printf("\nblocks: %v\n", sp.Blocks)
	fmt.Printf("deadlock region D: %v\n", sp.DeadlockRegion())
	ok, err := sp.PathSerializable(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("path homotopic to a serial schedule: %v\n", ok)
	data, err := sp.DataProjection(moves)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data schedule realized: %v\n", data)
	if u, has := sp.CommonPoint(); has {
		fmt.Printf("2PL common point u = %v — all blocks connected, no separating path exists: %v\n",
			u, !sp.SeparatingPathExists())
	}
}
