// Locksim: the Section 6 environment live — goroutine users submitting
// banking transactions to a central scheduler, comparing waiting time and
// throughput across schedulers whose fixpoint sets grow with the
// information they use (serial → strict 2PL → SGT → OCC).
package main

import (
	"fmt"
	"log"
	"time"

	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/report"
	"optcc/internal/sim"
	"optcc/internal/workload"
)

func main() {
	const jobs, users = 24, 6
	template := workload.Banking()
	schedulers := []online.Scheduler{
		online.NewSerial(),
		online.NewStrict2PL(lockmgr.WoundWait),
		online.NewConservative2PL(),
		online.NewSGTAborting(),
		online.NewTO(),
		online.NewOCC(),
	}
	t := report.NewTable(
		fmt.Sprintf("banking, %d jobs, %d users, 100µs steps", jobs, users),
		"scheduler", "committed", "aborts", "waits", "mean-wait-µs", "p95-wait-µs", "throughput-tx/s")
	for _, sched := range schedulers {
		inst := sim.Instantiate(template, jobs)
		m, err := sim.Run(sim.Config{
			System:   inst,
			Sched:    sched,
			Users:    users,
			ExecTime: 100 * time.Microsecond,
			Seed:     1979,
		})
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(sched.Name(), m.Committed, m.Aborts, m.WaitNs.N(),
			m.WaitNs.Mean()/1e3, m.WaitNs.Percentile(95)/1e3, m.Throughput)
	}
	fmt.Print(t)
	fmt.Println("\nRicher fixpoint sets mean fewer imposed waits — the paper's information/performance trade-off, measured.")
}
