module optcc

go 1.24
