// Command cclint is the project's multichecker: it runs the analyzer suite
// from internal/lint over the module and reports every finding not covered
// by a //cclint:ignore directive. It is wired into `make lint` and the CI
// lint job; the exit status is 1 when there are findings, 2 when the load
// or an analyzer itself fails, 0 on a clean run.
//
// Usage:
//
//	cclint [-only name,name] [-list] [packages]
//
// Packages default to ./... relative to the current directory. -only
// restricts the run to a comma-separated subset of analyzers; -list prints
// the suite with one-line docs and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"optcc/internal/lint"
	"optcc/internal/lint/analysis"
	"optcc/internal/lint/loader"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cclint [-only name,name] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Analyzers()
	if *list {
		for _, a := range suite {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return
	}

	selected := suite
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "cclint: unknown analyzer %q (run cclint -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cclint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cclint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cclint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
