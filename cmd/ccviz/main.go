// Command ccviz renders the paper's figures as ASCII: the locked
// transactions of Figures 2 and 5, the progress space with blocks and
// deadlock region of Figure 3, and the geometric panels of Figure 4.
//
// Usage:
//
//	ccviz -fig 3            # render one figure
//	ccviz                   # render figures 2–5
package main

import (
	"flag"
	"fmt"
	"os"

	"optcc/internal/experiments"
)

func main() {
	figFlag := flag.Int("fig", 0, "figure number (2–5); 0 renders all")
	flag.Parse()

	figs := map[int]func() (*experiments.Result, error){
		1: experiments.F1WeaklySerializableHistory,
		2: experiments.F2TwoPhaseTransformation,
		3: experiments.F3ProgressSpace,
		4: experiments.F4GeometryOfLocking,
		5: experiments.F5TwoPhasePrimeTransformation,
	}
	render := func(n int) {
		f, ok := figs[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "ccviz: no figure %d (have 1–5)\n", n)
			os.Exit(2)
		}
		res, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccviz: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
	}
	if *figFlag != 0 {
		render(*figFlag)
		return
	}
	for n := 1; n <= 5; n++ {
		render(n)
	}
}
