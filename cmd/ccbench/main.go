// Command ccbench runs the paper-reproduction experiments (T1–T4 theorems,
// F1–F5 figures, E1–E15 measurements) and prints their tables.
//
// Usage:
//
//	ccbench                 # run everything
//	ccbench -exp E1,E4      # run selected experiments
//	ccbench -md             # emit markdown (the source of EXPERIMENTS.md)
//	ccbench -json           # emit machine-readable results (BENCH_*.json)
//	ccbench -list           # list experiment ids
//	ccbench -exp E8 -shards 1,8,32 -users 16   # custom scalability sweep
//	ccbench -exp E9 -backend kv                # real-storage execution sweep
//	ccbench -exp E10 -batch 1,16,64 -users 8   # batched-dispatch sweep
//	ccbench -exp E11 -shards 1,4 -railstripes 8  # native-TO / rail sweep
//	ccbench -exp E12 -readfrac 0.5,0.99 -users 16  # multiversion read sweep
//	ccbench -exp E13 -fsync always,group -batch 1,8,32  # durable-commit sweep
//	ccbench -exp E14 -checkpoint 0,8192,65536  # fuzzy-checkpoint footprint sweep
//	ccbench -exp E15 -shards 1,4,16 -users 16  # native SGT/OCC vs sharded sweep
//
// Profiling and allocation measurement (the perf workflow behind the
// zero-allocation hot path, DESIGN.md "Memory discipline"):
//
//	ccbench -exp E10 -cpuprofile cpu.pprof   # CPU profile of the sweep
//	ccbench -exp E10 -memprofile mem.pprof   # heap profile at exit
//	ccbench -exp E8,E10,E11 -allocstats      # per-experiment allocator pressure
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"optcc/internal/experiments"
	"optcc/internal/report"
	"optcc/internal/storage"
)

// jsonTable / jsonResult are the machine-readable rendering of an
// experiment result: the same tables the text mode prints, as data. The
// schema is deliberately flat (strings as rendered) so BENCH_*.json files
// diff cleanly across PRs.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonResult struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Text   string      `json:"text,omitempty"`
	Tables []jsonTable `json:"tables"`
}

// parseIntList parses "1,4,16" into positive ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("count %d out of range", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFracList parses "0.5,0.9,0.99" into fractions in [0,1].
func parseFracList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("fraction %v out of [0,1]", f)
		}
		out = append(out, f)
	}
	return out, nil
}

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		mdFlag      = flag.Bool("md", false, "emit markdown instead of plain tables")
		jsonFlag    = flag.Bool("json", false, "emit machine-readable JSON instead of plain tables")
		listFlag    = flag.Bool("list", false, "list experiment ids and exit")
		shardsFlag  = flag.String("shards", "", "comma-separated shard counts for the E8/E10/E11/E15 sweeps (E8 default 1,4,16; E10 default 4; E11/E15 default 1,4)")
		usersFlag   = flag.String("users", "", "comma-separated user counts for the E8/E10 sweeps (E8 default 4,8; E10 default 16,48); the first entry also sets E11/E15's users")
		batchFlag   = flag.String("batch", "", "comma-separated batch sizes for the E10 batched-dispatch sweep (default 1,8,32)")
		stripesFlag = flag.Int("railstripes", 0, "ordering-rail stripe count for the E11/E15 sweeps (0 = one per shard)")
		fracFlag    = flag.String("readfrac", "", "comma-separated read fractions for the E12 multiversion sweep (default 0.5,0.9,0.99)")
		fsyncFlag   = flag.String("fsync", "", "comma-separated fsync policies for the E13 durable-commit sweep (always|group|never; default always,group,never)")
		ckptFlag    = flag.String("checkpoint", "", "comma-separated checkpoint intervals (WAL bytes) for the E14 sweep; 0 = checkpointing off (default 0,8192,65536)")
		backendFlag = flag.String("backend", "", "storage backend for the E9/E10/E11/E15 real-execution sweeps (kv|noop; default kv)")
		cpuFlag     = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memFlag     = flag.String("memprofile", "", "write a heap profile to this file after the experiments finish")
		allocFlag   = flag.Bool("allocstats", false, "report per-experiment allocator pressure (heap objects and MB allocated) after the tables")
	)
	flag.Parse()
	// stopCPU flushes and closes the CPU profile; it must also run on the
	// error exits below (os.Exit skips defers), or the profile of a failed
	// run — the one most worth inspecting — would be truncated.
	stopCPU := func() {}
	if *cpuFlag != "" {
		f, err := os.Create(*cpuFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		stopped := false
		stopCPU = func() {
			if !stopped {
				stopped = true
				pprof.StopCPUProfile()
				f.Close()
			}
		}
		defer stopCPU()
	}
	if *backendFlag != "" {
		if _, err := experiments.NewBackend(*backendFlag, 1, 0); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: bad -backend: %v\n", err)
			os.Exit(2)
		}
		experiments.E9Config.Backend = *backendFlag
		experiments.E10Config.Backend = *backendFlag
		experiments.E11Config.Backend = *backendFlag
		experiments.E15Config.Backend = *backendFlag
	}
	if *shardsFlag != "" {
		sweep, err := parseIntList(*shardsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: bad -shards: %v\n", err)
			os.Exit(2)
		}
		experiments.E8Config.Shards = sweep
		experiments.E10Config.Shards = sweep
		experiments.E11Config.Shards = sweep
		experiments.E15Config.Shards = sweep
		experiments.E12Config.Shards = sweep[0]
		experiments.E13Config.Shards = sweep[0]
	}
	if *usersFlag != "" {
		sweep, err := parseIntList(*usersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: bad -users: %v\n", err)
			os.Exit(2)
		}
		experiments.E8Config.Users = sweep
		experiments.E10Config.Users = sweep
		experiments.E11Config.Users = sweep[0]
		experiments.E15Config.Users = sweep[0]
		experiments.E12Config.Users = sweep[0]
		experiments.E13Config.Users = sweep[0]
	}
	if *batchFlag != "" {
		sweep, err := parseIntList(*batchFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: bad -batch: %v\n", err)
			os.Exit(2)
		}
		experiments.E10Config.Batches = sweep
		experiments.E13Config.Batches = sweep
	}
	if *stripesFlag > 0 {
		experiments.E11Config.RailStripes = *stripesFlag
		experiments.E15Config.RailStripes = *stripesFlag
	}
	if *fracFlag != "" {
		sweep, err := parseFracList(*fracFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: bad -readfrac: %v\n", err)
			os.Exit(2)
		}
		experiments.E12Config.ReadFracs = sweep
	}
	if *fsyncFlag != "" {
		var sweep []string
		for _, part := range strings.Split(*fsyncFlag, ",") {
			p := strings.TrimSpace(part)
			if _, err := storage.ParseFsyncPolicy(p); err != nil {
				fmt.Fprintf(os.Stderr, "ccbench: bad -fsync: %v\n", err)
				os.Exit(2)
			}
			sweep = append(sweep, p)
		}
		experiments.E13Config.Fsyncs = sweep
	}
	if *ckptFlag != "" {
		// Not parseIntList: 0 is a legal interval here (it is the
		// checkpointing-off control column of the sweep).
		var sweep []int
		for _, part := range strings.Split(*ckptFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 0 {
				fmt.Fprintf(os.Stderr, "ccbench: bad -checkpoint: %q is not a non-negative byte count\n", strings.TrimSpace(part))
				os.Exit(2)
			}
			sweep = append(sweep, n)
		}
		experiments.E14Config.Intervals = sweep
	}

	runners, order := experiments.All()
	if *listFlag {
		fmt.Println(strings.Join(order, " "))
		return
	}
	var ids []string
	if *expFlag == "all" || *expFlag == "" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "ccbench: unknown experiment %q (known: %s)\n", id, strings.Join(order, " "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if *mdFlag && !*jsonFlag {
		fmt.Println("# EXPERIMENTS — paper vs measured")
		fmt.Println()
		fmt.Println("Generated by `go run ./cmd/ccbench -md`.")
		fmt.Println()
	}
	// -allocstats meters each experiment with report.AllocMeter; the table
	// goes to stderr so -json on stdout stays machine-readable.
	var allocTable *report.Table
	if *allocFlag {
		allocTable = report.NewTable("allocator pressure (process-wide runtime/metrics deltas)",
			"experiment", "allocs", "alloc-MB")
	}
	var jsonOut []jsonResult
	for _, id := range ids {
		var am report.AllocMeter
		if *allocFlag {
			am.Start()
		}
		res, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %s failed: %v\n", id, err)
			stopCPU()
			os.Exit(1)
		}
		if *allocFlag {
			allocs, bytes := am.Delta()
			allocTable.AddRow(id, allocs, float64(bytes)/(1<<20))
		}
		switch {
		case *jsonFlag:
			// Tables starts non-nil so table-less experiments render as []
			// rather than null — the schema must diff cleanly across PRs.
			jr := jsonResult{ID: res.ID, Title: res.Title, Text: res.Text, Tables: []jsonTable{}}
			for _, t := range res.Tables {
				jr.Tables = append(jr.Tables, jsonTable{Title: t.Title, Headers: t.Headers(), Rows: t.Rows()})
			}
			jsonOut = append(jsonOut, jr)
		case *mdFlag:
			fmt.Println(res.Markdown())
		default:
			fmt.Println(res.String())
		}
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: %v\n", err)
			stopCPU()
			os.Exit(1)
		}
	}
	if *allocFlag {
		fmt.Fprintln(os.Stderr, allocTable.String())
	}
	if *memFlag != "" {
		// A GC first, so the heap profile shows live retention rather than
		// garbage awaiting collection.
		runtime.GC()
		f, err := os.Create(*memFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: -memprofile: %v\n", err)
			stopCPU()
			os.Exit(2)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ccbench: -memprofile: %v\n", err)
			stopCPU()
			os.Exit(2)
		}
		f.Close()
	}
}
