// Command benchdiff compares two machine-readable benchmark snapshots
// (the BENCH_PR*.json files emitted by `ccbench -json`, one per PR) and
// prints the per-experiment throughput deltas, so a PR's measured
// before/after effect on the runtime is one `make bench-diff` away.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// Tables are matched by experiment id and table title, rows by position
// (the sweeps are deterministic grids, so row i of a table is the same
// configuration in both snapshots; the first cell labels it). Every
// column whose header contains "tx/s" is treated as a throughput column.
// Experiments or tables present in only one snapshot are tolerated and
// reported — `new` for entries only in the new snapshot (a freshly added
// experiment), `gone` for entries only in the old one (a removed or
// renamed experiment) — so snapshots from PRs that add or drop
// experiments still diff cleanly. The exit status is always 0 — the
// deltas are a measurement, not a gate; the enforced regression gates are
// the allocation ceilings in internal/sim.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonResult struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Tables []jsonTable `json:"tables"`
}

func load(path string) ([]jsonResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []jsonResult
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// throughputCol returns the index of the throughput column, or -1.
func throughputCol(headers []string) int {
	for i, h := range headers {
		if strings.Contains(h, "tx/s") {
			return i
		}
	}
	return -1
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldPath, newPath := os.Args[1], os.Args[2]
	oldRes, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRes, err := load(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	oldByID := map[string]jsonResult{}
	for _, r := range oldRes {
		oldByID[r.ID] = r
	}

	newByID := map[string]bool{}
	for _, r := range newRes {
		newByID[r.ID] = true
	}

	fmt.Printf("throughput delta: %s → %s\n\n", oldPath, newPath)
	for _, nr := range newRes {
		or, ok := oldByID[nr.ID]
		if !ok {
			fmt.Printf("%s: new (only in %s), no baseline to diff\n", nr.ID, newPath)
			continue
		}
		oldTables := map[string]jsonTable{}
		for _, t := range or.Tables {
			oldTables[t.Title] = t
		}
		newTables := map[string]bool{}
		for _, t := range nr.Tables {
			newTables[t.Title] = true
		}
		for _, ot := range or.Tables {
			if !newTables[ot.Title] {
				fmt.Printf("%s: table %q gone (only in %s)\n", nr.ID, ot.Title, oldPath)
			}
		}
		var deltas []float64
		for _, nt := range nr.Tables {
			ot, ok := oldTables[nt.Title]
			if !ok {
				fmt.Printf("%s: table %q new (only in %s), no baseline to diff\n", nr.ID, nt.Title, newPath)
				continue
			}
			col := throughputCol(nt.Headers)
			if col < 0 || throughputCol(ot.Headers) != col {
				continue // no comparable throughput column
			}
			fmt.Printf("%s · %s\n", nr.ID, nt.Title)
			for i, row := range nt.Rows {
				if i >= len(ot.Rows) || col >= len(row) || col >= len(ot.Rows[i]) {
					break
				}
				nv, err1 := strconv.ParseFloat(row[col], 64)
				ov, err2 := strconv.ParseFloat(ot.Rows[i][col], 64)
				if err1 != nil || err2 != nil || ov == 0 {
					continue
				}
				d := 100 * (nv - ov) / ov
				deltas = append(deltas, d)
				fmt.Printf("  %-42s %12.1f → %12.1f  %+7.1f%%\n", row[0], ov, nv, d)
			}
		}
		if len(deltas) > 0 {
			sum := 0.0
			for _, d := range deltas {
				sum += d
			}
			fmt.Printf("%s mean delta: %+.1f%% over %d rows\n\n", nr.ID, sum/float64(len(deltas)), len(deltas))
		}
	}
	for _, or := range oldRes {
		if !newByID[or.ID] {
			fmt.Printf("%s: gone (only in %s)\n", or.ID, oldPath)
		}
	}
}
