// Command ccsim runs the goroutine-per-user concurrency-control simulator
// (the Section 6 environment) for one workload × scheduler configuration
// and prints the latency decomposition and throughput.
//
// Usage:
//
//	ccsim -workload banking -sched 2pl-woundwait -jobs 64 -users 8
//	ccsim -workload tree -sched treelock -jobs 32 -users 8 -exec 200us
//	ccsim -workload random -sched 2pl-woundwait -shards 16 -users 16
//	ccsim -workload banking -sched 2pl-woundwait -backend kv -valuesize 4096
//	ccsim -workload hotshard -sched 2pl-woundwait -shards 4 -batch 16 -backend kv
//	ccsim -workload disjoint -sched cto -shards 4 -users 16
//	ccsim -workload crosspairs -sched csgt -shards 4 -users 16
//	ccsim -workload readmostly -readfrac 0.9 -sched cocc -shards 4 -users 16
//	ccsim -workload crosspairs -sched to -shards 4 -railstripes 8
//	ccsim -workload readmostly -readfrac 0.95 -sched mv -shards 4 -backend kv
//	ccsim -workload disjoint -sched 2pl-woundwait -shards 4 -backend disk -fsync group -batch 16
//	ccsim -workload banking -sched 2pl-woundwait -backend disk -dir /tmp/ccwal -fsync always
//	ccsim -workload disjoint -sched 2pl-woundwait -shards 4 -backend disk -checkpoint 262144
//
// -shards 0 (default) runs the classic centralized scheduler goroutine;
// -shards N >= 1 runs the concurrent engine: per-shard dispatch loops over
// hash-partitioned scheduler state. -sched cto / cto-thomas select the
// natively concurrent timestamp-ordering scheduler (lock-free sharded
// atomic timestamp table, no shard mutexes, no ordering rail); it always
// runs on the dispatch loops. -sched mv selects the multiversion/optimistic
// scheduler (write claims with first-writer-wins over the same timestamp
// table); with the kv backend's version chains, read-only transactions are
// served from pinned lock-free storage snapshots and never enter the grant
// machinery at all. -sched csgt / csgt-delay select the natively concurrent
// serialization-graph scheduler (striped union-find component graph,
// lock-free zero-conflict grants; abort-on-cycle and delay-on-cycle) and
// -sched cocc the natively concurrent optimistic scheduler (epoch-based
// backward validation, no global critical section); like cto they always
// run on the dispatch loops. For single-threaded schedulers behind the Sharded
// combinator, -railstripes sets how many lock stripes the cross-shard
// ordering rail is partitioned into (0 = one per shard; 1 = the
// single-mutex degenerate).
//
// -workload readmostly generates the read-fraction workload: -readfrac of
// the jobs are read-only (all-Read), the rest increment writers, all
// skewed onto a small hot set — the E12 regime.
//
// -batch N > 1 turns on batched dispatch: each loop drains up to N queued
// requests (the bound adapts between 1 and N by observed backlog — AIMD —
// so N is a cap) and decides them in one scheduler critical section. On
// the concurrent engine commits always flow through the storage
// group-commit pipeline (undo logs discarded and locks released per
// group, asynchronously to the committing users); with -batch 1 (default,
// the unbatched runtime) the groups are mostly singletons.
//
// -backend kv executes every granted step against the sharded in-memory
// storage backend (payload size -valuesize) instead of only sleeping -exec:
// execution time becomes real work, aborts roll the store back, and the
// final state is checked against the serial replay of the committed
// schedule (the check is guaranteed to pass for serial and the strict-2PL
// family; non-strict schedulers may legitimately diverge — see
// internal/storage).
//
// -backend disk executes against the durable WAL backend (append-only
// checksummed segments in -dir, a fresh temporary directory by default,
// removed after the run; a named -dir persists and is reported). -fsync
// picks the durability policy: always (one fsync per commit), group (one
// per drained commit group — pair with -batch and -shards to grow the
// groups), never (leave flushing to the OS). Strict schedulers (serial,
// the 2PL family) run the eager redo+undo mode; everything else runs
// write-buffered, where uncommitted writes never reach the log — that is
// what makes non-strict schedulers recoverable (see internal/storage).
//
// -checkpoint N arms the disk backend's background fuzzy checkpointer:
// every N bytes of WAL growth it snapshots the store to a checkpoint file
// (tmp → sync → rename), records a durable marker in the log, and retires
// the sealed segments wholly behind the snapshot — bounding the on-disk
// footprint and recovery time of a long run. Commits proceed during the
// checkpoint; checkpoint failures retry with backoff and, if persistent,
// disable checkpointing (reported as degraded) without ever touching the
// commit path. 0 (default) disables it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/sim"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// schedulerFactory returns a constructor for the named scheduler plus, for
// the 2PL family, the lock policy (so -shards can pick the natively sharded
// implementation over the generic wrapper).
func schedulerFactory(name string) (factory func() online.Scheduler, policy lockmgr.Policy, is2PL, ok bool) {
	switch name {
	case "serial":
		return func() online.Scheduler { return online.NewSerial() }, 0, false, true
	case "2pl", "2pl-detect":
		return func() online.Scheduler { return online.NewStrict2PL(lockmgr.Detect) }, lockmgr.Detect, true, true
	case "2pl-nowait":
		return func() online.Scheduler { return online.NewStrict2PL(lockmgr.NoWait) }, lockmgr.NoWait, true, true
	case "2pl-waitdie":
		return func() online.Scheduler { return online.NewStrict2PL(lockmgr.WaitDie) }, lockmgr.WaitDie, true, true
	case "2pl-woundwait":
		return func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }, lockmgr.WoundWait, true, true
	case "2pl-conservative":
		return func() online.Scheduler { return online.NewConservative2PL() }, 0, false, true
	case "sgt":
		return func() online.Scheduler { return online.NewSGTAborting() }, 0, false, true
	case "to":
		return func() online.Scheduler { return online.NewTO() }, 0, false, true
	case "to-thomas":
		return func() online.Scheduler { return online.NewTOThomas() }, 0, false, true
	case "occ":
		return func() online.Scheduler { return online.NewOCC() }, 0, false, true
	case "treelock":
		return func() online.Scheduler { return online.NewTreeLock() }, 0, false, true
	default:
		return nil, 0, false, false
	}
}

// schedulerByName builds the scheduler. shards == 0 keeps the classic
// single-threaded scheduler behind the centralized scheduler goroutine;
// shards >= 1 selects the concurrent engine with per-shard dispatch loops —
// natively sharded strict 2PL for the 2PL family, native timestamp
// ordering for cto/cto-thomas, the native serialization graph for
// csgt/csgt-delay, native optimistic validation for cocc, and the Sharded
// combinator (with the striped cross-shard ordering rail, railStripes
// wide; 0 = as wide as the shard count) for everything else. The natively
// concurrent schedulers (cto, mv, csgt, cocc) always run on the dispatch
// loops, so -shards 0 behaves as one shard.
func schedulerByName(name string, shards, railStripes int) (online.Scheduler, bool) {
	switch name {
	case "cto":
		return online.NewConcurrentTO(max(shards, 1)), true
	case "cto-thomas":
		return online.NewConcurrentTOThomas(max(shards, 1)), true
	case "mv":
		return online.NewConcurrentMV(max(shards, 1)), true
	case "csgt":
		return online.NewConcurrentSGTAborting(max(shards, 1)), true
	case "csgt-delay":
		return online.NewConcurrentSGT(max(shards, 1)), true
	case "cocc":
		return online.NewConcurrentOCC(max(shards, 1)), true
	}
	factory, policy, is2PL, ok := schedulerFactory(name)
	if !ok {
		return nil, false
	}
	if shards <= 0 {
		return factory(), true
	}
	if is2PL {
		return online.NewConcurrentStrict2PL(policy, shards), true
	}
	if railStripes > 0 {
		return online.NewShardedRail(shards, railStripes, factory), true
	}
	return online.NewSharded(shards, factory), true
}

func workloadByName(name string, seed int64, jobs int, readFrac float64) (*core.System, bool) {
	switch name {
	case "banking":
		return workload.Banking(), true
	case "figure1":
		return workload.Figure1(), true
	case "cross":
		return workload.Cross(), true
	case "chain":
		return workload.Chain(), true
	case "lostupdate":
		return workload.LostUpdate(), true
	case "hotshard":
		return workload.HotShard(), true
	case "disjoint":
		// Sized to the job count: instantiating more jobs than template
		// transactions would cycle and alias variables, silently breaking
		// the workload's defining conflict-freeness.
		return workload.Disjoint(max(jobs, 1), 3), true
	case "crosspairs":
		// Sized to the job count (two transactions per pair) for the same
		// reason as disjoint: cycling the template would alias pair
		// variables and break the pairwise-only-conflict shape.
		return workload.CrossPairs(max(jobs, 2) / 2), true
	case "readmostly":
		// Sized to the job count: the read-only/writer mix is a per-
		// transaction property, so cycling a smaller template would skew
		// the requested -readfrac.
		return workload.ReadMostly(workload.ReadMostlyConfig{
			Jobs: max(jobs, 1), Steps: 4, ReadFrac: readFrac}, seed), true
	case "tree":
		return workload.PathWorkload(4, 4, seed), true
	case "random":
		return workload.Random(workload.RandomConfig{NumTxs: 4, MaxSteps: 3, NumVars: 4, Hotspot: 1}, seed), true
	default:
		return nil, false
	}
}

func main() {
	var (
		wl        = flag.String("workload", "banking", "banking|figure1|cross|chain|lostupdate|hotshard|disjoint|crosspairs|readmostly|tree|random")
		sc        = flag.String("sched", "2pl-woundwait", "serial|2pl|2pl-nowait|2pl-waitdie|2pl-woundwait|2pl-conservative|sgt|to|to-thomas|cto|cto-thomas|csgt|csgt-delay|cocc|mv|occ|treelock")
		jobs      = flag.Int("jobs", 32, "transaction instances to run")
		users     = flag.Int("users", 8, "concurrent user goroutines")
		shards    = flag.Int("shards", 0, "shard count for the concurrent engine (0 = centralized scheduler goroutine)")
		stripes   = flag.Int("railstripes", 0, "lock stripes of the cross-shard ordering rail (0 = one per shard)")
		batchSz   = flag.Int("batch", 1, "max requests decided per dispatch critical section; > 1 also enables group commit on the concurrent engine")
		backend   = flag.String("backend", "none", "storage backend executing granted steps (none|kv|noop|disk)")
		valueSize = flag.Int("valuesize", 256, "payload bytes per stored record (kv backend)")
		dir       = flag.String("dir", "", "WAL directory for the disk backend (empty = fresh temp dir, removed after the run)")
		fsync     = flag.String("fsync", "group", "fsync policy for the disk backend (always|group|never)")
		ckpt      = flag.Int("checkpoint", 0, "WAL bytes between background fuzzy checkpoints of the disk backend (0 = off)")
		exec      = flag.Duration("exec", 100*time.Microsecond, "extra simulated per-step execution time")
		think     = flag.Duration("think", 0, "max per-step user think time")
		seed      = flag.Int64("seed", 1979, "random seed")
		readFrac  = flag.Float64("readfrac", 0.9, "fraction of read-only transactions in the readmostly workload")
	)
	flag.Parse()

	if *readFrac < 0 || *readFrac > 1 {
		fmt.Fprintf(os.Stderr, "ccsim: -readfrac %v out of [0,1]\n", *readFrac)
		os.Exit(2)
	}
	template, ok := workloadByName(*wl, *seed, *jobs, *readFrac)
	if !ok {
		fmt.Fprintf(os.Stderr, "ccsim: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	sched, ok := schedulerByName(*sc, *shards, *stripes)
	if !ok {
		fmt.Fprintf(os.Stderr, "ccsim: unknown scheduler %q\n", *sc)
		os.Exit(2)
	}
	var kv *storage.KV
	var be storage.Backend
	if *backend != "none" {
		s := *shards
		if s < 1 {
			s = 1
		}
		// Payload-buffer recycling is only sound under strict execution
		// (storage.Config.Recycle), so enable it exactly for the strict
		// scheduler family — mv's read-write transactions use unpinned
		// chain reads, so it stays off there too. The disk backend uses
		// the same strictness split for its execution mode: eager
		// redo+undo logging for strict schedulers, write-buffered for
		// everything else (an uncommitted write must never reach the log
		// when a non-strict scheduler may still order around it).
		strict := *sc == "serial" || strings.HasPrefix(*sc, "2pl")
		policy, err := storage.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsim: %v\n", err)
			os.Exit(2)
		}
		be, err = storage.New(*backend, storage.Config{
			Shards: s, ValueSize: *valueSize, Recycle: strict,
			Dir: *dir, Fsync: policy, Buffered: !strict,
			CheckpointBytes: *ckpt,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsim: %v\n", err)
			os.Exit(2)
		}
		kv, _ = be.(*storage.KV)
		if d, ok := be.(*storage.Disk); ok {
			if *dir == "" {
				defer d.Destroy()
			} else {
				defer d.Close()
			}
		}
	}
	inst := sim.Instantiate(template, *jobs)
	m, err := sim.Run(sim.Config{
		System:    inst,
		Sched:     sched,
		Backend:   be,
		Users:     *users,
		Batch:     *batchSz,
		ExecTime:  *exec,
		ThinkTime: *think,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ccsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload=%s scheduler=%s jobs=%d users=%d batch=%d backend=%s exec=%v\n", *wl, sched.Name(), *jobs, *users, *batchSz, *backend, *exec)
	fmt.Printf("committed      %d\n", m.Committed)
	fmt.Printf("aborts         %d\n", m.Aborts)
	fmt.Printf("deadlockBreaks %d\n", m.DeadlockBreaks)
	if m.CommitGroups > 0 {
		fmt.Printf("groupCommit    %d groups, mean size %.2f\n", m.CommitGroups, m.GroupSize())
	}
	fmt.Printf("elapsed        %v\n", m.Elapsed)
	fmt.Printf("throughput     %.0f tx/s\n", m.Throughput)
	fmt.Printf("scheduling     %s\n", nsSummary(m.SchedNs.Summary()))
	fmt.Printf("waiting        %s\n", nsSummary(m.WaitNs.Summary()))
	fmt.Printf("tx latency     %s\n", nsSummary(m.TxLatencyNs.Summary()))
	if be != nil {
		fmt.Printf("execution      %s\n", nsSummary(m.ExecNs.Summary()))
		if kv != nil {
			st := kv.Stats()
			fmt.Printf("backend        %s reads=%d writes=%d rollbacks=%d bytesRead=%d bytesWritten=%d\n",
				kv.Name(), st.Reads, st.Writes, st.Rollbacks, st.BytesRead, st.BytesWritten)
			if st.SnapshotReads > 0 || st.VersionsGCed > 0 {
				fmt.Printf("multiversion   snapshotReads=%d versionsGCed=%d\n", st.SnapshotReads, st.VersionsGCed)
			}
		}
		if d, ok := be.(storage.DurableBackend); ok {
			fmt.Printf("durability     %s fsync=%s fsyncs=%d walKB=%.1f walTruncated=%d recovery=%v\n",
				d.Name(), *fsync, m.Fsyncs, float64(m.WALBytes)/1024, m.WALTruncated, time.Duration(m.RecoveryNs))
			if *ckpt > 0 {
				health := "on"
				if m.CheckpointerOff {
					health = "OFF (degraded: persistent checkpoint failures)"
				}
				fmt.Printf("checkpointing  every %dB: checkpoints=%d failures=%d segmentsRetired=%d checkpointer=%s\n",
					*ckpt, m.Checkpoints, m.CheckpointFailures, m.SegmentsRetired, health)
			}
			if *dir != "" {
				fmt.Printf("waldir         %s (log persisted after clean close)\n", *dir)
			}
		}
		if m.Committed == inst.NumTxs() {
			// Read-only transactions served from storage snapshots produce
			// no granted steps; append their (all-Read, state-neutral)
			// steps so the committed schedule is complete for core.Exec.
			full := append([]core.StepID{}, m.Output...)
			seen := make([]int, inst.NumTxs())
			for _, id := range m.Output {
				seen[id.Tx]++
			}
			for tx := range seen {
				if seen[tx] == 0 {
					for idx := range inst.Txs[tx].Steps {
						full = append(full, core.StepID{Tx: tx, Idx: idx})
					}
				}
			}
			replay, rerr := core.Exec(inst, full, inst.InitialStates()[0])
			if rerr != nil {
				fmt.Printf("state==replay  unknown (%v)\n", rerr)
			} else {
				fmt.Printf("state==replay  %v (guaranteed for serial, the strict-2PL family and mv write sets)\n", be.State().Equal(replay))
			}
		}
	}
}

// nsSummary keeps the histogram summary but notes the unit.
func nsSummary(s string) string { return strings.TrimSpace(s) + " (ns)" }
