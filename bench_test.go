package optcc

// One benchmark per experiment of DESIGN.md's index (theorems T1–T4,
// figures F1–F5, measurements E1–E13), plus micro-benchmarks for the
// substrates. Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/experiments"
	"optcc/internal/geometry"
	"optcc/internal/herbrand"
	"optcc/internal/locking"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/schedule"
	"optcc/internal/sim"
	"optcc/internal/storage"
	"optcc/internal/workload"
	"optcc/internal/wsr"
)

func benchExperiment(b *testing.B, run func() (*experiments.Result, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorems ---

func BenchmarkTheorem1InformationBound(b *testing.B) {
	benchExperiment(b, experiments.T1InformationBound)
}

func BenchmarkTheorem2SerialOptimal(b *testing.B) {
	benchExperiment(b, experiments.T2SerialOptimal)
}

func BenchmarkTheorem3SerializationOptimal(b *testing.B) {
	benchExperiment(b, experiments.T3SerializationOptimal)
}

func BenchmarkTheorem4WeakSerialization(b *testing.B) {
	benchExperiment(b, experiments.T4WeakSerialization)
}

// --- Figures ---

func BenchmarkFigure1WeaklySerializable(b *testing.B) {
	benchExperiment(b, experiments.F1WeaklySerializableHistory)
}

func BenchmarkFigure2TwoPhaseTransform(b *testing.B) {
	benchExperiment(b, experiments.F2TwoPhaseTransformation)
}

func BenchmarkFigure3DeadlockRegion(b *testing.B) {
	benchExperiment(b, experiments.F3ProgressSpace)
}

func BenchmarkFigure4Homotopy(b *testing.B) {
	benchExperiment(b, experiments.F4GeometryOfLocking)
}

func BenchmarkFigure5TwoPhasePrimeTransform(b *testing.B) {
	benchExperiment(b, experiments.F5TwoPhasePrimeTransformation)
}

// --- Measurements ---

func BenchmarkFixpointHierarchy(b *testing.B) {
	benchExperiment(b, experiments.E1FixpointHierarchy)
}

func BenchmarkNoDelayProbability(b *testing.B) {
	benchExperiment(b, experiments.E2NoDelayProbability)
}

func BenchmarkOnlineFixpoints(b *testing.B) {
	benchExperiment(b, experiments.E3OnlineFixpoints)
}

func BenchmarkSimulatedWaitingSweep(b *testing.B) {
	benchExperiment(b, experiments.E4Quick)
}

func BenchmarkPolicy2PLvs2PLPrime(b *testing.B) {
	benchExperiment(b, experiments.E5PolicyComparison)
}

func BenchmarkTreeLocking(b *testing.B) {
	benchExperiment(b, experiments.E6TreeLocking)
}

func BenchmarkDeadlockPolicies(b *testing.B) {
	benchExperiment(b, experiments.E7DeadlockPolicies)
}

func BenchmarkStorageBackendSweep(b *testing.B) {
	benchExperiment(b, experiments.E9Quick)
}

func BenchmarkBatchedDispatchSweep(b *testing.B) {
	benchExperiment(b, experiments.E10Quick)
}

func BenchmarkDurableCommitSweep(b *testing.B) {
	benchExperiment(b, experiments.E13Quick)
}

// --- Substrate micro-benchmarks ---

func BenchmarkHerbrandEvalBanking(b *testing.B) {
	sys := workload.Banking()
	h := core.AllSteps(sys.Format())
	u := herbrand.NewUniverse()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := herbrand.Eval(u, sys, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHerbrandSerializableCheck(b *testing.B) {
	sys := workload.Banking()
	checker, err := herbrand.NewChecker(sys)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	h := schedule.Random(sys.Format(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := checker.Serializable(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConflictGraphBanking(b *testing.B) {
	sys := workload.Banking()
	rng := rand.New(rand.NewSource(2))
	h := schedule.Random(sys.Format(), rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := conflict.Serializable(sys, h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWSRCheckFigure1(b *testing.B) {
	sys := workload.Figure1()
	checker, err := wsr.NewChecker(sys, wsr.Options{})
	if err != nil {
		b.Fatal(err)
	}
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := checker.Weak(h); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleEnumerationBanking(b *testing.B) {
	format := workload.Banking().Format()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		schedule.Enumerate(format, func(core.Schedule) bool { n++; return true })
		if n != 1260 {
			b.Fatalf("enumerated %d", n)
		}
	}
}

func BenchmarkScheduleRankUnrank(b *testing.B) {
	format := workload.Banking().Format()
	rng := rand.New(rand.NewSource(3))
	h := schedule.Random(format, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := schedule.Rank(format, h)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := schedule.Unrank(format, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockTableAcquireRelease(b *testing.B) {
	vars := []core.Var{"a", "b", "c", "d"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := lockmgr.NewTable(lockmgr.Detect)
		for tx := lockmgr.TxID(0); tx < 4; tx++ {
			tab.Register(tx)
			for _, v := range vars {
				tab.Acquire(tx, v, lockmgr.Shared)
			}
		}
		for tx := lockmgr.TxID(0); tx < 4; tx++ {
			tab.ReleaseAll(tx)
		}
	}
}

func BenchmarkLRSOutputsTwoPhase(b *testing.B) {
	sys := workload.Cross()
	ls, err := locking.TwoPhase{}.Transform(sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locking.Outputs(ls); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeometryDeadlockRegion(b *testing.B) {
	ls, err := locking.TwoPhase{}.Transform(workload.Cross())
	if err != nil {
		b.Fatal(err)
	}
	sp, err := geometry.NewSpace(ls, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sp.DeadlockRegion()
	}
}

func BenchmarkSGTReplayBanking(b *testing.B) {
	sys := workload.Banking()
	rng := rand.New(rand.NewSource(4))
	h := schedule.Random(sys.Format(), rng)
	sched := online.NewSGT()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := online.Replay(sys, sched, h, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerDecisionLatency(b *testing.B) {
	// Per-request decision cost of each scheduler on a serial stream: the
	// "scheduling time" component of Section 6.
	sys := sim.Instantiate(workload.Banking(), 30)
	h := core.AllSteps(sys.Format())
	for _, sched := range []online.Scheduler{
		online.NewSerial(),
		online.NewStrict2PL(lockmgr.Detect),
		online.NewSGT(),
		online.NewTO(),
		online.NewOCC(),
	} {
		b.Run(sched.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := online.Replay(sys, sched, h, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedVsCentral is the scalability acceptance benchmark: the
// same low-contention multi-user workload through the centralized
// single-goroutine scheduler versus the sharded concurrent engine at 1, 4
// and 16 shards. Sharded throughput should sit strictly above the central
// baseline (and rise with shard count) because users only contend on the
// dispatch loops and lock-table shards their steps touch.
func BenchmarkShardedVsCentral(b *testing.B) {
	const jobs = 64
	template := workload.Random(workload.RandomConfig{
		NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 8 * jobs}, 1979)
	run := func(b *testing.B, mk func() online.Scheduler) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			m, err := sim.Run(sim.Config{System: inst, Sched: mk(), Users: 16, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	b.Run("central", func(b *testing.B) {
		run(b, func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) })
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards) })
		})
	}
}

// BenchmarkKVBackendApplyStep measures the storage hot path alone: apply an
// update step (checksummed read + copy-on-write write) and commit, per
// payload size.
func BenchmarkKVBackendApplyStep(b *testing.B) {
	for _, size := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			kv := storage.NewKV(storage.Config{Shards: 4, ValueSize: size})
			kv.Reset(core.DB{"x": 0})
			step := core.Step{Var: "x", Kind: core.Update,
				Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }}
			b.SetBytes(int64(2 * size)) // one payload read + one payload write
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := kv.ApplyStep(0, step); err != nil {
					b.Fatal(err)
				}
				kv.Commit(0)
			}
		})
	}
}

// BenchmarkDiskBackendCommit measures the durable commit hot path per
// fsync policy: one single-write transaction per iteration (update record
// + commit record appended to the WAL), with the fsync cost inline for
// always, amortized over groups of 8 for group, and absent for never.
func BenchmarkDiskBackendCommit(b *testing.B) {
	for _, fs := range []storage.FsyncPolicy{storage.FsyncAlways, storage.FsyncGroup, storage.FsyncNever} {
		b.Run(fs.String(), func(b *testing.B) {
			d, err := storage.NewDisk(storage.Config{Fsync: fs})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Destroy()
			d.Reset(core.DB{"x": 0})
			step := core.Step{Var: "x", Kind: core.Update,
				Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.ApplyStep(i, step); err != nil {
					b.Fatal(err)
				}
				d.Commit(i)
				if fs == storage.FsyncGroup && i%8 == 7 {
					if err := d.GroupSync(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkBackendShardedVsCentral is BenchmarkShardedVsCentral with real
// storage execution: the same low-contention workload, every granted step
// reading and writing 1KB records through the KV backend.
func BenchmarkBackendShardedVsCentral(b *testing.B) {
	const jobs = 64
	template := workload.Random(workload.RandomConfig{
		NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 8 * jobs}, 1979)
	run := func(b *testing.B, shards int, mk func() online.Scheduler) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			be := storage.NewKV(storage.Config{Shards: shards, ValueSize: 1024})
			m, err := sim.Run(sim.Config{System: inst, Sched: mk(), Backend: be, Users: 16, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	b.Run("central", func(b *testing.B) {
		run(b, 1, func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) })
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			run(b, shards, func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards) })
		})
	}
}

// BenchmarkBatchedVsUnbatched is the batching acceptance benchmark: a
// hot-shard multi-user workload with real storage through the sharded
// runtime, unbatched (batch=1: one decision per dispatch iteration, inline
// commit) versus batched intake + group commit. The workload is the
// loop-contention flavor of hot shard (workload.HotShardDisjoint): every
// request of 48 users lands on the one dispatch loop owning the variables,
// while the lock table sees no conflicts — so run time measures dispatch
// overhead, exactly what batching amortizes (one channel wakeup, one
// shard-mutex acquisition, one retry scan per batch, and per-group lock
// release). Batched sits consistently (~5–20%) above unbatched even on a
// single-core box; on the lock-contended hot shard (E10's first regime)
// run time is dominated by waiting, which batching does not change, so the
// ordering there is machine-noise territory.
func BenchmarkBatchedVsUnbatched(b *testing.B) {
	const (
		jobs   = 64
		shards = 4
		users  = 48
	)
	template := workload.HotShardDisjoint(jobs, shards)
	run := func(b *testing.B, batch int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			be := storage.NewKV(storage.Config{Shards: shards, ValueSize: 256})
			m, err := sim.Run(sim.Config{
				System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards),
				Backend: be, Users: users, Seed: int64(i), Batch: batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	b.Run("unbatched", func(b *testing.B) { run(b, 1) })
	for _, batch := range []int{8, 32} {
		b.Run(fmt.Sprintf("batched-%d", batch), func(b *testing.B) { run(b, batch) })
	}
}

// BenchmarkNativeTOVsShardedTO is the native-scheduler acceptance
// benchmark: the disjoint multi-shard workload (per-transaction private
// variables hashing across every shard, zero conflicts) through the
// Sharded(TO) combinator — single-threaded TO per shard behind shard
// mutexes, grant logs and the ordering rail — versus online.ConcurrentTO,
// whose hot path is a lock-free timestamp-table lookup. With the
// per-shard serialization gone, native TO should sit at or above the
// combinator from 2 shards up.
func BenchmarkNativeTOVsShardedTO(b *testing.B) {
	const (
		jobs  = 64
		users = 16
	)
	template := workload.Disjoint(jobs, 3)
	run := func(b *testing.B, mk func() online.Scheduler) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			m, err := sim.Run(sim.Config{System: inst, Sched: mk(), Users: users, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("sharded-to-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler {
				return online.NewSharded(shards, func() online.Scheduler { return online.NewTO() })
			})
		})
		b.Run(fmt.Sprintf("native-cto-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler { return online.NewConcurrentTO(shards) })
		})
	}
}

// BenchmarkNativeSGTVsShardedSGT is the native serialization-graph
// acceptance benchmark: the disjoint multi-shard workload through the
// Sharded(SGT) combinator — single-threaded SGT per shard behind shard
// mutexes, grant logs and the ordering rail — versus
// online.ConcurrentSGT, whose zero-conflict grants are a lock-free marks
// lookup plus liveness loads with no graph lock at all. With the
// per-shard serialization gone, native SGT should sit at or above the
// combinator from 2 shards up.
func BenchmarkNativeSGTVsShardedSGT(b *testing.B) {
	const (
		jobs  = 64
		users = 16
	)
	template := workload.Disjoint(jobs, 3)
	run := func(b *testing.B, mk func() online.Scheduler) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			m, err := sim.Run(sim.Config{System: inst, Sched: mk(), Users: users, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("sharded-sgt-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler {
				return online.NewSharded(shards, func() online.Scheduler { return online.NewSGTAborting() })
			})
		})
		b.Run(fmt.Sprintf("native-csgt-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler { return online.NewConcurrentSGTAborting(shards) })
		})
	}
}

// BenchmarkNativeOCCVsShardedOCC is the native optimistic-validation
// acceptance benchmark: the disjoint multi-shard workload through the
// Sharded(OCC) combinator versus online.ConcurrentOCC, whose execution
// and validation paths touch only the shared atomic clock, the
// copy-on-write writer marks and the commit-stamp table — no shard mutex,
// no rail, no global validation critical section. Native OCC should sit
// at or above the combinator from 2 shards up.
func BenchmarkNativeOCCVsShardedOCC(b *testing.B) {
	const (
		jobs  = 64
		users = 16
	)
	template := workload.Disjoint(jobs, 3)
	run := func(b *testing.B, mk func() online.Scheduler) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			m, err := sim.Run(sim.Config{System: inst, Sched: mk(), Users: users, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("sharded-occ-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler {
				return online.NewSharded(shards, func() online.Scheduler { return online.NewOCC() })
			})
		})
		b.Run(fmt.Sprintf("native-cocc-%d", shards), func(b *testing.B) {
			run(b, func() online.Scheduler { return online.NewConcurrentOCC(shards) })
		})
	}
}

// BenchmarkRailStripes is the rail acceptance benchmark: multi-shard
// transactions with pairwise conflicts (workload.CrossPairs — every
// reservation carries real sources, components stay small) through the
// Sharded combinator with a 1-stripe rail (the single-mutex PR 1
// baseline: every reservation serializes on one lock and pays a DFS) and
// a striped rail (disjoint pair-components resolve on different stripes,
// and the cycle check is skipped entirely when components are disjoint).
// Striped should sit at or above the single mutex.
func BenchmarkRailStripes(b *testing.B) {
	const (
		pairs  = 24
		shards = 4
		users  = 16
	)
	template := workload.CrossPairs(pairs)
	jobs := template.NumTxs()
	run := func(b *testing.B, stripes int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			inst := sim.Instantiate(template, jobs)
			sched := online.NewShardedRail(shards, stripes, func() online.Scheduler {
				return online.NewStrict2PL(lockmgr.WoundWait)
			})
			m, err := sim.Run(sim.Config{System: inst, Sched: sched, Users: users, Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			if m.Committed != jobs {
				b.Fatalf("committed %d of %d", m.Committed, jobs)
			}
		}
	}
	b.Run("single-mutex", func(b *testing.B) { run(b, 1) })
	for _, stripes := range []int{4, 16} {
		stripes := stripes
		b.Run(fmt.Sprintf("striped-%d", stripes), func(b *testing.B) { run(b, stripes) })
	}
}

func BenchmarkSimThroughput(b *testing.B) {
	for _, mk := range []func() online.Scheduler{
		func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) },
		func() online.Scheduler { return online.NewSGTAborting() },
		func() online.Scheduler { return online.NewOCC() },
	} {
		sched := mk()
		b.Run(sched.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst := sim.Instantiate(workload.Banking(), 16)
				m, err := sim.Run(sim.Config{
					System:   inst,
					Sched:    mk(),
					Users:    4,
					ExecTime: 10 * time.Microsecond,
					Seed:     int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if m.Committed != 16 {
					b.Fatalf("committed %d", m.Committed)
				}
			}
		})
	}
}
