// Package optcc reproduces H. T. Kung and C. H. Papadimitriou, "An
// Optimality Theory of Concurrency Control for Databases" (SIGMOD 1979),
// as a runnable Go library.
//
// The implementation lives in the internal packages (one per subsystem;
// see DESIGN.md for the inventory):
//
//	internal/core        transaction systems, states, execution, C(T)
//	internal/schedule    the schedule space H: counting, enumeration, sampling
//	internal/herbrand    Herbrand semantics and SR(T)            (Theorem 3)
//	internal/conflict    conflict graphs and CSR
//	internal/wsr         weak serializability WSR(T)             (Theorem 4)
//	internal/info        information levels and optimal schedulers (Theorems 1–2)
//	internal/fixpoint    hierarchy classification and |P|/|H|
//	internal/lockmgr     lock tables (monolithic + sharded with lock-free fast path), deadlock policies
//	internal/locking     locking policies: 2PL, 2PL′, selective; LRS (Section 5)
//	internal/geometry    progress space, blocks, deadlock region, homotopy (Section 5.3)
//	internal/online      online schedulers: serial, 2PL variants, SGT, TO, OCC, tree locking;
//	                     the concurrent contract (ConcurrentScheduler, Mutexed, Sharded,
//	                     ConcurrentStrict2PL) with the cross-shard ordering rail
//	internal/storage     storage layer: the Backend interface and the sharded in-memory
//	                     KV store (copy-on-write records, checksummed payloads,
//	                     per-transaction undo logs for abort rollback)
//	internal/sim         goroutine-per-user simulator of the Section 6 environment:
//	                     centralized scheduler goroutine or per-shard dispatch loops,
//	                     executing granted steps against the storage backend
//	internal/workload    canonical systems (banking, Figure 1, …), generators and
//	                     payload sizers
//	internal/experiments every experiment of DESIGN.md / EXPERIMENTS.md
//
// Binaries: cmd/ccbench (experiments), cmd/ccviz (figures), cmd/ccsim
// (simulator). Runnable examples are under examples/.
//
// The benchmarks in bench_test.go regenerate every theorem, figure and
// measurement table:
//
//	go test -bench=. -benchmem
package optcc
