# Convenience targets around the plain-go workflow (everything also works
# with bare `go` commands; see README.md).

GO ?= go

.PHONY: build test race bench bench-json bench-diff check-docs ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of everything, as CI runs it.
bench:
	$(GO) test -run xxx -bench=. -benchtime=1x ./...

# Machine-readable benchmark snapshot: the runtime experiments (sharding,
# batching, native TO / rail striping, multiversion reads, durable
# commit) rendered as JSON. Each PR that touches the engine refreshes its
# BENCH_PR<n>.json so the repository accumulates a throughput trajectory
# that later PRs can diff against.
bench-json:
	$(GO) run ./cmd/ccbench -exp E8,E10,E11,E12,E13 -json > BENCH_PR7.json

# Per-experiment throughput delta between the two newest snapshots
# (version-sorted, so PR10 follows PR9). See cmd/benchdiff.
bench-diff:
	$(GO) run ./cmd/benchdiff $$(ls BENCH_PR*.json | sort -V | tail -2)

check-docs:
	./scripts/check-docs.sh

ci: check-docs build race bench
