# Convenience targets around the plain-go workflow (everything also works
# with bare `go` commands; see README.md).

GO ?= go

# PR numbers the bench-json snapshot; bump it (or pass PR=<n>) so each PR
# that touches the engine writes its own BENCH_PR<n>.json.
PR ?= 10

# The extended vet set: standalone `go vet` runs its full analyzer
# registry (atomic, copylocks, loopclosure, lostcancel, unsafeptr,
# unreachable, unusedresult, ...), a strict superset of the small
# high-confidence subset `go test` applies automatically. Passing -NAME
# flags would RESTRICT vet to only those analyzers, so VETFLAGS stays
# empty by default; use it to disable a pass (-NAME=false) if one ever
# misfires.
VETFLAGS :=

.PHONY: build test race bench bench-json bench-diff check-docs lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of everything, as CI runs it.
bench:
	$(GO) test -run xxx -bench=. -benchtime=1x ./...

# Machine-readable benchmark snapshot: the runtime experiments (sharding,
# batching, native TO / rail striping, multiversion reads, durable
# commit, checkpointed WAL, native SGT/OCC) rendered as JSON. Each PR
# that touches the engine refreshes its BENCH_PR<n>.json so the
# repository accumulates a throughput trajectory that later PRs can diff
# against.
bench-json:
	$(GO) run ./cmd/ccbench -exp E8,E10,E11,E12,E13,E14,E15 -json > BENCH_PR$(PR).json

# Per-experiment throughput delta between the two newest snapshots
# (version-sorted, so PR10 follows PR9). See cmd/benchdiff.
bench-diff:
	$(GO) run ./cmd/benchdiff $$(ls BENCH_PR*.json | sort -V | tail -2)

check-docs:
	./scripts/check-docs.sh

# Static analysis: gofmt, the extended vet set, and cclint — the
# project-specific analyzer suite (lock hierarchy, zero-alloc hot path,
# buffer recycling, atomics discipline, goroutine joins; see DESIGN.md
# "Static analysis"). staticcheck runs when installed (CI installs a pinned
# version; locally `go install honnef.co/go/tools/cmd/staticcheck@2025.1.1`).
lint:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt: needs formatting:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet $(VETFLAGS) ./...
	$(GO) run ./cmd/cclint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

ci: check-docs lint build race bench
