#!/usr/bin/env bash
# Docs drift gate: README.md and DESIGN.md must reference every Go package
# directory in the tree (internal/* and cmd/*), and every package path they
# mention must still exist. Run from anywhere; CI runs it on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# Every package directory must be referenced by both docs.
for d in internal/*/ cmd/*/; do
  p="${d%/}"
  for doc in README.md DESIGN.md; do
    if ! grep -q "$p" "$doc"; then
      echo "check-docs: $doc does not reference package $p"
      fail=1
    fi
  done
done

# Every package path the docs mention must exist.
for doc in README.md DESIGN.md; do
  for p in $(grep -oE '(internal|cmd)/[a-z0-9]+' "$doc" | sort -u); do
    if [ ! -d "$p" ]; then
      echo "check-docs: $doc references nonexistent package $p"
      fail=1
    fi
  done
done

# The batching surface must stay documented: experiment E10 and the -batch
# flag in both docs and in the flag surfaces that expose them.
for doc in README.md DESIGN.md; do
  if ! grep -q 'E10' "$doc"; then
    echo "check-docs: $doc does not document experiment E10"
    fail=1
  fi
  if ! grep -qe '-batch' "$doc"; then
    echo "check-docs: $doc does not document the -batch flag"
    fail=1
  fi
done
for cmd in cmd/ccsim/main.go cmd/ccbench/main.go; do
  if ! grep -q '"batch"' "$cmd"; then
    echo "check-docs: $cmd lost its -batch flag"
    fail=1
  fi
done
if ! grep -q 'E10' internal/experiments/experiments.go; then
  echo "check-docs: experiments registry lost E10"
  fail=1
fi

# The native-TO / rail-striping surface must stay documented: experiment
# E11, the cto scheduler and the -railstripes flag in both docs and in the
# flag surfaces that expose them.
for doc in README.md DESIGN.md; do
  if ! grep -q 'E11' "$doc"; then
    echo "check-docs: $doc does not document experiment E11"
    fail=1
  fi
  if ! grep -qe '-railstripes' "$doc"; then
    echo "check-docs: $doc does not document the -railstripes flag"
    fail=1
  fi
  if ! grep -q 'cto' "$doc"; then
    echo "check-docs: $doc does not document the cto scheduler"
    fail=1
  fi
done
for cmd in cmd/ccsim/main.go cmd/ccbench/main.go; do
  if ! grep -q '"railstripes"' "$cmd"; then
    echo "check-docs: $cmd lost its -railstripes flag"
    fail=1
  fi
done
if ! grep -q 'E11' internal/experiments/experiments.go; then
  echo "check-docs: experiments registry lost E11"
  fail=1
fi

# The multiversion surface must stay documented: experiment E12, the mv
# scheduler, the -readfrac flag and DESIGN.md's storage section covering
# visibility and GC safety.
for doc in README.md DESIGN.md; do
  if ! grep -q 'E12' "$doc"; then
    echo "check-docs: $doc does not document experiment E12"
    fail=1
  fi
  if ! grep -qe '-readfrac' "$doc"; then
    echo "check-docs: $doc does not document the -readfrac flag"
    fail=1
  fi
  if ! grep -qE '\bmv\b' "$doc"; then
    echo "check-docs: $doc does not document the mv scheduler"
    fail=1
  fi
done
for cmd in cmd/ccsim/main.go cmd/ccbench/main.go; do
  if ! grep -q '"readfrac"' "$cmd"; then
    echo "check-docs: $cmd lost its -readfrac flag"
    fail=1
  fi
done
if ! grep -q 'E12' internal/experiments/experiments.go; then
  echo "check-docs: experiments registry lost E12"
  fail=1
fi
if ! grep -q 'Multiversion storage' DESIGN.md; then
  echo "check-docs: DESIGN.md lost its Multiversion storage section"
  fail=1
fi

# The durability surface must stay documented: experiment E13, the disk
# backend, the -fsync flag and DESIGN.md's Durability section covering the
# log format, recovery and the fault-injection catalogue.
for doc in README.md DESIGN.md; do
  if ! grep -q 'E13' "$doc"; then
    echo "check-docs: $doc does not document experiment E13"
    fail=1
  fi
  if ! grep -qe '-fsync' "$doc"; then
    echo "check-docs: $doc does not document the -fsync flag"
    fail=1
  fi
  if ! grep -qE '\bdisk\b' "$doc"; then
    echo "check-docs: $doc does not document the disk backend"
    fail=1
  fi
done
for cmd in cmd/ccsim/main.go cmd/ccbench/main.go; do
  if ! grep -q '"fsync"' "$cmd"; then
    echo "check-docs: $cmd lost its -fsync flag"
    fail=1
  fi
done
if ! grep -q 'E13' internal/experiments/experiments.go; then
  echo "check-docs: experiments registry lost E13"
  fail=1
fi
if ! grep -q 'disk' internal/storage/storage.go; then
  echo "check-docs: storage registry lost the disk backend"
  fail=1
fi
if ! grep -q 'Durability' DESIGN.md; then
  echo "check-docs: DESIGN.md lost its Durability section"
  fail=1
fi

# The profiling / allocation-measurement surface must stay documented:
# the ccbench profiling flags, the bench-diff workflow and the memory
# discipline section that states the zero-allocation invariant.
for f in -cpuprofile -memprofile -allocstats; do
  if ! grep -qe "$f" README.md; then
    echo "check-docs: README.md does not document the ccbench $f flag"
    fail=1
  fi
done
for name in cpuprofile memprofile allocstats; do
  if ! grep -q "\"$name\"" cmd/ccbench/main.go; then
    echo "check-docs: cmd/ccbench lost its -$name flag"
    fail=1
  fi
done
if ! grep -q 'Memory discipline' DESIGN.md; then
  echo "check-docs: DESIGN.md lost its Memory discipline section"
  fail=1
fi
for doc in README.md DESIGN.md; do
  if ! grep -q 'bench-diff' "$doc"; then
    echo "check-docs: $doc does not document the bench-diff workflow"
    fail=1
  fi
done
if ! grep -q 'bench-diff' Makefile; then
  echo "check-docs: Makefile lost its bench-diff target"
  fail=1
fi
if ! grep -q 'noop' internal/storage/storage.go; then
  echo "check-docs: storage registry lost the noop backend"
  fail=1
fi

# The static-analysis surface must stay documented and wired: the lint
# target, the cclint driver, DESIGN.md's analyzer ↔ invariant map with the
# directive conventions, and the five analyzers registered in the suite.
for doc in README.md DESIGN.md; do
  if ! grep -q 'cclint' "$doc"; then
    echo "check-docs: $doc does not document cclint"
    fail=1
  fi
done
if ! grep -q 'Static analysis' DESIGN.md; then
  echo "check-docs: DESIGN.md lost its Static analysis section"
  fail=1
fi
for d in 'optcc:hotpath' 'optcc:release' 'cclint:ignore'; do
  if ! grep -q "$d" DESIGN.md; then
    echo "check-docs: DESIGN.md does not document the //$d directive"
    fail=1
  fi
done
if ! grep -q '^lint:' Makefile; then
  echo "check-docs: Makefile lost its lint target"
  fail=1
fi
if ! grep -q 'make lint' .github/workflows/ci.yml; then
  echo "check-docs: CI lost its lint job"
  fail=1
fi
for a in lockorder hotpath recycle atomiconly gojoin; do
  if ! grep -qri "name: \"$a\"" internal/lint/*.go 2>/dev/null && \
     ! grep -q "Name: \"$a\"" internal/lint/*.go; then
    echo "check-docs: analyzer $a is no longer registered in internal/lint"
    fail=1
  fi
  if ! grep -q "$a" DESIGN.md; then
    echo "check-docs: DESIGN.md does not document the $a analyzer"
    fail=1
  fi
done

# The checkpointing surface must stay documented: experiment E14, the
# -checkpoint flag on both binaries and DESIGN.md's Checkpointing section
# covering the marker protocol and segment retirement.
for doc in README.md DESIGN.md; do
  if ! grep -q 'E14' "$doc"; then
    echo "check-docs: $doc does not document experiment E14"
    fail=1
  fi
  if ! grep -qe '-checkpoint' "$doc"; then
    echo "check-docs: $doc does not document the -checkpoint flag"
    fail=1
  fi
done
for cmd in cmd/ccsim/main.go cmd/ccbench/main.go; do
  if ! grep -q '"checkpoint"' "$cmd"; then
    echo "check-docs: $cmd lost its -checkpoint flag"
    fail=1
  fi
done
if ! grep -q 'E14' internal/experiments/experiments.go; then
  echo "check-docs: experiments registry lost E14"
  fail=1
fi
if ! grep -q 'Checkpointing' DESIGN.md; then
  echo "check-docs: DESIGN.md lost its Checkpointing section"
  fail=1
fi

# The native SGT/OCC surface must stay documented: experiment E15, the
# csgt/cocc schedulers in both docs and the ccsim scheduler surface, and
# DESIGN.md's section on the striped graph + epoch validation invariants.
for doc in README.md DESIGN.md; do
  if ! grep -q 'E15' "$doc"; then
    echo "check-docs: $doc does not document experiment E15"
    fail=1
  fi
  if ! grep -q 'csgt' "$doc"; then
    echo "check-docs: $doc does not document the csgt scheduler"
    fail=1
  fi
  if ! grep -q 'cocc' "$doc"; then
    echo "check-docs: $doc does not document the cocc scheduler"
    fail=1
  fi
done
if ! grep -q 'csgt' cmd/ccsim/main.go || ! grep -q 'cocc' cmd/ccsim/main.go; then
  echo "check-docs: cmd/ccsim/main.go lost its csgt/cocc schedulers"
  fail=1
fi
if ! grep -q 'E15' internal/experiments/experiments.go; then
  echo "check-docs: experiments registry lost E15"
  fail=1
fi
if ! grep -q 'Native SGT and OCC' DESIGN.md; then
  echo "check-docs: DESIGN.md lost its Native SGT and OCC section"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "check-docs: FAIL"
  exit 1
fi
echo "check-docs: OK"
