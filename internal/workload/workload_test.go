package workload

import (
	"fmt"
	"testing"

	"optcc/internal/core"
	"optcc/internal/schedule"
)

func TestBankingMatchesPaper(t *testing.T) {
	sys := Banking()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	f := sys.Format()
	if len(f) != 3 || f[0] != 3 || f[1] != 2 || f[2] != 4 {
		t.Fatalf("format = %v, want (3,2,4)", f)
	}
	vars := sys.Vars()
	if len(vars) != 4 {
		t.Fatalf("vars = %v, want A,B,C,S", vars)
	}
	if !sys.Executable() {
		t.Fatal("banking not executable")
	}
	// The paper's example initial state is consistent.
	if !sys.Consistent(core.DB{"A": 150, "B": 50, "S": 200, "C": 0}) {
		t.Error("paper's initial state judged inconsistent")
	}
	if sys.Consistent(core.DB{"A": -1, "B": 50, "S": 49, "C": 0}) {
		t.Error("negative balance judged consistent")
	}
}

func TestBankingTransactionsIndividuallyCorrect(t *testing.T) {
	// The basic assumption: every transaction alone preserves consistency
	// from every consistent probe state.
	sys := Banking()
	for ti := range sys.Txs {
		for _, init := range sys.InitialStates() {
			if !sys.Consistent(init) {
				continue
			}
			final, err := core.ExecSerialOrder(sys, []int{ti}, init)
			if err != nil {
				t.Fatal(err)
			}
			if !sys.Consistent(final) {
				t.Errorf("transaction %s alone breaks IC from %v: %v", sys.Txs[ti].Name, init, final)
			}
		}
	}
}

func TestBankingSerialSchedulesCorrect(t *testing.T) {
	sys := Banking()
	for _, h := range schedule.Serials(sys.Format()) {
		ok, err := core.ScheduleCorrect(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("serial banking schedule %v incorrect", h)
		}
	}
}

func TestBankingHasIncorrectInterleaving(t *testing.T) {
	// Some interleaving must break consistency — otherwise the example
	// would not motivate concurrency control.
	sys := Banking()
	found := false
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		ok, err := core.ScheduleCorrect(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("every banking interleaving is correct; the example should have anomalies")
	}
}

func TestBankingTransferSemantics(t *testing.T) {
	sys := Banking()
	// T1 alone from the paper's state: A=150 ≥ 100 and B=50 < 100 → the
	// transfer happens.
	final, err := core.ExecSerialOrder(sys, []int{0}, core.DB{"A": 150, "B": 50, "S": 200, "C": 0})
	if err != nil {
		t.Fatal(err)
	}
	if final["A"] != 50 || final["B"] != 150 {
		t.Errorf("transfer result %v, want A=50 B=150", final)
	}
	// No transfer when B ≥ 100.
	final, err = core.ExecSerialOrder(sys, []int{0}, core.DB{"A": 100, "B": 100, "S": 200, "C": 0})
	if err != nil {
		t.Fatal(err)
	}
	if final["A"] != 100 || final["B"] != 100 {
		t.Errorf("guarded transfer result %v, want unchanged", final)
	}
	// T2: withdraw when B has funds.
	final, err = core.ExecSerialOrder(sys, []int{1}, core.DB{"A": 150, "B": 50, "S": 200, "C": 0})
	if err != nil {
		t.Fatal(err)
	}
	if final["B"] != 0 || final["C"] != 1 {
		t.Errorf("withdraw result %v, want B=0 C=1", final)
	}
	// T3: audit.
	final, err = core.ExecSerialOrder(sys, []int{2}, core.DB{"A": 200, "B": 0, "S": 250, "C": 1})
	if err != nil {
		t.Fatal(err)
	}
	if final["S"] != 200 || final["C"] != 0 {
		t.Errorf("audit result %v, want S=200 C=0", final)
	}
}

func TestCanonicalSystemsValidate(t *testing.T) {
	for _, sys := range []*core.System{Banking(), Figure1(), Theorem2Adversary(), Cross(), Chain(), LostUpdate()} {
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
		if !sys.Executable() {
			t.Errorf("%s not executable", sys.Name)
		}
	}
}

func TestTheorem2AdversaryBehaviour(t *testing.T) {
	sys := Theorem2Adversary()
	bad := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	ok, err := core.ScheduleCorrect(sys, bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("interleaved adversary schedule judged correct")
	}
	for _, h := range schedule.Serials(sys.Format()) {
		ok, err := core.ScheduleCorrect(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("serial %v incorrect", h)
		}
	}
}

func TestRandomSystemsAreReproducible(t *testing.T) {
	a := Random(RandomConfig{}, 7)
	b := Random(RandomConfig{}, 7)
	if a.String() != b.String() {
		t.Error("same seed produced different syntax")
	}
	c := Random(RandomConfig{}, 8)
	if a.String() == c.String() {
		t.Error("different seeds produced identical syntax")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if !a.Executable() {
		t.Error("random system not executable")
	}
}

func TestRandomHotspotSkewsAccesses(t *testing.T) {
	cfg := RandomConfig{NumTxs: 20, MinSteps: 3, MaxSteps: 3, NumVars: 5, Hotspot: 2}
	sys := Random(cfg, 99)
	counts := map[core.Var]int{}
	for _, tx := range sys.Txs {
		for _, st := range tx.Steps {
			counts[st.Var]++
		}
	}
	if counts["v0"] <= counts["v4"] {
		t.Errorf("hotspot not skewed: v0=%d v4=%d", counts["v0"], counts["v4"])
	}
}

func TestRandomKindsRespectFractions(t *testing.T) {
	cfg := RandomConfig{NumTxs: 40, MinSteps: 4, MaxSteps: 4, NumVars: 3, ReadFrac: 1.0, WriteFrac: 0.0}
	sys := Random(cfg, 3)
	for _, tx := range sys.Txs {
		for _, st := range tx.Steps {
			if st.Kind != core.Read {
				t.Fatalf("ReadFrac=1 produced kind %v", st.Kind)
			}
		}
	}
}

func TestTreeHelpers(t *testing.T) {
	if NodeVar(3) != "n3" {
		t.Error("node naming")
	}
	if _, ok := ParentOf(0); ok {
		t.Error("root has a parent")
	}
	p, ok := ParentOf(4)
	if !ok || p != 1 {
		t.Errorf("parent of 4 = %d", p)
	}
}

func TestPathWorkloadAccessesRootToLeafPaths(t *testing.T) {
	sys := PathWorkload(3, 5, 42)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tx := range sys.Txs {
		if len(tx.Steps) != 3 {
			t.Fatalf("depth-3 path has %d steps", len(tx.Steps))
		}
		if tx.Steps[0].Var != "n0" {
			t.Errorf("path does not start at root: %v", tx.Steps[0].Var)
		}
		// Each subsequent node must be a child of the previous.
		prev := 0
		for _, st := range tx.Steps[1:] {
			var n int
			if _, err := fmt.Sscanf(string(st.Var), "n%d", &n); err != nil {
				t.Fatal(err)
			}
			p, _ := ParentOf(n)
			if p != prev {
				t.Errorf("node %d does not descend from %d", n, prev)
			}
			prev = n
		}
	}
}
