// Package workload provides the canonical transaction systems of the paper
// and generators for synthetic ones.
//
// Canonical systems: the Section 2 banking example (transactions T1–T3 on
// accounts A, B with audit sum S and counter C), the Figure 1 system, the
// Theorem 2 adversary, and the small conflict patterns (cross, chain, lost
// update) used across experiments. Generators: seeded random systems with
// tunable contention, a hierarchical (tree) access workload for the
// Section 5.5 structured-data experiments, and the engine-stress shapes
// (hot-shard, disjoint, cross-shard pairs) the runtime experiments sweep. Payload sizers (UniformPayload,
// HotColdPayload) attach value payloads to a workload's variables for the
// real-storage experiments (internal/storage).
package workload

import (
	"fmt"
	"math/rand"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

func last(l []core.Value) core.Value { return l[len(l)-1] }

// Banking returns the Section 2 example: V = {A, B, S, C}, format (3,2,4).
//
//	T1 transfers $100 from A to B if A has enough funds and B is below 100.
//	T2 withdraws $50 from B and increments the counter C if B has funds.
//	T3 audits: S ← A + B and C ← 0.
//
// The integrity constraints are A ≥ 0, B ≥ 0 and A + B = S − 50·C (every
// withdrawal since the last audit is accounted in C).
func Banking() *core.System {
	sys := &core.System{
		Name: "banking",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "A", Kind: core.Read}, // t11 ← A
				{Var: "B", Kind: core.Update, Fn: func(l []core.Value) core.Value {
					if l[0] >= 100 && l[1] < 100 {
						return l[1] + 100
					}
					return l[1]
				}},
				{Var: "A", Kind: core.Update, Fn: func(l []core.Value) core.Value {
					if l[0] >= 100 && l[1] < 100 {
						return l[0] - 100
					}
					return l[2]
				}},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "B", Kind: core.Update, Fn: func(l []core.Value) core.Value {
					if l[0] >= 50 {
						return l[0] - 50
					}
					return l[0]
				}},
				{Var: "C", Kind: core.Update, Fn: func(l []core.Value) core.Value {
					if l[0] >= 50 {
						return l[1] + 1
					}
					return l[1]
				}},
			}},
			{Name: "T3", Steps: []core.Step{
				{Var: "A", Kind: core.Read},
				{Var: "B", Kind: core.Read},
				{Var: "S", Kind: core.Write, Fn: func(l []core.Value) core.Value { return l[0] + l[1] }},
				{Var: "C", Kind: core.Write, Fn: func(l []core.Value) core.Value { return 0 }},
			}},
		},
		IC: &core.IC{
			Name: "A>=0 && B>=0 && A+B=S-50C",
			Check: func(db core.DB) bool {
				return db["A"] >= 0 && db["B"] >= 0 && db["A"]+db["B"] == db["S"]-50*db["C"]
			},
			Initials: func() []core.DB {
				return []core.DB{
					{"A": 150, "B": 50, "S": 200, "C": 0},
					{"A": 100, "B": 100, "S": 200, "C": 0},
					{"A": 200, "B": 0, "S": 250, "C": 1},
					{"A": 130, "B": 20, "S": 150, "C": 0},
					{"A": 0, "B": 0, "S": 0, "C": 0},
				}
			},
		},
	}
	return sys.Normalize()
}

// Figure1 returns the interpreted system of Figure 1: T1 = (x←x+1, x←2x),
// T2 = (x←x+1), with the integrity constraint x ≥ 0.
func Figure1() *core.System {
	sys := &core.System{
		Name: "figure1",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
			}},
		},
		IC: &core.IC{
			Name:     "x>=0",
			Check:    func(db core.DB) bool { return db["x"] >= 0 },
			Initials: func() []core.DB { return []core.DB{{"x": 0}, {"x": 1}, {"x": 5}} },
		},
	}
	return sys.Normalize()
}

// Theorem2Adversary returns the system used in the proof of Theorem 2:
// T1 = (x←x+1, x←x−1), T2 = (x←2x), IC = {x = 0}. Every transaction alone
// preserves the constraint, yet every non-serial schedule violates it.
func Theorem2Adversary() *core.System {
	sys := &core.System{
		Name: "theorem2",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) - 1 }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
		},
		IC: &core.IC{
			Name:     "x=0",
			Check:    func(db core.DB) bool { return db["x"] == 0 },
			Initials: func() []core.DB { return []core.DB{{"x": 0}} },
		},
	}
	return sys.Normalize()
}

// Cross returns two transactions updating x and y in opposite orders: the
// deadlock-prone pattern of Figure 3 whose only serializable schedules are
// the serial ones.
func Cross() *core.System {
	return (&core.System{
		Name: "cross",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "y", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 3 }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "y", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
		},
	}).Normalize()
}

// Chain returns T1 = (x, z), T2 = (z): a system whose CSR set strictly
// exceeds its serial schedules — the smallest strict step of the fixpoint
// hierarchy.
func Chain() *core.System {
	return (&core.System{
		Name: "chain",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "z", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "z", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
		},
	}).Normalize()
}

// HotShard returns the batching stress pattern: one transaction shape
// hammering a two-variable hot set (h, then k, then h again), so when
// instantiated many times nearly all request traffic lands on the one or
// two dispatch loops owning h and k and intake queues actually build up.
// It is the workload of experiment E10 and BenchmarkBatchedVsUnbatched.
func HotShard() *core.System {
	return (&core.System{
		Name: "hotshard",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "k", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 2 }},
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
		},
	}).Normalize()
}

// HotShardDisjoint returns the loop-contention complement of HotShard:
// jobs transactions, each updating its own private variable three times,
// with every variable chosen to hash to shard 0 of a shards-way partition
// (lockmgr.ShardOfVar — the partition function of the whole engine). All
// request traffic therefore lands on one dispatch loop while the lock
// table sees no conflicts at all: the dispatch loop, not the data, is the
// bottleneck. This is where batch intake is measurable — lock-contended
// runs are dominated by waiting, which batching does not change.
func HotShardDisjoint(jobs, shards int) *core.System {
	sys := &core.System{Name: "hotshard-disjoint"}
	inc := func(l []core.Value) core.Value { return last(l) + 1 }
	for v, made := 0, 0; made < jobs; v++ {
		name := core.Var(fmt.Sprintf("v%d", v))
		if lockmgr.ShardOfVar(name, shards) != 0 {
			continue
		}
		made++
		sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
			{Var: name, Kind: core.Update, Fn: inc},
			{Var: name, Kind: core.Update, Fn: inc},
			{Var: name, Kind: core.Update, Fn: inc},
		}})
	}
	return sys.Normalize()
}

// Disjoint returns jobs transactions that each update a private variable
// `steps` times, with no shard forcing: the variables hash across every
// shard of any partition, so the dispatch load spreads while the lock
// table, the timestamp table and the ordering rail see zero conflicts.
// This is the workload where a scheduler's per-step overhead is the whole
// cost — experiment E11 and BenchmarkNativeTOVsShardedTO use it to compare
// the natively concurrent timestamp-ordering scheduler against the
// Sharded(TO) combinator.
func Disjoint(jobs, steps int) *core.System {
	if steps < 1 {
		steps = 1
	}
	sys := &core.System{Name: fmt.Sprintf("disjoint-%dx%d", jobs, steps)}
	inc := func(l []core.Value) core.Value { return last(l) + 1 }
	for i := 0; i < jobs; i++ {
		name := core.Var(fmt.Sprintf("d%d", i))
		tx := core.Transaction{}
		for s := 0; s < steps; s++ {
			tx.Steps = append(tx.Steps, core.Step{Var: name, Kind: core.Update, Fn: inc})
		}
		sys.Txs = append(sys.Txs, tx)
	}
	return sys.Normalize()
}

// CrossPairs returns `pairs` independent transaction pairs: the two
// transactions of pair i each update a private variable, then the pair's
// shared variable, then the private variable again. Every transaction
// spans shards (the private and shared variables hash independently) and
// conflicts only with its partner, so the ordering rail sees a steady
// stream of multi-shard reservations forming many small two-node
// components — the regime where rail striping pays and a single-mutex
// rail serializes everything. BenchmarkRailStripes and the rail dispatch
// tests use it.
func CrossPairs(pairs int) *core.System {
	sys := &core.System{Name: fmt.Sprintf("crosspairs-%d", pairs)}
	inc := func(l []core.Value) core.Value { return last(l) + 1 }
	for i := 0; i < pairs; i++ {
		shared := core.Var(fmt.Sprintf("s%d", i))
		for j := 0; j < 2; j++ {
			private := core.Var(fmt.Sprintf("p%d_%d", i, j))
			sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
				{Var: private, Kind: core.Update, Fn: inc},
				{Var: shared, Kind: core.Update, Fn: inc},
				{Var: private, Kind: core.Update, Fn: inc},
			}})
		}
	}
	return sys.Normalize()
}

// LostUpdate returns the classic read-then-write pair on one variable.
func LostUpdate() *core.System {
	mk := func() core.Transaction {
		return core.Transaction{Steps: []core.Step{
			{Var: "x", Kind: core.Read},
			{Var: "x", Kind: core.Write, Fn: func(l []core.Value) core.Value { return l[0] + 1 }},
		}}
	}
	return (&core.System{
		Name: "lostupdate",
		Txs:  []core.Transaction{mk(), mk()},
	}).Normalize()
}

// RandomConfig tunes the random-system generator.
type RandomConfig struct {
	// NumTxs is the number of transactions (default 3).
	NumTxs int
	// MinSteps/MaxSteps bound the per-transaction step count (defaults 1
	// and 3).
	MinSteps, MaxSteps int
	// NumVars is the size of the variable pool (default 3).
	NumVars int
	// ReadFrac and WriteFrac are the probabilities of Read and Write
	// kinds; the remainder are Updates (defaults 0.3 / 0.2).
	ReadFrac, WriteFrac float64
	// Hotspot skews variable choice: 0 is uniform; larger values
	// concentrate accesses on low-numbered variables with probability
	// proportional to 1/(rank+1)^Hotspot.
	Hotspot float64
}

func (c *RandomConfig) defaults() {
	if c.NumTxs == 0 {
		c.NumTxs = 3
	}
	if c.MinSteps == 0 {
		c.MinSteps = 1
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 3
	}
	if c.NumVars == 0 {
		c.NumVars = 3
	}
	if c.ReadFrac == 0 && c.WriteFrac == 0 {
		c.ReadFrac, c.WriteFrac = 0.3, 0.2
	}
}

// Random generates a seeded, executable random system with a trivial IC
// (its interest is SR/WSR/CSR structure, not consistency). Interpretations
// are drawn from a small affine algebra so weak-serializability probing
// stays exact on the default probe states.
func Random(cfg RandomConfig, seed int64) *core.System {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	pickVar := func() core.Var {
		if cfg.Hotspot <= 0 {
			return core.Var(fmt.Sprintf("v%d", rng.Intn(cfg.NumVars)))
		}
		// Weighted by 1/(rank+1)^Hotspot.
		weights := make([]float64, cfg.NumVars)
		total := 0.0
		for i := range weights {
			w := 1.0
			for k := 0.0; k < cfg.Hotspot; k++ {
				w /= float64(i + 1)
			}
			weights[i] = w
			total += w
		}
		r := rng.Float64() * total
		for i, w := range weights {
			if r < w {
				return core.Var(fmt.Sprintf("v%d", i))
			}
			r -= w
		}
		return core.Var(fmt.Sprintf("v%d", cfg.NumVars-1))
	}
	txs := make([]core.Transaction, cfg.NumTxs)
	for i := range txs {
		m := cfg.MinSteps
		if cfg.MaxSteps > cfg.MinSteps {
			m += rng.Intn(cfg.MaxSteps - cfg.MinSteps + 1)
		}
		steps := make([]core.Step, m)
		for j := range steps {
			v := pickVar()
			r := rng.Float64()
			switch {
			case r < cfg.ReadFrac:
				steps[j] = core.Step{Var: v, Kind: core.Read}
			case r < cfg.ReadFrac+cfg.WriteFrac:
				k := core.Value(rng.Intn(7) - 3)
				steps[j] = core.Step{Var: v, Kind: core.Write,
					Fn: func(l []core.Value) core.Value { return k }}
			default:
				switch rng.Intn(3) {
				case 0:
					k := core.Value(1 + rng.Intn(3))
					steps[j] = core.Step{Var: v, Kind: core.Update,
						Fn: func(l []core.Value) core.Value { return last(l) + k }}
				case 1:
					steps[j] = core.Step{Var: v, Kind: core.Update,
						Fn: func(l []core.Value) core.Value { return 2 * last(l) }}
				default:
					k := core.Value(1 + rng.Intn(3))
					steps[j] = core.Step{Var: v, Kind: core.Update,
						Fn: func(l []core.Value) core.Value { return last(l) - k }}
				}
			}
		}
		txs[i] = core.Transaction{Steps: steps}
	}
	return (&core.System{Name: fmt.Sprintf("random-%d", seed), Txs: txs}).Normalize()
}

// UniformPayload returns a payload sizer giving every variable n bytes.
// Sizers feed storage.Config.Sizer: they attach value payloads to a
// workload's variables so backend reads and writes move real bytes.
func UniformPayload(n int) func(core.Var) int {
	return func(core.Var) int { return n }
}

// HotColdPayload returns a sizer giving `hot` bytes to the named variables
// and `cold` bytes to every other one: value-size skew for the storage
// experiments (e.g. a few large hot records among small cold ones).
func HotColdPayload(hot, cold int, hotVars ...core.Var) func(core.Var) int {
	set := make(map[core.Var]bool, len(hotVars))
	for _, v := range hotVars {
		set[v] = true
	}
	return func(v core.Var) int {
		if set[v] {
			return hot
		}
		return cold
	}
}

// ReadMostlyConfig tunes the read-mostly generator.
type ReadMostlyConfig struct {
	// Jobs is the number of transactions (default 64).
	Jobs int
	// Steps is the per-transaction step count (default 4).
	Steps int
	// ReadFrac is the fraction of transactions that are read-only — every
	// step a Read (default 0.9). The remainder are writers whose every
	// step is an increment Update, so writer execution is exact under
	// replay comparison.
	ReadFrac float64
	// Vars is the size of the variable pool (default 64).
	Vars int
	// HotFrac is the probability a step touches one of the HotVars
	// low-numbered variables instead of drawing uniformly from the pool
	// (defaults 0.8 over 4 hot variables). HotFrac 0 disables skew.
	HotFrac float64
	// HotVars is the size of the hot set (default 4, capped at Vars).
	HotVars int
}

func (c *ReadMostlyConfig) defaults() {
	if c.Jobs == 0 {
		c.Jobs = 64
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.9
	}
	if c.Vars == 0 {
		c.Vars = 64
	}
	if c.HotFrac == 0 && c.HotVars == 0 {
		c.HotFrac, c.HotVars = 0.8, 4
	}
	if c.HotVars > c.Vars {
		c.HotVars = c.Vars
	}
}

// ReadMostly generates the read-fraction sweep workload (experiment E12
// and the -readfrac flag): a seeded mix of read-only transactions (all
// steps Read) and writer transactions (all steps increment Updates), with
// optional hot-set skew so writers collide. Read-only transactions are
// what the multiversion runtime serves from snapshots; writers being pure
// increments keeps every interleaving of committed writers equal to the
// serial replay of the committed schedule, so the replay self-check stays
// exact at any read fraction.
func ReadMostly(cfg ReadMostlyConfig, seed int64) *core.System {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	pickVar := func() core.Var {
		if cfg.HotFrac > 0 && rng.Float64() < cfg.HotFrac {
			return core.Var(fmt.Sprintf("v%d", rng.Intn(cfg.HotVars)))
		}
		return core.Var(fmt.Sprintf("v%d", rng.Intn(cfg.Vars)))
	}
	inc := func(l []core.Value) core.Value { return last(l) + 1 }
	readers := int(float64(cfg.Jobs)*cfg.ReadFrac + 0.5)
	txs := make([]core.Transaction, cfg.Jobs)
	for i := range txs {
		steps := make([]core.Step, cfg.Steps)
		for j := range steps {
			if i < readers {
				steps[j] = core.Step{Var: pickVar(), Kind: core.Read}
			} else {
				steps[j] = core.Step{Var: pickVar(), Kind: core.Update, Fn: inc}
			}
		}
		txs[i] = core.Transaction{Steps: steps}
	}
	// Interleave readers and writers by index so contiguous user
	// assignment doesn't hand all writers to one goroutine.
	rng.Shuffle(len(txs), func(a, b int) { txs[a], txs[b] = txs[b], txs[a] })
	return (&core.System{
		Name: fmt.Sprintf("readmostly-%.2f-%d", cfg.ReadFrac, seed),
		Txs:  txs,
	}).Normalize()
}

// NodeVar names node i of the implicit binary tree used by the
// hierarchical workload: parent(i) = (i−1)/2, root is node 0.
func NodeVar(i int) core.Var { return core.Var(fmt.Sprintf("n%d", i)) }

// ParentOf returns the tree parent of node i and false for the root.
func ParentOf(i int) (int, bool) {
	if i <= 0 {
		return 0, false
	}
	return (i - 1) / 2, true
}

// PathWorkload generates a hierarchical-access system over a complete
// binary tree of the given depth (2^depth − 1 nodes): each transaction
// updates the variables on the root-to-leaf path to a random leaf, in
// root-first order. This is the structured-data setting of Section 5.5
// where tree locking beats 2PL.
func PathWorkload(depth, numTxs int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	nodes := 1<<depth - 1
	firstLeaf := 1<<(depth-1) - 1
	txs := make([]core.Transaction, numTxs)
	for i := range txs {
		leaf := firstLeaf + rng.Intn(nodes-firstLeaf)
		var path []int
		for n := leaf; ; {
			path = append([]int{n}, path...)
			p, ok := ParentOf(n)
			if !ok {
				break
			}
			n = p
		}
		steps := make([]core.Step, len(path))
		for j, n := range path {
			steps[j] = core.Step{Var: NodeVar(n), Kind: core.Update,
				Fn: func(l []core.Value) core.Value { return last(l) + 1 }}
		}
		txs[i] = core.Transaction{Steps: steps}
	}
	return (&core.System{Name: fmt.Sprintf("tree-d%d-%d", depth, numTxs), Txs: txs}).Normalize()
}
