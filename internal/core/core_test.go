package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// incDec is the adversary system from the proof of Theorem 2: T1 increments
// then decrements x, T2 doubles x, IC is "x = 0".
func incDec() *System {
	sys := &System{
		Name: "incdec",
		Txs: []Transaction{
			{Name: "T1", Steps: []Step{
				{Var: "x", Kind: Update, Fn: func(l []Value) Value { return l[len(l)-1] + 1 }},
				{Var: "x", Kind: Update, Fn: func(l []Value) Value { return l[len(l)-1] - 1 }},
			}},
			{Name: "T2", Steps: []Step{
				{Var: "x", Kind: Update, Fn: func(l []Value) Value { return 2 * l[len(l)-1] }},
			}},
		},
		IC: &IC{
			Name:     "x=0",
			Check:    func(db DB) bool { return db["x"] == 0 },
			Initials: func() []DB { return []DB{{"x": 0}} },
		},
	}
	return sys.Normalize()
}

func TestFormatAndVars(t *testing.T) {
	sys := incDec()
	f := sys.Format()
	if len(f) != 2 || f[0] != 2 || f[1] != 1 {
		t.Fatalf("format = %v, want [2 1]", f)
	}
	vars := sys.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("vars = %v, want [x]", vars)
	}
	if sys.StepCount() != 3 {
		t.Fatalf("step count = %d, want 3", sys.StepCount())
	}
	if got := sys.Accessors("x"); len(got) != 2 {
		t.Fatalf("accessors(x) = %v, want both transactions", got)
	}
}

func TestValidate(t *testing.T) {
	sys := incDec()
	if err := sys.Validate(); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	bad := &System{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty system accepted")
	}
	bad2 := &System{Name: "emptytx", Txs: []Transaction{{Name: "T1"}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty transaction accepted")
	}
	bad3 := &System{Name: "novar", Txs: []Transaction{{Steps: []Step{{Kind: Read}}}}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("step without variable accepted")
	}
	bad4 := &System{Name: "badkind", Txs: []Transaction{{Steps: []Step{{Var: "x", Kind: StepKind(9)}}}}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestNormalizeAssignsNames(t *testing.T) {
	sys := &System{Txs: []Transaction{{Steps: []Step{{Var: "x", Kind: Read}}}}}
	sys.Normalize()
	if sys.Txs[0].Name != "T1" {
		t.Fatalf("tx name = %q, want T1", sys.Txs[0].Name)
	}
	if sys.Txs[0].Steps[0].FnName != "f11" {
		t.Fatalf("fn name = %q, want f11", sys.Txs[0].Steps[0].FnName)
	}
	if sys.IC == nil {
		t.Fatal("Normalize did not install a trivial IC")
	}
}

func TestSerialExecutionPreservesIC(t *testing.T) {
	sys := incDec()
	for _, order := range [][]int{{0, 1}, {1, 0}} {
		h := SerialSchedule(sys.Format(), order)
		ok, err := ScheduleCorrect(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("serial schedule %v violates IC", h)
		}
	}
}

func TestInterleavingViolatesIC(t *testing.T) {
	// (T11, T21, T12): x=0 → 1 → 2 → 1. Inconsistent, exactly as in the
	// proof of Theorem 2.
	sys := incDec()
	h := Schedule{{0, 0}, {1, 0}, {0, 1}}
	final, err := Exec(sys, h, DB{"x": 0})
	if err != nil {
		t.Fatal(err)
	}
	if final["x"] != 1 {
		t.Fatalf("final x = %d, want 1", final["x"])
	}
	ok, err := ScheduleCorrect(sys, h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("inconsistent interleaving judged correct")
	}
}

func TestScheduleLegality(t *testing.T) {
	format := []int{2, 1}
	cases := []struct {
		h    Schedule
		want bool
	}{
		{Schedule{{0, 0}, {0, 1}, {1, 0}}, true},
		{Schedule{{0, 0}, {1, 0}, {0, 1}}, true},
		{Schedule{{0, 1}, {0, 0}, {1, 0}}, false}, // out of program order
		{Schedule{{0, 0}, {0, 1}}, false},         // incomplete
		{Schedule{{0, 0}, {0, 0}, {1, 0}}, false}, // repeated step
		{Schedule{{0, 0}, {0, 1}, {2, 0}}, false}, // no such transaction
	}
	for _, c := range cases {
		if got := c.h.Legal(format); got != c.want {
			t.Errorf("Legal(%v) = %v, want %v", c.h, got, c.want)
		}
	}
}

func TestLegalPrefix(t *testing.T) {
	format := []int{2, 1}
	if !(Schedule{{0, 0}}).LegalPrefix(format) {
		t.Error("single first step rejected as prefix")
	}
	if (Schedule{{0, 1}}).LegalPrefix(format) {
		t.Error("out-of-order prefix accepted")
	}
	if !(Schedule{}).LegalPrefix(format) {
		t.Error("empty prefix rejected")
	}
}

func TestSerialDetection(t *testing.T) {
	serial := Schedule{{1, 0}, {0, 0}, {0, 1}}
	if !serial.IsSerial() {
		t.Error("serial schedule not detected")
	}
	order, ok := serial.SerialOrder()
	if !ok || len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Errorf("serial order = %v, %v", order, ok)
	}
	interleaved := Schedule{{0, 0}, {1, 0}, {0, 1}}
	if interleaved.IsSerial() {
		t.Error("interleaved schedule judged serial")
	}
	if _, ok := interleaved.SerialOrder(); ok {
		t.Error("interleaved schedule has a serial order")
	}
}

func TestSwapAdjacent(t *testing.T) {
	h := Schedule{{0, 0}, {1, 0}, {0, 1}}
	g, err := h.SwapAdjacent(0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(Schedule{{1, 0}, {0, 0}, {0, 1}}) {
		t.Errorf("swap result = %v", g)
	}
	sameTx := Schedule{{0, 0}, {0, 1}, {1, 0}}
	if _, err := sameTx.SwapAdjacent(0); err == nil {
		t.Error("swap within one transaction allowed")
	}
	if _, err := h.SwapAdjacent(5); err == nil {
		t.Error("out-of-range swap allowed")
	}
}

func TestExecSerialOrderMatchesSerialSchedule(t *testing.T) {
	sys := incDec()
	for _, order := range [][]int{{0, 1}, {1, 0}, {1, 0, 1}, {0}, {}} {
		got, err := ExecSerialOrder(sys, order, DB{"x": 3})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: step-by-step execution when the order is a
		// permutation.
		if len(order) == 2 {
			h := SerialSchedule(sys.Format(), order)
			want, err := Exec(sys, h, DB{"x": 3})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("order %v: ExecSerialOrder=%v Exec=%v", order, got, want)
			}
		}
	}
	if _, err := ExecSerialOrder(sys, []int{7}, DB{}); err == nil {
		t.Error("out-of-range transaction accepted")
	}
}

func TestStateEligibilityAndDone(t *testing.T) {
	sys := incDec()
	st := NewState(sys, DB{"x": 0})
	if !st.Eligible(StepID{0, 0}) || !st.Eligible(StepID{1, 0}) {
		t.Fatal("first steps should be eligible")
	}
	if st.Eligible(StepID{0, 1}) {
		t.Fatal("second step eligible before first")
	}
	if st.Done() {
		t.Fatal("fresh state reports done")
	}
	for _, id := range []StepID{{0, 0}, {1, 0}, {0, 1}} {
		if err := st.Apply(id); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Done() {
		t.Fatal("completed state not done")
	}
	if err := st.Apply(StepID{0, 0}); err == nil {
		t.Fatal("re-applying a step succeeded")
	}
}

func TestStateCloneIsIndependent(t *testing.T) {
	sys := incDec()
	st := NewState(sys, DB{"x": 5})
	c := st.Clone()
	if err := st.Apply(StepID{0, 0}); err != nil {
		t.Fatal(err)
	}
	if c.PC[0] != 0 || c.Global["x"] != 5 {
		t.Error("clone mutated by original")
	}
}

func TestReadStepLeavesGlobalUnchanged(t *testing.T) {
	sys := (&System{
		Name: "reader",
		Txs: []Transaction{{Steps: []Step{
			{Var: "x", Kind: Read},
			{Var: "y", Kind: Write, Fn: func(l []Value) Value { return l[0] }},
		}}},
	}).Normalize()
	final, err := Exec(sys, Schedule{{0, 0}, {0, 1}}, DB{"x": 42, "y": 0})
	if err != nil {
		t.Fatal(err)
	}
	if final["x"] != 42 {
		t.Errorf("read step changed x: %v", final)
	}
	if final["y"] != 42 {
		t.Errorf("write step did not copy x into y: %v", final)
	}
}

func TestExecErrors(t *testing.T) {
	sys := incDec()
	if _, err := Exec(sys, Schedule{{0, 1}}, DB{}); err == nil {
		t.Error("illegal schedule executed")
	}
	if _, err := Exec(sys, Schedule{{0, 0}}, DB{}); err == nil {
		t.Error("incomplete schedule accepted as complete execution")
	}
	noFn := (&System{Txs: []Transaction{{Steps: []Step{{Var: "x", Kind: Update}}}}}).Normalize()
	if _, err := Exec(noFn, Schedule{{0, 0}}, DB{}); err == nil {
		t.Error("uninterpreted update executed")
	}
}

func TestDBEqualAndClone(t *testing.T) {
	a := DB{"x": 1, "y": 0}
	b := DB{"x": 1}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("missing variables should compare as zero")
	}
	c := a.Clone()
	c["x"] = 9
	if a["x"] != 1 {
		t.Error("clone shares storage")
	}
	if a.Equal(DB{"x": 2}) {
		t.Error("unequal states compare equal")
	}
	if got := a.String(); got != "{x=1, y=0}" {
		t.Errorf("DB.String() = %q", got)
	}
}

func TestStepIDAndScheduleString(t *testing.T) {
	if got := (StepID{0, 1}).String(); got != "T12" {
		t.Errorf("StepID string = %q", got)
	}
	h := Schedule{{0, 0}, {1, 0}}
	if got := h.String(); got != "(T11, T21)" {
		t.Errorf("schedule string = %q", got)
	}
	if h.Key() == (Schedule{{0, 0}, {0, 1}}).Key() {
		t.Error("distinct schedules share a key")
	}
}

func TestKindString(t *testing.T) {
	if Update.String() != "U" || Read.String() != "R" || Write.String() != "W" {
		t.Error("kind names wrong")
	}
	if StepKind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
	if StepKind(9).Valid() {
		t.Error("kind 9 valid")
	}
}

// Property: SerialSchedule produces legal schedules for any format and any
// permutation.
func TestSerialScheduleAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		format := make([]int, n)
		for i := range format {
			format[i] = 1 + r.Intn(4)
		}
		order := r.Perm(n)
		return SerialSchedule(format, order).Legal(format)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: a legal schedule stays legal under any sequence of permitted
// adjacent swaps.
func TestSwapPreservesLegality(t *testing.T) {
	format := []int{2, 2, 1}
	h := AllSteps(format)
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 500; step++ {
		k := rng.Intn(len(h) - 1)
		g, err := h.SwapAdjacent(k)
		if err != nil {
			continue
		}
		if !g.Legal(format) {
			t.Fatalf("swap produced illegal schedule %v", g)
		}
		h = g
	}
}

func TestTrivialICAndInitialStates(t *testing.T) {
	sys := (&System{Txs: []Transaction{{Steps: []Step{{Var: "x", Kind: Read}, {Var: "y", Kind: Read}}}}}).Normalize()
	inits := sys.InitialStates()
	if len(inits) != 1 {
		t.Fatalf("want 1 initial state, got %d", len(inits))
	}
	if _, ok := inits[0]["y"]; !ok {
		t.Error("initial state missing variable y")
	}
	if !sys.Consistent(DB{"x": 99}) {
		t.Error("trivial IC rejected a state")
	}
}

func TestExecutable(t *testing.T) {
	sys := incDec()
	if !sys.Executable() {
		t.Error("interpreted system not executable")
	}
	syntactic := (&System{Txs: []Transaction{{Steps: []Step{{Var: "x", Kind: Update}}}}}).Normalize()
	if syntactic.Executable() {
		t.Error("uninterpreted update judged executable")
	}
	readOnly := (&System{Txs: []Transaction{{Steps: []Step{{Var: "x", Kind: Read}}}}}).Normalize()
	if !readOnly.Executable() {
		t.Error("read-only system should be executable")
	}
}

func TestSystemString(t *testing.T) {
	s := incDec().String()
	for _, want := range []string{"incdec", "T11", "T21", "U:x"} {
		if !containsStr(s, want) {
			t.Errorf("System.String() missing %q in %q", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
