package core

import "fmt"

// State is a full state (J, L, G) of a transaction system: per-transaction
// program counters, the declared local variables, and the global database
// state. A State is created over a system and an initial database state and
// advanced one eligible step at a time.
type State struct {
	sys *System
	// PC[i] is j_i − 1 in the paper's 1-based notation: the number of steps
	// of transaction i already executed. PC[i] == m_i means Ti terminated.
	PC []int
	// Locals[i][j] is t_{i,j+1}, defined for j < PC[i].
	Locals [][]Value
	// Global is G, the current database state.
	Global DB
}

// NewState returns the initial state (J = (1..1), no declared locals, G =
// init) for the system. The initial database is cloned; missing variables
// default to zero.
func NewState(sys *System, init DB) *State {
	g := init.Clone()
	for _, v := range sys.Vars() {
		if _, ok := g[v]; !ok {
			g[v] = 0
		}
	}
	locals := make([][]Value, len(sys.Txs))
	for i := range sys.Txs {
		locals[i] = make([]Value, 0, len(sys.Txs[i].Steps))
	}
	return &State{
		sys:    sys,
		PC:     make([]int, len(sys.Txs)),
		Locals: locals,
		Global: g,
	}
}

// System returns the system the state belongs to.
func (st *State) System() *System { return st.sys }

// Eligible reports whether step id is the next step of its transaction,
// i.e. executable in the current state.
func (st *State) Eligible(id StepID) bool {
	return id.Tx >= 0 && id.Tx < len(st.sys.Txs) &&
		id.Idx == st.PC[id.Tx] && id.Idx < len(st.sys.Txs[id.Tx].Steps)
}

// Done reports whether every transaction has terminated.
func (st *State) Done() bool {
	for i, pc := range st.PC {
		if pc < len(st.sys.Txs[i].Steps) {
			return false
		}
	}
	return true
}

// Apply executes step id:
//
//	j_i ← j_i + 1;  t_ij ← x_ij;  x_ij ← φ_ij(t_i1..t_ij)
//
// It returns an error if the step is not eligible or lacks an
// interpretation.
func (st *State) Apply(id StepID) error {
	if !st.Eligible(id) {
		return fmt.Errorf("step %v not eligible (pc=%v)", id, st.PC)
	}
	step := st.sys.Step(id)
	read := st.Global[step.Var]
	st.Locals[id.Tx] = append(st.Locals[id.Tx], read)
	st.PC[id.Tx]++
	switch step.Kind {
	case Read:
		// Write-back is the identity on t_ij: the global state is
		// unchanged.
	default:
		if step.Fn == nil {
			return fmt.Errorf("step %v has no interpretation", id)
		}
		st.Global[step.Var] = step.Fn(st.Locals[id.Tx])
	}
	return nil
}

// Clone returns an independent deep copy of the state.
func (st *State) Clone() *State {
	pc := make([]int, len(st.PC))
	copy(pc, st.PC)
	locals := make([][]Value, len(st.Locals))
	for i := range st.Locals {
		locals[i] = append([]Value(nil), st.Locals[i]...)
	}
	return &State{sys: st.sys, PC: pc, Locals: locals, Global: st.Global.Clone()}
}

// Exec executes the schedule from the initial database state and returns
// the final database state. The schedule must be legal and complete for the
// system.
func Exec(sys *System, h Schedule, init DB) (DB, error) {
	st := NewState(sys, init)
	for _, id := range h {
		if err := st.Apply(id); err != nil {
			return nil, fmt.Errorf("exec %v: %w", h, err)
		}
	}
	if !st.Done() {
		return nil, fmt.Errorf("exec: schedule %v incomplete for format %v", h, sys.Format())
	}
	return st.Global, nil
}

// ExecPrefix executes a legal prefix of a schedule (not necessarily
// complete) and returns the resulting state.
func ExecPrefix(sys *System, h Schedule, init DB) (*State, error) {
	st := NewState(sys, init)
	for _, id := range h {
		if err := st.Apply(id); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ExecSerialOrder executes the transactions serially in the given order
// (indices into sys.Txs, possibly with repetitions or omissions, as in the
// paper's weak-serializability definition) and returns the final state.
func ExecSerialOrder(sys *System, order []int, init DB) (DB, error) {
	g := init.Clone()
	for _, v := range sys.Vars() {
		if _, ok := g[v]; !ok {
			g[v] = 0
		}
	}
	for _, ti := range order {
		if ti < 0 || ti >= len(sys.Txs) {
			return nil, fmt.Errorf("serial order references transaction %d of %d", ti, len(sys.Txs))
		}
		locals := make([]Value, 0, len(sys.Txs[ti].Steps))
		for j := range sys.Txs[ti].Steps {
			step := sys.Txs[ti].Steps[j]
			locals = append(locals, g[step.Var])
			if step.Kind == Read {
				continue
			}
			if step.Fn == nil {
				return nil, fmt.Errorf("step %v has no interpretation", StepID{ti, j})
			}
			g[step.Var] = step.Fn(locals)
		}
	}
	return g, nil
}
