package core

import (
	"fmt"
	"strings"
)

// Schedule is a log (history) of a transaction system: a sequence of step
// identifiers. A legal schedule is a permutation of all steps of the system
// preserving each transaction's internal order; the set of legal schedules
// is H(T), which depends only on the format.
type Schedule []StepID

// String renders the schedule in the paper's notation: (T11, T21, T12).
func (h Schedule) String() string {
	parts := make([]string, len(h))
	for i, id := range h {
		parts[i] = id.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Clone returns an independent copy.
func (h Schedule) Clone() Schedule { return append(Schedule(nil), h...) }

// Equal reports element-wise equality.
func (h Schedule) Equal(o Schedule) bool {
	if len(h) != len(o) {
		return false
	}
	for i := range h {
		if h[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a compact, comparable encoding of the schedule, suitable as a
// map key.
func (h Schedule) Key() string {
	var b strings.Builder
	b.Grow(len(h) * 3)
	for _, id := range h {
		fmt.Fprintf(&b, "%d.%d;", id.Tx, id.Idx)
	}
	return b.String()
}

// Legal reports whether h is a legal, complete schedule for format f: every
// step T_ij with i < len(f), j < f[i] appears exactly once and the steps of
// each transaction appear in program order.
func (h Schedule) Legal(format []int) bool {
	next := make([]int, len(format))
	total := 0
	for _, m := range format {
		total += m
	}
	if len(h) != total {
		return false
	}
	for _, id := range h {
		if id.Tx < 0 || id.Tx >= len(format) {
			return false
		}
		if id.Idx != next[id.Tx] || id.Idx >= format[id.Tx] {
			return false
		}
		next[id.Tx]++
	}
	return true
}

// LegalPrefix reports whether h is a legal prefix of some schedule of the
// format: program order respected, no step repeated, no step out of range.
func (h Schedule) LegalPrefix(format []int) bool {
	next := make([]int, len(format))
	for _, id := range h {
		if id.Tx < 0 || id.Tx >= len(format) {
			return false
		}
		if id.Idx != next[id.Tx] || id.Idx >= format[id.Tx] {
			return false
		}
		next[id.Tx]++
	}
	return true
}

// IsSerial reports whether the schedule executes transactions one after
// another with no interleaving.
func (h Schedule) IsSerial() bool {
	cur := -1
	seen := map[int]bool{}
	for _, id := range h {
		if id.Tx != cur {
			if seen[id.Tx] {
				return false
			}
			seen[id.Tx] = true
			cur = id.Tx
		}
	}
	return true
}

// SerialOrder returns, for a serial schedule, the order in which
// transactions appear. The second result is false if the schedule is not
// serial.
func (h Schedule) SerialOrder() ([]int, bool) {
	if !h.IsSerial() {
		return nil, false
	}
	var order []int
	cur := -1
	for _, id := range h {
		if id.Tx != cur {
			order = append(order, id.Tx)
			cur = id.Tx
		}
	}
	return order, true
}

// Project returns the subsequence of h consisting of the steps of
// transaction tx.
func (h Schedule) Project(tx int) Schedule {
	var out Schedule
	for _, id := range h {
		if id.Tx == tx {
			out = append(out, id)
		}
	}
	return out
}

// SwapAdjacent returns a copy of h with positions k and k+1 exchanged: an
// "elementary transformation" in the sense of Section 5.3. It returns an
// error if the swap would violate program order (both steps from the same
// transaction).
func (h Schedule) SwapAdjacent(k int) (Schedule, error) {
	if k < 0 || k+1 >= len(h) {
		return nil, fmt.Errorf("swap index %d out of range [0,%d)", k, len(h)-1)
	}
	if h[k].Tx == h[k+1].Tx {
		return nil, fmt.Errorf("cannot swap %v and %v: same transaction", h[k], h[k+1])
	}
	out := h.Clone()
	out[k], out[k+1] = out[k+1], out[k]
	return out, nil
}

// SerialSchedule builds the serial schedule that executes the transactions
// of the format in the given order (a permutation of 0..n−1).
func SerialSchedule(format []int, order []int) Schedule {
	var h Schedule
	for _, ti := range order {
		for j := 0; j < format[ti]; j++ {
			h = append(h, StepID{ti, j})
		}
	}
	return h
}

// AllSteps returns the schedule that lists every step of the format in
// transaction order: the serial schedule for order (0, 1, ..., n−1).
func AllSteps(format []int) Schedule {
	order := make([]int, len(format))
	for i := range order {
		order[i] = i
	}
	return SerialSchedule(format, order)
}

// ScheduleCorrect reports whether executing h preserves consistency: for
// every consistent initial state supplied by the system's IC generator, the
// final state is consistent. This is the membership test behind C(T).
func ScheduleCorrect(sys *System, h Schedule) (bool, error) {
	if !h.Legal(sys.Format()) {
		return false, fmt.Errorf("schedule %v not legal for format %v", h, sys.Format())
	}
	for _, init := range sys.InitialStates() {
		if !sys.Consistent(init) {
			continue
		}
		final, err := Exec(sys, h, init)
		if err != nil {
			return false, err
		}
		if !sys.Consistent(final) {
			return false, nil
		}
	}
	return true, nil
}
