// Package core implements the transaction-system model of Kung &
// Papadimitriou, "An Optimality Theory of Concurrency Control for Databases"
// (SIGMOD 1979), Section 2.
//
// A transaction system is a finite set of transactions {T1..Tn}. Each
// transaction Ti is a straight-line sequence of steps Ti1..Timi. Step Tij
// executes, indivisibly,
//
//	t_ij ← x_ij;  x_ij ← f_ij(t_i1, ..., t_ij)
//
// where x_ij is a global variable, t_i1..t_imi are the transaction's local
// variables, and f_ij is a function symbol. The n-tuple (m1..mn) is the
// format of the system. Interpretations of the f_ij (the semantics), and the
// integrity constraints IC over the global state, complete the definition.
//
// The package provides the syntactic objects (Var, Step, Transaction,
// System), the operational semantics (State, Exec), schedules (legal
// interleavings) and the correctness predicate behind C(T).
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Var names a global variable of a transaction system. Variables are
// abstractions of individually accessible data entities (bits, records,
// files); their granularity is irrelevant to the theory.
type Var string

// Value is a concrete domain element. The paper allows any enumerable
// domain; the concrete engine fixes D(v) = int64 for every v, which suffices
// for all workloads studied (the symbolic Herbrand engine in
// internal/herbrand handles the uninterpreted case).
type Value int64

// DB is a global database state G: an assignment of values to variables.
type DB map[Var]Value

// Clone returns an independent copy of the state.
func (d DB) Clone() DB {
	c := make(DB, len(d))
	for v, x := range d {
		c[v] = x
	}
	return c
}

// Equal reports whether two states assign the same value to every variable.
// Variables absent from a map are treated as zero.
func (d DB) Equal(o DB) bool {
	for v, x := range d {
		if o[v] != x {
			return false
		}
	}
	for v, x := range o {
		if d[v] != x {
			return false
		}
	}
	return true
}

// String renders the state deterministically, sorted by variable name.
func (d DB) String() string {
	vars := make([]string, 0, len(d))
	for v := range d {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", v, d[Var(v)])
	}
	b.WriteByte('}')
	return b.String()
}

// StepKind classifies a step syntactically. The classification is part of
// the syntax (the paper's "flowchart with the names of the variables
// accessed and updated at each step"): it determines the conflict relation
// and the Herbrand semantics, not the concrete interpretation.
type StepKind int

const (
	// Update is the general step: reads x_ij and rewrites it as a function
	// of everything the transaction has read so far (including this read).
	Update StepKind = iota
	// Read is a step whose f_ij is the identity on t_ij: the write-back is
	// a semantic no-op. Read steps conflict only with writers.
	Read
	// Write is a step whose f_ij is independent of t_ij: the value read is
	// never used. Writers conflict with both readers and writers.
	Write
)

// String returns the conventional one-letter name of the kind.
func (k StepKind) String() string {
	switch k {
	case Update:
		return "U"
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Valid reports whether k is one of the declared kinds.
func (k StepKind) Valid() bool { return k == Update || k == Read || k == Write }

// StepFunc is a concrete interpretation φ_ij of a function symbol f_ij. It
// receives the transaction's local values t_i1..t_ij (the last element is
// the value just read by this step) and returns the new value of x_ij.
type StepFunc func(locals []Value) Value

// Step is one transaction step T_ij.
type Step struct {
	// Var is x_ij, the global variable read and written by the step.
	Var Var
	// Kind is the syntactic classification (Update, Read or Write).
	Kind StepKind
	// Fn is the concrete interpretation of f_ij. It may be nil for Read
	// steps (identity is implied) and for purely syntactic systems that are
	// only executed under Herbrand semantics.
	Fn StepFunc
	// FnName names the function symbol f_ij for the Herbrand universe and
	// for printing. If empty, System.Normalize assigns the canonical name
	// "f<i><j>" (1-based, matching the paper).
	FnName string
}

// Transaction is a straight-line program: a named, ordered list of steps.
type Transaction struct {
	Name  string
	Steps []Step
}

// Len returns m_i, the number of steps.
func (t *Transaction) Len() int { return len(t.Steps) }

// StepID identifies step Idx (0-based) of transaction Tx (0-based) within a
// system. The paper writes T_{Tx+1,Idx+1}.
type StepID struct {
	Tx, Idx int
}

// String renders the identifier in the paper's 1-based notation, e.g. "T12".
func (id StepID) String() string { return fmt.Sprintf("T%d%d", id.Tx+1, id.Idx+1) }

// IC captures the integrity constraints of a system: the predicate that
// defines consistent global states, together with a finite generator of
// representative consistent initial states used to decide schedule
// correctness. The paper quantifies over all consistent states; workloads
// in this repo supply generators that cover the reachable invariant
// manifold (documented per workload).
type IC struct {
	Name string
	// Check reports whether the global state satisfies the constraints.
	Check func(DB) bool
	// Initials enumerates representative consistent initial states.
	Initials func() []DB
}

// TrivialIC accepts every state; its only initial state is the given one.
// It models "no integrity constraints" (every schedule is correct).
func TrivialIC(init DB) *IC {
	return &IC{
		Name:     "trivial",
		Check:    func(DB) bool { return true },
		Initials: func() []DB { return []DB{init.Clone()} },
	}
}

// System is a transaction system: transactions plus integrity constraints.
type System struct {
	Name string
	Txs  []Transaction
	// IC holds the integrity constraints. A nil IC behaves like a trivial
	// constraint with a single all-zero initial state.
	IC *IC
}

// Format returns the n-tuple (m1..mn) of transaction lengths.
func (s *System) Format() []int {
	f := make([]int, len(s.Txs))
	for i := range s.Txs {
		f[i] = len(s.Txs[i].Steps)
	}
	return f
}

// NumTxs returns n, the number of transactions.
func (s *System) NumTxs() int { return len(s.Txs) }

// StepCount returns the total number of steps Σ m_i.
func (s *System) StepCount() int {
	n := 0
	for i := range s.Txs {
		n += len(s.Txs[i].Steps)
	}
	return n
}

// Step returns the step named by id.
//
//optcc:hotpath
func (s *System) Step(id StepID) Step { return s.Txs[id.Tx].Steps[id.Idx] }

// Vars returns the sorted set of global variable names used by the system.
func (s *System) Vars() []Var {
	seen := map[Var]bool{}
	for i := range s.Txs {
		for j := range s.Txs[i].Steps {
			seen[s.Txs[i].Steps[j].Var] = true
		}
	}
	vars := make([]Var, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(a, b int) bool { return vars[a] < vars[b] })
	return vars
}

// Readers returns the transactions (indices) containing at least one step
// on v.
func (s *System) Accessors(v Var) []int {
	var out []int
	for i := range s.Txs {
		for j := range s.Txs[i].Steps {
			if s.Txs[i].Steps[j].Var == v {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// Normalize fills in derived fields: canonical function-symbol names for
// steps that lack one, default transaction names, and a trivial IC if none
// is set. It returns the receiver for chaining.
func (s *System) Normalize() *System {
	for i := range s.Txs {
		if s.Txs[i].Name == "" {
			s.Txs[i].Name = fmt.Sprintf("T%d", i+1)
		}
		for j := range s.Txs[i].Steps {
			if s.Txs[i].Steps[j].FnName == "" {
				s.Txs[i].Steps[j].FnName = fmt.Sprintf("f%d%d", i+1, j+1)
			}
		}
	}
	if s.IC == nil {
		init := DB{}
		for _, v := range s.Vars() {
			init[v] = 0
		}
		s.IC = TrivialIC(init)
	}
	return s
}

// Validate checks structural well-formedness: at least one transaction,
// every transaction non-empty, every step names a variable and a valid
// kind, and every non-Read step of an executable system has an
// interpretation.
func (s *System) Validate() error {
	if len(s.Txs) == 0 {
		return fmt.Errorf("system %q: no transactions", s.Name)
	}
	for i := range s.Txs {
		t := &s.Txs[i]
		if len(t.Steps) == 0 {
			return fmt.Errorf("system %q: transaction %d is empty", s.Name, i+1)
		}
		for j := range t.Steps {
			st := &t.Steps[j]
			if st.Var == "" {
				return fmt.Errorf("system %q: step T%d%d has no variable", s.Name, i+1, j+1)
			}
			if !st.Kind.Valid() {
				return fmt.Errorf("system %q: step T%d%d has invalid kind %d", s.Name, i+1, j+1, int(st.Kind))
			}
		}
	}
	return nil
}

// Executable reports whether every step has a concrete interpretation (Read
// steps are always executable: identity is implied).
func (s *System) Executable() bool {
	for i := range s.Txs {
		for j := range s.Txs[i].Steps {
			st := s.Txs[i].Steps[j]
			if st.Kind != Read && st.Fn == nil {
				return false
			}
		}
	}
	return true
}

// String renders the system's syntax, one transaction per line.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system %s format %v\n", s.Name, s.Format())
	for i := range s.Txs {
		fmt.Fprintf(&b, "  %s:", s.Txs[i].Name)
		for j := range s.Txs[i].Steps {
			st := s.Txs[i].Steps[j]
			fmt.Fprintf(&b, " %s(%s:%s)", StepID{i, j}, st.Kind, st.Var)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// InitialStates returns the consistent initial states supplied by the IC.
// Each returned state is an independent copy extended with zero entries for
// any system variable the generator omitted.
func (s *System) InitialStates() []DB {
	if s.IC == nil || s.IC.Initials == nil {
		init := DB{}
		for _, v := range s.Vars() {
			init[v] = 0
		}
		return []DB{init}
	}
	gens := s.IC.Initials()
	out := make([]DB, 0, len(gens))
	for _, g := range gens {
		c := g.Clone()
		for _, v := range s.Vars() {
			if _, ok := c[v]; !ok {
				c[v] = 0
			}
		}
		out = append(out, c)
	}
	return out
}

// Consistent reports whether the state satisfies the integrity constraints.
func (s *System) Consistent(db DB) bool {
	if s.IC == nil || s.IC.Check == nil {
		return true
	}
	return s.IC.Check(db)
}
