// Package fixpoint enumerates the schedule space H of a small transaction
// system and classifies every history against the paper's nested fixpoint
// sets:
//
//	serial ⊆ CSR ⊆ SR(T) ⊆ WSR(T) ⊆ C(T) ⊆ H
//
// It also measures the fixpoint sets realized by online schedulers, and
// reports the Section 6 quantity |P|/|H| — the probability that a
// uniformly random request history passes a scheduler undelayed.
package fixpoint

import (
	"fmt"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/online"
	"optcc/internal/report"
	"optcc/internal/schedule"
	"optcc/internal/wsr"
)

// Options configures a classification run.
type Options struct {
	// WithWSR enables WSR(T) membership (requires an executable system).
	WithWSR bool
	// WithCorrect enables C(T) membership (requires interpretations and
	// integrity constraints).
	WithCorrect bool
	// Limit bounds |H| for safety (0 means 200 000).
	Limit int
}

// Counts holds the classification totals for one system.
type Counts struct {
	System  string
	Total   int
	Serial  int
	CSR     int
	SR      int
	WSR     int // -1 when not computed
	Correct int // -1 when not computed
}

// Classify enumerates H(T) and counts membership in every fixpoint class.
// It verifies the theoretical inclusions as it goes and returns an error if
// any is violated (which would indicate an implementation bug, not a
// property of the system).
func Classify(sys *core.System, opts Options) (*Counts, error) {
	limit := opts.Limit
	if limit <= 0 {
		limit = 200_000
	}
	hc, err := herbrand.NewChecker(sys)
	if err != nil {
		return nil, err
	}
	var wc *wsr.Checker
	if opts.WithWSR {
		wc, err = wsr.NewChecker(sys, wsr.Options{})
		if err != nil {
			return nil, err
		}
	}
	c := &Counts{System: sys.Name, WSR: -1, Correct: -1}
	if opts.WithWSR {
		c.WSR = 0
	}
	if opts.WithCorrect {
		c.Correct = 0
	}
	var classifyErr error
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		c.Total++
		if c.Total > limit {
			classifyErr = fmt.Errorf("fixpoint: |H| exceeds limit %d for %s", limit, sys.Name)
			return false
		}
		serial := h.IsSerial()
		csr, _, err := conflict.Serializable(sys, h)
		if err != nil {
			classifyErr = err
			return false
		}
		sr, _, err := hc.Serializable(h)
		if err != nil {
			classifyErr = err
			return false
		}
		if serial {
			c.Serial++
		}
		if csr {
			c.CSR++
		}
		if sr {
			c.SR++
		}
		if serial && !csr {
			classifyErr = fmt.Errorf("fixpoint: serial %v not CSR", h)
			return false
		}
		if csr && !sr {
			classifyErr = fmt.Errorf("fixpoint: %v is CSR but not SR", h)
			return false
		}
		weak := false
		if opts.WithWSR {
			weak, _, err = wc.Weak(h)
			if err != nil {
				classifyErr = err
				return false
			}
			if weak {
				c.WSR++
			}
			if sr && !weak {
				classifyErr = fmt.Errorf("fixpoint: %v is SR but not WSR", h)
				return false
			}
		}
		if opts.WithCorrect {
			ok, err := core.ScheduleCorrect(sys, h)
			if err != nil {
				classifyErr = err
				return false
			}
			if ok {
				c.Correct++
			}
			if opts.WithWSR && weak && !ok {
				classifyErr = fmt.Errorf("fixpoint: %v is WSR but incorrect", h)
				return false
			}
		}
		return true
	})
	if classifyErr != nil {
		return nil, classifyErr
	}
	return c, nil
}

// Table renders the counts with the |P|/|H| ratios of Section 6.
func (c *Counts) Table() *report.Table {
	t := report.NewTable(fmt.Sprintf("fixpoint hierarchy — %s", c.System),
		"class", "|P|", "|P|/|H|")
	add := func(name string, n int) {
		if n < 0 {
			return
		}
		t.AddRow(name, n, report.Ratio(n, c.Total))
	}
	add("serial", c.Serial)
	add("CSR", c.CSR)
	add("SR", c.SR)
	add("WSR", c.WSR)
	add("C(T)", c.Correct)
	add("H", c.Total)
	return t
}

// OnlineCounts measures the realized fixpoint set of each scheduler: the
// number of histories in H that pass entirely undelayed.
func OnlineCounts(sys *core.System, scheds []online.Scheduler, limit int) (*report.Table, map[string]int, error) {
	if limit <= 0 {
		limit = 200_000
	}
	hs := schedule.All(sys.Format(), limit)
	t := report.NewTable(fmt.Sprintf("online realized fixpoints — %s", sys.Name),
		"scheduler", "|P|", "|P|/|H|")
	out := map[string]int{}
	for _, s := range scheds {
		n, err := online.Fixpoint(sys, s, hs, nil)
		if err != nil {
			return nil, nil, err
		}
		out[s.Name()] = n
		t.AddRow(s.Name(), n, report.Ratio(n, len(hs)))
	}
	return t, out, nil
}
