package fixpoint

import (
	"strings"
	"testing"

	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/workload"
)

func TestClassifyFigure1(t *testing.T) {
	c, err := Classify(workload.Figure1(), Options{WithWSR: true, WithCorrect: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != 3 {
		t.Fatalf("|H| = %d, want 3", c.Total)
	}
	if c.Serial != 2 {
		t.Errorf("serial = %d, want 2", c.Serial)
	}
	if c.SR != 2 {
		t.Errorf("SR = %d, want 2 (the non-serial history is outside SR)", c.SR)
	}
	if c.WSR != 3 {
		t.Errorf("WSR = %d, want 3 (Figure 1's point: the history is weakly serializable)", c.WSR)
	}
	if c.Correct != 3 {
		t.Errorf("C = %d, want 3", c.Correct)
	}
}

func TestClassifyBanking(t *testing.T) {
	c, err := Classify(workload.Banking(), Options{WithCorrect: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Total != 1260 {
		t.Fatalf("|H| = %d, want 1260 for format (3,2,4)", c.Total)
	}
	if !(c.Serial < c.CSR && c.CSR <= c.SR && c.SR <= c.Correct && c.Correct < c.Total) {
		t.Errorf("hierarchy not strict where expected: serial=%d CSR=%d SR=%d C=%d H=%d",
			c.Serial, c.CSR, c.SR, c.Correct, c.Total)
	}
	if c.Serial != 6 {
		t.Errorf("serial = %d, want 3! = 6", c.Serial)
	}
}

func TestClassifyTheorem2Adversary(t *testing.T) {
	c, err := Classify(workload.Theorem2Adversary(), Options{WithWSR: true, WithCorrect: true})
	if err != nil {
		t.Fatal(err)
	}
	// For the adversary, only the serial schedules are correct: that is
	// precisely why the serial scheduler is optimal at minimum information.
	if c.Correct != c.Serial {
		t.Errorf("C = %d, serial = %d; Theorem 2 expects equality", c.Correct, c.Serial)
	}
}

func TestClassifyLimit(t *testing.T) {
	if _, err := Classify(workload.Banking(), Options{Limit: 10}); err == nil {
		t.Error("limit not enforced")
	}
}

func TestCountsTable(t *testing.T) {
	c, err := Classify(workload.Figure1(), Options{WithWSR: true, WithCorrect: true})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Table().String()
	for _, want := range []string{"serial", "CSR", "SR", "WSR", "C(T)", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// WSR row suppressed when not computed.
	c2, err := Classify(workload.Figure1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(c2.Table().String(), "WSR") {
		t.Error("WSR row present without WithWSR")
	}
}

func TestOnlineCountsOrdering(t *testing.T) {
	sys := workload.Chain()
	tbl, counts, err := OnlineCounts(sys, []online.Scheduler{
		online.NewSerial(),
		online.NewStrict2PL(lockmgr.Detect),
		online.NewSGT(),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Errorf("table rows = %d", tbl.Len())
	}
	if !(counts["serial"] <= counts["strict-2pl/detect"] && counts["strict-2pl/detect"] <= counts["sgt/delay"]) {
		t.Errorf("online hierarchy violated: %v", counts)
	}
	if counts["serial"] >= counts["sgt/delay"] {
		t.Errorf("no strict growth on chain system: %v", counts)
	}
}
