// Package schedule provides the combinatorics of the schedule space H(T):
// counting, enumeration, ranking/unranking and uniform random sampling of
// the legal interleavings of a transaction-system format.
//
// H depends only on the format (m1..mn): |H| is the multinomial coefficient
// (Σmi)! / Πmi!. The paper's performance measure |P|/|H| (Section 6) is the
// probability that a uniformly random request history needs no delay, so
// exact counting and uniform sampling are first-class operations here.
package schedule

import (
	"fmt"
	"math/big"
	"math/rand"

	"optcc/internal/core"
)

// Count returns |H| for the format: the multinomial coefficient
// (Σ m_i)! / Π m_i!.
func Count(format []int) *big.Int {
	total := 0
	for _, m := range format {
		if m < 0 {
			return big.NewInt(0)
		}
		total += m
	}
	res := big.NewInt(1)
	// Π over transactions of C(remaining, m_i).
	remaining := total
	for _, m := range format {
		res.Mul(res, binomial(remaining, m))
		remaining -= m
	}
	return res
}

// CountSerial returns the number of serial schedules: n! for n non-empty
// transactions.
func CountSerial(format []int) *big.Int {
	res := big.NewInt(1)
	for i := 2; i <= len(format); i++ {
		res.Mul(res, big.NewInt(int64(i)))
	}
	return res
}

func binomial(n, k int) *big.Int {
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Enumerate calls yield for every legal schedule of the format, in
// lexicographic order of transaction indices. Enumeration stops early if
// yield returns false. The Schedule passed to yield is reused between
// calls; clone it if it must be retained.
func Enumerate(format []int, yield func(core.Schedule) bool) {
	total := 0
	for _, m := range format {
		total += m
	}
	cur := make(core.Schedule, 0, total)
	next := make([]int, len(format))
	var rec func() bool
	rec = func() bool {
		if len(cur) == total {
			return yield(cur)
		}
		for i := range format {
			if next[i] < format[i] {
				cur = append(cur, core.StepID{Tx: i, Idx: next[i]})
				next[i]++
				ok := rec()
				next[i]--
				cur = cur[:len(cur)-1]
				if !ok {
					return false
				}
			}
		}
		return true
	}
	rec()
}

// All materializes every legal schedule of the format. Intended for small
// formats only; it panics if |H| exceeds limit (pass 0 for the default of
// 1e6).
func All(format []int, limit int) []core.Schedule {
	if limit <= 0 {
		limit = 1_000_000
	}
	if Count(format).Cmp(big.NewInt(int64(limit))) > 0 {
		panic(fmt.Sprintf("schedule.All: |H| = %v exceeds limit %d for format %v", Count(format), limit, format))
	}
	var out []core.Schedule
	Enumerate(format, func(h core.Schedule) bool {
		out = append(out, h.Clone())
		return true
	})
	return out
}

// Serials returns all serial schedules of the format (n! of them), in
// lexicographic order of the transaction permutation.
func Serials(format []int) []core.Schedule {
	n := len(format)
	perm := make([]int, n)
	used := make([]bool, n)
	var out []core.Schedule
	var rec func(depth int)
	rec = func(depth int) {
		if depth == n {
			out = append(out, core.SerialSchedule(format, perm))
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				perm[depth] = i
				rec(depth + 1)
				used[i] = false
			}
		}
	}
	rec(0)
	return out
}

// Random returns a uniformly random legal schedule of the format. Each of
// the |H| schedules is equally likely (shuffling the multiset of
// transaction labels is uniform over distinct arrangements because every
// arrangement has the same multiplicity Π m_i!).
func Random(format []int, rng *rand.Rand) core.Schedule {
	var labels []int
	for i, m := range format {
		for j := 0; j < m; j++ {
			labels = append(labels, i)
		}
	}
	rng.Shuffle(len(labels), func(a, b int) { labels[a], labels[b] = labels[b], labels[a] })
	next := make([]int, len(format))
	h := make(core.Schedule, len(labels))
	for k, tx := range labels {
		h[k] = core.StepID{Tx: tx, Idx: next[tx]}
		next[tx]++
	}
	return h
}

// Rank returns the index of h in the lexicographic enumeration order used
// by Enumerate. Rank and Unrank are inverses.
func Rank(format []int, h core.Schedule) (*big.Int, error) {
	if !h.Legal(format) {
		return nil, fmt.Errorf("schedule %v not legal for format %v", h, format)
	}
	remaining := append([]int(nil), format...)
	total := 0
	for _, m := range format {
		total += m
	}
	rank := big.NewInt(0)
	for pos, id := range h {
		rest := total - pos - 1
		// Count schedules starting with a smaller transaction index at
		// this position.
		for i := 0; i < id.Tx; i++ {
			if remaining[i] > 0 {
				remaining[i]--
				rank.Add(rank, countRemaining(remaining, rest))
				remaining[i]++
			}
		}
		remaining[id.Tx]--
	}
	return rank, nil
}

// Unrank returns the schedule at the given index of the lexicographic
// enumeration order. The index must lie in [0, |H|).
func Unrank(format []int, rank *big.Int) (core.Schedule, error) {
	if rank.Sign() < 0 || rank.Cmp(Count(format)) >= 0 {
		return nil, fmt.Errorf("rank %v out of range [0, %v)", rank, Count(format))
	}
	remaining := append([]int(nil), format...)
	next := make([]int, len(format))
	total := 0
	for _, m := range format {
		total += m
	}
	r := new(big.Int).Set(rank)
	h := make(core.Schedule, 0, total)
	for pos := 0; pos < total; pos++ {
		rest := total - pos - 1
		for i := range remaining {
			if remaining[i] == 0 {
				continue
			}
			remaining[i]--
			c := countRemaining(remaining, rest)
			if r.Cmp(c) < 0 {
				h = append(h, core.StepID{Tx: i, Idx: next[i]})
				next[i]++
				break
			}
			r.Sub(r, c)
			remaining[i]++
		}
	}
	return h, nil
}

// countRemaining counts arrangements of the remaining multiset of the given
// total size.
func countRemaining(remaining []int, total int) *big.Int {
	res := big.NewInt(1)
	rest := total
	for _, m := range remaining {
		res.Mul(res, binomial(rest, m))
		rest -= m
	}
	return res
}

// Neighbors returns all schedules reachable from h by one elementary
// transformation (one legal adjacent transposition), in position order.
func Neighbors(h core.Schedule) []core.Schedule {
	var out []core.Schedule
	for k := 0; k+1 < len(h); k++ {
		if g, err := h.SwapAdjacent(k); err == nil {
			out = append(out, g)
		}
	}
	return out
}

// Prefixes calls yield for every legal proper prefix length of h including
// zero and len(h).
func Prefixes(h core.Schedule, yield func(prefix core.Schedule) bool) {
	for k := 0; k <= len(h); k++ {
		if !yield(h[:k]) {
			return
		}
	}
}
