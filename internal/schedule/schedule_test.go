package schedule

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"optcc/internal/core"
)

func TestCountSmallFormats(t *testing.T) {
	cases := []struct {
		format []int
		want   int64
	}{
		{[]int{1}, 1},
		{[]int{1, 1}, 2},
		{[]int{2, 1}, 3},
		{[]int{2, 2}, 6},
		{[]int{2, 2, 2}, 90},
		{[]int{3, 2, 4}, 1260}, // the banking system of Section 2
		{[]int{}, 1},
	}
	for _, c := range cases {
		if got := Count(c.format); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("Count(%v) = %v, want %d", c.format, got, c.want)
		}
	}
}

func TestCountSerial(t *testing.T) {
	if got := CountSerial([]int{3, 2, 4}); got.Cmp(big.NewInt(6)) != 0 {
		t.Errorf("CountSerial = %v, want 6", got)
	}
	if got := CountSerial([]int{5}); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("CountSerial single = %v, want 1", got)
	}
}

func TestEnumerateMatchesCountAndLegality(t *testing.T) {
	for _, format := range [][]int{{1, 1}, {2, 2}, {2, 2, 2}, {3, 1}, {1, 1, 1, 1}} {
		n := 0
		seen := map[string]bool{}
		Enumerate(format, func(h core.Schedule) bool {
			if !h.Legal(format) {
				t.Fatalf("enumerated illegal schedule %v for %v", h, format)
			}
			k := h.Key()
			if seen[k] {
				t.Fatalf("duplicate schedule %v", h)
			}
			seen[k] = true
			n++
			return true
		})
		if want := Count(format); want.Cmp(big.NewInt(int64(n))) != 0 {
			t.Errorf("format %v: enumerated %d, Count says %v", format, n, want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	Enumerate([]int{3, 3}, func(core.Schedule) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d schedules, want 5", n)
	}
}

func TestAllPanicsOnHugeFormats(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("All did not panic for oversized format")
		}
	}()
	All([]int{20, 20, 20}, 1000)
}

func TestAllSmall(t *testing.T) {
	hs := All([]int{2, 1}, 0)
	if len(hs) != 3 {
		t.Fatalf("All([2 1]) returned %d schedules, want 3", len(hs))
	}
	// Schedules must be independent copies.
	hs[0][0] = core.StepID{Tx: 9, Idx: 9}
	if hs[1][0].Tx == 9 {
		t.Error("All returned aliased schedules")
	}
}

func TestSerials(t *testing.T) {
	ss := Serials([]int{2, 1, 1})
	if len(ss) != 6 {
		t.Fatalf("Serials returned %d, want 3! = 6", len(ss))
	}
	for _, h := range ss {
		if !h.IsSerial() {
			t.Errorf("Serials produced non-serial %v", h)
		}
		if !h.Legal([]int{2, 1, 1}) {
			t.Errorf("Serials produced illegal %v", h)
		}
	}
}

func TestRandomIsLegalAndRoughlyUniform(t *testing.T) {
	format := []int{2, 1} // 3 schedules
	rng := rand.New(rand.NewSource(42))
	counts := map[string]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		h := Random(format, rng)
		if !h.Legal(format) {
			t.Fatalf("Random produced illegal schedule %v", h)
		}
		counts[h.Key()]++
	}
	if len(counts) != 3 {
		t.Fatalf("Random hit %d distinct schedules, want 3", len(counts))
	}
	for k, c := range counts {
		if c < trials/3-200 || c > trials/3+200 {
			t.Errorf("schedule %s sampled %d times; not within ±200 of %d", k, c, trials/3)
		}
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	format := []int{2, 2, 1}
	idx := int64(0)
	Enumerate(format, func(h core.Schedule) bool {
		r, err := Rank(format, h)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cmp(big.NewInt(idx)) != 0 {
			t.Fatalf("Rank(%v) = %v, want %d (enumeration order)", h, r, idx)
		}
		g, err := Unrank(format, r)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(h) {
			t.Fatalf("Unrank(Rank(%v)) = %v", h, g)
		}
		idx++
		return true
	})
}

func TestRankRejectsIllegal(t *testing.T) {
	if _, err := Rank([]int{2, 1}, core.Schedule{{Tx: 0, Idx: 1}}); err == nil {
		t.Error("Rank accepted illegal schedule")
	}
	if _, err := Unrank([]int{2, 1}, big.NewInt(99)); err == nil {
		t.Error("Unrank accepted out-of-range rank")
	}
	if _, err := Unrank([]int{2, 1}, big.NewInt(-1)); err == nil {
		t.Error("Unrank accepted negative rank")
	}
}

func TestNeighborsAreLegalElementaryTransforms(t *testing.T) {
	format := []int{2, 2}
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 1, Idx: 1}}
	ns := Neighbors(h)
	if len(ns) != 3 {
		t.Fatalf("Neighbors returned %d, want 3 (all three adjacent pairs are cross-transaction)", len(ns))
	}
	for _, g := range ns {
		if !g.Legal(format) {
			t.Errorf("neighbor %v illegal", g)
		}
		diff := 0
		for i := range g {
			if g[i] != h[i] {
				diff++
			}
		}
		if diff != 2 {
			t.Errorf("neighbor %v differs from %v in %d positions, want 2", g, h, diff)
		}
	}
}

func TestPrefixes(t *testing.T) {
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}}
	var lens []int
	Prefixes(h, func(p core.Schedule) bool {
		lens = append(lens, len(p))
		return true
	})
	if len(lens) != 3 || lens[0] != 0 || lens[2] != 2 {
		t.Errorf("prefix lengths = %v", lens)
	}
	n := 0
	Prefixes(h, func(core.Schedule) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d prefixes", n)
	}
}

// Property: Rank is a bijection onto [0, |H|) — spot-check via random
// sampling on random small formats.
func TestRankBijectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		format := make([]int, n)
		for i := range format {
			format[i] = 1 + r.Intn(3)
		}
		h := Random(format, r)
		rank, err := Rank(format, h)
		if err != nil {
			return false
		}
		g, err := Unrank(format, rank)
		if err != nil {
			return false
		}
		return g.Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
