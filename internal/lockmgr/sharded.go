package lockmgr

import (
	"sync"
	"sync/atomic"

	"optcc/internal/core"
)

// ShardedTable is a concurrent lock table: variables are hash-partitioned
// across per-shard Tables, each guarded by its own mutex, so lock traffic on
// independent variables never serializes. Uncontended exclusive locks take a
// lock-free fast path (one CAS, no mutex); the first contended or shared
// access to a variable escalates it permanently into its shard's Table,
// which supplies queueing, upgrades, and the deadlock policies.
//
// Birth timestamps come from one global atomic clock, so wound-wait and
// wait-die age priorities are consistent across shards. The waits-for graph
// and deadlock detection operate on the union of the per-shard graphs,
// where cross-shard cycles live (each edge is intra-shard because every
// variable belongs to exactly one shard, but a cycle may thread through
// several shards via multi-shard transactions).
//
// Concurrency contract: distinct transactions may drive the table from
// distinct goroutines concurrently; operations on behalf of one transaction
// must not overlap with each other (the same per-transaction discipline the
// schedulers and simulator already follow).
type ShardedTable struct {
	policy Policy
	shards []tableShard
	clock  atomic.Int64
	// birthArr and fastArr are the flat per-transaction state for ids
	// reserved with Reserve: a birth timestamp slot (0 = unset) and a
	// fast-path lock set per id, indexed directly — no sync.Map entry
	// allocation per transaction. Ids outside the reserved range fall back
	// to the sync.Maps below.
	birthArr []atomic.Int64
	fastArr  []fastSet
	birth    sync.Map // TxID → int64 (unreserved ids)
	slots    sync.Map // core.Var → *fastSlot
	fast     sync.Map // TxID → *fastSet (unreserved ids)
}

type tableShard struct {
	mu sync.Mutex
	t  *Table
}

// fastSlot is the lock-free fast-path state of one variable.
// state encodings: 0 = free (fast regime), tx+1 = exclusively held by tx
// (fast regime), escalated = permanently in the shard Table's slow path.
type fastSlot struct {
	state atomic.Int64
}

const escalated = -1

//optcc:hotpath
func encTx(tx TxID) int64 { return int64(tx) + 1 }

//optcc:hotpath
func decTx(st int64) TxID { return TxID(st - 1) }

// fastSet tracks the variables a transaction holds via the fast path, so
// ReleaseAll can find them. The first few variables live in an inline
// array — transactions rarely fast-hold more — so the steady-state
// add/remove/drain cycle allocates nothing; the overflow slice keeps its
// capacity across a transaction's attempts.
type fastSet struct {
	mu   sync.Mutex
	n    int
	arr  [4]core.Var
	over []core.Var
}

// add records a fast-held variable. Caller holds fs.mu. Callers never add
// a variable twice: the fast path adds only on a winning CAS, and a
// reentrant grant returns before reaching here.
//
//optcc:hotpath
func (fs *fastSet) add(v core.Var) {
	if fs.n < len(fs.arr) {
		fs.arr[fs.n] = v
		fs.n++
		return
	}
	//cclint:ignore hotpath overflow beyond the inline array is the rare many-locks case; capacity is kept across attempts
	fs.over = append(fs.over, v)
}

// remove drops one occurrence of v (a no-op if absent). Caller holds fs.mu.
//
//optcc:hotpath
func (fs *fastSet) remove(v core.Var) {
	for i := 0; i < fs.n; i++ {
		if fs.arr[i] == v {
			fs.n--
			fs.arr[i] = fs.arr[fs.n]
			fs.arr[fs.n] = ""
			return
		}
	}
	for i, o := range fs.over {
		if o == v {
			last := len(fs.over) - 1
			fs.over[i] = fs.over[last]
			fs.over[last] = ""
			fs.over = fs.over[:last]
			return
		}
	}
}

// drain visits every tracked variable and empties the set, releasing the
// string references but keeping the overflow capacity. Caller holds fs.mu.
func (fs *fastSet) drain(fn func(v core.Var)) {
	for i := 0; i < fs.n; i++ {
		fn(fs.arr[i])
		fs.arr[i] = ""
	}
	fs.n = 0
	for i, o := range fs.over {
		fn(o)
		fs.over[i] = ""
	}
	fs.over = fs.over[:0]
}

// NewShardedTable returns a sharded lock table with the given deadlock
// policy and shard count (minimum 1).
func NewShardedTable(policy Policy, shards int) *ShardedTable {
	if shards < 1 {
		shards = 1
	}
	st := &ShardedTable{policy: policy, shards: make([]tableShard, shards)}
	for i := range st.shards {
		st.shards[i].t = NewTable(policy)
	}
	return st
}

// Policy returns the table's deadlock policy.
func (s *ShardedTable) Policy() Policy { return s.policy }

// Reserve preallocates flat per-transaction state for transaction ids
// [0, n): birth timestamps and fast-path lock sets live in arrays instead
// of sync.Maps, so registering, fast-locking and releasing a reserved id
// allocates nothing. Call it once, before the table is driven concurrently
// (ConcurrentStrict2PL calls it from Begin with the system's transaction
// count); ids outside the range keep working through the sync.Map fallback.
func (s *ShardedTable) Reserve(n int) {
	if n > len(s.birthArr) {
		s.birthArr = make([]atomic.Int64, n)
		s.fastArr = make([]fastSet, n)
	}
}

// reserved reports whether tx falls in the Reserve range.
//
//optcc:hotpath
func (s *ShardedTable) reserved(tx TxID) bool {
	return tx >= 0 && int(tx) < len(s.birthArr)
}

// NumShards returns the shard count.
func (s *ShardedTable) NumShards() int { return len(s.shards) }

// ShardOf returns the shard owning variable v.
func (s *ShardedTable) ShardOf(v core.Var) int { return ShardOfVar(v, len(s.shards)) }

// ShardOfVar hash-partitions a variable across n shards: inlined FNV-1a so
// the hot paths (every Acquire/Release and every dispatch route) allocate
// nothing. This is THE partition function — online's Sharded combinator
// uses it too, so dispatch routing and lock-shard ownership always agree.
//
//optcc:hotpath
func ShardOfVar(v core.Var, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Register assigns the transaction its birth timestamp from the global
// clock and registers it with every shard. Re-registering keeps the
// original timestamp, preserving wound-wait/wait-die progress guarantees.
func (s *ShardedTable) Register(tx TxID) {
	birth := s.birthOf(tx)
	if birth == 0 {
		if s.reserved(tx) {
			// Timestamps start at 1, so 0 is an unambiguous "unset"; the
			// CAS keeps the first registration's timestamp under races.
			s.birthArr[tx].CompareAndSwap(0, s.clock.Add(1))
			birth = s.birthArr[tx].Load()
		} else {
			b, _ := s.birth.LoadOrStore(tx, s.clock.Add(1))
			birth = b.(int64)
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.RegisterAt(tx, birth)
		sh.mu.Unlock()
	}
}

//optcc:hotpath
func (s *ShardedTable) slot(v core.Var) *fastSlot {
	//cclint:ignore hotpath sync.Map lookup is the slot registry; one boxed key per lookup is the accepted cost until slots are reserved like birthArr
	if sl, ok := s.slots.Load(v); ok {
		return sl.(*fastSlot)
	}
	//cclint:ignore hotpath first-touch slot creation happens once per variable, not per request
	sl, _ := s.slots.LoadOrStore(v, &fastSlot{})
	return sl.(*fastSlot)
}

//optcc:hotpath
func (s *ShardedTable) fastSetOf(tx TxID) *fastSet {
	if s.reserved(tx) {
		return &s.fastArr[tx]
	}
	//cclint:ignore hotpath unreserved-id fallback; ConcurrentStrict2PL reserves every id up front
	if fs, ok := s.fast.Load(tx); ok {
		return fs.(*fastSet)
	}
	//cclint:ignore hotpath unreserved-id fallback; ConcurrentStrict2PL reserves every id up front
	fs, _ := s.fast.LoadOrStore(tx, &fastSet{})
	return fs.(*fastSet)
}

// fastSetIfAny is fastSetOf without the create-on-miss: release paths use
// it so releasing for a transaction that never fast-locked allocates
// nothing.
//
//optcc:hotpath
func (s *ShardedTable) fastSetIfAny(tx TxID) *fastSet {
	if s.reserved(tx) {
		return &s.fastArr[tx]
	}
	//cclint:ignore hotpath unreserved-id fallback; ConcurrentStrict2PL reserves every id up front
	if fs, ok := s.fast.Load(tx); ok {
		return fs.(*fastSet)
	}
	return nil
}

// escalate moves v out of the fast regime into the shard Table. Caller
// holds the shard mutex. If a fast-path owner loses the race, it is adopted
// into the Table so queueing and deadlock handling see it; its own release
// will then go through the slow path (the fast-release CAS fails).
func (s *ShardedTable) escalate(sl *fastSlot, t *Table, v core.Var) {
	for {
		st := sl.state.Load()
		if st == escalated {
			return
		}
		if sl.state.CompareAndSwap(st, escalated) {
			if st > 0 {
				t.AdoptHolder(decTx(st), v, Exclusive)
			}
			return
		}
	}
}

// tryFast attempts the lock-free fast path for one request: a reentrant
// grant on a variable tx already fast-holds exclusively (which satisfies
// any requested mode, so no escalation is needed), or a single-CAS
// acquisition for an Exclusive request on a free fast-regime variable.
// ok=false means the request must go through the owning shard's Table.
// It is THE fast path — Acquire and AcquireBatch both use it, so the
// batched and unbatched lock managers cannot drift apart.
//
//optcc:hotpath
func (s *ShardedTable) tryFast(tx TxID, sl *fastSlot, v core.Var, m Mode) (Result, bool) {
	st := sl.state.Load()
	if st == encTx(tx) {
		return Result{Status: Granted}, true
	}
	if m == Exclusive && st == 0 && sl.state.CompareAndSwap(0, encTx(tx)) {
		fs := s.fastSetOf(tx)
		fs.mu.Lock()
		fs.add(v)
		fs.mu.Unlock()
		return Result{Status: Granted}, true
	}
	return Result{}, false
}

// Acquire requests a lock on v in mode m for tx. Exclusive requests on a
// variable still in the fast regime are a single CAS; everything else goes
// through the owning shard's Table under its mutex.
func (s *ShardedTable) Acquire(tx TxID, v core.Var, m Mode) Result {
	if s.birthOf(tx) == 0 {
		s.Register(tx)
	}
	sl := s.slot(v)
	if r, ok := s.tryFast(tx, sl, v, m); ok {
		return r
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.escalate(sl, sh.t, v)
	return sh.t.Acquire(tx, v, m)
}

// BatchReq is one request of an AcquireBatch.
type BatchReq struct {
	Tx   TxID
	Var  core.Var
	Mode Mode
}

// AcquireBatch acquires a batch of lock requests for distinct transactions
// and returns the per-request results, aligned with reqs. It is equivalent
// to calling Acquire on each request in order — requests are decided
// strictly in batch order, so two same-variable requests in one batch
// resolve exactly as they would sequentially (a later fast-path-eligible
// request can never jump ahead of an earlier conflicting one) — but one
// shard-mutex acquisition is shared across every consecutive run of
// slow-path requests on the same shard. The batched dispatch loops in
// internal/sim send same-shard batches, so the common case is at most one
// mutex acquisition per batch, and all-fast-path batches take none.
func (s *ShardedTable) AcquireBatch(reqs []BatchReq) []Result {
	return s.AcquireBatchInto(nil, reqs)
}

// AcquireBatchInto is AcquireBatch appending into out[:0], so a caller
// holding a reusable result buffer (online.ConcurrentStrict2PL keeps one
// per shard) pays no per-batch allocation.
func (s *ShardedTable) AcquireBatchInto(out []Result, reqs []BatchReq) []Result {
	// Register up front: Register takes every shard mutex, so it must not
	// run while the decide loop below holds one.
	for _, r := range reqs {
		if s.birthOf(r.Tx) == 0 {
			s.Register(r.Tx)
		}
	}
	out = out[:0]
	held := -1
	for _, r := range reqs {
		sl := s.slot(r.Var)
		if res, ok := s.tryFast(r.Tx, sl, r.Var, r.Mode); ok {
			out = append(out, res)
			continue
		}
		si := s.ShardOf(r.Var)
		if si != held {
			if held >= 0 {
				s.shards[held].mu.Unlock()
			}
			s.shards[si].mu.Lock()
			held = si
		}
		s.escalate(sl, s.shards[si].t, r.Var)
		out = append(out, s.shards[si].t.Acquire(r.Tx, r.Var, r.Mode))
	}
	if held >= 0 {
		s.shards[held].mu.Unlock()
	}
	return out
}

// Release releases tx's lock on v and returns any requests granted as a
// consequence (always nil on the fast path: an uncontended variable has no
// waiters by construction).
func (s *ShardedTable) Release(tx TxID, v core.Var) []Grant {
	sl := s.slot(v)
	if sl.state.CompareAndSwap(encTx(tx), 0) {
		s.dropFast(tx, v)
		return nil
	}
	s.dropFast(tx, v)
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.Release(tx, v)
}

//optcc:hotpath
func (s *ShardedTable) dropFast(tx TxID, v core.Var) {
	if fs := s.fastSetIfAny(tx); fs != nil {
		fs.mu.Lock()
		fs.remove(v)
		fs.mu.Unlock()
	}
}

// ReleaseAll releases every lock held by tx — fast-path holds by CAS,
// everything else through the per-shard tables — and removes it from every
// wait queue. It returns all requests granted as a consequence (nil when
// nothing was waiting: the whole uncontended release is allocation-free).
func (s *ShardedTable) ReleaseAll(tx TxID) []Grant {
	if fs := s.fastSetIfAny(tx); fs != nil {
		fs.mu.Lock()
		fs.drain(func(v core.Var) {
			// If the CAS fails the variable was escalated and the hold was
			// adopted into its shard Table; the sweep below releases it.
			s.slot(v).state.CompareAndSwap(encTx(tx), 0)
		})
		fs.mu.Unlock()
	}
	var grants []Grant
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		grants = append(grants, sh.t.ReleaseAll(tx)...)
		sh.mu.Unlock()
	}
	return grants
}

// Holds reports the mode in which tx holds v, if any.
func (s *ShardedTable) Holds(tx TxID, v core.Var) (Mode, bool) {
	if s.slot(v).state.Load() == encTx(tx) {
		return Exclusive, true
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.Holds(tx, v)
}

// HeldBy returns the current holders of v with their modes.
func (s *ShardedTable) HeldBy(v core.Var) map[TxID]Mode {
	if st := s.slot(v).state.Load(); st > 0 {
		return map[TxID]Mode{decTx(st): Exclusive}
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.HeldBy(v)
}

// QueueLen returns the number of waiters on v (zero while v is in the fast
// regime: contention is what ends it).
func (s *ShardedTable) QueueLen(v core.Var) int {
	if s.slot(v).state.Load() != escalated {
		return 0
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.QueueLen(v)
}

// WaitsFor returns the global waits-for graph: the union of the per-shard
// graphs. Fast-regime variables contribute nothing (no waiters).
func (s *ShardedTable) WaitsFor() map[TxID][]TxID {
	out := map[TxID][]TxID{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, blockers := range sh.t.WaitsFor() {
			out[w] = mergeSorted(out[w], blockers)
		}
		sh.mu.Unlock()
	}
	return out
}

// DetectDeadlock searches the global waits-for graph for a cycle, catching
// cross-shard cycles no single shard can see.
func (s *ShardedTable) DetectDeadlock() ([]TxID, bool) {
	return FindCycle(s.WaitsFor())
}

// ChooseVictim returns the youngest transaction on the cycle.
func (s *ShardedTable) ChooseVictim(cycle []TxID) TxID {
	victim := cycle[0]
	for _, tx := range cycle[1:] {
		if s.birthOf(tx) > s.birthOf(victim) {
			victim = tx
		}
	}
	return victim
}

//optcc:hotpath
func (s *ShardedTable) birthOf(tx TxID) int64 {
	if s.reserved(tx) {
		return s.birthArr[tx].Load()
	}
	//cclint:ignore hotpath unreserved-id fallback; ConcurrentStrict2PL reserves every id up front
	if b, ok := s.birth.Load(tx); ok {
		return b.(int64)
	}
	return 0
}

// Forget removes per-transaction bookkeeping after everything is released;
// the birth timestamp is retained so restarts keep their age. A reserved
// id's fast set is cleared in place (its storage is reused on restart);
// unreserved ids drop their sync.Map entry.
func (s *ShardedTable) Forget(tx TxID) {
	if s.reserved(tx) {
		fs := &s.fastArr[tx]
		fs.mu.Lock()
		fs.drain(func(core.Var) {})
		fs.mu.Unlock()
	} else {
		s.fast.Delete(tx)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.Forget(tx)
		sh.mu.Unlock()
	}
}

// Invariant checks every shard's safety invariants plus the fast path's:
// a fast-held variable must not also have holders in its shard Table.
func (s *ShardedTable) Invariant() error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.t.Invariant()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	var bad error
	s.slots.Range(func(k, v any) bool {
		if v.(*fastSlot).state.Load() > 0 {
			// A fast-held variable must have no holders in its shard Table
			// (its entire lock state lives in the slot until escalation).
			vr := k.(core.Var)
			sh := &s.shards[s.ShardOf(vr)]
			sh.mu.Lock()
			held := sh.t.HeldBy(vr)
			sh.mu.Unlock()
			if len(held) != 0 {
				bad = &fastInvariantError{v: vr}
				return false
			}
		}
		return true
	})
	return bad
}

type fastInvariantError struct{ v core.Var }

func (e *fastInvariantError) Error() string {
	return "sharded table: fast-path invariant violated on " + string(e.v)
}
