package lockmgr

import (
	"sync"
	"sync/atomic"

	"optcc/internal/core"
)

// ShardedTable is a concurrent lock table: variables are hash-partitioned
// across per-shard Tables, each guarded by its own mutex, so lock traffic on
// independent variables never serializes. Uncontended exclusive locks take a
// lock-free fast path (one CAS, no mutex); the first contended or shared
// access to a variable escalates it permanently into its shard's Table,
// which supplies queueing, upgrades, and the deadlock policies.
//
// Birth timestamps come from one global atomic clock, so wound-wait and
// wait-die age priorities are consistent across shards. The waits-for graph
// and deadlock detection operate on the union of the per-shard graphs,
// where cross-shard cycles live (each edge is intra-shard because every
// variable belongs to exactly one shard, but a cycle may thread through
// several shards via multi-shard transactions).
//
// Concurrency contract: distinct transactions may drive the table from
// distinct goroutines concurrently; operations on behalf of one transaction
// must not overlap with each other (the same per-transaction discipline the
// schedulers and simulator already follow).
type ShardedTable struct {
	policy Policy
	shards []tableShard
	clock  atomic.Int64
	birth  sync.Map // TxID → int64
	slots  sync.Map // core.Var → *fastSlot
	fast   sync.Map // TxID → *fastSet
}

type tableShard struct {
	mu sync.Mutex
	t  *Table
}

// fastSlot is the lock-free fast-path state of one variable.
// state encodings: 0 = free (fast regime), tx+1 = exclusively held by tx
// (fast regime), escalated = permanently in the shard Table's slow path.
type fastSlot struct {
	state atomic.Int64
}

const escalated = -1

func encTx(tx TxID) int64 { return int64(tx) + 1 }
func decTx(st int64) TxID { return TxID(st - 1) }

// fastSet tracks the variables a transaction holds via the fast path, so
// ReleaseAll can find them.
type fastSet struct {
	mu   sync.Mutex
	vars map[core.Var]bool
}

// NewShardedTable returns a sharded lock table with the given deadlock
// policy and shard count (minimum 1).
func NewShardedTable(policy Policy, shards int) *ShardedTable {
	if shards < 1 {
		shards = 1
	}
	st := &ShardedTable{policy: policy, shards: make([]tableShard, shards)}
	for i := range st.shards {
		st.shards[i].t = NewTable(policy)
	}
	return st
}

// Policy returns the table's deadlock policy.
func (s *ShardedTable) Policy() Policy { return s.policy }

// NumShards returns the shard count.
func (s *ShardedTable) NumShards() int { return len(s.shards) }

// ShardOf returns the shard owning variable v.
func (s *ShardedTable) ShardOf(v core.Var) int { return ShardOfVar(v, len(s.shards)) }

// ShardOfVar hash-partitions a variable across n shards: inlined FNV-1a so
// the hot paths (every Acquire/Release and every dispatch route) allocate
// nothing. This is THE partition function — online's Sharded combinator
// uses it too, so dispatch routing and lock-shard ownership always agree.
func ShardOfVar(v core.Var, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// Register assigns the transaction its birth timestamp from the global
// clock and registers it with every shard. Re-registering keeps the
// original timestamp, preserving wound-wait/wait-die progress guarantees.
func (s *ShardedTable) Register(tx TxID) {
	b, loaded := s.birth.Load(tx)
	if !loaded {
		b, _ = s.birth.LoadOrStore(tx, s.clock.Add(1))
	}
	birth := b.(int64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.RegisterAt(tx, birth)
		sh.mu.Unlock()
	}
}

func (s *ShardedTable) slot(v core.Var) *fastSlot {
	if sl, ok := s.slots.Load(v); ok {
		return sl.(*fastSlot)
	}
	sl, _ := s.slots.LoadOrStore(v, &fastSlot{})
	return sl.(*fastSlot)
}

func (s *ShardedTable) fastSetOf(tx TxID) *fastSet {
	if fs, ok := s.fast.Load(tx); ok {
		return fs.(*fastSet)
	}
	fs, _ := s.fast.LoadOrStore(tx, &fastSet{vars: map[core.Var]bool{}})
	return fs.(*fastSet)
}

// escalate moves v out of the fast regime into the shard Table. Caller
// holds the shard mutex. If a fast-path owner loses the race, it is adopted
// into the Table so queueing and deadlock handling see it; its own release
// will then go through the slow path (the fast-release CAS fails).
func (s *ShardedTable) escalate(sl *fastSlot, t *Table, v core.Var) {
	for {
		st := sl.state.Load()
		if st == escalated {
			return
		}
		if sl.state.CompareAndSwap(st, escalated) {
			if st > 0 {
				t.AdoptHolder(decTx(st), v, Exclusive)
			}
			return
		}
	}
}

// tryFast attempts the lock-free fast path for one request: a reentrant
// grant on a variable tx already fast-holds exclusively (which satisfies
// any requested mode, so no escalation is needed), or a single-CAS
// acquisition for an Exclusive request on a free fast-regime variable.
// ok=false means the request must go through the owning shard's Table.
// It is THE fast path — Acquire and AcquireBatch both use it, so the
// batched and unbatched lock managers cannot drift apart.
func (s *ShardedTable) tryFast(tx TxID, sl *fastSlot, v core.Var, m Mode) (Result, bool) {
	st := sl.state.Load()
	if st == encTx(tx) {
		return Result{Status: Granted}, true
	}
	if m == Exclusive && st == 0 && sl.state.CompareAndSwap(0, encTx(tx)) {
		fs := s.fastSetOf(tx)
		fs.mu.Lock()
		fs.vars[v] = true
		fs.mu.Unlock()
		return Result{Status: Granted}, true
	}
	return Result{}, false
}

// Acquire requests a lock on v in mode m for tx. Exclusive requests on a
// variable still in the fast regime are a single CAS; everything else goes
// through the owning shard's Table under its mutex.
func (s *ShardedTable) Acquire(tx TxID, v core.Var, m Mode) Result {
	if _, ok := s.birth.Load(tx); !ok {
		s.Register(tx)
	}
	sl := s.slot(v)
	if r, ok := s.tryFast(tx, sl, v, m); ok {
		return r
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.escalate(sl, sh.t, v)
	return sh.t.Acquire(tx, v, m)
}

// BatchReq is one request of an AcquireBatch.
type BatchReq struct {
	Tx   TxID
	Var  core.Var
	Mode Mode
}

// AcquireBatch acquires a batch of lock requests for distinct transactions
// and returns the per-request results, aligned with reqs. It is equivalent
// to calling Acquire on each request in order — requests are decided
// strictly in batch order, so two same-variable requests in one batch
// resolve exactly as they would sequentially (a later fast-path-eligible
// request can never jump ahead of an earlier conflicting one) — but one
// shard-mutex acquisition is shared across every consecutive run of
// slow-path requests on the same shard. The batched dispatch loops in
// internal/sim send same-shard batches, so the common case is at most one
// mutex acquisition per batch, and all-fast-path batches take none.
func (s *ShardedTable) AcquireBatch(reqs []BatchReq) []Result {
	// Register up front: Register takes every shard mutex, so it must not
	// run while the decide loop below holds one.
	for _, r := range reqs {
		if _, ok := s.birth.Load(r.Tx); !ok {
			s.Register(r.Tx)
		}
	}
	out := make([]Result, len(reqs))
	held := -1
	for i, r := range reqs {
		sl := s.slot(r.Var)
		if res, ok := s.tryFast(r.Tx, sl, r.Var, r.Mode); ok {
			out[i] = res
			continue
		}
		si := s.ShardOf(r.Var)
		if si != held {
			if held >= 0 {
				s.shards[held].mu.Unlock()
			}
			s.shards[si].mu.Lock()
			held = si
		}
		s.escalate(sl, s.shards[si].t, r.Var)
		out[i] = s.shards[si].t.Acquire(r.Tx, r.Var, r.Mode)
	}
	if held >= 0 {
		s.shards[held].mu.Unlock()
	}
	return out
}

// Release releases tx's lock on v and returns any requests granted as a
// consequence (always nil on the fast path: an uncontended variable has no
// waiters by construction).
func (s *ShardedTable) Release(tx TxID, v core.Var) []Grant {
	sl := s.slot(v)
	if sl.state.CompareAndSwap(encTx(tx), 0) {
		s.dropFast(tx, v)
		return nil
	}
	s.dropFast(tx, v)
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.Release(tx, v)
}

func (s *ShardedTable) dropFast(tx TxID, v core.Var) {
	if fs, ok := s.fast.Load(tx); ok {
		set := fs.(*fastSet)
		set.mu.Lock()
		delete(set.vars, v)
		set.mu.Unlock()
	}
}

// ReleaseAll releases every lock held by tx — fast-path holds by CAS,
// everything else through the per-shard tables — and removes it from every
// wait queue. It returns all requests granted as a consequence.
func (s *ShardedTable) ReleaseAll(tx TxID) []Grant {
	if fs, ok := s.fast.Load(tx); ok {
		set := fs.(*fastSet)
		set.mu.Lock()
		for v := range set.vars {
			// If the CAS fails the variable was escalated and the hold was
			// adopted into its shard Table; the sweep below releases it.
			s.slot(v).state.CompareAndSwap(encTx(tx), 0)
			delete(set.vars, v)
		}
		set.mu.Unlock()
	}
	var grants []Grant
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		grants = append(grants, sh.t.ReleaseAll(tx)...)
		sh.mu.Unlock()
	}
	return grants
}

// Holds reports the mode in which tx holds v, if any.
func (s *ShardedTable) Holds(tx TxID, v core.Var) (Mode, bool) {
	if s.slot(v).state.Load() == encTx(tx) {
		return Exclusive, true
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.Holds(tx, v)
}

// HeldBy returns the current holders of v with their modes.
func (s *ShardedTable) HeldBy(v core.Var) map[TxID]Mode {
	if st := s.slot(v).state.Load(); st > 0 {
		return map[TxID]Mode{decTx(st): Exclusive}
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.HeldBy(v)
}

// QueueLen returns the number of waiters on v (zero while v is in the fast
// regime: contention is what ends it).
func (s *ShardedTable) QueueLen(v core.Var) int {
	if s.slot(v).state.Load() != escalated {
		return 0
	}
	sh := &s.shards[s.ShardOf(v)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.QueueLen(v)
}

// WaitsFor returns the global waits-for graph: the union of the per-shard
// graphs. Fast-regime variables contribute nothing (no waiters).
func (s *ShardedTable) WaitsFor() map[TxID][]TxID {
	out := map[TxID][]TxID{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for w, blockers := range sh.t.WaitsFor() {
			out[w] = mergeSorted(out[w], blockers)
		}
		sh.mu.Unlock()
	}
	return out
}

// DetectDeadlock searches the global waits-for graph for a cycle, catching
// cross-shard cycles no single shard can see.
func (s *ShardedTable) DetectDeadlock() ([]TxID, bool) {
	return FindCycle(s.WaitsFor())
}

// ChooseVictim returns the youngest transaction on the cycle.
func (s *ShardedTable) ChooseVictim(cycle []TxID) TxID {
	victim := cycle[0]
	for _, tx := range cycle[1:] {
		if s.birthOf(tx) > s.birthOf(victim) {
			victim = tx
		}
	}
	return victim
}

func (s *ShardedTable) birthOf(tx TxID) int64 {
	if b, ok := s.birth.Load(tx); ok {
		return b.(int64)
	}
	return 0
}

// Forget removes per-transaction bookkeeping after everything is released;
// the birth timestamp is retained so restarts keep their age.
func (s *ShardedTable) Forget(tx TxID) {
	s.fast.Delete(tx)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.t.Forget(tx)
		sh.mu.Unlock()
	}
}

// Invariant checks every shard's safety invariants plus the fast path's:
// a fast-held variable must not also have holders in its shard Table.
func (s *ShardedTable) Invariant() error {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		err := sh.t.Invariant()
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	var bad error
	s.slots.Range(func(k, v any) bool {
		if v.(*fastSlot).state.Load() > 0 {
			// A fast-held variable must have no holders in its shard Table
			// (its entire lock state lives in the slot until escalation).
			vr := k.(core.Var)
			sh := &s.shards[s.ShardOf(vr)]
			sh.mu.Lock()
			held := sh.t.HeldBy(vr)
			sh.mu.Unlock()
			if len(held) != 0 {
				bad = &fastInvariantError{v: vr}
				return false
			}
		}
		return true
	})
	return bad
}

type fastInvariantError struct{ v core.Var }

func (e *fastInvariantError) Error() string {
	return "sharded table: fast-path invariant violated on " + string(e.v)
}
