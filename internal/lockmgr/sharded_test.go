package lockmgr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"optcc/internal/core"
)

func TestShardedFastPathExclusive(t *testing.T) {
	tab := NewShardedTable(Detect, 4)
	tab.Register(1)
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Granted {
		t.Fatalf("fast X: %v", r.Status)
	}
	if m, ok := tab.Holds(1, "x"); !ok || m != Exclusive {
		t.Fatalf("Holds = %v %v", m, ok)
	}
	// Reentrant fast-path acquire is a no-op grant.
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Granted {
		t.Fatalf("reentrant fast X: %v", r.Status)
	}
	if got := tab.HeldBy("x"); len(got) != 1 || got[1] != Exclusive {
		t.Fatalf("HeldBy = %v", got)
	}
	tab.Release(1, "x")
	if _, ok := tab.Holds(1, "x"); ok {
		t.Fatal("still held after fast release")
	}
	// The variable never saw contention: a second owner goes fast too.
	tab.Register(2)
	if r := tab.Acquire(2, "x", Exclusive); r.Status != Granted {
		t.Fatalf("fast X by 2: %v", r.Status)
	}
	if err := tab.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedEscalationOnContention(t *testing.T) {
	tab := NewShardedTable(Detect, 4)
	tab.Register(1)
	tab.Register(2)
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Granted {
		t.Fatalf("fast X: %v", r.Status)
	}
	// Conflicting request escalates x into the slow path; tx 1's fast hold
	// must be adopted so tx 2 queues behind it.
	if r := tab.Acquire(2, "x", Exclusive); r.Status != Waiting {
		t.Fatalf("contender: %v", r.Status)
	}
	if tab.QueueLen("x") != 1 {
		t.Fatalf("queue = %d", tab.QueueLen("x"))
	}
	wf := tab.WaitsFor()
	if len(wf[2]) != 1 || wf[2][0] != 1 {
		t.Fatalf("waits-for = %v", wf)
	}
	// tx 1's release now goes through the slow path and admits tx 2.
	grants := tab.ReleaseAll(1)
	if len(grants) != 1 || grants[0].Tx != 2 || grants[0].Var != "x" {
		t.Fatalf("grants = %v", grants)
	}
	if m, ok := tab.Holds(2, "x"); !ok || m != Exclusive {
		t.Fatalf("tx 2 should hold x, got %v %v", m, ok)
	}
	if err := tab.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSharedGoesSlowPath(t *testing.T) {
	tab := NewShardedTable(Detect, 2)
	tab.Register(1)
	tab.Register(2)
	if r := tab.Acquire(1, "y", Shared); r.Status != Granted {
		t.Fatalf("S: %v", r.Status)
	}
	if r := tab.Acquire(2, "y", Shared); r.Status != Granted {
		t.Fatalf("second S: %v", r.Status)
	}
	// Upgrade with another holder present must wait.
	if r := tab.Acquire(1, "y", Exclusive); r.Status != Waiting {
		t.Fatalf("upgrade: %v", r.Status)
	}
	tab.ReleaseAll(2)
	if m, ok := tab.Holds(1, "y"); !ok || m != Exclusive {
		t.Fatalf("upgrade after release: %v %v", m, ok)
	}
}

func TestShardedCrossShardDeadlockDetection(t *testing.T) {
	// x and y live in different shards of a many-shard table with high
	// probability; force distinct shards by probing names.
	tab := NewShardedTable(Detect, 8)
	varA, varB := core.Var("x"), core.Var("")
	for i := 0; ; i++ {
		v := core.Var(fmt.Sprintf("y%d", i))
		if tab.ShardOf(v) != tab.ShardOf(varA) {
			varB = v
			break
		}
	}
	tab.Register(1)
	tab.Register(2)
	tab.Acquire(1, varA, Exclusive)
	tab.Acquire(2, varB, Exclusive)
	if r := tab.Acquire(1, varB, Exclusive); r.Status != Waiting {
		t.Fatalf("1 on %s: %v", varB, r.Status)
	}
	if r := tab.Acquire(2, varA, Exclusive); r.Status != Waiting {
		t.Fatalf("2 on %s: %v", varA, r.Status)
	}
	cycle, found := tab.DetectDeadlock()
	if !found {
		t.Fatal("cross-shard deadlock not detected")
	}
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v", cycle)
	}
	if v := tab.ChooseVictim(cycle); v != 2 {
		t.Fatalf("victim = %d (want youngest = 2)", v)
	}
}

func TestShardedWoundWaitAcrossShards(t *testing.T) {
	tab := NewShardedTable(WoundWait, 8)
	tab.Register(1) // older
	tab.Register(2) // younger
	// Younger holds; older's conflicting request wounds it — priorities
	// must be consistent even when the variables live in different shards.
	tab.Acquire(2, "w", Exclusive)
	r := tab.Acquire(1, "w", Exclusive)
	if r.Status != Waiting || len(r.Wounded) != 1 || r.Wounded[0] != 2 {
		t.Fatalf("wound-wait: %+v", r)
	}
	// Older holds; younger waits (no wound).
	tab.Acquire(1, "z", Exclusive)
	r = tab.Acquire(2, "z", Exclusive)
	if r.Status != Waiting || len(r.Wounded) != 0 {
		t.Fatalf("younger should wait quietly: %+v", r)
	}
}

// TestShardedTableConcurrentHammer drives the table from many goroutines
// (one per transaction, no-wait policy so no goroutine ever blocks another
// indefinitely) over a mix of private variables (fast path) and a hot set
// (escalation, queues, aborts). Run with -race this is the concurrency
// safety net for the sharded substrate.
func TestShardedTableConcurrentHammer(t *testing.T) {
	const (
		txs    = 24
		rounds = 200
	)
	tab := NewShardedTable(NoWait, 4)
	var wg sync.WaitGroup
	for tx := TxID(0); tx < txs; tx++ {
		wg.Add(1)
		go func(tx TxID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(tx) * 31))
			tab.Register(tx)
			priv := core.Var(fmt.Sprintf("priv%d", tx))
			for i := 0; i < rounds; i++ {
				vars := []core.Var{priv}
				modes := []Mode{Exclusive}
				for k := 0; k < 2; k++ {
					vars = append(vars, core.Var(fmt.Sprintf("hot%d", rng.Intn(3))))
					if rng.Intn(2) == 0 {
						modes = append(modes, Shared)
					} else {
						modes = append(modes, Exclusive)
					}
				}
				ok := true
				for j, v := range vars {
					if r := tab.Acquire(tx, v, modes[j]); r.Status == AbortSelf {
						ok = false
						break
					}
				}
				_ = ok
				tab.ReleaseAll(tx)
			}
			tab.Forget(tx)
		}(tx)
	}
	wg.Wait()
	if err := tab.Invariant(); err != nil {
		t.Fatal(err)
	}
	// Everything must be released.
	for i := 0; i < 3; i++ {
		v := core.Var(fmt.Sprintf("hot%d", i))
		if held := tab.HeldBy(v); len(held) != 0 {
			t.Fatalf("%s still held by %v", v, held)
		}
	}
}

func TestShardedRegisterKeepsBirth(t *testing.T) {
	tab := NewShardedTable(WaitDie, 2)
	tab.Register(5)
	tab.Register(9)
	tab.Register(5) // re-register must keep the original (older) birth
	tab.Acquire(9, "q", Exclusive)
	// Older tx 5 may wait on younger tx 9 under wait-die.
	if r := tab.Acquire(5, "q", Exclusive); r.Status != Waiting {
		t.Fatalf("older should wait: %v", r.Status)
	}
	// Younger tx 9 requesting against older holder dies.
	tab.Acquire(5, "p", Exclusive)
	tab.Register(11)
	if r := tab.Acquire(11, "p", Exclusive); r.Status != AbortSelf {
		t.Fatalf("younger should die: %v", r.Status)
	}
}
