package lockmgr

// Coverage for ShardedTable.AcquireBatch: result-for-result equivalence
// with sequential Acquire on a twin table, across fast-path grants,
// reentrant holds, conflicts, and every deadlock policy.

import (
	"fmt"
	"testing"

	"optcc/internal/core"
)

// TestAcquireBatchMatchesSequential drives a deterministic request script
// through AcquireBatch on one table and Acquire on a twin, and requires
// identical statuses and wound sets at every step.
func TestAcquireBatchMatchesSequential(t *testing.T) {
	vars := []core.Var{"a", "b", "c", "d", "e"}
	script := func(round int) []BatchReq {
		var reqs []BatchReq
		for tx := TxID(0); tx < 4; tx++ {
			// tx/2 makes transaction pairs collide on one variable within a
			// round, so batches exercise same-variable ordering too.
			v := vars[(int(tx)/2+round)%len(vars)]
			mode := Exclusive
			if (int(tx)+round)%3 == 0 {
				mode = Shared
			}
			reqs = append(reqs, BatchReq{Tx: tx, Var: v, Mode: mode})
		}
		return reqs
	}
	for _, policy := range []Policy{Detect, NoWait, WaitDie, WoundWait} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/%dshards", policy, shards), func(t *testing.T) {
				batched := NewShardedTable(policy, shards)
				sequential := NewShardedTable(policy, shards)
				for tx := TxID(0); tx < 4; tx++ {
					batched.Register(tx)
					sequential.Register(tx)
				}
				for round := 0; round < 6; round++ {
					reqs := script(round)
					got := batched.AcquireBatch(reqs)
					for i, r := range reqs {
						want := sequential.Acquire(r.Tx, r.Var, r.Mode)
						if got[i].Status != want.Status {
							t.Fatalf("round %d req %d (%+v): batch %v, sequential %v",
								round, i, r, got[i].Status, want.Status)
						}
						if len(got[i].Wounded) != len(want.Wounded) {
							t.Fatalf("round %d req %d: wounded %v vs %v",
								round, i, got[i].Wounded, want.Wounded)
						}
					}
				}
				if err := batched.Invariant(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAcquireBatchSameVariableOrder: two requests on the SAME fast-regime
// variable in one batch must resolve exactly as sequential Acquire calls —
// in particular, a later fast-path-eligible Exclusive request must not be
// CAS-granted ahead of an earlier conflicting Shared request (which would
// invert who waits, wounds, or aborts).
func TestAcquireBatchSameVariableOrder(t *testing.T) {
	for _, policy := range []Policy{Detect, NoWait, WaitDie, WoundWait} {
		for _, order := range [][]BatchReq{
			{{Tx: 0, Var: "v", Mode: Shared}, {Tx: 1, Var: "v", Mode: Exclusive}},
			{{Tx: 0, Var: "v", Mode: Exclusive}, {Tx: 1, Var: "v", Mode: Shared}},
			{{Tx: 0, Var: "v", Mode: Exclusive}, {Tx: 1, Var: "v", Mode: Exclusive}},
			{{Tx: 1, Var: "v", Mode: Shared}, {Tx: 0, Var: "v", Mode: Exclusive}},
		} {
			batched := NewShardedTable(policy, 4)
			sequential := NewShardedTable(policy, 4)
			for tx := TxID(0); tx < 2; tx++ {
				batched.Register(tx)
				sequential.Register(tx)
			}
			got := batched.AcquireBatch(order)
			for i, r := range order {
				want := sequential.Acquire(r.Tx, r.Var, r.Mode)
				if got[i].Status != want.Status || len(got[i].Wounded) != len(want.Wounded) {
					t.Fatalf("%v order %v req %d: batch (%v, wounded %v) != sequential (%v, wounded %v)",
						policy, order, i, got[i].Status, got[i].Wounded, want.Status, want.Wounded)
				}
			}
			if err := batched.Invariant(); err != nil {
				t.Fatalf("%v order %v: %v", policy, order, err)
			}
		}
	}
}

// TestAcquireBatchFastPathAndReentrant: uncontended exclusive batch
// requests must grant without escalating out of the fast regime, and a
// reentrant request in a later batch stays a fast grant in any mode.
func TestAcquireBatchFastPathAndReentrant(t *testing.T) {
	s := NewShardedTable(WoundWait, 4)
	s.Register(1)
	first := s.AcquireBatch([]BatchReq{
		{Tx: 1, Var: "x", Mode: Exclusive},
		{Tx: 1, Var: "y", Mode: Exclusive},
	})
	for i, r := range first {
		if r.Status != Granted {
			t.Fatalf("req %d: %v", i, r.Status)
		}
	}
	// Uncontended: no waiters, still in the fast regime.
	if s.QueueLen("x") != 0 || s.QueueLen("y") != 0 {
		t.Fatal("fast-path grant escalated")
	}
	again := s.AcquireBatch([]BatchReq{
		{Tx: 1, Var: "x", Mode: Exclusive}, // reentrant X on fast X
		{Tx: 1, Var: "y", Mode: Shared},    // S on fast X hold: covered
	})
	for i, r := range again {
		if r.Status != Granted {
			t.Fatalf("reentrant req %d: %v", i, r.Status)
		}
	}
	if s.QueueLen("y") != 0 {
		t.Fatal("reentrant shared request escalated a fast-held variable")
	}
	// A conflicting batch from another transaction escalates and queues.
	s.Register(2)
	res := s.AcquireBatch([]BatchReq{{Tx: 2, Var: "x", Mode: Exclusive}})
	if res[0].Status != Waiting {
		t.Fatalf("conflicting request: %v", res[0].Status)
	}
	if got := s.ReleaseAll(1); len(got) == 0 {
		t.Fatal("release granted nothing to the waiter")
	}
	if m, ok := s.Holds(2, "x"); !ok || m != Exclusive {
		t.Fatal("waiter not promoted to holder")
	}
	if err := s.Invariant(); err != nil {
		t.Fatal(err)
	}
}
