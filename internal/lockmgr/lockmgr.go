// Package lockmgr provides the lock-table substrate used by locking-based
// schedulers: shared/exclusive locks on variables, FIFO wait queues, lock
// upgrades, a waits-for graph, and the classical deadlock-handling policies
// (detection with victim abort, no-wait, wait-die, wound-wait).
//
// The paper treats locking as a transformation of the transaction system
// plus a trivial lock-respecting scheduler (Section 5); this package is the
// runtime realization of that scheduler's lock bookkeeping. The table is a
// deterministic state machine — blocking and notification are left to the
// caller (internal/online drives it synchronously; internal/sim drives it
// from goroutines under its own lock).
package lockmgr

import (
	"fmt"
	"slices"
	"sort"

	"optcc/internal/core"
)

// TxID identifies a transaction instance registered with the table.
type TxID int

// Mode is a lock mode.
type Mode int

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single holder.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Compatible reports whether a new lock of mode m may coexist with a held
// lock of mode held.
func Compatible(held, m Mode) bool { return held == Shared && m == Shared }

// Policy selects how lock conflicts that could lead to deadlock are
// handled.
type Policy int

const (
	// Detect lets requesters wait and relies on explicit cycle detection;
	// the victim is the youngest transaction on the cycle.
	Detect Policy = iota
	// NoWait aborts the requester immediately on any conflict.
	NoWait
	// WaitDie (non-preemptive): an older requester waits; a younger
	// requester aborts itself ("dies").
	WaitDie
	// WoundWait (preemptive): an older requester aborts ("wounds") the
	// younger holders; a younger requester waits.
	WoundWait
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Detect:
		return "detect"
	case NoWait:
		return "no-wait"
	case WaitDie:
		return "wait-die"
	case WoundWait:
		return "wound-wait"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Status is the outcome of an Acquire call.
type Status int

const (
	// Granted: the lock is held by the requester on return.
	Granted Status = iota
	// Waiting: the request was queued; a later Release will grant it.
	Waiting
	// AbortSelf: the requester must abort (no-wait or wait-die decision).
	AbortSelf
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Granted:
		return "granted"
	case Waiting:
		return "waiting"
	case AbortSelf:
		return "abort-self"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result describes the outcome of an Acquire: the status, and under
// wound-wait the set of wounded holders the caller must abort.
type Result struct {
	Status  Status
	Wounded []TxID
}

// Grant reports a queued request that became held after a release or
// abort.
type Grant struct {
	Tx   TxID
	Var  core.Var
	Mode Mode
}

type waiter struct {
	tx      TxID
	mode    Mode
	upgrade bool
}

type entry struct {
	v       core.Var
	holders map[TxID]Mode
	queue   []waiter
}

// Table is a lock table. It is not safe for concurrent use; callers
// serialize access (the goroutine simulator wraps it in a mutex).
//
// Memory discipline: the uncontended steady-state cycle — Acquire
// (granted), ReleaseAll, Forget — performs zero heap allocations once the
// table is warm. Per-variable entries persist across transactions, held
// maps are pooled through Forget, queued variables are indexed (waitQ) so
// releases never scan the whole table, and the sort scratch is reused.
// Conflict handling (queueing, wounds, waits-for walks) may allocate;
// those paths are paid for by contention, not by every step.
type Table struct {
	policy Policy
	locks  map[core.Var]*entry
	// birth orders transactions for wound-wait/wait-die: smaller is older.
	birth map[TxID]int64
	clock int64
	// held tracks, per transaction, the variables it holds (for
	// ReleaseAll).
	held map[TxID]map[core.Var]Mode
	// heldFree recycles held maps across transactions (Forget parks them
	// here cleared), so a fresh transaction's first acquisition does not
	// allocate.
	heldFree []map[core.Var]Mode
	// waitQ indexes the variables with a non-empty wait queue, so
	// ReleaseAll touches only them instead of sweeping every lock entry.
	waitQ map[core.Var]struct{}
	// varBuf and blockBuf are reusable sort/scan scratch.
	varBuf   []core.Var
	blockBuf []TxID
}

// NewTable returns an empty lock table with the given deadlock policy.
func NewTable(policy Policy) *Table {
	return &Table{
		policy: policy,
		locks:  map[core.Var]*entry{},
		birth:  map[TxID]int64{},
		held:   map[TxID]map[core.Var]Mode{},
		waitQ:  map[core.Var]struct{}{},
	}
}

// Policy returns the table's deadlock policy.
func (t *Table) Policy() Policy { return t.policy }

// Register assigns the transaction its birth timestamp (its age priority).
// Re-registering an aborted transaction that restarts keeps its original
// timestamp, which guarantees progress under wound-wait and wait-die.
func (t *Table) Register(tx TxID) {
	if _, ok := t.birth[tx]; !ok {
		t.clock++
		t.birth[tx] = t.clock
	}
}

// RegisterAt registers the transaction with an externally assigned birth
// timestamp. A sharded table uses it to keep wound-wait/wait-die priorities
// consistent across its per-shard tables, which draw from one global clock.
func (t *Table) RegisterAt(tx TxID, birth int64) {
	if _, ok := t.birth[tx]; !ok {
		t.birth[tx] = birth
		if birth > t.clock {
			t.clock = birth
		}
	}
}

// AdoptHolder installs tx as a holder of v without going through Acquire.
// It is the escalation hook of the sharded table's lock-free fast path: when
// a contended variable leaves the fast regime, its current fast-path owner
// is adopted into the table so queueing and deadlock handling see it.
func (t *Table) AdoptHolder(tx TxID, v core.Var, m Mode) {
	e := t.entryFor(v)
	e.holders[tx] = m
	t.heldFor(tx)[v] = m
}

// heldFor returns tx's held-variable map, drawing a recycled one from the
// Forget pool before allocating.
func (t *Table) heldFor(tx TxID) map[core.Var]Mode {
	m := t.held[tx]
	if m == nil {
		if n := len(t.heldFree); n > 0 {
			m = t.heldFree[n-1]
			t.heldFree[n-1] = nil
			t.heldFree = t.heldFree[:n-1]
		} else {
			m = map[core.Var]Mode{}
		}
		t.held[tx] = m
	}
	return m
}

// older reports whether a is older (higher priority) than b.
func (t *Table) older(a, b TxID) bool { return t.birth[a] < t.birth[b] }

func (t *Table) entryFor(v core.Var) *entry {
	e := t.locks[v]
	if e == nil {
		e = &entry{v: v, holders: map[TxID]Mode{}}
		t.locks[v] = e
	}
	return e
}

// Holds reports the mode in which tx holds v, if any.
func (t *Table) Holds(tx TxID, v core.Var) (Mode, bool) {
	m, ok := t.held[tx][v]
	return m, ok
}

// HeldBy returns the current holders of v with their modes.
func (t *Table) HeldBy(v core.Var) map[TxID]Mode {
	e := t.locks[v]
	if e == nil {
		return nil
	}
	out := make(map[TxID]Mode, len(e.holders))
	for tx, m := range e.holders {
		out[tx] = m
	}
	return out
}

// QueueLen returns the number of waiters on v.
func (t *Table) QueueLen(v core.Var) int {
	if e := t.locks[v]; e != nil {
		return len(e.queue)
	}
	return 0
}

// Acquire requests a lock on v in mode m for tx. The transaction must be
// registered. Re-acquiring a held lock in the same or weaker mode is a
// no-op grant; requesting Exclusive while holding Shared is an upgrade.
func (t *Table) Acquire(tx TxID, v core.Var, m Mode) Result {
	if _, ok := t.birth[tx]; !ok {
		t.Register(tx)
	}
	e := t.entryFor(v)
	if cur, ok := e.holders[tx]; ok {
		if cur == Exclusive || m == Shared {
			return Result{Status: Granted}
		}
		// Upgrade S → X: possible when tx is the only holder.
		others := len(e.holders) - 1
		if others == 0 {
			e.holders[tx] = Exclusive
			t.held[tx][v] = Exclusive
			return Result{Status: Granted}
		}
		return t.conflict(tx, v, e, m, true)
	}
	compatible := true
	for _, hm := range e.holders {
		if !Compatible(hm, m) {
			compatible = false
			break
		}
	}
	// FIFO fairness: even a compatible request waits behind queued
	// incompatible waiters, so writers cannot starve.
	if compatible && len(e.queue) == 0 {
		e.holders[tx] = m
		t.heldFor(tx)[v] = m
		return Result{Status: Granted}
	}
	return t.conflict(tx, v, e, m, false)
}

// conflict applies the deadlock policy to an incompatible (or queued)
// request.
func (t *Table) conflict(tx TxID, v core.Var, e *entry, m Mode, upgrade bool) Result {
	blockers := t.blockersOf(tx, e)
	switch t.policy {
	case NoWait:
		return Result{Status: AbortSelf}
	case WaitDie:
		for _, b := range blockers {
			if !t.older(tx, b) {
				return Result{Status: AbortSelf}
			}
		}
	case WoundWait:
		var wounded []TxID
		allYounger := len(blockers) > 0
		for _, b := range blockers {
			if !t.older(tx, b) {
				allYounger = false
			}
		}
		if allYounger {
			for _, b := range blockers {
				wounded = append(wounded, b)
			}
			t.enqueue(e, tx, m, upgrade)
			return Result{Status: Waiting, Wounded: wounded}
		}
	}
	t.enqueue(e, tx, m, upgrade)
	return Result{Status: Waiting}
}

func (t *Table) enqueue(e *entry, tx TxID, m Mode, upgrade bool) {
	for _, w := range e.queue {
		if w.tx == tx {
			return
		}
	}
	t.waitQ[e.v] = struct{}{}
	w := waiter{tx: tx, mode: m, upgrade: upgrade}
	if upgrade {
		// Upgrades go to the front: the holder already has S and cannot
		// release it without aborting.
		e.queue = append([]waiter{w}, e.queue...)
		return
	}
	e.queue = append(e.queue, w)
}

// blockersOf lists the holders (and, for fairness, queued waiters ahead)
// that prevent tx's request, sorted for determinism. The returned slice is
// the table's reusable scratch: it is valid until the next blockersOf call,
// and callers that retain blockers (WaitsFor via mergeSorted, the wound
// list) copy the values out.
func (t *Table) blockersOf(tx TxID, e *entry) []TxID {
	out := t.blockBuf[:0]
	for h := range e.holders {
		if h != tx {
			out = append(out, h)
		}
	}
	slices.Sort(out)
	t.blockBuf = out
	return out
}

// Release releases tx's lock on v (a no-op if not held) and returns the
// requests granted as a consequence, in queue order.
func (t *Table) Release(tx TxID, v core.Var) []Grant {
	e := t.locks[v]
	if e == nil {
		return nil
	}
	if _, ok := e.holders[tx]; !ok {
		return nil
	}
	delete(e.holders, tx)
	delete(t.held[tx], v)
	return t.admit(v, e)
}

// ReleaseAll releases every lock held by tx and removes it from every wait
// queue; it returns all requests granted as a consequence. Use on commit
// and on abort.
//
// Only variables with a non-empty wait queue (the waitQ index) are swept
// for queue removal and post-release admission — an uncontended release
// touches exactly the variables tx holds and allocates nothing (grants stay
// nil when nobody was waiting).
func (t *Table) ReleaseAll(tx TxID) []Grant {
	var grants []Grant
	// Remove from queues first so admissions skip the departing tx.
	if len(t.waitQ) > 0 {
		queued := t.queuedVars()
		for _, v := range queued {
			e := t.locks[v]
			n := e.queue[:0]
			for _, w := range e.queue {
				if w.tx != tx {
					n = append(n, w)
				}
			}
			e.queue = n
			if len(e.queue) == 0 {
				delete(t.waitQ, v)
			}
		}
	}
	vars := t.varBuf[:0]
	for v := range t.held[tx] {
		vars = append(vars, v)
	}
	t.varBuf = vars
	slices.Sort(vars)
	for _, v := range vars {
		grants = append(grants, t.Release(tx, v)...)
	}
	// Queues may now admit waiters even on variables tx merely waited on.
	if len(t.waitQ) > 0 {
		queued := t.queuedVars()
		for _, v := range queued {
			grants = append(grants, t.admit(v, t.locks[v])...)
		}
	}
	return grants
}

// queuedVars snapshots the waitQ index into the reusable varBuf scratch,
// sorted for deterministic sweep order. The snapshot is needed because
// admissions mutate waitQ mid-sweep. Each use of varBuf (queued sweep, held
// sweep, admission sweep) finishes before the next one reuses the scratch.
func (t *Table) queuedVars() []core.Var {
	out := t.varBuf[:0]
	for v := range t.waitQ {
		out = append(out, v)
	}
	t.varBuf = out
	slices.Sort(out)
	return out
}

// admit grants queued requests on v while the head of the queue is
// compatible with the holders, keeping the waitQ index in sync when the
// queue drains.
func (t *Table) admit(v core.Var, e *entry) []Grant {
	var grants []Grant
	for len(e.queue) > 0 {
		w := e.queue[0]
		if w.upgrade {
			// Grantable only when w.tx is the sole holder.
			if len(e.holders) == 1 {
				if _, ok := e.holders[w.tx]; ok {
					e.holders[w.tx] = Exclusive
					t.held[w.tx][v] = Exclusive
					e.queue = e.queue[1:]
					grants = append(grants, Grant{Tx: w.tx, Var: v, Mode: Exclusive})
					continue
				}
			}
			break
		}
		compatible := true
		for h, hm := range e.holders {
			if h == w.tx {
				continue
			}
			if !Compatible(hm, w.mode) {
				compatible = false
				break
			}
		}
		if !compatible {
			break
		}
		e.holders[w.tx] = w.mode
		t.heldFor(w.tx)[v] = w.mode
		e.queue = e.queue[1:]
		grants = append(grants, Grant{Tx: w.tx, Var: v, Mode: w.mode})
	}
	if len(e.queue) == 0 {
		delete(t.waitQ, v)
	}
	return grants
}

// WaitsFor returns the waits-for graph as an adjacency map: w → holders
// blocking w. Only variables with waiters (the waitQ index) can contribute
// edges, so the walk skips uncontended entries.
func (t *Table) WaitsFor() map[TxID][]TxID {
	out := map[TxID][]TxID{}
	for v := range t.waitQ {
		e := t.locks[v]
		for _, w := range e.queue {
			blockers := t.blockersOf(w.tx, e)
			out[w.tx] = mergeSorted(out[w.tx], blockers)
		}
	}
	return out
}

func mergeSorted(a, b []TxID) []TxID {
	seen := map[TxID]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]TxID, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DetectDeadlock searches the waits-for graph for a cycle and returns one
// (as an ordered list of transactions) if found.
func (t *Table) DetectDeadlock() ([]TxID, bool) {
	return FindCycle(t.WaitsFor())
}

// FindCycle searches an arbitrary waits-for graph for a cycle and returns
// one (as an ordered list of transactions) if found. The sharded table uses
// it on the union of its per-shard graphs, where cross-shard cycles live.
func FindCycle(g map[TxID][]TxID) ([]TxID, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[TxID]int{}
	parent := map[TxID]TxID{}
	nodes := make([]TxID, 0, len(g))
	for n := range g {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var cycle []TxID
	var dfs func(u TxID) bool
	dfs = func(u TxID) bool {
		color[u] = gray
		for _, v := range g[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a cycle v → ... → u → v.
				cycle = []TxID{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into forward order.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			return cycle, true
		}
	}
	return nil, false
}

// ChooseVictim returns the youngest transaction on the cycle (the standard
// minimal-work heuristic).
func (t *Table) ChooseVictim(cycle []TxID) TxID {
	victim := cycle[0]
	for _, tx := range cycle[1:] {
		if t.birth[tx] > t.birth[victim] {
			victim = tx
		}
	}
	return victim
}

// Forget removes all record of a transaction that has released everything
// (bookkeeping hygiene between simulator runs). Its birth timestamp is
// retained so restarts keep their age; its held map is cleared and parked
// for reuse by a later transaction (heldFor), keeping the commit cycle
// allocation-free.
func (t *Table) Forget(tx TxID) {
	if m, ok := t.held[tx]; ok {
		clear(m)
		t.heldFree = append(t.heldFree, m)
		delete(t.held, tx)
	}
}

// Invariant checks the table's safety invariants: at most one Exclusive
// holder per variable, no Shared/Exclusive mix, held map consistent with
// entries. It returns an error describing the first violation.
func (t *Table) Invariant() error {
	for v, e := range t.locks {
		x := 0
		for _, m := range e.holders {
			if m == Exclusive {
				x++
			}
		}
		if x > 1 {
			return fmt.Errorf("variable %s: %d exclusive holders", v, x)
		}
		if x == 1 && len(e.holders) > 1 {
			return fmt.Errorf("variable %s: exclusive holder coexists with others", v)
		}
		for tx, m := range e.holders {
			if got, ok := t.held[tx][v]; !ok || got != m {
				return fmt.Errorf("variable %s: holder %d mode mismatch", v, tx)
			}
		}
	}
	return nil
}
