package lockmgr

import (
	"math/rand"
	"testing"

	"optcc/internal/core"
)

func TestSharedLocksCoexist(t *testing.T) {
	tab := NewTable(Detect)
	tab.Register(1)
	tab.Register(2)
	if r := tab.Acquire(1, "x", Shared); r.Status != Granted {
		t.Fatalf("first S: %v", r.Status)
	}
	if r := tab.Acquire(2, "x", Shared); r.Status != Granted {
		t.Fatalf("second S: %v", r.Status)
	}
	if err := tab.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveBlocks(t *testing.T) {
	tab := NewTable(Detect)
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Granted {
		t.Fatal("X not granted on free variable")
	}
	if r := tab.Acquire(2, "x", Shared); r.Status != Waiting {
		t.Fatal("S granted while X held")
	}
	if r := tab.Acquire(3, "x", Exclusive); r.Status != Waiting {
		t.Fatal("X granted while X held")
	}
	if tab.QueueLen("x") != 2 {
		t.Fatalf("queue length = %d, want 2", tab.QueueLen("x"))
	}
	grants := tab.Release(1, "x")
	if len(grants) != 1 || grants[0].Tx != 2 || grants[0].Mode != Shared {
		t.Fatalf("grants after release = %v", grants)
	}
	// Tx 3's X still blocked by tx 2's S.
	if m, ok := tab.Holds(3, "x"); ok {
		t.Fatalf("tx3 holds %v prematurely", m)
	}
	grants = tab.ReleaseAll(2)
	if len(grants) != 1 || grants[0].Tx != 3 || grants[0].Mode != Exclusive {
		t.Fatalf("grants after tx2 exit = %v", grants)
	}
}

func TestReacquireIsIdempotent(t *testing.T) {
	tab := NewTable(Detect)
	tab.Acquire(1, "x", Exclusive)
	if r := tab.Acquire(1, "x", Shared); r.Status != Granted {
		t.Error("downgrade request while holding X should be granted")
	}
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Granted {
		t.Error("re-acquire X should be granted")
	}
	tab2 := NewTable(Detect)
	tab2.Acquire(1, "x", Shared)
	if r := tab2.Acquire(1, "x", Shared); r.Status != Granted {
		t.Error("re-acquire S should be granted")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	tab := NewTable(Detect)
	tab.Acquire(1, "x", Shared)
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Granted {
		t.Fatal("upgrade by sole holder not granted")
	}
	if m, _ := tab.Holds(1, "x"); m != Exclusive {
		t.Fatal("mode not upgraded")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	tab := NewTable(Detect)
	tab.Acquire(1, "x", Shared)
	tab.Acquire(2, "x", Shared)
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Waiting {
		t.Fatal("upgrade granted with other readers present")
	}
	grants := tab.ReleaseAll(2)
	if len(grants) != 1 || grants[0].Tx != 1 || grants[0].Mode != Exclusive {
		t.Fatalf("upgrade not granted after readers left: %v", grants)
	}
	if err := tab.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOFairnessNoWriterStarvation(t *testing.T) {
	tab := NewTable(Detect)
	tab.Acquire(1, "x", Shared)
	if r := tab.Acquire(2, "x", Exclusive); r.Status != Waiting {
		t.Fatal("writer should wait")
	}
	// A later reader must queue behind the waiting writer.
	if r := tab.Acquire(3, "x", Shared); r.Status != Waiting {
		t.Fatal("reader jumped the queue past a waiting writer")
	}
	grants := tab.ReleaseAll(1)
	if len(grants) == 0 || grants[0].Tx != 2 {
		t.Fatalf("writer not granted first: %v", grants)
	}
}

func TestNoWaitAborts(t *testing.T) {
	tab := NewTable(NoWait)
	tab.Acquire(1, "x", Exclusive)
	if r := tab.Acquire(2, "x", Exclusive); r.Status != AbortSelf {
		t.Fatalf("no-wait returned %v", r.Status)
	}
	if tab.QueueLen("x") != 0 {
		t.Error("no-wait left a queue entry")
	}
}

func TestWaitDie(t *testing.T) {
	tab := NewTable(WaitDie)
	tab.Register(1) // older
	tab.Register(2) // younger
	tab.Acquire(2, "x", Exclusive)
	// Older requester waits.
	if r := tab.Acquire(1, "x", Exclusive); r.Status != Waiting {
		t.Fatalf("older requester: %v", r.Status)
	}
	tab2 := NewTable(WaitDie)
	tab2.Register(1)
	tab2.Register(2)
	tab2.Acquire(1, "x", Exclusive)
	// Younger requester dies.
	if r := tab2.Acquire(2, "x", Exclusive); r.Status != AbortSelf {
		t.Fatalf("younger requester: %v", r.Status)
	}
}

func TestWoundWait(t *testing.T) {
	tab := NewTable(WoundWait)
	tab.Register(1)
	tab.Register(2)
	tab.Acquire(2, "x", Exclusive)
	// Older requester wounds the younger holder and waits.
	r := tab.Acquire(1, "x", Exclusive)
	if r.Status != Waiting || len(r.Wounded) != 1 || r.Wounded[0] != 2 {
		t.Fatalf("wound-wait older requester: %+v", r)
	}
	// Caller aborts the victim; the older transaction is then granted.
	grants := tab.ReleaseAll(2)
	if len(grants) != 1 || grants[0].Tx != 1 {
		t.Fatalf("grants after wound: %v", grants)
	}
	// Younger requester waits without wounding.
	tab2 := NewTable(WoundWait)
	tab2.Register(1)
	tab2.Register(2)
	tab2.Acquire(1, "x", Exclusive)
	r = tab2.Acquire(2, "x", Exclusive)
	if r.Status != Waiting || len(r.Wounded) != 0 {
		t.Fatalf("wound-wait younger requester: %+v", r)
	}
}

func TestDeadlockDetection(t *testing.T) {
	tab := NewTable(Detect)
	tab.Register(1)
	tab.Register(2)
	tab.Acquire(1, "x", Exclusive)
	tab.Acquire(2, "y", Exclusive)
	tab.Acquire(1, "y", Exclusive) // 1 waits for 2
	if _, found := tab.DetectDeadlock(); found {
		t.Fatal("deadlock reported before cycle closed")
	}
	tab.Acquire(2, "x", Exclusive) // 2 waits for 1: cycle
	cycle, found := tab.DetectDeadlock()
	if !found {
		t.Fatal("deadlock not detected")
	}
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v", cycle)
	}
	victim := tab.ChooseVictim(cycle)
	if victim != 2 {
		t.Errorf("victim = %d, want youngest (2)", victim)
	}
	grants := tab.ReleaseAll(victim)
	if len(grants) != 1 || grants[0].Tx != 1 || grants[0].Var != core.Var("y") {
		t.Fatalf("grants after victim abort = %v", grants)
	}
	if _, found := tab.DetectDeadlock(); found {
		t.Error("deadlock persists after victim abort")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	tab := NewTable(Detect)
	for tx := TxID(1); tx <= 3; tx++ {
		tab.Register(tx)
	}
	tab.Acquire(1, "a", Exclusive)
	tab.Acquire(2, "b", Exclusive)
	tab.Acquire(3, "c", Exclusive)
	tab.Acquire(1, "b", Exclusive)
	tab.Acquire(2, "c", Exclusive)
	tab.Acquire(3, "a", Exclusive)
	cycle, found := tab.DetectDeadlock()
	if !found || len(cycle) != 3 {
		t.Fatalf("cycle = %v, found = %v", cycle, found)
	}
	if v := tab.ChooseVictim(cycle); v != 3 {
		t.Errorf("victim = %d, want 3", v)
	}
}

func TestWaitsForGraph(t *testing.T) {
	tab := NewTable(Detect)
	tab.Acquire(1, "x", Exclusive)
	tab.Acquire(2, "x", Shared)
	tab.Acquire(3, "x", Shared)
	g := tab.WaitsFor()
	if len(g[2]) != 1 || g[2][0] != 1 {
		t.Errorf("waits-for of 2 = %v", g[2])
	}
	if len(g[3]) != 1 || g[3][0] != 1 {
		t.Errorf("waits-for of 3 = %v", g[3])
	}
}

func TestReleaseUnheldIsNoop(t *testing.T) {
	tab := NewTable(Detect)
	if grants := tab.Release(1, "x"); grants != nil {
		t.Error("release of unheld lock produced grants")
	}
	tab.Acquire(1, "x", Shared)
	if grants := tab.Release(2, "x"); grants != nil {
		t.Error("release by non-holder produced grants")
	}
}

func TestRegisterKeepsAgeAcrossRestart(t *testing.T) {
	tab := NewTable(WaitDie)
	tab.Register(1)
	tab.Register(2)
	tab.ReleaseAll(2)
	tab.Forget(2)
	tab.Register(2) // restart
	if !tab.older(1, 2) {
		t.Error("restarted transaction lost its age ordering")
	}
}

func TestModePolicyStatusStrings(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings")
	}
	for p, want := range map[Policy]string{Detect: "detect", NoWait: "no-wait", WaitDie: "wait-die", WoundWait: "wound-wait"} {
		if p.String() != want {
			t.Errorf("policy %d = %q", int(p), p.String())
		}
	}
	if Policy(9).String() == "" || Status(9).String() == "" {
		t.Error("unknown enum renders empty")
	}
	for s, want := range map[Status]string{Granted: "granted", Waiting: "waiting", AbortSelf: "abort-self"} {
		if s.String() != want {
			t.Errorf("status %d = %q", int(s), s.String())
		}
	}
}

// Property: under random acquire/release traffic with the Detect policy,
// the table invariant always holds and every waiter eventually drains when
// all transactions release.
func TestRandomTrafficInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vars := []core.Var{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		tab := NewTable(Detect)
		const txs = 4
		for tx := TxID(0); tx < txs; tx++ {
			tab.Register(tx)
		}
		for op := 0; op < 40; op++ {
			tx := TxID(rng.Intn(txs))
			v := vars[rng.Intn(len(vars))]
			mode := Shared
			if rng.Intn(2) == 0 {
				mode = Exclusive
			}
			if rng.Intn(4) == 0 {
				tab.ReleaseAll(tx)
			} else {
				tab.Acquire(tx, v, mode)
			}
			if err := tab.Invariant(); err != nil {
				t.Fatalf("trial %d op %d: %v", trial, op, err)
			}
			// Break deadlocks as a real system would.
			if cycle, found := tab.DetectDeadlock(); found {
				tab.ReleaseAll(tab.ChooseVictim(cycle))
			}
		}
		for tx := TxID(0); tx < txs; tx++ {
			tab.ReleaseAll(tx)
		}
		for _, v := range vars {
			if tab.QueueLen(v) != 0 {
				t.Fatalf("trial %d: queue on %s not drained", trial, v)
			}
			if len(tab.HeldBy(v)) != 0 {
				t.Fatalf("trial %d: %s still held", trial, v)
			}
		}
	}
}
