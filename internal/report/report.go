// Package report provides the small output layer shared by cmd/ccbench,
// the examples and EXPERIMENTS.md: aligned ASCII tables, streaming
// statistics (Welford mean/variance) and fixed-capacity histograms with
// percentile queries.
package report

import (
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Headers returns a copy of the column headers (for machine-readable
// renderings like ccbench -json).
func (t *Table) Headers() []string {
	return append([]string(nil), t.headers...)
}

// Rows returns a copy of the rendered data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.headers, " | "))
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Stats accumulates streaming mean and variance (Welford's algorithm) plus
// min and max.
type Stats struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records an observation.
func (s *Stats) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stats) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Stats) Mean() float64 { return s.mean }

// Var returns the sample variance (0 when fewer than 2 observations).
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Stats) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stats) Max() float64 { return s.max }

// String summarizes the stats.
func (s *Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f", s.n, s.Mean(), s.Std(), s.Min(), s.Max())
}

// Histogram stores raw observations and answers percentile queries
// exactly. It is meant for simulation-scale data (≤ millions of points).
type Histogram struct {
	xs     []float64
	sorted bool
}

// Add records an observation.
//
//optcc:hotpath
func (h *Histogram) Add(x float64) {
	//cclint:ignore hotpath presized by Grow; overflow beyond the reservation falls back to amortized growth by design
	h.xs = append(h.xs, x)
	h.sorted = false
}

// Grow ensures capacity for at least n further observations without
// reallocating. The simulator presizes its per-request histograms with the
// run's expected sample count so steady-state Add calls never touch the
// allocator (the zero-allocation hot-path invariant, DESIGN.md "Memory
// discipline"); a run that overflows the reservation — restarts add extra
// requests — just falls back to amortized append growth.
func (h *Histogram) Grow(n int) {
	if n <= 0 || cap(h.xs)-len(h.xs) >= n {
		return
	}
	xs := make([]float64, len(h.xs), len(h.xs)+n)
	copy(xs, h.xs)
	h.xs = xs
}

// N returns the number of observations.
func (h *Histogram) N() int { return len(h.xs) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank; it returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.xs) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.xs)
		h.sorted = true
	}
	if p <= 0 {
		return h.xs[0]
	}
	if p >= 100 {
		return h.xs[len(h.xs)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.xs))))
	if rank < 1 {
		rank = 1
	}
	return h.xs[rank-1]
}

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if len(h.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range h.xs {
		sum += x
	}
	return sum / float64(len(h.xs))
}

// Summary renders n, mean and the standard latency percentiles.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		h.N(), h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Percentile(100))
}

// Ratio formats a/b as both a fraction and a percentage, guarding b = 0.
func Ratio(a, b int) string {
	if b == 0 {
		return "0/0"
	}
	return fmt.Sprintf("%d/%d (%.1f%%)", a, b, 100*float64(a)/float64(b))
}

// AllocMeter measures the allocator pressure of a region of code: heap
// objects and bytes allocated between Start and Delta, from the
// runtime/metrics allocation counters (no stop-the-world, unlike
// runtime.ReadMemStats — the simulator meters every run, including
// sub-millisecond ones, so the read must be nearly free). The counters are
// process-global, so concurrent activity outside the measured region
// pollutes the reading — treat it as a trend meter (the simulator's
// AllocBytes/AllocsPerTx metrics, ccbench -allocstats), not a proof; the
// proof lives in the AllocsPerOp ceilings of TestHotPathAllocCeilings.
type AllocMeter struct {
	objects, bytes uint64
}

func readAllocCounters() (objects, bytes uint64) {
	samples := [2]metrics.Sample{
		{Name: "/gc/heap/allocs:objects"},
		{Name: "/gc/heap/allocs:bytes"},
	}
	metrics.Read(samples[:])
	return samples[0].Value.Uint64(), samples[1].Value.Uint64()
}

// Start snapshots the allocator counters.
func (a *AllocMeter) Start() {
	a.objects, a.bytes = readAllocCounters()
}

// Delta returns heap objects and bytes allocated since Start.
func (a *AllocMeter) Delta() (allocs, bytes int64) {
	objects, byteCount := readAllocCounters()
	return int64(objects - a.objects), int64(byteCount - a.bytes)
}
