package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22.5)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22.500") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("md", "a", "b")
	tb.AddRow("x", "y")
	md := tb.Markdown()
	for _, want := range []string{"### md", "| a | b |", "| --- | --- |", "| x | y |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestStats(t *testing.T) {
	var s Stats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("empty string")
	}
	var empty Stats
	if empty.Var() != 0 || empty.Mean() != 0 {
		t.Error("empty stats nonzero")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("n = %d", h.N())
	}
	if got := h.Percentile(50); got != 50 {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(95); got != 95 {
		t.Errorf("p95 = %v", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Summary() == "" {
		t.Error("empty summary")
	}
	var empty Histogram
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram nonzero")
	}
}

func TestHistogramInterleavedAddQuery(t *testing.T) {
	var h Histogram
	h.Add(3)
	_ = h.Percentile(50)
	h.Add(1) // must re-sort
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 after re-add = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 4) != "1/4 (25.0%)" {
		t.Errorf("ratio = %q", Ratio(1, 4))
	}
	if Ratio(0, 0) != "0/0" {
		t.Error("zero denominator")
	}
}
