package info

import (
	"testing"

	"optcc/internal/core"
	"optcc/internal/schedule"
)

// figure1 returns the interpreted Figure 1 system with the integrity
// constraint x ≥ 0 probed from x ∈ {0, 1, 2}.
func figure1() *core.System {
	last := func(l []core.Value) core.Value { return l[len(l)-1] }
	return (&core.System{
		Name: "figure1",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
			}},
		},
		IC: &core.IC{
			Name:     "x>=0",
			Check:    func(db core.DB) bool { return db["x"] >= 0 },
			Initials: func() []core.DB { return []core.DB{{"x": 0}, {"x": 1}, {"x": 2}} },
		},
	}).Normalize()
}

func TestLevelStrings(t *testing.T) {
	names := map[Level]string{
		Minimum: "minimum", Syntactic: "syntactic",
		SemanticNoIC: "semantic-no-ic", Maximum: "maximum",
	}
	for l, want := range names {
		if l.String() != want {
			t.Errorf("level %d = %q, want %q", int(l), l.String(), want)
		}
	}
	if Level(99).String() == "" {
		t.Error("unknown level renders empty")
	}
	if len(Levels()) != 4 {
		t.Error("Levels() should list 4 levels")
	}
}

// The fundamental trade-off: fixpoint sets are nested along the information
// order. On Figure 1: Minimum ⊆ Syntactic ⊆ SemanticNoIC ⊆ Maximum, with
// strict growth from Minimum to SemanticNoIC.
func TestFixpointHierarchy(t *testing.T) {
	sys := figure1()
	oracles := map[Level]*Oracle{}
	for _, l := range Levels() {
		o, err := NewOracle(sys, l)
		if err != nil {
			t.Fatalf("level %v: %v", l, err)
		}
		oracles[l] = o
	}
	counts := map[Level]int{}
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		prev := true
		for _, l := range Levels() {
			in, err := oracles[l].InFixpoint(h)
			if err != nil {
				t.Fatal(err)
			}
			if in {
				counts[l]++
			}
			if !prev && in {
				// A schedule in a lower-information fixpoint must be in all
				// higher ones.
				_ = prev
			}
			if l > Minimum {
				lower, _ := oracles[l-1].InFixpoint(h)
				if lower && !in {
					t.Errorf("%v in %v fixpoint but not %v", h, l-1, l)
				}
			}
			prev = in
		}
		return true
	})
	if !(counts[Minimum] < counts[Syntactic] || counts[Minimum] < counts[SemanticNoIC]) {
		t.Errorf("no strict growth: %v", counts)
	}
	if counts[Minimum] != 2 {
		t.Errorf("serial fixpoint = %d, want 2", counts[Minimum])
	}
	if counts[SemanticNoIC] != 3 {
		t.Errorf("WSR fixpoint = %d, want 3 (all schedules of Figure 1)", counts[SemanticNoIC])
	}
}

func TestOracleApplyProducesCorrectSchedules(t *testing.T) {
	sys := figure1()
	for _, l := range Levels() {
		o, err := NewOracle(sys, l)
		if err != nil {
			t.Fatal(err)
		}
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			out, err := o.Apply(h.Clone())
			if err != nil {
				t.Fatal(err)
			}
			ok, err := core.ScheduleCorrect(sys, out)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("level %v: S(%v) = %v is incorrect", l, h, out)
			}
			in, err := o.InFixpoint(h)
			if err != nil {
				t.Fatal(err)
			}
			if in && !out.Equal(h) {
				t.Errorf("level %v: fixpoint schedule %v was rearranged to %v", l, h, out)
			}
			return true
		})
	}
}

func TestSerializeByFirstArrival(t *testing.T) {
	format := []int{2, 1, 1}
	h := core.Schedule{{Tx: 1, Idx: 0}, {Tx: 0, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 2, Idx: 0}}
	s := SerializeByFirstArrival(format, h)
	want := core.Schedule{{Tx: 1, Idx: 0}, {Tx: 0, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 2, Idx: 0}}
	if !s.Equal(want) {
		t.Errorf("serialized = %v, want %v", s, want)
	}
	if !s.IsSerial() || !s.Legal(format) {
		t.Error("result not a legal serial schedule")
	}
	// Transactions missing from the prefix follow in index order.
	partial := core.Schedule{{Tx: 2, Idx: 0}}
	s2 := SerializeByFirstArrival(format, partial)
	order, _ := s2.SerialOrder()
	if len(order) != 3 || order[0] != 2 || order[1] != 0 || order[2] != 1 {
		t.Errorf("order = %v, want [2 0 1]", order)
	}
}

func TestOracleRejectsIllegalSchedules(t *testing.T) {
	o, err := NewOracle(figure1(), Minimum)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.InFixpoint(core.Schedule{{Tx: 0, Idx: 1}}); err == nil {
		t.Error("illegal schedule accepted")
	}
}

func TestNewOracleErrors(t *testing.T) {
	syntactic := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	if _, err := NewOracle(syntactic, SemanticNoIC); err == nil {
		t.Error("WSR oracle built for uninterpreted system")
	}
	if _, err := NewOracle(syntactic, Maximum); err == nil {
		t.Error("maximum oracle built for uninterpreted system")
	}
	if _, err := NewOracle(syntactic, Level(42)); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewOracle(syntactic, Syntactic); err != nil {
		t.Errorf("syntactic oracle should not need interpretations: %v", err)
	}
}

func TestIntersectionCorrect(t *testing.T) {
	sys := figure1()
	systems := []*core.System{sys}
	h := core.SerialSchedule(sys.Format(), []int{0, 1})
	ok, err := IntersectionCorrect(systems, h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial schedule rejected by intersection")
	}
	// Add an adversary: now only schedules correct for both pass.
	adv, err := BuildTheorem2Adversary(sys.Format(), core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	ok, err = IntersectionCorrect([]*core.System{sys, adv}, bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("adversary-breaking schedule passed the intersection")
	}
}
