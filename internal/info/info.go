// Package info models the information available to a scheduler (Section 3
// of Kung & Papadimitriou 1979) and realizes the optimal scheduler for each
// of the paper's information levels.
//
// A level of information about a transaction system T is a set I ∋ T of
// transaction systems the scheduler cannot distinguish. Theorem 1 bounds
// any correct scheduler's fixpoint set by P ⊆ ∩_{T'∈I} C(T'); the scheduler
// attaining equality is optimal for I. The paper works out four levels:
//
//	Minimum     — format only            — optimal P = serial schedules (Thm 2)
//	Syntactic   — complete syntax        — optimal P = SR(T)            (Thm 3)
//	SemanticNoIC— all but the IC         — optimal P = WSR(T)           (Thm 4)
//	Maximum     — everything             — optimal P = C(T)
//
// The package also provides the adversary constructions used in the proofs:
// the increment/double/decrement system of Theorem 2 and the
// Herbrand-integrity-constraint system of Theorem 3.
package info

import (
	"fmt"

	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/wsr"
)

// Level enumerates the paper's information levels, ordered by increasing
// information (decreasing size of I).
type Level int

const (
	// Minimum information: the scheduler knows only the format (m1..mn).
	Minimum Level = iota
	// Syntactic information: the scheduler knows the full syntax (which
	// variable each step accesses and whether it reads or writes), but no
	// interpretations and no integrity constraints.
	Syntactic
	// SemanticNoIC: syntax plus the interpretations of all function
	// symbols, but not the integrity constraints.
	SemanticNoIC
	// Maximum information: the scheduler knows the system completely;
	// I = {T}.
	Maximum
)

// String names the level as in the paper.
func (l Level) String() string {
	switch l {
	case Minimum:
		return "minimum"
	case Syntactic:
		return "syntactic"
	case SemanticNoIC:
		return "semantic-no-ic"
	case Maximum:
		return "maximum"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels lists all levels in increasing-information order.
func Levels() []Level { return []Level{Minimum, Syntactic, SemanticNoIC, Maximum} }

// Oracle is the optimal scheduler for a system at a given information
// level: its fixpoint set P is exactly the set the corresponding theorem
// proves maximal, and Apply realizes the mapping S : H → C(T).
type Oracle struct {
	sys   *core.System
	level Level
	herb  *herbrand.Checker
	weak  *wsr.Checker
}

// NewOracle builds the optimal scheduler for the system at the level.
// Levels above Syntactic require an executable system; Maximum additionally
// uses the system's integrity constraints.
func NewOracle(sys *core.System, level Level) (*Oracle, error) {
	o := &Oracle{sys: sys, level: level}
	var err error
	switch level {
	case Minimum:
	case Syntactic:
		o.herb, err = herbrand.NewChecker(sys)
	case SemanticNoIC:
		o.weak, err = wsr.NewChecker(sys, wsr.Options{})
	case Maximum:
		if !sys.Executable() {
			err = fmt.Errorf("info: maximum-information oracle needs an executable system")
		}
	default:
		err = fmt.Errorf("info: unknown level %v", level)
	}
	if err != nil {
		return nil, err
	}
	return o, nil
}

// Level returns the oracle's information level.
func (o *Oracle) Level() Level { return o.level }

// InFixpoint reports whether h belongs to the oracle's fixpoint set P:
// serial schedules for Minimum, SR(T) for Syntactic, WSR(T) for
// SemanticNoIC, C(T) for Maximum.
func (o *Oracle) InFixpoint(h core.Schedule) (bool, error) {
	if !h.Legal(o.sys.Format()) {
		return false, fmt.Errorf("info: schedule %v not legal for format %v", h, o.sys.Format())
	}
	switch o.level {
	case Minimum:
		return h.IsSerial(), nil
	case Syntactic:
		ok, _, err := o.herb.Serializable(h)
		return ok, err
	case SemanticNoIC:
		ok, _, err := o.weak.Weak(h)
		return ok, err
	case Maximum:
		return core.ScheduleCorrect(o.sys, h)
	}
	return false, fmt.Errorf("info: unknown level %v", o.level)
}

// Apply realizes the scheduler mapping S : H → C(T): schedules in the
// fixpoint pass unchanged; anything else is rearranged into the serial
// schedule that orders transactions by first appearance in h (serial
// schedules are correct by the paper's basic assumption).
func (o *Oracle) Apply(h core.Schedule) (core.Schedule, error) {
	ok, err := o.InFixpoint(h)
	if err != nil {
		return nil, err
	}
	if ok {
		return h, nil
	}
	return SerializeByFirstArrival(o.sys.Format(), h), nil
}

// SerializeByFirstArrival returns the serial schedule executing
// transactions in order of their first step's appearance in h; transactions
// absent from h follow in index order.
func SerializeByFirstArrival(format []int, h core.Schedule) core.Schedule {
	var order []int
	seen := make([]bool, len(format))
	for _, id := range h {
		if !seen[id.Tx] {
			seen[id.Tx] = true
			order = append(order, id.Tx)
		}
	}
	for i := range format {
		if !seen[i] {
			order = append(order, i)
		}
	}
	return core.SerialSchedule(format, order)
}

// IntersectionCorrect reports whether h ∈ ∩_{T'∈systems} C(T'): the
// Theorem 1 bound for a finite family of indistinguishable systems.
func IntersectionCorrect(systems []*core.System, h core.Schedule) (bool, error) {
	for _, sys := range systems {
		ok, err := core.ScheduleCorrect(sys, h)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
