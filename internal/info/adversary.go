package info

import (
	"fmt"

	"optcc/internal/core"
	"optcc/internal/herbrand"
)

// BuildTheorem2Adversary constructs, for a non-serial schedule h of the
// given format, a transaction system T' with that format such that
// h ∉ C(T'). This is the construction in the proof of Theorem 2: pick steps
// T_il, T_jm, T_il' interleaved as (..., T_il, ..., T_jm, ..., T_il', ...);
// interpret T_il as x←x+1, T_il' as x←x−1, T_jm as x←2x, every other step
// as a pure read of x, and take IC = {x = 0}. Every transaction alone
// preserves x = 0, but h drives x to 1.
//
// It returns an error if h is serial (no adversary exists: serial schedules
// are correct for every system of the format).
func BuildTheorem2Adversary(format []int, h core.Schedule) (*core.System, error) {
	if !h.Legal(format) {
		return nil, fmt.Errorf("adversary: schedule %v not legal for format %v", h, format)
	}
	a, b, c, ok := interleavePattern(h)
	if !ok {
		return nil, fmt.Errorf("adversary: schedule %v is serial; no Theorem-2 adversary exists", h)
	}
	last := func(l []core.Value) core.Value { return l[len(l)-1] }
	txs := make([]core.Transaction, len(format))
	for i, m := range format {
		steps := make([]core.Step, m)
		for j := range steps {
			steps[j] = core.Step{Var: "x", Kind: core.Read}
		}
		txs[i] = core.Transaction{Steps: steps}
	}
	set := func(id core.StepID, fn core.StepFunc) {
		txs[id.Tx].Steps[id.Idx] = core.Step{Var: "x", Kind: core.Update, Fn: fn}
	}
	set(h[a], func(l []core.Value) core.Value { return last(l) + 1 })
	set(h[c], func(l []core.Value) core.Value { return last(l) - 1 })
	set(h[b], func(l []core.Value) core.Value { return 2 * last(l) })
	sys := &core.System{
		Name: "theorem2-adversary",
		Txs:  txs,
		IC: &core.IC{
			Name:     "x=0",
			Check:    func(db core.DB) bool { return db["x"] == 0 },
			Initials: func() []core.DB { return []core.DB{{"x": 0}} },
		},
	}
	return sys.Normalize(), nil
}

// interleavePattern finds positions a < b < c in h with
// h[a].Tx == h[c].Tx ≠ h[b].Tx. Such a pattern exists iff h is not serial.
func interleavePattern(h core.Schedule) (a, b, c int, ok bool) {
	lastPos := map[int]int{}
	for pos, id := range h {
		if prev, seen := lastPos[id.Tx]; seen && prev != pos-1 {
			// Some other transaction's step lies strictly between prev and
			// pos; find the first one.
			for k := prev + 1; k < pos; k++ {
				if h[k].Tx != id.Tx {
					return prev, k, pos, true
				}
			}
		}
		lastPos[id.Tx] = pos
	}
	return 0, 0, 0, false
}

// HerbrandAdversary is the transaction system T' built in the proof of
// Theorem 3: same syntax as T, Herbrand interpretations, and integrity
// constraints "the global values are those produced by some concatenation
// of serial executions of transactions (possibly with repetitions and
// omissions) from the initial values". Every transaction alone preserves
// the IC, yet C(T') = SR(T) on complete schedules of the paper's pure
// update model — so no scheduler with only syntactic information can pass
// a schedule outside SR(T).
//
// With the Read/Write syntactic refinements, a blind write whose value
// ignores an interleaved transaction can make a non-serializable history
// coincide with an omission concatenation; the adversary then accepts it
// (it is a sound over-approximation of SR, exact for all-Update systems).
type HerbrandAdversary struct {
	sys   *core.System
	uni   *herbrand.Universe
	reach map[string]bool
}

// NewHerbrandAdversary builds the adversary for the system's syntax,
// enumerating serially reachable Herbrand states up to maxConcat
// transaction executions (0 means NumTxs + 1, enough to cover every
// permutation plus one repetition).
func NewHerbrandAdversary(sys *core.System, maxConcat int) (*HerbrandAdversary, error) {
	if maxConcat <= 0 {
		maxConcat = sys.NumTxs() + 1
	}
	a := &HerbrandAdversary{
		sys:   sys,
		uni:   herbrand.NewUniverse(),
		reach: map[string]bool{},
	}
	initial := a.initialFinal()
	a.reach[initial.Key()] = true
	frontier := []herbrand.Final{initial}
	for depth := 0; depth < maxConcat; depth++ {
		var next []herbrand.Final
		for _, f := range frontier {
			for ti := 0; ti < sys.NumTxs(); ti++ {
				g := a.applyTx(f, ti)
				if a.reach[g.Key()] {
					continue
				}
				a.reach[g.Key()] = true
				next = append(next, g)
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return a, nil
}

func (a *HerbrandAdversary) initialFinal() herbrand.Final {
	f := herbrand.Final{}
	for _, v := range a.sys.Vars() {
		f[v] = a.uni.Var(v)
	}
	return f
}

// applyTx executes transaction ti serially (symbolically) from the state f.
func (a *HerbrandAdversary) applyTx(f herbrand.Final, ti int) herbrand.Final {
	g := herbrand.Final{}
	for v, t := range f {
		g[v] = t
	}
	var locals []*herbrand.Term
	for j := range a.sys.Txs[ti].Steps {
		step := a.sys.Txs[ti].Steps[j]
		read := g[step.Var]
		locals = append(locals, read)
		switch step.Kind {
		case core.Read:
		case core.Write:
			g[step.Var] = a.uni.Apply(step.FnName, locals[:len(locals)-1])
		default:
			g[step.Var] = a.uni.Apply(step.FnName, locals)
		}
	}
	return g
}

// Correct reports whether h ∈ C(T') for the adversary system: whether h's
// Herbrand execution result is serially reachable.
func (a *HerbrandAdversary) Correct(h core.Schedule) (bool, error) {
	f, err := herbrand.Eval(a.uni, a.sys, h)
	if err != nil {
		return false, err
	}
	return a.reach[f.Key()], nil
}

// ReachableStates returns the number of serially reachable Herbrand states
// enumerated.
func (a *HerbrandAdversary) ReachableStates() int { return len(a.reach) }
