package info

import (
	"testing"

	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/schedule"
)

// Theorem 2, fully mechanized: for EVERY non-serial schedule h of a format,
// the constructed adversary T' has (i) individually correct transactions,
// (ii) correct serial schedules, and (iii) h ∉ C(T').
func TestTheorem2AdversaryBreaksEveryNonSerialSchedule(t *testing.T) {
	for _, format := range [][]int{{2, 1}, {2, 2}, {1, 1, 1}, {3, 2}} {
		schedule.Enumerate(format, func(h core.Schedule) bool {
			if h.IsSerial() {
				if _, err := BuildTheorem2Adversary(format, h); err == nil {
					t.Errorf("adversary built for serial schedule %v", h)
				}
				return true
			}
			adv, err := BuildTheorem2Adversary(format, h.Clone())
			if err != nil {
				t.Fatalf("format %v, h=%v: %v", format, h, err)
			}
			if err := adv.Validate(); err != nil {
				t.Fatalf("adversary invalid: %v", err)
			}
			// (i) every transaction alone preserves x = 0.
			for ti := range adv.Txs {
				final, err := core.ExecSerialOrder(adv, []int{ti}, core.DB{"x": 0})
				if err != nil {
					t.Fatal(err)
				}
				if final["x"] != 0 {
					t.Fatalf("adversary transaction %d alone violates IC: %v", ti, final)
				}
			}
			// (ii) serial schedules are correct.
			for _, s := range schedule.Serials(format) {
				ok, err := core.ScheduleCorrect(adv, s)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("serial schedule %v incorrect for adversary", s)
				}
			}
			// (iii) h is incorrect.
			ok, err := core.ScheduleCorrect(adv, h)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Errorf("format %v: adversary fails to break non-serial %v", format, h)
			}
			return true
		})
	}
}

func TestTheorem2AdversaryRejectsIllegal(t *testing.T) {
	if _, err := BuildTheorem2Adversary([]int{2, 1}, core.Schedule{{Tx: 0, Idx: 1}}); err == nil {
		t.Error("illegal schedule accepted")
	}
}

func TestInterleavePattern(t *testing.T) {
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	a, b, c, ok := interleavePattern(h)
	if !ok || a != 0 || b != 1 || c != 2 {
		t.Errorf("pattern = (%d,%d,%d,%v)", a, b, c, ok)
	}
	serial := core.Schedule{{Tx: 1, Idx: 0}, {Tx: 0, Idx: 0}, {Tx: 0, Idx: 1}}
	if _, _, _, ok := interleavePattern(serial); ok {
		t.Error("pattern found in serial schedule")
	}
}

// Theorem 3, mechanized: for the Figure-1 syntax the Herbrand adversary T'
// satisfies C(T') ∩ H = SR(T) — i.e. h passes the adversary iff h is
// Herbrand-serializable.
func TestHerbrandAdversaryCharacterizesSR(t *testing.T) {
	syntaxes := []*core.System{
		(&core.System{
			Name: "figure1-syntax",
			Txs: []core.Transaction{
				{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "x", Kind: core.Update}}},
				{Steps: []core.Step{{Var: "x", Kind: core.Update}}},
			},
		}).Normalize(),
		(&core.System{
			Name: "rw-pair",
			Txs: []core.Transaction{
				{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "y", Kind: core.Write}}},
				{Steps: []core.Step{{Var: "y", Kind: core.Read}, {Var: "x", Kind: core.Write}}},
			},
		}).Normalize(),
	}
	for _, sys := range syntaxes {
		adv, err := NewHerbrandAdversary(sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		checker, err := herbrand.NewChecker(sys)
		if err != nil {
			t.Fatal(err)
		}
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			sr, _, err := checker.Serializable(h)
			if err != nil {
				t.Fatal(err)
			}
			pass, err := adv.Correct(h)
			if err != nil {
				t.Fatal(err)
			}
			if sr != pass {
				t.Errorf("system %s, h=%v: SR=%v but adversary-correct=%v", sys.Name, h, sr, pass)
			}
			return true
		})
		if adv.ReachableStates() == 0 {
			t.Error("no reachable states enumerated")
		}
	}
}

func TestHerbrandAdversaryRejectsIllegal(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	adv, err := NewHerbrandAdversary(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adv.Correct(core.Schedule{{Tx: 0, Idx: 5}}); err == nil {
		t.Error("illegal schedule evaluated")
	}
}
