//go:build race

package sim

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation adds allocations of its own; the
// hot-path allocation ceilings only hold (and only run) without it.
const raceEnabled = true
