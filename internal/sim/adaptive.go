package sim

// batchSizer adapts a dispatch loop's intake-coalescing bound by AIMD on
// the backlog it actually observes, making Config.Batch a cap instead of a
// fixed size. Each drain reports how many requests it coalesced: hitting
// the current bound means the queue had at least that much backlog, so the
// bound grows additively (+1) toward the cap; draining less than half the
// bound means the queue is thin, so the bound halves toward 1 — where the
// loop behaves exactly like the unbatched runtime (scalar fast path, no
// per-batch slices). A loop under steady load therefore earns its large
// critical sections, and an idle loop never holds requests hostage to a
// batch size the traffic cannot fill.
//
// One sizer belongs to one dispatch goroutine; it is not safe for
// concurrent use and needs no synchronization.
type batchSizer struct {
	cap, cur int
}

func newBatchSizer(cap int) *batchSizer {
	if cap < 1 {
		cap = 1
	}
	return &batchSizer{cap: cap, cur: 1}
}

// bound returns the current coalescing bound in [1, cap].
//
//optcc:hotpath
func (b *batchSizer) bound() int { return b.cur }

// observe feeds the size of the batch just drained and adjusts the bound.
//
//optcc:hotpath
func (b *batchSizer) observe(n int) {
	if b.cap == 1 {
		return
	}
	switch {
	case n >= b.cur:
		if b.cur < b.cap {
			b.cur++ // additive increase under backlog
		}
	case n <= b.cur/2:
		b.cur = max(1, b.cur/2) // multiplicative decrease as the queue drains
	}
}
