package sim

import "testing"

// TestBatchSizerShrinkStaircase pins the sizer's shrink path in isolation:
// once the backlog disappears, every thin drain halves the bound — 8, 4,
// 2, 1 — and the bound parks at 1 (the scalar fast path) for as long as
// the queue stays thin, including zero-size observations. It complements
// TestBatchSizerAIMD, which covers growth and the cap.
func TestBatchSizerShrinkStaircase(t *testing.T) {
	s := newBatchSizer(8)
	for i := 0; i < 20; i++ {
		s.observe(s.bound()) // saturate to the cap
	}
	if s.bound() != 8 {
		t.Fatalf("bound after saturation %d, want 8", s.bound())
	}
	// The backlog drains: each observation at or below half the current
	// bound halves it — the staircase must hit every power of two on the
	// way down and stop at 1.
	for _, want := range []int{4, 2, 1, 1, 1} {
		s.observe(0)
		if s.bound() != want {
			t.Fatalf("shrink staircase: bound %d, want %d", s.bound(), want)
		}
	}
	// At bound 1 a drain of one request is a full drain — backlog
	// evidence — so the sizer probes upward (that is how it re-earns the
	// cap); an empty drain immediately halves it back to 1.
	s.observe(1)
	if s.bound() != 2 {
		t.Fatalf("full scalar drain at bound 1: bound %d, want 2", s.bound())
	}
	s.observe(0)
	if s.bound() != 1 {
		t.Fatalf("empty drain after probe: bound %d, want 1", s.bound())
	}
	// A drain just above half the bound is neither backlog nor thin: the
	// bound must hold steady, not oscillate.
	for i := 0; i < 20; i++ {
		s.observe(s.bound()) // grow back toward the cap
	}
	s.observe(5) // 5 > 8/2, 5 < 8
	if s.bound() != 8 {
		t.Fatalf("mid-band drain moved the bound to %d, want 8", s.bound())
	}
	// And after shrinking, renewed backlog must re-earn the cap one step
	// at a time (additive increase), not jump.
	s.observe(2) // halve: 4
	s.observe(4) // grow: 5
	if s.bound() != 5 {
		t.Fatalf("regrowth after shrink: bound %d, want 5", s.bound())
	}
}
