package sim

// The hot-path allocation harness: BenchmarkHotPathAllocs measures heap
// allocations per committed transaction through the full runtime
// (request→grant→execute→commit on live dispatch and user goroutines), and
// TestHotPathAllocCeilings enforces hard ceilings on the same
// measurements in a normal `go test` run, so an allocation regression
// breaks the build instead of only drifting a benchmark number.
//
// The op is one committed transaction of three steps. The workload cycles
// b.N jobs over a fixed pool of variables, so after the first cycle every
// lock entry, map bucket and scratch buffer is warm and the steady state
// is measured; setup allocations (goroutines, channels, presized
// histograms, per-variable state) amortize to zero as b.N grows.
// Occasional collisions between concurrent users on a shared variable
// exercise the parked path without aborts (Detect policy, single-variable
// transactions cannot deadlock).

import (
	"testing"

	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// hotPathVars is the variable-pool size the jobs cycle over: large enough
// that 4 users rarely collide, small enough that state warms quickly.
const hotPathVars = 256

// hotPathBench returns a benchmark running b.N three-step transactions
// through the given scheduler and backend; allocations are counted from
// after setup (ResetTimer) to completion.
func hotPathBench(mk func() online.Scheduler, mkBackend func() storage.Backend) func(b *testing.B) {
	return func(b *testing.B) {
		template := workload.Disjoint(hotPathVars, 3)
		inst := Instantiate(template, b.N)
		var be storage.Backend
		if mkBackend != nil {
			be = mkBackend()
		}
		sched := mk()
		b.ReportAllocs()
		b.ResetTimer()
		m, err := Run(Config{System: inst, Sched: sched, Backend: be, Users: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if m.Committed != b.N {
			b.Fatalf("committed %d of %d", m.Committed, b.N)
		}
	}
}

func noopBackend() storage.Backend { return storage.NewNoop() }

func kvRecycleBackend() storage.Backend {
	return storage.NewKV(storage.Config{Shards: 4, ValueSize: 256, Recycle: true})
}

// snapshotBench measures the read-only snapshot fast path: every
// transaction is all-Read, so the runtime serves each one from a pinned
// multiversion-KV snapshot — no grants, no rail traffic, no shard
// mutexes — and the warmed-up path must not allocate at all.
func snapshotBench(b *testing.B) {
	template := workload.ReadMostly(workload.ReadMostlyConfig{
		Jobs: hotPathVars, Steps: 3, ReadFrac: 1, Vars: hotPathVars, HotVars: 1,
	}, 1)
	inst := Instantiate(template, b.N)
	be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 256})
	sched := online.NewConcurrentMV(4)
	b.ReportAllocs()
	b.ResetTimer()
	m, err := Run(Config{System: inst, Sched: sched, Backend: be, Users: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if m.Committed != b.N {
		b.Fatalf("committed %d of %d", m.Committed, b.N)
	}
	if m.SnapshotReads != int64(3*b.N) {
		b.Fatalf("snapshot reads %d, want %d", m.SnapshotReads, 3*b.N)
	}
}

// hotPathCases are the measured configurations and their enforced
// ceilings (allocs per committed three-step transaction):
//
//   - mutexed-noop: the acceptance target — the sharded dispatch runtime
//     driving Mutexed strict 2PL with the no-op backend performs ZERO
//     heap allocations per transaction in steady state.
//   - central-noop: the centralized single-goroutine runtime on plain
//     strict 2PL is equally allocation-free.
//   - sharded-2pl-noop: natively sharded strict 2PL also measures 0 in
//     steady state; the ceiling of 4 leaves headroom for collision-path
//     bookkeeping (wound lists, breaker scans) on slower boxes.
//   - mutexed-kv: real storage with payload recycling measures 3 — one
//     immutable Record struct per write step; the payload bytes
//     themselves are pooled. Ceiling 8 leaves restart headroom.
//   - mv-snapshot-kv: read-only transactions through the multiversion
//     snapshot path perform ZERO allocations — acquire, chain-walk reads
//     and release touch no lock and build nothing on the heap.
//   - csgt-noop: the natively concurrent SGT measures 0 in steady state —
//     zero-conflict grants take the lock-free path, marks and source
//     scratch are amortized per-entry slices, commits retire edgeless
//     singletons. Ceiling 4 leaves headroom for the striped insert's
//     collision-path slices on slower boxes.
//   - cocc-noop: the natively concurrent OCC measures 2 — the
//     copy-on-write writer-mark publish (slice + published header) on each
//     transaction's first write of a variable; footprints live in a
//     Begin-time slab. Ceiling 4 leaves restart headroom.
var hotPathCases = []struct {
	name    string
	ceiling int64
	bench   func(b *testing.B)
}{
	{"mutexed-noop", 0, hotPathBench(func() online.Scheduler {
		return online.NewMutexed(online.NewStrict2PL(lockmgr.Detect))
	}, noopBackend)},
	{"central-noop", 0, hotPathBench(func() online.Scheduler {
		return online.NewStrict2PL(lockmgr.Detect)
	}, noopBackend)},
	{"sharded-2pl-noop", 4, hotPathBench(func() online.Scheduler {
		return online.NewConcurrentStrict2PL(lockmgr.Detect, 4)
	}, noopBackend)},
	{"mutexed-kv", 8, hotPathBench(func() online.Scheduler {
		return online.NewMutexed(online.NewStrict2PL(lockmgr.Detect))
	}, kvRecycleBackend)},
	{"mv-snapshot-kv", 0, snapshotBench},
	{"csgt-noop", 4, hotPathBench(func() online.Scheduler {
		return online.NewConcurrentSGTAborting(4)
	}, noopBackend)},
	{"cocc-noop", 4, hotPathBench(func() online.Scheduler {
		return online.NewConcurrentOCC(4)
	}, noopBackend)},
}

// BenchmarkHotPathAllocs reports ns/op and allocs/op for every hot-path
// configuration; run with -benchmem to see the allocation columns.
func BenchmarkHotPathAllocs(b *testing.B) {
	for _, c := range hotPathCases {
		b.Run(c.name, c.bench)
	}
}

// TestHotPathAllocCeilings is the allocation regression gate: it runs each
// hot-path benchmark through testing.Benchmark and fails when
// AllocsPerOp exceeds the configuration's ceiling. It runs in every plain
// `go test` (CI has a dedicated no-race step); under the race detector the
// instrumentation itself allocates, so the ceilings are skipped there.
func TestHotPathAllocCeilings(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; ceilings run in the no-race CI step")
	}
	if testing.Short() {
		t.Skip("short mode: skipping benchmark-backed ceilings")
	}
	for _, c := range hotPathCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(c.bench)
			if got := r.AllocsPerOp(); got > c.ceiling {
				t.Errorf("%s: %d allocs per committed tx, ceiling %d (bytes/op %d, N %d)",
					c.name, got, c.ceiling, r.AllocedBytesPerOp(), r.N)
			} else {
				t.Logf("%s: %d allocs/tx (ceiling %d), %d B/tx, N=%d",
					c.name, got, c.ceiling, r.AllocedBytesPerOp(), r.N)
			}
		})
	}
}
