package sim

// Coverage for the natively concurrent SGT and OCC schedulers driven by
// the real dispatch runtime: disjoint-workload state==replay self-checks
// of the lock-free paths, and contended CSR self-checks of the striped
// graph and the epoch-based validation. CI runs this file under
// -race -count=5 in the concurrency stress job.

import (
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// TestConcurrentSGTDisjointStateMatchesReplay: native SGT over the sharded
// dispatch loops with real storage on the conflict-free multi-shard
// workload. Every grant takes the zero-conflict lock-free path, every
// commit retires an edgeless singleton; the committed backend state must
// equal the committed replay.
func TestConcurrentSGTDisjointStateMatchesReplay(t *testing.T) {
	const jobs = 24
	for _, shards := range []int{1, 4} {
		inst := Instantiate(workload.Disjoint(jobs, 3), jobs)
		be := storage.NewKV(storage.Config{Shards: shards, ValueSize: 128})
		m, err := Run(Config{System: inst, Sched: online.NewConcurrentSGTAborting(shards),
			Backend: be, Users: 8, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("shards=%d: committed %d of %d", shards, m.Committed, jobs)
		}
		replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !be.State().Equal(replay) {
			t.Fatalf("shards=%d: backend state diverged from committed replay", shards)
		}
	}
}

// TestConcurrentSGTContendedSerializable: native SGT under real conflicts
// (hotspot workload, many users), both cycle modes. Everything must
// commit — delay mode leans on the parked-request kicks and the deadlock
// breaker's Victim call, abort mode on restarts — and the committed
// schedule must be conflict-serializable: the concurrent edge set equals
// the sequential SGT's, so acyclicity of the striped graph is exactly CSR
// of the committed log, exercised concurrently.
func TestConcurrentSGTContendedSerializable(t *testing.T) {
	const jobs = 24
	template := workload.Random(workload.RandomConfig{
		NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 6, Hotspot: 1}, 7)
	for _, abort := range []bool{false, true} {
		var sched online.Scheduler = online.NewConcurrentSGT(4)
		if abort {
			sched = online.NewConcurrentSGTAborting(4)
		}
		inst := Instantiate(template, jobs)
		m, err := Run(Config{System: inst, Sched: sched, Users: 8, Seed: 11, MaxRestarts: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("abort=%v: committed %d of %d", abort, m.Committed, jobs)
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Fatalf("abort=%v: non-serializable committed schedule", abort)
		}
	}
}

// TestConcurrentOCCDisjointStateMatchesReplay: native OCC over the sharded
// dispatch loops with real storage on the conflict-free multi-shard
// workload — the all-lock-free regime the epoch validation is built for.
func TestConcurrentOCCDisjointStateMatchesReplay(t *testing.T) {
	const jobs = 24
	for _, shards := range []int{1, 4} {
		inst := Instantiate(workload.Disjoint(jobs, 3), jobs)
		be := storage.NewKV(storage.Config{Shards: shards, ValueSize: 128})
		m, err := Run(Config{System: inst, Sched: online.NewConcurrentOCC(shards),
			Backend: be, Users: 8, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("shards=%d: committed %d of %d", shards, m.Committed, jobs)
		}
		replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !be.State().Equal(replay) {
			t.Fatalf("shards=%d: backend state diverged from committed replay", shards)
		}
	}
}

// TestConcurrentOCCContendedSerializable: native OCC under real conflicts
// (hotspot workload, many users). Validation aborts restart until
// everything commits, and the committed schedule must be
// conflict-serializable — committed transactions are serialized by their
// validation epochs, exercised with genuinely concurrent validators.
func TestConcurrentOCCContendedSerializable(t *testing.T) {
	const jobs = 24
	template := workload.Random(workload.RandomConfig{
		NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 6, Hotspot: 1}, 7)
	inst := Instantiate(template, jobs)
	m, err := Run(Config{System: inst, Sched: online.NewConcurrentOCC(4),
		Users: 8, Seed: 11, MaxRestarts: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != jobs {
		t.Fatalf("committed %d of %d", m.Committed, jobs)
	}
	csr, _, err := conflict.Serializable(inst, m.Output)
	if err != nil {
		t.Fatal(err)
	}
	if !csr {
		t.Fatal("non-serializable committed schedule under concurrent backward validation")
	}
}
