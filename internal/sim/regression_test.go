package sim

// Regression tests for the commit-path correctness fixes:
//
//  1. Metrics.Output must contain only committed transactions — a restart
//     budget exhausted on an aborted, rolled-back final attempt used to
//     leak its undone steps into the "committed" schedule.
//  2. A failed Backend.ApplyStep must abort the transaction through the
//     normal path: no later step may run and, above all, no commit (backend
//     or scheduler) may follow a partial application.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/storage"
)

// TestOutputOnlyCommittedOnBudgetExhaustion runs an abort-heavy hot-shard
// workload under no-wait with a single-restart budget, so some transactions
// exhaust their budget with a rolled-back final attempt. Output must then
// contain exactly the committed transactions — whole and final-attempt only
// — and replaying it must reproduce the committed backend state.
func TestOutputOnlyCommittedOnBudgetExhaustion(t *testing.T) {
	cfgs := []struct {
		name  string
		mk    func() online.Scheduler
		batch int
	}{
		{"central/2pl-nowait", func() online.Scheduler { return online.NewStrict2PL(lockmgr.NoWait) }, 0},
		{"2pl-sharded4/nowait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.NoWait, 4) }, 0},
		{"2pl-sharded4/nowait/batch8", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.NoWait, 4) }, 8},
	}
	for _, cfg := range cfgs {
		t.Run(cfg.name, func(t *testing.T) {
			exhausted := false
			for seed := int64(1); seed <= 6; seed++ {
				inst := Instantiate(hotShardSystem(), 12)
				be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 32})
				m, err := Run(Config{
					System: inst, Sched: cfg.mk(), Backend: be,
					Users: 6, Seed: seed, MaxRestarts: 1, Batch: cfg.batch,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if m.Committed < inst.NumTxs() {
					exhausted = true
				}
				// Output must consist of whole transactions only, and as
				// many as committed.
				steps := map[int]int{}
				for _, id := range m.Output {
					steps[id.Tx]++
				}
				if len(steps) != m.Committed {
					t.Fatalf("seed %d: output holds %d transactions, committed %d", seed, len(steps), m.Committed)
				}
				for tx, n := range steps {
					if n != len(inst.Txs[tx].Steps) {
						t.Fatalf("seed %d: output holds %d of %d steps of tx %d", seed, n, len(inst.Txs[tx].Steps), tx)
					}
				}
				if !m.Output.LegalPrefix(inst.Format()) {
					t.Fatalf("seed %d: output not a legal prefix", seed)
				}
				// The committed schedule must replay to the committed state:
				// the old bug left rolled-back steps in Output, which
				// diverges here.
				st, err := core.ExecPrefix(inst, m.Output, inst.InitialStates()[0])
				if err != nil {
					t.Fatalf("seed %d: replay: %v", seed, err)
				}
				if got := be.State(); !got.Equal(st.Global) {
					t.Fatalf("seed %d: backend state diverged from committed replay:\n  backend %v\n  replay  %v", seed, got, st.Global)
				}
			}
			if !exhausted {
				t.Fatal("no run exhausted its restart budget; regression not exercised")
			}
		})
	}
}

// failingBackend wraps a real backend and fails the apply of one designated
// step (transaction failTx, step position failIdx within the attempt),
// recording every Commit and Rollback so the test can prove no commit
// followed the failure.
type failingBackend struct {
	storage.Backend
	failTx  int
	failIdx int

	mu        sync.Mutex
	pos       map[int]int // successful applies in the current attempt
	commits   map[int]int
	rollbacks map[int]int
	failed    bool
}

func newFailingBackend(inner storage.Backend, failTx, failIdx int) *failingBackend {
	return &failingBackend{
		Backend: inner, failTx: failTx, failIdx: failIdx,
		pos: map[int]int{}, commits: map[int]int{}, rollbacks: map[int]int{},
	}
}

var errInjected = errors.New("injected storage failure")

func (b *failingBackend) ApplyStep(tx int, step core.Step) error {
	b.mu.Lock()
	if tx == b.failTx && b.pos[tx] == b.failIdx && !b.failed {
		b.failed = true
		b.mu.Unlock()
		return errInjected
	}
	b.pos[tx]++
	b.mu.Unlock()
	return b.Backend.ApplyStep(tx, step)
}

func (b *failingBackend) Commit(tx int) {
	b.mu.Lock()
	b.commits[tx]++
	if b.failed && tx == b.failTx {
		b.mu.Unlock()
		panic("commit after failed apply")
	}
	delete(b.pos, tx)
	b.mu.Unlock()
	b.Backend.Commit(tx)
}

func (b *failingBackend) Rollback(tx int) {
	b.mu.Lock()
	b.rollbacks[tx]++
	delete(b.pos, tx)
	b.mu.Unlock()
	b.Backend.Rollback(tx)
}

// TestNoCommitAfterFailedApply injects an apply failure — once mid-
// transaction and once on the final step, whose grant has already marked
// the transaction committed — and requires, for the central and the sharded
// runtime (batched and not): the run reports the error, the failed
// transaction is rolled back and never committed, and every other
// transaction still commits exactly once.
func TestNoCommitAfterFailedApply(t *testing.T) {
	stepCount := len(hotShardSystem().Txs[0].Steps)
	cfgs := []struct {
		name  string
		mk    func() online.Scheduler
		batch int
	}{
		{"central/2pl-woundwait", func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }, 0},
		{"2pl-sharded4/woundwait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) }, 0},
		{"2pl-sharded4/woundwait/batch8", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) }, 8},
	}
	for _, cfg := range cfgs {
		for _, failIdx := range []int{1, stepCount - 1} {
			t.Run(fmt.Sprintf("%s/failstep%d", cfg.name, failIdx), func(t *testing.T) {
				const jobs = 8
				inst := Instantiate(hotShardSystem(), jobs)
				be := newFailingBackend(storage.NewKV(storage.Config{Shards: 4, ValueSize: 32}), 0, failIdx)
				_, err := Run(Config{
					System: inst, Sched: cfg.mk(), Backend: be,
					Users: 4, Seed: 5, Batch: cfg.batch,
				})
				if err == nil {
					t.Fatal("run swallowed the injected apply failure")
				}
				if !errors.Is(err, errInjected) {
					t.Fatalf("unexpected error: %v", err)
				}
				be.mu.Lock()
				defer be.mu.Unlock()
				if be.commits[0] != 0 {
					t.Errorf("failed transaction committed %d times", be.commits[0])
				}
				if be.rollbacks[0] == 0 {
					t.Error("failed transaction never rolled back")
				}
				for tx := 1; tx < jobs; tx++ {
					if be.commits[tx] != 1 {
						t.Errorf("tx %d committed %d times, want 1", tx, be.commits[tx])
					}
				}
			})
		}
	}
}
