// Sharded dispatch: the concurrent runtime for online.ConcurrentScheduler.
// Instead of funneling every step request through one scheduler goroutine,
// each shard runs its own dispatch loop with its own request channel and
// parked queue; a user's request goes to the loop of the shard owning the
// step's variable, so users contend only on the shards their steps touch.
// The Section 6 latency decomposition is unchanged: queueing + decision is
// scheduling time, time parked is waiting time, step cost (real backend
// work and/or the ExecTime knob) is execution time.
//
// The dispatch loops only decide; they never execute. A granted step's real
// work — the backend apply, the ExecTime sleep, and for the final step the
// backend commit plus the scheduler commit — runs on the requesting user's
// goroutine after the reply, so a slow step never serializes unrelated
// grants on its shard. Aborts roll the backend back *before* the scheduler
// releases the victim's locks (the victim is always parked or between its
// own requests when aborted, so its rollback races with nothing of its
// own).
//
// Cross-shard blocking is resolved cooperatively: commits, aborts and
// wounds kick every shard's loop to retry its parked requests, and a
// deadlock breaker (triggered when every in-flight transaction is parked,
// with a ticker as backstop) picks a victim through the scheduler's global
// waits-for view. The breaker holds off while any commit is in flight on a
// user goroutine — that commit is guaranteed to arrive and may unblock the
// waiters for free.
//
// Batching (Config.Batch > 1) amortizes the per-request overhead on hot
// shards in two places. Intake coalescing: a dispatch loop drains up to
// its current bound per select iteration — Config.Batch is a cap; the
// bound itself adapts by AIMD on the observed backlog (batchSizer),
// growing additively under load and halving toward 1 as the queue drains
// — and decides the batch in one scheduler critical section
// (online.TryBatch — a single shard-mutex acquisition for the natively
// batched schedulers), with the parked-retry scan reusing the same batch
// path chunk by chunk. Group commit: finishing transactions enqueue into
// a storage.GroupCommitter lane in both modes; the lane discards a whole
// group's undo logs and releases their scheduler locks in one wakeup,
// with a single kick of the dispatch loops per group (async lock release
// — commit processing leaves the user goroutine entirely). With Batch <=
// 1 the decision path is exactly the original one-request-per-iteration
// runtime and commit groups are mostly singletons driven inline by their
// own committer.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"optcc/internal/core"
	"optcc/internal/online"
	"optcc/internal/report"
	"optcc/internal/storage"
)

// shardState is one dispatch loop's mailbox and parked queue, plus the
// loop's reusable batch scratch. The scratch fields (verdicts, decided,
// ids, idSlot, reqs) are only ever touched by the shard's own dispatch
// goroutine — decideBatch and retryParked run there — so batched decisions
// allocate nothing in steady state.
type shardState struct {
	reqCh  chan request
	kick   chan struct{}
	mu     sync.Mutex
	parked []parked

	verdicts []verdict
	decided  []bool
	ids      []core.StepID
	idSlot   []int
	reqs     []request
}

func runSharded(cfg Config, cs online.ConcurrentScheduler, sys *core.System, users, maxRestarts, batch int) (*Metrics, error) {
	m := &Metrics{}
	presizeMetrics(m, sys, cfg.Backend != nil)
	var am report.AllocMeter
	am.Start()
	n := sys.NumTxs()
	cs.Begin(sys)

	var (
		txMu      sync.Mutex // guards attempts, committed, inFlight, woundedTx
		attempts  = make([]int, n)
		committed = make([]bool, n)
		inFlight  = map[int]bool{}
		woundedTx = map[int]bool{}

		outMu sync.Mutex
		// output is presized to the conflict-free request count; restarts
		// overflow into amortized append growth (cold path).
		output = make([]online.Event, 0, sys.StepCount())

		metMu sync.Mutex // guards the histograms and counters in m
		errs  runErrors

		parkedCount atomic.Int64
		// committingCount is the number of transactions whose final step is
		// granted but whose commit has not run on its user goroutine yet.
		committingCount atomic.Int64
	)
	for i := range attempts {
		attempts[i] = 1
	}

	// Read-only fast path: when the scheduler's semantics allow it
	// (online.SnapshotSource) and the backend keeps version chains
	// (storage.SnapshotBackend) with a pin slot per user, transactions
	// whose every step is a Read are served from a pinned consistent
	// snapshot on their user goroutine — no request, no dispatch loop, no
	// scheduler call, no lock of any kind. Their commits are tracked in
	// snapCommitted (atomically, off the txMu domain) and they contribute
	// no granted-step events: the projected Output is the committed
	// write-set schedule, which is exactly what the replay self-checks
	// compare against.
	var sb storage.SnapshotBackend
	if b, ok := cfg.Backend.(storage.SnapshotBackend); ok {
		sb = b
	}
	roFast := false
	if src, ok := cfg.Sched.(online.SnapshotSource); ok && src.ReadOnlySnapshots() && sb != nil && users <= sb.SnapshotSlots() {
		roFast = true
	}
	var roTx []bool
	snapCommitted := make([]atomic.Bool, n)
	if roFast {
		roTx = make([]bool, n)
		for tx := range roTx {
			ro := len(sys.Txs[tx].Steps) > 0
			for _, st := range sys.Txs[tx].Steps {
				if st.Kind != core.Read {
					ro = false
					break
				}
			}
			roTx[tx] = ro
		}
	}

	shards := make([]*shardState, cs.NumShards())
	for i := range shards {
		shards[i] = &shardState{reqCh: make(chan request), kick: make(chan struct{}, 1)}
	}
	done := make(chan struct{})
	breakCh := make(chan struct{}, 1)

	kickAll := func() {
		for _, ss := range shards {
			select {
			case ss.kick <- struct{}{}:
			default:
			}
		}
	}
	triggerBreak := func() {
		select {
		case breakCh <- struct{}{}:
		default:
		}
	}

	collectWounds := func() {
		ws := cs.Wounded()
		if len(ws) == 0 {
			return
		}
		fresh := false
		txMu.Lock()
		for _, w := range ws {
			if w >= 0 && w < n && !committed[w] && !woundedTx[w] {
				woundedTx[w] = true
				fresh = true
			}
		}
		txMu.Unlock()
		// Kick only on NEW wounds. A parked request under wound-wait
		// re-reports its wounded blockers on every retry; kicking for those
		// would make kicks and retries feed each other — a hot loop across
		// every dispatch goroutine that starves the very user goroutines
		// that must act on the wounds.
		if fresh {
			kickAll()
		}
	}

	// abortTx rolls the backend back and only then notifies the scheduler,
	// so the victim's locks are released after its dying writes are gone.
	// Every caller aborts a transaction that is either issuing this very
	// request or parked, so the rollback cannot race with the victim's own
	// step execution.
	abortTx := func(tx int) {
		if cfg.Backend != nil {
			cfg.Backend.Rollback(tx)
		}
		cs.Abort(tx)
		txMu.Lock()
		attempts[tx]++
		delete(inFlight, tx)
		txMu.Unlock()
		metMu.Lock()
		m.Aborts++
		metMu.Unlock()
	}

	// decideBatch decides a chunk of requests (each from a distinct
	// transaction, all on one shard) in one scheduler critical section.
	// Wounded requesters abort before the batch is offered; the rest go
	// through online.TryBatch — a single shard-mutex acquisition for the
	// natively batched schedulers — and the per-request bookkeeping mirrors
	// the one-request path exactly: grants of a final step only mark the
	// transaction committed (the commit runs later, off the dispatch
	// critical path), wounds are collected once after the batch and before
	// any reply, and aborts trigger one kick for the whole batch. Verdicts
	// are delivered to each decided request's reply channel; the returned
	// slice marks which requests were decided (the rest park).
	// decideOne is the scalar fast path for single-request chunks — the
	// whole Batch <= 1 runtime runs through it. It mirrors decideBatch's
	// bookkeeping exactly but allocates nothing (cs.Try instead of the
	// batch contract, no per-call slices), keeping the default unbatched
	// dispatch as cheap as it was before batching existed. It replies to
	// the request when decided and reports whether it was.
	decideOne := func(r request, wasParked bool) bool {
		txMu.Lock()
		if woundedTx[r.tx] {
			delete(woundedTx, r.tx)
			txMu.Unlock()
			abortTx(r.tx)
			kickAll()
			r.reply <- verdict{aborted: true, parked: wasParked, decided: time.Now()}
			return true
		}
		inFlight[r.tx] = true
		txMu.Unlock()
		d := cs.Try(core.StepID{Tx: r.tx, Idx: r.idx})
		collectWounds()
		now := time.Now()
		switch d {
		case online.Grant:
			last := r.idx == len(sys.Txs[r.tx].Steps)-1
			txMu.Lock()
			att := attempts[r.tx]
			if last {
				committed[r.tx] = true
				delete(inFlight, r.tx)
			}
			txMu.Unlock()
			if last {
				committingCount.Add(1)
			}
			outMu.Lock()
			output = append(output, online.Event{Step: core.StepID{Tx: r.tx, Idx: r.idx}, Attempt: att})
			outMu.Unlock()
			r.reply <- verdict{parked: wasParked, decided: now, lastGranted: last}
			return true
		case online.AbortTx:
			abortTx(r.tx)
			kickAll()
			r.reply <- verdict{aborted: true, parked: wasParked, decided: now}
			return true
		default:
			return false
		}
	}

	decideBatch := func(ss *shardState, reqs []request, wasParked bool) []bool {
		// All scratch comes from the shard state: decideBatch only ever
		// runs on ss's dispatch goroutine, and the returned decided slice
		// is consumed before the loop's next batch.
		ss.verdicts = ss.verdicts[:0]
		ss.decided = ss.decided[:0]
		for range reqs {
			ss.verdicts = append(ss.verdicts, verdict{})
			ss.decided = append(ss.decided, false)
		}
		verdicts, decided := ss.verdicts, ss.decided
		ids := ss.ids[:0]
		idSlot := ss.idSlot[:0]
		anyAbort := false
		for i, r := range reqs {
			txMu.Lock()
			if woundedTx[r.tx] {
				delete(woundedTx, r.tx)
				txMu.Unlock()
				abortTx(r.tx)
				anyAbort = true
				verdicts[i] = verdict{aborted: true, decided: time.Now()}
				decided[i] = true
				continue
			}
			inFlight[r.tx] = true
			txMu.Unlock()
			ids = append(ids, core.StepID{Tx: r.tx, Idx: r.idx})
			idSlot = append(idSlot, i)
		}
		ss.ids, ss.idSlot = ids, idSlot
		var ds []online.Decision
		if len(ids) > 0 {
			ds = online.TryBatch(cs, ids)
		}
		collectWounds()
		now := time.Now()
		for k, d := range ds {
			i := idSlot[k]
			r := reqs[i]
			switch d {
			case online.Grant:
				last := r.idx == len(sys.Txs[r.tx].Steps)-1
				txMu.Lock()
				att := attempts[r.tx]
				if last {
					committed[r.tx] = true
					delete(inFlight, r.tx)
				}
				txMu.Unlock()
				if last {
					committingCount.Add(1)
				}
				outMu.Lock()
				output = append(output, online.Event{Step: core.StepID{Tx: r.tx, Idx: r.idx}, Attempt: att})
				outMu.Unlock()
				verdicts[i] = verdict{decided: now, lastGranted: last}
				decided[i] = true
			case online.AbortTx:
				abortTx(r.tx)
				anyAbort = true
				verdicts[i] = verdict{aborted: true, decided: now}
				decided[i] = true
			}
		}
		if anyAbort {
			kickAll()
		}
		// Reply only after the whole batch's bookkeeping (wounds included)
		// is done: a granted user's next request must not race ahead of the
		// wounds its own grant produced.
		for i := range reqs {
			if decided[i] {
				v := verdicts[i]
				v.parked = wasParked
				reqs[i].reply <- v
			}
		}
		return decided
	}

	// retryParked re-offers a shard's parked requests, chunked through the
	// batch path (one scheduler critical section per chunk, chunk size =
	// the loop's current adaptive bound), until a full scan makes no
	// progress.
	retryParked := func(ss *shardState, bound int) {
		for {
			progressed := false
			ss.mu.Lock()
			n := len(ss.parked)
			kept := ss.parked[:0]
			for start := 0; start < n; start += bound {
				end := start + bound
				if end > n {
					end = n
				}
				if end-start == 1 {
					p := ss.parked[start]
					if decideOne(p.req, true) {
						parkedCount.Add(-1)
						progressed = true
					} else {
						kept = append(kept, p)
					}
					continue
				}
				reqs := ss.reqs[:0]
				for _, p := range ss.parked[start:end] {
					reqs = append(reqs, p.req)
				}
				ss.reqs = reqs
				dec := decideBatch(ss, reqs, true)
				for i, d := range dec {
					if d {
						parkedCount.Add(-1)
						progressed = true
					} else {
						kept = append(kept, ss.parked[start+i])
					}
				}
			}
			ss.parked = kept
			ss.mu.Unlock()
			if !progressed {
				return
			}
		}
	}

	// tryBreak aborts a victim when every in-flight transaction is parked.
	// It must stay cheap when there is no deadlock: an atomic precheck
	// gates it, and shard mutexes are only ever taken one at a time (a
	// breaker that locks all shards wholesale convoys with the dispatch
	// loops on small machines). The shard-by-shard snapshot can go stale if
	// a request unparks mid-scan; the worst case is one spurious victim
	// abort, which the restart machinery absorbs.
	tryBreak := func() {
		if committingCount.Load() > 0 {
			return // a pending commit will kick and may unblock everything
		}
		txMu.Lock()
		flying := len(inFlight)
		txMu.Unlock()
		if flying == 0 || int(parkedCount.Load()) < flying {
			return
		}
		stuckSet := map[int]bool{}
		var stuck []int
		for _, ss := range shards {
			ss.mu.Lock()
			for _, p := range ss.parked {
				if !stuckSet[p.req.tx] {
					stuckSet[p.req.tx] = true
					stuck = append(stuck, p.req.tx)
				}
			}
			ss.mu.Unlock()
		}
		txMu.Lock()
		deadlocked := len(stuck) > 0 && len(inFlight) > 0
		for tx := range inFlight {
			if !stuckSet[tx] {
				deadlocked = false
				break
			}
		}
		txMu.Unlock()
		if !deadlocked {
			return
		}
		victim, ok := cs.Victim(stuck)
		if !ok || !containsInt(stuck, victim) {
			victim = stuck[0]
		}
		var reply chan verdict
		for _, ss := range shards {
			ss.mu.Lock()
			for i, p := range ss.parked {
				if p.req.tx == victim {
					reply = p.req.reply
					ss.parked = append(ss.parked[:i], ss.parked[i+1:]...)
					break
				}
			}
			ss.mu.Unlock()
			if reply != nil {
				break
			}
		}
		if reply == nil {
			return // the victim unparked meanwhile; no deadlock after all
		}
		parkedCount.Add(-1)
		metMu.Lock()
		m.DeadlockBreaks++
		metMu.Unlock()
		abortTx(victim)
		reply <- verdict{aborted: true, parked: true, decided: time.Now()}
		kickAll()
	}

	// loopWG joins the dispatch loops and the deadlock breaker on shutdown:
	// Run must not return while machinery goroutines from this run are
	// still winding down, or they bleed CPU into whatever the caller does
	// next (back-to-back runs in one process, e.g. an experiment sweep).
	var loopWG sync.WaitGroup

	// Deadlock breaker: eager triggers from the shard loops plus a ticker
	// backstop for triggers lost to races. The tick also re-kicks shards
	// with parked requests — a watchdog against wake-ups starved by the Go
	// scheduler on oversubscribed machines.
	loopWG.Add(1)
	go func() {
		defer loopWG.Done()
		ticker := time.NewTicker(250 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-breakCh:
				tryBreak()
			case <-ticker.C:
				if parkedCount.Load() > 0 {
					kickAll()
					tryBreak()
				}
			}
		}
	}()

	// Per-shard dispatch loops. Intake is coalesced: everything queued on
	// the request channel (up to the loop's adaptive bound, AIMD-adjusted
	// between 1 and Config.Batch by the observed backlog) is drained and
	// decided in one critical section, instead of one select iteration —
	// one channel hop, one retry scan, one deadlock precheck — per request.
	for i := range shards {
		loopWG.Add(1)
		go func(ss *shardState) {
			defer loopWG.Done()
			sizer := newBatchSizer(batch)
			intake := make([]request, 0, batch)
			for {
				select {
				case r := <-ss.reqCh:
					bound := sizer.bound()
					intake = append(intake[:0], r)
				drain:
					for len(intake) < bound {
						select {
						case r2 := <-ss.reqCh:
							intake = append(intake, r2)
						default:
							break drain
						}
					}
					sizer.observe(len(intake))
					parkedNew := 0
					if len(intake) == 1 {
						if !decideOne(intake[0], false) {
							ss.mu.Lock()
							ss.parked = append(ss.parked, parked{req: intake[0], since: time.Now()})
							ss.mu.Unlock()
							parkedNew++
						}
					} else {
						dec := decideBatch(ss, intake, false)
						now := time.Now()
						ss.mu.Lock()
						for i, d := range dec {
							if !d {
								ss.parked = append(ss.parked, parked{req: intake[i], since: now})
								parkedNew++
							}
						}
						ss.mu.Unlock()
					}
					if parkedNew > 0 {
						parkedCount.Add(int64(parkedNew))
						txMu.Lock()
						flying := len(inFlight)
						txMu.Unlock()
						if int(parkedCount.Load()) >= flying {
							triggerBreak()
						}
					}
					retryParked(ss, sizer.bound())
				case <-ss.kick:
					retryParked(ss, sizer.bound())
				case <-done:
					return
				}
			}
		}(shards[i])
	}

	// Group commit: finishing users enqueue into a per-lane commit pipeline
	// instead of committing inline; the lane's driver (the first committer
	// to find it idle — a live user goroutine, so no wakeup handoff)
	// discards a whole group's undo logs while their locks are still held,
	// then releases the group's scheduler locks and kicks the dispatch
	// loops once. The breaker stays disabled until the group's release
	// completes (committingCount is decremented last), preserving the "a
	// pending commit always arrives" argument. Lanes partition by
	// transaction id, NOT by shard (a transaction's locks may span shards,
	// so a shard partition of commits does not exist); the shard count is
	// only borrowed as a concurrency heuristic for how many lanes to run.
	//
	// Both modes commit through the lanes: with Batch <= 1 a lane's groups
	// are usually singletons (an idle lane makes its enqueuer the driver,
	// which is exactly the old inline commit), but whenever commits pile up
	// on a lane the followers return immediately and the driver releases
	// their locks for them — asynchronous lock release no longer depends on
	// batching being enabled.
	gc := storage.NewGroupCommitter(cfg.Backend, cs.NumShards(), func(txs []int) {
		for _, tx := range txs {
			cs.Commit(tx)
		}
		kickAll()
		committingCount.Add(-int64(len(txs)))
	})
	// Durable backends sync once per drained group (storage.GroupSyncer —
	// the fsync coalescing group commit exists for). A failed sync fails
	// the whole group, leader and followers alike: record it as the run
	// error; the release callback above still runs so locks free and the
	// run drains instead of wedging.
	gc.OnFail(func(txs []int, err error) {
		errs.set(fmt.Errorf("sim: durable group commit of %d txs: %w", len(txs), err))
	})

	// User goroutines: one terminal per user, jobs assigned round-robin;
	// each request goes to the dispatch loop of the shard owning its
	// variable, and each granted step executes here, on the user goroutine.
	var wg sync.WaitGroup
	jobCh := make(chan int)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(user)*7919))
			// reply is this user's reusable verdict channel: every request
			// gets exactly one reply and the user reads it before its next
			// request (the deadlock breaker's victim reply is that one
			// reply too), so one buffered channel per user replaces the
			// per-step allocation.
			reply := make(chan verdict, 1)
			// latBuf batches the fast path's latency samples locally; they
			// are merged into the shared histogram once, when the user
			// finishes, so serving a snapshot transaction takes no mutex.
			var latBuf []float64
			for tx := range jobCh {
				if roFast && roTx[tx] {
					// Read-only fast path: one pinned snapshot, every step
					// a lock-free chain walk, nothing shared but atomics.
					txStart := time.Now()
					steps := sys.Txs[tx].Steps
					snap := sb.SnapshotAcquire(user)
					for i := range steps {
						if cfg.ThinkTime > 0 {
							time.Sleep(time.Duration(rng.Int63n(int64(cfg.ThinkTime) + 1)))
						}
						sb.SnapshotRead(user, steps[i].Var, snap)
						if cfg.ExecTime > 0 {
							time.Sleep(cfg.ExecTime)
						}
					}
					sb.SnapshotRelease(user)
					snapCommitted[tx].Store(true)
					latBuf = append(latBuf, float64(time.Since(txStart)))
					continue
				}
				txStart := time.Now()
				for {
					restart, failed := false, false
					steps := len(sys.Txs[tx].Steps)
					for idx := 0; idx < steps; idx++ {
						if cfg.ThinkTime > 0 {
							time.Sleep(time.Duration(rng.Int63n(int64(cfg.ThinkTime) + 1)))
						}
						sent := time.Now()
						shard := cs.ShardOf(sys.Txs[tx].Steps[idx].Var)
						select {
						case shards[shard].reqCh <- request{tx: tx, idx: idx, arrived: sent, reply: reply}:
						case <-done:
							return
						}
						v := <-reply
						metMu.Lock()
						if v.parked {
							m.WaitNs.Add(float64(v.decided.Sub(sent)))
						} else {
							m.SchedNs.Add(float64(v.decided.Sub(sent)))
						}
						metMu.Unlock()
						if v.aborted {
							restart = true
							break
						}
						if !applyStep(&cfg, tx, idx, m, &metMu, &errs) {
							// Failed execution: abort through the normal
							// path — undo the final step's committed mark if
							// any, roll the backend back, release locks —
							// and stop this transaction for good. Run
							// surfaces the recorded error.
							if v.lastGranted {
								txMu.Lock()
								committed[tx] = false
								txMu.Unlock()
							}
							abortTx(tx)
							kickAll()
							if v.lastGranted {
								committingCount.Add(-1)
							}
							failed = true
							break
						}
						if v.lastGranted {
							// Commit order matters: the backend discards the
							// undo log while locks are still held, then the
							// scheduler releases them, then the other shards
							// are kicked to retry; only then may the breaker
							// resume (committingCount). The sequence runs on
							// the commit pipeline's lane — inline for a lone
							// committer, on the lane driver for a group.
							gc.Enqueue(tx)
						}
					}
					if failed || !restart {
						break
					}
					txMu.Lock()
					budget := attempts[tx] > maxRestarts
					txMu.Unlock()
					if budget {
						break
					}
					time.Sleep(time.Duration(rng.Int63n(int64(50 * time.Microsecond))))
				}
				metMu.Lock()
				m.TxLatencyNs.Add(float64(time.Since(txStart)))
				metMu.Unlock()
			}
			if len(latBuf) > 0 {
				metMu.Lock()
				for _, x := range latBuf {
					m.TxLatencyNs.Add(x)
				}
				metMu.Unlock()
			}
		}(u)
	}

	start := time.Now()
	for tx := 0; tx < n; tx++ {
		jobCh <- tx
	}
	close(jobCh)
	wg.Wait()
	// Flush the commit pipeline before stopping the loops: pending groups
	// still need their undo logs discarded and locks released, and the
	// metrics below must see a quiesced backend.
	gc.Close()
	groups, txs := gc.Stats()
	m.CommitGroups, m.GroupCommits = int(groups), int(txs)
	close(done)
	loopWG.Wait()
	m.Elapsed = time.Since(start)
	if err := errs.get(); err != nil {
		return nil, err
	}
	if err := durableErr(cfg.Backend); err != nil {
		return nil, err
	}

	txMu.Lock()
	for tx := 0; tx < n; tx++ {
		if committed[tx] || snapCommitted[tx].Load() {
			m.Committed++
		}
	}
	outMu.Lock()
	m.Output = projectFinal(output, committed)
	outMu.Unlock()
	txMu.Unlock()
	if m.Elapsed > 0 {
		m.Throughput = float64(m.Committed) / m.Elapsed.Seconds()
	}
	fillAllocStats(m, &am)
	fillSnapshotStats(m, cfg.Backend)
	fillDurableStats(m, cfg.Backend)
	return m, nil
}
