// Sharded dispatch: the concurrent runtime for online.ConcurrentScheduler.
// Instead of funneling every step request through one scheduler goroutine,
// each shard runs its own dispatch loop with its own request channel and
// parked queue; a user's request goes to the loop of the shard owning the
// step's variable, so users contend only on the shards their steps touch.
// The Section 6 latency decomposition is unchanged: queueing + decision is
// scheduling time, time parked is waiting time, step cost (real backend
// work and/or the ExecTime knob) is execution time.
//
// The dispatch loops only decide; they never execute. A granted step's real
// work — the backend apply, the ExecTime sleep, and for the final step the
// backend commit plus the scheduler commit — runs on the requesting user's
// goroutine after the reply, so a slow step never serializes unrelated
// grants on its shard. Aborts roll the backend back *before* the scheduler
// releases the victim's locks (the victim is always parked or between its
// own requests when aborted, so its rollback races with nothing of its
// own).
//
// Cross-shard blocking is resolved cooperatively: commits, aborts and
// wounds kick every shard's loop to retry its parked requests, and a
// deadlock breaker (triggered when every in-flight transaction is parked,
// with a ticker as backstop) picks a victim through the scheduler's global
// waits-for view. The breaker holds off while any commit is in flight on a
// user goroutine — that commit is guaranteed to arrive and may unblock the
// waiters for free.
package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"optcc/internal/core"
	"optcc/internal/online"
)

// shardState is one dispatch loop's mailbox and parked queue.
type shardState struct {
	reqCh  chan request
	kick   chan struct{}
	mu     sync.Mutex
	parked []parked
}

func runSharded(cfg Config, cs online.ConcurrentScheduler, sys *core.System, users, maxRestarts int) (*Metrics, error) {
	m := &Metrics{}
	n := sys.NumTxs()
	cs.Begin(sys)

	var (
		txMu      sync.Mutex // guards attempts, committed, inFlight, woundedTx
		attempts  = make([]int, n)
		committed = make([]bool, n)
		inFlight  = map[int]bool{}
		woundedTx = map[int]bool{}

		outMu  sync.Mutex
		output []online.Event

		metMu sync.Mutex // guards the histograms and counters in m
		errs  runErrors

		parkedCount atomic.Int64
		// committingCount is the number of transactions whose final step is
		// granted but whose commit has not run on its user goroutine yet.
		committingCount atomic.Int64
	)
	for i := range attempts {
		attempts[i] = 1
	}

	shards := make([]*shardState, cs.NumShards())
	for i := range shards {
		shards[i] = &shardState{reqCh: make(chan request), kick: make(chan struct{}, 1)}
	}
	done := make(chan struct{})
	breakCh := make(chan struct{}, 1)

	kickAll := func() {
		for _, ss := range shards {
			select {
			case ss.kick <- struct{}{}:
			default:
			}
		}
	}
	triggerBreak := func() {
		select {
		case breakCh <- struct{}{}:
		default:
		}
	}

	collectWounds := func() {
		ws := cs.Wounded()
		if len(ws) == 0 {
			return
		}
		fresh := false
		txMu.Lock()
		for _, w := range ws {
			if w >= 0 && w < n && !committed[w] && !woundedTx[w] {
				woundedTx[w] = true
				fresh = true
			}
		}
		txMu.Unlock()
		// Kick only on NEW wounds. A parked request under wound-wait
		// re-reports its wounded blockers on every retry; kicking for those
		// would make kicks and retries feed each other — a hot loop across
		// every dispatch goroutine that starves the very user goroutines
		// that must act on the wounds.
		if fresh {
			kickAll()
		}
	}

	// abortTx rolls the backend back and only then notifies the scheduler,
	// so the victim's locks are released after its dying writes are gone.
	// Every caller aborts a transaction that is either issuing this very
	// request or parked, so the rollback cannot race with the victim's own
	// step execution.
	abortTx := func(tx int) {
		if cfg.Backend != nil {
			cfg.Backend.Rollback(tx)
		}
		cs.Abort(tx)
		txMu.Lock()
		attempts[tx]++
		delete(inFlight, tx)
		txMu.Unlock()
		metMu.Lock()
		m.Aborts++
		metMu.Unlock()
	}

	// tryRequest decides one request; returns (verdict, decided). Grants of
	// a final step only mark the transaction committed — the commit itself
	// (backend, scheduler, kicks) runs on the user goroutine, off the
	// dispatch critical path.
	tryRequest := func(r request) (verdict, bool) {
		txMu.Lock()
		if woundedTx[r.tx] {
			delete(woundedTx, r.tx)
			txMu.Unlock()
			abortTx(r.tx)
			kickAll()
			return verdict{aborted: true, decided: time.Now()}, true
		}
		inFlight[r.tx] = true
		txMu.Unlock()
		d := cs.Try(core.StepID{Tx: r.tx, Idx: r.idx})
		collectWounds()
		now := time.Now()
		switch d {
		case online.Grant:
			last := r.idx == len(sys.Txs[r.tx].Steps)-1
			txMu.Lock()
			att := attempts[r.tx]
			if last {
				committed[r.tx] = true
				delete(inFlight, r.tx)
			}
			txMu.Unlock()
			if last {
				committingCount.Add(1)
			}
			outMu.Lock()
			output = append(output, online.Event{Step: core.StepID{Tx: r.tx, Idx: r.idx}, Attempt: att})
			outMu.Unlock()
			return verdict{decided: now, lastGranted: last}, true
		case online.AbortTx:
			abortTx(r.tx)
			kickAll()
			return verdict{aborted: true, decided: now}, true
		default:
			return verdict{}, false
		}
	}

	// retryParked re-offers a shard's parked requests until none progresses.
	retryParked := func(ss *shardState) {
		for {
			progressed := false
			ss.mu.Lock()
			kept := ss.parked[:0]
			for _, p := range ss.parked {
				if v, decided := tryRequest(p.req); decided {
					v.parked = true
					v.decided = time.Now()
					p.req.reply <- v
					parkedCount.Add(-1)
					progressed = true
				} else {
					kept = append(kept, p)
				}
			}
			ss.parked = kept
			ss.mu.Unlock()
			if !progressed {
				return
			}
		}
	}

	// tryBreak aborts a victim when every in-flight transaction is parked.
	// It must stay cheap when there is no deadlock: an atomic precheck
	// gates it, and shard mutexes are only ever taken one at a time (a
	// breaker that locks all shards wholesale convoys with the dispatch
	// loops on small machines). The shard-by-shard snapshot can go stale if
	// a request unparks mid-scan; the worst case is one spurious victim
	// abort, which the restart machinery absorbs.
	tryBreak := func() {
		if committingCount.Load() > 0 {
			return // a pending commit will kick and may unblock everything
		}
		txMu.Lock()
		flying := len(inFlight)
		txMu.Unlock()
		if flying == 0 || int(parkedCount.Load()) < flying {
			return
		}
		stuckSet := map[int]bool{}
		var stuck []int
		for _, ss := range shards {
			ss.mu.Lock()
			for _, p := range ss.parked {
				if !stuckSet[p.req.tx] {
					stuckSet[p.req.tx] = true
					stuck = append(stuck, p.req.tx)
				}
			}
			ss.mu.Unlock()
		}
		txMu.Lock()
		deadlocked := len(stuck) > 0 && len(inFlight) > 0
		for tx := range inFlight {
			if !stuckSet[tx] {
				deadlocked = false
				break
			}
		}
		txMu.Unlock()
		if !deadlocked {
			return
		}
		victim, ok := cs.Victim(stuck)
		if !ok || !containsInt(stuck, victim) {
			victim = stuck[0]
		}
		var reply chan verdict
		for _, ss := range shards {
			ss.mu.Lock()
			for i, p := range ss.parked {
				if p.req.tx == victim {
					reply = p.req.reply
					ss.parked = append(ss.parked[:i], ss.parked[i+1:]...)
					break
				}
			}
			ss.mu.Unlock()
			if reply != nil {
				break
			}
		}
		if reply == nil {
			return // the victim unparked meanwhile; no deadlock after all
		}
		parkedCount.Add(-1)
		metMu.Lock()
		m.DeadlockBreaks++
		metMu.Unlock()
		abortTx(victim)
		reply <- verdict{aborted: true, parked: true, decided: time.Now()}
		kickAll()
	}

	// Deadlock breaker: eager triggers from the shard loops plus a ticker
	// backstop for triggers lost to races. The tick also re-kicks shards
	// with parked requests — a watchdog against wake-ups starved by the Go
	// scheduler on oversubscribed machines.
	go func() {
		ticker := time.NewTicker(250 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-breakCh:
				tryBreak()
			case <-ticker.C:
				if parkedCount.Load() > 0 {
					kickAll()
					tryBreak()
				}
			}
		}
	}()

	// Per-shard dispatch loops.
	for i := range shards {
		go func(ss *shardState) {
			for {
				select {
				case r := <-ss.reqCh:
					if v, decided := tryRequest(r); decided {
						r.reply <- v
					} else {
						ss.mu.Lock()
						ss.parked = append(ss.parked, parked{req: r, since: time.Now()})
						ss.mu.Unlock()
						parkedCount.Add(1)
						txMu.Lock()
						flying := len(inFlight)
						txMu.Unlock()
						if int(parkedCount.Load()) >= flying {
							triggerBreak()
						}
					}
					retryParked(ss)
				case <-ss.kick:
					retryParked(ss)
				case <-done:
					return
				}
			}
		}(shards[i])
	}

	// User goroutines: one terminal per user, jobs assigned round-robin;
	// each request goes to the dispatch loop of the shard owning its
	// variable, and each granted step executes here, on the user goroutine.
	var wg sync.WaitGroup
	jobCh := make(chan int)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(user)*7919))
			for tx := range jobCh {
				txStart := time.Now()
				for {
					restart := false
					steps := len(sys.Txs[tx].Steps)
					for idx := 0; idx < steps; idx++ {
						if cfg.ThinkTime > 0 {
							time.Sleep(time.Duration(rng.Int63n(int64(cfg.ThinkTime) + 1)))
						}
						sent := time.Now()
						reply := make(chan verdict, 1)
						shard := cs.ShardOf(sys.Txs[tx].Steps[idx].Var)
						select {
						case shards[shard].reqCh <- request{tx: tx, idx: idx, arrived: sent, reply: reply}:
						case <-done:
							return
						}
						v := <-reply
						metMu.Lock()
						if v.parked {
							m.WaitNs.Add(float64(v.decided.Sub(sent)))
						} else {
							m.SchedNs.Add(float64(v.decided.Sub(sent)))
						}
						metMu.Unlock()
						if v.aborted {
							restart = true
							break
						}
						applyStep(&cfg, tx, idx, m, &metMu, &errs)
						if v.lastGranted {
							// Commit order matters: the backend discards the
							// undo log while locks are still held, then the
							// scheduler releases them, then the other shards
							// are kicked to retry; only then may the breaker
							// resume (committingCount).
							if cfg.Backend != nil {
								cfg.Backend.Commit(tx)
							}
							cs.Commit(tx)
							kickAll()
							committingCount.Add(-1)
						}
					}
					if !restart {
						break
					}
					txMu.Lock()
					budget := attempts[tx] > maxRestarts
					txMu.Unlock()
					if budget {
						break
					}
					time.Sleep(time.Duration(rng.Int63n(int64(50 * time.Microsecond))))
				}
				metMu.Lock()
				m.TxLatencyNs.Add(float64(time.Since(txStart)))
				metMu.Unlock()
			}
		}(u)
	}

	start := time.Now()
	for tx := 0; tx < n; tx++ {
		jobCh <- tx
	}
	close(jobCh)
	wg.Wait()
	close(done)
	m.Elapsed = time.Since(start)
	if err := errs.get(); err != nil {
		return nil, err
	}

	txMu.Lock()
	for tx := 0; tx < n; tx++ {
		if committed[tx] {
			m.Committed++
		}
	}
	txMu.Unlock()
	if m.Elapsed > 0 {
		m.Throughput = float64(m.Committed) / m.Elapsed.Seconds()
	}
	outMu.Lock()
	m.Output = projectFinal(output, n)
	outMu.Unlock()
	return m, nil
}
