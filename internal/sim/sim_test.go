package sim

import (
	"testing"
	"time"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/workload"
)

func schedulers() []online.Scheduler {
	return []online.Scheduler{
		online.NewSerial(),
		online.NewStrict2PL(lockmgr.Detect),
		online.NewStrict2PL(lockmgr.NoWait),
		online.NewStrict2PL(lockmgr.WaitDie),
		online.NewStrict2PL(lockmgr.WoundWait),
		online.NewConservative2PL(),
		online.NewSGTAborting(),
		online.NewTO(),
		online.NewTOThomas(),
		online.NewOCC(),
	}
}

func TestInstantiate(t *testing.T) {
	inst := Instantiate(workload.Cross(), 5)
	if inst.NumTxs() != 5 {
		t.Fatalf("instances = %d", inst.NumTxs())
	}
	if inst.Txs[0].Name != "T1#0" || inst.Txs[1].Name != "T2#1" || inst.Txs[2].Name != "T1#2" {
		t.Errorf("instance names: %v %v %v", inst.Txs[0].Name, inst.Txs[1].Name, inst.Txs[2].Name)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Every scheduler must drive every job to commit under contention, and the
// final output must be a legal, conflict-serializable schedule of the
// instance system.
func TestAllSchedulersCompleteUnderContention(t *testing.T) {
	inst := Instantiate(workload.Cross(), 8)
	for _, sched := range schedulers() {
		m, err := Run(Config{
			System: inst,
			Sched:  sched,
			Users:  4,
			Seed:   42,
		})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if m.Committed != 8 {
			t.Fatalf("%s committed %d of 8 (aborts=%d)", sched.Name(), m.Committed, m.Aborts)
		}
		if !m.Output.Legal(inst.Format()) {
			t.Fatalf("%s output illegal: %v", sched.Name(), m.Output)
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Errorf("%s produced non-serializable output", sched.Name())
		}
	}
}

func TestHighContentionHotspot(t *testing.T) {
	// Many transactions all updating one variable: heavy conflicts, every
	// scheduler must still finish with a serializable log.
	hot := (&core.System{
		Name: "hotspot",
		Txs: []core.Transaction{
			{Steps: []core.Step{
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
			}},
		},
	}).Normalize()
	inst := Instantiate(hot, 12)
	for _, sched := range schedulers() {
		m, err := Run(Config{System: inst, Sched: sched, Users: 6, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if m.Committed != 12 {
			t.Fatalf("%s committed %d of 12", sched.Name(), m.Committed)
		}
	}
}

func TestDeadlockBreaking(t *testing.T) {
	// The cross pattern under strict 2PL with detection must hit and break
	// deadlocks eventually; run several seeds to make it overwhelmingly
	// likely at least one run deadlocks.
	inst := Instantiate(workload.Cross(), 10)
	sawBreakOrAbort := false
	for seed := int64(1); seed <= 5; seed++ {
		m, err := Run(Config{
			System:   inst,
			Sched:    online.NewStrict2PL(lockmgr.Detect),
			Users:    5,
			Seed:     seed,
			ExecTime: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != 10 {
			t.Fatalf("seed %d: committed %d of 10", seed, m.Committed)
		}
		if m.DeadlockBreaks > 0 || m.Aborts > 0 {
			sawBreakOrAbort = true
		}
	}
	if !sawBreakOrAbort {
		t.Log("no deadlocks observed across seeds (timing-dependent); completion still verified")
	}
}

func TestMetricsPopulated(t *testing.T) {
	inst := Instantiate(workload.Chain(), 6)
	m, err := Run(Config{System: inst, Sched: online.NewSGTAborting(), Users: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.TxLatencyNs.N() < 6 {
		t.Errorf("latency samples = %d", m.TxLatencyNs.N())
	}
	if m.SchedNs.N()+m.WaitNs.N() == 0 {
		t.Error("no request samples")
	}
	if m.Throughput <= 0 {
		t.Error("throughput not computed")
	}
	if m.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Sched: online.NewSerial()}); err == nil {
		t.Error("nil system accepted")
	}
	bad := &core.System{Name: "bad", Txs: []core.Transaction{{}}}
	if _, err := Run(Config{System: bad, Sched: online.NewSerial()}); err == nil {
		t.Error("invalid system accepted")
	}
}

// The serial scheduler serializes everything: its output must be a serial
// schedule of the instance system.
func TestSerialSchedulerProducesSerialOutput(t *testing.T) {
	inst := Instantiate(workload.Cross(), 6)
	m, err := Run(Config{System: inst, Sched: online.NewSerial(), Users: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != 6 {
		t.Fatalf("committed %d of 6", m.Committed)
	}
	if !m.Output.IsSerial() {
		t.Errorf("serial scheduler emitted interleaved output %v", m.Output)
	}
}

// Single user: no contention, no waiting, no aborts for lock-based
// schedulers.
func TestSingleUserNoContention(t *testing.T) {
	inst := Instantiate(workload.Cross(), 4)
	m, err := Run(Config{System: inst, Sched: online.NewStrict2PL(lockmgr.Detect), Users: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Aborts != 0 || m.DeadlockBreaks != 0 {
		t.Errorf("single user saw aborts=%d deadlocks=%d", m.Aborts, m.DeadlockBreaks)
	}
	if m.WaitNs.N() != 0 {
		t.Errorf("single user waited %d times", m.WaitNs.N())
	}
	if m.Committed != 4 {
		t.Errorf("committed %d of 4", m.Committed)
	}
}

func TestBankingWorkloadUnderSimulation(t *testing.T) {
	inst := Instantiate(workload.Banking(), 9)
	for _, sched := range []online.Scheduler{online.NewStrict2PL(lockmgr.WoundWait), online.NewSGTAborting()} {
		m, err := Run(Config{System: inst, Sched: sched, Users: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != 9 {
			t.Fatalf("%s committed %d of 9", sched.Name(), m.Committed)
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Errorf("%s: banking output not serializable", sched.Name())
		}
	}
}
