package sim

// Coverage for the batched dispatch runtime (Config.Batch > 1): intake
// coalescing on the per-shard dispatch loops, the batched parked-retry
// scan, and the storage group-commit pipeline. CI runs this file under
// -race; the invariants must match the unbatched runtime exactly — batching
// only changes how many decisions share a critical section, never which
// decisions are made legal.

import (
	"fmt"
	"sync"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// hotShardSystem is the batching sweet spot: every transaction hammers a
// two-variable hot set, so nearly all traffic lands on one or two dispatch
// loops and intake queues actually build up (workload.HotShard, shared with
// experiment E10 and BenchmarkBatchedVsUnbatched).
func hotShardSystem() *core.System { return workload.HotShard() }

// TestBatchedDispatchCompletes: every concurrent scheduler must drive all
// jobs to commit through the batched intake path, with serializable output,
// across batch sizes from degenerate to larger than the user count.
func TestBatchedDispatchCompletes(t *testing.T) {
	inst := Instantiate(workload.Banking(), 12)
	for _, batch := range []int{2, 8, 64} {
		for _, cs := range concurrentSchedulers() {
			t.Run(fmt.Sprintf("batch%d/%s", batch, cs.Name()), func(t *testing.T) {
				m, err := Run(Config{System: inst, Sched: cs, Users: 6, Seed: 99, Batch: batch})
				if err != nil {
					t.Fatal(err)
				}
				if m.Committed != 12 {
					t.Fatalf("committed %d of 12 (aborts=%d breaks=%d)", m.Committed, m.Aborts, m.DeadlockBreaks)
				}
				if !m.Output.Legal(inst.Format()) {
					t.Fatal("output illegal")
				}
				csr, _, err := conflict.Serializable(inst, m.Output)
				if err != nil {
					t.Fatal(err)
				}
				if !csr {
					t.Error("non-serializable output")
				}
			})
		}
	}
}

// TestBatchedHotShard: the hot-shard stress against real storage with group
// commit on — the configuration BenchmarkBatchedVsUnbatched measures — must
// preserve the replay invariant under heavy conflict traffic.
func TestBatchedHotShard(t *testing.T) {
	for _, batch := range []int{2, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("batch%d/seed%d", batch, seed), func(t *testing.T) {
				checkReplayInvariant(t, "2pl-sharded4/woundwait",
					func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) },
					hotShardSystem(), 16, 8, 64, seed, batch)
			})
		}
	}
}

// TestBatchedCentralRuntime: the centralized scheduler goroutine coalesces
// its intake too; results must be indistinguishable from unbatched runs.
func TestBatchedCentralRuntime(t *testing.T) {
	inst := Instantiate(workload.Cross(), 10)
	for _, batch := range []int{4, 32} {
		m, err := Run(Config{System: inst, Sched: online.NewStrict2PL(lockmgr.WoundWait), Users: 5, Seed: 7, Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != 10 {
			t.Fatalf("batch %d: committed %d of 10", batch, m.Committed)
		}
		if !m.Output.Legal(inst.Format()) {
			t.Fatalf("batch %d: output illegal", batch)
		}
	}
}

// TestGroupCommitPipelineUsed: with Batch > 1 and a backend, commits must
// flow through the group-commit pipeline (undo logs discarded on lanes,
// locks released per group) and every transaction must still commit exactly
// once.
func TestGroupCommitPipelineUsed(t *testing.T) {
	inst := Instantiate(hotShardSystem(), 12)
	be := &commitCountingBackend{Backend: storage.NewKV(storage.Config{Shards: 4, ValueSize: 32}), commits: map[int]int{}}
	m, err := Run(Config{
		System:  inst,
		Sched:   online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4),
		Backend: be,
		Users:   6,
		Seed:    13,
		Batch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != 12 {
		t.Fatalf("committed %d of 12", m.Committed)
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	for tx := 0; tx < 12; tx++ {
		if be.commits[tx] != 1 {
			t.Errorf("tx %d committed %d times on the backend", tx, be.commits[tx])
		}
	}
}

// commitCountingBackend counts Backend.Commit calls per transaction.
type commitCountingBackend struct {
	storage.Backend
	mu      sync.Mutex
	commits map[int]int
}

func (b *commitCountingBackend) Commit(tx int) {
	b.mu.Lock()
	b.commits[tx]++
	b.mu.Unlock()
	b.Backend.Commit(tx)
}

// TestShardedNameDuringRun hammers Scheduler.Name concurrently with a full
// sharded run: reporting a run while it is in flight must be race-free (the
// name is fixed at construction — regression for the lazy Name write).
func TestShardedNameDuringRun(t *testing.T) {
	scheds := []online.ConcurrentScheduler{
		online.NewSharded(4, func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }),
		online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4),
	}
	inst := Instantiate(workload.Banking(), 8)
	for _, cs := range scheds {
		want := cs.Name()
		stop := make(chan struct{})
		var hammer sync.WaitGroup
		hammer.Add(1)
		go func() {
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if got := cs.Name(); got != want {
						t.Errorf("Name changed mid-run: %q != %q", got, want)
						return
					}
				}
			}
		}()
		m, err := Run(Config{System: inst, Sched: cs, Users: 4, Seed: 21, Batch: 4})
		close(stop)
		hammer.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != 8 {
			t.Fatalf("%s committed %d of 8", want, m.Committed)
		}
	}
}
