package sim

// The multiversion runtime end-to-end: ConcurrentMV over the sharded
// dispatch loops with the version-chain KV, read-only transactions served
// through the snapshot fast path. CI runs this file under -race in the
// concurrency stress job.

import (
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// readOnlyTxs returns the indices of all-Read transactions — the ones the
// runtime's snapshot fast path serves.
func readOnlyTxs(sys *core.System) []int {
	var out []int
	for tx := range sys.Txs {
		ro := len(sys.Txs[tx].Steps) > 0
		for _, st := range sys.Txs[tx].Steps {
			if st.Kind != core.Read {
				ro = false
				break
			}
		}
		if ro {
			out = append(out, tx)
		}
	}
	return out
}

// TestConcurrentMVReadMostlyStateMatchesReplay is the tentpole's
// self-check, the one E12 repeats per cell: the read-mostly workload under
// mv must commit everything, serve every read-only transaction's steps
// through the snapshot path (they never enter the grant machinery, so they
// produce no Output events), keep the committed schedule
// conflict-serializable, and leave the backend state equal to the serial
// replay of the committed schedule — writers are pure increments executed
// strictly under held claims, so the write-set invariant is exact.
func TestConcurrentMVReadMostlyStateMatchesReplay(t *testing.T) {
	const jobs = 32
	for _, readFrac := range []float64{0.5, 0.9} {
		template := workload.ReadMostly(workload.ReadMostlyConfig{
			Jobs: jobs, Steps: 3, ReadFrac: readFrac, Vars: 16, HotFrac: 0.8, HotVars: 3,
		}, 23)
		inst := Instantiate(template, jobs)
		ro := readOnlyTxs(inst)
		be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 128})
		m, err := Run(Config{System: inst, Sched: online.NewConcurrentMV(4),
			Backend: be, Users: 8, Seed: 17, MaxRestarts: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("readfrac=%v: committed %d of %d", readFrac, m.Committed, jobs)
		}
		wantSnap := int64(0)
		for _, tx := range ro {
			wantSnap += int64(len(inst.Txs[tx].Steps))
		}
		if m.SnapshotReads != wantSnap {
			t.Fatalf("readfrac=%v: %d snapshot reads, want %d", readFrac, m.SnapshotReads, wantSnap)
		}
		for _, id := range m.Output {
			for _, tx := range ro {
				if id.Tx == tx {
					t.Fatalf("readfrac=%v: read-only tx %d leaked into the committed schedule", readFrac, tx)
				}
			}
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Fatalf("readfrac=%v: non-serializable committed schedule", readFrac)
		}
		// core.Exec needs a complete schedule; the snapshot-served read-only
		// transactions are absent from Output, so append their (all-Read,
		// state-neutral) steps to close it.
		full := append([]core.StepID{}, m.Output...)
		for _, tx := range ro {
			for idx := range inst.Txs[tx].Steps {
				full = append(full, core.StepID{Tx: tx, Idx: idx})
			}
		}
		replay, err := core.Exec(inst, full, inst.InitialStates()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !be.State().Equal(replay) {
			t.Fatalf("readfrac=%v: backend state diverged from committed replay", readFrac)
		}
	}
}

// TestSnapshotFastPathGate pins the fallback: when the runtime has more
// users than the backend has pin slots, read-only transactions go through
// the grant machinery like everyone else — no snapshot reads, same
// results.
func TestSnapshotFastPathGate(t *testing.T) {
	const jobs = 16
	template := workload.ReadMostly(workload.ReadMostlyConfig{
		Jobs: jobs, Steps: 3, ReadFrac: 0.75, Vars: 8, HotVars: 1,
	}, 5)
	inst := Instantiate(template, jobs)
	be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 128, SnapshotSlots: 2})
	m, err := Run(Config{System: inst, Sched: online.NewConcurrentMV(4),
		Backend: be, Users: 4, Seed: 29, MaxRestarts: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != jobs {
		t.Fatalf("committed %d of %d", m.Committed, jobs)
	}
	if m.SnapshotReads != 0 {
		t.Fatalf("fast path engaged with %d snapshot reads despite 2 slots for 4 users", m.SnapshotReads)
	}
	replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !be.State().Equal(replay) {
		t.Fatal("backend state diverged from committed replay")
	}
}
