// Package sim is the concurrent runtime of the repository: a
// goroutine-per-user simulation of the Section 6 environment. Multiple
// users at terminals execute transactions that mostly compute locally but
// occasionally touch shared data; a scheduler grants, delays or aborts each
// arriving step request.
//
// The simulator decomposes each step's latency exactly as Section 6 does:
//
//	scheduling time — queueing for the scheduler plus its decision,
//	waiting time    — imposed delay until conflicting steps complete,
//	execution time  — the cost of running the step.
//
// Execution time is real work when Config.Backend is set: every granted
// step is applied to the storage backend on the requesting user's goroutine
// (read the record, evaluate the step's interpretation, write a
// copy-on-write record), commits discard the transaction's undo log, and
// aborts roll it back before the scheduler releases any locks. Without a
// backend the step cost is simulated; either way Config.ExecTime adds an
// optional extra per-step cost. Commit processing is off the scheduler's
// grant critical path: the final step's grant replies immediately and the
// user goroutine finishes execution before the commit releases locks.
//
// Any internal/online.Scheduler can be plugged in, so the experiments
// compare the waiting time induced by schedulers with poorer or richer
// fixpoint sets (E4), deadlock-handling policies (E7), structured versus
// unstructured locking (E6), and real storage execution (E9).
//
// # Memory discipline
//
// The steady-state request→grant→execute→commit cycle is allocation-free
// (DESIGN.md "Memory discipline", enforced by TestHotPathAllocCeilings):
// each user goroutine reuses one verdict reply channel for all its
// requests, the histograms and the granted-step log are presized to the
// run's expected sample counts, the dispatch loops' batch buffers are
// per-loop scratch, and commit flows through pooled lock-table and
// group-commit state. The allocations that remain in the drivers are
// deliberately confined to cold paths: restart bookkeeping after an abort,
// the deadlock breaker's stuck-set, the failure path's error wrapping, and
// end-of-run projection/reporting.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"optcc/internal/core"
	"optcc/internal/online"
	"optcc/internal/report"
	"optcc/internal/storage"
)

// Config parameterizes one simulation run.
type Config struct {
	// System is the instance system: each transaction is one job to run
	// exactly once. Build it from a template with Instantiate.
	System *core.System
	// Sched is the concurrency control under test. The simulator owns it
	// for the duration of the run.
	Sched online.Scheduler
	// Backend, when non-nil, executes every granted step against real
	// storage. Run resets it to the system's first initial state; the
	// system must be executable (every non-Read step interpreted). For
	// strict schedulers (serial, the strict 2PL family) the committed
	// backend state equals core.Exec of Metrics.Output — see
	// internal/storage.
	Backend storage.Backend
	// Users is the number of concurrent user goroutines; jobs are assigned
	// round-robin. Zero means one user per job.
	Users int
	// Batch caps how many queued step requests a dispatch loop decides in
	// one scheduler critical section (intake coalescing; 0 or 1 = one
	// request per loop iteration, the unbatched runtime). The effective
	// bound is adaptive: each loop grows it additively while its queue
	// shows backlog and halves it toward 1 as the queue drains (AIMD), so
	// a large Batch costs nothing on thin traffic. On the sharded engine
	// every commit flows through the storage group-commit pipeline: a
	// finishing transaction enqueues its commit, and the lane's driver —
	// the first committer to find the lane idle — discards undo logs and
	// releases scheduler locks for the whole accumulated group in one
	// sweep, asynchronously to every follower (async lock release; a lone
	// committer drives its own singleton group, which is the old inline
	// commit). The granted-step log and all invariants are unchanged; only
	// the batching of decisions and commit processing differs.
	Batch int
	// ExecTime adds a simulated per-step execution cost on top of any
	// backend work (0 = none). It is slept on the user goroutine after the
	// grant, never inside a dispatch loop.
	ExecTime time.Duration
	// ThinkTime simulates per-user local computation between steps, drawn
	// uniformly from [0, ThinkTime].
	ThinkTime time.Duration
	// MaxRestarts bounds per-job restarts (0 means 1000).
	MaxRestarts int
	// Seed drives arrival jitter and backoff randomization.
	Seed int64
}

// Metrics aggregates a run.
type Metrics struct {
	// Committed is the number of jobs that committed.
	Committed int
	// Aborts counts transaction restarts.
	Aborts int
	// DeadlockBreaks counts victims chosen when every in-flight
	// transaction was blocked.
	DeadlockBreaks int
	// CommitGroups and GroupCommits report the group-commit pipeline's
	// coalescing: groups processed and transactions committed through
	// them. The sharded engine commits through the pipeline in both modes
	// (unbatched groups are mostly singletons); both are zero on the
	// centralized runtime, which has no pipeline.
	CommitGroups, GroupCommits int
	// WaitNs records per-request waiting time (delay until grant/abort).
	WaitNs report.Histogram
	// SchedNs records per-request scheduling time (queueing + decision).
	SchedNs report.Histogram
	// ExecNs records per-step execution time: the backend apply work
	// (empty when no backend is configured; ExecTime sleeps are excluded).
	ExecNs report.Histogram
	// TxLatencyNs records per-job total latency, restarts included.
	TxLatencyNs report.Histogram
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Throughput is committed jobs per second of wall clock.
	Throughput float64
	// AllocBytes is the heap bytes allocated during the run and AllocsPerTx
	// the heap objects allocated per committed transaction, both from the
	// runtime/metrics allocation counters (report.AllocMeter — NOT
	// runtime.ReadMemStats, whose stop-the-world measurably skews
	// sub-millisecond runs). The counters are process-global, so
	// concurrent activity outside the run pollutes them — they are the
	// trend meters behind ccbench -allocstats; the enforced per-step
	// ceilings live in TestHotPathAllocCeilings.
	AllocBytes  int64
	AllocsPerTx float64
	// SnapshotReads counts reads served through the storage snapshot path:
	// the read-only fast path that bypasses the grant machinery entirely
	// when the scheduler is a SnapshotSource and the backend a
	// storage.SnapshotBackend. Zero when the fast path is off.
	SnapshotReads int64
	// VersionGCed counts superseded storage versions the backend's garbage
	// collector unlinked during the run (zero for backends without version
	// chains).
	VersionGCed int64
	// Fsyncs, WALBytes, WALTruncated and RecoveryNs are the durable
	// backend's counters (storage.DurableBackend): log syncs, log bytes
	// appended, torn tails discarded by recovery, and the wall time of the
	// recovery that produced the backend. All zero for memory-only
	// backends.
	Fsyncs       int64
	WALBytes     int64
	WALTruncated int64
	RecoveryNs   int64
	// Checkpoint counters (storage.DurableBackend, checkpoint.go):
	// completed fuzzy checkpoints, failed attempts, sealed segments
	// retired behind a durable marker, bytes the recovery that produced
	// the backend actually replayed (log-since-checkpoint), and the
	// graceful-degradation health flag — true once persistent checkpoint
	// failures disabled the background checkpointer.
	Checkpoints        int64
	CheckpointFailures int64
	SegmentsRetired    int64
	RecoveryBytes      int64
	CheckpointerOff    bool
	// Output is the granted-step log projected to committed transactions'
	// final attempts, in grant order: a legal prefix (whole transactions
	// only) of the instance system, and a complete legal schedule when every
	// job committed. Attempts of transactions that never committed — e.g. a
	// restart budget exhausted on an aborted, rolled-back final attempt —
	// are excluded: their effects were undone, so including them would make
	// Output disagree with the committed state.
	Output core.Schedule
}

// GroupSize returns the mean commit-group size — the coalescing factor the
// group-commit pipeline achieved — or 0 when group commit was off.
func (m *Metrics) GroupSize() float64 {
	if m.CommitGroups == 0 {
		return 0
	}
	return float64(m.GroupCommits) / float64(m.CommitGroups)
}

// Instantiate builds an instance system with `jobs` transactions by cycling
// through the template's transactions. Instance i runs template transaction
// i mod n under the name "<template>#<i>".
func Instantiate(template *core.System, jobs int) *core.System {
	inst := &core.System{Name: template.Name + "-inst", IC: template.IC}
	for i := 0; i < jobs; i++ {
		src := template.Txs[i%len(template.Txs)]
		tx := core.Transaction{Name: fmt.Sprintf("%s#%d", src.Name, i), Steps: src.Steps}
		inst.Txs = append(inst.Txs, tx)
	}
	return inst.Normalize()
}

// request is one step arrival sent to the scheduler goroutine.
type request struct {
	tx      int
	idx     int
	arrived time.Time
	reply   chan verdict
}

type verdict struct {
	aborted bool
	// parked reports the request was delayed before its decision, so its
	// latency is waiting time rather than scheduling time (Section 6).
	parked bool
	// lastGranted reports the grant completed the transaction's final
	// step: the user goroutine executes it and then drives the commit.
	lastGranted bool
	decided     time.Time
}

// parked is a delayed request awaiting retry.
type parked struct {
	req   request
	since time.Time
}

// failure reports a backend apply that failed on a user goroutine: the
// transaction must be aborted through the scheduler (rollback before lock
// release) and stopped. last marks a failure on the final step, whose grant
// already recorded the transaction as committed — that record must be
// undone before the abort. ack is the reporting user's reusable
// acknowledgement channel (capacity 1): the scheduler sends on it when the
// abort is processed.
type failure struct {
	tx   int
	last bool
	ack  chan struct{}
}

// runErrors collects the first asynchronous error of a run (backend apply
// failures on user goroutines).
type runErrors struct {
	mu  sync.Mutex
	err error
}

func (e *runErrors) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *runErrors) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// applyStep executes a granted step's real work on the user goroutine: the
// backend apply (timed into ExecNs under metMu) plus the optional ExecTime
// extra cost. This deliberately happens after the grant reply, off every
// dispatch loop's critical path. It reports whether the step succeeded; on
// failure the error is recorded and the caller must abort the transaction
// through the normal abort path (rollback, then scheduler release) and stop
// it — continuing, or worse committing, would persist a partially-applied
// transaction.
//
//optcc:hotpath
func applyStep(cfg *Config, tx, idx int, m *Metrics, metMu *sync.Mutex, errs *runErrors) bool {
	if cfg.Backend != nil {
		start := time.Now()
		//cclint:ignore hotpath the backend apply is the measured payload work itself, not dispatch overhead
		if err := cfg.Backend.ApplyStep(tx, cfg.System.Txs[tx].Steps[idx]); err != nil {
			//cclint:ignore hotpath failure path; an apply error aborts the transaction, allocation is irrelevant
			errs.set(fmt.Errorf("sim: apply %v: %w", core.StepID{Tx: tx, Idx: idx}, err))
			return false
		}
		metMu.Lock()
		m.ExecNs.Add(float64(time.Since(start)))
		metMu.Unlock()
	}
	if cfg.ExecTime > 0 {
		time.Sleep(cfg.ExecTime)
	}
	return true
}

// Run executes the simulation and returns its metrics. It is deterministic
// in structure (seeded jitter) but, as a true concurrent run, the exact
// interleaving varies; the metrics' invariants (all jobs commit, output
// legal) hold on every run.
//
// A Sched implementing online.ConcurrentScheduler is driven by per-shard
// dispatch loops (see runSharded): users contend only on the shards their
// steps touch. A plain online.Scheduler runs behind the single centralized
// scheduler goroutine of Section 6.
func Run(cfg Config) (*Metrics, error) {
	sys := cfg.System
	if sys == nil || sys.NumTxs() == 0 {
		return nil, fmt.Errorf("sim: empty system")
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if cfg.Backend != nil {
		if !sys.Executable() {
			return nil, fmt.Errorf("sim: backend execution needs an executable system (every non-Read step interpreted)")
		}
		cfg.Backend.Reset(sys.InitialStates()[0])
	}
	users := cfg.Users
	if users <= 0 || users > sys.NumTxs() {
		users = sys.NumTxs()
	}
	maxRestarts := cfg.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1000
	}
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	if cs, ok := cfg.Sched.(online.ConcurrentScheduler); ok {
		return runSharded(cfg, cs, sys, users, maxRestarts, batch)
	}

	m := &Metrics{}
	presizeMetrics(m, sys, cfg.Backend != nil)
	var am report.AllocMeter
	am.Start()
	var mu sync.Mutex // guards metrics and sched state below
	var errs runErrors

	sched := cfg.Sched
	sched.Begin(sys)

	var (
		waiting  []parked
		inFlight = map[int]bool{} // started, not committed/aborted-pending
		// committing holds transactions whose final step is granted but
		// whose commit (lock release) has not been processed yet; the
		// deadlock breaker must wait for them — their commit is guaranteed
		// to arrive and may unblock everything.
		committing = map[int]bool{}
		wounded    = map[int]bool{}
		attempts   = make([]int, sys.NumTxs())
		committed  = make([]bool, sys.NumTxs())
		// output is presized to the conflict-free request count; restarts
		// overflow into amortized append growth (cold path).
		output = make([]online.Event, 0, sys.StepCount())
	)
	for i := range attempts {
		attempts[i] = 1
	}

	reqCh := make(chan request)
	// commitCh carries finished transactions back to the scheduler
	// goroutine: the user goroutine executes the final step (and the
	// backend commit) first, then the scheduler releases locks. Buffered so
	// committing users never block on the scheduler.
	commitCh := make(chan int, sys.NumTxs())
	// failCh carries failed backend applies: the transaction aborts through
	// the scheduler (rollback before lock release) and must not commit.
	failCh := make(chan failure)
	done := make(chan struct{})

	grantOne := func(r request, now time.Time) verdict {
		output = append(output, online.Event{Step: core.StepID{Tx: r.tx, Idx: r.idx}, Attempt: attempts[r.tx]})
		last := r.idx == len(sys.Txs[r.tx].Steps)-1
		if last {
			committed[r.tx] = true
			committing[r.tx] = true
			delete(inFlight, r.tx)
		}
		return verdict{decided: now, lastGranted: last}
	}

	abortOne := func(tx int) {
		// Roll the backend back before the scheduler releases locks, so no
		// concurrent transaction can read the dying writes.
		if cfg.Backend != nil {
			cfg.Backend.Rollback(tx)
		}
		sched.Abort(tx)
		attempts[tx]++
		delete(inFlight, tx)
		m.Aborts++
	}

	collectWounds := func() {
		for _, w := range sched.Wounded() {
			if !committed[w] {
				wounded[w] = true
			}
		}
	}

	// tryRequest decides one request; returns (verdict, decided).
	tryRequest := func(r request) (verdict, bool) {
		if wounded[r.tx] {
			delete(wounded, r.tx)
			abortOne(r.tx)
			return verdict{aborted: true, decided: time.Now()}, true
		}
		inFlight[r.tx] = true
		d := sched.Try(core.StepID{Tx: r.tx, Idx: r.idx})
		collectWounds()
		now := time.Now()
		switch d {
		case online.Grant:
			// A transaction wounded by its own request's side effects is
			// honored on its next request, not this grant.
			return grantOne(r, now), true
		case online.AbortTx:
			abortOne(r.tx)
			return verdict{aborted: true, decided: now}, true
		default:
			return verdict{}, false
		}
	}

	retryParked := func() {
		for {
			progressed := false
			kept := waiting[:0]
			for _, p := range waiting {
				if wounded[p.req.tx] {
					delete(wounded, p.req.tx)
					abortOne(p.req.tx)
					p.req.reply <- verdict{aborted: true, parked: true, decided: time.Now()}
					progressed = true
					continue
				}
				if v, decided := tryRequest(p.req); decided {
					v.decided = time.Now()
					v.parked = true
					p.req.reply <- v
					progressed = true
				} else {
					kept = append(kept, p)
				}
			}
			waiting = kept
			if !progressed {
				return
			}
		}
	}

	breakDeadlock := func() {
		// All in-flight transactions parked: abort a victim.
		var stuck []int
		for _, p := range waiting {
			stuck = append(stuck, p.req.tx)
		}
		if len(stuck) == 0 {
			return
		}
		victim, ok := sched.Victim(stuck)
		if !ok || !containsInt(stuck, victim) {
			victim = stuck[0]
		}
		m.DeadlockBreaks++
		kept := waiting[:0]
		var victimReply chan verdict
		for _, p := range waiting {
			if p.req.tx == victim && victimReply == nil {
				victimReply = p.req.reply
				continue
			}
			kept = append(kept, p)
		}
		waiting = kept
		abortOne(victim)
		victimReply <- verdict{aborted: true, parked: true, decided: time.Now()}
		retryParked()
	}

	// checkDeadlock breaks victims while every in-flight transaction is
	// parked and no commit is pending (a pending commit always arrives and
	// may unblock the waiters for free).
	checkDeadlock := func() {
		for len(committing) == 0 && len(waiting) > 0 && len(waiting) >= len(inFlight) && allParked(waiting, inFlight) {
			breakDeadlock()
		}
	}

	// Scheduler goroutine: the single centralized scheduler of Section 6.
	// With Batch > 1 it coalesces its intake: everything queued on a channel
	// is drained opportunistically and processed under one critical section
	// — one parked-retry scan and one deadlock check per batch instead of
	// one per request/commit. The coalescing bound adapts (AIMD on observed
	// backlog, batchSizer) so Batch is the cap, not a fixed size; each
	// channel has its own sizer — commit drains are often singletons, and a
	// shared bound would let them keep halving what the request path earned.
	// schedWG joins the scheduler before Run returns: every sender has
	// exited by the time done is closed (wg.Wait above the close), so the
	// scheduler drains nothing after the join starts and Wait is bounded.
	// Without the join the goroutine could still be inside a mu-protected
	// batch while Run's caller reads Metrics — the race gojoin exists to
	// prevent.
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		reqSizer := newBatchSizer(batch)
		commitSizer := newBatchSizer(batch)
		reqBuf := make([]request, 0, batch)
		commitBuf := make([]int, 0, batch)
		for {
			select {
			case r := <-reqCh:
				bound := reqSizer.bound()
				reqBuf = append(reqBuf[:0], r)
			reqDrain:
				for len(reqBuf) < bound {
					select {
					case r2 := <-reqCh:
						reqBuf = append(reqBuf, r2)
					default:
						break reqDrain
					}
				}
				reqSizer.observe(len(reqBuf))
				mu.Lock()
				for _, r := range reqBuf {
					if v, decided := tryRequest(r); decided {
						r.reply <- v
					} else {
						waiting = append(waiting, parked{req: r, since: time.Now()})
					}
				}
				retryParked()
				checkDeadlock()
				mu.Unlock()
			case tx := <-commitCh:
				bound := commitSizer.bound()
				commitBuf = append(commitBuf[:0], tx)
			commitDrain:
				for len(commitBuf) < bound {
					select {
					case tx2 := <-commitCh:
						commitBuf = append(commitBuf, tx2)
					default:
						break commitDrain
					}
				}
				commitSizer.observe(len(commitBuf))
				mu.Lock()
				for _, tx := range commitBuf {
					delete(committing, tx)
					sched.Commit(tx)
				}
				retryParked()
				checkDeadlock()
				mu.Unlock()
			case f := <-failCh:
				mu.Lock()
				if f.last {
					// The final step's grant marked the transaction
					// committed before its execution failed; undo that
					// record — it must not commit.
					committed[f.tx] = false
					delete(committing, f.tx)
				}
				abortOne(f.tx)
				retryParked()
				checkDeadlock()
				mu.Unlock()
				f.ack <- struct{}{}
			case <-done:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	jobCh := make(chan int)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(user)*7919))
			// reply and ack are this user's reusable one-shot channels:
			// every request gets exactly one verdict and the user reads it
			// before issuing the next request, so one buffered channel per
			// user replaces the per-step make(chan verdict, 1) that
			// dominated the hot path's allocations.
			reply := make(chan verdict, 1)
			ack := make(chan struct{}, 1)
			for tx := range jobCh {
				txStart := time.Now()
				for {
					restart, failed := false, false
					steps := len(sys.Txs[tx].Steps)
					for idx := 0; idx < steps; idx++ {
						if cfg.ThinkTime > 0 {
							time.Sleep(time.Duration(rng.Int63n(int64(cfg.ThinkTime) + 1)))
						}
						sent := time.Now()
						reqCh <- request{tx: tx, idx: idx, arrived: sent, reply: reply}
						v := <-reply
						mu.Lock()
						if v.parked {
							m.WaitNs.Add(float64(v.decided.Sub(sent)))
						} else {
							m.SchedNs.Add(float64(v.decided.Sub(sent)))
						}
						mu.Unlock()
						if v.aborted {
							restart = true
							break
						}
						if !applyStep(&cfg, tx, idx, m, &mu, &errs) {
							// Failed execution: abort through the scheduler
							// and stop this transaction for good — no later
							// steps, no commit. Run surfaces the recorded
							// error.
							failCh <- failure{tx: tx, last: v.lastGranted, ack: ack}
							<-ack
							failed = true
							break
						}
						if v.lastGranted {
							if cfg.Backend != nil {
								cfg.Backend.Commit(tx)
								// Durable commit path: the centralized runtime
								// has no commit pipeline, so each commit is its
								// own group of one — sync it now. A failed sync
								// is lost durability; surface it as the run
								// error.
								if gs, ok := cfg.Backend.(storage.GroupSyncer); ok {
									if err := gs.GroupSync(); err != nil {
										errs.set(fmt.Errorf("sim: durable commit of tx %d: %w", tx, err))
									}
								}
							}
							commitCh <- tx
						}
					}
					if failed || !restart {
						break
					}
					mu.Lock()
					budget := attempts[tx] > maxRestarts
					mu.Unlock()
					if budget {
						break
					}
					// Randomized backoff before restarting.
					time.Sleep(time.Duration(rng.Int63n(int64(50 * time.Microsecond))))
				}
				mu.Lock()
				m.TxLatencyNs.Add(float64(time.Since(txStart)))
				mu.Unlock()
			}
		}(u)
	}

	start := time.Now()
	for tx := 0; tx < sys.NumTxs(); tx++ {
		jobCh <- tx
	}
	close(jobCh)
	wg.Wait()
	close(done)
	schedWG.Wait()
	m.Elapsed = time.Since(start)
	if err := errs.get(); err != nil {
		return nil, err
	}
	if err := durableErr(cfg.Backend); err != nil {
		return nil, err
	}

	mu.Lock()
	defer mu.Unlock()
	for tx := 0; tx < sys.NumTxs(); tx++ {
		if committed[tx] {
			m.Committed++
		}
	}
	if m.Elapsed > 0 {
		m.Throughput = float64(m.Committed) / m.Elapsed.Seconds()
	}
	m.Output = projectFinal(output, committed)
	fillAllocStats(m, &am)
	fillSnapshotStats(m, cfg.Backend)
	fillDurableStats(m, cfg.Backend)
	return m, nil
}

// fillSnapshotStats copies the backend's snapshot-path counters into the
// metrics when the backend keeps version chains.
func fillSnapshotStats(m *Metrics, be storage.Backend) {
	if sb, ok := be.(storage.SnapshotBackend); ok {
		m.SnapshotReads = sb.SnapshotReads()
		m.VersionGCed = sb.VersionsGCed()
	}
}

// fillDurableStats copies the durable backend's counters into the metrics.
func fillDurableStats(m *Metrics, be storage.Backend) {
	if db, ok := be.(storage.DurableBackend); ok {
		ds := db.DurabilityStats()
		m.Fsyncs = ds.Fsyncs
		m.WALBytes = ds.WALBytes
		m.WALTruncated = ds.WALTruncated
		m.RecoveryNs = ds.RecoveryNs
		m.Checkpoints = ds.Checkpoints
		m.CheckpointFailures = ds.CheckpointFailures
		m.SegmentsRetired = ds.SegmentsRetired
		m.RecoveryBytes = ds.RecoveryBytes
		m.CheckpointerOff = ds.CheckpointerOff
	}
}

// durableErr surfaces a durable backend's sticky error as the run error:
// a failed append or sync means some "committed" transaction may not be on
// stable storage, and a run that silently succeeded anyway would be the
// exact durability lie the torture tests exist to rule out.
func durableErr(be storage.Backend) error {
	if db, ok := be.(storage.DurableBackend); ok {
		if err := db.Err(); err != nil {
			return fmt.Errorf("sim: durable backend: %w", err)
		}
	}
	return nil
}

// presizeMetrics reserves the histograms' expected steady-state sample
// counts — one wait-or-sched sample per request, one latency sample per
// job, one exec sample per applied step — so recording a sample never
// allocates on a conflict-free run (restarts overflow into amortized
// growth, a cold path).
func presizeMetrics(m *Metrics, sys *core.System, backend bool) {
	steps := sys.StepCount()
	m.WaitNs.Grow(steps)
	m.SchedNs.Grow(steps)
	m.TxLatencyNs.Grow(sys.NumTxs())
	if backend {
		m.ExecNs.Grow(steps)
	}
}

// fillAllocStats closes the run's allocation meter into the metrics.
func fillAllocStats(m *Metrics, am *report.AllocMeter) {
	allocs, bytes := am.Delta()
	m.AllocBytes = bytes
	if m.Committed > 0 {
		m.AllocsPerTx = float64(allocs) / float64(m.Committed)
	}
}

// projectFinal keeps each committed transaction's last attempt from the
// granted-step log, in execution order: a legal schedule of the committed
// transactions (complete when all of them committed). Transactions that
// never committed are excluded entirely — a restart budget exhausted on an
// aborted final attempt leaves steps in the log whose effects were rolled
// back, and keeping them would make the result disagree with both the
// committed backend state and any legal schedule semantics.
func projectFinal(output []online.Event, committed []bool) core.Schedule {
	lastAttempt := make([]int, len(committed))
	for _, e := range output {
		if committed[e.Step.Tx] && e.Attempt > lastAttempt[e.Step.Tx] {
			lastAttempt[e.Step.Tx] = e.Attempt
		}
	}
	h := make(core.Schedule, 0, len(output))
	for _, e := range output {
		if committed[e.Step.Tx] && e.Attempt == lastAttempt[e.Step.Tx] {
			h = append(h, e.Step)
		}
	}
	return h
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// allParked reports whether every in-flight transaction has a parked
// request.
func allParked(waiting []parked, inFlight map[int]bool) bool {
	parkedTx := map[int]bool{}
	for _, p := range waiting {
		parkedTx[p.req.tx] = true
	}
	for tx := range inFlight {
		if !parkedTx[tx] {
			return false
		}
	}
	return len(inFlight) > 0
}
