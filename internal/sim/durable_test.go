package sim

// Durable-backend coverage for both runtimes: the replay invariant now has
// to hold twice — once against the live disk backend, and again against
// the state OpenDisk recovers after the backend is closed. Strict
// schedulers run the eager (redo+undo) mode; the natively concurrent
// non-strict TO scheduler runs write-buffered, which is exactly what makes
// it recoverable.

import (
	"fmt"
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// checkDurableReplay runs the configuration on a fresh disk backend,
// checks the replay invariant against the live state, then closes the
// store, recovers it with OpenDisk, and checks the invariant again on the
// recovered state. Returns the run metrics.
func checkDurableReplay(t *testing.T, name string, mk func() online.Scheduler, template *core.System, jobs, users int, seed int64, batch int, fsync storage.FsyncPolicy, buffered bool) *Metrics {
	t.Helper()
	inst := Instantiate(template, jobs)
	dir := t.TempDir()
	be, err := storage.NewDisk(storage.Config{Dir: dir, Fsync: fsync, Buffered: buffered})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(Config{System: inst, Sched: mk(), Backend: be, Users: users, Seed: seed, Batch: batch})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if m.Committed != jobs {
		t.Fatalf("%s committed %d of %d (aborts=%d)", name, m.Committed, jobs, m.Aborts)
	}
	replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
	if err != nil {
		t.Fatalf("%s: replay: %v", name, err)
	}
	live := be.State()
	if !live.Equal(replay) {
		t.Fatalf("%s: live disk state != committed replay\n  live   %v\n  replay %v", name, live, replay)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("%s: close: %v", name, err)
	}
	r, err := storage.OpenDisk(storage.Config{Dir: dir})
	if err != nil {
		t.Fatalf("%s: recovery: %v", name, err)
	}
	defer r.Close()
	if got := r.State(); !got.Equal(replay) {
		t.Fatalf("%s: recovered state != committed replay\n  recovered %v\n  replay    %v", name, got, replay)
	}
	if ds := r.DurabilityStats(); ds.WALTruncated != 0 {
		t.Fatalf("%s: clean shutdown recovered with WALTruncated=%d", name, ds.WALTruncated)
	}
	return m
}

// TestDiskBackendReplayAndRecovery: strict schedulers on the eager disk
// backend, across both runtimes, batching modes and all three fsync
// policies — the committed replay must match the live state AND the
// recovered state.
func TestDiskBackendReplayAndRecovery(t *testing.T) {
	scheds := []struct {
		name string
		mk   func() online.Scheduler
	}{
		{"central/serial", func() online.Scheduler { return online.NewSerial() }},
		{"central/2pl-woundwait", func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }},
		{"2pl-sharded4/woundwait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) }},
	}
	for _, fsync := range []storage.FsyncPolicy{storage.FsyncAlways, storage.FsyncGroup, storage.FsyncNever} {
		for _, batch := range []int{1, 8} {
			for _, sc := range scheds {
				name := fmt.Sprintf("%s/fsync-%s/batch%d", sc.name, fsync, batch)
				t.Run(name, func(t *testing.T) {
					m := checkDurableReplay(t, name, sc.mk, workload.Banking(), 12, 6, 42, batch, fsync, false)
					if fsync != storage.FsyncNever && m.Fsyncs == 0 {
						t.Errorf("%s: no fsyncs recorded in metrics", name)
					}
					if m.WALBytes == 0 {
						t.Errorf("%s: no WAL bytes recorded in metrics", name)
					}
				})
			}
		}
	}
}

// TestDiskBufferedNonStrictRecovery: the natively concurrent TO scheduler
// is non-strict — with eager writes its state is best-effort, but
// write-buffered execution logs only commit records, so the replay AND
// recovery invariants hold on a conflict-free workload.
func TestDiskBufferedNonStrictRecovery(t *testing.T) {
	for _, batch := range []int{1, 8} {
		name := fmt.Sprintf("cto4/buffered/batch%d", batch)
		t.Run(name, func(t *testing.T) {
			m := checkDurableReplay(t, name,
				func() online.Scheduler { return online.NewConcurrentTO(4) },
				workload.Disjoint(16, 2), 16, 8, 7, batch, storage.FsyncGroup, true)
			if m.Fsyncs == 0 {
				t.Errorf("%s: no fsyncs recorded", name)
			}
		})
	}
}

// TestDiskRecoveryNsMetric: a run on a backend produced by OpenDisk
// carries the recovery wall time into the metrics.
func TestDiskRecoveryNsMetric(t *testing.T) {
	dir := t.TempDir()
	seed, err := storage.NewDisk(storage.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	seed.Reset(core.DB{"x": 1})
	seed.Close()
	be, err := storage.OpenDisk(storage.Config{Dir: dir, Fsync: storage.FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	inst := Instantiate(workload.Banking(), 6)
	m, err := Run(Config{System: inst, Sched: online.NewStrict2PL(lockmgr.WoundWait), Backend: be, Users: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.RecoveryNs <= 0 {
		t.Errorf("RecoveryNs = %d, want > 0 after OpenDisk", m.RecoveryNs)
	}
	if m.Fsyncs == 0 {
		t.Errorf("Fsyncs = 0 on a durable run")
	}
}

// TestDiskSyncFailureSurfacesAsRunError: a durable backend whose fsync
// fails mid-run must fail the run — silent durability loss is the bug
// class this PR exists to rule out. Covers the sharded runtime's OnFail
// path (group commit) and the centralized runtime's per-commit GroupSync.
func TestDiskSyncFailureSurfacesAsRunError(t *testing.T) {
	for _, rt := range []struct {
		name string
		mk   func() online.Scheduler
	}{
		{"central", func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }},
		{"sharded", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 2) }},
	} {
		t.Run(rt.name, func(t *testing.T) {
			efs := storage.NewErrFS(storage.OSFS{})
			be, err := storage.NewDisk(storage.Config{Dir: t.TempDir(), FS: efs, Fsync: storage.FsyncGroup})
			if err != nil {
				t.Fatal(err)
			}
			// Fail an operation far enough in to land inside the run (the
			// Reset consumes the first two).
			efs.FailAt(10)
			inst := Instantiate(workload.Banking(), 8)
			if _, err := Run(Config{System: inst, Sched: rt.mk(), Backend: be, Users: 4, Seed: 3}); err == nil {
				t.Fatal("run with injected fsync failure reported success")
			}
		})
	}
}
