package sim

// Coverage for the natively concurrent timestamp-ordering scheduler and
// the striped ordering rail driven by the real dispatch runtime, plus the
// adaptive batch sizer and the unified (lane-based) unbatched commit path.
// CI runs this file under -race -count=5 in the concurrency stress job.

import (
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// TestConcurrentTODisjointStateMatchesReplay: native TO over the sharded
// dispatch loops with real storage on the conflict-free multi-shard
// workload. With no cross-transaction conflicts the committed backend
// state must equal the committed replay even for a non-strict scheduler,
// so this is a true end-to-end self-check of the lock-free hot path.
func TestConcurrentTODisjointStateMatchesReplay(t *testing.T) {
	const jobs = 24
	for _, shards := range []int{1, 4} {
		inst := Instantiate(workload.Disjoint(jobs, 3), jobs)
		be := storage.NewKV(storage.Config{Shards: shards, ValueSize: 128})
		m, err := Run(Config{System: inst, Sched: online.NewConcurrentTO(shards),
			Backend: be, Users: 8, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("shards=%d: committed %d of %d", shards, m.Committed, jobs)
		}
		replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !be.State().Equal(replay) {
			t.Fatalf("shards=%d: backend state diverged from committed replay", shards)
		}
	}
}

// TestConcurrentTOContendedSerializable: native TO under real conflicts
// (hotspot workload, many users) must still commit everything, and in
// basic mode the committed schedule must be conflict-serializable — the
// timestamp-order argument that replaces the rail, exercised concurrently.
// Thomas mode is exempt from the CSR check by design: the Thomas write
// rule grants an obsolete blind write as a no-op, which still appears in
// the granted-step log, so the log's conflict graph may legitimately show
// a timestamp inversion on the dead write (the classical sense in which
// TWR exceeds CSR).
func TestConcurrentTOContendedSerializable(t *testing.T) {
	const jobs = 24
	template := workload.Random(workload.RandomConfig{
		NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 6, Hotspot: 1}, 7)
	for _, thomas := range []bool{false, true} {
		sched := online.NewConcurrentTO(4)
		if thomas {
			sched = online.NewConcurrentTOThomas(4)
		}
		inst := Instantiate(template, jobs)
		m, err := Run(Config{System: inst, Sched: sched, Users: 8, Seed: 11, MaxRestarts: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("thomas=%v: committed %d of %d", thomas, m.Committed, jobs)
		}
		if thomas {
			continue
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Fatal("non-serializable committed schedule under basic timestamp ordering")
		}
	}
}

// TestStripedRailUnderDispatch: the Sharded combinator's striped rail
// driven by the real dispatch loops on the pairwise-conflict multi-shard
// workload, across stripe counts (1 = single-mutex degenerate). Everything
// must commit and the committed schedule must be conflict-serializable.
func TestStripedRailUnderDispatch(t *testing.T) {
	const pairs = 8
	template := workload.CrossPairs(pairs)
	jobs := template.NumTxs()
	for _, stripes := range []int{1, 4} {
		for _, mk := range []func() online.Scheduler{
			func() online.Scheduler { return online.NewTO() },
			func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) },
		} {
			sched := online.NewShardedRail(4, stripes, mk)
			inst := Instantiate(template, jobs)
			m, err := Run(Config{System: inst, Sched: sched, Users: 8, Seed: 3, MaxRestarts: 10000})
			if err != nil {
				t.Fatalf("stripes=%d %s: %v", stripes, sched.Name(), err)
			}
			if m.Committed != jobs {
				t.Fatalf("stripes=%d %s: committed %d of %d", stripes, sched.Name(), m.Committed, jobs)
			}
			csr, _, err := conflict.Serializable(inst, m.Output)
			if err != nil {
				t.Fatal(err)
			}
			if !csr {
				t.Fatalf("stripes=%d %s: non-serializable committed schedule", stripes, sched.Name())
			}
		}
	}
}

// TestBatchSizerAIMD pins the adaptive controller's behavior: additive
// growth while drains hit the bound, multiplicative shrink toward 1 as the
// queue thins, and a hard cap.
func TestBatchSizerAIMD(t *testing.T) {
	s := newBatchSizer(8)
	if s.bound() != 1 {
		t.Fatalf("initial bound %d, want 1", s.bound())
	}
	for i := 0; i < 20; i++ {
		s.observe(s.bound()) // saturated drains
	}
	if s.bound() != 8 {
		t.Fatalf("bound after backlog %d, want cap 8", s.bound())
	}
	s.observe(3) // 3 <= 8/2: halve
	if s.bound() != 4 {
		t.Fatalf("bound after thin drain %d, want 4", s.bound())
	}
	s.observe(1)
	s.observe(1)
	if s.bound() != 1 {
		t.Fatalf("bound after idle %d, want 1", s.bound())
	}
	s.observe(0)
	if s.bound() != 1 {
		t.Fatalf("bound regressed below 1: %d", s.bound())
	}
	one := newBatchSizer(1)
	one.observe(1)
	if one.bound() != 1 {
		t.Fatal("cap 1 must stay scalar")
	}
	if newBatchSizer(0).bound() != 1 {
		t.Fatal("cap 0 must clamp to 1")
	}
}

// TestAdaptiveBatchHotShard is the satellite's regression test: with Batch
// as a cap, the hot-shard workload (all traffic on one dispatch loop) must
// still commit everything with the committed state equal to the committed
// replay, across cap sizes — the adaptive bound must never strand parked
// or queued requests.
func TestAdaptiveBatchHotShard(t *testing.T) {
	const jobs = 32
	template := workload.HotShardDisjoint(jobs, 4)
	for _, cap := range []int{2, 16, 64} {
		inst := Instantiate(template, jobs)
		be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 128})
		m, err := Run(Config{System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4),
			Backend: be, Users: 16, Seed: 5, Batch: cap})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != jobs {
			t.Fatalf("cap=%d: committed %d of %d", cap, m.Committed, jobs)
		}
		replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
		if err != nil {
			t.Fatal(err)
		}
		if !be.State().Equal(replay) {
			t.Fatalf("cap=%d: backend state diverged from committed replay", cap)
		}
	}
}

// TestUnbatchedCommitsThroughLanes: with Batch <= 1 the sharded engine now
// commits through the group-commit pipeline too (mostly singleton groups),
// so lock release is asynchronous in both modes. The pipeline must process
// every commit exactly once and preserve the replay invariant.
func TestUnbatchedCommitsThroughLanes(t *testing.T) {
	const jobs = 24
	inst := Instantiate(workload.HotShard(), jobs)
	be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 128})
	m, err := Run(Config{System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4),
		Backend: be, Users: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != jobs {
		t.Fatalf("committed %d of %d", m.Committed, jobs)
	}
	if m.GroupCommits != jobs {
		t.Fatalf("pipeline committed %d transactions, want %d", m.GroupCommits, jobs)
	}
	if m.CommitGroups < 1 || m.CommitGroups > jobs {
		t.Fatalf("implausible group count %d", m.CommitGroups)
	}
	replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !be.State().Equal(replay) {
		t.Fatal("backend state diverged from committed replay")
	}
}
