package sim

// Real-storage coverage for both runtimes (the centralized scheduler
// goroutine and the per-shard dispatch loops): every test executes granted
// steps against the sharded KV backend and checks the replay invariant —
// the committed backend state equals core.Exec of the committed schedule.
// The invariant is guaranteed for strict executions (serial and the strict
// 2PL family; see internal/storage), which is exactly the scheduler set
// enumerated here. CI runs this file under -race.

import (
	"fmt"
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// strictSchedulers enumerates every strict scheduler configuration, central
// and sharded: the universe for which undo-log rollback guarantees that the
// backend state matches the committed replay.
func strictSchedulers() []struct {
	name string
	mk   func() online.Scheduler
} {
	return []struct {
		name string
		mk   func() online.Scheduler
	}{
		{"central/serial", func() online.Scheduler { return online.NewSerial() }},
		{"central/2pl-detect", func() online.Scheduler { return online.NewStrict2PL(lockmgr.Detect) }},
		{"central/2pl-nowait", func() online.Scheduler { return online.NewStrict2PL(lockmgr.NoWait) }},
		{"central/2pl-waitdie", func() online.Scheduler { return online.NewStrict2PL(lockmgr.WaitDie) }},
		{"central/2pl-woundwait", func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }},
		{"central/2pl-conservative", func() online.Scheduler { return online.NewConservative2PL() }},
		{"mutexed/2pl-woundwait", func() online.Scheduler { return online.NewMutexed(online.NewStrict2PL(lockmgr.WoundWait)) }},
		{"mutexed/2pl-detect", func() online.Scheduler { return online.NewMutexed(online.NewStrict2PL(lockmgr.Detect)) }},
		{"sharded4/serial", func() online.Scheduler {
			return online.NewSharded(4, func() online.Scheduler { return online.NewSerial() })
		}},
		{"sharded4/2pl-woundwait", func() online.Scheduler {
			return online.NewSharded(4, func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) })
		}},
		{"sharded4/2pl-detect", func() online.Scheduler {
			return online.NewSharded(4, func() online.Scheduler { return online.NewStrict2PL(lockmgr.Detect) })
		}},
		{"2pl-sharded1/woundwait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 1) }},
		{"2pl-sharded4/detect", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.Detect, 4) }},
		{"2pl-sharded4/waitdie", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WaitDie, 4) }},
		{"2pl-sharded4/woundwait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) }},
		{"2pl-sharded16/nowait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.NoWait, 16) }},
	}
}

// checkReplayInvariant runs the configuration with a fresh KV backend and
// fails unless all jobs commit and the backend state equals the serial
// replay of the committed schedule. batch > 1 turns on intake coalescing
// and group commit.
func checkReplayInvariant(t *testing.T, name string, mk func() online.Scheduler, template *core.System, jobs, users, valueSize int, seed int64, batch int) *Metrics {
	t.Helper()
	inst := Instantiate(template, jobs)
	shards := 1
	if cs, ok := mk().(online.ConcurrentScheduler); ok {
		shards = cs.NumShards()
	}
	be := storage.NewKV(storage.Config{Shards: shards, ValueSize: valueSize})
	m, err := Run(Config{System: inst, Sched: mk(), Backend: be, Users: users, Seed: seed, Batch: batch})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if m.Committed != jobs {
		t.Fatalf("%s committed %d of %d (aborts=%d breaks=%d)", name, m.Committed, jobs, m.Aborts, m.DeadlockBreaks)
	}
	replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
	if err != nil {
		t.Fatalf("%s: replay: %v", name, err)
	}
	if got := be.State(); !got.Equal(replay) {
		t.Fatalf("%s: backend state diverged from committed replay:\n  backend %v\n  replay  %v", name, got, replay)
	}
	return m
}

// TestBackendStateMatchesCommittedReplay is the acceptance invariant: for
// every strict scheduler — central and sharded, unbatched and batched — a
// run over real storage leaves the backend in exactly the state of serially
// replaying the committed schedule, on workloads spanning low contention,
// interpreted banking transfers, and a deadlock-prone cross pattern.
func TestBackendStateMatchesCommittedReplay(t *testing.T) {
	templates := []struct {
		name     string
		template *core.System
		jobs     int
		users    int
	}{
		{"banking", workload.Banking(), 12, 6},
		{"cross", workload.Cross(), 10, 5},
		{"random", workload.Random(workload.RandomConfig{NumTxs: 8, MinSteps: 2, MaxSteps: 3, NumVars: 6, Hotspot: 1}, 7), 16, 8},
	}
	for _, batch := range []int{1, 8} {
		for _, cfg := range strictSchedulers() {
			for _, w := range templates {
				t.Run(fmt.Sprintf("batch%d/%s/%s", batch, cfg.name, w.name), func(t *testing.T) {
					checkReplayInvariant(t, cfg.name, cfg.mk, w.template, w.jobs, w.users, 128, 42, batch)
				})
			}
		}
	}
}

// TestBackendAbortRollbackUnderContention is the abort-heavy stress: a
// hotspot workload under no-wait 2PL (which aborts on every lock conflict)
// forces many concurrent rollbacks across the sharded runtime, and the
// final state must still be byte-for-byte the committed replay — no
// aborted write may leak.
func TestBackendAbortRollbackUnderContention(t *testing.T) {
	hot := (&core.System{
		Name: "hotspot",
		Txs: []core.Transaction{
			{Steps: []core.Step{
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
				{Var: "g", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 2 }},
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] * 2 }},
			}},
		},
	}).Normalize()
	anyAborts := false
	for seed := int64(1); seed <= 3; seed++ {
		for _, cfg := range []struct {
			name string
			mk   func() online.Scheduler
		}{
			{"central/2pl-nowait", func() online.Scheduler { return online.NewStrict2PL(lockmgr.NoWait) }},
			{"2pl-sharded4/nowait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.NoWait, 4) }},
			{"2pl-sharded4/woundwait", func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) }},
		} {
			m := checkReplayInvariant(t, cfg.name, cfg.mk, hot, 16, 8, 64, seed, 0)
			if m.Aborts > 0 {
				anyAborts = true
			}
		}
	}
	if !anyAborts {
		t.Fatal("stress produced no aborts; rollback path untested")
	}
}

// TestBackendExecMetrics: with a backend the Section 6 execution-time
// component is measured from real work.
func TestBackendExecMetrics(t *testing.T) {
	inst := Instantiate(workload.Banking(), 8)
	be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 1024})
	m, err := Run(Config{System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4), Backend: be, Users: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.ExecNs.N() < inst.StepCount() {
		t.Errorf("exec samples = %d, want >= %d", m.ExecNs.N(), inst.StepCount())
	}
	st := be.Stats()
	if st.Reads == 0 || st.Writes == 0 || st.BytesWritten == 0 {
		t.Errorf("backend did no work: %+v", st)
	}
}

// TestBackendRejectsUninterpretedSystem: backend execution requires an
// executable system.
func TestBackendRejectsUninterpretedSystem(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	be := storage.NewKV(storage.Config{Shards: 1})
	if _, err := Run(Config{System: sys, Sched: online.NewSerial(), Backend: be, Users: 1}); err == nil {
		t.Fatal("uninterpreted system accepted with backend")
	}
}

// TestBackendSweepValueSizes exercises payload sizes from scalar-only to
// multi-KB through the full sharded runtime.
func TestBackendSweepValueSizes(t *testing.T) {
	for _, size := range []int{0, 8, 4096} {
		t.Run(fmt.Sprintf("%dB", size), func(t *testing.T) {
			checkReplayInvariant(t, "2pl-sharded4/woundwait",
				func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4) },
				workload.Banking(), 12, 6, size, 11, 0)
		})
	}
}
