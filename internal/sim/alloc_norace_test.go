//go:build !race

package sim

// raceEnabled reports whether this test binary was built with the race
// detector; see alloc_race_test.go.
const raceEnabled = false
