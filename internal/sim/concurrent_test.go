package sim

// Dedicated concurrency coverage for the sharded dispatch runtime: every
// test here drives per-shard dispatch loops from many user goroutines and
// is meant to run under `go test -race` (CI does; see also the hotspot
// workload below, which maximizes cross-goroutine conflict traffic).

import (
	"fmt"
	"testing"
	"time"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/workload"
)

// concurrentSchedulers enumerates the ConcurrentScheduler configurations
// the sharded runtime must drive to completion.
func concurrentSchedulers() []online.ConcurrentScheduler {
	return []online.ConcurrentScheduler{
		online.NewConcurrentStrict2PL(lockmgr.Detect, 4),
		online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4),
		online.NewConcurrentStrict2PL(lockmgr.NoWait, 16),
		online.NewMutexed(online.NewStrict2PL(lockmgr.WoundWait)),
		online.NewMutexed(online.NewOCC()),
		online.NewSharded(4, func() online.Scheduler { return online.NewSGTAborting() }),
		online.NewSharded(4, func() online.Scheduler { return online.NewSerial() }),
		online.NewSharded(4, func() online.Scheduler { return online.NewStrict2PL(lockmgr.WoundWait) }),
	}
}

// TestShardedDispatchCompletes: every concurrent scheduler must commit all
// jobs through the per-shard dispatch loops, with a serializable output.
func TestShardedDispatchCompletes(t *testing.T) {
	inst := Instantiate(workload.Banking(), 12)
	for _, cs := range concurrentSchedulers() {
		m, err := Run(Config{System: inst, Sched: cs, Users: 6, Seed: 99})
		if err != nil {
			t.Fatalf("%s: %v", cs.Name(), err)
		}
		if m.Committed != 12 {
			t.Fatalf("%s committed %d of 12 (aborts=%d breaks=%d)", cs.Name(), m.Committed, m.Aborts, m.DeadlockBreaks)
		}
		if !m.Output.Legal(inst.Format()) {
			t.Fatalf("%s output illegal", cs.Name())
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Errorf("%s produced non-serializable output", cs.Name())
		}
	}
}

// TestShardedDispatchHotspot is the high-contention stress: every
// transaction hammers the same variable, so all traffic lands on one shard
// and the runtime's parking, kicking, wounding and deadlock-breaking paths
// all fire while other shards idle.
func TestShardedDispatchHotspot(t *testing.T) {
	hot := (&core.System{
		Name: "hotspot",
		Txs: []core.Transaction{
			{Steps: []core.Step{
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
				{Var: "h", Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
			}},
		},
	}).Normalize()
	inst := Instantiate(hot, 16)
	for _, cs := range concurrentSchedulers() {
		m, err := Run(Config{System: inst, Sched: cs, Users: 8, Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", cs.Name(), err)
		}
		if m.Committed != 16 {
			t.Fatalf("%s committed %d of 16 (aborts=%d breaks=%d)", cs.Name(), m.Committed, m.Aborts, m.DeadlockBreaks)
		}
	}
}

// TestShardedDispatchDeadlockProne: the cross pattern under detection-based
// 2PL exercises the global waits-for view and the breaker across shards.
func TestShardedDispatchDeadlockProne(t *testing.T) {
	inst := Instantiate(workload.Cross(), 10)
	for seed := int64(1); seed <= 5; seed++ {
		m, err := Run(Config{
			System:   inst,
			Sched:    online.NewConcurrentStrict2PL(lockmgr.Detect, 4),
			Users:    5,
			Seed:     seed,
			ExecTime: 50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != 10 {
			t.Fatalf("seed %d: committed %d of 10", seed, m.Committed)
		}
		csr, _, err := conflict.Serializable(inst, m.Output)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Errorf("seed %d: non-serializable output", seed)
		}
	}
}

// TestShardedDispatchLowContention: disjoint working sets across many
// shards — the scalability sweet spot — must commit without a single abort
// under lock-based scheduling.
func TestShardedDispatchLowContention(t *testing.T) {
	sys := &core.System{Name: "disjoint"}
	for i := 0; i < 16; i++ {
		v := core.Var(fmt.Sprintf("d%d", i))
		sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
			{Var: v, Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
			{Var: v, Kind: core.Update, Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }},
		}})
	}
	sys.Normalize()
	m, err := Run(Config{System: sys, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, 16), Users: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if m.Committed != 16 {
		t.Fatalf("committed %d of 16", m.Committed)
	}
	if m.Aborts != 0 || m.DeadlockBreaks != 0 {
		t.Errorf("disjoint workload saw aborts=%d breaks=%d", m.Aborts, m.DeadlockBreaks)
	}
}

// TestShardedDispatchMetrics: the Section 6 latency decomposition must
// survive the sharded runtime.
func TestShardedDispatchMetrics(t *testing.T) {
	inst := Instantiate(workload.Chain(), 6)
	m, err := Run(Config{System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, 4), Users: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.TxLatencyNs.N() < 6 {
		t.Errorf("latency samples = %d", m.TxLatencyNs.N())
	}
	if m.SchedNs.N()+m.WaitNs.N() == 0 {
		t.Error("no request samples")
	}
	if m.Throughput <= 0 || m.Elapsed <= 0 {
		t.Error("throughput/elapsed not computed")
	}
}
