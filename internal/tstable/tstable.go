// Package tstable provides the sharded atomic timestamp table behind the
// natively concurrent timestamp-ordering scheduler (online.ConcurrentTO).
//
// Timestamp ordering needs two counters per variable — the largest
// timestamp that ever read it and the largest that ever wrote it — and its
// whole hot path is "compare my timestamp against them, then raise them".
// A single-threaded TO keeps them in maps behind the scheduler's implicit
// serialization; this table makes them safe for the concurrent runtime
// without any mutex:
//
//   - The variable set is fixed per run (transaction systems declare their
//     variables), so New pre-builds one plain map per shard from variable
//     to a heap-allocated Entry and never mutates the maps afterwards.
//     Lookups are pure reads of immutable maps — no lock, no sync.Map
//     overhead on the hot path. Reset zeroes the timestamps so a table can
//     be reused across runs over the same variable set.
//   - An Entry's read/write timestamps are atomics updated by a CAS
//     max-loop (MaxRead/MaxWrite): concurrent updaters race forward only,
//     so per-variable timestamps are monotonically non-decreasing — the
//     invariant every TO argument rests on.
//   - Shards are partitioned with lockmgr.ShardOfVar, the engine's single
//     partition function, so the table's layout agrees with dispatch
//     routing and lock/storage ownership. (With immutable maps the shards
//     are a layout nicety, not a synchronization domain.)
//
// Variables outside the declared set (none in normal operation) fall back
// to a sync.Map so the table degrades safely instead of panicking.
package tstable

import (
	"sync"
	"sync/atomic"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// Entry holds one variable's timestamp pair. The zero value (both
// timestamps 0) means "never read, never written"; transaction timestamps
// start at 1, so 0 compares below every live timestamp.
type Entry struct {
	read  atomic.Int64
	write atomic.Int64
}

// ReadTS returns the largest timestamp that read the variable.
//
//optcc:hotpath
func (e *Entry) ReadTS() int64 { return e.read.Load() }

// WriteTS returns the largest timestamp that wrote the variable.
//
//optcc:hotpath
func (e *Entry) WriteTS() int64 { return e.write.Load() }

// MaxRead raises the read timestamp to at least ts (CAS max-loop; a losing
// CAS re-reads and retries only while ts is still ahead).
//
//optcc:hotpath
func (e *Entry) MaxRead(ts int64) { maxUpdate(&e.read, ts) }

// MaxWrite raises the write timestamp to at least ts.
//
//optcc:hotpath
func (e *Entry) MaxWrite(ts int64) { maxUpdate(&e.write, ts) }

// CASWrite installs new as the write timestamp iff it still holds old —
// the raw CAS behind the multiversion scheduler's first-writer-wins write
// claims (online.ConcurrentMV), which encodes an uncommitted claim as the
// negative owner timestamp and must release it to an exact value rather
// than a monotone max. Schedulers using CASWrite own the entry's write
// field's encoding outright and must not mix it with MaxWrite.
//
//optcc:hotpath
func (e *Entry) CASWrite(old, new int64) bool { return e.write.CompareAndSwap(old, new) }

//optcc:hotpath
func maxUpdate(a *atomic.Int64, ts int64) {
	for {
		cur := a.Load()
		if ts <= cur || a.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// Table is the sharded timestamp table. Construct with New; the zero value
// is unusable.
type Table struct {
	shards []map[core.Var]*Entry
	extra  sync.Map // core.Var → *Entry, for undeclared variables only
}

// New builds a table for the given variable set, partitioned across the
// given shard count (minimum 1). All timestamps start at zero.
func New(vars []core.Var, shards int) *Table {
	if shards < 1 {
		shards = 1
	}
	t := &Table{shards: make([]map[core.Var]*Entry, shards)}
	for i := range t.shards {
		t.shards[i] = map[core.Var]*Entry{}
	}
	for _, v := range vars {
		t.shards[lockmgr.ShardOfVar(v, shards)][v] = &Entry{}
	}
	return t
}

// NumShards returns the shard count.
func (t *Table) NumShards() int { return len(t.shards) }

// Entry returns the timestamp entry of v, creating a fallback entry if v
// was not declared at construction. The declared-variable path is
// lock-free: one immutable map lookup.
//
//optcc:hotpath
func (t *Table) Entry(v core.Var) *Entry {
	if e, ok := t.shards[lockmgr.ShardOfVar(v, len(t.shards))][v]; ok {
		return e
	}
	//cclint:ignore hotpath undeclared-variable fallback; unreachable when the run declares its variable set
	if e, ok := t.extra.Load(v); ok {
		return e.(*Entry)
	}
	//cclint:ignore hotpath undeclared-variable fallback; unreachable when the run declares its variable set
	e, _ := t.extra.LoadOrStore(v, &Entry{})
	return e.(*Entry)
}

// Reset zeroes every timestamp (declared and fallback entries), preserving
// the entry layout. Not safe for use concurrently with Entry updates; call
// it between runs, as Begin does.
func (t *Table) Reset() {
	for _, m := range t.shards {
		for _, e := range m {
			e.read.Store(0)
			e.write.Store(0)
		}
	}
	t.extra.Range(func(_, v any) bool {
		e := v.(*Entry)
		e.read.Store(0)
		e.write.Store(0)
		return true
	})
}
