package tstable

import (
	"fmt"
	"sync"
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

func TestBasicMaxUpdate(t *testing.T) {
	tab := New([]core.Var{"x", "y"}, 4)
	e := tab.Entry("x")
	if e.ReadTS() != 0 || e.WriteTS() != 0 {
		t.Fatal("fresh entry not zero")
	}
	e.MaxRead(5)
	e.MaxRead(3) // lower: must not regress
	e.MaxWrite(7)
	e.MaxWrite(7)
	if e.ReadTS() != 5 || e.WriteTS() != 7 {
		t.Fatalf("got read=%d write=%d", e.ReadTS(), e.WriteTS())
	}
	if tab.Entry("x") != e {
		t.Fatal("Entry not stable for declared variable")
	}
	if tab.Entry("y") == e {
		t.Fatal("distinct variables share an entry")
	}
}

func TestFallbackEntry(t *testing.T) {
	tab := New([]core.Var{"x"}, 2)
	e := tab.Entry("undeclared")
	e.MaxWrite(9)
	if tab.Entry("undeclared") != e {
		t.Fatal("fallback entry not stable")
	}
	if tab.Entry("undeclared").WriteTS() != 9 {
		t.Fatal("fallback entry lost its timestamp")
	}
}

func TestReset(t *testing.T) {
	tab := New([]core.Var{"x"}, 1)
	tab.Entry("x").MaxRead(4)
	tab.Entry("zz").MaxWrite(8)
	tab.Reset()
	if tab.Entry("x").ReadTS() != 0 || tab.Entry("zz").WriteTS() != 0 {
		t.Fatal("Reset left timestamps behind")
	}
}

func TestShardLayoutMatchesPartition(t *testing.T) {
	vars := make([]core.Var, 64)
	for i := range vars {
		vars[i] = core.Var(fmt.Sprintf("v%d", i))
	}
	tab := New(vars, 8)
	if tab.NumShards() != 8 {
		t.Fatalf("NumShards = %d", tab.NumShards())
	}
	for _, v := range vars {
		sh := lockmgr.ShardOfVar(v, 8)
		if _, ok := tab.shards[sh][v]; !ok {
			t.Fatalf("%s not in shard %d", v, sh)
		}
	}
}

// TestConcurrentMaxMonotonic hammers one entry from many goroutines and
// checks the two invariants the scheduler relies on: a timestamp observed
// by any reader never decreases, and the final value is the maximum ever
// offered. Run under -race in the CI stress job.
func TestConcurrentMaxMonotonic(t *testing.T) {
	const (
		workers = 8
		perW    = 2000
	)
	tab := New([]core.Var{"hot"}, 4)
	e := tab.Entry("hot")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastR, lastW := int64(0), int64(0)
			for i := 0; i < perW; i++ {
				ts := int64(w*perW + i + 1)
				e.MaxRead(ts)
				e.MaxWrite(ts)
				if r := e.ReadTS(); r < lastR {
					t.Errorf("read timestamp regressed: %d after %d", r, lastR)
					return
				} else {
					lastR = r
				}
				if wts := e.WriteTS(); wts < lastW {
					t.Errorf("write timestamp regressed: %d after %d", wts, lastW)
					return
				} else {
					lastW = wts
				}
			}
		}(w)
	}
	wg.Wait()
	want := int64(workers * perW)
	if e.ReadTS() != want || e.WriteTS() != want {
		t.Fatalf("final read=%d write=%d, want %d", e.ReadTS(), e.WriteTS(), want)
	}
}
