package geometry

import (
	"strings"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/locking"
)

// figure3System reproduces Figure 3's setting: two transactions that both
// lock X and Y, in opposite orders, so that the progress space contains
// two blocks and a deadlock region.
func figure3System(t *testing.T) *locking.System {
	t.Helper()
	sys := (&core.System{
		Name: "figure3",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update},
				{Var: "y", Kind: core.Update},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "y", Kind: core.Update},
				{Var: "x", Kind: core.Update},
			}},
		},
	}).Normalize()
	ls, err := locking.TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestSpaceConstruction(t *testing.T) {
	ls := figure3System(t)
	sp, err := NewSpace(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.N1 != 6 || sp.N2 != 6 {
		t.Fatalf("extents = %d×%d, want 6×6 (2PL ops)", sp.N1, sp.N2)
	}
	if len(sp.Blocks) != 2 {
		t.Fatalf("blocks = %v, want 2 (X and Y)", sp.Blocks)
	}
	for _, b := range sp.Blocks {
		if b.X1 > b.X2 || b.Y1 > b.Y2 {
			t.Errorf("degenerate block %v", b)
		}
	}
}

func TestNewSpaceErrors(t *testing.T) {
	ls := figure3System(t)
	if _, err := NewSpace(ls, 0, 0); err == nil {
		t.Error("same transaction twice accepted")
	}
	if _, err := NewSpace(ls, 0, 9); err == nil {
		t.Error("out-of-range transaction accepted")
	}
}

func TestDeadlockRegionExists(t *testing.T) {
	// Opposite lock orders create the classic deadlock region D of
	// Figure 3.
	ls := figure3System(t)
	sp, err := NewSpace(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.HasDeadlock() {
		t.Fatal("no deadlock region in the Figure 3 configuration")
	}
	// Every doomed point must be reachable and not forbidden.
	r := sp.ReachableFromO()
	for _, p := range sp.DeadlockRegion() {
		if !r[p.X][p.Y] {
			t.Errorf("doomed point %v not reachable", p)
		}
		if sp.Forbidden(p) {
			t.Errorf("doomed point %v inside a block", p)
		}
	}
}

func TestNoDeadlockWithAlignedLockOrder(t *testing.T) {
	// Same lock order in both transactions: no deadlock region.
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
		},
	}).Normalize()
	ls, err := locking.TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpace(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.HasDeadlock() {
		t.Errorf("aligned lock order produced deadlock region %v", sp.DeadlockRegion())
	}
}

func TestPathsAndSides(t *testing.T) {
	ls := figure3System(t)
	sp, err := NewSpace(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Serial path: all of T1 then all of T2 — all blocks above.
	moves := make([]int, 0, 12)
	for i := 0; i < 6; i++ {
		moves = append(moves, 0)
	}
	for i := 0; i < 6; i++ {
		moves = append(moves, 1)
	}
	path, err := sp.PathFromMoves(moves)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range sp.Blocks {
		side, err := sp.SideOf(path, b)
		if err != nil {
			t.Fatal(err)
		}
		if side != BlockAbove {
			t.Errorf("block %v side = %v on the lower-right serial path", b, side)
		}
	}
	ok, err := sp.PathSerializable(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial path judged non-serializable")
	}
}

func TestPathValidation(t *testing.T) {
	ls := figure3System(t)
	sp, _ := NewSpace(ls, 0, 1)
	if _, err := sp.PathFromMoves([]int{2}); err == nil {
		t.Error("invalid move accepted")
	}
	long := make([]int, 7)
	if _, err := sp.PathFromMoves(long); err == nil {
		t.Error("path leaving grid accepted")
	}
	// A path driving straight into a block: T1 past its lock of X, then
	// T2 tries to pass its own lock of X.
	if _, err := sp.MovesFromOpOrder([]int{9}); err == nil {
		t.Error("bad op order accepted")
	}
}

// 2PL: all blocks share a common point (Figure 4(d)), hence no avoiding
// path can separate them, hence every 2PL execution is serializable.
func TestTwoPhaseCommonPointAndSafety(t *testing.T) {
	for _, txs := range [][]core.Transaction{
		{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "y", Kind: core.Update}, {Var: "x", Kind: core.Update}}},
		},
		{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}, {Var: "z", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "z", Kind: core.Update}, {Var: "x", Kind: core.Update}}},
		},
	} {
		sys := (&core.System{Txs: txs}).Normalize()
		ls, err := locking.TwoPhase{}.Transform(sys)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := NewSpace(ls, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(sp.Blocks) >= 2 {
			if _, ok := sp.CommonPoint(); !ok {
				t.Errorf("2PL blocks %v share no common point", sp.Blocks)
			}
		}
		if sp.SeparatingPathExists() {
			t.Error("separating path exists under 2PL")
		}
	}
}

// A deliberately non-two-phase locking (lock, use, unlock per access)
// leaves disjoint blocks that a path can separate: the geometric picture
// of an incorrect locking policy (Figure 4(c)).
func TestNonTwoPhaseLockingAdmitsSeparation(t *testing.T) {
	ls := &locking.System{
		Base: (&core.System{
			Txs: []core.Transaction{
				{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
				{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
			},
		}).Normalize(),
		Policy: "per-access",
		Txs: []locking.Tx{
			{Name: "T1", Ops: []locking.Op{
				{Kind: locking.OpLock, LV: "X"},
				{Kind: locking.OpStep, Step: core.StepID{Tx: 0, Idx: 0}},
				{Kind: locking.OpUnlock, LV: "X"},
				{Kind: locking.OpLock, LV: "Y"},
				{Kind: locking.OpStep, Step: core.StepID{Tx: 0, Idx: 1}},
				{Kind: locking.OpUnlock, LV: "Y"},
			}},
			{Name: "T2", Ops: []locking.Op{
				{Kind: locking.OpLock, LV: "X"},
				{Kind: locking.OpStep, Step: core.StepID{Tx: 1, Idx: 0}},
				{Kind: locking.OpUnlock, LV: "X"},
				{Kind: locking.OpLock, LV: "Y"},
				{Kind: locking.OpStep, Step: core.StepID{Tx: 1, Idx: 1}},
				{Kind: locking.OpUnlock, LV: "Y"},
			}},
		},
	}
	if err := ls.Validate(); err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpace(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.SeparatingPathExists() {
		t.Fatal("per-access locking should admit a separating (non-serializable) path")
	}
	if _, ok := sp.CommonPoint(); ok {
		t.Error("disjoint blocks report a common point")
	}
}

// Path serializability coincides with conflict serializability of the data
// projection for well-formed locked pairs.
func TestPathSerializabilityMatchesConflict(t *testing.T) {
	ls := figure3System(t)
	sp, err := NewSpace(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rec func(moves []int, a, b int)
	rec = func(moves []int, a, b int) {
		if a == sp.N1 && b == sp.N2 {
			path, err := sp.PathFromMoves(moves)
			if err != nil {
				return // hits a block: not an execution
			}
			geoOK, err := sp.PathSerializable(path)
			if err != nil {
				t.Fatal(err)
			}
			data, err := sp.DataProjection(moves)
			if err != nil {
				t.Fatal(err)
			}
			csr, _, err := conflict.Serializable(ls.Base, data)
			if err != nil {
				t.Fatal(err)
			}
			if geoOK != csr {
				t.Fatalf("moves %v: geometric=%v conflict=%v (data %v)", moves, geoOK, csr, data)
			}
			return
		}
		if a < sp.N1 {
			rec(append(moves, 0), a+1, b)
		}
		if b < sp.N2 {
			rec(append(moves, 1), a, b+1)
		}
	}
	rec(nil, 0, 0)
}

func TestDataProjectionErrors(t *testing.T) {
	ls := figure3System(t)
	sp, _ := NewSpace(ls, 0, 1)
	if _, err := sp.DataProjection([]int{5}); err == nil {
		t.Error("invalid move accepted")
	}
	if _, err := sp.DataProjection(make([]int, 7)); err == nil {
		t.Error("overlong projection accepted")
	}
}

func TestRenderContainsGlyphs(t *testing.T) {
	ls := figure3System(t)
	sp, _ := NewSpace(ls, 0, 1)
	moves := []int{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	path, err := sp.PathFromMoves(moves)
	if err != nil {
		t.Fatal(err)
	}
	out := sp.Render(path)
	for _, glyph := range []string{"#", "D", "*"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("render missing %q:\n%s", glyph, out)
		}
	}
	if !strings.Contains(sp.Render(nil), "O") {
		t.Error("render without path missing origin")
	}
}

func TestBlockHelpers(t *testing.T) {
	b := Block{LV: "X", X1: 1, X2: 3, Y1: 2, Y2: 4}
	if !b.Contains(Point{2, 3}) || b.Contains(Point{0, 3}) {
		t.Error("Contains wrong")
	}
	o := Block{LV: "Y", X1: 3, X2: 5, Y1: 4, Y2: 6}
	if !b.Overlaps(o) {
		t.Error("touching blocks should overlap")
	}
	far := Block{LV: "Z", X1: 9, X2: 9, Y1: 9, Y2: 9}
	if b.Overlaps(far) {
		t.Error("distant blocks overlap")
	}
	if b.String() == "" {
		t.Error("empty block string")
	}
	if BlockAbove.String() != "above" || BlockBelow.String() != "below" || SideUnknown.String() != "unknown" {
		t.Error("side strings")
	}
}

func TestMemorylessness(t *testing.T) {
	// Figure 4(a): different histories reaching the same progress point
	// are indistinguishable to any lock-implemented scheduler. Two
	// different move orders reach the same point; the space state (which
	// is a pure function of the point) is identical.
	ls := figure3System(t)
	sp, _ := NewSpace(ls, 0, 1)
	p1, err := sp.PathFromMoves([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sp.PathFromMoves([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p1[len(p1)-1] != p2[len(p2)-1] {
		t.Error("different orders should reach the same progress point")
	}
}
