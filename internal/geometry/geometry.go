// Package geometry implements the geometry of locking (Section 5.3 of Kung
// & Papadimitriou 1979) for pairs of locked transactions.
//
// The joint progress of two transactions T1 (horizontal) and T2 (vertical)
// is a point in the integer "progress space" [0,n1] × [0,n2], where ni is
// the number of ops (lock, unlock and data steps) of Ti. Locking imposes
// forbidden rectangular regions — blocks — where both transactions would
// hold the same locking variable. A schedule corresponds to a monotone
// staircase path from the origin O to the final point F avoiding all
// blocks.
//
// The package computes:
//
//   - the blocks of a locked system (Figure 3),
//   - the deadlock region D: reachable points from which F cannot be
//     reached (Figure 3),
//   - the side (above/below) a path passes each block, hence whether the
//     path is homotopic to a serial schedule — the elementary-transformation
//     serializability test of Figure 4(b,c),
//   - the 2PL common-point property that keeps all blocks connected
//     (Figure 4(d)),
//   - ASCII renderings of all of the above.
package geometry

import (
	"fmt"
	"strings"

	"optcc/internal/core"
	"optcc/internal/locking"
)

// Point is a progress point: X ops of the first transaction and Y ops of
// the second have executed.
type Point struct {
	X, Y int
}

// Block is a forbidden rectangle: while T1's progress lies in [X1, X2] and
// T2's in [Y1, Y2] (inclusive, in progress coordinates), both transactions
// would hold LV.
type Block struct {
	LV             string
	X1, X2, Y1, Y2 int
}

// Contains reports whether the progress point lies inside the block.
func (b Block) Contains(p Point) bool {
	return p.X >= b.X1 && p.X <= b.X2 && p.Y >= b.Y1 && p.Y <= b.Y2
}

// Overlaps reports whether two blocks share a point.
func (b Block) Overlaps(o Block) bool {
	return b.X1 <= o.X2 && o.X1 <= b.X2 && b.Y1 <= o.Y2 && o.Y1 <= b.Y2
}

// String renders the block.
func (b Block) String() string {
	return fmt.Sprintf("%s:[%d,%d]x[%d,%d]", b.LV, b.X1, b.X2, b.Y1, b.Y2)
}

// Side locates a block relative to a monotone path that avoids it.
type Side int

const (
	// SideUnknown: the path never visits the block's column range (cannot
	// happen for complete paths, which span every column).
	SideUnknown Side = iota
	// BlockAbove: the path passes below-right of the block.
	BlockAbove
	// BlockBelow: the path passes above-left of the block.
	BlockBelow
)

// String names the side.
func (s Side) String() string {
	switch s {
	case BlockAbove:
		return "above"
	case BlockBelow:
		return "below"
	default:
		return "unknown"
	}
}

// Space is the progress space of two locked transactions.
type Space struct {
	// LS is the locked system; T1 and T2 index the two transactions.
	LS     *locking.System
	T1, T2 int
	// N1, N2 are the op counts (the extents of the axes).
	N1, N2 int
	// Blocks are the forbidden rectangles.
	Blocks []Block
}

// NewSpace builds the progress space for transactions t1 (horizontal axis)
// and t2 (vertical axis) of a locked system. A lock variable held during
// span [l, u) of ops produces, for each pair of spans across the two
// transactions, the block [l1+1, u1] × [l2+1, u2]: progress p means "p ops
// executed", so the lock is held from just after the lock op to the point
// before the unlock executes.
func NewSpace(ls *locking.System, t1, t2 int) (*Space, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	if t1 == t2 || t1 < 0 || t2 < 0 || t1 >= len(ls.Txs) || t2 >= len(ls.Txs) {
		return nil, fmt.Errorf("geometry: invalid transaction pair (%d, %d)", t1, t2)
	}
	sp := &Space{
		LS: ls, T1: t1, T2: t2,
		N1: len(ls.Txs[t1].Ops),
		N2: len(ls.Txs[t2].Ops),
	}
	spans1 := ls.LockSpans(t1)
	spans2 := ls.LockSpans(t2)
	for lv, ss1 := range spans1 {
		ss2, ok := spans2[lv]
		if !ok {
			continue
		}
		for _, s1 := range ss1 {
			for _, s2 := range ss2 {
				sp.Blocks = append(sp.Blocks, Block{
					LV: lv,
					X1: s1[0] + 1, X2: s1[1],
					Y1: s2[0] + 1, Y2: s2[1],
				})
			}
		}
	}
	return sp, nil
}

// Forbidden reports whether the progress point lies inside some block.
func (sp *Space) Forbidden(p Point) bool {
	for _, b := range sp.Blocks {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// inGrid reports whether p is a valid progress point.
func (sp *Space) inGrid(p Point) bool {
	return p.X >= 0 && p.X <= sp.N1 && p.Y >= 0 && p.Y <= sp.N2
}

// ReachableFromO computes the set of points reachable from the origin by
// monotone moves avoiding blocks, as a [N1+1][N2+1] boolean grid.
func (sp *Space) ReachableFromO() [][]bool {
	r := newGrid(sp.N1+1, sp.N2+1)
	if !sp.Forbidden(Point{0, 0}) {
		r[0][0] = true
	}
	for x := 0; x <= sp.N1; x++ {
		for y := 0; y <= sp.N2; y++ {
			if r[x][y] || sp.Forbidden(Point{x, y}) {
				continue
			}
			if x > 0 && r[x-1][y] {
				r[x][y] = true
			}
			if y > 0 && r[x][y-1] {
				r[x][y] = true
			}
		}
	}
	return r
}

// CanReachF computes the set of points from which F = (N1, N2) is
// reachable by monotone moves avoiding blocks.
func (sp *Space) CanReachF() [][]bool {
	s := newGrid(sp.N1+1, sp.N2+1)
	if !sp.Forbidden(Point{sp.N1, sp.N2}) {
		s[sp.N1][sp.N2] = true
	}
	for x := sp.N1; x >= 0; x-- {
		for y := sp.N2; y >= 0; y-- {
			if s[x][y] || sp.Forbidden(Point{x, y}) {
				continue
			}
			if x < sp.N1 && s[x+1][y] {
				s[x][y] = true
			}
			if y < sp.N2 && s[x][y+1] {
				s[x][y] = true
			}
		}
	}
	return s
}

// DeadlockRegion returns the points that are reachable from O, not
// forbidden, and from which F cannot be reached — region D of Figure 3.
// Any progress curve entering D is doomed.
func (sp *Space) DeadlockRegion() []Point {
	r := sp.ReachableFromO()
	s := sp.CanReachF()
	var out []Point
	for x := 0; x <= sp.N1; x++ {
		for y := 0; y <= sp.N2; y++ {
			if r[x][y] && !s[x][y] {
				out = append(out, Point{x, y})
			}
		}
	}
	return out
}

// HasDeadlock reports whether the deadlock region is non-empty.
func (sp *Space) HasDeadlock() bool { return len(sp.DeadlockRegion()) > 0 }

func newGrid(nx, ny int) [][]bool {
	g := make([][]bool, nx)
	cells := make([]bool, nx*ny)
	for i := range g {
		g[i], cells = cells[:ny], cells[ny:]
	}
	return g
}

// PathFromMoves converts a move sequence (0 = T1 advances, 1 = T2
// advances) into the path of visited points, verifying the path stays in
// the grid and avoids all blocks.
func (sp *Space) PathFromMoves(moves []int) ([]Point, error) {
	p := Point{0, 0}
	path := []Point{p}
	for i, m := range moves {
		switch m {
		case 0:
			p.X++
		case 1:
			p.Y++
		default:
			return nil, fmt.Errorf("geometry: move %d at %d invalid", m, i)
		}
		if !sp.inGrid(p) {
			return nil, fmt.Errorf("geometry: path leaves grid at %v", p)
		}
		if sp.Forbidden(p) {
			return nil, fmt.Errorf("geometry: path enters block at %v", p)
		}
		path = append(path, p)
	}
	return path, nil
}

// MovesFromOpOrder converts a two-transaction op interleaving (values must
// be the space's T1/T2 indices) to moves.
func (sp *Space) MovesFromOpOrder(order []int) ([]int, error) {
	moves := make([]int, len(order))
	for i, tx := range order {
		switch tx {
		case sp.T1:
			moves[i] = 0
		case sp.T2:
			moves[i] = 1
		default:
			return nil, fmt.Errorf("geometry: op order references transaction %d", tx)
		}
	}
	return moves, nil
}

// SideOf determines on which side of the path the block lies. The path
// must be complete (from O to F) and avoid the block; the side is well
// defined because a monotone path cannot cross a rectangle's row range
// within its column range without entering it.
func (sp *Space) SideOf(path []Point, b Block) (Side, error) {
	for _, p := range path {
		if p.X >= b.X1 && p.X <= b.X2 {
			if p.Y > b.Y2 {
				return BlockBelow, nil
			}
			if p.Y < b.Y1 {
				return BlockAbove, nil
			}
			return SideUnknown, fmt.Errorf("geometry: path point %v inside block %v", p, b)
		}
	}
	return SideUnknown, fmt.Errorf("geometry: path never spans block %v columns", b)
}

// PathSerializable reports whether the path is homotopic to a serial
// schedule: every block lies on the same side of the path (Figure 4(b)).
// Mixed sides mean the path separates blocks and is pinned away from both
// boundaries (Figure 4(c)).
func (sp *Space) PathSerializable(path []Point) (bool, error) {
	var above, below bool
	for _, b := range sp.Blocks {
		side, err := sp.SideOf(path, b)
		if err != nil {
			return false, err
		}
		switch side {
		case BlockAbove:
			above = true
		case BlockBelow:
			below = true
		}
	}
	return !(above && below), nil
}

// CommonPoint returns a point contained in every block, if one exists —
// the 2PL picture of Figure 4(d): all blocks share the phase-shift point
// u, which keeps them connected and forces every avoiding path to put them
// all on one side.
func (sp *Space) CommonPoint() (Point, bool) {
	if len(sp.Blocks) == 0 {
		return Point{}, false
	}
	x1, x2 := 0, sp.N1
	y1, y2 := 0, sp.N2
	for _, b := range sp.Blocks {
		if b.X1 > x1 {
			x1 = b.X1
		}
		if b.X2 < x2 {
			x2 = b.X2
		}
		if b.Y1 > y1 {
			y1 = b.Y1
		}
		if b.Y2 < y2 {
			y2 = b.Y2
		}
	}
	if x1 <= x2 && y1 <= y2 {
		return Point{x1, y1}, true
	}
	return Point{}, false
}

// SeparatingPathExists reports whether some complete monotone path avoiding
// all blocks leaves at least one block above and one below — i.e. whether
// the locked pair admits a non-serializable execution (Figure 4(c)). It
// uses dynamic programming over progress points × per-block side
// assignments.
func (sp *Space) SeparatingPathExists() bool {
	nb := len(sp.Blocks)
	if nb < 2 {
		return false
	}
	// side assignment encoded base-3: 0 unknown, 1 above, 2 below.
	pow := make([]int, nb+1)
	pow[0] = 1
	for i := 1; i <= nb; i++ {
		pow[i] = pow[i-1] * 3
	}
	sideAt := func(mask, i int) int { return (mask / pow[i]) % 3 }
	setSide := func(mask, i, s int) int { return mask + (s-sideAt(mask, i))*pow[i] }

	classify := func(p Point, mask int) (int, bool) {
		for i, b := range sp.Blocks {
			if p.X >= b.X1 && p.X <= b.X2 {
				var s int
				switch {
				case p.Y > b.Y2:
					s = 2 // block below path
				case p.Y < b.Y1:
					s = 1 // block above path
				default:
					return 0, false // inside block
				}
				cur := sideAt(mask, i)
				if cur == 0 {
					mask = setSide(mask, i, s)
				} else if cur != s {
					// Cannot happen geometrically; defensive.
					return 0, false
				}
			}
		}
		return mask, true
	}

	type state struct {
		p    Point
		mask int
	}
	start, ok := classify(Point{0, 0}, 0)
	if !ok {
		return false
	}
	seen := map[state]bool{{Point{0, 0}, start}: true}
	queue := []state{{Point{0, 0}, start}}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		if st.p.X == sp.N1 && st.p.Y == sp.N2 {
			hasAbove, hasBelow := false, false
			for i := 0; i < nb; i++ {
				switch sideAt(st.mask, i) {
				case 1:
					hasAbove = true
				case 2:
					hasBelow = true
				}
			}
			if hasAbove && hasBelow {
				return true
			}
			continue
		}
		for _, next := range []Point{{st.p.X + 1, st.p.Y}, {st.p.X, st.p.Y + 1}} {
			if !sp.inGrid(next) || sp.Forbidden(next) {
				continue
			}
			mask, ok := classify(next, st.mask)
			if !ok {
				continue
			}
			ns := state{next, mask}
			if !seen[ns] {
				seen[ns] = true
				queue = append(queue, ns)
			}
		}
	}
	return false
}

// DataProjection extracts the data schedule realized by a move sequence:
// the base-system steps executed along the path, in order.
func (sp *Space) DataProjection(moves []int) (core.Schedule, error) {
	pos := []int{0, 0}
	txs := []int{sp.T1, sp.T2}
	var data core.Schedule
	for _, m := range moves {
		if m != 0 && m != 1 {
			return nil, fmt.Errorf("geometry: invalid move %d", m)
		}
		tx := txs[m]
		if pos[m] >= len(sp.LS.Txs[tx].Ops) {
			return nil, fmt.Errorf("geometry: move past end of transaction %d", tx)
		}
		op := sp.LS.Txs[tx].Ops[pos[m]]
		if op.Kind == locking.OpStep {
			data = append(data, op.Step)
		}
		pos[m]++
	}
	return data, nil
}

// Render draws the progress space as ASCII art: '#' blocks, 'D' deadlock
// region, '*' the path (if given), 'O' origin, 'F' final point, '.'
// elsewhere. Rows are printed top-down (T2 progress decreasing).
func (sp *Space) Render(path []Point) string {
	doomed := map[Point]bool{}
	for _, p := range sp.DeadlockRegion() {
		doomed[p] = true
	}
	onPath := map[Point]bool{}
	for _, p := range path {
		onPath[p] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "progress space %s × %s (blocks: %v)\n",
		sp.LS.Txs[sp.T1].Name, sp.LS.Txs[sp.T2].Name, sp.Blocks)
	for y := sp.N2; y >= 0; y-- {
		for x := 0; x <= sp.N1; x++ {
			p := Point{x, y}
			var ch byte
			switch {
			case onPath[p]:
				ch = '*'
			case sp.Forbidden(p):
				ch = '#'
			case doomed[p]:
				ch = 'D'
			case x == 0 && y == 0:
				ch = 'O'
			case x == sp.N1 && y == sp.N2:
				ch = 'F'
			default:
				ch = '.'
			}
			b.WriteByte(ch)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}
