// Package wsr implements weak serializability (Section 4.3 of Kung &
// Papadimitriou 1979).
//
// A schedule h is weakly serializable — h ∈ WSR(T) — if, starting from any
// state E, executing h ends in a state achievable by some concatenation of
// transactions (possibly with repetitions and omissions of transactions)
// also starting from E. SR(T) ⊆ WSR(T); Theorem 4 states that the weak
// serialization scheduler (fixpoint WSR(T)) is optimal among all schedulers
// using all information except the integrity constraints.
//
// The definition quantifies over all states E and over all finite
// concatenations. This package decides membership over (i) a finite,
// caller-extensible set of probe states and (ii) concatenations up to a
// bounded length. For the algebraic workloads in this repository, whose
// step functions are affine, agreement on the default probe set implies
// agreement everywhere; the bound on concatenation length is documented per
// experiment.
package wsr

import (
	"fmt"
	"math/rand"

	"optcc/internal/core"
)

// Options configures a Checker.
type Options struct {
	// MaxConcat bounds the length (number of transaction executions) of
	// the concatenations searched. Zero means NumTxs + 2.
	MaxConcat int
	// States are the probe states E. Empty means DefaultStates(sys).
	States []core.DB
}

// DefaultStates returns the standard probe set for a system: the IC's
// consistent initial states, the all-zero and all-one states, and a small
// deterministic spread of pseudo-random states. Weak serializability
// quantifies over arbitrary states, not just consistent ones, so the probe
// set deliberately exceeds the IC generator.
func DefaultStates(sys *core.System) []core.DB {
	vars := sys.Vars()
	var out []core.DB
	out = append(out, sys.InitialStates()...)
	zero, one := core.DB{}, core.DB{}
	for _, v := range vars {
		zero[v] = 0
		one[v] = 1
	}
	out = append(out, zero, one)
	rng := rand.New(rand.NewSource(1979))
	for k := 0; k < 6; k++ {
		db := core.DB{}
		for _, v := range vars {
			db[v] = core.Value(rng.Intn(17) - 5)
		}
		out = append(out, db)
	}
	// Deduplicate by canonical string.
	seen := map[string]bool{}
	var uniq []core.DB
	for _, db := range out {
		k := db.String()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, db)
		}
	}
	return uniq
}

// Checker decides WSR(T) membership for one executable system, caching the
// set of serially achievable final states from every probe state.
type Checker struct {
	sys       *core.System
	maxConcat int
	states    []core.DB
	// achievable[i] maps a final-state key to the witnessing transaction
	// sequence, for probe state i.
	achievable []map[string][]int
}

// NewChecker prepares a checker. The system must be executable (every
// non-Read step interpreted).
func NewChecker(sys *core.System, opts Options) (*Checker, error) {
	if !sys.Executable() {
		return nil, fmt.Errorf("wsr: system %q is not executable; weak serializability needs the interpretations", sys.Name)
	}
	maxConcat := opts.MaxConcat
	if maxConcat <= 0 {
		maxConcat = sys.NumTxs() + 2
	}
	states := opts.States
	if len(states) == 0 {
		states = DefaultStates(sys)
	}
	c := &Checker{sys: sys, maxConcat: maxConcat, states: states}
	for _, e := range states {
		reach, err := c.reachable(e)
		if err != nil {
			return nil, err
		}
		c.achievable = append(c.achievable, reach)
	}
	return c, nil
}

// reachable computes, by breadth-first search over distinct states, every
// database state achievable from e by a concatenation of at most maxConcat
// transactions (the empty concatenation included), keyed by canonical
// state string and mapped to the first (shortest) witnessing sequence.
func (c *Checker) reachable(e core.DB) (map[string][]int, error) {
	type node struct {
		db  core.DB
		seq []int
	}
	start := e.Clone()
	for _, v := range c.sys.Vars() {
		if _, ok := start[v]; !ok {
			start[v] = 0
		}
	}
	out := map[string][]int{start.String(): {}}
	frontier := []node{{db: start, seq: nil}}
	for depth := 0; depth < c.maxConcat; depth++ {
		var next []node
		for _, nd := range frontier {
			for ti := 0; ti < c.sys.NumTxs(); ti++ {
				got, err := core.ExecSerialOrder(c.sys, []int{ti}, nd.db)
				if err != nil {
					return nil, err
				}
				k := got.String()
				if _, ok := out[k]; ok {
					continue
				}
				seq := append(append([]int(nil), nd.seq...), ti)
				out[k] = seq
				next = append(next, node{db: got, seq: seq})
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return out, nil
}

// States returns the probe states in use.
func (c *Checker) States() []core.DB { return c.states }

// Weak reports whether h ∈ WSR(T) over the probe set, and when it is,
// returns for the first probe state the witnessing transaction sequence.
func (c *Checker) Weak(h core.Schedule) (bool, []int, error) {
	if !h.Legal(c.sys.Format()) {
		return false, nil, fmt.Errorf("wsr: schedule %v not legal for format %v", h, c.sys.Format())
	}
	var witness []int
	for i, e := range c.states {
		final, err := core.Exec(c.sys, h, e)
		if err != nil {
			return false, nil, err
		}
		seq, ok := c.achievable[i][final.String()]
		if !ok {
			return false, nil, nil
		}
		if i == 0 {
			witness = seq
		}
	}
	return true, witness, nil
}

// Weak is a convenience wrapper constructing a one-shot checker.
func Weak(sys *core.System, h core.Schedule, opts Options) (bool, error) {
	c, err := NewChecker(sys, opts)
	if err != nil {
		return false, err
	}
	ok, _, err := c.Weak(h)
	return ok, err
}
