package wsr

import (
	"testing"

	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/schedule"
)

// figure1 is the interpreted transaction system of Figure 1:
// T1 = (x←x+1, x←2x), T2 = (x←x+1).
func figure1() *core.System {
	last := func(l []core.Value) core.Value { return l[len(l)-1] }
	return (&core.System{
		Name: "figure1",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
			}},
		},
	}).Normalize()
}

// oddOffset is a system with a history outside WSR: T1 = (x←x+1, x←x+1),
// T2 = (x←2x). The interleaving (T11, T21, T12) yields 2x+3, which no
// concatenation of (+2) and (×2) can produce.
func oddOffset() *core.System {
	last := func(l []core.Value) core.Value { return l[len(l)-1] }
	return (&core.System{
		Name: "oddoffset",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return last(l) + 1 }},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update, Fn: func(l []core.Value) core.Value { return 2 * last(l) }},
			}},
		},
	}).Normalize()
}

func TestFigure1HistoryIsWeaklySerializable(t *testing.T) {
	sys := figure1()
	c, err := NewChecker(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	ok, witness, err := c.Weak(h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Figure 1 history not in WSR; the paper shows it equals the serial history (T21, T11, T12)")
	}
	// Witness from the first probe state should be the serial order T2;T1.
	if len(witness) != 2 || witness[0] != 1 || witness[1] != 0 {
		t.Errorf("witness = %v, want [1 0]", witness)
	}
}

func TestFigure1HistoryNotHerbrandSerializable(t *testing.T) {
	// Sanity: the same history is NOT in SR(T) — this is exactly the gap
	// between Theorems 3 and 4.
	sys := figure1()
	hc, err := herbrand.NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	sr, _, err := hc.Serializable(h)
	if err != nil {
		t.Fatal(err)
	}
	if sr {
		t.Error("Figure 1 history unexpectedly in SR")
	}
}

func TestOddOffsetHistoryNotWeaklySerializable(t *testing.T) {
	sys := oddOffset()
	c, err := NewChecker(sys, Options{MaxConcat: 6})
	if err != nil {
		t.Fatal(err)
	}
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	ok, _, err := c.Weak(h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("2x+3 history judged weakly serializable")
	}
}

func TestSerialSchedulesAlwaysWeak(t *testing.T) {
	for _, sys := range []*core.System{figure1(), oddOffset()} {
		c, err := NewChecker(sys, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range schedule.Serials(sys.Format()) {
			ok, _, err := c.Weak(h)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("system %s: serial %v not weakly serializable", sys.Name, h)
			}
		}
	}
}

// SR ⊆ WSR on the Figure 1 system: every Herbrand-serializable schedule is
// weakly serializable.
func TestSRSubsetOfWSR(t *testing.T) {
	sys := figure1()
	hc, err := herbrand.NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := NewChecker(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		sr, _, err := hc.Serializable(h)
		if err != nil {
			t.Fatal(err)
		}
		if sr {
			weak, _, err := wc.Weak(h)
			if err != nil {
				t.Fatal(err)
			}
			if !weak {
				t.Errorf("%v in SR but not WSR", h)
			}
		}
		return true
	})
}

func TestWSRStrictlyLargerThanSROnFigure1(t *testing.T) {
	sys := figure1()
	hc, err := herbrand.NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := NewChecker(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srN, wsrN, total := 0, 0, 0
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		total++
		if sr, _, _ := hc.Serializable(h); sr {
			srN++
		}
		if weak, _, _ := wc.Weak(h); weak {
			wsrN++
		}
		return true
	})
	if total != 3 {
		t.Fatalf("|H| = %d, want 3 for format (2,1)", total)
	}
	if !(srN < wsrN) {
		t.Errorf("SR=%d, WSR=%d; want SR < WSR on Figure 1", srN, wsrN)
	}
	if wsrN != 3 {
		t.Errorf("WSR=%d, want all 3 schedules of Figure 1 weakly serializable", wsrN)
	}
}

func TestCheckerRejectsUninterpretedSystems(t *testing.T) {
	syntactic := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	if _, err := NewChecker(syntactic, Options{}); err == nil {
		t.Error("checker accepted uninterpreted system")
	}
}

func TestWeakRejectsIllegalSchedules(t *testing.T) {
	c, err := NewChecker(figure1(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Weak(core.Schedule{{Tx: 0, Idx: 1}}); err == nil {
		t.Error("illegal schedule accepted")
	}
}

func TestDefaultStatesCoverICAndExtremes(t *testing.T) {
	sys := figure1()
	states := DefaultStates(sys)
	if len(states) < 3 {
		t.Fatalf("only %d probe states", len(states))
	}
	seen := map[string]bool{}
	for _, s := range states {
		k := s.String()
		if seen[k] {
			t.Errorf("duplicate probe state %s", k)
		}
		seen[k] = true
	}
}

func TestWeakOneShotWrapper(t *testing.T) {
	sys := figure1()
	ok, err := Weak(sys, core.SerialSchedule(sys.Format(), []int{0, 1}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("serial schedule rejected by wrapper")
	}
}

func TestEmptyConcatenationCounts(t *testing.T) {
	// A system where one transaction is the identity: executing it equals
	// the empty concatenation.
	id := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Read}}},
		},
	}).Normalize()
	c, err := NewChecker(id, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, witness, err := c.Weak(core.Schedule{{Tx: 0, Idx: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("identity schedule not weakly serializable")
	}
	if len(witness) != 0 {
		t.Errorf("witness = %v, want the empty concatenation", witness)
	}
}
