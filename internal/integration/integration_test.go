// Package integration_test checks cross-module invariants that no single
// package can verify alone: Herbrand's theorem (symbolic equivalence
// implies concrete equivalence under every interpretation), the full
// fixpoint inclusion chain on randomized systems, agreement between the
// offline oracles and the online schedulers, and geometry versus conflict
// analysis on locked pairs.
package integration_test

import (
	"math/rand"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/info"
	"optcc/internal/locking"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/schedule"
	"optcc/internal/workload"
	"optcc/internal/wsr"
)

// randomSystem builds a seeded executable system small enough to enumerate.
func randomSystem(seed int64) *core.System {
	return workload.Random(workload.RandomConfig{
		NumTxs:   3,
		MinSteps: 1,
		MaxSteps: 2,
		NumVars:  2,
		Hotspot:  1,
	}, seed)
}

// Herbrand's theorem, used in the proof of Theorem 3: if two schedules have
// equal Herbrand execution results, they have equal results under every
// interpretation — in particular under the system's actual one.
func TestHerbrandEquivalenceImpliesConcreteEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := randomSystem(seed)
		checker, err := herbrand.NewChecker(sys)
		if err != nil {
			t.Fatal(err)
		}
		hs := schedule.All(sys.Format(), 100_000)
		inits := []core.DB{{"v0": 3, "v1": -2}, {"v0": 0, "v1": 0}, {"v0": 7, "v1": 11}}
		// Group schedules by Herbrand final; all members of a group must
		// agree concretely on every initial state.
		groups := map[string][]core.Schedule{}
		for _, h := range hs {
			f, err := checker.Final(h)
			if err != nil {
				t.Fatal(err)
			}
			groups[f.Key()] = append(groups[f.Key()], h)
		}
		for _, group := range groups {
			for _, init := range inits {
				want, err := core.Exec(sys, group[0], init)
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range group[1:] {
					got, err := core.Exec(sys, h, init)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Fatalf("seed %d: Herbrand-equal schedules %v and %v differ concretely: %v vs %v",
							seed, group[0], h, want, got)
					}
				}
			}
		}
	}
}

// Conflict equivalence implies Herbrand equivalence (swapping
// non-conflicting steps cannot change any variable's term).
func TestConflictEquivalenceImpliesHerbrandEquivalence(t *testing.T) {
	for seed := int64(20); seed < 35; seed++ {
		sys := randomSystem(seed)
		checker, err := herbrand.NewChecker(sys)
		if err != nil {
			t.Fatal(err)
		}
		hs := schedule.All(sys.Format(), 100_000)
		for i := 0; i < len(hs); i++ {
			for _, g := range schedule.Neighbors(hs[i]) {
				ce, err := conflict.Equivalent(sys, hs[i], g)
				if err != nil {
					t.Fatal(err)
				}
				if !ce {
					continue
				}
				he, err := checker.Equivalent(hs[i], g)
				if err != nil {
					t.Fatal(err)
				}
				if !he {
					t.Fatalf("seed %d: conflict-equivalent %v / %v not Herbrand-equivalent", seed, hs[i], g)
				}
			}
		}
	}
}

// The full inclusion chain serial ⊆ CSR ⊆ SR ⊆ WSR on randomized systems
// (C(T) is trivial for these since their IC is trivial).
func TestInclusionChainOnRandomSystems(t *testing.T) {
	for seed := int64(40); seed < 60; seed++ {
		sys := randomSystem(seed)
		hc, err := herbrand.NewChecker(sys)
		if err != nil {
			t.Fatal(err)
		}
		wc, err := wsr.NewChecker(sys, wsr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			csr, _, err := conflict.Serializable(sys, h)
			if err != nil {
				t.Fatal(err)
			}
			sr, _, err := hc.Serializable(h)
			if err != nil {
				t.Fatal(err)
			}
			weak, _, err := wc.Weak(h)
			if err != nil {
				t.Fatal(err)
			}
			if h.IsSerial() && !csr {
				t.Fatalf("seed %d: serial %v not CSR", seed, h)
			}
			if csr && !sr {
				t.Fatalf("seed %d: CSR %v not SR", seed, h)
			}
			if sr && !weak {
				t.Fatalf("seed %d: SR %v not WSR", seed, h)
			}
			return true
		})
	}
}

// The online SGT scheduler and the offline syntactic oracle agree whenever
// SGT passes a history: SGT's fixpoint (CSR) is inside SR.
func TestOnlineSGTInsideSyntacticOracle(t *testing.T) {
	for _, sys := range []*core.System{workload.Figure1(), workload.Chain(), workload.Cross()} {
		oracle, err := info.NewOracle(sys, info.Syntactic)
		if err != nil {
			t.Fatal(err)
		}
		sgt := online.NewSGT()
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			res, err := online.Replay(sys, sgt, h.Clone(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Undelayed {
				in, err := oracle.InFixpoint(h)
				if err != nil {
					t.Fatal(err)
				}
				if !in {
					t.Fatalf("%s: SGT passed %v but it is outside SR", sys.Name, h)
				}
			}
			return true
		})
	}
}

// Locking policies only ever emit correct schedules of the Theorem-2
// adversary system: its C(T) is exactly the serial schedules, so 2PL's
// output set on it must collapse to serial.
func TestTwoPhaseOnTheorem2AdversaryEmitsOnlySerial(t *testing.T) {
	sys := workload.Theorem2Adversary()
	ls, err := locking.TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := locking.Outputs(ls)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range outs {
		ok, err := core.ScheduleCorrect(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("2PL emitted incorrect schedule %v on the adversary", h)
		}
		if !h.IsSerial() {
			t.Errorf("2PL emitted non-serial %v; on this system only serial schedules are correct", h)
		}
	}
}

// End-to-end: every online scheduler executed over the banking system
// yields a final state reachable by some serial order — checked by
// executing the output schedule concretely and comparing against all 3!
// serial finals.
func TestOnlineOutputsReachSerialStates(t *testing.T) {
	sys := workload.Banking()
	init := core.DB{"A": 150, "B": 50, "S": 200, "C": 0}
	serialFinals := map[string]bool{}
	for _, s := range schedule.Serials(sys.Format()) {
		f, err := core.Exec(sys, s, init)
		if err != nil {
			t.Fatal(err)
		}
		serialFinals[f.String()] = true
	}
	rng := rand.New(rand.NewSource(99))
	var histories []core.Schedule
	for i := 0; i < 40; i++ {
		histories = append(histories, schedule.Random(sys.Format(), rng))
	}
	scheds := []online.Scheduler{
		online.NewSerial(),
		online.NewStrict2PL(lockmgr.WoundWait),
		online.NewConservative2PL(),
		online.NewSGT(),
		online.NewTO(),
		online.NewOCC(),
	}
	for _, sched := range scheds {
		for _, h := range histories {
			res, err := online.Replay(sys, sched, h, 0)
			if err != nil {
				t.Fatal(err)
			}
			final := res.FinalSchedule(sys)
			got, err := core.Exec(sys, final, init)
			if err != nil {
				t.Fatal(err)
			}
			if !serialFinals[got.String()] {
				t.Errorf("%s: output %v reaches non-serial state %v", sched.Name(), final, got)
			}
		}
	}
}

// Geometry agrees with LRS: every achievable output of a 2-transaction
// locked system corresponds to a monotone path avoiding its blocks, and
// conversely every complete avoiding path projects to an achievable output.
func TestGeometryPathsMatchLRSOutputs(t *testing.T) {
	sys := workload.Cross()
	ls, err := locking.TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	outSet, err := locking.OutputSet(ls)
	if err != nil {
		t.Fatal(err)
	}
	// Note: geometry import used below keeps the check honest against the
	// same block construction used by the figures.
	sp, err := geometryNewSpace(ls)
	if err != nil {
		t.Fatal(err)
	}
	fromPaths := map[string]bool{}
	var rec func(moves []int, a, b int)
	rec = func(moves []int, a, b int) {
		if a == sp.N1 && b == sp.N2 {
			if _, err := sp.PathFromMoves(moves); err != nil {
				return
			}
			data, err := sp.DataProjection(moves)
			if err != nil {
				t.Fatal(err)
			}
			fromPaths[data.Key()] = true
			return
		}
		if a < sp.N1 {
			rec(append(moves, 0), a+1, b)
		}
		if b < sp.N2 {
			rec(append(moves, 1), a, b+1)
		}
	}
	rec(nil, 0, 0)
	for k := range outSet {
		if !fromPaths[k] {
			t.Errorf("LRS output %s has no geometric path", k)
		}
	}
	for k := range fromPaths {
		if !outSet[k] {
			t.Errorf("geometric path projection %s not an LRS output", k)
		}
	}
}
