package integration_test

import (
	"optcc/internal/geometry"
	"optcc/internal/locking"
)

// geometryNewSpace builds the progress space of the first two transactions
// of a locked system.
func geometryNewSpace(ls *locking.System) (*geometry.Space, error) {
	return geometry.NewSpace(ls, 0, 1)
}
