package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run green and produce non-empty output; the
// in-experiment invariant checks (nesting, adversary coverage, strict
// separations) are the real assertions.
func TestEveryExperimentRuns(t *testing.T) {
	m, order := All()
	if len(m) != len(order) {
		t.Fatalf("All() returned %d runners for %d ordered ids", len(m), len(order))
	}
	for _, id := range order {
		if id == "E4" || id == "E8" || id == "E9" || id == "E11" || id == "E12" || id == "E13" || id == "E15" {
			continue // covered by the TestE*Quick variants to keep the suite fast
		}
		r, err := m[id]()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id {
			t.Errorf("%s returned result id %s", id, r.ID)
		}
		out := r.String()
		if len(out) < 40 {
			t.Errorf("%s output suspiciously small:\n%s", id, out)
		}
		md := r.Markdown()
		if !strings.HasPrefix(md, "## "+id) {
			t.Errorf("%s markdown header wrong", id)
		}
	}
}

func TestE4Quick(t *testing.T) {
	r, err := E4Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E4 quick tables = %d", len(r.Tables))
	}
}

func TestE8Quick(t *testing.T) {
	r, err := E8Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E8 quick tables = %d", len(r.Tables))
	}
	// Each table compares the central baseline with every sharded config.
	for _, tbl := range r.Tables {
		if got := strings.Count(tbl.String(), "2pl"); got < 3 {
			t.Errorf("E8 table missing rows:\n%s", tbl.String())
		}
	}
}

func TestE9Quick(t *testing.T) {
	r, err := E9Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E9 quick tables = %d", len(r.Tables))
	}
	// Each table carries the central baseline plus the sharded configs; the
	// runner itself asserts the committed-state-equals-replay invariant.
	for _, tbl := range r.Tables {
		if got := strings.Count(tbl.String(), "2pl"); got < 2 {
			t.Errorf("E9 table missing rows:\n%s", tbl.String())
		}
	}
}

func TestE10Quick(t *testing.T) {
	r, err := E10Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E10 quick tables = %d", len(r.Tables))
	}
	// One row per batch size; the runner itself asserts all jobs committed
	// and the committed-state-equals-replay invariant per batch size.
	if got := len(r.Tables[0].String()); got == 0 {
		t.Error("E10 table empty")
	}
}

func TestE11Quick(t *testing.T) {
	r, err := E11Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E11 quick tables = %d", len(r.Tables))
	}
	// One native-TO, one Sharded(TO) and one 2PL row per shard count; the
	// runner itself asserts the per-regime self-checks (state==replay on
	// the disjoint regime, committed-schedule CSR on the skewed one).
	for _, tbl := range r.Tables {
		s := tbl.String()
		for _, want := range []string{"cto(", "sharded(", "2pl-sharded("} {
			if !strings.Contains(s, want) {
				t.Errorf("E11 table missing %q rows:\n%s", want, s)
			}
		}
	}
}

func TestE15Quick(t *testing.T) {
	r, err := E15Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E15 quick tables = %d", len(r.Tables))
	}
	// One native-SGT, sharded(SGT), native-OCC, sharded(OCC), native-TO
	// and 2PL row per shard count; the runner itself asserts the per-regime
	// self-checks (state==replay on the disjoint regime, committed-schedule
	// CSR on the skewed one).
	for _, tbl := range r.Tables {
		s := tbl.String()
		for _, want := range []string{"csgt(", "cocc(", "sharded(", "cto(", "2pl-sharded("} {
			if !strings.Contains(s, want) {
				t.Errorf("E15 table missing %q rows:\n%s", want, s)
			}
		}
	}
}

func TestE12Quick(t *testing.T) {
	r, err := E12Quick()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 2 {
		t.Errorf("E12 quick tables = %d", len(r.Tables))
	}
	// One mv, one 2PL and one cto row per read fraction; the runner itself
	// asserts the per-scheduler self-checks (state==replay for mv and 2pl,
	// committed-schedule CSR for cto). mv must actually have used the
	// snapshot path.
	for _, tbl := range r.Tables {
		s := tbl.String()
		for _, want := range []string{"mv(", "2pl-sharded(", "cto("} {
			if !strings.Contains(s, want) {
				t.Errorf("E12 table missing %q rows:\n%s", want, s)
			}
		}
	}
}

func TestE13Quick(t *testing.T) {
	r, err := E13Quick()
	if err != nil {
		t.Fatal(err)
	}
	// One table per execution mode (eager 2PL, write-buffered cto); the
	// runner itself asserts the per-cell durability self-check: live state
	// == committed replay == state recovered by OpenDisk after Close.
	if len(r.Tables) != 2 {
		t.Errorf("E13 quick tables = %d", len(r.Tables))
	}
	for _, tbl := range r.Tables {
		s := tbl.String()
		for _, want := range []string{"always", "group", "recovered==replay"} {
			if !strings.Contains(s, want) {
				t.Errorf("E13 table missing %q rows:\n%s", want, s)
			}
		}
	}
	if !strings.Contains(r.Text, "fsync=group throughput") {
		t.Errorf("E13 text missing amortization summary:\n%s", r.Text)
	}
}

func TestE14Quick(t *testing.T) {
	r, err := E14Quick()
	if err != nil {
		t.Fatal(err)
	}
	// One table sweeping checkpoint interval × job volume; the runner
	// asserts per cell that live state == replay == recovery, that the
	// checkpointer stayed healthy, and that every checkpointed interval
	// shrinks the on-disk footprint below the interval-0 control.
	if len(r.Tables) != 1 {
		t.Fatalf("E14 quick tables = %d", len(r.Tables))
	}
	s := r.Tables[0].String()
	for _, want := range []string{"interval-B", "recovered==replay"} {
		if !strings.Contains(s, want) {
			t.Errorf("E14 table missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(r.Text, "smaller") {
		t.Errorf("E14 text missing footprint headline:\n%s", r.Text)
	}
}

func TestNewBackendUnknown(t *testing.T) {
	if _, err := NewBackend("bogus", 1, 0); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 24 {
		t.Errorf("IDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs not sorted")
		}
	}
}

func TestResultStringFormat(t *testing.T) {
	r, err := F1WeaklySerializableHistory()
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"F1", "Herbrand value", "f12"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}
