// Package experiments drives every experiment in DESIGN.md's
// per-experiment index (T1–T4, F1–F5, E1–E15) and renders the tables
// recorded in EXPERIMENTS.md. cmd/ccbench is a thin CLI over this package;
// the root bench_test.go wraps each experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/fixpoint"
	"optcc/internal/geometry"
	"optcc/internal/herbrand"
	"optcc/internal/info"
	"optcc/internal/locking"
	"optcc/internal/lockmgr"
	"optcc/internal/online"
	"optcc/internal/report"
	"optcc/internal/schedule"
	"optcc/internal/sim"
	"optcc/internal/storage"
	"optcc/internal/workload"
	"optcc/internal/wsr"
)

// Result is one experiment's rendered output.
type Result struct {
	ID     string
	Title  string
	Text   string // free-form sections (figures, narratives)
	Tables []*report.Table
}

// String renders the result for terminal output.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "─── %s: %s ───\n", r.ID, r.Title)
	if r.Text != "" {
		b.WriteString(r.Text)
		if !strings.HasSuffix(r.Text, "\n") {
			b.WriteByte('\n')
		}
	}
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the result for EXPERIMENTS.md.
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	if r.Text != "" {
		fmt.Fprintf(&b, "```\n%s\n```\n\n", strings.TrimRight(r.Text, "\n"))
	}
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is an experiment entry point.
type Runner func() (*Result, error)

// All returns every experiment keyed by ID, plus the display order.
func All() (map[string]Runner, []string) {
	m := map[string]Runner{
		"T1":  T1InformationBound,
		"T2":  T2SerialOptimal,
		"T3":  T3SerializationOptimal,
		"T4":  T4WeakSerialization,
		"F1":  F1WeaklySerializableHistory,
		"F2":  F2TwoPhaseTransformation,
		"F3":  F3ProgressSpace,
		"F4":  F4GeometryOfLocking,
		"F5":  F5TwoPhasePrimeTransformation,
		"E1":  E1FixpointHierarchy,
		"E2":  E2NoDelayProbability,
		"E3":  E3OnlineFixpoints,
		"E4":  E4SimulatedWaiting,
		"E5":  E5PolicyComparison,
		"E6":  E6TreeLocking,
		"E7":  E7DeadlockPolicies,
		"E8":  E8ShardScalability,
		"E9":  E9StorageBackend,
		"E10": E10BatchedDispatch,
		"E11": E11NativeTimestampOrdering,
		"E12": E12MultiversionReadScaling,
		"E13": E13DurableCommit,
		"E14": E14CheckpointedWAL,
		"E15": E15NativeSGTOCC,
	}
	order := []string{"T1", "T2", "T3", "T4", "F1", "F2", "F3", "F4", "F5", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	return m, order
}

// T1InformationBound verifies Theorem 1's bound P ⊆ ∩_{T'∈I} C(T') by
// computing, for the Figure 1 system, the optimal fixpoint at each
// information level and checking the nesting.
func T1InformationBound() (*Result, error) {
	sys := workload.Figure1()
	t := report.NewTable("optimal fixpoint per information level — figure1 (|H| = 3)",
		"level", "|P|", "|P|/|H|", "members")
	total := 0
	schedule.Enumerate(sys.Format(), func(core.Schedule) bool { total++; return true })
	prevMembers := map[string]bool{}
	first := true
	for _, level := range info.Levels() {
		o, err := info.NewOracle(sys, level)
		if err != nil {
			return nil, err
		}
		members := map[string]bool{}
		var names []string
		var iterErr error
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			in, err := o.InFixpoint(h)
			if err != nil {
				iterErr = err
				return false
			}
			if in {
				members[h.Key()] = true
				names = append(names, h.String())
			}
			return true
		})
		if iterErr != nil {
			return nil, iterErr
		}
		if !first {
			for k := range prevMembers {
				if !members[k] {
					return nil, fmt.Errorf("T1: nesting violated at level %v", level)
				}
			}
		}
		first = false
		prevMembers = members
		t.AddRow(level.String(), len(members), report.Ratio(len(members), total), strings.Join(names, " "))
	}
	return &Result{
		ID:    "T1",
		Title: "Theorem 1 — information bounds fixpoint sets (nested along the information order)",
		Tables: []*report.Table{
			t,
		},
	}, nil
}

// T2SerialOptimal mechanizes the proof of Theorem 2: for every non-serial
// schedule of several formats, the constructed adversary system breaks it,
// so no scheduler with only the format can pass anything beyond serial.
func T2SerialOptimal() (*Result, error) {
	t := report.NewTable("Theorem 2 adversary coverage",
		"format", "|H|", "serial", "non-serial", "broken by adversary")
	for _, format := range [][]int{{2, 1}, {2, 2}, {1, 1, 1}, {3, 2}, {2, 2, 1}} {
		total, serial, broken := 0, 0, 0
		var err error
		schedule.Enumerate(format, func(h core.Schedule) bool {
			total++
			if h.IsSerial() {
				serial++
				return true
			}
			adv, aerr := info.BuildTheorem2Adversary(format, h)
			if aerr != nil {
				err = aerr
				return false
			}
			ok, cerr := core.ScheduleCorrect(adv, h)
			if cerr != nil {
				err = cerr
				return false
			}
			if !ok {
				broken++
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if broken != total-serial {
			return nil, fmt.Errorf("T2: %d of %d non-serial schedules survived the adversary for format %v",
				total-serial-broken, total-serial, format)
		}
		t.AddRow(fmt.Sprintf("%v", format), total, serial, total-serial, broken)
	}
	return &Result{
		ID:     "T2",
		Title:  "Theorem 2 — the serial scheduler is optimal at minimum information",
		Text:   "Every non-serial schedule is incorrect for the increment/double/decrement adversary with IC {x=0}.",
		Tables: []*report.Table{t},
	}, nil
}

// T3SerializationOptimal mechanizes Theorem 3: the Herbrand-IC adversary
// characterizes SR(T) exactly on representative syntaxes.
func T3SerializationOptimal() (*Result, error) {
	t := report.NewTable("Theorem 3 — Herbrand adversary vs SR(T)",
		"system", "|H|", "|SR|", "adversary-correct", "agree")
	// The exact characterization C(T') ∩ H = SR(T) holds in the paper's
	// pure model where every step is a general update (Section 2); with
	// Read/Write refinements a blind write can coincide with an omission
	// concatenation, making the adversary a sound over-approximation only.
	mkU := func(vars ...core.Var) core.Transaction {
		steps := make([]core.Step, len(vars))
		for i, v := range vars {
			steps[i] = core.Step{Var: v, Kind: core.Update}
		}
		return core.Transaction{Steps: steps}
	}
	syntaxes := []*core.System{
		syntaxOf(workload.Figure1()),
		syntaxOf(workload.Cross()),
		(&core.System{Name: "triple", Txs: []core.Transaction{mkU("x", "y"), mkU("x"), mkU("y")}}).Normalize(),
	}
	for _, sys := range syntaxes {
		checker, err := herbrand.NewChecker(sys)
		if err != nil {
			return nil, err
		}
		adv, err := info.NewHerbrandAdversary(sys, 0)
		if err != nil {
			return nil, err
		}
		total, sr, pass, agree := 0, 0, 0, 0
		schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
			total++
			s, _, serr := checker.Serializable(h)
			if serr != nil {
				err = serr
				return false
			}
			p, perr := adv.Correct(h)
			if perr != nil {
				err = perr
				return false
			}
			if s {
				sr++
			}
			if p {
				pass++
			}
			if s == p {
				agree++
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		if agree != total {
			return nil, fmt.Errorf("T3: adversary disagrees with SR on %s", sys.Name)
		}
		t.AddRow(sys.Name, total, sr, pass, fmt.Sprintf("%d/%d", agree, total))
	}
	return &Result{
		ID:     "T3",
		Title:  "Theorem 3 — the serialization scheduler is optimal at complete syntactic information",
		Tables: []*report.Table{t},
	}, nil
}

// syntaxOf strips interpretations and IC, leaving pure syntax.
func syntaxOf(sys *core.System) *core.System {
	out := &core.System{Name: sys.Name + "-syntax"}
	for _, tx := range sys.Txs {
		steps := make([]core.Step, len(tx.Steps))
		for j, st := range tx.Steps {
			steps[j] = core.Step{Var: st.Var, Kind: st.Kind}
		}
		out.Txs = append(out.Txs, core.Transaction{Name: tx.Name, Steps: steps})
	}
	return out.Normalize()
}

// T4WeakSerialization verifies Theorem 4's gap on Figure 1: WSR strictly
// exceeds SR, and WSR membership is exactly what the weak serialization
// scheduler passes.
func T4WeakSerialization() (*Result, error) {
	sys := workload.Figure1()
	counts, err := fixpoint.Classify(sys, fixpoint.Options{WithWSR: true, WithCorrect: true})
	if err != nil {
		return nil, err
	}
	if !(counts.SR < counts.WSR) {
		return nil, fmt.Errorf("T4: expected SR < WSR on figure1, got SR=%d WSR=%d", counts.SR, counts.WSR)
	}
	return &Result{
		ID:     "T4",
		Title:  "Theorem 4 — weak serialization is optimal without the integrity constraints",
		Text:   "On Figure 1, SR misses the interleaved history but WSR (and hence the optimal scheduler without IC knowledge) passes all of H.",
		Tables: []*report.Table{counts.Table()},
	}, nil
}

// F1WeaklySerializableHistory reproduces the Figure 1 discussion: the
// history h = (T11, T21, T12) has a Herbrand value equal to no serial
// history, yet with the given interpretations it equals the serial history
// (T21, T11, T12).
func F1WeaklySerializableHistory() (*Result, error) {
	sys := workload.Figure1()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	checker, err := herbrand.NewChecker(sys)
	if err != nil {
		return nil, err
	}
	f, err := checker.Final(h)
	if err != nil {
		return nil, err
	}
	sr, _, err := checker.Serializable(h)
	if err != nil {
		return nil, err
	}
	wc, err := wsr.NewChecker(sys, wsr.Options{})
	if err != nil {
		return nil, err
	}
	weak, witness, err := wc.Weak(h)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "history h = %s\n", h)
	fmt.Fprintf(&b, "Herbrand value of x: %s\n", f["x"])
	for order, key := range map[string][]int{"T1;T2": {0, 1}, "T2;T1": {1, 0}} {
		sf, err := checker.Final(core.SerialSchedule(sys.Format(), key))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "serial %s value of x: %s\n", order, sf["x"])
	}
	fmt.Fprintf(&b, "h ∈ SR(T): %v (as the paper shows, it is not)\n", sr)
	fmt.Fprintf(&b, "h ∈ WSR(T): %v, witnessed by serial order %v — with φ = (+1, ×2, +1), h ≡ (T21, T11, T12)\n", weak, witness)
	if sr || !weak {
		return nil, fmt.Errorf("F1: expected h ∉ SR and h ∈ WSR")
	}
	return &Result{ID: "F1", Title: "Figure 1 — a weakly serializable, non-serializable history", Text: b.String()}, nil
}

// F2TwoPhaseTransformation renders Figure 2: the 2PL transformation of the
// transaction (x, y, x, z).
func F2TwoPhaseTransformation() (*Result, error) {
	ls, err := locking.TwoPhase{}.Transform(figure2System())
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "F2",
		Title: "Figure 2 — locked transaction using 2PL",
		Text:  ls.Txs[0].String() + fmt.Sprintf("two-phase: %v, well-formed: %v\n", ls.TwoPhase(), ls.WellFormed()),
	}, nil
}

func figure2System() *core.System {
	return (&core.System{
		Name: "figure2",
		Txs: []core.Transaction{{Name: "Ti", Steps: []core.Step{
			{Var: "x", Kind: core.Update},
			{Var: "y", Kind: core.Update},
			{Var: "x", Kind: core.Update},
			{Var: "z", Kind: core.Update},
		}}},
	}).Normalize()
}

// F3ProgressSpace renders Figure 3: the progress space of two 2PL-locked
// transactions with opposite lock orders, showing blocks and the deadlock
// region D.
func F3ProgressSpace() (*Result, error) {
	ls, err := locking.TwoPhase{}.Transform(syntaxOf(workload.Cross()))
	if err != nil {
		return nil, err
	}
	sp, err := geometry.NewSpace(ls, 0, 1)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(sp.Render(nil))
	fmt.Fprintf(&b, "deadlock region D: %v\n", sp.DeadlockRegion())
	if !sp.HasDeadlock() {
		return nil, fmt.Errorf("F3: expected a deadlock region")
	}
	return &Result{ID: "F3", Title: "Figure 3 — the progress space, blocks Bx/By and deadlock region D", Text: b.String()}, nil
}

// F4GeometryOfLocking reproduces the four panels of Figure 4:
// memorylessness, homotopy serializability, separation, and the 2PL common
// point.
func F4GeometryOfLocking() (*Result, error) {
	var b strings.Builder
	// (a)+(b)+(d): 2PL-locked cross system.
	ls, err := locking.TwoPhase{}.Transform(syntaxOf(workload.Cross()))
	if err != nil {
		return nil, err
	}
	sp, err := geometry.NewSpace(ls, 0, 1)
	if err != nil {
		return nil, err
	}
	u, ok := sp.CommonPoint()
	fmt.Fprintf(&b, "(d) 2PL blocks %v share common point u = %v: %v → no separating path: %v\n",
		sp.Blocks, u, ok, !sp.SeparatingPathExists())
	if !ok || sp.SeparatingPathExists() {
		return nil, fmt.Errorf("F4: 2PL common-point property violated")
	}
	// (c): per-access locking admits separation.
	perAccess := perAccessLocked()
	sp2, err := geometry.NewSpace(perAccess, 0, 1)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "(c) per-access locking blocks %v admit a separating (non-serializable) path: %v\n",
		sp2.Blocks, sp2.SeparatingPathExists())
	if !sp2.SeparatingPathExists() {
		return nil, fmt.Errorf("F4: per-access locking should admit separation")
	}
	// (b): homotopy check agrees with conflict serializability on every
	// complete path of the 2PL space (verified exhaustively in tests; here
	// we show one serial path).
	moves := make([]int, 0, sp.N1+sp.N2)
	for i := 0; i < sp.N1; i++ {
		moves = append(moves, 0)
	}
	for i := 0; i < sp.N2; i++ {
		moves = append(moves, 1)
	}
	path, err := sp.PathFromMoves(moves)
	if err != nil {
		return nil, err
	}
	okSer, err := sp.PathSerializable(path)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "(b) the serial path is homotopic to a serial schedule: %v\n", okSer)
	fmt.Fprintf(&b, "(a) memorylessness: histories (T1-op, T2-op) and (T2-op, T1-op) reach the same progress point\n")
	return &Result{ID: "F4", Title: "Figure 4 — geometries of locking", Text: b.String()}, nil
}

// perAccessLocked builds the non-two-phase lock-per-access system used for
// the separation panel.
func perAccessLocked() *locking.System {
	base := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
		},
	}).Normalize()
	mk := func(tx int) locking.Tx {
		return locking.Tx{Name: fmt.Sprintf("T%d", tx+1), Ops: []locking.Op{
			{Kind: locking.OpLock, LV: "X"},
			{Kind: locking.OpStep, Step: core.StepID{Tx: tx, Idx: 0}},
			{Kind: locking.OpUnlock, LV: "X"},
			{Kind: locking.OpLock, LV: "Y"},
			{Kind: locking.OpStep, Step: core.StepID{Tx: tx, Idx: 1}},
			{Kind: locking.OpUnlock, LV: "Y"},
		}}
	}
	return &locking.System{Base: base, Policy: "per-access", Txs: []locking.Tx{mk(0), mk(1)}}
}

// F5TwoPhasePrimeTransformation renders Figure 5: the 2PL′ transformation
// of the same transaction as Figure 2.
func F5TwoPhasePrimeTransformation() (*Result, error) {
	ls, err := locking.TwoPhasePrime{X: "x"}.Transform(figure2System())
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "F5",
		Title: "Figure 5 — locked transaction using 2PL′",
		Text: ls.Txs[0].String() +
			fmt.Sprintf("two-phase: %v (2PL′ is deliberately not two-phase), well-formed: %v\n",
				ls.TwoPhase(), ls.WellFormed()),
	}, nil
}

// E1FixpointHierarchy computes the full hierarchy on the canonical
// systems.
func E1FixpointHierarchy() (*Result, error) {
	res := &Result{ID: "E1", Title: "Fixpoint hierarchy serial ⊆ CSR ⊆ SR ⊆ WSR ⊆ C(T) ⊆ H"}
	cases := []struct {
		sys  *core.System
		opts fixpoint.Options
	}{
		{workload.Figure1(), fixpoint.Options{WithWSR: true, WithCorrect: true}},
		{workload.Theorem2Adversary(), fixpoint.Options{WithWSR: true, WithCorrect: true}},
		{workload.Chain(), fixpoint.Options{WithWSR: true, WithCorrect: true}},
		{workload.Banking(), fixpoint.Options{WithCorrect: true}},
		{workload.Random(workload.RandomConfig{NumTxs: 3, MaxSteps: 2, NumVars: 2}, 1979), fixpoint.Options{WithWSR: true, WithCorrect: true}},
	}
	for _, c := range cases {
		counts, err := fixpoint.Classify(c.sys, c.opts)
		if err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, counts.Table())
	}
	return res, nil
}

// E2NoDelayProbability reports the Section 6 quantity |P|/|H| for each
// fixpoint class on the banking system: the probability a uniformly random
// request history is passed undelayed by the optimal scheduler of each
// class.
func E2NoDelayProbability() (*Result, error) {
	sys := workload.Banking()
	counts, err := fixpoint.Classify(sys, fixpoint.Options{WithCorrect: true})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("no-delay probability |P|/|H| — banking (|H| = 1260)",
		"scheduler (optimal for)", "|P|", "|P|/|H|")
	t.AddRow("serial (minimum info)", counts.Serial, report.Ratio(counts.Serial, counts.Total))
	t.AddRow("CSR certifier", counts.CSR, report.Ratio(counts.CSR, counts.Total))
	t.AddRow("serialization (syntactic info)", counts.SR, report.Ratio(counts.SR, counts.Total))
	t.AddRow("maximum information", counts.Correct, report.Ratio(counts.Correct, counts.Total))
	return &Result{ID: "E2", Title: "Section 6 — probability that no step waits", Tables: []*report.Table{t}}, nil
}

// E3OnlineFixpoints measures the realized fixpoint of each online
// scheduler against the theoretical classes.
func E3OnlineFixpoints() (*Result, error) {
	res := &Result{ID: "E3", Title: "Realized fixpoints of online schedulers vs theory"}
	for _, sys := range []*core.System{workload.Chain(), workload.LostUpdate(), workload.Cross()} {
		tbl, counts, err := fixpoint.OnlineCounts(sys, []online.Scheduler{
			online.NewSerial(),
			online.NewConservative2PL(),
			online.NewStrict2PL(lockmgr.Detect),
			online.NewSGT(),
			online.NewTO(),
			online.NewTOThomas(),
			online.NewOCC(),
		}, 0)
		if err != nil {
			return nil, err
		}
		if counts["serial"] > counts["strict-2pl/detect"] || counts["strict-2pl/detect"] > counts["sgt/delay"] {
			return nil, fmt.Errorf("E3: hierarchy violated on %s: %v", sys.Name, counts)
		}
		res.Tables = append(res.Tables, tbl)
	}
	return res, nil
}

// E4SimulatedWaiting runs the goroutine simulator: waiting time and
// throughput per scheduler as concurrency rises on a hot-spot workload.
func E4SimulatedWaiting() (*Result, error) {
	return e4WithScale(24, []int{2, 4, 8})
}

// E4Quick is a smaller variant for tests.
func E4Quick() (*Result, error) { return e4WithScale(8, []int{2, 4}) }

func e4WithScale(jobs int, userSweep []int) (*Result, error) {
	res := &Result{ID: "E4", Title: "Section 6 — simulated waiting time vs fixpoint richness (goroutine runtime)"}
	template := workload.Banking()
	scheds := func() []online.Scheduler {
		return []online.Scheduler{
			online.NewSerial(),
			online.NewStrict2PL(lockmgr.WoundWait),
			online.NewSGTAborting(),
			online.NewOCC(),
		}
	}
	for _, users := range userSweep {
		t := report.NewTable(fmt.Sprintf("banking, %d jobs, %d users", jobs, users),
			"scheduler", "committed", "aborts", "deadlock-breaks", "waits", "mean-wait-µs", "p95-wait-µs", "throughput-tx/s")
		for _, sched := range scheds() {
			inst := sim.Instantiate(template, jobs)
			m, err := sim.Run(sim.Config{
				System:   inst,
				Sched:    sched,
				Users:    users,
				ExecTime: 100 * time.Microsecond,
				Seed:     1979,
			})
			if err != nil {
				return nil, err
			}
			if m.Committed != jobs {
				return nil, fmt.Errorf("E4: %s committed %d of %d", sched.Name(), m.Committed, jobs)
			}
			t.AddRow(sched.Name(), m.Committed, m.Aborts, m.DeadlockBreaks,
				m.WaitNs.N(),
				m.WaitNs.Mean()/1e3,
				m.WaitNs.Percentile(95)/1e3,
				m.Throughput)
		}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// E5PolicyComparison compares locking policies by the size of their
// achievable output sets (Section 5.2's performance measure) on the
// systems where the paper's separations appear.
func E5PolicyComparison() (*Result, error) {
	mk := func(vars ...core.Var) core.Transaction {
		steps := make([]core.Step, len(vars))
		for i, v := range vars {
			steps[i] = core.Step{Var: v, Kind: core.Update}
		}
		return core.Transaction{Steps: steps}
	}
	cases := []struct {
		name string
		sys  *core.System
	}{
		{"prime-gap (T1=x,y T2=x T3=y)", (&core.System{Txs: []core.Transaction{mk("x", "y"), mk("x"), mk("y")}}).Normalize()},
		{"private-var (T1=y,x,p T2=y)", (&core.System{Txs: []core.Transaction{mk("y", "x", "p"), mk("y")}}).Normalize()},
		{"cross", syntaxOf(workload.Cross())},
	}
	res := &Result{ID: "E5", Title: "Section 5.4 — 2PL vs 2PL′ vs selective 2PL (achievable output sets)"}
	for _, c := range cases {
		total := 0
		schedule.Enumerate(c.sys.Format(), func(core.Schedule) bool { total++; return true })
		t := report.NewTable(fmt.Sprintf("%s (|H| = %d)", c.name, total),
			"policy", "separable", "|outputs|", "share of H")
		for _, p := range []locking.Policy{locking.TwoPhase{}, locking.TwoPhasePrime{X: "x"}, locking.Selective2PL{}} {
			ls, err := p.Transform(c.sys)
			if err != nil {
				return nil, err
			}
			outs, err := locking.Outputs(ls)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.Name(), p.Separable(), len(outs), report.Ratio(len(outs), total))
		}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// E6TreeLocking compares tree locking with strict 2PL on hierarchical
// path workloads, both by realized fixpoint and by simulated waiting.
func E6TreeLocking() (*Result, error) {
	res := &Result{ID: "E6", Title: "Section 5.5 — structured data: tree locking vs 2PL"}
	// Fixpoint comparison on a small two-path system.
	mk := func(path ...core.Var) core.Transaction {
		steps := make([]core.Step, len(path))
		for i, v := range path {
			steps[i] = core.Step{Var: v, Kind: core.Update,
				Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }}
		}
		return core.Transaction{Steps: steps}
	}
	small := (&core.System{
		Name: "two-paths",
		Txs:  []core.Transaction{mk("n0", "n1", "n3"), mk("n0", "n2", "n6")},
	}).Normalize()
	tbl, counts, err := fixpoint.OnlineCounts(small, []online.Scheduler{
		online.NewStrict2PL(lockmgr.Detect),
		online.NewTreeLock(),
	}, 0)
	if err != nil {
		return nil, err
	}
	if counts["tree-lock"] <= counts["strict-2pl/detect"] {
		return nil, fmt.Errorf("E6: tree lock (%d) should beat strict 2PL (%d) on paths", counts["tree-lock"], counts["strict-2pl/detect"])
	}
	res.Tables = append(res.Tables, tbl)
	// Simulation on a deeper tree.
	inst := sim.Instantiate(workload.PathWorkload(4, 3, 7), 18)
	t := report.NewTable("tree depth 4, 18 jobs, 6 users",
		"scheduler", "committed", "aborts", "waits", "mean-wait-µs", "throughput-tx/s")
	for _, sched := range []online.Scheduler{online.NewStrict2PL(lockmgr.WoundWait), online.NewTreeLock()} {
		m, err := sim.Run(sim.Config{System: inst, Sched: sched, Users: 6, ExecTime: 100 * time.Microsecond, Seed: 55})
		if err != nil {
			return nil, err
		}
		t.AddRow(sched.Name(), m.Committed, m.Aborts, m.WaitNs.N(), m.WaitNs.Mean()/1e3, m.Throughput)
	}
	res.Tables = append(res.Tables, t)
	return res, nil
}

// E7DeadlockPolicies is the design-choice ablation: the four deadlock
// handling strategies under a deadlock-prone workload.
func E7DeadlockPolicies() (*Result, error) {
	inst := sim.Instantiate(workload.Cross(), 16)
	t := report.NewTable("deadlock handling ablation — cross workload, 16 jobs, 8 users",
		"policy", "committed", "aborts", "deadlock-breaks", "waits", "mean-wait-µs", "throughput-tx/s")
	for _, policy := range []lockmgr.Policy{lockmgr.Detect, lockmgr.NoWait, lockmgr.WaitDie, lockmgr.WoundWait} {
		m, err := sim.Run(sim.Config{
			System:   inst,
			Sched:    online.NewStrict2PL(policy),
			Users:    8,
			ExecTime: 50 * time.Microsecond,
			Seed:     2024,
		})
		if err != nil {
			return nil, err
		}
		if m.Committed != 16 {
			return nil, fmt.Errorf("E7: %v committed %d of 16", policy, m.Committed)
		}
		t.AddRow(policy.String(), m.Committed, m.Aborts, m.DeadlockBreaks, m.WaitNs.N(), m.WaitNs.Mean()/1e3, m.Throughput)
	}
	return &Result{ID: "E7", Title: "Ablation — deadlock handling under strict 2PL", Tables: []*report.Table{t}}, nil
}

// E8Config parameterizes the shard-scalability experiment; cmd/ccbench
// overrides the sweeps via its -shards and -users flags.
var E8Config = struct {
	Jobs   int
	Users  []int
	Shards []int
}{Jobs: 32, Users: []int{4, 8}, Shards: []int{1, 4, 16}}

// E8ShardScalability measures the sharded scheduling runtime: throughput of
// centralized strict 2PL (single scheduler goroutine) against the sharded
// engine (per-shard dispatch loops over the partitioned lock table) across
// shard count × user count × contention regime.
func E8ShardScalability() (*Result, error) {
	return e8WithScale(E8Config.Jobs, E8Config.Users, E8Config.Shards)
}

// E8Quick is a smaller variant for tests.
func E8Quick() (*Result, error) { return e8WithScale(12, []int{4}, []int{1, 4}) }

func e8WithScale(jobs int, userSweep, shardSweep []int) (*Result, error) {
	res := &Result{
		ID:    "E8",
		Title: "Sharded scheduling runtime — throughput vs shard count × users × contention",
		Text: "central = single scheduler goroutine (Section 6 funnel); " +
			"sharded(n) = per-shard dispatch loops over an n-shard lock table.",
	}
	regimes := []struct {
		name     string
		template *core.System
	}{
		{"low contention", workload.Random(workload.RandomConfig{
			NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 8 * jobs}, 1979)},
		{"high contention (hotspot)", workload.Random(workload.RandomConfig{
			NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 4, Hotspot: 1}, 1979)},
	}
	for _, reg := range regimes {
		for _, users := range userSweep {
			t := report.NewTable(fmt.Sprintf("%s, %d jobs, %d users", reg.name, jobs, users),
				"scheduler", "committed", "aborts", "deadlock-breaks", "mean-wait-µs", "throughput-tx/s")
			scheds := []online.Scheduler{online.NewStrict2PL(lockmgr.WoundWait)}
			for _, s := range shardSweep {
				scheds = append(scheds, online.NewConcurrentStrict2PL(lockmgr.WoundWait, s))
			}
			for _, sched := range scheds {
				inst := sim.Instantiate(reg.template, jobs)
				m, err := sim.Run(sim.Config{System: inst, Sched: sched, Users: users, Seed: 1979})
				if err != nil {
					return nil, err
				}
				if m.Committed != jobs {
					return nil, fmt.Errorf("E8: %s committed %d of %d", sched.Name(), m.Committed, jobs)
				}
				name := sched.Name()
				if _, ok := sched.(online.ConcurrentScheduler); !ok {
					name = "central/" + name
				}
				t.AddRow(name, m.Committed, m.Aborts, m.DeadlockBreaks,
					m.WaitNs.Mean()/1e3, m.Throughput)
			}
			res.Tables = append(res.Tables, t)
		}
	}
	return res, nil
}

// E9Config parameterizes the storage-backend experiment; cmd/ccbench
// overrides Backend via its -backend flag.
var E9Config = struct {
	Jobs       int
	Users      int
	Shards     []int
	ValueSizes []int
	Backend    string
}{Jobs: 24, Users: 8, Shards: []int{1, 8}, ValueSizes: []int{64, 4096}, Backend: "kv"}

// NewBackend builds a storage backend by name (the storage.New registry)
// with the given shard count and uniform payload size.
func NewBackend(name string, shards, valueSize int) (storage.Backend, error) {
	return storage.New(name, storage.Config{Shards: shards, ValueSize: valueSize})
}

// NewStrictBackend is NewBackend with payload-buffer recycling enabled.
// Recycling is only sound under strict execution (see
// storage.Config.Recycle), so it is used by the sweeps whose schedulers
// are all strict — E9 and E10 run the strict 2PL family exclusively —
// while E11, which mixes in timestamp ordering, stays on NewBackend.
func NewStrictBackend(name string, shards, valueSize int) (storage.Backend, error) {
	return storage.New(name, storage.Config{Shards: shards, ValueSize: valueSize, Recycle: true})
}

// E9StorageBackend measures schedulers doing real work: every granted step
// reads and writes the storage backend (checksummed payload records,
// copy-on-write, undo-logged aborts) instead of sleeping, across value size
// × contention regime × shard count. It also asserts the replay invariant:
// the committed backend state must equal core.Exec of the committed
// schedule — all schedulers in the sweep are strict, so any divergence is
// an engine bug.
func E9StorageBackend() (*Result, error) {
	return e9WithScale(E9Config.Jobs, E9Config.Users, E9Config.Shards, E9Config.ValueSizes, E9Config.Backend)
}

// E9Quick is a smaller variant for tests.
func E9Quick() (*Result, error) { return e9WithScale(10, 4, []int{4}, []int{256}, E9Config.Backend) }

func e9WithScale(jobs, users int, shardSweep, valueSizes []int, backendName string) (*Result, error) {
	res := &Result{
		ID:    "E9",
		Title: "Real storage execution — schedulers on the " + backendName + " backend across value size × skew",
		Text: "Every granted step executes against the storage backend (checksummed reads, " +
			"copy-on-write writes, undo-logged aborts); execution time is real work, and the " +
			"committed state is verified against the serial replay of the committed schedule.",
	}
	regimes := []struct {
		name     string
		template *core.System
	}{
		{"uniform access", workload.Random(workload.RandomConfig{
			NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 4 * jobs}, 1979)},
		{"skewed access (hotspot)", workload.Random(workload.RandomConfig{
			NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 6, Hotspot: 1}, 1979)},
	}
	for _, reg := range regimes {
		for _, valueSize := range valueSizes {
			t := report.NewTable(fmt.Sprintf("%s, %dB values, %d jobs, %d users", reg.name, valueSize, jobs, users),
				"scheduler", "committed", "aborts", "rollbacks", "mean-exec-µs", "mean-wait-µs", "MB-written", "throughput-tx/s")
			scheds := []online.Scheduler{online.NewStrict2PL(lockmgr.WoundWait)}
			for _, s := range shardSweep {
				scheds = append(scheds, online.NewConcurrentStrict2PL(lockmgr.WoundWait, s))
			}
			for _, sched := range scheds {
				shards := 1
				if cs, ok := sched.(online.ConcurrentScheduler); ok {
					shards = cs.NumShards()
				}
				be, err := NewStrictBackend(backendName, shards, valueSize)
				if err != nil {
					return nil, err
				}
				inst := sim.Instantiate(reg.template, jobs)
				m, err := sim.Run(sim.Config{System: inst, Sched: sched, Backend: be, Users: users, Seed: 1979})
				if err != nil {
					return nil, err
				}
				if m.Committed != jobs {
					return nil, fmt.Errorf("E9: %s committed %d of %d", sched.Name(), m.Committed, jobs)
				}
				replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
				if err != nil {
					return nil, fmt.Errorf("E9: %s replay: %w", sched.Name(), err)
				}
				if !be.State().Equal(replay) {
					return nil, fmt.Errorf("E9: %s backend state diverged from committed replay", sched.Name())
				}
				name := sched.Name()
				if _, ok := sched.(online.ConcurrentScheduler); !ok {
					name = "central/" + name
				}
				var rollbacks int64
				var mbWritten float64
				if kv, ok := be.(*storage.KV); ok {
					st := kv.Stats()
					rollbacks = st.Rollbacks
					mbWritten = float64(st.BytesWritten) / (1 << 20)
				}
				t.AddRow(name, m.Committed, m.Aborts, rollbacks,
					m.ExecNs.Mean()/1e3, m.WaitNs.Mean()/1e3, mbWritten, m.Throughput)
			}
			res.Tables = append(res.Tables, t)
		}
	}
	return res, nil
}

// E10Config parameterizes the batched-dispatch experiment; cmd/ccbench
// overrides the sweeps via its -batch, -users and -shards flags.
var E10Config = struct {
	Jobs    int
	Users   []int
	Shards  []int
	Batches []int
	Backend string
}{Jobs: 64, Users: []int{16, 48}, Shards: []int{4}, Batches: []int{1, 8, 32}, Backend: "kv"}

// E10BatchedDispatch measures batch intake + group commit on the sharded
// runtime over batch size × users × shards, with real storage execution,
// on the two hot-shard regimes: lock-contended (workload.HotShard — every
// transaction hammers one hot variable pair, so run time is dominated by
// waiting and aborts, which batching leaves untouched) and loop-contended
// (workload.HotShardDisjoint — all traffic on one dispatch loop but no
// lock conflicts, so run time is dispatch overhead, exactly what batching
// amortizes; this is where batch > 1 pulls ahead). Batch 1 is the
// unbatched PR 1/PR 2 runtime; larger batches decide whole intake queues
// in one scheduler critical section and commit through the group-commit
// pipeline. Every run self-checks the replay invariant: the committed
// backend state must equal core.Exec of the committed schedule.
func E10BatchedDispatch() (*Result, error) {
	return e10WithScale(E10Config.Jobs, E10Config.Users, E10Config.Shards, E10Config.Batches, E10Config.Backend)
}

// E10Quick is a smaller variant for tests.
func E10Quick() (*Result, error) {
	return e10WithScale(12, []int{6}, []int{4}, []int{1, 8}, E10Config.Backend)
}

func e10WithScale(jobs int, userSweep, shardSweep, batchSweep []int, backendName string) (*Result, error) {
	res := &Result{
		ID:    "E10",
		Title: "Batched dispatch + group commit — throughput vs batch size × users × shards (hot-shard regimes)",
		Text: "batch=1 is the unbatched runtime (one decision per dispatch iteration, inline commit); " +
			"batch>1 coalesces intake into one critical section per batch and commits through the " +
			"per-lane group-commit pipeline (async lock release). The lock-contended regime is " +
			"wait-dominated (batching changes little); the loop-contended regime isolates dispatch " +
			"overhead, where batching wins.",
	}
	for _, shards := range shardSweep {
		regimes := []struct {
			name     string
			template *core.System
		}{
			{"lock-contended hot shard", workload.HotShard()},
			{"loop-contended hot shard (disjoint vars)", workload.HotShardDisjoint(jobs, shards)},
		}
		for _, reg := range regimes {
			for _, users := range userSweep {
				t := report.NewTable(fmt.Sprintf("%s, %d jobs, %d users, %d shards", reg.name, jobs, users, shards),
					"batch", "committed", "aborts", "deadlock-breaks", "mean-sched-µs", "mean-wait-µs", "group-size", "throughput-tx/s")
				for _, batch := range batchSweep {
					be, err := NewStrictBackend(backendName, shards, 256)
					if err != nil {
						return nil, err
					}
					inst := sim.Instantiate(reg.template, jobs)
					m, err := sim.Run(sim.Config{
						System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards),
						Backend: be, Users: users, Seed: 1979, Batch: batch,
					})
					if err != nil {
						return nil, err
					}
					if m.Committed != jobs {
						return nil, fmt.Errorf("E10: batch %d committed %d of %d", batch, m.Committed, jobs)
					}
					replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
					if err != nil {
						return nil, fmt.Errorf("E10: batch %d replay: %w", batch, err)
					}
					if !be.State().Equal(replay) {
						return nil, fmt.Errorf("E10: batch %d backend state diverged from committed replay", batch)
					}
					t.AddRow(batch, m.Committed, m.Aborts, m.DeadlockBreaks,
						m.SchedNs.Mean()/1e3, m.WaitNs.Mean()/1e3,
						m.GroupSize(), m.Throughput)
				}
				res.Tables = append(res.Tables, t)
			}
		}
	}
	return res, nil
}

// E11Config parameterizes the native-TO experiment; cmd/ccbench overrides
// the sweeps via its -shards, -users and -railstripes flags. RailStripes 0
// stripes the rail as widely as the shard count (the default).
var E11Config = struct {
	Jobs        int
	Users       int
	Shards      []int
	RailStripes int
	Backend     string
	MaxRestarts int
}{Jobs: 48, Users: 12, Shards: []int{1, 4}, RailStripes: 0, Backend: "kv", MaxRestarts: 10000}

// E11NativeTimestampOrdering measures the natively concurrent
// timestamp-ordering scheduler (online.ConcurrentTO: lock-free sharded
// atomic timestamp table, no per-shard mutex, no ordering rail) against
// the Sharded(TO) combinator (single-threaded TO per shard behind shard
// mutexes plus the striped cross-shard rail) and natively sharded strict
// 2PL, across shard count × access skew.
//
// Self-checks per cell: on the disjoint regime every granted step executes
// against the storage backend and the committed state must equal core.Exec
// of the committed schedule — with zero cross-transaction conflicts the
// invariant holds for every scheduler, timestamp-ordered ones included. On
// the skewed regime (real conflicts, where non-strict TO execution may
// legitimately diverge from the committed replay — see internal/storage)
// the check is the schedulers' contract instead: all jobs commit and the
// committed schedule is conflict-serializable.
func E11NativeTimestampOrdering() (*Result, error) {
	return e11WithScale(E11Config.Jobs, E11Config.Users, E11Config.Shards, E11Config.RailStripes, E11Config.Backend, E11Config.MaxRestarts)
}

// E11Quick is a smaller variant for tests.
func E11Quick() (*Result, error) {
	return e11WithScale(12, 4, []int{2}, 0, E11Config.Backend, E11Config.MaxRestarts)
}

func e11WithScale(jobs, users int, shardSweep []int, railStripes int, backendName string, maxRestarts int) (*Result, error) {
	res := &Result{
		ID:    "E11",
		Title: "Native timestamp ordering — ConcurrentTO vs Sharded(TO) vs strict 2PL across shards × skew",
		Text: "cto(n) = natively concurrent TO (lock-free sharded atomic timestamp table, no rail); " +
			"sharded(n)/to = single-threaded TO per shard behind shard mutexes + the striped ordering rail; " +
			"2pl-sharded(n) = natively sharded strict 2PL. The disjoint regime self-checks committed state " +
			"== committed replay on the storage backend; the skewed regime (real conflicts) self-checks " +
			"conflict-serializability of the committed schedule.",
	}
	regimes := []struct {
		name     string
		disjoint bool
		template *core.System
	}{
		{"disjoint across shards", true, workload.Disjoint(jobs, 3)},
		{"skewed access (hotspot)", false, workload.Random(workload.RandomConfig{
			NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 8, Hotspot: 1}, 1979)},
	}
	for _, reg := range regimes {
		t := report.NewTable(fmt.Sprintf("%s, %d jobs, %d users", reg.name, jobs, users),
			"scheduler", "committed", "aborts", "mean-sched-µs", "mean-wait-µs", "throughput-tx/s", "self-check")
		for _, shards := range shardSweep {
			stripes := railStripes
			if stripes <= 0 {
				stripes = shards
			}
			scheds := []online.Scheduler{
				online.NewConcurrentTO(shards),
				online.NewShardedRail(shards, stripes, func() online.Scheduler { return online.NewTO() }),
				online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards),
			}
			for _, sched := range scheds {
				cfg := sim.Config{System: sim.Instantiate(reg.template, jobs), Sched: sched,
					Users: users, Seed: 1979, MaxRestarts: maxRestarts}
				check := "schedule CSR"
				if reg.disjoint {
					be, err := NewBackend(backendName, shards, 256)
					if err != nil {
						return nil, err
					}
					cfg.Backend = be
					check = "state==replay"
				}
				m, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				if m.Committed != jobs {
					return nil, fmt.Errorf("E11: %s committed %d of %d on %s", sched.Name(), m.Committed, jobs, reg.name)
				}
				if reg.disjoint {
					replay, err := core.Exec(cfg.System, m.Output, cfg.System.InitialStates()[0])
					if err != nil {
						return nil, fmt.Errorf("E11: %s replay: %w", sched.Name(), err)
					}
					if !cfg.Backend.State().Equal(replay) {
						return nil, fmt.Errorf("E11: %s backend state diverged from committed replay", sched.Name())
					}
				} else {
					csr, _, err := conflict.Serializable(cfg.System, m.Output)
					if err != nil {
						return nil, fmt.Errorf("E11: %s output check: %w", sched.Name(), err)
					}
					if !csr {
						return nil, fmt.Errorf("E11: %s committed a non-conflict-serializable schedule", sched.Name())
					}
				}
				t.AddRow(sched.Name(), m.Committed, m.Aborts,
					m.SchedNs.Mean()/1e3, m.WaitNs.Mean()/1e3, m.Throughput, check)
			}
		}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// E12Config parameterizes the multiversion read-scaling experiment;
// cmd/ccbench overrides the sweeps via its -shards, -users and -readfrac
// flags.
var E12Config = struct {
	Jobs        int
	Users       int
	Shards      int
	ReadFracs   []float64
	MaxRestarts int
}{Jobs: 64, Users: 16, Shards: 4, ReadFracs: []float64{0.5, 0.9, 0.99}, MaxRestarts: 10000}

// E12MultiversionReadScaling sweeps the read-mostly workload's read
// fraction at high skew (every transaction hammers a tiny hot set) across
// the multiversion scheduler, natively sharded strict 2PL and native
// timestamp ordering, all on the version-chain KV. Under mv, read-only
// transactions never enter the grant machinery — the runtime serves them
// from pinned storage snapshots with zero locks — so read throughput stays
// flat as the writer mix grows; under 2pl the same readers take read locks
// on the hot set and collapse against the writers' exclusive locks.
//
// Self-checks per cell: everything commits, and for mv and 2pl the
// committed backend state must equal core.Exec of the committed schedule —
// mv holds write claims to commit and its writers are pure increments, so
// its write set executes strictly (the snapshot-served read-only
// transactions are appended to close the schedule; all-Read, they cannot
// move state). cto's conflicting writes are not strict, so its check is
// conflict-serializability of the committed schedule instead (see E11).
func E12MultiversionReadScaling() (*Result, error) {
	return e12WithScale(E12Config.Jobs, E12Config.Users, E12Config.Shards, E12Config.ReadFracs, E12Config.MaxRestarts)
}

// E12Quick is a smaller variant for tests.
func E12Quick() (*Result, error) {
	return e12WithScale(16, 4, 2, []float64{0.5, 0.9}, E12Config.MaxRestarts)
}

func e12WithScale(jobs, users, shards int, readFracs []float64, maxRestarts int) (*Result, error) {
	res := &Result{
		ID:    "E12",
		Title: "Multiversion read scaling — mv vs strict 2PL vs cto across read fraction at high skew",
		Text: "mv(n) = multiversion/optimistic scheduler: read-only transactions served from pinned " +
			"lock-free storage snapshots, writers claim-then-commit with first-writer-wins; " +
			"2pl-sharded(n) = natively sharded strict 2PL; cto(n) = native timestamp ordering. " +
			"snap-reads counts reads served by the snapshot path, ver-gced the superseded versions " +
			"collected. Self-check per cell: state==replay for mv and 2pl (strict write sets), " +
			"schedule CSR for cto.",
	}
	for _, rf := range readFracs {
		template := workload.ReadMostly(workload.ReadMostlyConfig{
			Jobs: jobs, Steps: 4, ReadFrac: rf, Vars: 32, HotFrac: 0.9, HotVars: 2}, 1979)
		t := report.NewTable(fmt.Sprintf("readfrac %.2f, %d jobs, %d users, %d shards", rf, jobs, users, shards),
			"scheduler", "committed", "aborts", "snap-reads", "ver-gced", "throughput-tx/s", "self-check")
		scheds := []online.Scheduler{
			online.NewConcurrentMV(shards),
			online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards),
			online.NewConcurrentTO(shards),
		}
		for _, sched := range scheds {
			be, err := NewBackend("kv", shards, 256)
			if err != nil {
				return nil, err
			}
			cfg := sim.Config{System: sim.Instantiate(template, jobs), Sched: sched,
				Backend: be, Users: users, Seed: 1979, MaxRestarts: maxRestarts}
			m, err := sim.Run(cfg)
			if err != nil {
				return nil, err
			}
			if m.Committed != jobs {
				return nil, fmt.Errorf("E12: %s committed %d of %d at readfrac %.2f", sched.Name(), m.Committed, jobs, rf)
			}
			check := "state==replay"
			if _, isTO := sched.(*online.ConcurrentTO); isTO {
				check = "schedule CSR"
				csr, _, err := conflict.Serializable(cfg.System, m.Output)
				if err != nil {
					return nil, fmt.Errorf("E12: %s output check: %w", sched.Name(), err)
				}
				if !csr {
					return nil, fmt.Errorf("E12: %s committed a non-conflict-serializable schedule", sched.Name())
				}
			} else {
				// Close the schedule for replay: read-only transactions the
				// snapshot path served are absent from Output (they produce
				// no granted steps); all-Read, appending them cannot move
				// the replayed state.
				full := append([]core.StepID{}, m.Output...)
				seen := make([]int, cfg.System.NumTxs())
				for _, id := range m.Output {
					seen[id.Tx]++
				}
				for tx := range seen {
					if seen[tx] == 0 {
						for idx := range cfg.System.Txs[tx].Steps {
							full = append(full, core.StepID{Tx: tx, Idx: idx})
						}
					}
				}
				replay, err := core.Exec(cfg.System, full, cfg.System.InitialStates()[0])
				if err != nil {
					return nil, fmt.Errorf("E12: %s replay: %w", sched.Name(), err)
				}
				if !be.State().Equal(replay) {
					return nil, fmt.Errorf("E12: %s backend state diverged from committed replay at readfrac %.2f", sched.Name(), rf)
				}
			}
			t.AddRow(sched.Name(), m.Committed, m.Aborts, m.SnapshotReads, m.VersionGCed,
				m.Throughput, check)
		}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// E13Config parameterizes the durable-commit experiment; cmd/ccbench
// overrides the sweeps via its -fsync, -batch, -users and -shards flags.
var E13Config = struct {
	Jobs    int
	Users   int
	Shards  int
	Batches []int
	Fsyncs  []string
}{Jobs: 128, Users: 16, Shards: 4, Batches: []int{1, 8, 32}, Fsyncs: []string{"always", "group", "never"}}

// E13DurableCommit measures the durable disk backend (append-only
// checksummed WAL segments, ARIES-style redo/undo recovery) across fsync
// policy × batch size on the conflict-free disjoint workload, where run
// time is dispatch + durability cost — exactly what fsync policy and group
// commit move. Two execution modes run the sweep: natively sharded strict
// 2PL on the eager backend (updates logged redo+undo as they execute) and
// native timestamp ordering on the write-buffered backend (uncommitted
// writes never reach the log, which is what makes the non-strict scheduler
// recoverable). fsync=always syncs inside every commit; fsync=group defers
// to the group-commit pipeline, one fsync per drained lane group —
// batching grows the groups, so the fsync count collapses; fsync=never
// leaves flushing to the OS (crash may lose commits, never tear them).
//
// Self-checks per cell: everything commits; the live backend state equals
// core.Exec of the committed schedule; and — the durability core — after
// Close the store is reopened with OpenDisk and the recovered state must
// equal that same replay with a clean (untruncated) log. A cell whose
// recovery diverges fails the experiment.
func E13DurableCommit() (*Result, error) {
	return e13WithScale(E13Config.Jobs, E13Config.Users, E13Config.Shards, E13Config.Batches, E13Config.Fsyncs)
}

// E13Quick is a smaller variant for tests.
func E13Quick() (*Result, error) {
	return e13WithScale(12, 4, 2, []int{1, 8}, []string{"always", "group"})
}

func e13WithScale(jobs, users, shards int, batches []int, fsyncs []string) (*Result, error) {
	res := &Result{
		ID:    "E13",
		Title: "Durable commit — fsync policy × batch size on the WAL disk backend (eager 2PL and write-buffered cto)",
		Text: "Disjoint workload (zero conflicts): run time is dispatch + durability cost. " +
			"fsync=always pays one fsync per commit; fsync=group pays one per drained commit " +
			"group (batching grows the groups); fsync=never defers to the OS. Self-check per " +
			"cell: live state == committed replay == state recovered by OpenDisk after Close, " +
			"with a clean log tail.",
	}
	template := workload.Disjoint(jobs, 3)
	modes := []struct {
		name     string
		buffered bool
		mk       func() online.Scheduler
	}{
		{"2pl-sharded eager", false, func() online.Scheduler { return online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards) }},
		{"cto write-buffered", true, func() online.Scheduler { return online.NewConcurrentTO(shards) }},
	}
	for _, mode := range modes {
		t := report.NewTable(fmt.Sprintf("%s, %d jobs, %d users, %d shards", mode.name, jobs, users, shards),
			"fsync", "batch", "committed", "fsyncs", "wal-KB", "group-size", "throughput-tx/s", "self-check")
		// throughput[fsync][batch], for the group-vs-always amortization
		// summary appended to the text.
		tp := map[string]map[int]float64{}
		for _, fs := range fsyncs {
			policy, err := storage.ParseFsyncPolicy(fs)
			if err != nil {
				return nil, fmt.Errorf("E13: %w", err)
			}
			tp[fs] = map[int]float64{}
			for _, batch := range batches {
				be, err := storage.NewDisk(storage.Config{Fsync: policy, Buffered: mode.buffered})
				if err != nil {
					return nil, fmt.Errorf("E13: %w", err)
				}
				inst := sim.Instantiate(template, jobs)
				m, err := sim.Run(sim.Config{
					System: inst, Sched: mode.mk(), Backend: be,
					Users: users, Seed: 1979, Batch: batch,
				})
				if err != nil {
					be.Destroy()
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d: %w", mode.name, fs, batch, err)
				}
				if m.Committed != jobs {
					be.Destroy()
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d committed %d of %d", mode.name, fs, batch, m.Committed, jobs)
				}
				replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
				if err != nil {
					be.Destroy()
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d replay: %w", mode.name, fs, batch, err)
				}
				if !be.State().Equal(replay) {
					be.Destroy()
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d live state diverged from committed replay", mode.name, fs, batch)
				}
				dir := be.Dir()
				if err := be.Close(); err != nil {
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d close: %w", mode.name, fs, batch, err)
				}
				r, err := storage.OpenDisk(storage.Config{Dir: dir})
				if err != nil {
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d recovery: %w", mode.name, fs, batch, err)
				}
				recovered := r.State()
				truncated := r.DurabilityStats().WALTruncated
				r.Destroy()
				if !recovered.Equal(replay) {
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d recovered state diverged from committed replay", mode.name, fs, batch)
				}
				if truncated != 0 {
					return nil, fmt.Errorf("E13: %s fsync=%s batch=%d clean shutdown recovered a truncated log", mode.name, fs, batch)
				}
				tp[fs][batch] = m.Throughput
				t.AddRow(fs, batch, m.Committed, m.Fsyncs, float64(m.WALBytes)/1024,
					m.GroupSize(), m.Throughput, "recovered==replay")
			}
		}
		res.Tables = append(res.Tables, t)
		// The amortization headline: grouped fsync vs per-commit fsync at
		// each batch size that actually batches.
		for _, batch := range batches {
			if batch < 8 {
				continue
			}
			if always, group := tp["always"][batch], tp["group"][batch]; always > 0 && group > 0 {
				res.Text += fmt.Sprintf("\n%s batch %d: fsync=group throughput %.1fx fsync=always.",
					mode.name, batch, group/always)
			}
		}
	}
	return res, nil
}

// E14Config parameterizes the checkpointing experiment; cmd/ccbench
// overrides the interval sweep via its -checkpoint flag.
var E14Config = struct {
	Volumes      []int // committed-transaction volumes (jobs per run)
	Users        int
	Shards       int
	Batch        int
	SegmentBytes int
	Intervals    []int // CheckpointBytes values; 0 = checkpointing off
}{Volumes: []int{128, 1024}, Users: 16, Shards: 4, Batch: 8,
	SegmentBytes: 4096, Intervals: []int{0, 8192, 65536}}

// E14CheckpointedWAL measures the online fuzzy checkpointer: checkpoint
// interval × commit volume on the disjoint workload, reporting the
// post-run on-disk footprint (segments + checkpoint files) and what the
// subsequent OpenDisk actually had to replay. Without checkpointing
// (interval 0) both grow linearly with commit volume — the log IS the
// database, and it only shrinks at recovery. With the checkpointer armed,
// sealed segments behind each durable checkpoint marker are retired
// online, so footprint and recovery work stay near one interval's worth
// regardless of how much history the run committed — the property that
// lets a disk backend run forever.
//
// Self-checks per cell: everything commits; the live state equals the
// committed replay; recovery after a clean Close reproduces it exactly
// with an untruncated log; the checkpointer is never degraded
// (CheckpointerOff) on a healthy filesystem; and checkpointed cells at
// the top volume must have completed at least one checkpoint, retired at
// least one segment, and ended with a strictly smaller footprint than the
// interval-0 control at the same volume.
func E14CheckpointedWAL() (*Result, error) {
	return e14WithScale(E14Config.Volumes, E14Config.Users, E14Config.Shards,
		E14Config.Batch, E14Config.SegmentBytes, E14Config.Intervals)
}

// E14Quick is a smaller variant for tests.
func E14Quick() (*Result, error) {
	return e14WithScale([]int{256}, 4, 2, 8, 2048, []int{0, 8192})
}

func e14WithScale(volumes []int, users, shards, batch, segBytes int, intervals []int) (*Result, error) {
	res := &Result{
		ID:    "E14",
		Title: "Online fuzzy checkpointing — interval × commit volume on the WAL disk backend",
		Text: "Disjoint workload under sharded strict 2PL (eager redo+undo logging, group " +
			"commit). interval is Config.CheckpointBytes: WAL bytes between background fuzzy " +
			"checkpoints (0 = off). footprint is the on-disk bytes (segments + checkpoint " +
			"files) after a clean Close; recovery-KB is what the subsequent OpenDisk replayed " +
			"(checkpoint + log tail). Self-check per cell: live state == committed replay == " +
			"recovered state, clean log, checkpointer healthy; checkpointed cells must beat " +
			"the interval-0 footprint at the top volume.",
	}
	t := report.NewTable(fmt.Sprintf("%d users, %d shards, batch %d, %dB segments", users, shards, batch, segBytes),
		"interval-B", "jobs", "committed", "checkpoints", "segs-retired", "footprint-KB", "recovery-KB", "recovery", "throughput-tx/s", "self-check")
	// footprint[interval][volume], for the bounded-footprint check and the
	// headline appended to the text.
	footKB := map[int]map[int]float64{}
	type ckptCell struct{ interval, volume int }
	var checkpointed []ckptCell
	for _, interval := range intervals {
		footKB[interval] = map[int]float64{}
		for _, volume := range volumes {
			label := fmt.Sprintf("interval=%d volume=%d", interval, volume)
			be, err := storage.NewDisk(storage.Config{
				Fsync: storage.FsyncGroup, SegmentBytes: segBytes, CheckpointBytes: interval,
			})
			if err != nil {
				return nil, fmt.Errorf("E14: %w", err)
			}
			template := workload.Disjoint(volume, 3)
			inst := sim.Instantiate(template, volume)
			m, err := sim.Run(sim.Config{
				System: inst, Sched: online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards),
				Backend: be, Users: users, Seed: 1979, Batch: batch,
			})
			if err != nil {
				be.Destroy()
				return nil, fmt.Errorf("E14: %s: %w", label, err)
			}
			if m.Committed != volume {
				be.Destroy()
				return nil, fmt.Errorf("E14: %s committed %d of %d", label, m.Committed, volume)
			}
			replay, err := core.Exec(inst, m.Output, inst.InitialStates()[0])
			if err != nil {
				be.Destroy()
				return nil, fmt.Errorf("E14: %s replay: %w", label, err)
			}
			if !be.State().Equal(replay) {
				be.Destroy()
				return nil, fmt.Errorf("E14: %s live state diverged from committed replay", label)
			}
			dir := be.Dir()
			if err := be.Close(); err != nil {
				return nil, fmt.Errorf("E14: %s close: %w", label, err)
			}
			// Close stops the background checkpointer and drains any attempt
			// still in flight; read the checkpoint counters only now, so the
			// table never shows a half-finished checkpoint.
			dsRun := be.DurabilityStats()
			if dsRun.CheckpointerOff {
				return nil, fmt.Errorf("E14: %s checkpointer degraded on a healthy filesystem", label)
			}
			files, bytes, err := walFootprint(dir)
			if err != nil {
				return nil, fmt.Errorf("E14: %s footprint: %w", label, err)
			}
			r, err := storage.OpenDisk(storage.Config{Dir: dir})
			if err != nil {
				return nil, fmt.Errorf("E14: %s recovery: %w", label, err)
			}
			recovered := r.State()
			ds := r.DurabilityStats()
			r.Destroy()
			if !recovered.Equal(replay) {
				return nil, fmt.Errorf("E14: %s recovered state diverged from committed replay", label)
			}
			if ds.WALTruncated != 0 {
				return nil, fmt.Errorf("E14: %s clean shutdown recovered a truncated log", label)
			}
			if interval > 0 && dsRun.Checkpoints > 0 {
				checkpointed = append(checkpointed, ckptCell{interval, volume})
			}
			footKB[interval][volume] = float64(bytes) / 1024
			t.AddRow(interval, volume, m.Committed, dsRun.Checkpoints, dsRun.SegmentsRetired,
				fmt.Sprintf("%.1f (%d files)", float64(bytes)/1024, files),
				float64(ds.RecoveryBytes)/1024, time.Duration(ds.RecoveryNs), m.Throughput,
				"recovered==replay")
		}
	}
	res.Tables = append(res.Tables, t)
	// The bounded-footprint check and headline: at the top volume, every
	// checkpointed interval must beat the interval-0 control, and at least
	// one checkpointed cell must exist at all (a sweep whose checkpointer
	// never fired would be vacuous).
	top := volumes[len(volumes)-1]
	hasControl := footKB[0] != nil && footKB[0][top] > 0
	anyTop := false
	for _, c := range checkpointed {
		if c.volume != top {
			continue
		}
		anyTop = true
		if hasControl && footKB[c.interval][top] >= footKB[0][top] {
			return nil, fmt.Errorf("E14: interval=%d footprint %.1fKB not below the interval-0 control %.1fKB at volume %d",
				c.interval, footKB[c.interval][top], footKB[0][top], top)
		}
		if hasControl {
			res.Text += fmt.Sprintf("\ninterval %dB at %d jobs: footprint %.1fKB vs %.1fKB unchecked (%.1fx smaller).",
				c.interval, top, footKB[c.interval][top], footKB[0][top], footKB[0][top]/footKB[c.interval][top])
		}
	}
	if len(checkpointed) > 0 && !anyTop {
		return nil, fmt.Errorf("E14: checkpointer fired only below the top volume; sweep misconfigured")
	}
	if hasControl && len(intervals) > 1 && len(checkpointed) == 0 {
		return nil, fmt.Errorf("E14: no cell completed a checkpoint; intervals %v too coarse for volumes %v", intervals, volumes)
	}
	return res, nil
}

// walFootprint sums the disk backend's on-disk files (segments and
// checkpoint files; the advisory LOCK file is bookkeeping, not state).
func walFootprint(dir string) (files int, bytes int64, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range ents {
		if e.IsDir() || e.Name() == "LOCK" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return 0, 0, err
		}
		files++
		bytes += info.Size()
	}
	return files, bytes, nil
}

// E15Config parameterizes the native SGT/OCC experiment; cmd/ccbench
// overrides the sweeps via its -shards, -users and -railstripes flags.
// RailStripes 0 stripes the sharded baselines' rail as widely as the shard
// count (the default).
var E15Config = struct {
	Jobs        int
	Users       int
	Shards      []int
	RailStripes int
	Backend     string
	MaxRestarts int
}{Jobs: 48, Users: 12, Shards: []int{1, 4}, RailStripes: 0, Backend: "kv", MaxRestarts: 10000}

// E15NativeSGTOCC measures the natively concurrent serialization-graph
// and optimistic schedulers (online.ConcurrentSGT on the striped
// union-find component graph, online.ConcurrentOCC on epoch-based
// backward validation) against their Sharded counterparts (single-threaded
// SGT/OCC per shard behind shard mutexes plus the striped cross-shard
// rail), with the natively concurrent TO and strict 2PL as the PR 4/5
// reference points, across shard count × access skew.
//
// Self-checks per cell mirror E11: on the disjoint regime every granted
// step executes against the storage backend and the committed state must
// equal core.Exec of the committed schedule; on the skewed regime (real
// conflicts, where non-strict execution may legitimately diverge from the
// committed replay — see internal/storage) the check is the schedulers'
// contract instead: all jobs commit and the committed schedule is
// conflict-serializable.
func E15NativeSGTOCC() (*Result, error) {
	return e15WithScale(E15Config.Jobs, E15Config.Users, E15Config.Shards, E15Config.RailStripes, E15Config.Backend, E15Config.MaxRestarts)
}

// E15Quick is a smaller variant for tests.
func E15Quick() (*Result, error) {
	return e15WithScale(12, 4, []int{2}, 0, E15Config.Backend, E15Config.MaxRestarts)
}

func e15WithScale(jobs, users int, shardSweep []int, railStripes int, backendName string, maxRestarts int) (*Result, error) {
	res := &Result{
		ID:    "E15",
		Title: "Native SGT + OCC — striped serialization graph and epoch validation vs Sharded(SGT)/Sharded(OCC) across shards × skew",
		Text: "csgt(n)/abort = natively concurrent SGT (striped union-find component graph, lock-free " +
			"zero-conflict grants); cocc(n)/backward = natively concurrent OCC (epoch-based backward " +
			"validation, no global critical section); sharded(n)/sgt|occ = the single-threaded originals " +
			"per shard behind shard mutexes + the striped ordering rail; cto(n) and 2pl-sharded(n) are the " +
			"natively concurrent reference points. The disjoint regime self-checks committed state == " +
			"committed replay on the storage backend; the skewed regime (real conflicts) self-checks " +
			"conflict-serializability of the committed schedule.",
	}
	regimes := []struct {
		name     string
		disjoint bool
		template *core.System
	}{
		{"disjoint across shards", true, workload.Disjoint(jobs, 3)},
		{"skewed access (hotspot)", false, workload.Random(workload.RandomConfig{
			NumTxs: jobs, MinSteps: 3, MaxSteps: 3, NumVars: 8, Hotspot: 1}, 1979)},
	}
	for _, reg := range regimes {
		t := report.NewTable(fmt.Sprintf("%s, %d jobs, %d users", reg.name, jobs, users),
			"scheduler", "committed", "aborts", "mean-sched-µs", "mean-wait-µs", "throughput-tx/s", "self-check")
		for _, shards := range shardSweep {
			stripes := railStripes
			if stripes <= 0 {
				stripes = shards
			}
			scheds := []online.Scheduler{
				online.NewConcurrentSGTAborting(shards),
				online.NewShardedRail(shards, stripes, func() online.Scheduler { return online.NewSGTAborting() }),
				online.NewConcurrentOCC(shards),
				online.NewShardedRail(shards, stripes, func() online.Scheduler { return online.NewOCC() }),
				online.NewConcurrentTO(shards),
				online.NewConcurrentStrict2PL(lockmgr.WoundWait, shards),
			}
			for _, sched := range scheds {
				cfg := sim.Config{System: sim.Instantiate(reg.template, jobs), Sched: sched,
					Users: users, Seed: 1979, MaxRestarts: maxRestarts}
				check := "schedule CSR"
				if reg.disjoint {
					be, err := NewBackend(backendName, shards, 256)
					if err != nil {
						return nil, err
					}
					cfg.Backend = be
					check = "state==replay"
				}
				m, err := sim.Run(cfg)
				if err != nil {
					return nil, err
				}
				if m.Committed != jobs {
					return nil, fmt.Errorf("E15: %s committed %d of %d on %s", sched.Name(), m.Committed, jobs, reg.name)
				}
				if reg.disjoint {
					replay, err := core.Exec(cfg.System, m.Output, cfg.System.InitialStates()[0])
					if err != nil {
						return nil, fmt.Errorf("E15: %s replay: %w", sched.Name(), err)
					}
					if !cfg.Backend.State().Equal(replay) {
						return nil, fmt.Errorf("E15: %s backend state diverged from committed replay", sched.Name())
					}
				} else {
					csr, _, err := conflict.Serializable(cfg.System, m.Output)
					if err != nil {
						return nil, fmt.Errorf("E15: %s output check: %w", sched.Name(), err)
					}
					if !csr {
						return nil, fmt.Errorf("E15: %s committed a non-conflict-serializable schedule", sched.Name())
					}
				}
				t.AddRow(sched.Name(), m.Committed, m.Aborts,
					m.SchedNs.Mean()/1e3, m.WaitNs.Mean()/1e3, m.Throughput, check)
			}
		}
		res.Tables = append(res.Tables, t)
	}
	return res, nil
}

// RunAll executes every experiment in order and returns the results.
func RunAll() ([]*Result, error) {
	m, order := All()
	var out []*Result
	for _, id := range order {
		r, err := m[id]()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	m, _ := All()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
