package locking

import (
	"math/rand"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/schedule"
)

// pair returns a two-transaction system in which both transactions access
// x and y (in the given per-transaction variable orders).
func pair(t1, t2 []core.Var) *core.System {
	mk := func(vars []core.Var) core.Transaction {
		steps := make([]core.Step, len(vars))
		for i, v := range vars {
			steps[i] = core.Step{Var: v, Kind: core.Update}
		}
		return core.Transaction{Steps: steps}
	}
	return (&core.System{
		Name: "pair",
		Txs:  []core.Transaction{mk(t1), mk(t2)},
	}).Normalize()
}

func TestNoLockOutputsAllOfH(t *testing.T) {
	sys := pair([]core.Var{"x", "y"}, []core.Var{"y", "x"})
	ls, err := NoLock{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Outputs(ls)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 6 {
		t.Errorf("no-lock outputs %d schedules, want |H| = 6", len(outs))
	}
}

// Every output of a 2PL-locked system is conflict-serializable.
func TestTwoPhaseOutputsAreSerializable(t *testing.T) {
	for _, sys := range []*core.System{
		pair([]core.Var{"x", "y"}, []core.Var{"y", "x"}),
		pair([]core.Var{"x", "y"}, []core.Var{"x", "y"}),
		pair([]core.Var{"x", "x"}, []core.Var{"x"}),
	} {
		ls, err := TwoPhase{}.Transform(sys)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := Outputs(ls)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) == 0 {
			t.Fatal("2PL emitted no schedules")
		}
		for _, h := range outs {
			if !h.Legal(sys.Format()) {
				t.Errorf("output %v illegal", h)
			}
			csr, _, err := conflict.Serializable(sys, h)
			if err != nil {
				t.Fatal(err)
			}
			if !csr {
				t.Errorf("2PL output %v is not conflict-serializable", h)
			}
		}
	}
}

// Section 5.4: 2PL′ is strictly better than 2PL — its output set strictly
// contains 2PL's on a suitable system. With two transactions the geometric
// argument makes 2PL already maximal, so the gap needs three: T1 = (x, y),
// T2 = (x), T3 = (y). Under 2PL, T1 releases X only at its lock point
// (after lock Y), so the CSR schedule (T11, T21, T31, T12) is blocked;
// under 2PL′, X is released right after T1's last use of x and Y is locked
// as late as possible, so T2 and T3 both slip in.
func TestTwoPhasePrimeStrictlyBeatsTwoPhase(t *testing.T) {
	mk := func(vars ...core.Var) core.Transaction {
		steps := make([]core.Step, len(vars))
		for i, v := range vars {
			steps[i] = core.Step{Var: v, Kind: core.Update}
		}
		return core.Transaction{Steps: steps}
	}
	sys := (&core.System{
		Name: "prime-gap",
		Txs:  []core.Transaction{mk("x", "y"), mk("x"), mk("y")},
	}).Normalize()
	plain, err := TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	prime, err := TwoPhasePrime{X: "x"}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	plainSet, err := OutputSet(plain)
	if err != nil {
		t.Fatal(err)
	}
	primeSet, err := OutputSet(prime)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plainSet {
		if !primeSet[k] {
			t.Errorf("2PL output %s missing from 2PL'", k)
		}
	}
	if len(primeSet) <= len(plainSet) {
		t.Errorf("2PL' outputs %d, 2PL outputs %d; want strict improvement", len(primeSet), len(plainSet))
	}
	gap := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 2, Idx: 0}, {Tx: 0, Idx: 1}}
	if plainSet[gap.Key()] {
		t.Errorf("2PL unexpectedly achieves %v", gap)
	}
	if !primeSet[gap.Key()] {
		t.Errorf("2PL' fails to achieve %v", gap)
	}
	// 2PL' outputs must still be correct, i.e. conflict-serializable here.
	outs, err := Outputs(prime)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range outs {
		csr, _, err := conflict.Serializable(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Errorf("2PL' output %v not conflict-serializable", h)
		}
	}
}

// Regression: on the cross system (T1 = x,y; T2 = y,x) a 2PL′ that locked
// X lazily emitted the non-serializable (T11, T21, T12, T22). With lock X
// held from transaction start (as in Figure 5) every output must be CSR.
func TestTwoPhasePrimeCorrectOnCross(t *testing.T) {
	sys := pair([]core.Var{"x", "y"}, []core.Var{"y", "x"})
	ls, err := TwoPhasePrime{X: "x"}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := Outputs(ls)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range outs {
		csr, _, err := conflict.Serializable(sys, h)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Errorf("2PL' emitted non-serializable %v on cross", h)
		}
	}
}

// Selective 2PL beats 2PL when a private variable's lock drags another
// variable's unlock past the lock point: T1 = (y, x, p) with p private and
// last, T2 = (y). Under 2PL, Y is released only after lock P (after T12);
// under selective 2PL, p is never locked, so Y frees before T12 and
// (T11, T21, T12, T13) becomes achievable.
func TestSelectiveBeats2PLOnPrivateVariables(t *testing.T) {
	sys := pair([]core.Var{"y", "x", "p"}, []core.Var{"y"})
	plain, _ := TwoPhase{}.Transform(sys)
	sel, _ := Selective2PL{}.Transform(sys)
	plainSet, err := OutputSet(plain)
	if err != nil {
		t.Fatal(err)
	}
	selSet, err := OutputSet(sel)
	if err != nil {
		t.Fatal(err)
	}
	for k := range plainSet {
		if !selSet[k] {
			t.Errorf("2PL output %s missing from selective", k)
		}
	}
	if len(selSet) <= len(plainSet) {
		t.Errorf("selective outputs %d vs 2PL %d; want strict improvement", len(selSet), len(plainSet))
	}
	gap := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 0, Idx: 2}}
	if plainSet[gap.Key()] {
		t.Errorf("2PL unexpectedly achieves %v", gap)
	}
	if !selSet[gap.Key()] {
		t.Errorf("selective 2PL fails to achieve %v", gap)
	}
}

// The memoryless/oblivious character of locking (Figure 4(a)): the output
// set of any locking policy is closed under exchanging history prefixes
// that lead to the same joint progress point. We verify the concrete
// consequence used in the paper: the serial schedules are always outputs.
func TestSerialSchedulesAlwaysAchievable(t *testing.T) {
	sys := pair([]core.Var{"x", "y"}, []core.Var{"y", "x"})
	for _, p := range []Policy{TwoPhase{}, TwoPhasePrime{X: "x"}, Selective2PL{}, NoLock{}} {
		ls, err := p.Transform(sys)
		if err != nil {
			t.Fatal(err)
		}
		set, err := OutputSet(ls)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range schedule.Serials(sys.Format()) {
			if !set[s.Key()] {
				t.Errorf("policy %s cannot emit serial schedule %v", p.Name(), s)
			}
		}
	}
}

// Safety sweep: on a family of random small systems, every output of every
// correct policy is conflict-serializable.
func TestPolicyOutputsAlwaysSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	vars := []core.Var{"x", "y", "z"}
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(2)
		txs := make([]core.Transaction, n)
		for i := range txs {
			m := 1 + rng.Intn(2)
			steps := make([]core.Step, m)
			for j := range steps {
				steps[j] = core.Step{Var: vars[rng.Intn(len(vars))], Kind: core.Update}
			}
			txs[i] = core.Transaction{Steps: steps}
		}
		sys := (&core.System{Name: "rand", Txs: txs}).Normalize()
		for _, p := range []Policy{TwoPhase{}, TwoPhasePrime{X: "x"}, Selective2PL{}} {
			ls, err := p.Transform(sys)
			if err != nil {
				t.Fatal(err)
			}
			if err := ls.Validate(); err != nil {
				t.Fatalf("trial %d, %s: %v", trial, p.Name(), err)
			}
			outs, err := Outputs(ls)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range outs {
				csr, _, err := conflict.Serializable(sys, h)
				if err != nil {
					t.Fatal(err)
				}
				if !csr {
					t.Fatalf("trial %d: %s emitted non-serializable %v for system\n%s",
						trial, p.Name(), h, sys)
				}
			}
		}
	}
}

func TestRunUndelayedOnCompatibleStream(t *testing.T) {
	sys := pair([]core.Var{"x"}, []core.Var{"x"})
	ls, err := TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Serial arrival: T1's three ops (lock, step, unlock) then T2's.
	arr, err := ArrivalsFromOpSchedule(ls, []int{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ls, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delays != 0 {
		t.Errorf("serial stream delayed %d times", res.Delays)
	}
	if len(res.Deadlocked) != 0 {
		t.Errorf("deadlocked: %v", res.Deadlocked)
	}
	want := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}}
	if !res.Data.Equal(want) {
		t.Errorf("data schedule = %v, want %v", res.Data, want)
	}
}

func TestRunDelaysConflictingStream(t *testing.T) {
	sys := pair([]core.Var{"x"}, []core.Var{"x"})
	ls, err := TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	// T1 locks x, then T2 tries to lock x: delayed until T1 unlocks.
	arr, err := ArrivalsFromOpSchedule(ls, []int{0, 1, 1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ls, arr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delays == 0 {
		t.Error("conflicting stream not delayed")
	}
	if len(res.Deadlocked) != 0 {
		t.Errorf("deadlocked: %v", res.Deadlocked)
	}
	// Output data schedule is serial T1 then T2.
	want := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}}
	if !res.Data.Equal(want) {
		t.Errorf("data schedule = %v, want %v", res.Data, want)
	}
}

func TestRunDetectsDeadlock(t *testing.T) {
	// Opposite lock orders: T1 locks X then wants Y; T2 locks Y then wants
	// X. With 2PL (lock as late as possible) T1's ops are
	// lock X, T11, lock Y, T12, unlock..., so interleaving the first two
	// ops of each transaction deadlocks.
	sys := pair([]core.Var{"x", "y"}, []core.Var{"y", "x"})
	ls, err := TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	// T1: lock X, T11, lock Y, ...; T2: lock Y, T21, lock X, ... — each
	// grabs its first lock, then each requests the other's.
	order := []int{0, 1, 0, 1, 0, 1, 0, 0, 0, 1, 1, 1}
	arr, err := ArrivalsFromOpSchedule(ls, order)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ls, arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deadlocked) != 2 {
		t.Errorf("deadlocked = %v, want both transactions", res.Deadlocked)
	}
}

func TestRunRejectsMalformedStreams(t *testing.T) {
	sys := pair([]core.Var{"x"}, []core.Var{"x"})
	ls, _ := TwoPhase{}.Transform(sys)
	if _, err := Run(ls, []OpRef{{Tx: 9, Idx: 0}}); err == nil {
		t.Error("unknown transaction accepted")
	}
	if _, err := Run(ls, []OpRef{{Tx: 0, Idx: 2}}); err == nil {
		t.Error("out-of-order arrival accepted")
	}
	if _, err := ArrivalsFromOpSchedule(ls, []int{0}); err == nil {
		t.Error("incomplete op schedule accepted")
	}
	if _, err := ArrivalsFromOpSchedule(ls, []int{0, 0, 0, 0}); err == nil {
		t.Error("overlong op schedule accepted")
	}
	if _, err := ArrivalsFromOpSchedule(ls, []int{5}); err == nil {
		t.Error("out-of-range transaction accepted")
	}
}

// The fixpoint characterization: an arrival stream whose op order is an
// achievable execution passes with zero delays; the data projections of
// undelayed streams are exactly Outputs(ls).
func TestRunFixpointMatchesOutputs(t *testing.T) {
	sys := pair([]core.Var{"x", "y"}, []core.Var{"x", "y"})
	ls, err := TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	outSet, err := OutputSet(ls)
	if err != nil {
		t.Fatal(err)
	}
	// Enumerate all op-arrival interleavings (choose positions of tx 0's
	// ops among all ops) and compare undelayed data projections with the
	// output set.
	n0, n1 := len(ls.Txs[0].Ops), len(ls.Txs[1].Ops)
	undelayed := map[string]bool{}
	var rec func(order []int, a, b int)
	var orders [][]int
	rec = func(order []int, a, b int) {
		if a == n0 && b == n1 {
			orders = append(orders, append([]int(nil), order...))
			return
		}
		if a < n0 {
			rec(append(order, 0), a+1, b)
		}
		if b < n1 {
			rec(append(order, 1), a, b+1)
		}
	}
	rec(nil, 0, 0)
	for _, order := range orders {
		arr, err := ArrivalsFromOpSchedule(ls, order)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(ls, arr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delays == 0 && len(res.Deadlocked) == 0 {
			undelayed[res.Data.Key()] = true
			if !outSet[res.Data.Key()] {
				t.Errorf("undelayed projection %v not in Outputs", res.Data)
			}
		}
	}
	for k := range outSet {
		if !undelayed[k] {
			t.Errorf("output %s never achieved undelayed", k)
		}
	}
}
