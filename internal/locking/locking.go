// Package locking implements Section 5 of Kung & Papadimitriou 1979:
// locking policies as transaction-system transformers, locked transaction
// systems, and the lock-respecting scheduler (LRS).
//
// A locking policy L maps an ordinary transaction system T to a locked
// system L(T): the same data steps with well-nested "lock X" / "unlock X"
// steps inserted over a set LV of locking variables. Lock steps have the
// fixed interpretation
//
//	lock X:   X ← if X = 0 then 1 else −1
//	unlock X: X ← if X = 1 then 0 else −1
//
// and the integrity constraints of L(T) assert only that every locking
// variable is 0. All the cleverness lives in the policy; L(T) is then
// entrusted to the very simple lock-respecting scheduler, which sees only
// the lock/unlock steps and delays a transaction whose lock request would
// error. LRS is optimal for that level of information.
//
// The package provides the two-phase policy 2PL of [Eswaran et al. 76]
// (Figure 2), the paper's strictly better separable variant 2PL′ (Section
// 5.4, Figure 5), a non-separable selective 2PL that skips variables
// accessed by a single transaction, and machinery to enumerate the set of
// data schedules a locked system can emit — the policy's performance in the
// sense of Section 5.2.
package locking

import (
	"fmt"
	"sort"
	"strings"

	"optcc/internal/core"
)

// OpKind distinguishes the three kinds of operations in a locked
// transaction.
type OpKind int

const (
	// OpLock is a "lock X" step.
	OpLock OpKind = iota
	// OpUnlock is an "unlock X" step.
	OpUnlock
	// OpStep is an original data step of the base system.
	OpStep
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpStep:
		return "step"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one operation of a locked transaction.
type Op struct {
	Kind OpKind
	// LV names the locking variable for OpLock/OpUnlock.
	LV string
	// Step identifies the base-system step for OpStep.
	Step core.StepID
}

// String renders the op as in the paper's figures.
func (o Op) String() string {
	switch o.Kind {
	case OpLock:
		return "lock " + o.LV
	case OpUnlock:
		return "unlock " + o.LV
	default:
		return o.Step.String()
	}
}

// LockVarFor derives the display name of the locking variable guarding a
// data variable: single-letter variables follow the paper ("x" → "X"),
// anything else is suffixed.
func LockVarFor(v core.Var) string {
	s := string(v)
	if len(s) == 1 && s[0] >= 'a' && s[0] <= 'z' {
		return strings.ToUpper(s)
	}
	return s + ".lk"
}

// Tx is a locked transaction: the ops of one base transaction with lock
// steps inserted.
type Tx struct {
	Name string
	Ops  []Op
}

// Len returns the number of ops.
func (t *Tx) Len() int { return len(t.Ops) }

// String renders one op per line, indentation matching the figures.
func (t *Tx) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", t.Name)
	for _, op := range t.Ops {
		fmt.Fprintf(&b, "  %s\n", op)
	}
	return b.String()
}

// System is a locked transaction system L(T).
type System struct {
	// Base is the original system T.
	Base *core.System
	// Policy names the policy that produced the transformation.
	Policy string
	Txs    []Tx
}

// LockVars returns the sorted set of locking variables used.
func (s *System) LockVars() []string {
	seen := map[string]bool{}
	for i := range s.Txs {
		for _, op := range s.Txs[i].Ops {
			if op.Kind != OpStep {
				seen[op.LV] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for lv := range seen {
		out = append(out, lv)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural invariants of a locked system: every data
// step of the base appears exactly once and in order; lock/unlock steps are
// well-nested per transaction (each lock later unlocked, no unlock without
// a lock, no re-lock while held).
func (s *System) Validate() error {
	format := s.Base.Format()
	if len(s.Txs) != len(format) {
		return fmt.Errorf("locked system has %d transactions, base has %d", len(s.Txs), len(format))
	}
	for i := range s.Txs {
		next := 0
		held := map[string]bool{}
		for _, op := range s.Txs[i].Ops {
			switch op.Kind {
			case OpStep:
				if op.Step.Tx != i || op.Step.Idx != next {
					return fmt.Errorf("tx %d: data step %v out of order (want index %d)", i, op.Step, next)
				}
				next++
			case OpLock:
				if held[op.LV] {
					return fmt.Errorf("tx %d: lock %s while held", i, op.LV)
				}
				held[op.LV] = true
			case OpUnlock:
				if !held[op.LV] {
					return fmt.Errorf("tx %d: unlock %s while not held", i, op.LV)
				}
				delete(held, op.LV)
			}
		}
		if next != format[i] {
			return fmt.Errorf("tx %d: %d of %d data steps present", i, next, format[i])
		}
		if len(held) != 0 {
			return fmt.Errorf("tx %d: locks held at end: %v", i, held)
		}
	}
	return nil
}

// TwoPhase reports whether every transaction is two-phase: no lock op after
// the first unlock op.
func (s *System) TwoPhase() bool {
	for i := range s.Txs {
		unlocked := false
		for _, op := range s.Txs[i].Ops {
			switch op.Kind {
			case OpUnlock:
				unlocked = true
			case OpLock:
				if unlocked {
					return false
				}
			}
		}
	}
	return true
}

// WellFormed reports whether every data step on v executes while the
// transaction holds the primary locking variable LockVarFor(v).
func (s *System) WellFormed() bool {
	for i := range s.Txs {
		held := map[string]bool{}
		for _, op := range s.Txs[i].Ops {
			switch op.Kind {
			case OpLock:
				held[op.LV] = true
			case OpUnlock:
				delete(held, op.LV)
			case OpStep:
				v := s.Base.Step(op.Step).Var
				if !held[LockVarFor(v)] {
					return false
				}
			}
		}
	}
	return true
}

// LockSpan returns, for transaction tx, the half-open op-index interval
// [lock, unlock) during which each locking variable is held. Every lock
// variable locked at most once per transaction is assumed (true for the
// policies here except 2PL′'s auxiliary variable, for which the spans are
// returned as a slice).
func (s *System) LockSpans(tx int) map[string][][2]int {
	out := map[string][][2]int{}
	open := map[string]int{}
	for pos, op := range s.Txs[tx].Ops {
		switch op.Kind {
		case OpLock:
			open[op.LV] = pos
		case OpUnlock:
			out[op.LV] = append(out[op.LV], [2]int{open[op.LV], pos})
			delete(open, op.LV)
		}
	}
	return out
}

// Policy transforms transaction systems into locked systems.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Separable reports whether the policy transforms each transaction
	// independently of the others (Section 5.4).
	Separable() bool
	// Transform produces the locked system.
	Transform(sys *core.System) (*System, error)
}
