package locking

import (
	"fmt"
	"sort"
	"strings"

	"optcc/internal/core"
)

// Outputs enumerates the complete data schedules a locked system can emit:
// the projections (lock/unlock steps removed, Section 5.2) of every
// execution in which each "lock X" is granted only while X is free. This is
// both the output set of the lock-respecting scheduler and the performance
// measure of the policy that produced the system.
//
// Executions that deadlock contribute nothing. The enumeration memoizes on
// the joint op-program-counter vector, so its cost is polynomial in the
// number of joint states times the size of the answer.
func Outputs(ls *System) ([]core.Schedule, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	n := len(ls.Txs)
	memo := map[string]map[string]core.Schedule{}
	pc := make([]int, n)

	// The set of held lock variables is a function of the pc vector (each
	// transaction's holdings depend only on its own prefix), so memoizing
	// on the pc vector alone is sound.
	key := func(pc []int) string {
		var b strings.Builder
		for _, p := range pc {
			fmt.Fprintf(&b, "%d,", p)
		}
		return b.String()
	}

	held := map[string]int{} // lock var → holding tx, maintained incrementally
	var suffixes func() map[string]core.Schedule
	suffixes = func() map[string]core.Schedule {
		k := key(pc)
		if got, ok := memo[k]; ok {
			return got
		}
		out := map[string]core.Schedule{}
		done := true
		for i := 0; i < n; i++ {
			if pc[i] >= len(ls.Txs[i].Ops) {
				continue
			}
			done = false
			op := ls.Txs[i].Ops[pc[i]]
			switch op.Kind {
			case OpLock:
				if holder, taken := held[op.LV]; taken {
					_ = holder
					continue // blocked: LRS delays this transaction
				}
				held[op.LV] = i
				pc[i]++
				for sk, suf := range suffixes() {
					out[sk] = suf
				}
				pc[i]--
				delete(held, op.LV)
			case OpUnlock:
				prev, had := held[op.LV]
				delete(held, op.LV)
				pc[i]++
				for sk, suf := range suffixes() {
					out[sk] = suf
				}
				pc[i]--
				if had {
					held[op.LV] = prev
				}
			case OpStep:
				pc[i]++
				for _, suf := range suffixes() {
					ext := append(core.Schedule{op.Step}, suf...)
					out[ext.Key()] = ext
				}
				pc[i]--
			}
		}
		if done {
			out[""] = core.Schedule{}
		}
		memo[k] = out
		return out
	}
	set := suffixes()
	res := make([]core.Schedule, 0, len(set))
	for _, h := range set {
		res = append(res, h)
	}
	sort.Slice(res, func(i, j int) bool { return res[i].Key() < res[j].Key() })
	return res, nil
}

// OutputSet returns Outputs keyed by Schedule.Key for membership queries.
func OutputSet(ls *System) (map[string]bool, error) {
	hs, err := Outputs(ls)
	if err != nil {
		return nil, err
	}
	set := make(map[string]bool, len(hs))
	for _, h := range hs {
		set[h.Key()] = true
	}
	return set, nil
}

// OpRef identifies one op of a locked system: op Idx of transaction Tx.
type OpRef struct {
	Tx, Idx int
}

// RunResult reports one LRS execution over an arriving op stream.
type RunResult struct {
	// Output is the op sequence actually executed, in execution order.
	Output []Op
	// Data is the projection of Output to data steps.
	Data core.Schedule
	// Delays counts ops that could not execute on arrival.
	Delays int
	// Deadlocked lists transactions still blocked when the stream ended.
	Deadlocked []int
}

// Run drives the lock-respecting scheduler over an arriving stream of op
// references (an interleaving of each transaction's op order). Ops execute
// on arrival when possible; a transaction whose lock request is blocked
// buffers all its subsequent arrivals until the lock frees. LRS sees only
// the lock and unlock steps — data steps are always granted.
func Run(ls *System, arrivals []OpRef) (*RunResult, error) {
	if err := ls.Validate(); err != nil {
		return nil, err
	}
	n := len(ls.Txs)
	next := make([]int, n)    // next op each transaction is allowed to execute
	arrived := make([]int, n) // number of ops arrived per transaction
	held := map[string]int{}
	res := &RunResult{}
	blockedOrder := []int{} // FIFO of blocked transactions

	exec := func(i int) bool {
		// Execute ops of tx i while arrived and not blocked.
		progressed := false
		for next[i] < arrived[i] {
			op := ls.Txs[i].Ops[next[i]]
			if op.Kind == OpLock {
				if holder, taken := held[op.LV]; taken && holder != i {
					return progressed
				}
				held[op.LV] = i
			}
			if op.Kind == OpUnlock {
				delete(held, op.LV)
			}
			res.Output = append(res.Output, op)
			if op.Kind == OpStep {
				res.Data = append(res.Data, op.Step)
			}
			next[i]++
			progressed = true
		}
		return progressed
	}

	for _, ref := range arrivals {
		if ref.Tx < 0 || ref.Tx >= n {
			return nil, fmt.Errorf("lrs: arrival for unknown transaction %d", ref.Tx)
		}
		if ref.Idx != arrived[ref.Tx] {
			return nil, fmt.Errorf("lrs: arrival %v out of order (want op %d)", ref, arrived[ref.Tx])
		}
		arrived[ref.Tx]++
		exec(ref.Tx)
		if next[ref.Tx] < arrived[ref.Tx] {
			res.Delays++
			found := false
			for _, b := range blockedOrder {
				if b == ref.Tx {
					found = true
					break
				}
			}
			if !found {
				blockedOrder = append(blockedOrder, ref.Tx)
			}
		}
		// Unlocks may have freed blocked transactions; retry FIFO until
		// quiescent.
		for {
			progressed := false
			remaining := blockedOrder[:0]
			for _, b := range blockedOrder {
				exec(b)
				if next[b] < arrived[b] {
					remaining = append(remaining, b)
				} else {
					progressed = true
				}
			}
			blockedOrder = remaining
			if !progressed {
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		if next[i] < len(ls.Txs[i].Ops) && next[i] < arrived[i] {
			res.Deadlocked = append(res.Deadlocked, i)
		}
	}
	return res, nil
}

// ArrivalsFromOpSchedule converts a complete interleaving of each
// transaction's ops (given per-transaction in program order) into the
// OpRef arrival stream for Run.
func ArrivalsFromOpSchedule(ls *System, order []int) ([]OpRef, error) {
	counts := make([]int, len(ls.Txs))
	var out []OpRef
	for _, tx := range order {
		if tx < 0 || tx >= len(ls.Txs) {
			return nil, fmt.Errorf("lrs: transaction %d out of range", tx)
		}
		if counts[tx] >= len(ls.Txs[tx].Ops) {
			return nil, fmt.Errorf("lrs: too many arrivals for transaction %d", tx)
		}
		out = append(out, OpRef{Tx: tx, Idx: counts[tx]})
		counts[tx]++
	}
	for i, c := range counts {
		if c != len(ls.Txs[i].Ops) {
			return nil, fmt.Errorf("lrs: transaction %d has %d of %d ops in the stream", i, c, len(ls.Txs[i].Ops))
		}
	}
	return out, nil
}
