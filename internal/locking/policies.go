package locking

import (
	"fmt"
	"sort"

	"optcc/internal/core"
)

// event is an op with a scheduling position: time orders events around data
// steps (data step j sits at time 2j+1; the slot before it is 2j, after it
// 2j+2), pri orders events within a slot.
type event struct {
	time, pri int
	op        Op
	// la breaks ties among unlocks in one slot: larger la unlocks first,
	// matching Figure 2(b) (unlock X before unlock Y).
	la int
}

func sortEvents(evs []event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].time != evs[j].time {
			return evs[i].time < evs[j].time
		}
		if evs[i].pri != evs[j].pri {
			return evs[i].pri < evs[j].pri
		}
		if evs[i].la != evs[j].la {
			return evs[i].la > evs[j].la
		}
		return evs[i].op.LV < evs[j].op.LV
	})
}

// twoPhaseEvents builds the 2PL events for one transaction, locking only
// the variables accepted by lockable. Locks are as late and unlocks as
// early as possible subject to the two-phase condition (no lock after the
// first unlock), exactly the rules of Section 5.2.
func twoPhaseEvents(txIdx int, steps []core.Step, lockable func(core.Var) bool) []event {
	fa := map[core.Var]int{}
	la := map[core.Var]int{}
	for j, st := range steps {
		if !lockable(st.Var) {
			continue
		}
		if _, ok := fa[st.Var]; !ok {
			fa[st.Var] = j
		}
		la[st.Var] = j
	}
	var evs []event
	for j := range steps {
		evs = append(evs, event{time: 2*j + 1, op: Op{Kind: OpStep, Step: core.StepID{Tx: txIdx, Idx: j}}})
	}
	if len(fa) == 0 {
		return evs
	}
	faMax := -1
	for _, j := range fa {
		if j > faMax {
			faMax = j
		}
	}
	for v, j := range fa {
		evs = append(evs, event{time: 2 * j, pri: 0, op: Op{Kind: OpLock, LV: LockVarFor(v)}})
		// Unlock as early as possible: after the variable's last access,
		// but never before the transaction's last lock (two-phase).
		if la[v] < faMax {
			evs = append(evs, event{time: 2 * faMax, pri: 1, la: la[v], op: Op{Kind: OpUnlock, LV: LockVarFor(v)}})
		} else {
			evs = append(evs, event{time: 2 * (la[v] + 1), pri: 1, la: la[v], op: Op{Kind: OpUnlock, LV: LockVarFor(v)}})
		}
	}
	return evs
}

func opsOf(evs []event) []Op {
	sortEvents(evs)
	ops := make([]Op, len(evs))
	for i, e := range evs {
		ops[i] = e.op
	}
	return ops
}

// TwoPhase is the two-phase locking policy 2PL of [Eswaran et al. 76]: a
// locking variable per data variable, lock before first access, unlock
// after last access, no lock after the first unlock (Figure 2). It is
// separable and uses only syntactic information.
type TwoPhase struct{}

// Name implements Policy.
func (TwoPhase) Name() string { return "2PL" }

// Separable implements Policy.
func (TwoPhase) Separable() bool { return true }

// Transform implements Policy.
func (TwoPhase) Transform(sys *core.System) (*System, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	ls := &System{Base: sys, Policy: "2PL"}
	for i := range sys.Txs {
		evs := twoPhaseEvents(i, sys.Txs[i].Steps, func(core.Var) bool { return true })
		ls.Txs = append(ls.Txs, Tx{Name: sys.Txs[i].Name, Ops: opsOf(evs)})
	}
	return ls, nil
}

// TwoPhasePrime is the paper's 2PL′ (Section 5.4, Figure 5): 2PL on every
// variable except a distinguished one x, whose lock X is held from before
// x's first usage to just after its last usage, chained through an
// auxiliary locking variable X′:
//
//  1. apply 2PL to all variables except x;
//  2. after the first usage of x insert the pair lock X′ — unlock X′;
//  3. after the last usage of x insert lock X′, unlock X;
//  4. after the last lock step insert unlock X′.
//
// 2PL′ is correct, separable, and strictly better than 2PL in performance —
// but it is not two-phase, and it distinguishes x (so it does not
// contradict 2PL's optimality on unstructured variables).
type TwoPhasePrime struct {
	// X is the distinguished variable.
	X core.Var
}

// Name implements Policy.
func (p TwoPhasePrime) Name() string { return fmt.Sprintf("2PL'(%s)", p.X) }

// Separable implements Policy.
func (TwoPhasePrime) Separable() bool { return true }

// Transform implements Policy.
func (p TwoPhasePrime) Transform(sys *core.System) (*System, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	ls := &System{Base: sys, Policy: p.Name()}
	lockX := LockVarFor(p.X)
	aux := lockX + "'"
	for i := range sys.Txs {
		steps := sys.Txs[i].Steps
		evs := twoPhaseEvents(i, steps, func(v core.Var) bool { return v != p.X })
		first, last := -1, -1
		for j, st := range steps {
			if st.Var == p.X {
				if first < 0 {
					first = j
				}
				last = j
			}
		}
		if first >= 0 {
			// lock X at the very start of the transaction, as in Figure 5
			// (rules 2–4 position only X′ and unlock X; holding X from the
			// start is what keeps 2PL′ correct when x is used late).
			evs = append(evs, event{time: 0, pri: -100, op: Op{Kind: OpLock, LV: lockX}})
			// Rule 3's lock X′ extends the transaction's lock point: the
			// 2PL unlocks of the other variables must not precede it, or a
			// peer could slip between an early unlock and the X′
			// handshake (in Figure 5 the condition holds for free because
			// z's lock already follows x's last usage).
			for i := range evs {
				if evs[i].op.Kind == OpUnlock && evs[i].time < 2*(last+1) {
					evs[i].time = 2 * (last + 1)
				}
			}
			// Rule 2: lock X′ — unlock X′ immediately after the first usage.
			evs = append(evs, event{time: 2 * (first + 1), pri: -4, op: Op{Kind: OpLock, LV: aux}})
			evs = append(evs, event{time: 2 * (first + 1), pri: -3, op: Op{Kind: OpUnlock, LV: aux}})
			// Rule 3: lock X′, unlock X immediately after the last usage.
			evs = append(evs, event{time: 2 * (last + 1), pri: -2, op: Op{Kind: OpLock, LV: aux}})
			evs = append(evs, event{time: 2 * (last + 1), pri: -1, op: Op{Kind: OpUnlock, LV: lockX}})
			// Rule 4: unlock X′ after the last lock step.
			sortEvents(evs)
			lastLock := -1
			for k, e := range evs {
				if e.op.Kind == OpLock {
					lastLock = k
				}
			}
			lastEv := evs[lastLock]
			evs = append(evs, event{time: lastEv.time, pri: 1000, op: Op{Kind: OpUnlock, LV: aux}})
		}
		ls.Txs = append(ls.Txs, Tx{Name: sys.Txs[i].Name, Ops: opsOf(evs)})
	}
	return ls, nil
}

// Selective2PL is the non-separable improvement described in Section 5.4's
// "trivial reason" counterexample: apply 2PL but skip every variable
// accessed by only one transaction — such variables need no lock at all.
// Correct, strictly better than 2PL, but requires global knowledge of all
// transactions (it is not separable).
type Selective2PL struct{}

// Name implements Policy.
func (Selective2PL) Name() string { return "selective-2PL" }

// Separable implements Policy.
func (Selective2PL) Separable() bool { return false }

// Transform implements Policy.
func (Selective2PL) Transform(sys *core.System) (*System, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	shared := map[core.Var]bool{}
	for _, v := range sys.Vars() {
		shared[v] = len(sys.Accessors(v)) > 1
	}
	ls := &System{Base: sys, Policy: "selective-2PL"}
	for i := range sys.Txs {
		evs := twoPhaseEvents(i, sys.Txs[i].Steps, func(v core.Var) bool { return shared[v] })
		ls.Txs = append(ls.Txs, Tx{Name: sys.Txs[i].Name, Ops: opsOf(evs)})
	}
	return ls, nil
}

// NoLock inserts no locks at all: the locked system is the base system.
// Its output set is all of H — an upper bound useful as a baseline (it is
// of course incorrect as a concurrency control for most systems).
type NoLock struct{}

// Name implements Policy.
func (NoLock) Name() string { return "no-lock" }

// Separable implements Policy.
func (NoLock) Separable() bool { return true }

// Transform implements Policy.
func (NoLock) Transform(sys *core.System) (*System, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	ls := &System{Base: sys, Policy: "no-lock"}
	for i := range sys.Txs {
		var ops []Op
		for j := range sys.Txs[i].Steps {
			ops = append(ops, Op{Kind: OpStep, Step: core.StepID{Tx: i, Idx: j}})
		}
		ls.Txs = append(ls.Txs, Tx{Name: sys.Txs[i].Name, Ops: ops})
	}
	return ls, nil
}
