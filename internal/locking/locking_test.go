package locking

import (
	"strings"
	"testing"

	"optcc/internal/core"
)

// figure2Tx is the transaction of Figure 2(a): steps on x, y, x, z.
func figure2Tx() *core.System {
	return (&core.System{
		Name: "figure2",
		Txs: []core.Transaction{
			{Name: "Ti", Steps: []core.Step{
				{Var: "x", Kind: core.Update},
				{Var: "y", Kind: core.Update},
				{Var: "x", Kind: core.Update},
				{Var: "z", Kind: core.Update},
			}},
		},
	}).Normalize()
}

func opsAsStrings(tx Tx) []string {
	out := make([]string, len(tx.Ops))
	for i, op := range tx.Ops {
		out[i] = op.String()
	}
	return out
}

// Figure 2(b): the canonical 2PL transformation.
func TestFigure2TwoPhaseTransformation(t *testing.T) {
	ls, err := TwoPhase{}.Transform(figure2Tx())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"lock X",
		"T11",
		"lock Y",
		"T12",
		"T13",
		"lock Z",
		"unlock X",
		"unlock Y",
		"T14",
		"unlock Z",
	}
	got := opsAsStrings(ls.Txs[0])
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("2PL ops:\n got %v\nwant %v", got, want)
	}
	if !ls.TwoPhase() {
		t.Error("2PL transformation not two-phase")
	}
	if !ls.WellFormed() {
		t.Error("2PL transformation not well-formed")
	}
	if err := ls.Validate(); err != nil {
		t.Error(err)
	}
}

// Figure 5(b): the 2PL′ transformation of the same transaction.
func TestFigure5TwoPhasePrimeTransformation(t *testing.T) {
	ls, err := TwoPhasePrime{X: "x"}.Transform(figure2Tx())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"lock X",
		"T11",
		"lock X'",
		"unlock X'",
		"lock Y",
		"T12",
		"T13",
		"lock X'",
		"unlock X",
		"lock Z",
		"unlock Y",
		"unlock X'",
		"T14",
		"unlock Z",
	}
	got := opsAsStrings(ls.Txs[0])
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("2PL' ops:\n got %v\nwant %v", got, want)
	}
	if ls.TwoPhase() {
		t.Error("2PL' should NOT be two-phase (unlock X precedes lock Z)")
	}
	if !ls.WellFormed() {
		t.Error("2PL' transformation not well-formed")
	}
	if err := ls.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTwoPhasePrimeWithoutXIsPlain2PL(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{
			{Var: "y", Kind: core.Update},
			{Var: "z", Kind: core.Update},
		}}},
	}).Normalize()
	prime, err := TwoPhasePrime{X: "x"}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TwoPhase{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(opsAsStrings(prime.Txs[0]), "|") != strings.Join(opsAsStrings(plain.Txs[0]), "|") {
		t.Errorf("2PL' differs from 2PL on a transaction not touching x:\n%v\n%v",
			opsAsStrings(prime.Txs[0]), opsAsStrings(plain.Txs[0]))
	}
}

func TestTwoPhasePrimeSingleUseOfX(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	ls, err := TwoPhasePrime{X: "x"}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Validate(); err != nil {
		t.Fatalf("single-use-of-x transformation invalid: %v\nops: %v", err, opsAsStrings(ls.Txs[0]))
	}
	if !ls.WellFormed() {
		t.Errorf("not well-formed: %v", opsAsStrings(ls.Txs[0]))
	}
}

func TestSelective2PLSkipsPrivateVariables(t *testing.T) {
	// x is shared; p and q are private to one transaction each.
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "p", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "q", Kind: core.Update}, {Var: "x", Kind: core.Update}}},
		},
	}).Normalize()
	ls, err := Selective2PL{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range ls.LockVars() {
		if lv != "X" {
			t.Errorf("selective 2PL locked %s; only X should be locked", lv)
		}
	}
	if err := ls.Validate(); err != nil {
		t.Error(err)
	}
	if (Selective2PL{}).Separable() {
		t.Error("selective 2PL claims to be separable")
	}
}

func TestNoLockTransform(t *testing.T) {
	sys := figure2Tx()
	ls, err := NoLock{}.Transform(sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.LockVars()) != 0 {
		t.Error("no-lock policy inserted locks")
	}
	if err := ls.Validate(); err != nil {
		t.Error(err)
	}
	if ls.WellFormed() {
		t.Error("no-lock system claims well-formedness")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ls, err := TwoPhase{}.Transform(figure2Tx())
	if err != nil {
		t.Fatal(err)
	}
	// Drop a data step.
	bad := *ls
	bad.Txs = append([]Tx(nil), ls.Txs...)
	bad.Txs[0].Ops = bad.Txs[0].Ops[:len(bad.Txs[0].Ops)-2]
	if err := bad.Validate(); err == nil {
		t.Error("validation passed with missing ops")
	}
	// Unlock without lock.
	bad2 := *ls
	bad2.Txs = []Tx{{Name: "T", Ops: []Op{{Kind: OpUnlock, LV: "X"}}}}
	if err := bad2.Validate(); err == nil {
		t.Error("unlock-without-lock accepted")
	}
	// Double lock.
	bad3 := *ls
	bad3.Txs = []Tx{{Name: "T", Ops: []Op{{Kind: OpLock, LV: "X"}, {Kind: OpLock, LV: "X"}}}}
	if err := bad3.Validate(); err == nil {
		t.Error("double lock accepted")
	}
}

func TestLockVarFor(t *testing.T) {
	if LockVarFor("x") != "X" {
		t.Error("single-letter variable")
	}
	if LockVarFor("acct") != "acct.lk" {
		t.Error("multi-letter variable")
	}
}

func TestLockSpans(t *testing.T) {
	ls, err := TwoPhase{}.Transform(figure2Tx())
	if err != nil {
		t.Fatal(err)
	}
	spans := ls.LockSpans(0)
	x := spans["X"]
	if len(x) != 1 || x[0][0] != 0 || x[0][1] != 6 {
		t.Errorf("span of X = %v, want [[0 6]]", x)
	}
	z := spans["Z"]
	if len(z) != 1 || z[0][0] != 5 || z[0][1] != 9 {
		t.Errorf("span of Z = %v, want [[5 9]]", z)
	}
}

func TestOpAndKindStrings(t *testing.T) {
	if (Op{Kind: OpLock, LV: "X"}).String() != "lock X" {
		t.Error("lock op string")
	}
	if (Op{Kind: OpUnlock, LV: "X"}).String() != "unlock X" {
		t.Error("unlock op string")
	}
	if (Op{Kind: OpStep, Step: core.StepID{Tx: 0, Idx: 0}}).String() != "T11" {
		t.Error("step op string")
	}
	if OpLock.String() != "lock" || OpUnlock.String() != "unlock" || OpStep.String() != "step" {
		t.Error("kind strings")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind")
	}
	ls, _ := TwoPhase{}.Transform(figure2Tx())
	if !strings.Contains(ls.Txs[0].String(), "lock X") {
		t.Error("Tx.String missing ops")
	}
	if ls.Txs[0].Len() != 10 {
		t.Errorf("Tx.Len = %d", ls.Txs[0].Len())
	}
}
