// Package linttest is the golden-test harness for the cclint analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest: a fixture is a
// compilable package under internal/lint/testdata/src/<name>/, and every
// line that should produce a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment whose pattern must match the diagnostic message. Run loads the
// fixture with the real loader, executes one analyzer through the real
// driver core (shared-index prepass, ignore filtering, sorting — exactly
// the production path), and fails the test on any mismatch in either
// direction. A fixture with no want comments is a negative test: the
// analyzer must stay silent on it.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"optcc/internal/lint"
	"optcc/internal/lint/analysis"
	"optcc/internal/lint/loader"
)

// wantRe extracts the expectation pattern from a `// want "..."` comment.
// Backquoted patterns are accepted too, so fixtures can expect quotes.
var wantRe = regexp.MustCompile("//\\s*want\\s+(\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run executes one analyzer over the fixture directory and compares its
// findings against the fixture's want comments.
func Run(t *testing.T, fixtureDir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := loader.Load(fixtureDir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	wants := collectWants(t, pkgs)
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixtureDir, err)
	}

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic:\n  %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic: %s:%d: no finding matching %q", w.file, w.line, w.re)
		}
	}
}

// collectWants reads every want comment from the fixture's root packages.
func collectWants(t *testing.T, pkgs []*loader.Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, p := range pkgs {
		if !p.Root {
			continue
		}
		for _, f := range p.Syntax {
			for _, g := range f.Comments {
				for _, c := range g.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "\"") {
							t.Fatalf("%s: unparseable want comment: %s", p.Fset.Position(c.Pos()), c.Text)
						}
						continue
					}
					pat := m[2]
					if m[3] != "" {
						pat = m[3]
					} else {
						// The pattern was written inside a Go string in a
						// comment; unquote the common escapes.
						pat = strings.ReplaceAll(pat, `\"`, `"`)
						pat = strings.ReplaceAll(pat, `\\`, `\`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p.Fset.Position(c.Pos()), pat, err)
					}
					pos := p.Fset.Position(c.Pos())
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// RunExpectClean asserts the analyzer produces zero diagnostics on the
// fixture and that the fixture really contains no want comments (guarding
// against a typo silently turning a positive fixture into a vacuous pass).
func RunExpectClean(t *testing.T, fixtureDir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := loader.Load(fixtureDir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixtureDir, err)
	}
	if wants := collectWants(t, pkgs); len(wants) != 0 {
		t.Fatalf("negative fixture %s contains %d want comments; use Run for positive fixtures", fixtureDir, len(wants))
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, fixtureDir, err)
	}
	for _, f := range findings {
		t.Errorf("negative fixture produced a diagnostic:\n  %s", f)
	}
}
