package lint

import (
	"go/ast"
	"go/types"

	"optcc/internal/lint/analysis"
)

// Gojoin enforces goroutine join discipline in the simulator: every `go`
// statement in a package named sim must be trackable to completion from its
// spawn site — the spawned body signals through a sync.WaitGroup.Done or by
// sending on / closing a channel declared outside the body. An untracked
// goroutine outlives Run's return and mutates Metrics/History while the
// caller reads them — exactly the class of bug the PR 7 sharded-loop fix
// (loopWG) closed, now kept closed mechanically.
//
// Accepted evidence inside the spawned body (or the body of a same-package
// named function the go statement calls):
//
//   - wg.Done() or defer wg.Done() on a sync.WaitGroup
//   - close(ch) or ch <- v where ch is an identifier bound outside the
//     spawned body (a reply channel owned by the spawner)
//
// Sends on channels reached through struct fields (r.reply <- v) do NOT
// count: the spawner cannot wait on a channel it cannot name, so such a
// goroutine is still unjoined from the spawn site's point of view.
var Gojoin = &analysis.Analyzer{
	Name: "gojoin",
	Doc:  "require every go statement in internal/sim to be joined via WaitGroup or channel",
	Run:  runGojoin,
}

func runGojoin(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "sim" {
		return nil
	}
	// Index same-package function declarations so `go name(...)` can be
	// resolved to a body.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[fun]; obj != nil {
					if fd := decls[obj]; fd != nil {
						body = fd.Body
					}
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[fun]; ok {
					if fd := decls[sel.Obj()]; fd != nil {
						body = fd.Body
					}
				}
			}
			if body == nil {
				pass.Reportf(g.Pos(), "go statement spawns an unresolvable callee; cannot verify it is joined (use a func literal with wg.Done or a local channel signal)")
				return true
			}
			if !goroutineSignalsCompletion(pass, body) {
				pass.Reportf(g.Pos(), "goroutine is not joined: body neither calls a sync.WaitGroup Done nor signals a channel declared at the spawn site")
			}
			return true
		})
	}
	return nil
}

// goroutineSignalsCompletion reports whether the spawned body contains join
// evidence as documented on the analyzer.
func goroutineSignalsCompletion(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested goroutine's signals are its own
		case *ast.CallExpr:
			switch fun := unparen(n.Fun).(type) {
			case *ast.SelectorExpr:
				// wg.Done() on a sync.WaitGroup.
				if fun.Sel.Name == "Done" {
					if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok &&
						fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
						found = true
					}
				}
			case *ast.Ident:
				// close(ch) with ch an outside identifier.
				if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "close" && len(n.Args) == 1 {
					if identDeclaredOutside(pass, n.Args[0], body) {
						found = true
					}
				}
			}
		case *ast.SendStmt:
			if identDeclaredOutside(pass, n.Chan, body) {
				found = true
			}
		}
		return !found
	})
	return found
}

// identDeclaredOutside reports whether e is a plain identifier whose
// declaration lies outside the spawned body — a channel the spawner can
// also name and therefore wait on. Selector expressions (r.reply) fail this
// test by design.
func identDeclaredOutside(pass *analysis.Pass, e ast.Expr, body *ast.BlockStmt) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}
