// Package lint is cclint's analyzer suite: project-specific static analyses
// that machine-check the invariants DESIGN.md states in prose — the rail's
// lock hierarchy, the zero-allocation hot path, the Recycle aliasing rules,
// atomics-only field access, and goroutine join discipline in the
// simulator. Each analyzer is written against internal/lint/analysis (a
// stdlib-only core mirroring golang.org/x/tools/go/analysis) and tested
// with golden fixtures under testdata/src via internal/lint/linttest.
//
// See DESIGN.md "Static analysis" for the analyzer ↔ invariant map and the
// //optcc:hotpath, //optcc:release and //cclint:ignore conventions.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"optcc/internal/lint/analysis"
	"optcc/internal/lint/loader"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Atomiconly,
		Gojoin,
		Hotpath,
		LockOrder,
		Recycle,
	}
}

// Finding is one diagnostic after ignore filtering, ready to print.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// BuildShared builds the whole-program index over every loaded package.
// Pass every module package here (loader.Load returns dependencies too) so
// cross-package annotation and atomic-access lookups are complete even when
// only a subset is analyzed.
func BuildShared(pkgs []*loader.Package) *analysis.Shared {
	sh := analysis.NewShared()
	for _, p := range pkgs {
		collectAnnotations(p, sh)
		collectAtomicFields(p, sh)
	}
	// Lock summaries need the full package set too: a helper in one package
	// may take a tracked lock on behalf of a caller in another.
	buildLockSummaries(pkgs, sh)
	return sh
}

// Run applies the given analyzers to every root package in pkgs (non-roots
// only feed the shared index), filters ignored diagnostics, and returns the
// findings sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	sh := BuildShared(pkgs)
	idx := &ignoreIndex{byLine: map[string]map[int]map[string]bool{}}
	for _, p := range pkgs {
		if p.Root {
			collectIgnores(p, idx)
		}
	}
	findings := append([]Finding(nil), idx.malformed...)
	for _, a := range analyzers {
		for _, p := range pkgs {
			if !p.Root {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Syntax,
				Pkg:       p.Types,
				TypesInfo: p.TypesInfo,
				Shared:    sh,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				if idx.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, p.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
