package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"optcc/internal/lint/analysis"
	"optcc/internal/lint/loader"
)

// Atomiconly enforces the all-or-nothing rule for sync/atomic: a field that
// any code accesses through a function-style atomic call (atomic.LoadInt64,
// atomic.AddUint32, atomic.CompareAndSwapPointer, ...) must be accessed
// that way everywhere. A single plain read racing an atomic write is
// undefined behavior the race detector only catches when the schedule
// cooperates; the analyzer catches it on every schedule.
//
// The engine's own counters use the typed atomic.Int64/Uint64 wrappers,
// which make mixed access unrepresentable — this analyzer exists to keep
// function-style atomics from creeping back in half-converted form.
//
// Detection is whole-program: the driver prepass (collectAtomicFields)
// records every field and package-level variable whose address is taken in
// an atomic call argument, across every loaded package; the per-package run
// then flags any plain (non-atomic) read or write of those variables.
// Initialization at the declaration and composite-literal keys are allowed
// (construction happens-before sharing).
var Atomiconly = &analysis.Analyzer{
	Name: "atomiconly",
	Doc:  "flag plain accesses to fields that are elsewhere accessed via sync/atomic",
	Run:  runAtomiconly,
}

// atomicCallTarget returns the *types.Var whose address is the pointer
// argument of a function-style sync/atomic call, if c is one.
func atomicCallTarget(info *types.Info, c *ast.CallExpr) *types.Var {
	sel, ok := unparen(c.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	name := fn.Name()
	isFuncStyle := strings.HasPrefix(name, "Load") || strings.HasPrefix(name, "Store") ||
		strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Swap") ||
		strings.HasPrefix(name, "CompareAndSwap") || strings.HasPrefix(name, "Or") ||
		strings.HasPrefix(name, "And")
	if !isFuncStyle || len(c.Args) == 0 {
		return nil
	}
	// First argument is the address: &x.f or &v.
	u, ok := unparen(c.Args[0]).(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	switch target := unparen(u.X).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[target]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[target].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// collectAtomicFields is the driver prepass: record every variable accessed
// through a function-style atomic call in this package into the shared
// index.
func collectAtomicFields(p *loader.Package, sh *analysis.Shared) {
	for _, f := range p.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if v := atomicCallTarget(p.TypesInfo, c); v != nil {
					sh.AtomicFields[v] = true
				}
			}
			return true
		})
	}
}

func runAtomiconly(pass *analysis.Pass) error {
	if len(pass.Shared.AtomicFields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		// sanctioned marks identifiers that appear inside an atomic call's
		// address argument — those are the allowed accesses.
		sanctioned := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok || atomicCallTarget(pass.TypesInfo, c) == nil {
				return true
			}
			ast.Inspect(c.Args[0], func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					sanctioned[id] = true
				}
				return true
			})
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var id *ast.Ident
			var v *types.Var
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if s, ok := pass.TypesInfo.Selections[n]; ok {
					if sv, ok := s.Obj().(*types.Var); ok {
						id, v = n.Sel, sv
					}
				}
			case *ast.Ident:
				if sv, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && !sv.IsField() {
					id, v = n, sv
				}
			case *ast.KeyValueExpr:
				// Composite-literal initialization is construction, not a
				// shared access.
				return false
			}
			if v == nil || !pass.Shared.AtomicFields[v] || sanctioned[id] {
				return true
			}
			pass.Reportf(id.Pos(), "plain access to "+v.Name()+", which is accessed with sync/atomic elsewhere; use atomic operations for every access")
			return true
		})
	}
	return nil
}
