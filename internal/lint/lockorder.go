package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"optcc/internal/lint/analysis"
	"optcc/internal/lint/loader"
)

// LockOrder machine-checks the engine's documented lock hierarchy (DESIGN.md
// "Rail striping" and "Durability"):
//
//   - rail: stripe mutexes (railStripe.mu) are acquired in ascending index
//     order, and stripedRail.compMu nests strictly inside them — compMu is
//     never held while acquiring a stripe mutex.
//   - lockmgr: per-shard table mutexes (tableShard.mu) are never nested —
//     every multi-shard sweep releases one shard before locking the next —
//     and fastSet.mu is innermost.
//   - storage: Disk.ckptMu (whole-checkpoint serialization) is outermost,
//     Disk.syncMu is never taken under the backend mutex Disk.mu (the
//     off-mutex group fsync exists precisely so appends can proceed
//     mid-fsync); kvShard.freeMu never nests with itself (the *Locked
//     naming convention), and commitLane.mu never nests across lanes, with
//     GroupCommitter.errMu innermost.
//
// The check is a source-order scan per function: Lock/RLock pushes the
// receiver's lock class, Unlock/RUnlock pops it (a deferred unlock holds to
// function end), and every acquisition is checked against the classes still
// held — rank order within a domain, self-nesting, and the sorted-loop
// idiom for multi-instance classes. Calls to functions whose transitive
// lock summary (built over the whole module) intersects the held set are
// checked the same way, so a violation hidden behind a helper is still
// caught. Loop back-edges are not modeled: a lock held across a loop
// iteration into its own re-acquisition is out of scope (documented
// limitation; the race/stress CI jobs cover that dynamically).
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check mutex acquisitions against the engine's documented lock hierarchy",
	Run:  runLockOrder,
}

// lockClass is one named mutex in the hierarchy. Classes are matched by
// "OwnerType.field" so the analyzer needs no package configuration and the
// golden fixtures can replicate the shapes under test.
type lockClass struct {
	key    string // "railStripe.mu"
	domain string // classes in different domains never constrain each other
	// rank orders acquisition within a domain: a lock may only be acquired
	// while every held same-domain lock has a strictly smaller rank
	// (smaller = outer, larger = inner).
	rank int
	// multi marks classes with many instances (per-stripe, per-shard).
	// Acquiring a second instance while one is held is a violation unless
	// ascending loop evidence applies.
	multi bool
	// ascending allows a loop to acquire many instances when the loop
	// provably visits indices in ascending order (a range over a slice the
	// function sorts, a range over the backing array, or an incrementing
	// index loop).
	ascending bool
}

// lockClasses is the hierarchy under enforcement, keyed by OwnerType.field.
var lockClasses = map[string]*lockClass{
	"railStripe.mu":        {key: "railStripe.mu", domain: "rail", rank: 10, multi: true, ascending: true},
	"stripedRail.compMu":   {key: "stripedRail.compMu", domain: "rail", rank: 20},
	"sgtStripe.mu":         {key: "sgtStripe.mu", domain: "sgtgraph", rank: 10, multi: true, ascending: true},
	"sgtGraph.compMu":      {key: "sgtGraph.compMu", domain: "sgtgraph", rank: 20},
	"tableShard.mu":        {key: "tableShard.mu", domain: "lockmgr", rank: 10, multi: true},
	"fastSet.mu":           {key: "fastSet.mu", domain: "lockmgr", rank: 20, multi: true},
	"Disk.ckptMu":          {key: "Disk.ckptMu", domain: "disk", rank: 5},
	"Disk.syncMu":          {key: "Disk.syncMu", domain: "disk", rank: 10},
	"Disk.mu":              {key: "Disk.mu", domain: "disk", rank: 20},
	"commitLane.mu":        {key: "commitLane.mu", domain: "groupcommit", rank: 10, multi: true},
	"GroupCommitter.errMu": {key: "GroupCommitter.errMu", domain: "groupcommit", rank: 20},
	"kvShard.freeMu":       {key: "kvShard.freeMu", domain: "kv", rank: 10, multi: true},
}

// lockCallKind classifies a call as a Lock or Unlock on a tracked class.
type lockCallKind int

const (
	notLockCall lockCallKind = iota
	lockCall
	unlockCall
)

// classifyLockCall resolves c as sync.Mutex/RWMutex Lock/Unlock on a struct
// field and returns the tracked class, if any.
func classifyLockCall(info *types.Info, c *ast.CallExpr) (*lockClass, lockCallKind) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, notLockCall
	}
	var kind lockCallKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockCall
	case "Unlock", "RUnlock":
		kind = unlockCall
	default:
		return nil, notLockCall
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, notLockCall
	}
	// The mutex expression must itself be a field selection OwnerType.field.
	fieldSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, notLockCall
	}
	selection, ok := info.Selections[fieldSel]
	if !ok {
		return nil, notLockCall
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return nil, notLockCall
	}
	owner := namedTypeName(selection.Recv())
	if owner == "" {
		return nil, notLockCall
	}
	cls := lockClasses[owner+"."+field.Name()]
	if cls == nil {
		return nil, notLockCall
	}
	return cls, kind
}

// namedTypeName unwraps pointers and returns the receiver's named-type name.
func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// buildLockSummaries computes, for every function in the module, the set of
// tracked lock classes it may acquire — directly or through statically
// resolved calls (transitive closure). Goroutine bodies are excluded: a
// lock taken by a spawned goroutine is not held under the spawner.
func buildLockSummaries(pkgs []*loader.Package, sh *analysis.Shared) {
	direct := map[types.Object]map[string]bool{}
	calls := map[types.Object]map[types.Object]bool{}
	for _, p := range pkgs {
		for _, f := range p.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := p.TypesInfo.Defs[fd.Name]
				if obj == nil {
					continue
				}
				acquires := map[string]bool{}
				callees := map[types.Object]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						return false
					case *ast.CallExpr:
						if cls, kind := classifyLockCall(p.TypesInfo, n); cls != nil && kind == lockCall {
							acquires[cls.key] = true
							return true
						}
						if callee := staticCallee(p.TypesInfo, n); callee != nil {
							callees[callee] = true
						}
					}
					return true
				})
				direct[obj] = acquires
				calls[obj] = callees
			}
		}
	}
	// Propagate to a fixpoint: small module, tiny class set.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for callee := range callees {
				for cls := range direct[callee] {
					if !direct[fn][cls] {
						direct[fn][cls] = true
						changed = true
					}
				}
			}
		}
	}
	for fn, acquires := range direct {
		if len(acquires) > 0 {
			sh.LockSummary[fn] = acquires
		}
	}
}

// staticCallee resolves a call to a declared function or method, if the
// target is statically known (not an interface dispatch or function value).
func staticCallee(info *types.Info, c *ast.CallExpr) types.Object {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface methods have no body; their summary is empty, so
				// including them is harmless and keeps the lookup uniform.
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}

// heldLock is one acquisition still in effect during the scan.
type heldLock struct {
	class    *lockClass
	pos      ast.Node
	deferred bool
}

func runLockOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockOrder(pass, fd.Body)
			// Function literals run on their own goroutine or call stack
			// frame; scan each against an empty held set.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					scanLockOrder(pass, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// scanLockOrder walks one function body in source order, maintaining the
// held-lock list and checking each acquisition. Nested function literals
// are skipped (scanned separately).
func scanLockOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	var held []heldLock
	var loops []*loopFrame
	var walk func(n ast.Node)

	report := func(n ast.Node, format string, args ...any) {
		pass.Reportf(n.Pos(), fmt.Sprintf(format, args...))
	}

	checkAcquire := func(n ast.Node, cls *lockClass, viaCall string) {
		for _, h := range held {
			if h.class.domain != cls.domain {
				continue
			}
			if h.class == cls {
				if viaCall != "" {
					if !cls.multi {
						report(n, "call to %s may acquire %s, which is already held (self-deadlock)", viaCall, cls.key)
					}
					// A callee acquiring another instance of a multi-instance
					// class cannot be ordered statically; left to the race
					// jobs rather than risking false positives.
					continue
				}
				if cls.multi {
					report(n, "second %s acquired while one is held: multi-instance locks must be released first or taken in one ascending-order loop", cls.key)
				} else {
					report(n, "recursive acquisition of %s (self-deadlock)", cls.key)
				}
				continue
			}
			if cls.rank <= h.class.rank {
				if viaCall != "" {
					report(n, "call to %s may acquire %s while %s is held; the documented hierarchy orders %s inside %s", viaCall, cls.key, h.class.key, h.class.key, cls.key)
				} else {
					report(n, "%s acquired while %s is held; the documented hierarchy orders %s inside %s", cls.key, h.class.key, h.class.key, cls.key)
				}
			}
		}
	}

	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return // scanned separately with an empty held set
		case *ast.DeferStmt:
			if cls, kind := classifyLockCall(pass.TypesInfo, n.Call); cls != nil && kind == unlockCall {
				// Deferred unlock: the lock stays held to function end; mark
				// the newest matching acquisition so a plain Unlock of a
				// sibling does not pop it.
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].class == cls && !held[i].deferred {
						held[i].deferred = true
						break
					}
				}
				return
			}
			walk(n.Call)
			return
		case *ast.ForStmt:
			frame := &loopFrame{node: n, ascending: forLoopAscending(n)}
			loops = append(loops, frame)
			walk(n.Init)
			walk(n.Cond)
			walk(n.Body)
			walk(n.Post)
			loops = loops[:len(loops)-1]
			return
		case *ast.RangeStmt:
			frame := &loopFrame{node: n, rangeOver: n.X}
			loops = append(loops, frame)
			walk(n.Body)
			loops = loops[:len(loops)-1]
			return
		case *ast.CallExpr:
			for _, arg := range n.Args {
				walk(arg)
			}
			cls, kind := classifyLockCall(pass.TypesInfo, n)
			switch {
			case cls != nil && kind == lockCall:
				if frame := innermostLoopWithoutUnlock(pass, loops, cls); frame != nil {
					if !cls.multi {
						report(n, "%s locked inside a loop with no unlock in the loop body (recursive self-deadlock)", cls.key)
					} else if !cls.ascending {
						report(n, "a loop acquires multiple %s instances; this class requires release-before-next (no ordered multi-acquisition is documented)", cls.key)
					} else if !frame.ascendingEvidence(pass, body) {
						report(n, "a loop acquires multiple %s instances in an order that is not provably ascending; sort the index slice (sort.Ints/slices.Sort) before the loop", cls.key)
					}
				}
				checkAcquire(n, cls, "")
				held = append(held, heldLock{class: cls, pos: n})
			case cls != nil && kind == unlockCall:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].class == cls && !held[i].deferred {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			default:
				if len(held) > 0 {
					if callee := staticCallee(pass.TypesInfo, n); callee != nil {
						for clsKey := range pass.Shared.LockSummary[callee] {
							if c := lockClasses[clsKey]; c != nil {
								checkAcquire(n, c, callee.Name())
							}
						}
					}
				}
			}
			return
		}
		// Default: walk children in source order.
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c)
		}
	}
	walk(body)
}

// loopFrame tracks one enclosing loop during the scan.
type loopFrame struct {
	node      ast.Node
	rangeOver ast.Expr // for range loops: the ranged expression
	ascending bool     // for 3-clause loops: provably incrementing index
}

// innermostLoopWithoutUnlock returns the innermost enclosing loop whose body
// contains no unlock of cls — meaning a Lock call inside it accumulates one
// instance per iteration. A loop that unlocks the class in its own body is
// the release-before-next idiom and holds at most one instance at a time.
func innermostLoopWithoutUnlock(pass *analysis.Pass, loops []*loopFrame, cls *lockClass) *loopFrame {
	if len(loops) == 0 {
		return nil
	}
	frame := loops[len(loops)-1]
	var body ast.Node
	switch n := frame.node.(type) {
	case *ast.ForStmt:
		body = n.Body
	case *ast.RangeStmt:
		body = n.Body
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok {
			if ccls, kind := classifyLockCall(pass.TypesInfo, c); ccls == cls && kind == unlockCall {
				found = true
			}
		}
		return !found
	})
	if found {
		return nil
	}
	return frame
}

// ascendingEvidence reports whether the loop provably visits lock indices in
// ascending order: an incrementing 3-clause loop, a range over a slice the
// function sorts (sort.Ints/sort.Slice/slices.Sort*) before the loop, or a
// range directly over a struct's backing array of instances.
func (fr *loopFrame) ascendingEvidence(pass *analysis.Pass, funcBody *ast.BlockStmt) bool {
	if fr.ascending {
		return true
	}
	if fr.rangeOver == nil {
		return false
	}
	switch x := fr.rangeOver.(type) {
	case *ast.SelectorExpr:
		// for i := range r.stripes { r.stripes[i].mu.Lock() }: range over
		// the instance array itself is index order by construction.
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return false
		}
		sorted := false
		ast.Inspect(funcBody, func(n ast.Node) bool {
			if sorted || n == nil || n.Pos() >= fr.node.Pos() {
				return !sorted
			}
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := sortCallName(pass.TypesInfo, c); name != "" && len(c.Args) >= 1 {
				if id, ok := c.Args[0].(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					sorted = true
				}
			}
			return true
		})
		return sorted
	}
	return false
}

// sortCallName matches the standard sorting helpers.
func sortCallName(info *types.Info, c *ast.CallExpr) string {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Slice", "SliceStable", "Sort", "Stable":
			return "sort." + fn.Name()
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return "slices." + fn.Name()
		}
	}
	return ""
}

// forLoopAscending reports whether a 3-clause for loop provably increments
// its index (for i := lo; i < hi; i++).
func forLoopAscending(n *ast.ForStmt) bool {
	inc, ok := n.Post.(*ast.IncDecStmt)
	return ok && inc.Tok.String() == "++"
}
