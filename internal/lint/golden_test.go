package lint_test

import (
	"path/filepath"
	"testing"

	"optcc/internal/lint"
	"optcc/internal/lint/analysis"
	"optcc/internal/lint/linttest"
	"optcc/internal/lint/loader"
)

// fixture returns the path of one golden-fixture package.
func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// Each analyzer has a positive fixture (every want comment must be matched
// by a diagnostic, and vice versa) and a negative fixture (the same shapes
// written correctly; zero diagnostics).

func TestLockOrderGolden(t *testing.T) {
	linttest.Run(t, fixture("lockorder"), lint.LockOrder)
}

func TestLockOrderClean(t *testing.T) {
	linttest.RunExpectClean(t, fixture("lockorder_clean"), lint.LockOrder)
}

func TestHotpathGolden(t *testing.T) {
	linttest.Run(t, fixture("hotpath"), lint.Hotpath)
}

func TestHotpathClean(t *testing.T) {
	linttest.RunExpectClean(t, fixture("hotpath_clean"), lint.Hotpath)
}

func TestRecycleGolden(t *testing.T) {
	linttest.Run(t, fixture("recycle"), lint.Recycle)
}

func TestRecycleClean(t *testing.T) {
	linttest.RunExpectClean(t, fixture("recycle_clean"), lint.Recycle)
}

func TestAtomiconlyGolden(t *testing.T) {
	linttest.Run(t, fixture("atomiconly"), lint.Atomiconly)
}

func TestAtomiconlyClean(t *testing.T) {
	linttest.RunExpectClean(t, fixture("atomiconly_clean"), lint.Atomiconly)
}

func TestGojoinGolden(t *testing.T) {
	linttest.Run(t, fixture("gojoin"), lint.Gojoin)
}

func TestGojoinClean(t *testing.T) {
	linttest.RunExpectClean(t, fixture("gojoin_clean"), lint.Gojoin)
}

// TestSuiteComplete pins the analyzer roster: adding an analyzer without
// fixtures (or dropping one) should be a conscious act.
func TestSuiteComplete(t *testing.T) {
	want := []string{"atomiconly", "gojoin", "hotpath", "lockorder", "recycle"}
	got := map[string]bool{}
	for _, a := range lint.Analyzers() {
		got[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("suite is missing analyzer %s", name)
		}
	}
	if len(lint.Analyzers()) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(lint.Analyzers()), len(want))
	}
}

// TestMalformedIgnoreIsAFinding pins the directive contract: an ignore
// without a justification is itself reported.
func TestMalformedIgnoreIsAFinding(t *testing.T) {
	pkgs, err := loader.Load(fixture("badignore"), ".")
	if err != nil {
		t.Fatalf("loading: %v", err)
	}
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{lint.Hotpath})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	foundMalformed := false
	for _, f := range findings {
		if f.Analyzer == "ignore" {
			foundMalformed = true
		}
	}
	if !foundMalformed {
		t.Errorf("malformed ignore directive was not reported; findings: %v", findings)
	}
}
