package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"optcc/internal/lint/analysis"
	"optcc/internal/lint/loader"
)

// Directive comments understood by the suite. They follow the standard Go
// directive shape (no space after //, machine audience):
//
//	//optcc:hotpath        — this function is on the zero-allocation hot
//	                         path; the hotpath analyzer proves it contains
//	                         no allocating construct and calls only
//	                         annotated or allowlisted callees.
//	//optcc:release        — calling this function returns its buffer
//	                         arguments to a pool/freelist; the recycle
//	                         analyzer flags aliases retained afterwards.
//	//cclint:ignore n why  — suppress analyzer n's diagnostics on this or
//	                         the next line, with a mandatory justification.
//	                         //lint:ignore is accepted as a synonym for
//	                         interop, but repository code uses the cclint
//	                         spelling so the staticcheck directive
//	                         namespace stays disjoint.
const (
	hotpathDirective = "optcc:hotpath"
	releaseDirective = "optcc:release"
)

// hasDirective reports whether any line of the comment group is exactly the
// given directive.
func hasDirective(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == directive {
			return true
		}
	}
	return false
}

// collectAnnotations indexes one package's //optcc:hotpath and
// //optcc:release declarations into the shared index. Annotations are
// recognized on function declarations, on methods inside interface type
// definitions, and on statements binding a function literal to a variable
// (the dispatch-loop helpers in internal/sim are closures).
func collectAnnotations(p *loader.Package, sh *analysis.Shared) {
	record := func(g *ast.CommentGroup, obj types.Object) {
		if obj == nil {
			return
		}
		if hasDirective(g, hotpathDirective) {
			sh.HotpathFuncs[obj] = true
		}
		if hasDirective(g, releaseDirective) {
			sh.ReleaseFuncs[obj] = true
		}
	}
	for _, f := range p.Syntax {
		cm := ast.NewCommentMap(p.Fset, f, f.Comments)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				record(fd.Doc, p.TypesInfo.Defs[fd.Name])
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					for _, name := range m.Names {
						record(m.Doc, p.TypesInfo.Defs[name])
						record(m.Comment, p.TypesInfo.Defs[name])
					}
				}
			case *ast.AssignStmt:
				// name := func(...) {...} with the directive on the
				// statement's lead comment annotates the bound literal.
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if _, isLit := n.Rhs[0].(*ast.FuncLit); isLit {
						if id, ok := n.Lhs[0].(*ast.Ident); ok {
							for _, g := range cm[n] {
								obj := p.TypesInfo.Defs[id]
								if obj == nil {
									obj = p.TypesInfo.Uses[id]
								}
								record(g, obj)
							}
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == 1 && len(n.Values) == 1 {
					if _, isLit := n.Values[0].(*ast.FuncLit); isLit {
						record(n.Doc, p.TypesInfo.Defs[n.Names[0]])
						for _, g := range cm[n] {
							record(g, p.TypesInfo.Defs[n.Names[0]])
						}
					}
				}
			}
			return true
		})
	}
}

// ignoreIndex records, per file line, which analyzers are suppressed there.
type ignoreIndex struct {
	// byLine maps file name → line → analyzer name → true. An ignore
	// suppresses its own line (end-of-line comment) and the following line
	// (comment on its own line above the finding).
	byLine map[string]map[int]map[string]bool
	// malformed collects ignore directives missing a justification.
	malformed []Finding
}

// collectIgnores scans a package's comments for ignore directives.
func collectIgnores(p *loader.Package, idx *ignoreIndex) {
	for _, f := range p.Syntax {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimPrefix(c.Text, "//")
				var rest string
				switch {
				case strings.HasPrefix(text, "cclint:ignore"):
					rest = strings.TrimPrefix(text, "cclint:ignore")
				case strings.HasPrefix(text, "lint:ignore"):
					rest = strings.TrimPrefix(text, "lint:ignore")
				default:
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Finding{
						Pos:      pos,
						Analyzer: "ignore",
						Message:  "malformed ignore directive: need an analyzer name and a justification",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				if idx.byLine[pos.Filename] == nil {
					idx.byLine[pos.Filename] = map[int]map[string]bool{}
				}
				lineIdx := idx.byLine[pos.Filename]
				for _, name := range names {
					if lineIdx[pos.Line] == nil {
						lineIdx[pos.Line] = map[string]bool{}
					}
					lineIdx[pos.Line][name] = true
				}
			}
		}
	}
}

// suppressed reports whether a diagnostic of the named analyzer at pos is
// covered by an ignore directive on its line or the line above.
func (idx *ignoreIndex) suppressed(name string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][name] || lines[pos.Line-1][name]
}
