package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"optcc/internal/lint/analysis"
)

// Hotpath proves the steady-state request→grant→execute→commit chain stays
// allocation-free. Functions annotated //optcc:hotpath may not contain any
// allocating construct — make/new, growing append, composite literals,
// function literals (closure capture), go statements, string concatenation,
// string↔[]byte conversions, or interface boxing (explicit conversions and
// the implicit ones at call arguments, assignments, returns and channel
// sends) — and may only call callees that are themselves annotated or on
// the allowlist of known non-allocating standard-library primitives
// (sync/atomic, math/bits, mutex operations, time reads, ...).
//
// This is the static complement to the alloc-regression benchmarks from
// PR 5: the benchmark catches a regression after it happens on a measured
// path; the analyzer rejects the construct at review time on every
// annotated path, measured or not.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs and unvetted calls in //optcc:hotpath functions",
	Run:  runHotpath,
}

// hotpathAllowedBuiltins never allocate.
var hotpathAllowedBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true, "clear": true,
	"min": true, "max": true, "panic": true, "print": true, "println": true,
}

// hotpathAllowedPkgs: every function in these packages is allocation-free.
var hotpathAllowedPkgs = map[string]bool{
	"sync/atomic": true,
	"math/bits":   true,
	"math":        true,
}

// hotpathAllowedFuncs: individually vetted standard-library callees, keyed
// "pkgpath.Name" for functions and "pkgpath.Recv.Name" for methods.
var hotpathAllowedFuncs = map[string]bool{
	"sync.Mutex.Lock": true, "sync.Mutex.Unlock": true, "sync.Mutex.TryLock": true,
	"sync.RWMutex.Lock": true, "sync.RWMutex.Unlock": true,
	"sync.RWMutex.RLock": true, "sync.RWMutex.RUnlock": true, "sync.RWMutex.TryLock": true,
	"sync.WaitGroup.Add": true, "sync.WaitGroup.Done": true,
	"sync.Pool.Get": true, "sync.Pool.Put": true,
	"time.Now": true, "time.Since": true, "time.Sleep": true,
	"time.Time.Sub": true, "time.Time.UnixNano": true, "time.Time.Before": true, "time.Time.After": true,
	"time.Duration.Nanoseconds": true, "time.Duration.Seconds": true, "time.Duration.Milliseconds": true,
	"runtime.Gosched": true,
	"sort.Ints":       true, "sort.SearchInts": true, "sort.Search": true,
	"slices.Contains": true, "slices.Index": true, "slices.Sort": true,
}

func runHotpath(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj != nil && pass.Shared.HotpathFuncs[obj] {
				checkHotpathBody(pass, fd.Name.Name, fd.Body, fd.Type)
			}
			// Annotated function literals bound to locals inside any function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				lit, ok := as.Rhs[0].(*ast.FuncLit)
				if !ok {
					return true
				}
				id, ok := as.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				vobj := pass.TypesInfo.Defs[id]
				if vobj == nil {
					vobj = pass.TypesInfo.Uses[id]
				}
				if vobj != nil && pass.Shared.HotpathFuncs[vobj] {
					checkHotpathBody(pass, id.Name, lit.Body, lit.Type)
				}
				return true
			})
		}
	}
	return nil
}

// checkHotpathBody walks one annotated function body. Nested unannotated
// function literals are themselves a finding (closure allocation), so the
// walk never needs to recurse into a different annotation scope.
func checkHotpathBody(pass *analysis.Pass, name string, body *ast.BlockStmt, ftype *ast.FuncType) {
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, fmt.Sprintf("hot path %s: %s", name, fmt.Sprintf(format, args...)))
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address-taken composite literal allocates")
				}
			}
			return true
		case *ast.CompositeLit:
			// A plain struct/array value literal lives on the stack; only
			// slice and map literals (and address-taken ones, above)
			// inherently allocate.
			if t := pass.TypesInfo.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.TypesInfo.Types[n.X].Type) {
				report(n.Pos(), "string concatenation allocates")
			}
			return true
		case *ast.SendStmt:
			checkImplicitBoxing(pass, report, n.Value, pass.TypesInfo.Types[n.Chan].Type)
			return true
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					checkImplicitBoxing(pass, report, rhs, pass.TypesInfo.Types[n.Lhs[i]].Type)
				}
			}
			return true
		case *ast.ReturnStmt:
			if ftype.Results != nil && len(n.Results) == countFields(ftype.Results) {
				i := 0
				for _, field := range ftype.Results.List {
					names := len(field.Names)
					if names == 0 {
						names = 1
					}
					for k := 0; k < names; k++ {
						checkImplicitBoxing(pass, report, n.Results[i], pass.TypesInfo.Types[field.Type].Type)
						i++
					}
				}
			}
			return true
		case *ast.CallExpr:
			checkHotpathCall(pass, report, n)
			return true
		}
		return true
	})
}

func countFields(fl *ast.FieldList) int {
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// checkHotpathCall classifies one call inside an annotated body: allocating
// builtin, allocating conversion, or a callee that must be annotated or
// allowlisted. Implicit boxing at arguments is also checked here.
func checkHotpathCall(pass *analysis.Pass, report func(token.Pos, string, ...any), c *ast.CallExpr) {
	// Type conversion? T(x) where T is a type, not a function.
	if tv, ok := pass.TypesInfo.Types[c.Fun]; ok && tv.IsType() {
		dst := tv.Type
		src := pass.TypesInfo.Types[c.Args[0]].Type
		switch {
		case types.IsInterface(dst.Underlying()) && src != nil && !types.IsInterface(src.Underlying()):
			report(c.Pos(), "conversion to interface boxes the value")
		case isStringType(dst) && isByteSlice(src), isByteSlice(dst) && isStringType(src):
			report(c.Pos(), "string ↔ []byte conversion copies and allocates")
		}
		return
	}

	// Builtin?
	if id, ok := unparen(c.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(c.Pos(), "make allocates")
			case "new":
				report(c.Pos(), "new allocates")
			case "append":
				report(c.Pos(), "append may grow and allocate")
			default:
				if !hotpathAllowedBuiltins[b.Name()] {
					report(c.Pos(), "builtin %s is not vetted for the hot path", b.Name())
				}
			}
			return
		}
	}

	callee := calleeObject(pass.TypesInfo, c)
	if callee == nil {
		report(c.Pos(), "dynamic call (function value or unresolved callee) is not vetted for the hot path")
		return
	}
	checkCallArgs(pass, report, c, callee)

	if pass.Shared.HotpathFuncs[callee] {
		return
	}
	if fn, ok := callee.(*types.Func); ok {
		if fn.Pkg() == nil {
			return // universe scope (error.Error etc.) — no alloc
		}
		key := calleeKey(fn)
		if hotpathAllowedPkgs[fn.Pkg().Path()] || hotpathAllowedFuncs[key] {
			return
		}
		report(c.Pos(), "call to %s: callee is neither //optcc:hotpath-annotated nor allowlisted", key)
		return
	}
	// A *types.Var callee: local function value not annotated.
	report(c.Pos(), "call through %s: function value is not //optcc:hotpath-annotated", callee.Name())
}

// checkCallArgs flags implicit interface boxing at call arguments and
// non-empty variadic calls (the ...T slice allocates).
func checkCallArgs(pass *analysis.Pass, report func(token.Pos, string, ...any), c *ast.CallExpr, callee types.Object) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range c.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if c.Ellipsis == token.NoPos {
				if i == params.Len()-1 {
					report(arg.Pos(), "variadic call allocates the argument slice")
				}
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			} else {
				pt = params.At(params.Len() - 1).Type()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			checkImplicitBoxing(pass, report, arg, pt)
		}
	}
}

// checkImplicitBoxing reports when a concrete-typed expression is assigned
// to an interface-typed destination (heap-boxing the value unless it is
// already a pointer into the heap; the analyzer is conservative and flags
// all of them — //cclint:ignore documents the vetted cases).
func checkImplicitBoxing(pass *analysis.Pass, report func(token.Pos, string, ...any), expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if types.IsInterface(src.Underlying()) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	report(expr.Pos(), "implicit conversion of %s to interface %s boxes the value", src, dst)
}

// calleeObject resolves a call's target to its object: a declared function
// or method, or the variable holding a function value.
func calleeObject(info *types.Info, c *ast.CallExpr) types.Object {
	switch fun := unparen(c.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified
	}
	return nil
}

// calleeKey renders a function as pkgpath.Name or pkgpath.Recv.Name.
func calleeKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := namedTypeName(sig.Recv().Type())
		return fn.Pkg().Path() + "." + recv + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
