// Package analysis is a minimal, API-compatible core of
// golang.org/x/tools/go/analysis: just Analyzer, Pass and Diagnostic, built
// on the standard library alone. The repository vendors no third-party
// modules (builds must work offline), so the cclint analyzers are written
// against this local core; the field and callback names match x/tools, so
// swapping the import path is all it would take to run them under the
// upstream multichecker.
//
// Two deliberate simplifications versus upstream:
//
//   - No Facts. Cross-package state (hotpath annotations, atomically
//     accessed fields, lock summaries) lives in a Shared index the driver
//     builds in one prepass over every loaded package before any analyzer
//     runs. The repo is one module compiled in one process, so an explicit
//     whole-program index is both simpler and strictly more precise than
//     per-package fact serialization.
//   - No ResultOf/Requires. The five analyzers are independent.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named analysis and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only selections and
	// //lint:ignore directives.
	Name string
	// Doc is the one-paragraph description printed by cclint -list.
	Doc string
	// Run applies the analyzer to one package. Diagnostics go through
	// pass.Report; the error return is for analysis failures, not findings.
	Run func(*Pass) error
}

// Pass carries one package's syntax and types to an analyzer, plus the
// module-wide Shared index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Shared is the whole-program index built by the driver before any
	// analyzer ran. It is read-only during Run.
	Shared *Shared
	// Report delivers one diagnostic. The driver applies //lint:ignore
	// filtering and sorting; analyzers just report.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Shared is the whole-program index: everything an analyzer needs to know
// about packages other than the one it is currently visiting. The driver
// (internal/lint.Run) and the test harness (internal/lint/linttest) build it
// with lint.BuildShared over every loaded package, so analyzers see the same
// cross-package state in production and under test.
type Shared struct {
	// HotpathFuncs holds the *types.Func (or local *types.Var bound to a
	// function literal) of every declaration annotated //optcc:hotpath,
	// including methods declared on interfaces.
	HotpathFuncs map[types.Object]bool
	// AtomicFields maps a struct field to true when any package accesses it
	// through a function-style sync/atomic call (atomic.LoadInt64(&x.f),
	// atomic.AddUint32(&x.f, 1), ...). atomiconly flags every plain access
	// to such a field.
	AtomicFields map[*types.Var]bool
	// LockSummary maps a function object to the set of lock-class ids it
	// may acquire, transitively over statically resolved calls. lockorder
	// uses it to catch a forbidden acquisition hidden behind a helper call.
	LockSummary map[types.Object]map[string]bool
	// ReleaseFuncs holds functions annotated //optcc:release: calling one
	// returns its pointer/slice arguments to a pool or freelist, after
	// which the recycle analyzer treats every retained alias as dead.
	ReleaseFuncs map[types.Object]bool
}

// NewShared returns an empty index.
func NewShared() *Shared {
	return &Shared{
		HotpathFuncs: map[types.Object]bool{},
		AtomicFields: map[*types.Var]bool{},
		LockSummary:  map[types.Object]map[string]bool{},
		ReleaseFuncs: map[types.Object]bool{},
	}
}
