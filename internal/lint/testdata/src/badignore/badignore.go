// Package badignore exercises the directive contract: an ignore without a
// justification must itself be reported as a finding.
package badignore

//optcc:hotpath
func allocates(n int) []int {
	//cclint:ignore hotpath
	return make([]int, n)
}
