// Package lockorderclean is the negative fixture: every function follows
// the documented hierarchy and the analyzer must stay silent.
package lockorderclean

import (
	"sort"
	"sync"
)

type railStripe struct {
	mu   sync.Mutex
	subs map[string][]string
}

type stripedRail struct {
	stripes []railStripe
	compMu  sync.Mutex
	parent  map[string]string
}

// compInsideStripe is the documented order: compMu nests inside a stripe.
func (r *stripedRail) compInsideStripe(i int) {
	r.stripes[i].mu.Lock()
	defer r.stripes[i].mu.Unlock()
	r.compMu.Lock()
	r.parent["a"] = "b"
	r.compMu.Unlock()
}

// sortedLoop is the reserve idiom: sort the indices, then lock ascending.
func (r *stripedRail) sortedLoop(locked []int) {
	sort.Ints(locked)
	for _, i := range locked {
		r.stripes[i].mu.Lock()
	}
	for _, i := range locked {
		r.stripes[i].mu.Unlock()
	}
}

// rangeOverStripes locks every stripe by ranging the backing array itself —
// index order by construction.
func (r *stripedRail) rangeOverStripes() {
	for i := range r.stripes {
		r.stripes[i].mu.Lock()
	}
	for i := range r.stripes {
		r.stripes[i].mu.Unlock()
	}
}

// retryLoop is the lockComp idiom: the loop body releases the stripe before
// the next iteration re-acquires it, so only one instance is ever held.
func (r *stripedRail) retryLoop(i int) {
	for {
		r.compMu.Lock()
		j := i
		r.compMu.Unlock()
		r.stripes[j].mu.Lock()
		if j == i {
			r.stripes[j].mu.Unlock()
			return
		}
		r.stripes[j].mu.Unlock()
	}
}

type tableShard struct {
	mu sync.Mutex
	n  int
}

type shardedTable struct {
	shards []tableShard
}

// sweep is the release-before-next idiom over shards.
func (s *shardedTable) sweep() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
		s.shards[i].n++
		s.shards[i].mu.Unlock()
	}
}

type Disk struct {
	syncMu sync.Mutex
	mu     sync.Mutex
	n      int
}

// groupSync is the documented order: syncMu outside, mu inside, and mu is
// released before the sync work so appends can proceed mid-fsync.
func (d *Disk) groupSync() {
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	_ = n
}

// plainBackend is the ordinary single-mutex method shape.
func (d *Disk) plainBackend() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n++
}
