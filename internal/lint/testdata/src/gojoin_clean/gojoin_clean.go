// Package sim is the negative gojoin fixture: every spawn is joined through
// a WaitGroup or a channel the spawner owns.
package sim

import "sync"

func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = 1 + 1
		}()
	}
	wg.Wait()
}

func channelClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = 1 + 1
	}()
	<-done
}

func channelSend() int {
	result := make(chan int, 1)
	go func() {
		result <- 42
	}()
	return <-result
}

func joinedWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	_ = 1 + 1
}

// namedJoined spawns a same-package function that signals its WaitGroup.
func namedJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go joinedWorker(&wg)
	wg.Wait()
}
