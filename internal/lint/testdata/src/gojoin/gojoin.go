// Package sim is the positive gojoin fixture (the analyzer applies only to
// packages named sim): goroutines nothing can wait on.
package sim

import "sync"

type request struct {
	reply chan int
}

func fireAndForget() {
	go func() { // want "goroutine is not joined"
		_ = 1 + 1
	}()
}

// selectorSend replies through a channel only the request can name: the
// spawner has nothing to wait on, so this does not count as a join.
func selectorSend(r request) {
	go func() { // want "goroutine is not joined"
		r.reply <- 42
	}()
}

func worker() {
	_ = 1 + 1
}

// namedUnjoined spawns a same-package function whose body signals nothing.
func namedUnjoined() {
	go worker() // want "goroutine is not joined"
}

// dynamicSpawn spawns through a function value the analyzer cannot resolve.
func dynamicSpawn(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go fn() // want "unresolvable callee"
	wg.Done()
	wg.Wait()
}
