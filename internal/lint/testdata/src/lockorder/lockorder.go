// Package lockorder is the positive fixture: every construct here violates
// the documented lock hierarchy and must be reported. The type and field
// names replicate the real engine's (the analyzer keys classes by
// OwnerType.field, not by package).
package lockorder

import "sync"

type railStripe struct {
	mu   sync.Mutex
	subs map[string][]string
}

type stripedRail struct {
	stripes []railStripe
	compMu  sync.Mutex
	parent  map[string]string
}

// compUnderNothingThenStripe violates the nesting direction: compMu is the
// innermost rail lock and must never be held while acquiring a stripe.
func (r *stripedRail) compUnderNothingThenStripe(i int) {
	r.compMu.Lock()
	r.stripes[i].mu.Lock() // want "railStripe.mu acquired while stripedRail.compMu is held"
	r.stripes[i].mu.Unlock()
	r.compMu.Unlock()
}

// helperLocksStripe exists to hide the stripe acquisition behind a call.
func (r *stripedRail) helperLocksStripe(i int) {
	r.stripes[i].mu.Lock()
	defer r.stripes[i].mu.Unlock()
	r.parent["a"] = "b"
}

// compThenHelper hits the same violation through the call summary.
func (r *stripedRail) compThenHelper(i int) {
	r.compMu.Lock()
	defer r.compMu.Unlock()
	r.helperLocksStripe(i) // want "call to helperLocksStripe may acquire railStripe.mu while stripedRail.compMu is held"
}

// unsortedLoop acquires many stripes in an order nothing proves ascending.
func (r *stripedRail) unsortedLoop(locked []int) {
	for _, i := range locked {
		r.stripes[i].mu.Lock() // want "not provably ascending"
	}
	for _, i := range locked {
		r.stripes[i].mu.Unlock()
	}
}

type tableShard struct {
	mu sync.Mutex
	n  int
}

type shardedTable struct {
	shards []tableShard
}

// nestedShards holds one shard mutex while taking another: the sharded
// table's sweeps must release each shard before locking the next.
func (s *shardedTable) nestedShards(a, b int) {
	s.shards[a].mu.Lock()
	s.shards[b].mu.Lock() // want "second tableShard.mu acquired while one is held"
	s.shards[b].n++
	s.shards[b].mu.Unlock()
	s.shards[a].mu.Unlock()
}

type Disk struct {
	syncMu sync.Mutex
	mu     sync.Mutex
	n      int
}

// syncUnderBackend takes the group-sync mutex under the backend mutex; the
// documented order is syncMu outside mu (GroupSync), never the reverse.
func (d *Disk) syncUnderBackend() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncMu.Lock() // want "Disk.syncMu acquired while Disk.mu is held"
	d.syncMu.Unlock()
}

// recursiveSync self-deadlocks on a single-instance class.
func (d *Disk) recursiveSync() {
	d.syncMu.Lock()
	d.syncMu.Lock() // want "recursive acquisition of Disk.syncMu"
	d.syncMu.Unlock()
	d.syncMu.Unlock()
}

// lockInLoopNoUnlock re-locks a single-instance class every iteration
// without releasing it in the loop body.
func (d *Disk) lockInLoopNoUnlock(n int) {
	for i := 0; i < n; i++ {
		d.mu.Lock() // want "Disk.mu locked inside a loop with no unlock in the loop body"
		d.n++
	}
}
