// Package atomiconly is the positive fixture: fields accessed with
// function-style sync/atomic in one place and plainly in another.
package atomiconly

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

var global int64

func (s *stats) recordHit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) readHitsRacy() int64 {
	return s.hits // want "plain access to hits"
}

func (s *stats) resetRacy() {
	s.hits = 0 // want "plain access to hits"
}

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobalRacy() int64 {
	return global // want "plain access to global"
}

// readMisses is fine: misses is never touched atomically.
func (s *stats) readMisses() int64 {
	return s.misses
}
