// Package recycle is the positive fixture: pooled buffers used after being
// returned to a pool or freelist.
package recycle

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 1024) }}

type freelist struct {
	mu   sync.Mutex
	free [][]byte
}

// putBuf returns a dead buffer to the freelist.
//
//optcc:release
func (fl *freelist) putBuf(p []byte) {
	fl.mu.Lock()
	fl.free = append(fl.free, p)
	fl.mu.Unlock()
}

type version struct {
	payload []byte
	sum     byte
}

func useAfterPoolPut() byte {
	buf := bufPool.Get().([]byte)
	buf = buf[:16]
	bufPool.Put(buf)
	return buf[0] // want "use of released buffer"
}

func useAfterFreelistPut(fl *freelist, v *version) byte {
	fl.putBuf(v.payload)
	return v.payload[3] // want "use of released buffer"
}

func writeAfterRelease(fl *freelist, v *version) {
	fl.putBuf(v.payload)
	v.payload[0] = 1 // want "use of released buffer"
}

func doubleRelease(fl *freelist, p []byte) {
	fl.putBuf(p)
	fl.putBuf(p) // want "double release"
}

func aliasThroughChain(fl *freelist, v *version) int {
	fl.putBuf(v.payload)
	return len(v.payload) // want "use of released buffer"
}
