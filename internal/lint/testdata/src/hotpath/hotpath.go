// Package hotpath is the positive fixture: every annotated function here
// contains a construct the hot path forbids.
package hotpath

type counter struct {
	n int64
}

func unannotated(x int) int { return x + 1 }

//optcc:hotpath
func allocatesSlice(n int) []int {
	return make([]int, n) // want "make allocates"
}

//optcc:hotpath
func allocatesNew() *counter {
	return new(counter) // want "new allocates"
}

//optcc:hotpath
func growsAppend(xs []int, x int) []int {
	return append(xs, x) // want "append may grow and allocate"
}

//optcc:hotpath
func capturesClosure(x int) func() int {
	return func() int { return x } // want "function literal allocates a closure"
}

//optcc:hotpath
func spawns() {
	go unannotated(1) // want "go statement allocates a goroutine"
}

//optcc:hotpath
func concatenates(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//optcc:hotpath
func boxes(x int) any {
	return x // want "implicit conversion of int to interface any boxes the value"
}

//optcc:hotpath
func convertsString(p []byte) string {
	return string(p) // want "conversion copies and allocates"
}

//optcc:hotpath
func callsUnvetted(x int) int {
	return unannotated(x) // want "callee is neither //optcc:hotpath-annotated nor allowlisted"
}

//optcc:hotpath
func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//optcc:hotpath
func callsVariadic(x int) int {
	return sum(x, x) // want "variadic call allocates the argument slice"
}

//optcc:hotpath
func takesAddress() *counter {
	return &counter{n: 1} // want "address-taken composite literal allocates"
}

//optcc:hotpath
func sliceLiteral() {
	xs := []int{1, 2, 3} // want "slice literal allocates"
	_ = xs
}

//optcc:hotpath
func mapLiteral() {
	m := map[string]int{} // want "map literal allocates"
	_ = m
}
