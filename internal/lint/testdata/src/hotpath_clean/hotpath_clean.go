// Package hotpathclean is the negative fixture: allocation-free idiom only;
// the analyzer must stay silent, including on the justified ignore.
package hotpathclean

import (
	"sync"
	"sync/atomic"
	"time"
)

type shard struct {
	mu    sync.Mutex
	count atomic.Int64
	buf   [8]int64
	n     int
}

//optcc:hotpath
func hash(v string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

//optcc:hotpath
func (s *shard) record(x int64) bool {
	s.mu.Lock()
	if s.n < len(s.buf) {
		s.buf[s.n] = x
		s.n++
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	return false
}

//optcc:hotpath
func (s *shard) bump() int64 {
	return s.count.Add(1)
}

// callsAnnotated may call the annotated helpers and the vetted stdlib set.
//
//optcc:hotpath
func (s *shard) callsAnnotated(v string, shards int) int64 {
	start := time.Now()
	i := hash(v, shards)
	s.record(int64(i))
	_ = time.Since(start)
	return s.bump()
}

// valueLiteral returns a struct by value: stack-allocated, allowed.
//
//optcc:hotpath
func valueLiteral(a, b int64) struct{ x, y int64 } {
	return struct{ x, y int64 }{x: a, y: b}
}

// justified shows a documented escape hatch: the ignored line may allocate.
//
//optcc:hotpath
func justified(xs []int, x int) []int {
	//cclint:ignore hotpath cold warm-up path; steady state never grows the slice
	return append(xs, x)
}
