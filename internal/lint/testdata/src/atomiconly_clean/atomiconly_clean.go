// Package atomiconlyclean is the negative fixture: consistent atomic access
// everywhere, the typed-wrapper idiom, and construction-time initialization.
package atomiconlyclean

import "sync/atomic"

type stats struct {
	// hits is only ever touched through sync/atomic.
	hits int64
	// count uses the typed wrapper, which makes mixed access impossible.
	count atomic.Int64
}

func (s *stats) recordHit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) readHits() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) casHits(old, new int64) bool {
	return atomic.CompareAndSwapInt64(&s.hits, old, new)
}

func (s *stats) bump() int64 {
	return s.count.Add(1)
}

// newStats initializes via a composite literal: construction happens-before
// sharing, so the keyed initialization is allowed.
func newStats() *stats {
	return &stats{hits: 0}
}
