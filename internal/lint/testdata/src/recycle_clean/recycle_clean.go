// Package recycleclean is the negative fixture: release-last and
// rebind-after-release idioms the analyzer must accept.
package recycleclean

import "sync"

var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 1024) }}

type freelist struct {
	mu   sync.Mutex
	free [][]byte
}

//optcc:release
func (fl *freelist) putBuf(p []byte) {
	fl.mu.Lock()
	fl.free = append(fl.free, p)
	fl.mu.Unlock()
}

type version struct {
	payload []byte
	sum     byte
}

// releaseLast touches the buffer only before returning it.
func releaseLast(fl *freelist, v *version) byte {
	b := v.payload[0]
	fl.putBuf(v.payload)
	return b
}

// rebindAfterRelease swaps in a fresh buffer after releasing the old one;
// uses of the rebound variable are fine.
func rebindAfterRelease(fl *freelist, v *version, fresh []byte) byte {
	fl.putBuf(v.payload)
	v.payload = fresh
	return v.payload[0]
}

// poolRoundTrip gets, uses, puts — in that order.
func poolRoundTrip() byte {
	buf := bufPool.Get().([]byte)
	buf = buf[:8]
	b := buf[0]
	bufPool.Put(buf)
	return b
}

// unrelatedBuffers releases one buffer and keeps using another.
func unrelatedBuffers(fl *freelist, dead, live []byte) byte {
	fl.putBuf(dead)
	return live[0]
}
