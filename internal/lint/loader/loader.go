// Package loader turns package patterns into parsed, type-checked packages
// using nothing but the standard library and the go command. It is the
// offline stand-in for golang.org/x/tools/go/packages: `go list -export
// -deps -json` supplies the file lists and compiled export data (the go
// command compiles anything stale, entirely from the local build cache, so
// no network is ever touched), module packages are re-type-checked from
// source so analyzers get syntax trees with comments, and standard-library
// imports are satisfied from their export data via go/importer's lookup
// mode.
//
// Type identity is preserved across the whole load: every module package is
// checked against the *types.Package of its module dependencies from the
// same load, so a *types.Func seen in package A's syntax is the same object
// a call in package B resolves to. The whole-program indexes in
// internal/lint/analysis.Shared depend on exactly this property.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked module package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Root marks packages the load patterns matched directly; the rest are
	// module dependencies, loaded so whole-program indexes and type
	// identity stay complete. Analyzers run on roots only.
	Root bool
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns from dir (the module root, or any directory inside
// it — including testdata fixture directories, which the go command lists
// fine when named explicitly) and returns every non-standard-library package
// reachable from the patterns, type-checked from source, in dependency
// order. Packages the patterns matched directly have Root set; the rest are
// module dependencies included for whole-program indexing.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, roots, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for the gc importer's lookup: standard-library packages
	// (and any module package we end up not source-checking) resolve here.
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	gcImp, ok := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: gc importer is not an ImporterFrom")
	}

	// Source-check the non-standard packages in dependency order.
	source := map[string]*listedPkg{}
	for _, p := range listed {
		if !p.Standard {
			source[p.ImportPath] = p
		}
	}
	order, err := topo(source)
	if err != nil {
		return nil, err
	}
	built := map[string]*Package{}
	imp := &mapImporter{built: built, fallback: gcImp}
	for _, path := range order {
		pkg, err := check(fset, imp, source[path])
		if err != nil {
			return nil, err
		}
		built[path] = pkg
	}

	out := make([]*Package, 0, len(order))
	for _, path := range order {
		p := built[path]
		p.Root = roots[path]
		out = append(out, p)
	}
	return out, nil
}

// goList runs `go list -e -export -deps -json` and returns every listed
// package plus the set of import paths the patterns matched directly.
func goList(dir string, patterns []string) (map[string]*listedPkg, map[string]bool, error) {
	fields := "ImportPath,Dir,GoFiles,Imports,ImportMap,Export,Standard,Incomplete,Error"
	run := func(args ...string) ([]byte, error) {
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("loader: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
		}
		return out, nil
	}
	deps, err := run(append([]string{"list", "-e", "-export", "-deps", "-json=" + fields}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	// A second, dependency-free listing identifies which packages the
	// patterns matched directly (the roots to analyze).
	rootList, err := run(append([]string{"list", "-e", "-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}

	listed := map[string]*listedPkg{}
	dec := json.NewDecoder(bytes.NewReader(deps))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Incomplete {
			return nil, nil, fmt.Errorf("loader: %s: incomplete package", p.ImportPath)
		}
		q := p
		listed[p.ImportPath] = &q
	}
	roots := map[string]bool{}
	dec = json.NewDecoder(bytes.NewReader(rootList))
	for {
		var p struct{ ImportPath string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		roots[p.ImportPath] = true
	}
	return listed, roots, nil
}

// topo orders the module packages so every package follows its module
// dependencies.
func topo(pkgs map[string]*listedPkg) ([]string, error) {
	paths := make([]string, 0, len(pkgs))
	for p := range pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("loader: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := pkgs[path]
		deps := append([]string(nil), p.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if m, ok := p.ImportMap[d]; ok {
				d = m
			}
			if _, ok := pkgs[d]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// mapImporter resolves module imports to the source-checked packages of this
// load and everything else through the export-data importer.
type mapImporter struct {
	built    map[string]*Package
	fallback types.ImporterFrom
	current  *listedPkg // package being checked, for ImportMap resolution
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if m.current != nil {
		if mapped, ok := m.current.ImportMap[path]; ok {
			path = mapped
		}
	}
	if p, ok := m.built[path]; ok {
		return p.Types, nil
	}
	return m.fallback.ImportFrom(path, srcDir, 0)
}

// check parses and type-checks one module package from source.
func check(fset *token.FileSet, imp *mapImporter, lp *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	imp.current = lp
	defer func() { imp.current = nil }()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
