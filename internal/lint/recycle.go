package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"optcc/internal/lint/analysis"
)

// Recycle enforces the pooled-buffer aliasing rule from DESIGN.md "Memory
// discipline": once a payload buffer is returned to a freelist or
// sync.Pool, no alias of it may be used again — the pool will hand the same
// backing array to another version, and a stale alias becomes silent
// cross-version corruption (the exact failure mode the storage checksums
// exist to catch at read time; this analyzer catches it at review time).
//
// A release point is a call to (*sync.Pool).Put or to any function
// annotated //optcc:release (the storage freelist's putBuf/putBufLocked).
// After a release, the analyzer flags, within the same function in source
// order: any further read or write through the released expression (or a
// longer selector path rooted at it), and any second release of the same
// expression. Reassigning the variable wholesale clears its tracking —
// rebinding to a fresh buffer is the idiomatic reset.
var Recycle = &analysis.Analyzer{
	Name: "recycle",
	Doc:  "flag uses of pooled buffers after they are returned to a pool or freelist",
	Run:  runRecycle,
}

func runRecycle(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanRecycle(pass, fd.Body)
		}
	}
	return nil
}

// releaseCallArg returns the expression being released by call c, if c is a
// release point: the argument of Pool.Put, or every pointer/slice argument
// of an //optcc:release function (in practice these take one buffer).
func releaseCallArgs(pass *analysis.Pass, c *ast.CallExpr) []ast.Expr {
	callee := calleeObject(pass.TypesInfo, c)
	if callee == nil {
		return nil
	}
	if fn, ok := callee.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		fn.Name() == "Put" && namedTypeName(recvType(fn)) == "Pool" {
		if len(c.Args) == 1 {
			return c.Args[:1]
		}
		return nil
	}
	if !pass.Shared.ReleaseFuncs[callee] {
		return nil
	}
	var args []ast.Expr
	for _, a := range c.Args {
		t := pass.TypesInfo.Types[a].Type
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Slice, *types.Pointer:
			args = append(args, a)
		}
	}
	return args
}

func recvType(fn *types.Func) types.Type {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// exprKey canonicalizes an expression for release tracking: an identifier
// maps to its object's position (unique per object), a selector chain to
// rootKey + ".field" segments. Expressions rooted elsewhere (calls, index
// expressions) are not tracked.
func exprKey(info *types.Info, e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("obj@%d", obj.Pos())
	case *ast.SelectorExpr:
		root := exprKey(info, e.X)
		if root == "" {
			return ""
		}
		return root + "." + e.Sel.Name
	case *ast.UnaryExpr:
		return exprKey(info, e.X) // &x aliases x
	case *ast.StarExpr:
		return exprKey(info, e.X) // *p aliases p's target
	}
	return ""
}

// scanRecycle walks one function body (including nested literals — a
// closure sees the enclosing frame's released set) in source order.
func scanRecycle(pass *analysis.Pass, body *ast.BlockStmt) {
	// released maps expr key → position description of the release.
	released := map[string]bool{}

	// isReleased reports whether key or any prefix of it has been released:
	// after putBuf(v.payload), v.payload.x is dead too.
	isReleased := func(key string) bool {
		if key == "" {
			return false
		}
		for k := range released {
			if key == k || strings.HasPrefix(key, k+".") {
				return true
			}
		}
		return false
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				walk(rhs)
			}
			// A wholesale reassignment of a released expression rebinds it
			// to a fresh value: clear the key and everything under it.
			for _, lhs := range n.Lhs {
				key := exprKey(pass.TypesInfo, lhs)
				if key == "" {
					walk(lhs)
					continue
				}
				if isReleased(key) {
					for k := range released {
						if k == key || strings.HasPrefix(k, key+".") {
							delete(released, k)
						}
					}
				}
				// Index/selector writes under a released root are uses, but
				// the exact-key rebind above already removed them; anything
				// still released below the LHS root is a use-after-release.
				if isReleased(key) {
					pass.Reportf(lhs.Pos(), "write through released buffer: returned to its pool earlier in this function")
				}
			}
			return
		case *ast.CallExpr:
			args := releaseCallArgs(pass, n)
			if args == nil {
				for _, a := range n.Args {
					walk(a)
				}
				walk(n.Fun)
				return
			}
			for _, a := range args {
				key := exprKey(pass.TypesInfo, a)
				if key == "" {
					continue
				}
				if isReleased(key) {
					pass.Reportf(a.Pos(), "double release: buffer was already returned to its pool in this function")
					continue
				}
				released[key] = true
			}
			return
		case *ast.Ident, *ast.SelectorExpr:
			key := exprKey(pass.TypesInfo, n.(ast.Expr))
			if isReleased(key) {
				pass.Reportf(n.Pos(), "use of released buffer: returned to its pool earlier in this function")
			}
			return
		}
		var children []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				children = append(children, c)
			}
			return false
		})
		for _, c := range children {
			walk(c)
		}
	}
	walk(body)
}
