// Package herbrand implements the canonical (Herbrand) semantics of
// Section 4.2 of Kung & Papadimitriou 1979.
//
// Under Herbrand semantics the domain of every variable is the set of terms
// over the function symbols f_ij and the initial variable values: the
// interpretation of f_ij applied to terms a1..aj is the term
// "f_ij(a1,...,aj)". The Herbrand interpretation records the whole history
// of every global variable, so (by Herbrand's theorem, cf. [Manna 74]) two
// step sequences equivalent under it are equivalent under every
// interpretation.
//
// A schedule h is serializable — h ∈ SR(T) — iff its execution results
// under Herbrand semantics equal those of some serial schedule. Theorem 3
// states the serialization scheduler (fixpoint SR(T)) is optimal among all
// schedulers using complete syntactic information.
//
// Step kinds refine the universe exactly as the syntax declares: a Read
// step's write-back is the identity (the global term is unchanged) and a
// Write step's symbol is independent of the value just read (its own read
// term is excluded from the argument list).
package herbrand

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"optcc/internal/core"
)

// Term is a hash-consed element of the Herbrand universe: either a variable
// leaf (Args == nil) or an application of a function symbol. Terms from the
// same Universe are pointer-comparable: structural equality is pointer
// equality.
type Term struct {
	Sym  string
	Args []*Term
	id   int
}

// String renders the term in the paper's notation, e.g. "f12(f21(f11(x)))".
func (t *Term) String() string {
	if t == nil {
		return "⊥"
	}
	if t.Args == nil {
		return t.Sym
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Sym + "(" + strings.Join(parts, ",") + ")"
}

// Universe interns terms so that structurally equal terms are the same
// pointer. A Universe is not safe for concurrent use.
type Universe struct {
	table map[string]*Term
	next  int
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{table: map[string]*Term{}}
}

// Var returns the leaf term for the initial value of a variable.
func (u *Universe) Var(v core.Var) *Term {
	return u.intern(string(v), nil)
}

// Apply returns the application term sym(args...).
func (u *Universe) Apply(sym string, args []*Term) *Term {
	return u.intern(sym, args)
}

func (u *Universe) intern(sym string, args []*Term) *Term {
	var b strings.Builder
	b.WriteString(sym)
	if args != nil {
		b.WriteByte('(')
		for i, a := range args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(a.id))
		}
		b.WriteByte(')')
	}
	key := b.String()
	if t, ok := u.table[key]; ok {
		return t
	}
	var argsCopy []*Term
	if args != nil {
		argsCopy = make([]*Term, len(args))
		copy(argsCopy, args)
	}
	t := &Term{Sym: sym, Args: argsCopy, id: u.next}
	u.next++
	u.table[key] = t
	return t
}

// Size returns the number of distinct terms interned so far.
func (u *Universe) Size() int { return len(u.table) }

// Final is the execution result of a schedule under Herbrand semantics: the
// final term of every global variable.
type Final map[core.Var]*Term

// Equal reports whether two finals from the same Universe agree on every
// variable.
func (f Final) Equal(o Final) bool {
	if len(f) != len(o) {
		return false
	}
	for v, t := range f {
		if o[v] != t {
			return false
		}
	}
	return true
}

// Key returns a deterministic encoding of the final, usable as a map key
// for finals produced by the same Universe.
func (f Final) Key() string {
	vars := make([]string, 0, len(f))
	for v := range f {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%s=%d;", v, f[core.Var(v)].id)
	}
	return b.String()
}

// String renders the final deterministically.
func (f Final) String() string {
	vars := make([]string, 0, len(f))
	for v := range f {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = v + "=" + f[core.Var(v)].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Eval executes the schedule symbolically in the universe and returns the
// final term of every global variable. The schedule must be a legal
// complete schedule of the system (legal prefixes are also accepted; the
// final then reflects the prefix).
func Eval(u *Universe, sys *core.System, h core.Schedule) (Final, error) {
	if !h.LegalPrefix(sys.Format()) {
		return nil, fmt.Errorf("herbrand: schedule %v is not a legal prefix of format %v", h, sys.Format())
	}
	g := Final{}
	for _, v := range sys.Vars() {
		g[v] = u.Var(v)
	}
	locals := make([][]*Term, sys.NumTxs())
	for _, id := range h {
		step := sys.Step(id)
		read := g[step.Var]
		locals[id.Tx] = append(locals[id.Tx], read)
		switch step.Kind {
		case core.Read:
			// identity write-back: global term unchanged
		case core.Write:
			// f_ij is independent of t_ij: exclude the step's own read.
			args := locals[id.Tx][:len(locals[id.Tx])-1]
			g[step.Var] = u.Apply(step.FnName, args)
		default:
			g[step.Var] = u.Apply(step.FnName, locals[id.Tx])
		}
	}
	return g, nil
}

// Checker decides SR(T) membership for one system, caching the Herbrand
// finals of all n! serial schedules.
type Checker struct {
	sys     *core.System
	uni     *Universe
	serials []serialFinal
}

type serialFinal struct {
	order []int
	final Final
}

// NewChecker prepares a checker for the system. The system must be
// normalized (function symbols named); call (*core.System).Normalize first.
func NewChecker(sys *core.System) (*Checker, error) {
	c := &Checker{sys: sys, uni: NewUniverse()}
	n := sys.NumTxs()
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == n {
			order := append([]int(nil), perm...)
			h := core.SerialSchedule(sys.Format(), order)
			f, err := Eval(c.uni, sys, h)
			if err != nil {
				return err
			}
			c.serials = append(c.serials, serialFinal{order: order, final: f})
			return nil
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			perm[depth] = i
			if err := rec(depth + 1); err != nil {
				return err
			}
			used[i] = false
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return c, nil
}

// Universe returns the checker's term universe (useful for evaluating
// further schedules in the same universe).
func (c *Checker) Universe() *Universe { return c.uni }

// Final evaluates a schedule in the checker's universe.
func (c *Checker) Final(h core.Schedule) (Final, error) {
	return Eval(c.uni, c.sys, h)
}

// Serializable reports whether h ∈ SR(T) and, if so, returns the
// transaction order of a witnessing serial schedule.
func (c *Checker) Serializable(h core.Schedule) (bool, []int, error) {
	f, err := c.Final(h)
	if err != nil {
		return false, nil, err
	}
	for _, s := range c.serials {
		if f.Equal(s.final) {
			return true, s.order, nil
		}
	}
	return false, nil, nil
}

// Equivalent reports whether two schedules have identical Herbrand
// execution results.
func (c *Checker) Equivalent(h1, h2 core.Schedule) (bool, error) {
	f1, err := c.Final(h1)
	if err != nil {
		return false, err
	}
	f2, err := c.Final(h2)
	if err != nil {
		return false, err
	}
	return f1.Equal(f2), nil
}

// SerialFinals returns the distinct Herbrand finals of serial schedules,
// with one witnessing order each.
func (c *Checker) SerialFinals() map[string][]int {
	out := map[string][]int{}
	for _, s := range c.serials {
		k := s.final.Key()
		if _, ok := out[k]; !ok {
			out[k] = s.order
		}
	}
	return out
}
