package herbrand

import (
	"testing"

	"optcc/internal/core"
	"optcc/internal/schedule"
)

// figure1 is the transaction system of Figure 1: T1 = (x←x+1, x←2x),
// T2 = (x←x+1). Interpretations are irrelevant here; only syntax matters.
func figure1() *core.System {
	return (&core.System{
		Name: "figure1",
		Txs: []core.Transaction{
			{Name: "T1", Steps: []core.Step{
				{Var: "x", Kind: core.Update},
				{Var: "x", Kind: core.Update},
			}},
			{Name: "T2", Steps: []core.Step{
				{Var: "x", Kind: core.Update},
			}},
		},
	}).Normalize()
}

func TestUniverseInterning(t *testing.T) {
	u := NewUniverse()
	x1 := u.Var("x")
	x2 := u.Var("x")
	if x1 != x2 {
		t.Error("same leaf interned twice")
	}
	a := u.Apply("f", []*Term{x1})
	b := u.Apply("f", []*Term{x2})
	if a != b {
		t.Error("structurally equal applications interned twice")
	}
	c := u.Apply("g", []*Term{x1})
	if a == c {
		t.Error("distinct symbols share a term")
	}
	if u.Size() != 3 {
		t.Errorf("universe size = %d, want 3", u.Size())
	}
}

func TestTermString(t *testing.T) {
	u := NewUniverse()
	x := u.Var("x")
	f := u.Apply("f11", []*Term{x})
	g := u.Apply("f21", []*Term{f})
	if got := g.String(); got != "f21(f11(x))" {
		t.Errorf("term = %q", got)
	}
	var nilTerm *Term
	if nilTerm.String() != "⊥" {
		t.Error("nil term string")
	}
}

func TestFigure1HistoryNotSerializable(t *testing.T) {
	sys := figure1()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	// h = (T11, T21, T12): Herbrand value f12(f21(f11(x))) differs from
	// both serial values f12(f11(f21(x))) and f21(f12(f11(x))).
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	ok, _, err := c.Serializable(h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Figure 1 history judged serializable; the paper proves it is not")
	}
	f, err := c.Final(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := f["x"].String(); got != "f12(f11(x),f21(f11(x)))" && got != "f12(f21(f11(x)))" {
		// With Update steps, f12 sees locals (t11, t12) where t11 = f11(x)
		// and t12 = f21(f11(x)).
		t.Logf("herbrand value of x: %s", got)
	}
}

func TestSerialSchedulesAreSerializable(t *testing.T) {
	sys := figure1()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range schedule.Serials(sys.Format()) {
		ok, order, err := c.Serializable(h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("serial schedule %v not serializable", h)
		}
		if want, _ := h.SerialOrder(); len(order) != len(want) {
			t.Errorf("witness order %v for %v", order, h)
		}
	}
}

// Two transactions on disjoint variables: every interleaving is
// serializable.
func TestDisjointVariablesAllSerializable(t *testing.T) {
	sys := (&core.System{
		Name: "disjoint",
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "x", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "y", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
		},
	}).Normalize()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		ok, _, err := c.Serializable(h)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("disjoint-variable schedule %v not serializable", h)
		}
		return true
	})
}

// Read-only transactions never conflict: every interleaving serializable.
func TestReadOnlyAllSerializable(t *testing.T) {
	sys := (&core.System{
		Name: "readers",
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "y", Kind: core.Read}}},
			{Steps: []core.Step{{Var: "y", Kind: core.Read}, {Var: "x", Kind: core.Read}}},
		},
	}).Normalize()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	n, sr := 0, 0
	schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
		n++
		ok, _, err := c.Serializable(h)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sr++
		}
		return true
	})
	if n != sr {
		t.Errorf("%d of %d read-only schedules serializable; want all", sr, n)
	}
}

// Classic non-serializable R/W pattern: two transactions each read x then
// write x (lost update). The interleaved R1 R2 W1 W2 is not serializable.
func TestLostUpdateNotSerializable(t *testing.T) {
	sys := (&core.System{
		Name: "lostupdate",
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "x", Kind: core.Write}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "x", Kind: core.Write}}},
		},
	}).Normalize()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 1, Idx: 1}}
	ok, _, err := c.Serializable(h)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lost-update anomaly judged serializable")
	}
}

func TestWriteStepExcludesOwnRead(t *testing.T) {
	// A single Write step's term must not mention the variable it
	// overwrites (blind write).
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Write}}}},
	}).Normalize()
	u := NewUniverse()
	f, err := Eval(u, sys, core.Schedule{{Tx: 0, Idx: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f["x"].String(); got != "f11()" {
		t.Errorf("blind write term = %q, want f11()", got)
	}
}

func TestUpdateStepIncludesOwnRead(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	u := NewUniverse()
	f, err := Eval(u, sys, core.Schedule{{Tx: 0, Idx: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f["x"].String(); got != "f11(x)" {
		t.Errorf("update term = %q, want f11(x)", got)
	}
}

func TestEvalRejectsIllegalSchedules(t *testing.T) {
	sys := figure1()
	u := NewUniverse()
	if _, err := Eval(u, sys, core.Schedule{{Tx: 0, Idx: 1}}); err == nil {
		t.Error("illegal schedule evaluated")
	}
}

func TestEquivalenceIsReflexiveSymmetric(t *testing.T) {
	sys := figure1()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	hs := schedule.All(sys.Format(), 0)
	for _, a := range hs {
		eq, err := c.Equivalent(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%v not equivalent to itself", a)
		}
	}
	for _, a := range hs {
		for _, b := range hs {
			ab, _ := c.Equivalent(a, b)
			ba, _ := c.Equivalent(b, a)
			if ab != ba {
				t.Errorf("equivalence not symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestSerialFinalsDistinct(t *testing.T) {
	sys := figure1()
	c, err := NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	finals := c.SerialFinals()
	if len(finals) != 2 {
		t.Errorf("figure-1 system has %d distinct serial finals, want 2", len(finals))
	}
}

func TestFinalKeyAndString(t *testing.T) {
	sys := figure1()
	u := NewUniverse()
	f, err := Eval(u, sys, core.SerialSchedule(sys.Format(), []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	g, err := Eval(u, sys, core.SerialSchedule(sys.Format(), []int{0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if f.Key() != g.Key() {
		t.Error("identical finals have different keys")
	}
	if !f.Equal(g) {
		t.Error("identical finals not equal")
	}
	if f.String() == "" {
		t.Error("empty final string")
	}
	h, _ := Eval(u, sys, core.SerialSchedule(sys.Format(), []int{1, 0}))
	if f.Equal(h) {
		t.Error("distinct serial orders evaluate equal on figure-1")
	}
}
