package online

import (
	"fmt"
	"sync"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// ConcurrentStrict2PL is strict two-phase locking on the sharded lock table:
// a natively concurrent scheduler whose Try/Commit/Abort may be driven from
// per-shard dispatch loops without external serialization. Lock state is
// hash-partitioned by variable (lockmgr.ShardedTable), uncontended exclusive
// locks take the table's lock-free fast path, and deadlock detection runs on
// the merged cross-shard waits-for graph.
//
// Two-phase locking composes across partitions — every conflict is decided
// by the single shard owning its variable, and locks are held to commit —
// so no ordering rail is needed: every complete execution is
// conflict-serializable, exactly as with the monolithic table.
type ConcurrentStrict2PL struct {
	policy lockmgr.Policy
	shards int

	sys   *core.System
	table *lockmgr.ShardedTable

	// scratch holds one reusable TryBatch buffer set per shard. The
	// dispatch loops send same-shard batches and concurrent TryBatch calls
	// must be on different shards (the BatchTrier contract), so indexing by
	// the first id's shard gives every concurrent caller private scratch —
	// the batch path allocates nothing in steady state.
	scratch []batchScratch

	mu      sync.Mutex // guards wounded
	wounded []int
}

// batchScratch is one shard's reusable TryBatch buffers.
type batchScratch struct {
	reqs    []lockmgr.BatchReq
	results []lockmgr.Result
	out     []Decision
}

// NewConcurrentStrict2PL returns a sharded strict 2PL scheduler with the
// given deadlock policy and shard count.
func NewConcurrentStrict2PL(policy lockmgr.Policy, shards int) *ConcurrentStrict2PL {
	if shards < 1 {
		shards = 1
	}
	return &ConcurrentStrict2PL{policy: policy, shards: shards}
}

// Name implements Scheduler.
func (s *ConcurrentStrict2PL) Name() string {
	return fmt.Sprintf("2pl-sharded(%d)/%s", s.shards, s.policy)
}

// Begin implements Scheduler.
func (s *ConcurrentStrict2PL) Begin(sys *core.System) {
	s.sys = sys
	s.table = lockmgr.NewShardedTable(s.policy, s.shards)
	// Reserve flat per-transaction table state and register everything up
	// front: the steady-state Acquire/ReleaseAll cycle then never touches
	// a sync.Map allocation or the registration slow path.
	s.table.Reserve(sys.NumTxs())
	s.scratch = make([]batchScratch, s.shards)
	s.mu.Lock()
	s.wounded = nil
	s.mu.Unlock()
	for tx := 0; tx < sys.NumTxs(); tx++ {
		s.table.Register(lockmgr.TxID(tx))
	}
}

// Try implements Scheduler. Safe for concurrent use across transactions.
func (s *ConcurrentStrict2PL) Try(id core.StepID) Decision {
	step := s.sys.Step(id)
	need := lockMode(step.Kind)
	if held, ok := s.table.Holds(lockmgr.TxID(id.Tx), step.Var); ok {
		if held == lockmgr.Exclusive || need == lockmgr.Shared {
			return Grant
		}
	}
	r := s.table.Acquire(lockmgr.TxID(id.Tx), step.Var, need)
	if len(r.Wounded) > 0 {
		s.mu.Lock()
		for _, w := range r.Wounded {
			s.wounded = append(s.wounded, int(w))
		}
		s.mu.Unlock()
	}
	switch r.Status {
	case lockmgr.Granted:
		return Grant
	case lockmgr.AbortSelf:
		return AbortTx
	default:
		return Delay
	}
}

// TryBatch implements BatchTrier natively: the batch's lock requests go
// through lockmgr.ShardedTable.AcquireBatchInto, which takes each shard
// mutex at most once for the whole batch (the dispatch loops send
// same-shard batches, so normally exactly once). Reentrant holds are
// resolved by the table's fast-slot check and by Table.Acquire itself, so
// the result is decision-for-decision equivalent to calling Try on each id
// in order. The returned slice is the scratch of the first id's shard: it
// stays valid until that shard's next TryBatch, which is exactly the
// dispatch loops' usage (a loop consumes the decisions before its next
// batch), and concurrent batches on other shards use their own scratch.
func (s *ConcurrentStrict2PL) TryBatch(ids []core.StepID) []Decision {
	sc := &s.scratch[s.ShardOf(s.sys.Step(ids[0]).Var)]
	sc.reqs = sc.reqs[:0]
	for _, id := range ids {
		step := s.sys.Step(id)
		sc.reqs = append(sc.reqs, lockmgr.BatchReq{Tx: lockmgr.TxID(id.Tx), Var: step.Var, Mode: lockMode(step.Kind)})
	}
	sc.results = s.table.AcquireBatchInto(sc.results, sc.reqs)
	sc.out = sc.out[:0]
	var wounded []int
	for _, r := range sc.results {
		for _, w := range r.Wounded {
			wounded = append(wounded, int(w))
		}
		switch r.Status {
		case lockmgr.Granted:
			sc.out = append(sc.out, Grant)
		case lockmgr.AbortSelf:
			sc.out = append(sc.out, AbortTx)
		default:
			sc.out = append(sc.out, Delay)
		}
	}
	if len(wounded) > 0 {
		s.mu.Lock()
		s.wounded = append(s.wounded, wounded...)
		s.mu.Unlock()
	}
	return sc.out
}

// Commit implements Scheduler.
func (s *ConcurrentStrict2PL) Commit(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
}

// Abort implements Scheduler.
func (s *ConcurrentStrict2PL) Abort(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
}

// Victim implements Scheduler: break a cycle of the merged cross-shard
// waits-for graph by aborting its youngest member.
func (s *ConcurrentStrict2PL) Victim(stuck []int) (int, bool) {
	if cycle, found := s.table.DetectDeadlock(); found {
		return int(s.table.ChooseVictim(cycle)), true
	}
	return 0, false
}

// Wounded implements Scheduler.
func (s *ConcurrentStrict2PL) Wounded() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.wounded
	s.wounded = nil
	return w
}

// WaitsForTxs exposes the merged waits-for graph (WaitsForProvider).
func (s *ConcurrentStrict2PL) WaitsForTxs() map[int][]int {
	out := map[int][]int{}
	for w, blockers := range s.table.WaitsFor() {
		bs := make([]int, 0, len(blockers))
		for _, b := range blockers {
			bs = append(bs, int(b))
		}
		out[int(w)] = bs
	}
	return out
}

// NumShards implements ConcurrentScheduler.
func (s *ConcurrentStrict2PL) NumShards() int { return s.shards }

// ShardOf implements ConcurrentScheduler.
func (s *ConcurrentStrict2PL) ShardOf(v core.Var) int { return shardOfVar(v, s.shards) }
