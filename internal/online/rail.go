package online

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// stripedRail is the partitioned cross-shard ordering rail. The PR 1 rail
// kept one global conflict graph behind one mutex, so every multi-shard
// reservation serialized on it and paid a full reachability walk with
// per-call map allocations. The striped rail removes both costs:
//
//   - The graph is partitioned into per-component subgraphs. A cheap
//     union-style component map (union-find under compMu, whose critical
//     sections are a few pointer chases) tracks which nodes can possibly
//     be connected; subgraphs are keyed by component root and owned by the
//     stripe the root hashes to, each stripe behind its own mutex.
//   - A reservation locks only the stripes owning the components it
//     touches. If no source shares the requester's component, no path
//     back to any source can exist — connectivity in the edge graph is
//     always a subset of the component relation — so the edges are
//     inserted with no cycle check at all; reservations on disjoint
//     components proceed in parallel on different stripes. Only a
//     same-component source forces the exact DFS, which runs entirely
//     inside that one component's subgraph under its single stripe lock.
//   - The DFS and the prune sweep reuse per-stripe scratch buffers
//     (visited-stamp maps, stacks, in-degree maps) instead of allocating
//     per call.
//
// Locking protocol (deadlock-free by construction):
//
//   - stripe mutexes are always acquired in ascending index order;
//   - compMu nests strictly inside stripe mutexes (it is never held while
//     acquiring a stripe mutex);
//   - a component root can only be absorbed into another component by a
//     thread holding the root's stripe mutex, so once a thread holds the
//     stripes covering its roots (validated under compMu), those roots —
//     and their subgraphs — are stable until it unlocks.
//
// Union-find entries are never deleted: a retired node may live on as a
// pure component label (splitting the map could break the connectivity
// invariant). The maps are per-run (rebuilt by Begin), so this is bounded
// by the run's incarnation count, exactly like the old rail's maps.
//
// Epoch/withdraw semantics are unchanged from the single-mutex rail: an
// aborted incarnation's node leaves the graph and the transaction gets a
// fresh epoch; provisionally inserted edges are withdrawn when the shard
// scheduler rejects the step. Withdrawal does not un-merge components —
// the component map stays a conservative over-approximation, which can
// only cost an unnecessary exact check, never miss a cycle.
type stripedRail struct {
	stripes []railStripe
	epoch   []atomic.Int64

	compMu sync.Mutex
	parent map[railNode]railNode // union-find; missing entry = self root
}

// railStripe owns the subgraphs of the components whose roots hash to it,
// plus the reusable scratch its DFS and prune sweeps run on.
type railStripe struct {
	mu   sync.Mutex
	subs map[railNode]*railSub

	visited map[railNode]int // DFS visited-stamp scratch
	stamp   int
	stack   []railNode
	indeg   map[railNode]int // prune scratch
}

// railSub is one component's subgraph: its edges and committed nodes.
type railSub struct {
	edges     map[railNode]map[railNode]bool
	committed map[railNode]bool
}

func newStripedRail(stripes, numTxs int) *stripedRail {
	if stripes < 1 {
		stripes = 1
	}
	r := &stripedRail{
		stripes: make([]railStripe, stripes),
		epoch:   make([]atomic.Int64, numTxs),
		parent:  map[railNode]railNode{},
	}
	for i := range r.stripes {
		r.stripes[i].subs = map[railNode]*railSub{}
		r.stripes[i].visited = map[railNode]int{}
		r.stripes[i].indeg = map[railNode]int{}
	}
	return r
}

// node returns the transaction's current incarnation.
func (r *stripedRail) node(tx int) railNode {
	return railNode{tx: tx, epoch: int(r.epoch[tx].Load())}
}

// stripeOf maps a component root to the stripe owning its subgraph.
func (r *stripedRail) stripeOf(n railNode) int {
	h := uint32(n.tx)*2654435761 ^ uint32(n.epoch)*40503
	return int(h % uint32(len(r.stripes)))
}

// find returns n's component root with path compression. Caller holds
// compMu.
func (r *stripedRail) find(n railNode) railNode {
	root := n
	for {
		p, ok := r.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	for n != root {
		p := r.parent[n]
		r.parent[n] = root
		n = p
	}
	return root
}

// lockComp locks the stripe owning n's component and returns the current
// root and stripe index. It retries when a concurrent union moves the root
// to another stripe between the lookup and the lock; every retry consumes
// a union, so the loop terminates. Caller unlocks stripes[stripe].mu.
func (r *stripedRail) lockComp(n railNode) (root railNode, stripe int) {
	for {
		r.compMu.Lock()
		root = r.find(n)
		r.compMu.Unlock()
		stripe = r.stripeOf(root)
		r.stripes[stripe].mu.Lock()
		r.compMu.Lock()
		root = r.find(n)
		ok := r.stripeOf(root) == stripe
		r.compMu.Unlock()
		if ok {
			return root, stripe
		}
		r.stripes[stripe].mu.Unlock()
	}
}

// reserve atomically checks that adding source→me edges keeps the rail
// graph acyclic and inserts them, returning the edges that were new (for
// withdrawal if the shard scheduler rejects the step) and whether the
// reservation succeeded. added is appended into buf, so a caller with a
// reusable buffer allocates nothing. Caller holds the requesting shard's
// slot mutex (never a stripe mutex).
func (r *stripedRail) reserve(me railNode, sources []railNode, buf []railNode) (added []railNode, ok bool) {
	added = buf[:0]
	if len(sources) == 0 {
		// No conflicting predecessors: no edges, no cycle, no locks.
		return added, true
	}
	var lockBuf [8]int
	for attempt := 0; ; attempt++ {
		// Snapshot the stripes covering every involved component root.
		locked := lockBuf[:0]
		if attempt >= 2 {
			// Concurrent unions moved a root out of our snapshot twice:
			// escalate to every stripe, which cannot fail validation.
			for i := range r.stripes {
				locked = append(locked, i)
			}
		} else {
			r.compMu.Lock()
			locked = append(locked, r.stripeOf(r.find(me)))
			for _, src := range sources {
				if s := r.stripeOf(r.find(src)); !slices.Contains(locked, s) {
					locked = append(locked, s)
				}
			}
			r.compMu.Unlock()
			sort.Ints(locked)
		}
		for _, s := range locked {
			r.stripes[s].mu.Lock()
		}
		// Re-resolve the roots under the locks; if they all still live on
		// locked stripes they are pinned until we unlock.
		r.compMu.Lock()
		meRoot := r.find(me)
		valid := slices.Contains(locked, r.stripeOf(meRoot))
		var srcRoots []railNode // foreign roots to merge (unique)
		sameComp := false
		for _, src := range sources {
			root := r.find(src)
			if !slices.Contains(locked, r.stripeOf(root)) {
				valid = false
				break
			}
			if root == meRoot {
				sameComp = true
			} else if !slices.Contains(srcRoots, root) {
				srcRoots = append(srcRoots, root)
			}
		}
		if !valid {
			r.compMu.Unlock()
			for _, s := range locked {
				r.stripes[s].mu.Unlock()
			}
			continue
		}
		r.compMu.Unlock()

		meStripe := r.stripeOf(meRoot)
		st := &r.stripes[meStripe]
		sub := st.subs[meRoot]
		if sameComp && sub != nil {
			// Exact check, scoped to me's component: a new edge src→me
			// closes a cycle iff me already reaches src. Sources in
			// foreign components cannot be reached — a path would have
			// unioned them — so only same-component sources lacking their
			// edge are targets.
			st.stack = st.stack[:0]
			for _, src := range sources {
				if src == meRoot || r.sameRoot(src, meRoot) {
					if !sub.edges[src][me] {
						st.stack = append(st.stack, src)
					}
				}
			}
			targets := st.stack
			if st.reaches(sub, me, targets) {
				for _, s := range locked {
					r.stripes[s].mu.Unlock()
				}
				return nil, false
			}
		}
		// Merge foreign components into me's (union before the edges become
		// visible, keeping connectivity ⊆ component relation), then insert.
		if len(srcRoots) > 0 {
			r.compMu.Lock()
			for _, root := range srcRoots {
				r.parent[root] = meRoot
			}
			r.compMu.Unlock()
		}
		if sub == nil {
			sub = &railSub{edges: map[railNode]map[railNode]bool{}, committed: map[railNode]bool{}}
			st.subs[meRoot] = sub
		}
		for _, root := range srcRoots {
			os := &r.stripes[r.stripeOf(root)]
			if other := os.subs[root]; other != nil {
				for from, tos := range other.edges {
					if cur := sub.edges[from]; cur == nil {
						sub.edges[from] = tos
					} else {
						for to := range tos {
							cur[to] = true
						}
					}
				}
				for n := range other.committed {
					sub.committed[n] = true
				}
				delete(os.subs, root)
			}
		}
		for _, src := range sources {
			m := sub.edges[src]
			if m == nil {
				m = map[railNode]bool{}
				sub.edges[src] = m
			}
			if !m[me] {
				m[me] = true
				added = append(added, src)
			}
		}
		for _, s := range locked {
			r.stripes[s].mu.Unlock()
		}
		return added, true
	}
}

// sameRoot reports whether n's component root is root. Called with the
// root's stripe held, so the answer is stable.
func (r *stripedRail) sameRoot(n, root railNode) bool {
	r.compMu.Lock()
	same := r.find(n) == root
	r.compMu.Unlock()
	return same
}

// reaches reports whether any node in targets is reachable from start in
// sub. It reuses the stripe's visited-stamp scratch: no allocation on the
// steady-state path. Caller holds the stripe's mutex; targets aliases the
// stripe's stack scratch, so the walk uses a local continuation index
// rather than the shared stack slice.
func (st *railStripe) reaches(sub *railSub, start railNode, targets []railNode) bool {
	if len(targets) == 0 {
		return false
	}
	st.stamp++
	if len(st.visited) > 4096 {
		// Bound scratch growth across long runs; stamps make stale entries
		// harmless, this only caps memory.
		st.visited = make(map[railNode]int)
	}
	head := len(targets) // frontier lives after the targets in st.stack
	st.stack = append(st.stack, start)
	for len(st.stack) > head {
		u := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		if st.visited[u] == st.stamp {
			continue
		}
		st.visited[u] = st.stamp
		for _, t := range st.stack[:head] {
			if u == t {
				return true
			}
		}
		for v := range sub.edges[u] {
			st.stack = append(st.stack, v)
		}
	}
	return false
}

// withdraw removes provisionally inserted src→me edges after a shard-local
// rejection. All of them live in me's component (reserve unioned before
// inserting, and components only merge).
func (r *stripedRail) withdraw(me railNode, added []railNode) {
	if len(added) == 0 {
		return
	}
	root, stripe := r.lockComp(me)
	st := &r.stripes[stripe]
	if sub := st.subs[root]; sub != nil {
		for _, src := range added {
			if m := sub.edges[src]; m != nil {
				delete(m, me)
				if len(m) == 0 {
					delete(sub.edges, src)
				}
			}
		}
	}
	st.mu.Unlock()
}

// commit retires the transaction's current incarnation: the node is marked
// committed and its component pruned. The removed nodes — whose grant-log
// entries the caller must purge outside any rail lock — are appended into
// buf, so a caller with a pooled buffer allocates nothing.
func (r *stripedRail) commit(tx int, buf []railNode) []railNode {
	me := r.node(tx)
	root, stripe := r.lockComp(me)
	st := &r.stripes[stripe]
	sub := st.subs[root]
	removed := buf[:0]
	if sub == nil {
		// Edgeless singleton: retires immediately.
		removed = append(removed, me)
	} else {
		sub.committed[me] = true
		removed = st.prune(sub, removed)
		if len(sub.edges) == 0 && len(sub.committed) == 0 {
			delete(st.subs, root)
		}
	}
	st.mu.Unlock()
	return removed
}

// abortTx drops the incarnation's node from its component, prunes, and
// starts a fresh epoch. It appends into buf the pruned nodes plus the
// dropped node itself for log purging.
func (r *stripedRail) abortTx(tx int, buf []railNode) []railNode {
	gone := r.node(tx)
	root, stripe := r.lockComp(gone)
	r.epoch[tx].Add(1)
	st := &r.stripes[stripe]
	removed := append(buf[:0], gone)
	if sub := st.subs[root]; sub != nil {
		delete(sub.edges, gone)
		for src, m := range sub.edges {
			if m[gone] {
				delete(m, gone)
				if len(m) == 0 {
					delete(sub.edges, src)
				}
			}
		}
		delete(sub.committed, gone)
		removed = st.prune(sub, removed)
		if len(sub.edges) == 0 && len(sub.committed) == 0 {
			delete(st.subs, root)
		}
	}
	st.mu.Unlock()
	return removed
}

// prune removes committed nodes with no incoming edges from sub: edges only
// ever point from earlier grants to later ones, so such a node can never
// rejoin a cycle. The sweep is scoped to one component — a removal can only
// unblock successors inside the same subgraph. Removed nodes are appended
// into the caller's buffer. Reuses the stripe's in-degree scratch; caller
// holds the stripe's mutex.
func (st *railStripe) prune(sub *railSub, removed []railNode) []railNode {
	for {
		clear(st.indeg)
		for _, tos := range sub.edges {
			for to := range tos {
				st.indeg[to]++
			}
		}
		progress := false
		for n := range sub.committed {
			if st.indeg[n] == 0 {
				delete(sub.edges, n)
				delete(sub.committed, n)
				removed = append(removed, n)
				progress = true
			}
		}
		if !progress {
			return removed
		}
	}
}
