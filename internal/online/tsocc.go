package online

import (
	"optcc/internal/conflict"
	"optcc/internal/core"
)

// TO is the basic timestamp-ordering scheduler ([Stearns et al. 76]
// lineage): each transaction gets a timestamp at its first request; a step
// is granted only if it would not read or overwrite data "from the
// future". Conflicting accesses therefore execute in timestamp order, so
// every undelayed history is conflict-serializable in arrival order.
type TO struct {
	base
	sys *core.System
	// Thomas enables the Thomas write rule: a blind write older than the
	// variable's latest write is skipped rather than aborted.
	Thomas bool

	clock   int64
	ts      []int64
	readTS  map[core.Var]int64
	writeTS map[core.Var]int64
}

// NewTO returns a basic timestamp-ordering scheduler.
func NewTO() *TO { return &TO{} }

// NewTOThomas returns timestamp ordering with the Thomas write rule.
func NewTOThomas() *TO { return &TO{Thomas: true} }

// Name implements Scheduler.
func (s *TO) Name() string {
	if s.Thomas {
		return "to/thomas"
	}
	return "to/basic"
}

// Begin implements Scheduler.
func (s *TO) Begin(sys *core.System) {
	s.sys = sys
	s.clock = 0
	s.ts = make([]int64, sys.NumTxs())
	s.readTS = map[core.Var]int64{}
	s.writeTS = map[core.Var]int64{}
}

// Try implements Scheduler.
func (s *TO) Try(id core.StepID) Decision {
	if s.ts[id.Tx] == 0 {
		s.clock++
		s.ts[id.Tx] = s.clock
	}
	ts := s.ts[id.Tx]
	step := s.sys.Step(id)
	v := step.Var
	if conflict.Reads(step.Kind) && ts < s.writeTS[v] {
		return AbortTx
	}
	if conflict.Writes(step.Kind) {
		if ts < s.readTS[v] {
			return AbortTx
		}
		if ts < s.writeTS[v] {
			if s.Thomas && step.Kind == core.Write {
				// Thomas write rule: obsolete blind write is a no-op.
				return Grant
			}
			return AbortTx
		}
	}
	if conflict.Reads(step.Kind) && ts > s.readTS[v] {
		s.readTS[v] = ts
	}
	if conflict.Writes(step.Kind) && ts > s.writeTS[v] {
		s.writeTS[v] = ts
	}
	return Grant
}

// Commit implements Scheduler.
func (s *TO) Commit(tx int) {}

// Abort implements Scheduler: the transaction restarts with a fresh (later)
// timestamp, which guarantees progress.
func (s *TO) Abort(tx int) { s.ts[tx] = 0 }

// OCC is an optimistic scheduler with validation at commit, in the serial
// validation style of Kung & Robinson: steps always execute immediately;
// at its last step a transaction certifies itself and restarts on failure.
//
// Because this runtime executes writes in place (there is no private
// workspace whose writes install atomically at commit), backward
// validation alone is unsound — a concurrent reader can observe an active
// transaction's write. Validation therefore checks three conditions for
// the committing transaction j:
//
//	(a) backward r/w: no transaction that committed during j's lifetime
//	    wrote anything j read;
//	(b) dirty read: j never read a variable previously written by a still
//	    active transaction;
//	(c) backward w/w: no transaction that committed during j's lifetime
//	    wrote anything j wrote (write phases interleave in place, so
//	    intermingled writes cannot be certified).
//
// The symmetric dirty-write/anti-dependency cases are caught when the
// other transaction validates, via (a) and (c).
type OCC struct {
	base
	sys        *core.System
	clock      int
	start      []int
	readTimes  []map[core.Var]int // LAST read time per variable (see (b))
	writeTimes []map[core.Var]int // first write time per variable
	history    []occCommit
}

type occCommit struct {
	at     int
	writes map[core.Var]bool
}

// NewOCC returns an optimistic scheduler.
func NewOCC() *OCC { return &OCC{} }

// Name implements Scheduler.
func (s *OCC) Name() string { return "occ/backward" }

// Begin implements Scheduler.
func (s *OCC) Begin(sys *core.System) {
	s.sys = sys
	s.clock = 0
	n := sys.NumTxs()
	s.start = make([]int, n)
	s.readTimes = make([]map[core.Var]int, n)
	s.writeTimes = make([]map[core.Var]int, n)
	s.history = nil
	for i := 0; i < n; i++ {
		s.reset(i)
	}
}

func (s *OCC) reset(tx int) {
	s.start[tx] = -1
	s.readTimes[tx] = map[core.Var]int{}
	s.writeTimes[tx] = map[core.Var]int{}
}

// active reports whether a transaction has executed steps and not yet
// committed (its sets are non-empty and start assigned).
func (s *OCC) activeTx(tx int) bool { return s.start[tx] >= 0 }

// Try implements Scheduler.
func (s *OCC) Try(id core.StepID) Decision {
	if s.start[id.Tx] < 0 {
		s.start[id.Tx] = s.clock
	}
	step := s.sys.Step(id)
	last := id.Idx == len(s.sys.Txs[id.Tx].Steps)-1
	if last {
		// Assemble j's read/write views including this final step.
		reads := map[core.Var]int{}
		for v, t := range s.readTimes[id.Tx] {
			reads[v] = t
		}
		writes := map[core.Var]int{}
		for v, t := range s.writeTimes[id.Tx] {
			writes[v] = t
		}
		now := s.clock + 1
		if conflict.Reads(step.Kind) {
			// Last read time, not first: with in-place writes, a repeat
			// read of v observes the latest state, so a writer that slid
			// between two of j's reads of v is a dirty read even though it
			// postdates the first one.
			reads[step.Var] = now
		}
		if conflict.Writes(step.Kind) {
			if _, ok := writes[step.Var]; !ok {
				writes[step.Var] = now
			}
		}
		// (a) + (c): backward validation against commits during lifetime.
		for _, c := range s.history {
			if c.at <= s.start[id.Tx] {
				continue
			}
			for v := range c.writes {
				if _, ok := reads[v]; ok {
					return AbortTx
				}
				if _, ok := writes[v]; ok {
					return AbortTx
				}
			}
		}
		// (b): dirty reads from still-active writers.
		for other := 0; other < s.sys.NumTxs(); other++ {
			if other == id.Tx || !s.activeTx(other) {
				continue
			}
			for v, wt := range s.writeTimes[other] {
				if rt, ok := reads[v]; ok && wt < rt {
					return AbortTx
				}
			}
		}
	}
	s.clock++
	if conflict.Reads(step.Kind) {
		s.readTimes[id.Tx][step.Var] = s.clock
	}
	if conflict.Writes(step.Kind) {
		if _, ok := s.writeTimes[id.Tx][step.Var]; !ok {
			s.writeTimes[id.Tx][step.Var] = s.clock
		}
	}
	if last {
		// Commit point: validation passed, so the write set is recorded and
		// the transaction retired HERE, atomically with the validating
		// grant. Recording it in Commit instead is a commit-path race under
		// the concurrent runtime — Commit runs on the user goroutine (with
		// group commit, on a pipeline lane), and a transaction validating
		// in the window between this grant and that Commit would miss the
		// write set and certify a non-serializable interleaving.
		writes := map[core.Var]bool{}
		for v := range s.writeTimes[id.Tx] {
			writes[v] = true
		}
		s.clock++
		s.history = append(s.history, occCommit{at: s.clock, writes: writes})
		s.reset(id.Tx)
	}
	return Grant
}

// Commit implements Scheduler. The commit point is the validating grant of
// the transaction's last step (see Try), which already recorded the write
// set and retired the transaction — on the instance that saw that step,
// this reset is an idempotent no-op. Under the Sharded combinator other
// shard instances see only their own steps of the transaction and never a
// validating grant; for them Commit clears the per-transaction state (the
// cross-shard ordering rail, not shard-local validation, is what keeps
// multi-shard runs serializable).
func (s *OCC) Commit(tx int) { s.reset(tx) }

// Abort implements Scheduler.
func (s *OCC) Abort(tx int) { s.reset(tx) }
