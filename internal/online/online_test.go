package online

import (
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/herbrand"
	"optcc/internal/lockmgr"
	"optcc/internal/schedule"
)

func rwSystem() *core.System {
	rw := func(v core.Var) []core.Step {
		return []core.Step{{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}}
	}
	return (&core.System{
		Name: "rw-pair",
		Txs:  []core.Transaction{{Steps: rw("x")}, {Steps: rw("x")}},
	}).Normalize()
}

func crossSystem() *core.System {
	return (&core.System{
		Name: "cross",
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "y", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "y", Kind: core.Update}, {Var: "x", Kind: core.Update}}},
		},
	}).Normalize()
}

func allSchedulers() []Scheduler {
	return []Scheduler{
		NewSerial(),
		NewStrict2PL(lockmgr.Detect),
		NewStrict2PL(lockmgr.NoWait),
		NewStrict2PL(lockmgr.WaitDie),
		NewStrict2PL(lockmgr.WoundWait),
		NewConservative2PL(),
		NewSGT(),
		NewSGTAborting(),
		NewTO(),
		NewTOThomas(),
		NewOCC(),
	}
}

// Every scheduler must complete every history of small systems, and its
// final schedule must be legal.
func TestAllSchedulersCompleteAllHistories(t *testing.T) {
	for _, sys := range []*core.System{rwSystem(), crossSystem()} {
		hs := schedule.All(sys.Format(), 0)
		for _, sched := range allSchedulers() {
			for _, h := range hs {
				res, err := Replay(sys, sched, h, 0)
				if err != nil {
					t.Fatalf("%s on %v: %v", sched.Name(), h, err)
				}
				if !res.Completed {
					t.Fatalf("%s did not complete %v", sched.Name(), h)
				}
				final := res.FinalSchedule(sys)
				if !final.Legal(sys.Format()) {
					t.Fatalf("%s produced illegal final schedule %v from %v", sched.Name(), final, h)
				}
			}
		}
	}
}

// Every scheduler's final schedule must be conflict-serializable (all the
// implemented mechanisms guarantee CSR outputs).
func TestAllSchedulersProduceSerializableOutputs(t *testing.T) {
	for _, sys := range []*core.System{rwSystem(), crossSystem()} {
		hs := schedule.All(sys.Format(), 0)
		for _, sched := range allSchedulers() {
			for _, h := range hs {
				res, err := Replay(sys, sched, h, 0)
				if err != nil {
					t.Fatal(err)
				}
				final := res.FinalSchedule(sys)
				csr, _, err := conflict.Serializable(sys, final)
				if err != nil {
					t.Fatal(err)
				}
				if !csr {
					t.Errorf("%s: input %v gave non-CSR output %v", sched.Name(), h, final)
				}
			}
		}
	}
}

// The serial scheduler's fixpoint is exactly the serial schedules
// (Theorem 2's optimum realized online).
func TestSerialFixpointIsSerialSchedules(t *testing.T) {
	sys := crossSystem()
	hs := schedule.All(sys.Format(), 0)
	count, err := Fixpoint(sys, NewSerial(), hs, func(h core.Schedule, in bool) {
		if in != h.IsSerial() {
			t.Errorf("serial fixpoint wrong on %v: got %v", h, in)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("serial fixpoint size = %d, want 2", count)
	}
}

// SGT with delay-on-cycle has fixpoint exactly the CSR set.
func TestSGTFixpointIsCSR(t *testing.T) {
	for _, sys := range []*core.System{rwSystem(), crossSystem()} {
		hs := schedule.All(sys.Format(), 0)
		_, err := Fixpoint(sys, NewSGT(), hs, func(h core.Schedule, in bool) {
			csr, _, err := conflict.Serializable(sys, h)
			if err != nil {
				t.Fatal(err)
			}
			if in != csr {
				t.Errorf("%s: SGT fixpoint %v but CSR %v for %v", sys.Name, in, csr, h)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Fixpoint hierarchy: serial ⊆ strict-2PL ⊆ SGT = CSR ⊆ SR, with strict
// growth from serial to SGT. (On the cross system CSR collapses to the
// serial schedules, so we use a chain system with one shared variable.)
func TestOnlineFixpointHierarchy(t *testing.T) {
	sys := (&core.System{
		Name: "chain",
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Update}, {Var: "z", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "z", Kind: core.Update}}},
		},
	}).Normalize()
	hs := schedule.All(sys.Format(), 0)
	serialN, err := Fixpoint(sys, NewSerial(), hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	tplN, err := Fixpoint(sys, NewStrict2PL(lockmgr.Detect), hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sgtN, err := Fixpoint(sys, NewSGT(), hs, nil)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := herbrand.NewChecker(sys)
	if err != nil {
		t.Fatal(err)
	}
	srN := 0
	for _, h := range hs {
		if ok, _, _ := checker.Serializable(h); ok {
			srN++
		}
	}
	if !(serialN <= tplN && tplN <= sgtN && sgtN <= srN) {
		t.Errorf("hierarchy violated: serial=%d 2pl=%d sgt=%d sr=%d", serialN, tplN, sgtN, srN)
	}
	if serialN >= sgtN {
		t.Errorf("no growth from serial (%d) to SGT (%d)", serialN, sgtN)
	}
}

// Memberships are monotone: any history in the serial fixpoint is in every
// other scheduler's fixpoint.
func TestSerialHistoriesPassEverywhere(t *testing.T) {
	for _, sys := range []*core.System{rwSystem(), crossSystem()} {
		for _, sched := range allSchedulers() {
			for _, h := range schedule.Serials(sys.Format()) {
				res, err := Replay(sys, sched, h, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Undelayed {
					t.Errorf("%s delayed serial history %v (delays=%d aborts=%d)",
						sched.Name(), h, res.Delays, res.Aborts)
				}
			}
		}
	}
}

// Deadlock handling: the cross system's lock-coupling history forces a
// deadlock under strict 2PL with detection; the replay must break it and
// still complete with a serializable result.
func TestStrict2PLBreaksDeadlock(t *testing.T) {
	sys := crossSystem()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 1, Idx: 1}}
	res, err := Replay(sys, NewStrict2PL(lockmgr.Detect), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Error("deadlocked history completed without aborts")
	}
	if !res.Completed {
		t.Error("replay did not complete")
	}
}

func TestWoundWaitWoundsYounger(t *testing.T) {
	sys := crossSystem()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 1, Idx: 1}}
	res, err := Replay(sys, NewStrict2PL(lockmgr.WoundWait), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("wound-wait replay incomplete")
	}
	if res.Aborts == 0 {
		t.Error("wound-wait never wounded on the deadlock-prone history")
	}
}

func TestTOAbortsLateReader(t *testing.T) {
	// T1 (older) reads x after T2 (younger) wrote it — fine. The reverse
	// order forces an abort: T2 starts first (gets ts 1), T1 second (ts
	// 2); T1 writes x, then T2 reads x → T2's ts < writeTS → abort.
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "y", Kind: core.Read}, {Var: "x", Kind: core.Read}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Write}, {Var: "y", Kind: core.Write}}},
		},
	}).Normalize()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}, {Tx: 1, Idx: 1}}
	res, err := Replay(sys, NewTO(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("TO incomplete")
	}
	// T0 read x (ts 1) after T1 (ts 2) wrote it → abort T0... the exact
	// victim depends on ordering; we only require restarts happened and
	// the result is serializable.
	if res.Aborts == 0 {
		t.Error("TO did not abort on timestamp violation")
	}
}

func TestThomasWriteRuleAvoidsAborts(t *testing.T) {
	// Blind-write-only conflict: T1 writes x late with an old timestamp.
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "y", Kind: core.Write}, {Var: "x", Kind: core.Write}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Write}}},
		},
	}).Normalize()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	basic, err := Replay(sys, NewTO(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	thomas, err := Replay(sys, NewTOThomas(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if basic.Aborts == 0 {
		t.Error("basic TO should abort the stale blind write")
	}
	if thomas.Aborts != 0 {
		t.Error("Thomas write rule should skip the stale blind write without abort")
	}
}

func TestOCCAbortsOnValidationFailure(t *testing.T) {
	// T1 reads x twice; T2 writes x and commits in between: backward
	// validation at T1's commit fails.
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "x", Kind: core.Read}}},
			{Steps: []core.Step{{Var: "x", Kind: core.Write}}},
		},
	}).Normalize()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	res, err := Replay(sys, NewOCC(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Error("OCC validated a stale read")
	}
	if !res.Completed {
		t.Error("OCC incomplete after restart")
	}
}

func TestOCCPassesNonConflicting(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "x", Kind: core.Read}}},
			{Steps: []core.Step{{Var: "y", Kind: core.Write}}},
		},
	}).Normalize()
	h := core.Schedule{{Tx: 0, Idx: 0}, {Tx: 1, Idx: 0}, {Tx: 0, Idx: 1}}
	res, err := Replay(sys, NewOCC(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Undelayed {
		t.Error("OCC delayed a non-conflicting history")
	}
}

func TestSGTPruning(t *testing.T) {
	sys := rwSystem()
	s := NewSGT()
	// Serial run: after both commits everything should be pruned.
	h := core.SerialSchedule(sys.Format(), []int{0, 1})
	if _, err := Replay(sys, s, h, 0); err != nil {
		t.Fatal(err)
	}
	nodes, steps := s.GraphSize()
	if nodes != 0 || steps != 0 {
		t.Errorf("graph not pruned after commits: nodes=%d steps=%d", nodes, steps)
	}
}

func TestReplayRejectsIllegalHistory(t *testing.T) {
	sys := rwSystem()
	if _, err := Replay(sys, NewSerial(), core.Schedule{{Tx: 0, Idx: 1}}, 0); err == nil {
		t.Error("illegal history accepted")
	}
}

func TestDecisionString(t *testing.T) {
	if Grant.String() != "grant" || Delay.String() != "delay" || AbortTx.String() != "abort" {
		t.Error("decision strings")
	}
	if Decision(7).String() == "" {
		t.Error("unknown decision string empty")
	}
}

func TestConservative2PLNeverDeadlocks(t *testing.T) {
	sys := crossSystem()
	hs := schedule.All(sys.Format(), 0)
	for _, h := range hs {
		res, err := Replay(sys, NewConservative2PL(), h, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborts != 0 {
			t.Errorf("conservative 2PL aborted on %v", h)
		}
		if !res.Completed {
			t.Errorf("conservative 2PL incomplete on %v", h)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	want := map[string]bool{}
	for _, s := range allSchedulers() {
		if s.Name() == "" {
			t.Error("empty scheduler name")
		}
		if want[s.Name()] {
			t.Errorf("duplicate scheduler name %s", s.Name())
		}
		want[s.Name()] = true
	}
}
