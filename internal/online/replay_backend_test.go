package online

import (
	"math/rand"
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/schedule"
	"optcc/internal/storage"
	"optcc/internal/workload"
)

// TestReplayOnBackendMatchesExec: replaying random histories through strict
// schedulers against the KV backend must leave it in exactly the state of
// core.Exec over the final (committed) schedule — the single-threaded form
// of the runtime's replay invariant, including restarts and rollbacks.
func TestReplayOnBackendMatchesExec(t *testing.T) {
	systems := []*core.System{workload.Banking(), workload.Cross(), workload.Figure1()}
	// No-wait is absent: the single-threaded harness can livelock it on
	// adversarial histories regardless of backend (pre-existing behavior);
	// its rollback path is covered by the concurrent tests in internal/sim.
	scheds := []func() Scheduler{
		func() Scheduler { return NewSerial() },
		func() Scheduler { return NewStrict2PL(lockmgr.Detect) },
		func() Scheduler { return NewStrict2PL(lockmgr.WoundWait) },
	}
	rng := rand.New(rand.NewSource(1979))
	for _, sys := range systems {
		for _, mk := range scheds {
			for i := 0; i < 10; i++ {
				h := schedule.Random(sys.Format(), rng)
				sched := mk()
				be := storage.NewKV(storage.Config{Shards: 4, ValueSize: 64})
				res, err := ReplayOn(sys, sched, h, 0, be)
				if err != nil {
					t.Fatalf("%s on %s: %v", sched.Name(), sys.Name, err)
				}
				want, err := core.Exec(sys, res.FinalSchedule(sys), sys.InitialStates()[0])
				if err != nil {
					t.Fatal(err)
				}
				if got := be.State(); !got.Equal(want) {
					t.Fatalf("%s on %s, history %v: backend %v, replay %v (aborts=%d)",
						sched.Name(), sys.Name, h, got, want, res.Aborts)
				}
			}
		}
	}
}

// TestReplayOnNilBackendIsReplay: the nil-backend path is byte-for-byte the
// plain harness.
func TestReplayOnNilBackendIsReplay(t *testing.T) {
	sys := workload.Banking()
	h := core.AllSteps(sys.Format())
	a, err := Replay(sys, NewStrict2PL(lockmgr.Detect), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayOn(sys, NewStrict2PL(lockmgr.Detect), h, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delays != b.Delays || a.Aborts != b.Aborts || a.Undelayed != b.Undelayed || len(a.Output) != len(b.Output) {
		t.Fatalf("results differ: %+v vs %+v", a, b)
	}
}

// TestReplayOnRejectsUninterpreted: backend replay needs interpretations.
func TestReplayOnRejectsUninterpreted(t *testing.T) {
	sys := (&core.System{
		Txs: []core.Transaction{{Steps: []core.Step{{Var: "x", Kind: core.Update}}}},
	}).Normalize()
	be := storage.NewKV(storage.Config{Shards: 1})
	if _, err := ReplayOn(sys, NewSerial(), core.Schedule{{Tx: 0, Idx: 0}}, 0, be); err == nil {
		t.Fatal("uninterpreted system accepted")
	}
}
