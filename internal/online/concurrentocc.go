package online

import (
	"fmt"
	"sync/atomic"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/tstable"
)

// coccPhase values packed into ConcurrentOCC.phase below the epoch bits.
const (
	occIdle       = 0 // incarnation has not begun (or was reset)
	occActive     = 1 // executing steps
	occValidating = 2 // inside the validating grant of its last step
	occCommitted  = 3 // validated and committed
)

// coccAccess is one variable of a transaction's footprint: the stamp of
// the incarnation's LAST read and FIRST write of it (0 = never; real
// stamps start at 1). Last read, because writes execute in place: a
// repeat read observes the latest state, so the dirty-read check must
// catch a writer that slid between two reads of the same variable.
// First write, because the check on the other side asks whether any
// write precedes the reader's last read.
type coccAccess struct {
	v      core.Var
	rstamp int64
	wstamp int64
}

// coccTx is one transaction's private footprint. Per-transaction scheduler
// calls never overlap (ConcurrentScheduler contract), so the access list
// is owner-only with no synchronization. A transaction touches at most
// len(Steps) distinct variables, so Begin carves each list out of one
// shared slab at exactly that capacity — footprint recording never
// allocates, and lookups are linear scans of a handful of entries.
type coccTx struct {
	start int64 // clock at first Try; -1 = unassigned
	acc   []coccAccess
}

// access returns the footprint entry of v, appending a fresh one if the
// incarnation has not touched v yet.
//
//optcc:hotpath
func (st *coccTx) access(v core.Var) *coccAccess {
	for i := range st.acc {
		if st.acc[i].v == v {
			return &st.acc[i]
		}
	}
	//cclint:ignore hotpath append within the slab capacity carved at Begin; never grows
	st.acc = append(st.acc, coccAccess{v: v})
	return &st.acc[len(st.acc)-1]
}

// lookup returns the footprint entry of v, or nil.
//
//optcc:hotpath
func (st *coccTx) lookup(v core.Var) *coccAccess {
	for i := range st.acc {
		if st.acc[i].v == v {
			return &st.acc[i]
		}
	}
	return nil
}

// ConcurrentOCC is natively concurrent optimistic concurrency control:
// Kung–Robinson-style backward validation rebuilt for the sharded runtime
// with no global critical section. Where Sharded(OCC) serializes each
// shard's validation behind a shard mutex plus the cross-shard rail,
// ConcurrentOCC validates lock-free against three epoch-published
// structures:
//
//   - commits, an internal/tstable timestamp table whose per-variable
//     write stamp is raised (CAS max-loop) to the committing transaction's
//     commit epoch for everything it wrote. The sequential OCC's history
//     scan "did any transaction that committed during my lifetime write
//     v?" collapses to one monotone comparison: lastCommitWrite(v) >
//     start.
//   - per-variable writer-mark lists (marks.go), published copy-on-write
//     by the variable's own dispatch loop and read lock-free by
//     validators: the dirty-read check (did I read a variable an active
//     transaction had written?) scans the live marks of my read set.
//   - per-transaction phase/epoch atomics. Commit publishing is ordered —
//     write stamps first, committed phase last — so a validator that
//     observes the committed phase finds the stamps already in place, and
//     one that observes a stale active phase conservatively aborts via the
//     dirty check.
//
// Concurrent validations are serialized by a validation epoch drawn from
// the shared atomic clock: a transaction publishes its epoch and a
// validating phase before scanning, and treats any peer already
// validating with a smaller epoch as committed-pending — if that peer's
// writes intersect my footprint I abort, which breaks the classic
// "both validate before either publishes" race. Epochs are unique and
// monotone with validation entry (atomic Add), so of two racing
// validators with intersecting write sets the later one always observes
// the earlier one's marks and yields; committed transactions are ordered
// by their validation epochs and every cross-edge among them points
// forward in that order, keeping the committed schedule
// conflict-serializable without any lock.
//
// The commit point is the validating grant of the last step, exactly as
// in the sequential OCC (see tsocc.go on why deferring it to Commit is a
// race). Under single-goroutine driving its decisions match OCC verbatim
// — see TestConcurrentOCCDecisionEquivalence; the validating-peer branch
// never fires there (validation completes within one Try call), and the
// clock mirrors the sequential increments tick for tick.
type ConcurrentOCC struct {
	base
	shards int

	sys     *core.System
	clock   atomic.Int64
	commits *tstable.Table // per-variable last committed write epoch
	wmarks  *occMarks
	txs     []coccTx
	phase   []atomic.Int64 // epoch<<2 | coccPhase
	vepoch  []atomic.Int64 // validation epoch, published before occValidating
}

// NewConcurrentOCC returns a natively concurrent optimistic scheduler
// over the given shard count (minimum 1).
func NewConcurrentOCC(shards int) *ConcurrentOCC {
	if shards < 1 {
		shards = 1
	}
	return &ConcurrentOCC{shards: shards}
}

// Name implements Scheduler.
func (s *ConcurrentOCC) Name() string {
	return fmt.Sprintf("cocc(%d)/backward", s.shards)
}

// Begin implements Scheduler. Re-beginning over the same system reuses
// the tables via reset instead of rebuilding their maps.
func (s *ConcurrentOCC) Begin(sys *core.System) {
	s.clock.Store(0)
	if sys == s.sys && s.commits != nil && len(s.txs) == sys.NumTxs() {
		s.commits.Reset()
		s.wmarks.reset()
		for i := range s.phase {
			s.phase[i].Store(0)
			s.vepoch[i].Store(0)
		}
		for i := range s.txs {
			s.resetTx(i)
		}
		return
	}
	s.sys = sys
	n := sys.NumTxs()
	s.commits = tstable.New(sys.Vars(), s.shards)
	s.wmarks = newOCCMarks(sys.Vars(), s.shards)
	s.phase = make([]atomic.Int64, n)
	s.vepoch = make([]atomic.Int64, n)
	s.txs = make([]coccTx, n)
	total := 0
	for i := range sys.Txs {
		total += len(sys.Txs[i].Steps)
	}
	slab := make([]coccAccess, total)
	off := 0
	for i := range s.txs {
		k := len(sys.Txs[i].Steps)
		s.txs[i] = coccTx{start: -1, acc: slab[off : off : off+k]}
		off += k
	}
}

// resetTx clears a transaction's private footprint for its next
// incarnation. The phase/epoch atomics are managed by the caller.
//
//optcc:hotpath
func (s *ConcurrentOCC) resetTx(tx int) {
	st := &s.txs[tx]
	st.start = -1
	st.acc = st.acc[:0]
}

// mark records the step's first access of its variable in the private
// footprint and, for writes, publishes the writer mark for cross-shard
// validators. Runs on the variable's dispatch goroutine.
//
//optcc:hotpath
func (s *ConcurrentOCC) mark(st *coccTx, step core.Step, stamp int64, tx int, epoch int64) {
	a := st.access(step.Var)
	if conflict.Reads(step.Kind) {
		a.rstamp = stamp // last read (see coccAccess)
	}
	if conflict.Writes(step.Kind) && a.wstamp == 0 {
		a.wstamp = stamp
		s.publishWriter(s.wmarks.entry(step.Var), tx, epoch, stamp)
	}
}

// publishWriter appends the incarnation's writer mark to the variable's
// copy-on-write list, compacting dead and committed marks (committed
// writers are covered by the commit stamps, published before their
// committed phase). Only the variable's dispatch loop publishes, so a
// plain pointer store suffices; validators load snapshots lock-free.
//
//optcc:hotpath
func (s *ConcurrentOCC) publishWriter(e *occEntry, tx int, epoch int64, stamp int64) {
	old := e.writers.Load()
	n := 1
	if old != nil {
		n += len(*old)
	}
	//cclint:ignore hotpath copy-on-write publish: one small slice per incarnation's first write of a variable
	buf := make([]occWriterMark, 0, n)
	if old != nil {
		for _, m := range *old {
			if m.tx == tx {
				continue // superseded by this incarnation
			}
			p := s.phase[m.tx].Load()
			if p>>2 != int64(m.epoch) || p&3 == occCommitted {
				continue
			}
			//cclint:ignore hotpath append within the capacity reserved above; never grows
			buf = append(buf, m)
		}
	}
	//cclint:ignore hotpath append within the capacity reserved above; never grows
	buf = append(buf, occWriterMark{tx: tx, epoch: int(epoch), stamp: stamp})
	fresh := buf // published below; the pointee is immutable from here on
	e.writers.Store(&fresh)
}

// Try implements Scheduler. Non-final steps record marks lock-free; the
// final step draws a validation epoch, validates backward against
// concurrently committed write sets and still-active writers, and on
// success commits — stamps published before the committed phase — all
// without any global critical section.
//
//optcc:hotpath
func (s *ConcurrentOCC) Try(id core.StepID) Decision {
	tx := id.Tx
	st := &s.txs[tx]
	epoch := s.phase[tx].Load() >> 2
	if st.start < 0 {
		st.start = s.clock.Load()
		s.phase[tx].Store(epoch<<2 | occActive)
	}
	step := s.sys.Step(id)
	if id.Idx != len(s.sys.Txs[tx].Steps)-1 {
		s.mark(st, step, s.clock.Add(1), tx, epoch)
		return Grant
	}
	// Validation epoch: unique and monotone with entry order, published
	// before the validating phase so later validators always see us.
	vE := s.clock.Add(1)
	s.vepoch[tx].Store(vE)
	s.phase[tx].Store(epoch<<2 | occValidating)
	if !s.validate(tx, st, step, vE) {
		s.phase[tx].Store(epoch<<2 | occActive)
		return AbortTx
	}
	// Commit point, atomic with the validating grant (see tsocc.go): the
	// final step's marks first (a concurrent validator must see this write
	// until the commit stamps cover it), then the commit stamps, then the
	// committed phase.
	s.mark(st, step, vE, tx, epoch)
	commitTS := s.clock.Add(1)
	for i := range st.acc {
		if st.acc[i].wstamp > 0 {
			s.commits.Entry(st.acc[i].v).MaxWrite(commitTS)
		}
	}
	s.phase[tx].Store(epoch<<2 | occCommitted)
	s.resetTx(tx)
	return Grant
}

// validate runs backward validation for tx's current incarnation with the
// final step included prospectively at stamp vE, mirroring the sequential
// OCC's three checks (see tsocc.go): (a) backward r/w and (c) backward
// w/w via the per-variable commit stamps, (b) dirty reads via the live
// writer marks — plus the concurrent-only tie-break against peers already
// validating with a smaller epoch.
//
//optcc:hotpath
func (s *ConcurrentOCC) validate(tx int, st *coccTx, step core.Step, vE int64) bool {
	for i := range st.acc {
		a := &st.acc[i]
		// An entry both read and written is covered by the read-side check:
		// it subsumes the commit probe and the validating tie-break.
		if !s.checkVar(tx, a.v, a.rstamp, a.rstamp > 0, vE, st.start) {
			return false
		}
	}
	// Prospective final access at stamp vE. A final read always re-checks
	// with rt = vE — even of a variable read before — because it is the
	// incarnation's last read of it; a final write of an untouched
	// variable gets the commit probe and the validating tie-break.
	if conflict.Reads(step.Kind) {
		return s.checkVar(tx, step.Var, vE, true, vE, st.start)
	}
	if st.lookup(step.Var) == nil {
		return s.checkVar(tx, step.Var, vE, false, vE, st.start)
	}
	return true
}

// checkVar validates one variable of the footprint: the commit-stamp
// probe, then the writer-mark scan. rt is the first-read stamp (only
// meaningful when isRead).
//
//optcc:hotpath
func (s *ConcurrentOCC) checkVar(tx int, v core.Var, rt int64, isRead bool, vE, start int64) bool {
	// (a)/(c): a transaction that committed during my lifetime wrote v.
	if s.commits.Entry(v).WriteTS() > start {
		return false
	}
	list := s.wmarks.entry(v).writers.Load()
	if list == nil {
		return true
	}
	for _, m := range *list {
		if m.tx == tx {
			continue
		}
		p := s.phase[m.tx].Load()
		if p>>2 != int64(m.epoch) {
			continue // a dead incarnation's mark
		}
		switch p & 3 {
		case occCommitted:
			// Committed after the probe above; its stamps were published
			// before the committed phase, so re-probe.
			if s.commits.Entry(v).WriteTS() > start {
				return false
			}
		case occValidating:
			if s.vepoch[m.tx].Load() < vE {
				// Entered validation before me and wrote something in my
				// footprint: treat as committed-pending.
				return false
			}
			// Entered validation after me: still active for my purposes.
			if isRead && m.stamp < rt {
				return false
			}
		case occActive:
			// (b): dirty read from a still-active writer.
			if isRead && m.stamp < rt {
				return false
			}
		}
	}
	return true
}

// TryBatch implements BatchTrier. The hot path is already lock-free, so
// there is no synchronization to amortize: the native batch path simply
// decides in order without the adapter's indirection.
func (s *ConcurrentOCC) TryBatch(ids []core.StepID) []Decision {
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = s.Try(id)
	}
	return out
}

// Commit implements Scheduler. The commit point is the validating grant
// of the last step (see Try), which already published the commit stamps
// and reset the footprint; nothing is left to do here.
func (s *ConcurrentOCC) Commit(tx int) {}

// Abort implements Scheduler: a fresh epoch retires every mark of the old
// incarnation at once.
func (s *ConcurrentOCC) Abort(tx int) {
	epoch := s.phase[tx].Load() >> 2
	s.phase[tx].Store((epoch + 1) << 2) // fresh epoch, idle
	s.resetTx(tx)
}

// NumShards implements ConcurrentScheduler.
func (s *ConcurrentOCC) NumShards() int { return s.shards }

// ShardOf implements ConcurrentScheduler.
//
//optcc:hotpath
func (s *ConcurrentOCC) ShardOf(v core.Var) int { return shardOfVar(v, s.shards) }
