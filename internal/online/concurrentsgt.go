package online

import (
	"fmt"

	"optcc/internal/conflict"
	"optcc/internal/core"
)

// containsNode is slices.Contains for railNode lists without the generic
// instantiation (the hotpath analyzer models type-parameter arguments as
// interface conversions).
//
//optcc:hotpath
func containsNode(list []railNode, n railNode) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

// ConcurrentSGT is natively concurrent serialization graph testing: the
// SGT scheduler rebuilt for the sharded runtime on a finely striped graph.
// Where Sharded(SGT) runs one single-threaded SGT per shard behind a shard
// mutex plus the cross-shard ordering rail, ConcurrentSGT keeps one graph
// for the whole run, partitioned by connectivity instead of by variable:
//
//   - Conflicts are discovered through per-variable marks (internal/online
//     marks.go): each variable's entry lists the live incarnations that
//     read and wrote it. The ConcurrentScheduler contract routes every
//     step of a variable through its shard's dispatch loop, so the lists
//     need no synchronization — the owning loop appends on grant and
//     compacts dead incarnations on its next visit. The lists hold every
//     live reader/writer, not just the last ones: last-marks would lose
//     transitive edges when an intermediate incarnation aborts and admit
//     non-serializable schedules.
//   - Edges and cycle checks live in sgtGraph, the striped union-find
//     component graph (sgtgraph.go). Grants touching disjoint components
//     proceed in parallel on different stripes; a zero-conflict grant
//     (empty source set) takes no lock at all; only a same-component
//     source forces the exact DFS, inside that component's single stripe.
//   - Commit and abort prune component-locally, retiring exactly the
//     nodes the sequential SGT's global prune would (eligibility can only
//     change through an event in the node's own component, and each such
//     event prunes that component to fixpoint).
//
// Cycle handling matches the sequential pair: delay-on-cycle preserves the
// CSR fixpoint (NewConcurrentSGT), abort-on-cycle guarantees progress
// (NewConcurrentSGTAborting). Under single-goroutine driving its decisions
// match SGT verbatim in both modes — see
// TestConcurrentSGTDecisionEquivalence.
type ConcurrentSGT struct {
	base
	// AbortOnCycle aborts the requester when a grant would close a cycle
	// instead of delaying it, matching SGTAborting.
	AbortOnCycle bool
	shards       int

	sys   *core.System
	marks *sgtMarks
	graph *sgtGraph
}

// NewConcurrentSGT returns a natively concurrent SGT scheduler that delays
// on cycles, over the given shard count (minimum 1).
func NewConcurrentSGT(shards int) *ConcurrentSGT {
	if shards < 1 {
		shards = 1
	}
	return &ConcurrentSGT{shards: shards}
}

// NewConcurrentSGTAborting returns a natively concurrent SGT scheduler
// that aborts the requester on cycles.
func NewConcurrentSGTAborting(shards int) *ConcurrentSGT {
	s := NewConcurrentSGT(shards)
	s.AbortOnCycle = true
	return s
}

// Name implements Scheduler.
func (s *ConcurrentSGT) Name() string {
	if s.AbortOnCycle {
		return fmt.Sprintf("csgt(%d)/abort", s.shards)
	}
	return fmt.Sprintf("csgt(%d)/delay", s.shards)
}

// Begin implements Scheduler. Re-beginning over the same system (the
// replay harness enumerating histories does this per history) reuses the
// marks table and graph via reset instead of rebuilding their maps.
func (s *ConcurrentSGT) Begin(sys *core.System) {
	if sys == s.sys && s.marks != nil && len(s.graph.state) == sys.NumTxs() {
		s.marks.reset()
		s.graph.reset()
		return
	}
	s.sys = sys
	s.marks = newSGTMarks(sys.Vars(), s.shards)
	s.graph = newSGTGraph(s.shards, sys.NumTxs())
}

// collect compacts dead incarnations out of a mark list in place and
// appends the live ones (except me) to src, deduplicating — an
// incarnation that both read and wrote the variable is one source. It
// runs on the variable's dispatch goroutine, the only toucher of the
// list.
//
//optcc:hotpath
func (s *ConcurrentSGT) collect(list []railNode, me railNode, src []railNode) ([]railNode, []railNode) {
	kept := list[:0]
	for _, n := range list {
		if !s.graph.alive(n) {
			continue
		}
		//cclint:ignore hotpath in-place compaction: kept aliases list's backing array, never grows
		kept = append(kept, n)
		if n == me || containsNode(src, n) {
			continue
		}
		//cclint:ignore hotpath amortized append into the entry's reusable source scratch
		src = append(src, n)
	}
	return kept, src
}

// record adds me to a mark list if not already present. Runs on the
// variable's dispatch goroutine.
//
//optcc:hotpath
func (s *ConcurrentSGT) record(list []railNode, me railNode) []railNode {
	if containsNode(list, me) {
		return list
	}
	//cclint:ignore hotpath amortized append into the entry's reusable mark list
	return append(list, me)
}

// Try implements Scheduler. The zero-conflict path — no live conflicting
// marks on the step's variable — is lock-free: marks lookup, liveness
// loads, mark record. Conflicting grants go through the striped graph's
// insert, locking only the stripes owning the touched components.
//
//optcc:hotpath
func (s *ConcurrentSGT) Try(id core.StepID) Decision {
	me := s.graph.node(id.Tx)
	step := s.sys.Step(id)
	e := s.marks.entry(step.Var)
	src := e.srcBuf[:0]
	// A write conflicts with every live reader and writer; a pure read
	// only with writers (conflict.Conflicts on a shared variable).
	e.writers, src = s.collect(e.writers, me, src)
	if conflict.Writes(step.Kind) {
		e.readers, src = s.collect(e.readers, me, src)
	}
	e.srcBuf = src
	//cclint:ignore hotpath contended path: the striped-graph insert takes component stripe locks
	if !s.graph.insert(me, src) {
		if s.AbortOnCycle {
			return AbortTx
		}
		return Delay
	}
	if conflict.Writes(step.Kind) {
		e.writers = s.record(e.writers, me)
	} else {
		e.readers = s.record(e.readers, me)
	}
	return Grant
}

// TryBatch implements BatchTrier. Decisions are per-step graph operations
// already; the native batch path simply decides in order without the
// adapter's indirection.
func (s *ConcurrentSGT) TryBatch(ids []core.StepID) []Decision {
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = s.Try(id)
	}
	return out
}

// Commit implements Scheduler.
func (s *ConcurrentSGT) Commit(tx int) { s.graph.commitTx(tx) }

// Abort implements Scheduler: the incarnation's node leaves the graph and
// its marks die everywhere, atomically under its component's stripe.
func (s *ConcurrentSGT) Abort(tx int) { s.graph.abortTx(tx) }

// Victim implements Scheduler: abort the stuck transaction with the most
// incoming conflict edges (most constrained), matching the sequential
// SGT's choice — including its first-max tie-break over the stuck order.
func (s *ConcurrentSGT) Victim(stuck []int) (int, bool) {
	if len(stuck) == 0 {
		return 0, false
	}
	best, bestIn := stuck[0], -1
	for _, tx := range stuck {
		if in := s.graph.indegree(tx); in > bestIn {
			best, bestIn = tx, in
		}
	}
	return best, true
}

// NumShards implements ConcurrentScheduler.
func (s *ConcurrentSGT) NumShards() int { return s.shards }

// ShardOf implements ConcurrentScheduler.
//
//optcc:hotpath
func (s *ConcurrentSGT) ShardOf(v core.Var) int { return shardOfVar(v, s.shards) }
