package online

import (
	"fmt"
	"sync/atomic"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/tstable"
)

// ConcurrentTO is natively concurrent timestamp ordering: the TO scheduler
// rebuilt for the sharded runtime with a lock-free hot path. Where
// Sharded(TO) runs one single-threaded TO per shard behind a shard mutex
// plus the cross-shard ordering rail, ConcurrentTO needs neither — its
// whole state is a sharded atomic timestamp table (internal/tstable,
// partitioned on lockmgr.ShardOfVar) and an atomic transaction-timestamp
// clock, so Try and TryBatch take no mutex on any path.
//
// Why no rail: TO decides every conflict by the one total timestamp order.
// A granted conflicting pair always executes in timestamp order per
// variable, so every conflict-graph edge points from older to newer
// timestamp and no cycle can form, whichever shards the variables live on.
// Timestamp ordering composes across partitions the same way 2PL does —
// the property ConcurrentStrict2PL exploits for locks, applied to
// timestamps.
//
// Why lock-free is enough: the ConcurrentScheduler contract routes all
// steps of one variable through the dispatch loop of its shard, so
// check-then-raise sequences on a single variable's entry never interleave;
// cross-variable and cross-shard traffic touches disjoint entries whose
// CAS max-updates keep per-variable timestamps monotone (the tstable
// invariant) under any interleaving. Transaction timestamps are assigned
// once per incarnation from the atomic clock; Abort restarts the
// transaction with a fresh, strictly later timestamp, which guarantees
// progress exactly as in single-threaded TO.
//
// Under single-goroutine driving its decisions match TO verbatim (both
// basic and Thomas modes) — see TestConcurrentTODecisionEquivalence.
type ConcurrentTO struct {
	base
	// Thomas enables the Thomas write rule: a blind write older than the
	// variable's latest write is skipped rather than aborted.
	Thomas bool
	shards int

	sys   *core.System
	table *tstable.Table
	clock atomic.Int64
	ts    []atomic.Int64 // per-transaction timestamp; 0 = unassigned
}

// NewConcurrentTO returns a natively concurrent basic-TO scheduler over
// the given shard count (minimum 1).
func NewConcurrentTO(shards int) *ConcurrentTO {
	if shards < 1 {
		shards = 1
	}
	return &ConcurrentTO{shards: shards}
}

// NewConcurrentTOThomas returns concurrent timestamp ordering with the
// Thomas write rule.
func NewConcurrentTOThomas(shards int) *ConcurrentTO {
	s := NewConcurrentTO(shards)
	s.Thomas = true
	return s
}

// Name implements Scheduler.
func (s *ConcurrentTO) Name() string {
	if s.Thomas {
		return fmt.Sprintf("cto(%d)/thomas", s.shards)
	}
	return fmt.Sprintf("cto(%d)/basic", s.shards)
}

// Begin implements Scheduler. Re-beginning over the same system (the
// replay harness enumerating histories does this per history) reuses the
// timestamp table via Reset instead of rebuilding its maps.
func (s *ConcurrentTO) Begin(sys *core.System) {
	s.clock.Store(0)
	if sys == s.sys && s.table != nil {
		s.table.Reset()
		for i := range s.ts {
			s.ts[i].Store(0)
		}
		return
	}
	s.sys = sys
	s.ts = make([]atomic.Int64, sys.NumTxs())
	s.table = tstable.New(sys.Vars(), s.shards)
}

// Try implements Scheduler. Lock-free: one immutable map lookup plus
// atomic loads and CAS max-updates.
//
//optcc:hotpath
func (s *ConcurrentTO) Try(id core.StepID) Decision {
	ts := s.ts[id.Tx].Load()
	if ts == 0 {
		ts = s.clock.Add(1)
		s.ts[id.Tx].Store(ts)
	}
	step := s.sys.Step(id)
	e := s.table.Entry(step.Var)
	if conflict.Reads(step.Kind) && ts < e.WriteTS() {
		return AbortTx
	}
	if conflict.Writes(step.Kind) {
		if ts < e.ReadTS() {
			return AbortTx
		}
		if ts < e.WriteTS() {
			if s.Thomas && step.Kind == core.Write {
				// Thomas write rule: obsolete blind write is a no-op.
				return Grant
			}
			return AbortTx
		}
	}
	if conflict.Reads(step.Kind) {
		e.MaxRead(ts)
	}
	if conflict.Writes(step.Kind) {
		e.MaxWrite(ts)
	}
	return Grant
}

// TryBatch implements BatchTrier. The hot path is already lock-free, so
// there is no synchronization to amortize: the native batch path simply
// decides in order without the adapter's indirection.
func (s *ConcurrentTO) TryBatch(ids []core.StepID) []Decision {
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = s.Try(id)
	}
	return out
}

// Commit implements Scheduler.
func (s *ConcurrentTO) Commit(tx int) {}

// Abort implements Scheduler: the transaction restarts with a fresh
// (strictly later) timestamp, which guarantees progress.
func (s *ConcurrentTO) Abort(tx int) { s.ts[tx].Store(0) }

// NumShards implements ConcurrentScheduler.
func (s *ConcurrentTO) NumShards() int { return s.shards }

// ShardOf implements ConcurrentScheduler.
//
//optcc:hotpath
func (s *ConcurrentTO) ShardOf(v core.Var) int { return shardOfVar(v, s.shards) }
