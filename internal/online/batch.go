package online

import "optcc/internal/core"

// BatchTrier is the batch-aware extension of the scheduler contract: a
// scheduler that can decide several step requests in one critical section.
// TryBatch(ids) must be semantically equivalent to calling Try on each id in
// order — decisions for earlier ids take effect before later ids are
// decided — but an implementation may amortize its synchronization (one
// shard-mutex acquisition for the whole batch instead of one per request).
//
// The ids must belong to distinct transactions (each is necessarily the
// next unexecuted step of its transaction, exactly as in Try). For a
// ConcurrentScheduler, concurrent TryBatch calls are allowed under the same
// contract as Try: batches whose variables live on different shards may be
// offered concurrently. The dispatch loops in internal/sim guarantee both
// properties by construction — a loop coalesces at most one outstanding
// request per user, all on its own shard.
type BatchTrier interface {
	TryBatch(ids []core.StepID) []Decision
}

// TryBatch decides a batch of step requests against s, in order: natively
// when s implements BatchTrier, otherwise through the default adapter that
// loops Try. The returned slice is aligned with ids.
func TryBatch(s Scheduler, ids []core.StepID) []Decision {
	if bt, ok := s.(BatchTrier); ok {
		return bt.TryBatch(ids)
	}
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = s.Try(id)
	}
	return out
}
