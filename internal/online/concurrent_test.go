package online

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/schedule"
	"optcc/internal/workload"
)

// wrapperCases pairs each single-threaded scheduler with a factory the
// Sharded combinator can instantiate per shard.
func wrapperCases() []struct {
	name    string
	factory func() Scheduler
} {
	return []struct {
		name    string
		factory func() Scheduler
	}{
		{"serial", func() Scheduler { return NewSerial() }},
		{"strict-2pl/detect", func() Scheduler { return NewStrict2PL(lockmgr.Detect) }},
		{"strict-2pl/nowait", func() Scheduler { return NewStrict2PL(lockmgr.NoWait) }},
		{"strict-2pl/waitdie", func() Scheduler { return NewStrict2PL(lockmgr.WaitDie) }},
		{"strict-2pl/woundwait", func() Scheduler { return NewStrict2PL(lockmgr.WoundWait) }},
		{"conservative-2pl", func() Scheduler { return NewConservative2PL() }},
		{"sgt/delay", func() Scheduler { return NewSGT() }},
		{"sgt/abort", func() Scheduler { return NewSGTAborting() }},
		{"to/basic", func() Scheduler { return NewTO() }},
		{"to/thomas", func() Scheduler { return NewTOThomas() }},
		{"occ", func() Scheduler { return NewOCC() }},
	}
}

// singleShardSystems are systems whose variables all hash to one shard for
// any shard count (single-variable systems), where the ordering rail is
// inert and the sharded wrapper must realize exactly the original fixpoint.
func singleShardSystems() []*core.System {
	hotspot := (&core.System{
		Name: "hotspot3",
		Txs: []core.Transaction{
			{Steps: []core.Step{{Var: "h", Kind: core.Update}, {Var: "h", Kind: core.Update}}},
			{Steps: []core.Step{{Var: "h", Kind: core.Read}, {Var: "h", Kind: core.Write}}},
			{Steps: []core.Step{{Var: "h", Kind: core.Update}}},
		},
	}).Normalize()
	return []*core.System{workload.Figure1(), workload.LostUpdate(), hotspot}
}

// TestShardedReplayEquivalence is the acceptance property of the Sharded
// combinator: on single-shard systems each wrapper accepts exactly the
// histories its single-threaded original accepts (fixpoint equality),
// history by history over the full enumeration.
func TestShardedReplayEquivalence(t *testing.T) {
	for _, sys := range singleShardSystems() {
		for _, tc := range wrapperCases() {
			base := tc.factory()
			sharded := NewSharded(4, tc.factory)
			var checked, members int
			schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
				bres, berr := Replay(sys, base, h, 0)
				sres, serr := Replay(sys, sharded, h, 0)
				if (berr == nil) != (serr == nil) {
					t.Fatalf("%s on %s: completion mismatch on %v: base err %v, sharded err %v",
						tc.name, sys.Name, h, berr, serr)
				}
				if berr != nil {
					return true
				}
				if bres.Undelayed != sres.Undelayed {
					t.Fatalf("%s on %s: fixpoint mismatch on %v: base %v, sharded %v",
						tc.name, sys.Name, h, bres.Undelayed, sres.Undelayed)
				}
				checked++
				if bres.Undelayed {
					members++
				}
				return true
			})
			if checked == 0 {
				t.Fatalf("%s on %s: no histories compared", tc.name, sys.Name)
			}
		}
	}
}

// TestMutexedReplayEquivalence: the mutexed baseline is transparent on any
// system (one shard, no rail).
func TestMutexedReplayEquivalence(t *testing.T) {
	for _, sys := range []*core.System{workload.Cross(), workload.Chain(), workload.Banking()} {
		for _, tc := range wrapperCases() {
			base := tc.factory()
			wrapped := NewMutexed(tc.factory())
			schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
				bres, berr := Replay(sys, base, h, 0)
				wres, werr := Replay(sys, wrapped, h, 0)
				if (berr == nil) != (werr == nil) {
					t.Fatalf("%s on %s: completion mismatch on %v", tc.name, sys.Name, h)
				}
				if berr == nil && bres.Undelayed != wres.Undelayed {
					t.Fatalf("%s on %s: fixpoint mismatch on %v", tc.name, sys.Name, h)
				}
				return true
			})
		}
	}
}

// TestConcurrent2PLReplayEquivalence: the natively sharded strict 2PL
// realizes the same fixpoint as the monolithic Strict2PL — for any shard
// count, on any system, because partitioned 2PL decides every conflict at
// the single shard owning its variable.
func TestConcurrent2PLReplayEquivalence(t *testing.T) {
	for _, sys := range []*core.System{workload.Cross(), workload.Chain(), workload.Figure1(), workload.Banking()} {
		for _, policy := range []lockmgr.Policy{lockmgr.Detect, lockmgr.NoWait, lockmgr.WaitDie, lockmgr.WoundWait} {
			for _, shards := range []int{1, 4} {
				base := NewStrict2PL(policy)
				conc := NewConcurrentStrict2PL(policy, shards)
				schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
					bres, berr := Replay(sys, base, h, 0)
					cres, cerr := Replay(sys, conc, h, 0)
					if (berr == nil) != (cerr == nil) {
						t.Fatalf("%v/%d shards on %s: completion mismatch on %v: %v vs %v",
							policy, shards, sys.Name, h, berr, cerr)
					}
					if berr == nil && bres.Undelayed != cres.Undelayed {
						t.Fatalf("%v/%d shards on %s: fixpoint mismatch on %v: base %v, sharded %v",
							policy, shards, sys.Name, h, bres.Undelayed, cres.Undelayed)
					}
					return true
				})
			}
		}
	}
}

// TestShardedMultiShardSerializable: on systems spanning several shards the
// ordering rail must keep every completed replay conflict-serializable,
// whatever the wrapped scheduler.
func TestShardedMultiShardSerializable(t *testing.T) {
	systems := []*core.System{workload.Cross(), workload.Chain(), workload.Banking(), workload.PathWorkload(3, 4, 11)}
	for _, sys := range systems {
		for _, tc := range wrapperCases() {
			sched := NewSharded(4, tc.factory)
			rng := rand.New(rand.NewSource(7))
			completed := 0
			for trial := 0; trial < 20; trial++ {
				h := schedule.Random(sys.Format(), rng)
				res, err := Replay(sys, sched, h, 50)
				if err != nil {
					// Abort storms can livelock the replay harness (no-wait
					// does so even unsharded); what matters here is that
					// whatever completes is serializable.
					continue
				}
				completed++
				final := res.FinalSchedule(sys)
				csr, _, err := conflict.Serializable(sys, final)
				if err != nil {
					t.Fatal(err)
				}
				if !csr {
					t.Fatalf("%s on %s: non-serializable final schedule %v from %v", tc.name, sys.Name, final, h)
				}
			}
			if completed == 0 {
				t.Fatalf("%s on %s: no trial completed", tc.name, sys.Name)
			}
		}
	}
}

// TestShardedRoutingAndNames covers the partition plumbing.
func TestShardedRoutingAndNames(t *testing.T) {
	s := NewSharded(8, func() Scheduler { return NewSerial() })
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if got := s.Name(); got != "sharded(8)/serial" {
		t.Fatalf("Name = %q", got)
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		sh := s.ShardOf(core.Var(fmt.Sprintf("v%d", i)))
		if sh < 0 || sh >= 8 {
			t.Fatalf("ShardOf out of range: %d", sh)
		}
		seen[sh] = true
	}
	if len(seen) < 4 {
		t.Errorf("hash partition badly skewed: only %d of 8 shards used", len(seen))
	}
	m := NewMutexed(NewOCC())
	if m.NumShards() != 1 || m.ShardOf("anything") != 0 {
		t.Error("mutexed must be a single shard")
	}
	if m.Name() != "mutexed/occ/backward" {
		t.Errorf("Name = %q", m.Name())
	}
}

// TestConcurrent2PLParallelDrive hammers ConcurrentStrict2PL from one
// goroutine per transaction with the no-wait policy (conflicts abort the
// requester, so per-transaction call sequencing is preserved without a
// harness). Run under -race this exercises the sharded lock table's fast
// path, escalation, and per-shard mutexes concurrently.
func TestConcurrent2PLParallelDrive(t *testing.T) {
	const txs = 32
	sys := &core.System{Name: "hammer"}
	for i := 0; i < txs; i++ {
		// Half the transactions work a private variable (fast path), half
		// contend on a small hot set (escalation + queues).
		var steps []core.Step
		if i%2 == 0 {
			v := core.Var(fmt.Sprintf("priv%d", i))
			steps = []core.Step{{Var: v, Kind: core.Update}, {Var: v, Kind: core.Update}}
		} else {
			v := core.Var(fmt.Sprintf("hot%d", i%4))
			steps = []core.Step{{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}}
		}
		sys.Txs = append(sys.Txs, core.Transaction{Steps: steps})
	}
	sys.Normalize()

	sched := NewConcurrentStrict2PL(lockmgr.NoWait, 4)
	sched.Begin(sys)
	var wg sync.WaitGroup
	for tx := 0; tx < txs; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			steps := len(sys.Txs[tx].Steps)
			for attempt := 0; attempt < 10_000; attempt++ {
				ok := true
				for idx := 0; idx < steps; idx++ {
					switch sched.Try(core.StepID{Tx: tx, Idx: idx}) {
					case Grant:
					case AbortTx, Delay: // no-wait never delays, but be safe
						ok = false
					}
					if !ok {
						break
					}
				}
				if ok {
					sched.Commit(tx)
					return
				}
				sched.Abort(tx)
			}
			t.Errorf("tx %d never committed", tx)
		}(tx)
	}
	wg.Wait()
}
