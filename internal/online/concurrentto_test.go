package online

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/schedule"
	"optcc/internal/workload"
)

// TestConcurrentTODecisionEquivalence is the acceptance property of the
// natively concurrent TO: under single-goroutine driving it must match the
// single-threaded TO verbatim — not just fixpoint membership but the whole
// replay transcript (grant log, delays, aborts), history by history over
// the full enumeration, in both basic and Thomas modes and for any shard
// count. Timestamps are assigned in arrival order by both, so every
// decision is forced to agree.
func TestConcurrentTODecisionEquivalence(t *testing.T) {
	systems := append(singleShardSystems(),
		workload.Cross(), workload.Chain(), workload.Banking())
	for _, sys := range systems {
		for _, thomas := range []bool{false, true} {
			for _, shards := range []int{1, 4} {
				mkBase := func() Scheduler {
					if thomas {
						return NewTOThomas()
					}
					return NewTO()
				}
				mkNative := func() Scheduler {
					if thomas {
						return NewConcurrentTOThomas(shards)
					}
					return NewConcurrentTO(shards)
				}
				base, native := mkBase(), mkNative()
				checked := 0
				schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
					bres, berr := Replay(sys, base, h, 0)
					nres, nerr := Replay(sys, native, h, 0)
					if (berr == nil) != (nerr == nil) {
						t.Fatalf("thomas=%v shards=%d on %s: completion mismatch on %v: %v vs %v",
							thomas, shards, sys.Name, h, berr, nerr)
					}
					if berr != nil {
						return true
					}
					if bres.Undelayed != nres.Undelayed || bres.Delays != nres.Delays ||
						bres.Aborts != nres.Aborts || !reflect.DeepEqual(bres.Output, nres.Output) {
						t.Fatalf("thomas=%v shards=%d on %s: transcript mismatch on %v:\nbase   %+v\nnative %+v",
							thomas, shards, sys.Name, h, bres, nres)
					}
					checked++
					return true
				})
				if checked == 0 {
					t.Fatalf("thomas=%v shards=%d on %s: no histories compared", thomas, shards, sys.Name)
				}
			}
		}
	}
}

// TestConcurrentTOContract covers the partition plumbing and the restart
// timestamp discipline.
func TestConcurrentTOContract(t *testing.T) {
	s := NewConcurrentTO(8)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Name() != "cto(8)/basic" {
		t.Fatalf("Name = %q", s.Name())
	}
	if NewConcurrentTOThomas(2).Name() != "cto(2)/thomas" {
		t.Fatal("thomas name wrong")
	}
	sys := workload.LostUpdate()
	s.Begin(sys)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant {
		t.Fatalf("first read: %v", d)
	}
	// Tx 1 arrives later (newer timestamp), writes, and retires.
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != Grant {
		t.Fatalf("tx1 read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 1}); d != Grant {
		t.Fatalf("tx1 write: %v", d)
	}
	s.Commit(1)
	// Tx 0's write is now older than the variable's read/write timestamps:
	// basic TO aborts it, and the restart must get a fresh timestamp that
	// succeeds.
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != AbortTx {
		t.Fatalf("stale write: %v", d)
	}
	s.Abort(0)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant {
		t.Fatalf("restarted read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != Grant {
		t.Fatalf("restarted write: %v", d)
	}
}

// TestConcurrentTOParallelDrive hammers the lock-free hot path from one
// goroutine per transaction on disjoint variables (the contract-legal
// concurrency: no two in-flight steps share a variable). Under -race this
// exercises the atomic clock, the per-transaction timestamp slots and the
// timestamp table concurrently; every transaction must commit first try.
func TestConcurrentTOParallelDrive(t *testing.T) {
	const txs = 32
	sys := &core.System{Name: "cto-hammer"}
	for i := 0; i < txs; i++ {
		v := core.Var(fmt.Sprintf("priv%d", i))
		sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
			{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}, {Var: v, Kind: core.Update},
		}})
	}
	sys.Normalize()
	sched := NewConcurrentTO(4)
	sched.Begin(sys)
	var wg sync.WaitGroup
	for tx := 0; tx < txs; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			for idx := 0; idx < len(sys.Txs[tx].Steps); idx++ {
				if d := sched.Try(core.StepID{Tx: tx, Idx: idx}); d != Grant {
					t.Errorf("tx %d step %d: %v", tx, idx, d)
					return
				}
			}
			sched.Commit(tx)
		}(tx)
	}
	wg.Wait()
}

// TestShardedRailStripesSerializable re-runs the rail's acceptance
// property across stripe counts (1 = the single-mutex degenerate, then
// genuinely striped): whatever completes under the striped rail must be
// conflict-serializable, for delay-based, abort-based and lock-based
// wrapped schedulers alike. The CI stress job repeats this under -race.
func TestShardedRailStripesSerializable(t *testing.T) {
	factories := []struct {
		name    string
		factory func() Scheduler
	}{
		{"serial", func() Scheduler { return NewSerial() }},
		{"strict-2pl/woundwait", func() Scheduler { return NewStrict2PL(lockmgr.WoundWait) }},
		{"to/basic", func() Scheduler { return NewTO() }},
	}
	systems := []*core.System{workload.Cross(), workload.Banking(), workload.CrossPairs(3)}
	for _, stripes := range []int{1, 2, 8} {
		for _, sys := range systems {
			for _, tc := range factories {
				sched := NewShardedRail(4, stripes, tc.factory)
				rng := rand.New(rand.NewSource(int64(stripes) * 131))
				completed := 0
				for trial := 0; trial < 12; trial++ {
					h := schedule.Random(sys.Format(), rng)
					res, err := Replay(sys, sched, h, 50)
					if err != nil {
						continue // abort storms may blow the restart budget; CSR is the property
					}
					completed++
					final := res.FinalSchedule(sys)
					csr, _, err := conflict.Serializable(sys, final)
					if err != nil {
						t.Fatal(err)
					}
					if !csr {
						t.Fatalf("stripes=%d %s on %s: non-serializable final schedule %v from %v",
							stripes, tc.name, sys.Name, final, h)
					}
				}
				if completed == 0 {
					t.Fatalf("stripes=%d %s on %s: no trial completed", stripes, tc.name, sys.Name)
				}
			}
		}
	}
}
