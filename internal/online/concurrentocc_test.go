package online

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"optcc/internal/core"
	"optcc/internal/schedule"
	"optcc/internal/workload"
)

// TestConcurrentOCCDecisionEquivalence is the acceptance property of the
// natively concurrent OCC: under single-goroutine driving it must match
// the single-threaded backward-validation OCC verbatim — the whole replay
// transcript, history by history over the full enumeration, for any shard
// count. With no concurrent validators the epoch machinery degenerates to
// the sequential checks: the commit-stamp probe is (a)/(c) against the
// committed history, the writer-mark scan is (b) against active writers,
// and the clock ticks mirror the sequential increments one for one.
func TestConcurrentOCCDecisionEquivalence(t *testing.T) {
	systems := append(singleShardSystems(),
		workload.Cross(), workload.Chain(), workload.Banking())
	for _, sys := range systems {
		for _, shards := range []int{1, 4} {
			base, native := NewOCC(), NewConcurrentOCC(shards)
			checked := 0
			schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
				bres, berr := Replay(sys, base, h, 0)
				nres, nerr := Replay(sys, native, h, 0)
				if (berr == nil) != (nerr == nil) {
					t.Fatalf("shards=%d on %s: completion mismatch on %v: %v vs %v",
						shards, sys.Name, h, berr, nerr)
				}
				if berr != nil {
					return true
				}
				if bres.Undelayed != nres.Undelayed || bres.Delays != nres.Delays ||
					bres.Aborts != nres.Aborts || !reflect.DeepEqual(bres.Output, nres.Output) {
					t.Fatalf("shards=%d on %s: transcript mismatch on %v:\nbase   %+v\nnative %+v",
						shards, sys.Name, h, bres, nres)
				}
				checked++
				return true
			})
			if checked == 0 {
				t.Fatalf("shards=%d on %s: no histories compared", shards, sys.Name)
			}
		}
	}
}

// TestConcurrentOCCContract covers naming, partition plumbing, and the
// validate → abort → restart discipline on the lost-update anomaly.
func TestConcurrentOCCContract(t *testing.T) {
	s := NewConcurrentOCC(8)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Name() != "cocc(8)/backward" {
		t.Fatalf("Name = %q", s.Name())
	}
	sys := workload.LostUpdate()
	s.Begin(sys)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant {
		t.Fatalf("tx0 read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != Grant {
		t.Fatalf("tx1 read: %v", d)
	}
	// Tx 1 validates and commits its write of x; tx 0 read x before that
	// commit, so its own validation must fail backward.
	if d := s.Try(core.StepID{Tx: 1, Idx: 1}); d != Grant {
		t.Fatalf("tx1 validating write: %v", d)
	}
	s.Commit(1)
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != AbortTx {
		t.Fatalf("stale validation: %v", d)
	}
	s.Abort(0)
	// The restarted incarnation starts after tx 1's commit: clean run.
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant {
		t.Fatalf("restarted read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != Grant {
		t.Fatalf("restarted write: %v", d)
	}
	s.Commit(0)
}

// TestConcurrentOCCParallelDrive hammers the lock-free execution and
// validation paths from one goroutine per transaction on disjoint
// variables. Under -race this exercises the shared clock, the phase and
// validation-epoch atomics, the copy-on-write writer marks and the commit
// stamps concurrently; every transaction must commit first try.
func TestConcurrentOCCParallelDrive(t *testing.T) {
	const txs = 32
	sys := &core.System{Name: "cocc-hammer"}
	for i := 0; i < txs; i++ {
		v := core.Var(fmt.Sprintf("priv%d", i))
		sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
			{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}, {Var: v, Kind: core.Update},
		}})
	}
	sys.Normalize()
	sched := NewConcurrentOCC(4)
	sched.Begin(sys)
	var wg sync.WaitGroup
	for tx := 0; tx < txs; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			for idx := 0; idx < len(sys.Txs[tx].Steps); idx++ {
				if d := sched.Try(core.StepID{Tx: tx, Idx: idx}); d != Grant {
					t.Errorf("tx %d step %d: %v", tx, idx, d)
					return
				}
			}
			sched.Commit(tx)
		}(tx)
	}
	wg.Wait()
}
