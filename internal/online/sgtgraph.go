package online

import (
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// sgtGraph is the striped serialization graph behind ConcurrentSGT. It
// reuses the component machinery proven in the striped rail (rail.go) —
// union-find components under compMu, per-root subgraphs owned by lock
// stripes, union-before-edge-visible, ascending stripe acquisition,
// component-scoped DFS on visited-stamp scratch — but it is a scheduler's
// graph, not a reservation rail, so three things differ:
//
//   - Incarnation liveness lives inside the graph. state[tx] packs the
//     transaction's current epoch and a retired bit (2e = epoch e live,
//     2e+1 = retired): the per-variable mark lists ConcurrentSGT keeps are
//     append-only and compacted lazily, so a lock-free marks read can
//     surface a node that was committed and pruned, or aborted, a moment
//     ago. insert re-validates every source's liveness under the stripe
//     locks — pruning a node requires its component root's stripe, which
//     insert holds, so a source seen live under the locks stays live until
//     they are released — and drops dead sources instead of edging to them.
//   - There is no withdraw. ConcurrentSGT has no inner shard scheduler
//     that could reject a step after the graph accepts it: a cycle is the
//     decision (Delay or AbortTx), and a failed insert mutates nothing.
//   - Retirement is published under the stripe lock. prune flips the
//     retired bit of every node it removes while still holding the
//     component's stripe, so marks readers can never resurrect a pruned
//     incarnation.
//
// The locking protocol is the rail's, in sgtGraph's own lock domain:
// stripe mutexes in ascending index order, compMu strictly innermost
// (never held while acquiring a stripe mutex). See the cclint lockorder
// hierarchy (sgtStripe.mu rank 10, sgtGraph.compMu rank 20).
type sgtGraph struct {
	stripes []sgtStripe
	state   []atomic.Int64 // per tx: epoch<<1, |1 when that incarnation retired

	compMu sync.Mutex
	parent map[railNode]railNode // union-find; missing entry = self root
}

// sgtStripe owns the subgraphs of the components whose roots hash to it,
// plus the reusable scratch its DFS and prune sweeps run on.
type sgtStripe struct {
	mu   sync.Mutex
	subs map[railNode]*sgtSub

	visited map[railNode]int // DFS visited-stamp scratch
	stamp   int
	stack   []railNode
	indeg   map[railNode]int // prune scratch
}

// sgtSub is one component's subgraph: its edges and committed nodes.
type sgtSub struct {
	edges     map[railNode]map[railNode]bool
	committed map[railNode]bool
}

func newSGTGraph(stripes, numTxs int) *sgtGraph {
	if stripes < 1 {
		stripes = 1
	}
	g := &sgtGraph{
		stripes: make([]sgtStripe, stripes),
		state:   make([]atomic.Int64, numTxs),
		parent:  map[railNode]railNode{},
	}
	for i := range g.stripes {
		g.stripes[i].subs = map[railNode]*sgtSub{}
		g.stripes[i].visited = map[railNode]int{}
		g.stripes[i].indeg = map[railNode]int{}
	}
	return g
}

// reset rewinds the graph for a fresh run over the same transaction count,
// keeping the per-stripe scratch maps.
func (g *sgtGraph) reset() {
	for i := range g.state {
		g.state[i].Store(0)
	}
	clear(g.parent)
	for i := range g.stripes {
		clear(g.stripes[i].subs)
	}
}

// node returns the transaction's current incarnation.
//
//optcc:hotpath
func (g *sgtGraph) node(tx int) railNode {
	return railNode{tx: tx, epoch: int(g.state[tx].Load() >> 1)}
}

// alive reports whether n is a live (not aborted, not pruned) incarnation.
// Lock-free; definitive only while n's component stripe is held (see
// insert), advisory otherwise (the marks compaction path).
//
//optcc:hotpath
func (g *sgtGraph) alive(n railNode) bool {
	return g.state[n.tx].Load() == int64(n.epoch)<<1
}

// stripeOf maps a component root to the stripe owning its subgraph.
func (g *sgtGraph) stripeOf(n railNode) int {
	h := uint32(n.tx)*2654435761 ^ uint32(n.epoch)*40503
	return int(h % uint32(len(g.stripes)))
}

// find returns n's component root with path compression. Caller holds
// compMu.
func (g *sgtGraph) find(n railNode) railNode {
	root := n
	for {
		p, ok := g.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	for n != root {
		p := g.parent[n]
		g.parent[n] = root
		n = p
	}
	return root
}

// lockComp locks the stripe owning n's component and returns the current
// root and stripe index. It retries when a concurrent union moves the root
// to another stripe between the lookup and the lock; every retry consumes
// a union, so the loop terminates. Caller unlocks stripes[stripe].mu.
func (g *sgtGraph) lockComp(n railNode) (root railNode, stripe int) {
	for {
		g.compMu.Lock()
		root = g.find(n)
		g.compMu.Unlock()
		stripe = g.stripeOf(root)
		g.stripes[stripe].mu.Lock()
		g.compMu.Lock()
		root = g.find(n)
		ok := g.stripeOf(root) == stripe
		g.compMu.Unlock()
		if ok {
			return root, stripe
		}
		g.stripes[stripe].mu.Unlock()
	}
}

// insert atomically checks that adding source→me edges keeps the graph
// acyclic and inserts them, reporting whether the grant may proceed. A
// false return mutates nothing — the caller turns it into Delay or
// AbortTx and the sources will be recollected on retry. Sources are the
// caller's lock-free marks snapshot: each is re-validated as live under
// the stripe locks and silently dropped if it retired in the window
// (exactly what the sequential SGT sees — a pruned or aborted incarnation
// has no recorded steps left). Caller runs on the variable's dispatch
// goroutine and holds no graph lock.
func (g *sgtGraph) insert(me railNode, sources []railNode) bool {
	if len(sources) == 0 {
		// No conflicting predecessors: no edges, no cycle, no locks.
		return true
	}
	var lockBuf [8]int
	for attempt := 0; ; attempt++ {
		// Snapshot the stripes covering every involved component root.
		locked := lockBuf[:0]
		if attempt >= 2 {
			// Concurrent unions moved a root out of our snapshot twice:
			// escalate to every stripe, which cannot fail validation.
			for i := range g.stripes {
				locked = append(locked, i)
			}
		} else {
			g.compMu.Lock()
			locked = append(locked, g.stripeOf(g.find(me)))
			for _, src := range sources {
				if s := g.stripeOf(g.find(src)); !slices.Contains(locked, s) {
					locked = append(locked, s)
				}
			}
			g.compMu.Unlock()
			sort.Ints(locked)
		}
		for _, s := range locked {
			g.stripes[s].mu.Lock()
		}
		// Re-resolve the roots under the locks; if they all still live on
		// locked stripes they are pinned until we unlock — and so is each
		// source's liveness, because retiring a node takes its component
		// root's stripe.
		g.compMu.Lock()
		meRoot := g.find(me)
		valid := slices.Contains(locked, g.stripeOf(meRoot))
		var live, srcRoots []railNode
		sameComp := false
		if valid {
			for _, src := range sources {
				root := g.find(src)
				if !slices.Contains(locked, g.stripeOf(root)) {
					valid = false
					break
				}
				if !g.alive(src) {
					continue // retired between the marks read and the locks
				}
				live = append(live, src)
				if root == meRoot {
					sameComp = true
				} else if !slices.Contains(srcRoots, root) {
					srcRoots = append(srcRoots, root)
				}
			}
		}
		if !valid {
			g.compMu.Unlock()
			for _, s := range locked {
				g.stripes[s].mu.Unlock()
			}
			continue
		}
		g.compMu.Unlock()
		if len(live) == 0 {
			for _, s := range locked {
				g.stripes[s].mu.Unlock()
			}
			return true
		}

		meStripe := g.stripeOf(meRoot)
		st := &g.stripes[meStripe]
		sub := st.subs[meRoot]
		if sameComp && sub != nil {
			// Exact check, scoped to me's component: a new edge src→me
			// closes a cycle iff me already reaches src. Sources in
			// foreign components cannot be reached — a path would have
			// unioned them — so only same-component sources lacking their
			// edge are targets.
			st.stack = st.stack[:0]
			for _, src := range live {
				if src == meRoot || g.sameRoot(src, meRoot) {
					if !sub.edges[src][me] {
						st.stack = append(st.stack, src)
					}
				}
			}
			targets := st.stack
			if st.reaches(sub, me, targets) {
				for _, s := range locked {
					g.stripes[s].mu.Unlock()
				}
				return false
			}
		}
		// Merge foreign components into me's (union before the edges become
		// visible, keeping connectivity ⊆ component relation), then insert.
		if len(srcRoots) > 0 {
			g.compMu.Lock()
			for _, root := range srcRoots {
				g.parent[root] = meRoot
			}
			g.compMu.Unlock()
		}
		if sub == nil {
			sub = &sgtSub{edges: map[railNode]map[railNode]bool{}, committed: map[railNode]bool{}}
			st.subs[meRoot] = sub
		}
		for _, root := range srcRoots {
			os := &g.stripes[g.stripeOf(root)]
			if other := os.subs[root]; other != nil {
				for from, tos := range other.edges {
					if cur := sub.edges[from]; cur == nil {
						sub.edges[from] = tos
					} else {
						for to := range tos {
							cur[to] = true
						}
					}
				}
				for n := range other.committed {
					sub.committed[n] = true
				}
				delete(os.subs, root)
			}
		}
		for _, src := range live {
			m := sub.edges[src]
			if m == nil {
				m = map[railNode]bool{}
				sub.edges[src] = m
			}
			m[me] = true
		}
		for _, s := range locked {
			g.stripes[s].mu.Unlock()
		}
		return true
	}
}

// sameRoot reports whether n's component root is root. Called with the
// root's stripe held, so the answer is stable.
func (g *sgtGraph) sameRoot(n, root railNode) bool {
	g.compMu.Lock()
	same := g.find(n) == root
	g.compMu.Unlock()
	return same
}

// reaches reports whether any node in targets is reachable from start in
// sub. It reuses the stripe's visited-stamp scratch: no allocation on the
// steady-state path. Caller holds the stripe's mutex; targets aliases the
// stripe's stack scratch, so the walk uses a local continuation index
// rather than the shared stack slice.
func (st *sgtStripe) reaches(sub *sgtSub, start railNode, targets []railNode) bool {
	if len(targets) == 0 {
		return false
	}
	st.stamp++
	if len(st.visited) > 4096 {
		// Bound scratch growth across long runs; stamps make stale entries
		// harmless, this only caps memory.
		st.visited = make(map[railNode]int)
	}
	head := len(targets) // frontier lives after the targets in st.stack
	st.stack = append(st.stack, start)
	for len(st.stack) > head {
		u := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		if st.visited[u] == st.stamp {
			continue
		}
		st.visited[u] = st.stamp
		for _, t := range st.stack[:head] {
			if u == t {
				return true
			}
		}
		for v := range sub.edges[u] {
			st.stack = append(st.stack, v)
		}
	}
	return false
}

// commitTx marks the transaction's current incarnation committed and
// prunes its component. An edgeless singleton retires immediately.
func (g *sgtGraph) commitTx(tx int) {
	me := g.node(tx)
	root, stripe := g.lockComp(me)
	st := &g.stripes[stripe]
	sub := st.subs[root]
	if sub == nil {
		// Edgeless singleton: retires immediately.
		g.state[tx].Store(int64(me.epoch)<<1 | 1)
	} else {
		sub.committed[me] = true
		g.prune(st, sub)
		if len(sub.edges) == 0 && len(sub.committed) == 0 {
			delete(st.subs, root)
		}
	}
	st.mu.Unlock()
}

// abortTx drops the incarnation's node from its component, starts a fresh
// epoch (which retires the incarnation's marks everywhere, atomically with
// the node leaving the graph), and prunes.
func (g *sgtGraph) abortTx(tx int) {
	gone := g.node(tx)
	root, stripe := g.lockComp(gone)
	g.state[tx].Store(int64(gone.epoch+1) << 1)
	st := &g.stripes[stripe]
	if sub := st.subs[root]; sub != nil {
		delete(sub.edges, gone)
		for src, m := range sub.edges {
			if m[gone] {
				delete(m, gone)
				if len(m) == 0 {
					delete(sub.edges, src)
				}
			}
		}
		delete(sub.committed, gone)
		g.prune(st, sub)
		if len(sub.edges) == 0 && len(sub.committed) == 0 {
			delete(st.subs, root)
		}
	}
	st.mu.Unlock()
}

// prune removes committed nodes with no incoming edges from sub and flips
// their retired bit while the component's stripe is still held: edges only
// ever point from earlier grants to later ones, so such a node can never
// rejoin a cycle, and publishing retirement under the lock means a marks
// reader that revalidates under this stripe can never see a pruned node as
// live. The sweep is scoped to one component — a removal can only unblock
// successors inside the same subgraph. Reuses the stripe's in-degree
// scratch; caller holds the stripe's mutex.
func (g *sgtGraph) prune(st *sgtStripe, sub *sgtSub) {
	for {
		clear(st.indeg)
		for _, tos := range sub.edges {
			for to := range tos {
				st.indeg[to]++
			}
		}
		progress := false
		for n := range sub.committed {
			if st.indeg[n] == 0 {
				delete(sub.edges, n)
				delete(sub.committed, n)
				g.state[n.tx].Store(int64(n.epoch)<<1 | 1)
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// indegree counts the live in-edges of the transaction's current
// incarnation — every in-edge lives in me's own component's subgraph, so
// one stripe lock covers the count. Victim selection uses it to match the
// sequential SGT's most-constrained heuristic.
func (g *sgtGraph) indegree(tx int) int {
	me := g.node(tx)
	root, stripe := g.lockComp(me)
	st := &g.stripes[stripe]
	in := 0
	if sub := st.subs[root]; sub != nil {
		for _, tos := range sub.edges {
			if tos[me] {
				in++
			}
		}
	}
	st.mu.Unlock()
	return in
}
