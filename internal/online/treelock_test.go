package online

import (
	"math/rand"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/schedule"
	"optcc/internal/workload"
)

func TestTreeLockCompletesPathWorkload(t *testing.T) {
	sys := workload.PathWorkload(3, 4, 17)
	rng := rand.New(rand.NewSource(5))
	var hs []core.Schedule
	for i := 0; i < 200; i++ {
		hs = append(hs, schedule.Random(sys.Format(), rng))
	}
	sched := NewTreeLock()
	for _, h := range hs {
		res, err := Replay(sys, sched, h, 0)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if !res.Completed {
			t.Fatalf("tree lock did not complete %v", h)
		}
		final := res.FinalSchedule(sys)
		csr, _, err := conflict.Serializable(sys, final)
		if err != nil {
			t.Fatal(err)
		}
		if !csr {
			t.Fatalf("tree lock emitted non-serializable %v from %v", final, h)
		}
	}
}

// Tree locking's fixpoint strictly contains strict 2PL's on path
// workloads: releasing the root early admits interleavings 2PL forbids.
func TestTreeLockBeatsStrict2PLOnPaths(t *testing.T) {
	// Two transactions descending to different leaves through the shared
	// root n0: n0→n1→n3 and n0→n2→n6.
	mk := func(path ...core.Var) core.Transaction {
		steps := make([]core.Step, len(path))
		for i, v := range path {
			steps[i] = core.Step{Var: v, Kind: core.Update,
				Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }}
		}
		return core.Transaction{Steps: steps}
	}
	sys := (&core.System{
		Name: "paths",
		Txs: []core.Transaction{
			mk("n0", "n1", "n3"),
			mk("n0", "n2", "n6"),
		},
	}).Normalize()
	hs := schedule.All(sys.Format(), 0)
	tree := 0
	twopl := 0
	for _, h := range hs {
		if res, err := Replay(sys, NewTreeLock(), h, 0); err == nil && res.Undelayed {
			tree++
		}
		if res, err := Replay(sys, NewStrict2PL(0), h, 0); err == nil && res.Undelayed {
			twopl++
		}
	}
	if tree <= twopl {
		t.Errorf("tree lock fixpoint %d, strict 2PL fixpoint %d; want tree > 2PL on path workloads", tree, twopl)
	}
}

func TestTreeLockNoDeadlockOnDescendingPaths(t *testing.T) {
	sys := workload.PathWorkload(4, 6, 23)
	// A crossing arrival order that would deadlock hold-everything
	// locking: interleave first steps of all transactions.
	var h core.Schedule
	next := make([]int, sys.NumTxs())
	remaining := sys.StepCount()
	for remaining > 0 {
		for tx := 0; tx < sys.NumTxs(); tx++ {
			if next[tx] < len(sys.Txs[tx].Steps) {
				h = append(h, core.StepID{Tx: tx, Idx: next[tx]})
				next[tx]++
				remaining--
			}
		}
	}
	res, err := Replay(sys, NewTreeLock(), h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts != 0 {
		t.Errorf("tree lock aborted %d times on descending paths", res.Aborts)
	}
	if !res.Completed {
		t.Error("tree lock incomplete")
	}
}
