package online

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/schedule"
	"optcc/internal/workload"
)

// TestConcurrentMVContract walks every decision rule of the
// multiversion/optimistic protocol through forced scenarios: write claims
// and first-writer-wins, the no-dirty-read and stale-view read aborts, the
// younger-reader write abort, claim release on commit, claim restore on
// abort, and the fresh-timestamp restart discipline.
func TestConcurrentMVContract(t *testing.T) {
	s := NewConcurrentMV(8)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Name() != "mv(8)" {
		t.Fatalf("Name = %q", s.Name())
	}
	if !s.ReadOnlySnapshots() {
		t.Fatal("mv must offer read-only snapshots")
	}

	// Younger reader blocks an older write; claims block readers.
	sys := (&core.System{Name: "mv-rw", Txs: []core.Transaction{
		{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "x", Kind: core.Write}}},
		{Steps: []core.Step{{Var: "x", Kind: core.Read}, {Var: "x", Kind: core.Write}}},
	}}).Normalize()
	s.Begin(sys)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant { // ts 1 reads x
		t.Fatalf("tx0 read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != Grant { // ts 2 reads x
		t.Fatalf("tx1 read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 1}); d != Grant { // ts 2 claims x
		t.Fatalf("tx1 write: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != AbortTx { // younger reader saw x
		t.Fatalf("older write past younger reader: %v", d)
	}
	s.Abort(0)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != AbortTx { // x claimed: no dirty read
		t.Fatalf("read under claim: %v", d)
	}
	s.Abort(0)
	s.Commit(1)                                             // claim released to ts 2
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant { // fresh ts 4 > 2
		t.Fatalf("restarted read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != Grant {
		t.Fatalf("restarted write: %v", d)
	}
	s.Commit(0)

	// Stale view: a transaction that began before a younger commit may not
	// read the committed variable afterwards.
	sys = (&core.System{Name: "mv-stale", Txs: []core.Transaction{
		{Steps: []core.Step{{Var: "a", Kind: core.Read}, {Var: "b", Kind: core.Read}}},
		{Steps: []core.Step{{Var: "b", Kind: core.Write}}},
	}}).Normalize()
	s.Begin(sys)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant { // ts 1
		t.Fatalf("tx0 read a: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != Grant { // ts 2 claims b
		t.Fatalf("tx1 write b: %v", d)
	}
	s.Commit(1)
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != AbortTx { // b committed at 2 > 1
		t.Fatalf("stale read: %v", d)
	}
	s.Abort(0)

	// First-writer-wins, and abort restores the displaced timestamp.
	sys = (&core.System{Name: "mv-ww", Txs: []core.Transaction{
		{Steps: []core.Step{{Var: "x", Kind: core.Write}}},
		{Steps: []core.Step{{Var: "x", Kind: core.Write}}},
	}}).Normalize()
	s.Begin(sys)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant { // ts 1 claims x
		t.Fatalf("tx0 write: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != AbortTx { // second writer loses
		t.Fatalf("second writer: %v", d)
	}
	s.Abort(1)
	e := s.table.Entry("x")
	if w := e.WriteTS(); w != -1 {
		t.Fatalf("claim after loser abort: %d", w)
	}
	s.Abort(0) // winner aborts too: the claim must restore, not commit
	if w := e.WriteTS(); w != 0 {
		t.Fatalf("claim not restored: %d", w)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != Grant {
		t.Fatalf("restart after restore: %v", d)
	}
	s.Commit(1)
	if w := e.WriteTS(); w <= 0 {
		t.Fatalf("commit did not release claim: %d", w)
	}
}

// TestConcurrentMVSerializable is the acceptance property: whatever
// completes under the mv scheduler — driven through arbitrary random
// interleavings with restarts — must be conflict-serializable, on any
// shard count. (Result.Delays counts post-abort backoff stalls too, so it
// is not asserted here; that Try itself never returns Delay is pinned by
// the contract test.)
func TestConcurrentMVSerializable(t *testing.T) {
	systems := []*core.System{
		workload.Cross(), workload.Banking(), workload.CrossPairs(3),
		workload.Random(workload.RandomConfig{NumTxs: 4, NumVars: 3, MaxSteps: 3}, 7),
	}
	for _, shards := range []int{1, 4} {
		for _, sys := range systems {
			sched := NewConcurrentMV(shards)
			rng := rand.New(rand.NewSource(int64(shards) * 977))
			completed := 0
			for trial := 0; trial < 12; trial++ {
				h := schedule.Random(sys.Format(), rng)
				res, err := Replay(sys, sched, h, 50)
				if err != nil {
					continue // abort storms may blow the restart budget; CSR is the property
				}
				completed++
				final := res.FinalSchedule(sys)
				csr, _, err := conflict.Serializable(sys, final)
				if err != nil {
					t.Fatal(err)
				}
				if !csr {
					t.Fatalf("shards=%d on %s: non-serializable final schedule %v from %v",
						shards, sys.Name, final, h)
				}
			}
			if completed == 0 {
				t.Fatalf("shards=%d on %s: no trial completed", shards, sys.Name)
			}
		}
	}
}

// TestConcurrentMVParallelDrive hammers the lock-free hot path from one
// goroutine per transaction on disjoint variables (the contract-legal
// concurrency). Under -race this exercises the atomic clock, the
// per-transaction timestamp slots, the claim CAS and the claim-release
// paths concurrently; every transaction must commit first try.
func TestConcurrentMVParallelDrive(t *testing.T) {
	const txs = 32
	sys := &core.System{Name: "mv-hammer"}
	for i := 0; i < txs; i++ {
		v := core.Var(fmt.Sprintf("priv%d", i))
		sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
			{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}, {Var: v, Kind: core.Update},
		}})
	}
	sys.Normalize()
	sched := NewConcurrentMV(4)
	sched.Begin(sys)
	var wg sync.WaitGroup
	for tx := 0; tx < txs; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			for idx := 0; idx < len(sys.Txs[tx].Steps); idx++ {
				if d := sched.Try(core.StepID{Tx: tx, Idx: idx}); d != Grant {
					t.Errorf("tx %d step %d: %v", tx, idx, d)
					return
				}
			}
			sched.Commit(tx)
		}(tx)
	}
	wg.Wait()
}
