package online

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/schedule"
	"optcc/internal/workload"
)

// TestConcurrentSGTDecisionEquivalence is the acceptance property of the
// natively concurrent SGT: under single-goroutine driving it must match
// the single-threaded SGT verbatim — the whole replay transcript (grant
// log, delays, aborts), history by history over the full enumeration, in
// both cycle modes and for any shard count. The full reader/writer mark
// lists reproduce exactly the sequential edge set, so every cycle
// decision, prune and victim choice is forced to agree.
func TestConcurrentSGTDecisionEquivalence(t *testing.T) {
	systems := append(singleShardSystems(),
		workload.Cross(), workload.Chain(), workload.Banking())
	for _, sys := range systems {
		for _, abort := range []bool{false, true} {
			for _, shards := range []int{1, 4} {
				mkBase := func() Scheduler {
					if abort {
						return NewSGTAborting()
					}
					return NewSGT()
				}
				mkNative := func() Scheduler {
					if abort {
						return NewConcurrentSGTAborting(shards)
					}
					return NewConcurrentSGT(shards)
				}
				base, native := mkBase(), mkNative()
				checked := 0
				schedule.Enumerate(sys.Format(), func(h core.Schedule) bool {
					bres, berr := Replay(sys, base, h, 0)
					nres, nerr := Replay(sys, native, h, 0)
					if (berr == nil) != (nerr == nil) {
						t.Fatalf("abort=%v shards=%d on %s: completion mismatch on %v: %v vs %v",
							abort, shards, sys.Name, h, berr, nerr)
					}
					if berr != nil {
						return true
					}
					if bres.Undelayed != nres.Undelayed || bres.Delays != nres.Delays ||
						bres.Aborts != nres.Aborts || !reflect.DeepEqual(bres.Output, nres.Output) {
						t.Fatalf("abort=%v shards=%d on %s: transcript mismatch on %v:\nbase   %+v\nnative %+v",
							abort, shards, sys.Name, h, bres, nres)
					}
					checked++
					return true
				})
				if checked == 0 {
					t.Fatalf("abort=%v shards=%d on %s: no histories compared", abort, shards, sys.Name)
				}
			}
		}
	}
}

// TestConcurrentSGTContract covers naming, partition plumbing, and the
// cycle → abort → restart discipline on the lost-update anomaly.
func TestConcurrentSGTContract(t *testing.T) {
	s := NewConcurrentSGTAborting(8)
	if s.NumShards() != 8 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	if s.Name() != "csgt(8)/abort" {
		t.Fatalf("Name = %q", s.Name())
	}
	if NewConcurrentSGT(2).Name() != "csgt(2)/delay" {
		t.Fatal("delay name wrong")
	}
	sys := workload.LostUpdate()
	s.Begin(sys)
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant {
		t.Fatalf("tx0 read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 1, Idx: 0}); d != Grant {
		t.Fatalf("tx1 read: %v", d)
	}
	// Tx 1's write edges tx0→tx1; tx 0's write would close the cycle.
	if d := s.Try(core.StepID{Tx: 1, Idx: 1}); d != Grant {
		t.Fatalf("tx1 write: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != AbortTx {
		t.Fatalf("cycle-closing write: %v", d)
	}
	s.Abort(0)
	s.Commit(1)
	// The fresh incarnation sees only retired marks: clean run-through.
	if d := s.Try(core.StepID{Tx: 0, Idx: 0}); d != Grant {
		t.Fatalf("restarted read: %v", d)
	}
	if d := s.Try(core.StepID{Tx: 0, Idx: 1}); d != Grant {
		t.Fatalf("restarted write: %v", d)
	}
	s.Commit(0)
}

// TestConcurrentSGTParallelDrive hammers the lock-free zero-conflict path
// from one goroutine per transaction on disjoint variables (the
// contract-legal concurrency: no two in-flight steps share a variable).
// Under -race this exercises the liveness atomics, the marks tables, and
// the graph's commit path concurrently; every transaction must commit
// first try.
func TestConcurrentSGTParallelDrive(t *testing.T) {
	const txs = 32
	sys := &core.System{Name: "csgt-hammer"}
	for i := 0; i < txs; i++ {
		v := core.Var(fmt.Sprintf("priv%d", i))
		sys.Txs = append(sys.Txs, core.Transaction{Steps: []core.Step{
			{Var: v, Kind: core.Read}, {Var: v, Kind: core.Write}, {Var: v, Kind: core.Update},
		}})
	}
	sys.Normalize()
	sched := NewConcurrentSGTAborting(4)
	sched.Begin(sys)
	var wg sync.WaitGroup
	for tx := 0; tx < txs; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			for idx := 0; idx < len(sys.Txs[tx].Steps); idx++ {
				if d := sched.Try(core.StepID{Tx: tx, Idx: idx}); d != Grant {
					t.Errorf("tx %d step %d: %v", tx, idx, d)
					return
				}
			}
			sched.Commit(tx)
		}(tx)
	}
	wg.Wait()
}

// TestConcurrentSGTReplaySerializable re-runs the CSR acceptance property
// on contended random histories through the replay harness, both cycle
// modes, across shard counts: whatever the striped graph completes must be
// conflict-serializable.
func TestConcurrentSGTReplaySerializable(t *testing.T) {
	systems := []*core.System{workload.Cross(), workload.Banking(), workload.CrossPairs(3)}
	for _, abort := range []bool{false, true} {
		for _, shards := range []int{1, 4} {
			var sched Scheduler = NewConcurrentSGT(shards)
			if abort {
				sched = NewConcurrentSGTAborting(shards)
			}
			for _, sys := range systems {
				rng := rand.New(rand.NewSource(int64(shards) * 977))
				completed := 0
				for trial := 0; trial < 12; trial++ {
					h := schedule.Random(sys.Format(), rng)
					res, err := Replay(sys, sched, h, 50)
					if err != nil {
						continue // abort storms may blow the restart budget; CSR is the property
					}
					completed++
					final := res.FinalSchedule(sys)
					csr, _, err := conflict.Serializable(sys, final)
					if err != nil {
						t.Fatal(err)
					}
					if !csr {
						t.Fatalf("abort=%v shards=%d on %s: non-serializable final schedule %v from %v",
							abort, shards, sys.Name, final, h)
					}
				}
				if completed == 0 {
					t.Fatalf("abort=%v shards=%d on %s: no trial completed", abort, shards, sys.Name)
				}
			}
		}
	}
}
