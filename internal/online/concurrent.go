package online

import (
	"fmt"
	"sort"
	"sync"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// ConcurrentScheduler is a scheduler safe for concurrent use from multiple
// dispatch goroutines. It extends the single-threaded Scheduler contract
// (so every ConcurrentScheduler also works under the replay harness) with
// the shard partition the runtime routes requests by: steps on variables of
// different shards may be offered concurrently; calls on behalf of one
// transaction must still not overlap with each other.
type ConcurrentScheduler interface {
	Scheduler
	// NumShards returns the number of independent shards.
	NumShards() int
	// ShardOf returns the shard owning variable v. The simulator sends each
	// step request to the dispatch loop of ShardOf(step.Var).
	ShardOf(v core.Var) int
}

// WaitsForProvider is implemented by schedulers that can expose their
// waits-for graph at transaction granularity; the Sharded combinator merges
// per-shard graphs through it to detect cross-shard deadlock cycles that no
// single shard can see.
type WaitsForProvider interface {
	WaitsForTxs() map[int][]int
}

// shardOfVar hash-partitions a variable across n shards. It is
// lockmgr.ShardOfVar, the single partition function, so lock state and
// dispatch always agree on ownership.
func shardOfVar(v core.Var, n int) int { return lockmgr.ShardOfVar(v, n) }

// Mutexed wraps a single-threaded Scheduler behind one mutex: the
// centralized baseline of the ConcurrentScheduler contract (one shard, all
// requests serialized). It realizes exactly the inner scheduler's fixpoint.
type Mutexed struct {
	mu    sync.Mutex
	inner Scheduler
}

// NewMutexed returns the inner scheduler behind a single global mutex.
func NewMutexed(inner Scheduler) *Mutexed { return &Mutexed{inner: inner} }

// Name implements Scheduler.
func (m *Mutexed) Name() string { return "mutexed/" + m.inner.Name() }

// Begin implements Scheduler.
func (m *Mutexed) Begin(sys *core.System) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Begin(sys)
}

// Try implements Scheduler.
func (m *Mutexed) Try(id core.StepID) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Try(id)
}

// TryBatch implements BatchTrier: the whole batch is decided under one
// mutex acquisition instead of one per request.
func (m *Mutexed) TryBatch(ids []core.StepID) []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = m.inner.Try(id)
	}
	return out
}

// Commit implements Scheduler.
func (m *Mutexed) Commit(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Commit(tx)
}

// Abort implements Scheduler.
func (m *Mutexed) Abort(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Abort(tx)
}

// Victim implements Scheduler.
func (m *Mutexed) Victim(stuck []int) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Victim(stuck)
}

// Wounded implements Scheduler.
func (m *Mutexed) Wounded() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Wounded()
}

// NumShards implements ConcurrentScheduler.
func (m *Mutexed) NumShards() int { return 1 }

// ShardOf implements ConcurrentScheduler.
func (m *Mutexed) ShardOf(core.Var) int { return 0 }

// railNode identifies a transaction incarnation in the cross-shard rail.
type railNode struct {
	tx, epoch int
}

// railRec is one granted step recorded in a shard's log for conflict-edge
// computation (conflicts are always intra-shard: a conflict needs a shared
// variable, and every variable belongs to exactly one shard).
type railRec struct {
	n    railNode
	step core.Step
}

// shardSlot is one shard of a Sharded scheduler: a shard-local
// single-threaded scheduler plus the grant log feeding the rail.
type shardSlot struct {
	mu    sync.Mutex
	inner Scheduler
	log   []railRec
}

// Sharded partitions variables across n shard-local copies of a
// single-threaded scheduler. Requests touch only the shard owning their
// variable, so independent conflicts are decided in parallel.
//
// Cross-shard ordering rail: per-shard decisions alone cannot rule out a
// conflict cycle threading through several shards (each edge lives inside
// one shard, but multi-shard transactions connect them). When the system
// spans more than one shard, the rail keeps a global transaction-level
// conflict graph; a grant whose new edges would close a cycle is delayed
// before the shard scheduler sees it. Edges are inserted atomically with
// the cycle check and withdrawn if the shard scheduler rejects the step, so
// the set of actually granted steps always stays acyclic and every complete
// run is conflict-serializable. Cross-shard deadlocks are broken via the
// merged waits-for view (WaitsForProvider) in Victim.
//
// On a single-shard system the rail is inert and every call reduces to a
// locked delegation, so each wrapper realizes exactly the fixpoint set of
// its single-threaded original — the replay-equivalence property the tests
// check.
type Sharded struct {
	n       int
	factory func() Scheduler
	name    string

	sys      *core.System
	shards   []*shardSlot
	txShards [][]int

	railOn    bool
	railMu    sync.Mutex
	epoch     []int
	edges     map[railNode]map[railNode]bool
	committed map[railNode]bool
}

// NewSharded returns a combinator running one factory-built scheduler per
// shard (minimum 1) with the cross-shard ordering rail. The display name is
// computed eagerly from one probe instance: lazy computation in Name would
// race with concurrent dispatch when a run is reported while in flight.
func NewSharded(shards int, factory func() Scheduler) *Sharded {
	if shards < 1 {
		shards = 1
	}
	return &Sharded{
		n:       shards,
		factory: factory,
		name:    fmt.Sprintf("sharded(%d)/%s", shards, factory().Name()),
	}
}

// Name implements Scheduler. Safe for concurrent use: the name is fixed at
// construction and never written afterwards.
func (s *Sharded) Name() string { return s.name }

// NumShards implements ConcurrentScheduler.
func (s *Sharded) NumShards() int { return s.n }

// ShardOf implements ConcurrentScheduler.
func (s *Sharded) ShardOf(v core.Var) int { return shardOfVar(v, s.n) }

// Begin implements Scheduler.
func (s *Sharded) Begin(sys *core.System) {
	s.sys = sys
	s.shards = make([]*shardSlot, s.n)
	for i := range s.shards {
		s.shards[i] = &shardSlot{inner: s.factory()}
		s.shards[i].inner.Begin(sys)
	}
	used := map[int]bool{}
	for _, v := range sys.Vars() {
		used[s.ShardOf(v)] = true
	}
	s.railOn = len(used) > 1
	s.txShards = make([][]int, sys.NumTxs())
	for tx := range s.txShards {
		seen := map[int]bool{}
		for _, st := range sys.Txs[tx].Steps {
			seen[s.ShardOf(st.Var)] = true
		}
		for sh := range seen {
			s.txShards[tx] = append(s.txShards[tx], sh)
		}
		sort.Ints(s.txShards[tx])
	}
	s.epoch = make([]int, sys.NumTxs())
	s.edges = map[railNode]map[railNode]bool{}
	s.committed = map[railNode]bool{}
}

// reachable reports whether any node in targets is reachable from start in
// the rail graph. Caller holds railMu.
func (s *Sharded) reachable(start railNode, targets map[railNode]bool) bool {
	if len(targets) == 0 {
		return false
	}
	seen := map[railNode]bool{}
	stack := []railNode{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		if targets[u] {
			return true
		}
		for v := range s.edges[u] {
			stack = append(stack, v)
		}
	}
	return false
}

// reserve atomically checks that adding source→me edges keeps the rail
// graph acyclic and inserts them, returning the edges that were new (for
// withdrawal if the shard scheduler rejects the step) and whether the
// reservation succeeded. Caller holds the shard mutex.
func (s *Sharded) reserve(me railNode, sources []railNode) (added []railNode, ok bool) {
	s.railMu.Lock()
	defer s.railMu.Unlock()
	targets := map[railNode]bool{}
	for _, src := range sources {
		if !s.edges[src][me] {
			targets[src] = true
		}
	}
	// A new edge src→me closes a cycle iff me already reaches src.
	if s.reachable(me, targets) {
		return nil, false
	}
	for src := range targets {
		if s.edges[src] == nil {
			s.edges[src] = map[railNode]bool{}
		}
		s.edges[src][me] = true
		added = append(added, src)
	}
	return added, true
}

// withdraw removes provisionally inserted src→me edges after a shard-local
// rejection.
func (s *Sharded) withdraw(me railNode, added []railNode) {
	s.railMu.Lock()
	defer s.railMu.Unlock()
	for _, src := range added {
		delete(s.edges[src], me)
		if len(s.edges[src]) == 0 {
			delete(s.edges, src)
		}
	}
}

// Try implements Scheduler: route the step to the shard owning its
// variable; on multi-shard systems, clear the grant with the rail first.
func (s *Sharded) Try(id core.StepID) Decision {
	sh := s.shards[s.ShardOf(s.sys.Step(id).Var)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.tryLocked(sh, id)
}

// TryBatch implements BatchTrier. Requests are decided strictly in batch
// order — rail edges are global, so reordering could change which grant
// closes a cycle — but one shard-mutex acquisition is shared across every
// consecutive run of same-shard requests (the rail is still consulted per
// step: edge insertion must stay atomic with its cycle check). The dispatch
// loops send same-shard batches, so the common case is a single mutex
// acquisition for the whole batch.
func (s *Sharded) TryBatch(ids []core.StepID) []Decision {
	out := make([]Decision, len(ids))
	held := -1
	for i, id := range ids {
		si := s.ShardOf(s.sys.Step(id).Var)
		if si != held {
			if held >= 0 {
				s.shards[held].mu.Unlock()
			}
			s.shards[si].mu.Lock()
			held = si
		}
		out[i] = s.tryLocked(s.shards[si], id)
	}
	if held >= 0 {
		s.shards[held].mu.Unlock()
	}
	return out
}

// tryLocked decides one step against its shard scheduler, clearing the
// grant with the rail first on multi-shard systems. Caller holds sh.mu.
func (s *Sharded) tryLocked(sh *shardSlot, id core.StepID) Decision {
	step := s.sys.Step(id)
	if !s.railOn {
		return sh.inner.Try(id)
	}
	s.railMu.Lock()
	me := railNode{id.Tx, s.epoch[id.Tx]}
	s.railMu.Unlock()
	var sources []railNode
	seen := map[railNode]bool{}
	for _, rec := range sh.log {
		if rec.n == me || seen[rec.n] {
			continue
		}
		if conflict.Conflicts(rec.step, step) {
			seen[rec.n] = true
			sources = append(sources, rec.n)
		}
	}
	added, ok := s.reserve(me, sources)
	if !ok {
		return Delay
	}
	d := sh.inner.Try(id)
	if d == Grant {
		sh.log = append(sh.log, railRec{n: me, step: step})
		return Grant
	}
	s.withdraw(me, added)
	return d
}

// Commit implements Scheduler: notify every shard the transaction touched,
// then retire its rail node.
func (s *Sharded) Commit(tx int) {
	for _, si := range s.txShards[tx] {
		sh := s.shards[si]
		sh.mu.Lock()
		sh.inner.Commit(tx)
		sh.mu.Unlock()
	}
	if !s.railOn {
		return
	}
	s.railMu.Lock()
	s.committed[railNode{tx, s.epoch[tx]}] = true
	removed := s.prune()
	s.railMu.Unlock()
	s.purgeLogs(removed)
}

// Abort implements Scheduler: notify touched shards, drop the incarnation's
// rail node and start a fresh epoch.
func (s *Sharded) Abort(tx int) {
	for _, si := range s.txShards[tx] {
		sh := s.shards[si]
		sh.mu.Lock()
		sh.inner.Abort(tx)
		sh.mu.Unlock()
	}
	if !s.railOn {
		return
	}
	s.railMu.Lock()
	gone := railNode{tx, s.epoch[tx]}
	s.epoch[tx]++
	delete(s.edges, gone)
	for _, m := range s.edges {
		delete(m, gone)
	}
	delete(s.committed, gone)
	removed := s.prune()
	s.railMu.Unlock()
	s.purgeLogs(append(removed, gone))
}

// prune removes committed rail nodes with no incoming edges: edges only
// ever point from earlier grants to later ones, so such a node can never
// rejoin a cycle. Caller holds railMu; the removed nodes' log entries must
// be purged afterwards (without railMu held — shard mutex ordering).
func (s *Sharded) prune() []railNode {
	var removed []railNode
	for {
		indeg := map[railNode]int{}
		for _, tos := range s.edges {
			for to := range tos {
				indeg[to]++
			}
		}
		progress := false
		for n := range s.committed {
			if indeg[n] == 0 {
				delete(s.edges, n)
				delete(s.committed, n)
				removed = append(removed, n)
				progress = true
			}
		}
		if !progress {
			return removed
		}
	}
}

// purgeLogs drops the removed nodes' entries from every shard grant log.
func (s *Sharded) purgeLogs(removed []railNode) {
	if len(removed) == 0 {
		return
	}
	gone := map[railNode]bool{}
	for _, n := range removed {
		gone[n] = true
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		kept := sh.log[:0]
		for _, rec := range sh.log {
			if !gone[rec.n] {
				kept = append(kept, rec)
			}
		}
		sh.log = kept
		sh.mu.Unlock()
	}
}

// Victim implements Scheduler: first look for a cycle in the merged global
// waits-for graph (cross-shard deadlocks), then fall back to the shard
// schedulers' own heuristics.
func (s *Sharded) Victim(stuck []int) (int, bool) {
	merged := map[int][]int{}
	provided := false
	for _, sh := range s.shards {
		sh.mu.Lock()
		if p, ok := sh.inner.(WaitsForProvider); ok {
			provided = true
			for w, bs := range p.WaitsForTxs() {
				merged[w] = append(merged[w], bs...)
			}
		}
		sh.mu.Unlock()
	}
	if provided {
		g := make(map[lockmgr.TxID][]lockmgr.TxID, len(merged))
		for w, bs := range merged {
			out := make([]lockmgr.TxID, len(bs))
			for i, b := range bs {
				out[i] = lockmgr.TxID(b)
			}
			g[lockmgr.TxID(w)] = out
		}
		if txCycle, ok := lockmgr.FindCycle(g); ok {
			cycle := make([]int, len(txCycle))
			for i, tx := range txCycle {
				cycle[i] = int(tx)
			}
			// Highest index = youngest registration on every current shard
			// scheduler (Begin registers 0..n−1 in order).
			victim := cycle[0]
			for _, tx := range cycle[1:] {
				if tx > victim {
					victim = tx
				}
			}
			return victim, true
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		tx, ok := sh.inner.Victim(stuck)
		sh.mu.Unlock()
		if ok {
			return tx, true
		}
	}
	// No shard has a view of the blockage (e.g. shard-local serial, which
	// does not track waiters). Abort the youngest stuck transaction: the
	// harness retries survivors in ascending order, so the freed shards go
	// to the transactions it drains first — aborting the oldest instead can
	// livelock with the victim re-occupying its shard on every round.
	if len(stuck) > 0 {
		victim := stuck[0]
		for _, tx := range stuck[1:] {
			if tx > victim {
				victim = tx
			}
		}
		return victim, true
	}
	return 0, false
}

// Wounded implements Scheduler: collect and clear every shard's wounds.
func (s *Sharded) Wounded() []int {
	var out []int
	seen := map[int]bool{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, w := range sh.inner.Wounded() {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
		sh.mu.Unlock()
	}
	return out
}
