package online

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// ConcurrentScheduler is a scheduler safe for concurrent use from multiple
// dispatch goroutines. It extends the single-threaded Scheduler contract
// (so every ConcurrentScheduler also works under the replay harness) with
// the shard partition the runtime routes requests by: steps on variables of
// different shards may be offered concurrently; calls on behalf of one
// transaction must still not overlap with each other.
type ConcurrentScheduler interface {
	Scheduler
	// NumShards returns the number of independent shards.
	NumShards() int
	// ShardOf returns the shard owning variable v. The simulator sends each
	// step request to the dispatch loop of ShardOf(step.Var).
	ShardOf(v core.Var) int
}

// WaitsForProvider is implemented by schedulers that can expose their
// waits-for graph at transaction granularity; the Sharded combinator merges
// per-shard graphs through it to detect cross-shard deadlock cycles that no
// single shard can see.
type WaitsForProvider interface {
	WaitsForTxs() map[int][]int
}

// shardOfVar hash-partitions a variable across n shards. It is
// lockmgr.ShardOfVar, the single partition function, so lock state and
// dispatch always agree on ownership.
//
//optcc:hotpath
func shardOfVar(v core.Var, n int) int { return lockmgr.ShardOfVar(v, n) }

// Mutexed wraps a single-threaded Scheduler behind one mutex: the
// centralized baseline of the ConcurrentScheduler contract (one shard, all
// requests serialized). It realizes exactly the inner scheduler's fixpoint.
type Mutexed struct {
	mu     sync.Mutex
	inner  Scheduler
	outBuf []Decision // TryBatch scratch, reused under mu
}

// NewMutexed returns the inner scheduler behind a single global mutex.
func NewMutexed(inner Scheduler) *Mutexed { return &Mutexed{inner: inner} }

// Name implements Scheduler.
func (m *Mutexed) Name() string { return "mutexed/" + m.inner.Name() }

// Begin implements Scheduler.
func (m *Mutexed) Begin(sys *core.System) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Begin(sys)
}

// Try implements Scheduler.
func (m *Mutexed) Try(id core.StepID) Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Try(id)
}

// TryBatch implements BatchTrier: the whole batch is decided under one
// mutex acquisition instead of one per request. The returned slice is the
// wrapper's reusable scratch — valid until the next TryBatch, which is the
// single dispatch loop's usage on this one-shard scheduler.
func (m *Mutexed) TryBatch(ids []core.StepID) []Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.outBuf[:0]
	for _, id := range ids {
		out = append(out, m.inner.Try(id))
	}
	m.outBuf = out
	return out
}

// Commit implements Scheduler.
func (m *Mutexed) Commit(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Commit(tx)
}

// Abort implements Scheduler.
func (m *Mutexed) Abort(tx int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inner.Abort(tx)
}

// Victim implements Scheduler.
func (m *Mutexed) Victim(stuck []int) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Victim(stuck)
}

// Wounded implements Scheduler.
func (m *Mutexed) Wounded() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inner.Wounded()
}

// NumShards implements ConcurrentScheduler.
func (m *Mutexed) NumShards() int { return 1 }

// ShardOf implements ConcurrentScheduler.
func (m *Mutexed) ShardOf(core.Var) int { return 0 }

// railNode identifies a transaction incarnation in the cross-shard rail.
type railNode struct {
	tx, epoch int
}

// railRec is one granted step recorded in a shard's log for conflict-edge
// computation (conflicts are always intra-shard: a conflict needs a shared
// variable, and every variable belongs to exactly one shard).
type railRec struct {
	n    railNode
	step core.Step
}

// shardSlot is one shard of a Sharded scheduler: a shard-local
// single-threaded scheduler plus the grant log feeding the rail. srcBuf
// and addBuf are reusable scratch for the rail conversation (conflict
// sources and provisionally added edges), valid under mu — the per-step
// rail path allocates nothing in steady state.
type shardSlot struct {
	mu     sync.Mutex
	inner  Scheduler
	log    []railRec
	srcBuf []railNode
	addBuf []railNode
	// outBuf is the TryBatch decision scratch of batches whose first step
	// lands on this shard (concurrent batches start on distinct shards, so
	// the buffer has one writer at a time).
	outBuf []Decision
}

// Sharded partitions variables across n shard-local copies of a
// single-threaded scheduler. Requests touch only the shard owning their
// variable, so independent conflicts are decided in parallel.
//
// Cross-shard ordering rail: per-shard decisions alone cannot rule out a
// conflict cycle threading through several shards (each edge lives inside
// one shard, but multi-shard transactions connect them). When the system
// spans more than one shard, the rail keeps a transaction-level conflict
// graph; a grant whose new edges would close a cycle is delayed before the
// shard scheduler sees it. Edges are inserted atomically with the cycle
// check and withdrawn if the shard scheduler rejects the step, so the set
// of actually granted steps always stays acyclic and every complete run is
// conflict-serializable. The graph is partitioned across lock stripes with
// a union-style component map (see stripedRail): reservations touching
// disjoint components never contend, and a conflict-free reservation takes
// no rail lock at all. Cross-shard deadlocks are broken via the merged
// waits-for view (WaitsForProvider) in Victim.
//
// On a single-shard system the rail is inert and every call reduces to a
// locked delegation, so each wrapper realizes exactly the fixpoint set of
// its single-threaded original — the replay-equivalence property the tests
// check.
type Sharded struct {
	n           int
	railStripes int
	factory     func() Scheduler
	name        string

	sys      *core.System
	shards   []*shardSlot
	txShards [][]int

	railOn bool
	rail   *stripedRail
	// railBufs pools the removed-node buffers of commit/abort rail calls
	// (concurrent commit lanes each borrow one), so retiring a node — the
	// per-transaction rail cost — allocates nothing in steady state.
	railBufs sync.Pool
}

// NewSharded returns a combinator running one factory-built scheduler per
// shard (minimum 1) with the cross-shard ordering rail striped as widely as
// the shard count. The display name is computed eagerly from one probe
// instance: lazy computation in Name would race with concurrent dispatch
// when a run is reported while in flight.
func NewSharded(shards int, factory func() Scheduler) *Sharded {
	return NewShardedRail(shards, shards, factory)
}

// NewShardedRail is NewSharded with an explicit rail stripe count
// (minimum 1; 1 degenerates to a single-mutex rail, the PR 1 baseline
// BenchmarkRailStripes compares against).
func NewShardedRail(shards, railStripes int, factory func() Scheduler) *Sharded {
	if shards < 1 {
		shards = 1
	}
	if railStripes < 1 {
		railStripes = 1
	}
	return &Sharded{
		n:           shards,
		railStripes: railStripes,
		factory:     factory,
		name:        fmt.Sprintf("sharded(%d)/%s", shards, factory().Name()),
	}
}

// Name implements Scheduler. Safe for concurrent use: the name is fixed at
// construction and never written afterwards.
func (s *Sharded) Name() string { return s.name }

// NumShards implements ConcurrentScheduler.
func (s *Sharded) NumShards() int { return s.n }

// ShardOf implements ConcurrentScheduler.
func (s *Sharded) ShardOf(v core.Var) int { return shardOfVar(v, s.n) }

// Begin implements Scheduler.
func (s *Sharded) Begin(sys *core.System) {
	s.sys = sys
	s.shards = make([]*shardSlot, s.n)
	for i := range s.shards {
		s.shards[i] = &shardSlot{inner: s.factory()}
		s.shards[i].inner.Begin(sys)
	}
	used := map[int]bool{}
	for _, v := range sys.Vars() {
		used[s.ShardOf(v)] = true
	}
	s.railOn = len(used) > 1
	s.txShards = make([][]int, sys.NumTxs())
	for tx := range s.txShards {
		seen := map[int]bool{}
		for _, st := range sys.Txs[tx].Steps {
			seen[s.ShardOf(st.Var)] = true
		}
		for sh := range seen {
			s.txShards[tx] = append(s.txShards[tx], sh)
		}
		sort.Ints(s.txShards[tx])
	}
	s.rail = newStripedRail(s.railStripes, sys.NumTxs())
}

// Try implements Scheduler: route the step to the shard owning its
// variable; on multi-shard systems, clear the grant with the rail first.
func (s *Sharded) Try(id core.StepID) Decision {
	sh := s.shards[s.ShardOf(s.sys.Step(id).Var)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.tryLocked(sh, id)
}

// TryBatch implements BatchTrier. Requests are decided strictly in batch
// order — rail edges are global, so reordering could change which grant
// closes a cycle — but one shard-mutex acquisition is shared across every
// consecutive run of same-shard requests (the rail is still consulted per
// step: edge insertion must stay atomic with its cycle check). The dispatch
// loops send same-shard batches, so the common case is a single mutex
// acquisition for the whole batch. The returned slice is the first shard's
// reusable decision scratch — valid until that shard's next TryBatch, and
// private to each concurrent caller because concurrent batches must be on
// different shards (the BatchTrier contract).
func (s *Sharded) TryBatch(ids []core.StepID) []Decision {
	first := s.shards[s.ShardOf(s.sys.Step(ids[0]).Var)]
	out := first.outBuf[:0]
	held := -1
	for _, id := range ids {
		si := s.ShardOf(s.sys.Step(id).Var)
		if si != held {
			if held >= 0 {
				s.shards[held].mu.Unlock()
			}
			s.shards[si].mu.Lock()
			held = si
		}
		out = append(out, s.tryLocked(s.shards[si], id))
	}
	if held >= 0 {
		s.shards[held].mu.Unlock()
	}
	first.outBuf = out
	return out
}

// tryLocked decides one step against its shard scheduler, clearing the
// grant with the rail first on multi-shard systems. Caller holds sh.mu,
// which also makes the slot's scratch buffers (conflict sources, added
// edges) safe to reuse — the whole rail conversation is allocation-free in
// steady state.
func (s *Sharded) tryLocked(sh *shardSlot, id core.StepID) Decision {
	step := s.sys.Step(id)
	if !s.railOn {
		return sh.inner.Try(id)
	}
	me := s.rail.node(id.Tx)
	sh.srcBuf = sh.srcBuf[:0]
	for _, rec := range sh.log {
		if rec.n == me || slices.Contains(sh.srcBuf, rec.n) {
			continue
		}
		if conflict.Conflicts(rec.step, step) {
			sh.srcBuf = append(sh.srcBuf, rec.n)
		}
	}
	added, ok := s.rail.reserve(me, sh.srcBuf, sh.addBuf[:0])
	if added != nil {
		sh.addBuf = added
	}
	if !ok {
		return Delay
	}
	d := sh.inner.Try(id)
	if d == Grant {
		sh.log = append(sh.log, railRec{n: me, step: step})
		return Grant
	}
	s.rail.withdraw(me, added)
	return d
}

// Commit implements Scheduler: notify every shard the transaction touched,
// then retire its rail node (through a pooled removed-node buffer, so the
// per-commit rail conversation allocates nothing).
func (s *Sharded) Commit(tx int) {
	for _, si := range s.txShards[tx] {
		sh := s.shards[si]
		sh.mu.Lock()
		sh.inner.Commit(tx)
		sh.mu.Unlock()
	}
	if !s.railOn {
		return
	}
	bp := s.railBuf()
	*bp = s.rail.commit(tx, (*bp)[:0])
	s.purgeLogs(*bp)
	s.railBufs.Put(bp)
}

// Abort implements Scheduler: notify touched shards, drop the incarnation's
// rail node and start a fresh epoch.
func (s *Sharded) Abort(tx int) {
	for _, si := range s.txShards[tx] {
		sh := s.shards[si]
		sh.mu.Lock()
		sh.inner.Abort(tx)
		sh.mu.Unlock()
	}
	if !s.railOn {
		return
	}
	bp := s.railBuf()
	*bp = s.rail.abortTx(tx, (*bp)[:0])
	s.purgeLogs(*bp)
	s.railBufs.Put(bp)
}

// railBuf borrows a removed-node buffer from the pool.
func (s *Sharded) railBuf() *[]railNode {
	if b, ok := s.railBufs.Get().(*[]railNode); ok {
		return b
	}
	return new([]railNode)
}

// purgeLogs drops the removed nodes' entries from every shard grant log.
// removed is a handful of nodes (a retired incarnation plus its pruned
// component members), so a linear membership scan beats building a set.
func (s *Sharded) purgeLogs(removed []railNode) {
	if len(removed) == 0 {
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		kept := sh.log[:0]
		for _, rec := range sh.log {
			if !slices.Contains(removed, rec.n) {
				kept = append(kept, rec)
			}
		}
		sh.log = kept
		sh.mu.Unlock()
	}
}

// Victim implements Scheduler: first look for a cycle in the merged global
// waits-for graph (cross-shard deadlocks), then fall back to the shard
// schedulers' own heuristics.
func (s *Sharded) Victim(stuck []int) (int, bool) {
	merged := map[int][]int{}
	provided := false
	for _, sh := range s.shards {
		sh.mu.Lock()
		if p, ok := sh.inner.(WaitsForProvider); ok {
			provided = true
			for w, bs := range p.WaitsForTxs() {
				merged[w] = append(merged[w], bs...)
			}
		}
		sh.mu.Unlock()
	}
	if provided {
		g := make(map[lockmgr.TxID][]lockmgr.TxID, len(merged))
		for w, bs := range merged {
			out := make([]lockmgr.TxID, len(bs))
			for i, b := range bs {
				out[i] = lockmgr.TxID(b)
			}
			g[lockmgr.TxID(w)] = out
		}
		if txCycle, ok := lockmgr.FindCycle(g); ok {
			cycle := make([]int, len(txCycle))
			for i, tx := range txCycle {
				cycle[i] = int(tx)
			}
			// Highest index = youngest registration on every current shard
			// scheduler (Begin registers 0..n−1 in order).
			victim := cycle[0]
			for _, tx := range cycle[1:] {
				if tx > victim {
					victim = tx
				}
			}
			return victim, true
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		tx, ok := sh.inner.Victim(stuck)
		sh.mu.Unlock()
		if ok {
			return tx, true
		}
	}
	// No shard has a view of the blockage (e.g. shard-local serial, which
	// does not track waiters). Abort the youngest stuck transaction: the
	// harness retries survivors in ascending order, so the freed shards go
	// to the transactions it drains first — aborting the oldest instead can
	// livelock with the victim re-occupying its shard on every round.
	if len(stuck) > 0 {
		victim := stuck[0]
		for _, tx := range stuck[1:] {
			if tx > victim {
				victim = tx
			}
		}
		return victim, true
	}
	return 0, false
}

// Wounded implements Scheduler: collect and clear every shard's wounds.
// The common call finds none (the dispatch loops poll after every decide),
// so the dedup set is allocated lazily — a wound-free poll allocates
// nothing.
func (s *Sharded) Wounded() []int {
	var out []int
	var seen map[int]bool
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, w := range sh.inner.Wounded() {
			if seen == nil {
				seen = map[int]bool{}
			}
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
		sh.mu.Unlock()
	}
	return out
}
