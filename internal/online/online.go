// Package online implements online schedulers: concurrency controls that
// process an arriving stream of step requests one at a time, granting,
// delaying or aborting each. These are the practical mechanisms the
// paper's theory ranks — each realizes some fixpoint set between the
// serial schedules (minimum information) and SR(T) (complete syntactic
// information).
//
// The package provides a replay harness (Replay) that feeds a complete
// request history h ∈ H to a scheduler, retries delayed requests after
// every event, restarts aborted transactions, and reports whether h passed
// entirely undelayed — the membership test for the scheduler's realized
// fixpoint set, compared against theory in internal/fixpoint and the
// benchmarks.
//
// Implemented schedulers:
//
//   - Serial: one transaction at a time (Theorem 2's optimum for minimum
//     information).
//   - Strict 2PL: lock at first access, hold to commit, deadlock handling
//     per lockmgr.Policy.
//   - Conservative 2PL: predeclared lock set acquired atomically at start
//     (no deadlocks).
//   - SGT: serialization-graph testing; grants exactly while the conflict
//     graph stays acyclic, so its fixpoint is the CSR set.
//   - TO: Basic timestamp ordering, optionally with the Thomas write rule.
//   - OCC: optimistic execution with backward validation at commit
//     (Kung–Robinson style serial validation).
//
// The concurrent runtime's contract and combinators (ConcurrentScheduler,
// Mutexed, Sharded with the striped cross-shard ordering rail) live in
// concurrent.go/rail.go, with two natively concurrent schedulers:
// ConcurrentStrict2PL (sharded lock table) and ConcurrentTO (lock-free
// sharded atomic timestamp table).
package online

import (
	"fmt"

	"optcc/internal/core"
	"optcc/internal/storage"
)

// Decision is a scheduler's response to a step request.
type Decision int

const (
	// Grant: the step executes now.
	Grant Decision = iota
	// Delay: the request waits; it will be retried after the next event.
	Delay
	// AbortTx: the requesting transaction must roll back and restart.
	AbortTx
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Grant:
		return "grant"
	case Delay:
		return "delay"
	case AbortTx:
		return "abort"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Scheduler is the policy interface driven by the replay harness and the
// simulator. Implementations are single-threaded; callers serialize access.
type Scheduler interface {
	// Name identifies the scheduler.
	Name() string
	// Begin resets all state for a run over the system.
	Begin(sys *core.System)
	// Try asks whether step id — necessarily the next unexecuted step of
	// its transaction — may execute now. Grant means it has executed (the
	// scheduler updates its bookkeeping). Delay queues it. AbortTx tells
	// the caller to roll the transaction back and restart it later.
	Try(id core.StepID) Decision
	// Commit notifies that the transaction completed its last step.
	Commit(tx int)
	// Abort notifies that the transaction's executed steps are discarded
	// (it will restart from its first step with a fresh identity).
	Abort(tx int)
	// Victim nominates a transaction to abort when the harness detects
	// that no queued request can progress (deadlock or permanent block).
	// It is called with the stuck transactions; ok=false defers to the
	// harness default (the first stuck transaction).
	Victim(stuck []int) (tx int, ok bool)
	// Wounded returns and clears transactions the scheduler decided to
	// abort preemptively (wound-wait); the caller rolls them back.
	Wounded() []int
}

// Event records one executed step in a replay.
type Event struct {
	Step core.StepID
	// Attempt is 1 for the first execution, incremented per restart of the
	// transaction.
	Attempt int
}

// Result reports a replay.
type Result struct {
	// Output lists executed steps in execution order, including repeats
	// from restarts.
	Output []Event
	// Delays counts requests that could not be granted when first offered
	// (including re-offers after restarts).
	Delays int
	// Aborts counts transaction restarts.
	Aborts int
	// Undelayed reports that the history passed exactly as it arrived: no
	// delay, no abort. This is fixpoint membership.
	Undelayed bool
	// Completed reports that every transaction eventually committed.
	Completed bool
}

// FinalSchedule returns the de-duplicated final schedule: the steps of each
// transaction's last (committed) attempt, in execution order. It is a legal
// schedule of the system when the replay completed.
func (r *Result) FinalSchedule(sys *core.System) core.Schedule {
	attempts := make([]int, sys.NumTxs())
	for _, e := range r.Output {
		if e.Attempt > attempts[e.Step.Tx] {
			attempts[e.Step.Tx] = e.Attempt
		}
	}
	var h core.Schedule
	for _, e := range r.Output {
		if e.Attempt == attempts[e.Step.Tx] {
			h = append(h, e.Step)
		}
	}
	return h
}

// Replay feeds the complete history h to the scheduler: each arrival is
// offered, delayed requests are retried after every grant/abort, and when
// the stream is exhausted stuck transactions are broken by aborting a
// victim. maxRestarts bounds per-transaction restarts (0 means 10).
func Replay(sys *core.System, sched Scheduler, h core.Schedule, maxRestarts int) (*Result, error) {
	return ReplayOn(sys, sched, h, maxRestarts, nil)
}

// ReplayOn is Replay against real storage: every granted step is applied to
// the backend, a commit discards the transaction's undo log, and every
// abort path rolls the backend back before the scheduler is notified — the
// same rollback-before-release order as the concurrent runtime in
// internal/sim. With a nil backend it is exactly Replay. Because the replay
// is single-threaded, execution order equals grant order, so the committed
// backend state equals core.Exec of Result.FinalSchedule for any strict
// scheduler (see internal/storage for the invariant's scope).
func ReplayOn(sys *core.System, sched Scheduler, h core.Schedule, maxRestarts int, be storage.Backend) (*Result, error) {
	if !h.Legal(sys.Format()) {
		return nil, fmt.Errorf("online: history %v not legal for format %v", h, sys.Format())
	}
	if maxRestarts <= 0 {
		maxRestarts = 10
	}
	if be != nil {
		if !sys.Executable() {
			return nil, fmt.Errorf("online: backend replay needs an executable system")
		}
		be.Reset(sys.InitialStates()[0])
	}
	sched.Begin(sys)
	format := sys.Format()
	n := sys.NumTxs()
	arrived := make([]int, n)  // steps arrived per tx
	executed := make([]int, n) // steps executed in current attempt
	attempt := make([]int, n)
	committed := make([]bool, n)
	// backoff marks freshly aborted transactions: they are not retried
	// until another transaction makes progress or one of their own
	// requests arrives, which prevents abort livelock under no-wait and
	// wait-die.
	backoff := make([]bool, n)
	for i := range attempt {
		attempt[i] = 1
	}
	res := &Result{Undelayed: true}

	// apply executes a granted step against the backend; rollback undoes a
	// transaction before the scheduler learns of its abort. Both are no-ops
	// without a backend.
	var applyErr error
	apply := func(id core.StepID) {
		if be == nil {
			return
		}
		if err := be.ApplyStep(id.Tx, sys.Step(id)); err != nil && applyErr == nil {
			applyErr = err
		}
	}
	rollback := func(tx int) {
		if be != nil {
			be.Rollback(tx)
		}
	}

	// applyWounds rolls back transactions the scheduler wounded.
	applyWounds := func() bool {
		any := false
		for _, w := range sched.Wounded() {
			if w < 0 || w >= n || committed[w] || attempt[w] > maxRestarts {
				continue
			}
			rollback(w)
			sched.Abort(w)
			executed[w] = 0
			attempt[w]++
			res.Aborts++
			res.Undelayed = false
			any = true
		}
		return any
	}

	execute := func(tx int) bool {
		// Try to run tx forward as far as arrivals allow.
		progressed := false
		for !committed[tx] && executed[tx] < arrived[tx] {
			id := core.StepID{Tx: tx, Idx: executed[tx]}
			d := sched.Try(id)
			if applyWounds() {
				progressed = true
			}
			switch d {
			case Grant:
				apply(id)
				res.Output = append(res.Output, Event{Step: id, Attempt: attempt[tx]})
				executed[tx]++
				progressed = true
				for other := 0; other < n; other++ {
					if other != tx {
						backoff[other] = false
					}
				}
				if executed[tx] == format[tx] {
					committed[tx] = true
					if be != nil {
						be.Commit(tx)
					}
					sched.Commit(tx)
				}
			case Delay:
				return progressed
			case AbortTx:
				if attempt[tx] > maxRestarts {
					return progressed
				}
				rollback(tx)
				sched.Abort(tx)
				executed[tx] = 0
				attempt[tx]++
				res.Aborts++
				res.Undelayed = false
				backoff[tx] = true
				return true
			}
		}
		return progressed
	}

	drain := func() {
		for {
			progressed := false
			for tx := 0; tx < n; tx++ {
				if !committed[tx] && !backoff[tx] && executed[tx] < arrived[tx] {
					if execute(tx) {
						progressed = true
					}
				}
			}
			if !progressed {
				return
			}
		}
	}

	for _, id := range h {
		arrived[id.Tx]++
		backoff[id.Tx] = false
		before := executed[id.Tx]
		execute(id.Tx)
		if executed[id.Tx] <= before && !committed[id.Tx] {
			res.Delays++
			res.Undelayed = false
		}
		drain()
	}
	// Stream exhausted: break deadlocks until everything commits or a
	// restart budget is blown.
	for {
		for tx := range backoff {
			backoff[tx] = false
		}
		drain()
		var stuck []int
		for tx := 0; tx < n; tx++ {
			if !committed[tx] {
				stuck = append(stuck, tx)
			}
		}
		if len(stuck) == 0 {
			res.Completed = true
			break
		}
		victim, ok := sched.Victim(stuck)
		if !ok {
			victim = stuck[0]
		}
		if attempt[victim] > maxRestarts {
			break
		}
		rollback(victim)
		sched.Abort(victim)
		executed[victim] = 0
		attempt[victim]++
		res.Aborts++
		res.Undelayed = false
	}
	if applyErr != nil {
		return res, fmt.Errorf("online: %s: %w", sched.Name(), applyErr)
	}
	if !res.Completed {
		return res, fmt.Errorf("online: %s failed to complete history %v after restarts", sched.Name(), h)
	}
	return res, nil
}

// Fixpoint enumerates a set of histories and reports which pass the
// scheduler undelayed. The callback receives every history with its
// membership verdict.
func Fixpoint(sys *core.System, sched Scheduler, histories []core.Schedule, visit func(h core.Schedule, in bool)) (count int, err error) {
	for _, h := range histories {
		res, err := Replay(sys, sched, h, 0)
		if err != nil {
			return count, err
		}
		if res.Undelayed {
			count++
		}
		if visit != nil {
			visit(h, res.Undelayed)
		}
	}
	return count, nil
}
