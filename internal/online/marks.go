package online

import (
	"sync"
	"sync/atomic"

	"optcc/internal/core"
)

// This file holds the per-variable mark tables behind the natively
// concurrent SGT and OCC schedulers — siblings of internal/tstable's
// timestamp table, with the same layout discipline: the variable set is
// fixed per run, so the tables pre-build immutable per-shard maps from
// variable to a heap-allocated entry (lookups are pure reads, no lock, no
// sync.Map on the hot path), partitioned with the engine's single
// partition function so table layout agrees with dispatch routing.
// Variables outside the declared set (none in normal operation) fall back
// to a sync.Map so the tables degrade safely instead of panicking.
//
// What the entries hold differs per scheduler, and so does who may touch
// them:
//
//   - sgtEntry (ConcurrentSGT) keeps the variable's live reader and writer
//     incarnation lists plus the source-collection scratch. These are
//     plain slices with no synchronization at all: the
//     ConcurrentScheduler contract routes every step of one variable
//     through the dispatch loop of its shard, so the only goroutine that
//     ever reads or mutates a variable's sgtEntry is that loop. Dead
//     incarnations (aborted, or committed and pruned from the graph) are
//     compacted out lazily by the same loop on its next visit.
//   - occEntry (ConcurrentOCC) is read across shards by validators, so
//     its writer-mark list is published copy-on-write through an atomic
//     pointer: the owning dispatch loop builds a fresh slice (compacting
//     dead marks) and stores it; validators load a consistent snapshot
//     lock-free. Marks of concurrently-validating peers that entered
//     validation earlier are always visible in the snapshot — the mark
//     store precedes the peer's validation-epoch draw in the
//     sequentially-consistent atomic order.
type sgtEntry struct {
	readers []railNode
	writers []railNode
	srcBuf  []railNode // source-collection scratch, reused across Trys
}

// sgtMarks is the sharded variable→sgtEntry table.
type sgtMarks struct {
	shards []map[core.Var]*sgtEntry
	extra  sync.Map // core.Var → *sgtEntry, for undeclared variables only
}

func newSGTMarks(vars []core.Var, shards int) *sgtMarks {
	if shards < 1 {
		shards = 1
	}
	t := &sgtMarks{shards: make([]map[core.Var]*sgtEntry, shards)}
	for i := range t.shards {
		t.shards[i] = map[core.Var]*sgtEntry{}
	}
	for _, v := range vars {
		t.shards[shardOfVar(v, shards)][v] = &sgtEntry{}
	}
	return t
}

// entry returns the mark entry of v, creating a fallback entry if v was
// not declared at construction. The declared-variable path is one
// immutable map lookup.
//
//optcc:hotpath
func (t *sgtMarks) entry(v core.Var) *sgtEntry {
	if e, ok := t.shards[shardOfVar(v, len(t.shards))][v]; ok {
		return e
	}
	//cclint:ignore hotpath undeclared-variable fallback; unreachable when the run declares its variable set
	if e, ok := t.extra.Load(v); ok {
		return e.(*sgtEntry)
	}
	//cclint:ignore hotpath undeclared-variable fallback; unreachable when the run declares its variable set
	e, _ := t.extra.LoadOrStore(v, &sgtEntry{})
	return e.(*sgtEntry)
}

// reset empties every mark list, preserving entry layout and slice
// capacity. Only safe between runs (Begin), when no dispatch loop runs.
func (t *sgtMarks) reset() {
	for _, m := range t.shards {
		for _, e := range m {
			e.readers = e.readers[:0]
			e.writers = e.writers[:0]
		}
	}
	t.extra.Range(func(_, v any) bool {
		e := v.(*sgtEntry)
		e.readers = e.readers[:0]
		e.writers = e.writers[:0]
		return true
	})
}

// occWriterMark records one incarnation's first write of a variable: who,
// which epoch, and the grant stamp of that first write.
type occWriterMark struct {
	tx    int
	epoch int
	stamp int64
}

// occEntry holds one variable's copy-on-write writer-mark list.
type occEntry struct {
	writers atomic.Pointer[[]occWriterMark]
}

// occMarks is the sharded variable→occEntry table.
type occMarks struct {
	shards []map[core.Var]*occEntry
	extra  sync.Map // core.Var → *occEntry, for undeclared variables only
}

func newOCCMarks(vars []core.Var, shards int) *occMarks {
	if shards < 1 {
		shards = 1
	}
	t := &occMarks{shards: make([]map[core.Var]*occEntry, shards)}
	for i := range t.shards {
		t.shards[i] = map[core.Var]*occEntry{}
	}
	for _, v := range vars {
		t.shards[shardOfVar(v, shards)][v] = &occEntry{}
	}
	return t
}

// entry returns the mark entry of v, creating a fallback entry if v was
// not declared at construction. The declared-variable path is one
// immutable map lookup.
//
//optcc:hotpath
func (t *occMarks) entry(v core.Var) *occEntry {
	if e, ok := t.shards[shardOfVar(v, len(t.shards))][v]; ok {
		return e
	}
	//cclint:ignore hotpath undeclared-variable fallback; unreachable when the run declares its variable set
	if e, ok := t.extra.Load(v); ok {
		return e.(*occEntry)
	}
	//cclint:ignore hotpath undeclared-variable fallback; unreachable when the run declares its variable set
	e, _ := t.extra.LoadOrStore(v, &occEntry{})
	return e.(*occEntry)
}

// reset drops every writer-mark list. Only safe between runs (Begin).
func (t *occMarks) reset() {
	for _, m := range t.shards {
		for _, e := range m {
			e.writers.Store(nil)
		}
	}
	t.extra.Range(func(_, v any) bool {
		v.(*occEntry).writers.Store(nil)
		return true
	})
}
