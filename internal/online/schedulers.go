package online

import (
	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// base provides default no-op Scheduler methods.
type base struct{}

func (base) Victim([]int) (int, bool) { return 0, false }
func (base) Wounded() []int           { return nil }

// Serial admits one transaction at a time: the optimal scheduler for
// minimum information (Theorem 2). Its fixpoint set is exactly the serial
// schedules.
type Serial struct {
	base
	open      int
	openSteps int
	format    []int
}

// NewSerial returns a serial scheduler.
func NewSerial() *Serial { return &Serial{} }

// Name implements Scheduler.
func (s *Serial) Name() string { return "serial" }

// Begin implements Scheduler.
func (s *Serial) Begin(sys *core.System) {
	s.open = -1
	s.openSteps = 0
	s.format = sys.Format()
}

// Try implements Scheduler.
func (s *Serial) Try(id core.StepID) Decision {
	if s.open != -1 && s.open != id.Tx {
		return Delay
	}
	s.open = id.Tx
	s.openSteps++
	return Grant
}

// Commit implements Scheduler.
func (s *Serial) Commit(tx int) {
	if s.open == tx {
		s.open = -1
		s.openSteps = 0
	}
}

// Abort implements Scheduler.
func (s *Serial) Abort(tx int) {
	if s.open == tx {
		s.open = -1
		s.openSteps = 0
	}
}

// lockMode maps a step kind to the lock mode it needs.
func lockMode(k core.StepKind) lockmgr.Mode {
	if k == core.Read {
		return lockmgr.Shared
	}
	return lockmgr.Exclusive
}

// Strict2PL locks each variable at a transaction's first access in the
// required mode and holds all locks to commit (strict two-phase locking),
// with deadlocks handled by the configured lockmgr policy.
type Strict2PL struct {
	sys     *core.System
	policy  lockmgr.Policy
	table   *lockmgr.Table
	wounded []int
}

// NewStrict2PL returns a strict 2PL scheduler with the given deadlock
// policy.
func NewStrict2PL(policy lockmgr.Policy) *Strict2PL {
	return &Strict2PL{policy: policy}
}

// Name implements Scheduler.
func (s *Strict2PL) Name() string { return "strict-2pl/" + s.policy.String() }

// Begin implements Scheduler.
func (s *Strict2PL) Begin(sys *core.System) {
	s.sys = sys
	s.table = lockmgr.NewTable(s.policy)
	s.wounded = nil
	for tx := 0; tx < sys.NumTxs(); tx++ {
		s.table.Register(lockmgr.TxID(tx))
	}
}

// Try implements Scheduler.
func (s *Strict2PL) Try(id core.StepID) Decision {
	step := s.sys.Step(id)
	need := lockMode(step.Kind)
	if held, ok := s.table.Holds(lockmgr.TxID(id.Tx), step.Var); ok {
		if held == lockmgr.Exclusive || need == lockmgr.Shared {
			return Grant
		}
	}
	r := s.table.Acquire(lockmgr.TxID(id.Tx), step.Var, need)
	for _, w := range r.Wounded {
		s.wounded = append(s.wounded, int(w))
	}
	switch r.Status {
	case lockmgr.Granted:
		return Grant
	case lockmgr.AbortSelf:
		return AbortTx
	default:
		return Delay
	}
}

// Commit implements Scheduler.
func (s *Strict2PL) Commit(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
}

// Abort implements Scheduler.
func (s *Strict2PL) Abort(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
}

// Victim implements Scheduler: break a detected waits-for cycle by
// aborting its youngest member.
func (s *Strict2PL) Victim(stuck []int) (int, bool) {
	if cycle, found := s.table.DetectDeadlock(); found {
		return int(s.table.ChooseVictim(cycle)), true
	}
	return 0, false
}

// Wounded implements Scheduler.
func (s *Strict2PL) Wounded() []int {
	w := s.wounded
	s.wounded = nil
	return w
}

// WaitsForTxs exposes the lock table's waits-for graph at transaction
// granularity. The Sharded combinator merges the per-shard graphs into the
// global view where cross-shard deadlock cycles live.
func (s *Strict2PL) WaitsForTxs() map[int][]int {
	out := map[int][]int{}
	for w, blockers := range s.table.WaitsFor() {
		bs := make([]int, 0, len(blockers))
		for _, b := range blockers {
			bs = append(bs, int(b))
		}
		out[int(w)] = bs
	}
	return out
}

// Conservative2PL predeclares each transaction's full lock set (from the
// syntax) and acquires it atomically before the first step; transactions
// never hold locks while waiting, so deadlock is impossible.
type Conservative2PL struct {
	base
	sys    *core.System
	table  *lockmgr.Table
	holds  []bool
	needs  []map[core.Var]lockmgr.Mode
	format []int
	done   []int
}

// NewConservative2PL returns a conservative (static) 2PL scheduler.
func NewConservative2PL() *Conservative2PL { return &Conservative2PL{} }

// Name implements Scheduler.
func (s *Conservative2PL) Name() string { return "conservative-2pl" }

// Begin implements Scheduler.
func (s *Conservative2PL) Begin(sys *core.System) {
	s.sys = sys
	s.table = lockmgr.NewTable(lockmgr.Detect)
	s.format = sys.Format()
	n := sys.NumTxs()
	s.holds = make([]bool, n)
	s.done = make([]int, n)
	s.needs = make([]map[core.Var]lockmgr.Mode, n)
	for tx := 0; tx < n; tx++ {
		s.table.Register(lockmgr.TxID(tx))
		need := map[core.Var]lockmgr.Mode{}
		for _, st := range sys.Txs[tx].Steps {
			m := lockMode(st.Kind)
			if cur, ok := need[st.Var]; !ok || (cur == lockmgr.Shared && m == lockmgr.Exclusive) {
				need[st.Var] = m
			}
		}
		s.needs[tx] = need
	}
}

// Try implements Scheduler.
func (s *Conservative2PL) Try(id core.StepID) Decision {
	if !s.holds[id.Tx] {
		// All-or-nothing acquisition: check availability first.
		for v, m := range s.needs[id.Tx] {
			for holder, hm := range s.table.HeldBy(v) {
				if int(holder) == id.Tx {
					continue
				}
				if !lockmgr.Compatible(hm, m) {
					return Delay
				}
			}
			if s.table.QueueLen(v) > 0 {
				return Delay
			}
		}
		for v, m := range s.needs[id.Tx] {
			if r := s.table.Acquire(lockmgr.TxID(id.Tx), v, m); r.Status != lockmgr.Granted {
				// Cannot happen: availability was just checked.
				return Delay
			}
		}
		s.holds[id.Tx] = true
	}
	s.done[id.Tx]++
	return Grant
}

// Commit implements Scheduler.
func (s *Conservative2PL) Commit(tx int) { s.release(tx) }

// Abort implements Scheduler.
func (s *Conservative2PL) Abort(tx int) { s.release(tx) }

func (s *Conservative2PL) release(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
	s.holds[tx] = false
	s.done[tx] = 0
}
