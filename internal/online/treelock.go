package online

import (
	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// TreeLock is the tree-locking protocol of Silberschatz & Kedem cited in
// Section 5.5: for transactions whose accesses descend a tree of variables
// (root first, each subsequent variable a child of the previous), a lock
// may be taken on a node only while holding its parent, after which the
// parent can be released immediately — lock coupling. The protocol is not
// two-phase, never deadlocks on descending transactions, and releases hot
// upper-level variables far earlier than 2PL; it is the canonical example
// of a locking policy that beats 2PL by exploiting structured data.
//
// The scheduler validates nothing about tree shape; it simply releases the
// previous step's lock once the next is granted. Use it with workloads
// whose transactions access root-to-leaf paths (workload.PathWorkload),
// where that behaviour implements the tree protocol exactly.
type TreeLock struct {
	base
	sys   *core.System
	table *lockmgr.Table
}

// NewTreeLock returns a tree-locking (lock-coupling) scheduler.
func NewTreeLock() *TreeLock { return &TreeLock{} }

// Name implements Scheduler.
func (s *TreeLock) Name() string { return "tree-lock" }

// Begin implements Scheduler.
func (s *TreeLock) Begin(sys *core.System) {
	s.sys = sys
	s.table = lockmgr.NewTable(lockmgr.Detect)
	for tx := 0; tx < sys.NumTxs(); tx++ {
		s.table.Register(lockmgr.TxID(tx))
	}
}

// Try implements Scheduler.
func (s *TreeLock) Try(id core.StepID) Decision {
	step := s.sys.Step(id)
	if held, ok := s.table.Holds(lockmgr.TxID(id.Tx), step.Var); ok && held == lockmgr.Exclusive {
		s.releasePrev(id)
		return Grant
	}
	r := s.table.Acquire(lockmgr.TxID(id.Tx), step.Var, lockmgr.Exclusive)
	switch r.Status {
	case lockmgr.Granted:
		s.releasePrev(id)
		return Grant
	case lockmgr.AbortSelf:
		return AbortTx
	default:
		return Delay
	}
}

// releasePrev implements lock coupling: once the lock for step idx is
// held, the lock taken for step idx−1 is no longer needed (descending
// access never revisits an ancestor).
func (s *TreeLock) releasePrev(id core.StepID) {
	if id.Idx == 0 {
		return
	}
	prev := s.sys.Txs[id.Tx].Steps[id.Idx-1].Var
	if prev != s.sys.Step(id).Var {
		s.table.Release(lockmgr.TxID(id.Tx), prev)
	}
}

// Commit implements Scheduler.
func (s *TreeLock) Commit(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
}

// Abort implements Scheduler.
func (s *TreeLock) Abort(tx int) {
	s.table.ReleaseAll(lockmgr.TxID(tx))
	s.table.Forget(lockmgr.TxID(tx))
}

// Victim implements Scheduler (tree locking on descending paths cannot
// deadlock, but the harness may still ask).
func (s *TreeLock) Victim(stuck []int) (int, bool) {
	if cycle, found := s.table.DetectDeadlock(); found {
		return int(s.table.ChooseVictim(cycle)), true
	}
	return 0, false
}
