package online

// Coverage for the batch-aware scheduler contract: the TryBatch adapter,
// and decision-for-decision equivalence between the native batch paths
// (Mutexed, Sharded, ConcurrentStrict2PL) and sequential Try on a twin
// scheduler.

import (
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
	"optcc/internal/workload"
)

// countingScheduler records Try calls so the adapter's fallback is visible.
type countingScheduler struct {
	Scheduler
	tries []core.StepID
}

func (c *countingScheduler) Try(id core.StepID) Decision {
	c.tries = append(c.tries, id)
	return c.Scheduler.Try(id)
}

// TestTryBatchAdapterFallsBackToTry: a scheduler without a native batch
// path must be driven through one Try per id, in order.
func TestTryBatchAdapterFallsBackToTry(t *testing.T) {
	sys := workload.Banking()
	inner := &countingScheduler{Scheduler: NewSGT()}
	inner.Begin(sys)
	ids := firstSteps(sys)
	out := TryBatch(inner, ids)
	if len(out) != len(ids) {
		t.Fatalf("got %d decisions for %d ids", len(out), len(ids))
	}
	if len(inner.tries) != len(ids) {
		t.Fatalf("adapter made %d Try calls, want %d", len(inner.tries), len(ids))
	}
	for i, id := range inner.tries {
		if id != ids[i] {
			t.Fatalf("Try call %d got %v, want %v", i, id, ids[i])
		}
	}
}

// firstSteps returns each transaction's first step — a valid batch (one
// request per distinct transaction).
func firstSteps(sys *core.System) []core.StepID {
	ids := make([]core.StepID, sys.NumTxs())
	for tx := range ids {
		ids[tx] = core.StepID{Tx: tx, Idx: 0}
	}
	return ids
}

// TestTryBatchMatchesSequentialTry: for every native BatchTrier, deciding a
// batch must yield exactly the decisions sequential Try yields on a twin.
func TestTryBatchMatchesSequentialTry(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Scheduler
	}{
		{"mutexed/2pl-woundwait", func() Scheduler { return NewMutexed(NewStrict2PL(lockmgr.WoundWait)) }},
		{"mutexed/2pl-nowait", func() Scheduler { return NewMutexed(NewStrict2PL(lockmgr.NoWait)) }},
		{"sharded4/2pl-detect", func() Scheduler {
			return NewSharded(4, func() Scheduler { return NewStrict2PL(lockmgr.Detect) })
		}},
		{"2pl-sharded4/woundwait", func() Scheduler { return NewConcurrentStrict2PL(lockmgr.WoundWait, 4) }},
		{"2pl-sharded4/nowait", func() Scheduler { return NewConcurrentStrict2PL(lockmgr.NoWait, 4) }},
		{"2pl-sharded1/waitdie", func() Scheduler { return NewConcurrentStrict2PL(lockmgr.WaitDie, 1) }},
	}
	systems := []*core.System{workload.Banking(), workload.Cross(), workload.Chain()}
	for _, tc := range cases {
		for _, sys := range systems {
			batched := tc.mk()
			sequential := tc.mk()
			batched.Begin(sys)
			sequential.Begin(sys)
			bt, ok := batched.(BatchTrier)
			if !ok {
				t.Fatalf("%s does not implement BatchTrier", tc.name)
			}
			// Drive both through the same rounds of per-transaction next
			// steps until every transaction is done or stuck.
			next := make([]int, sys.NumTxs())
			for round := 0; round < 8; round++ {
				var ids []core.StepID
				for tx := 0; tx < sys.NumTxs(); tx++ {
					if next[tx] < len(sys.Txs[tx].Steps) {
						ids = append(ids, core.StepID{Tx: tx, Idx: next[tx]})
					}
				}
				if len(ids) == 0 {
					break
				}
				// TryBatch must equal the same uninterrupted Try sequence;
				// commits and aborts are applied to both twins only after
				// the whole round, exactly as the dispatch loops do.
				got := bt.TryBatch(ids)
				for i, id := range ids {
					want := sequential.Try(id)
					if got[i] != want {
						t.Fatalf("%s on %s round %d: TryBatch(%v) = %v, sequential Try = %v",
							tc.name, sys.Name, round, id, got[i], want)
					}
				}
				for i, id := range ids {
					switch got[i] {
					case Grant:
						next[id.Tx]++
						if next[id.Tx] == len(sys.Txs[id.Tx].Steps) {
							batched.Commit(id.Tx)
							sequential.Commit(id.Tx)
						}
					case AbortTx:
						batched.Abort(id.Tx)
						sequential.Abort(id.Tx)
						next[id.Tx] = 0
					}
				}
				// Wounds must match too (order-insensitive).
				bw, sw := batched.Wounded(), sequential.Wounded()
				if len(bw) != len(sw) {
					t.Fatalf("%s on %s round %d: wounded %v vs %v", tc.name, sys.Name, round, bw, sw)
				}
			}
		}
	}
}

// TestShardedNameStable: the combinator's name is fixed at construction
// (regression for the unsynchronized lazy Name write) and stays identical
// before Begin, after Begin, and under concurrent readers.
func TestShardedNameStable(t *testing.T) {
	s := NewSharded(4, func() Scheduler { return NewStrict2PL(lockmgr.WoundWait) })
	want := "sharded(4)/strict-2pl/wound-wait"
	if got := s.Name(); got != want {
		t.Fatalf("Name before Begin = %q, want %q", got, want)
	}
	s.Begin(workload.Banking())
	if got := s.Name(); got != want {
		t.Fatalf("Name after Begin = %q, want %q", got, want)
	}
	doneCh := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { doneCh <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				if s.Name() != want {
					t.Errorf("Name changed under concurrency")
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-doneCh
	}
}
