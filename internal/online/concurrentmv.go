package online

import (
	"fmt"
	"sync/atomic"

	"optcc/internal/conflict"
	"optcc/internal/core"
	"optcc/internal/tstable"
)

// SnapshotSource is implemented by schedulers whose semantics let the
// runtime serve read-only transactions from a storage snapshot instead of
// requesting grants: the scheduler orders read-write transactions by
// commit, so a transaction that writes nothing is serializable at any
// consistent committed snapshot and never needs to enter the grant
// machinery at all. The runtime (internal/sim) checks this marker together
// with storage.SnapshotBackend before enabling its read-only fast path.
type SnapshotSource interface {
	// ReadOnlySnapshots reports that read-only transactions may bypass the
	// scheduler entirely.
	ReadOnlySnapshots() bool
}

// wsEntry is one write claim a transaction holds: the variable's timestamp
// entry and the committed write timestamp the claim displaced, restored on
// abort.
type wsEntry struct {
	e    *tstable.Entry
	prev int64
}

// ConcurrentMV is the Hekaton-style multiversion/optimistic scheduler: the
// natively concurrent companion of ConcurrentTO for multiversion storage.
// Like cto its whole state is the sharded atomic timestamp table
// (internal/tstable) plus an atomic transaction-timestamp clock — no mutex
// on any path — but where TO only records timestamps, ConcurrentMV claims
// writes:
//
//   - A writer CAS-installs an uncommitted claim on its variable's entry
//     (the negative owner timestamp, the same tstable CAS idiom that keeps
//     per-variable timestamps monotone) and holds it to commit; the
//     storage layer installs the corresponding uncommitted version. A
//     second writer arriving at a claimed entry aborts immediately —
//     first-writer-wins replaces blocking, so there are no waits and no
//     deadlocks.
//   - A reader validates visibility against commit timestamps: it aborts
//     if the variable is claimed by another active writer (no dirty
//     reads) or was last committed by a younger transaction (its view
//     would be stale); otherwise it records its read timestamp so older
//     writers cannot invalidate it afterwards.
//   - Commit releases every claim to the transaction's own timestamp,
//     which becomes the variable's committed write timestamp; abort
//     restores what the claim displaced and restarts the transaction with
//     a fresh, strictly later timestamp, guaranteeing progress exactly as
//     in TO.
//
// Every conflict-graph edge therefore points from older to newer
// timestamp, so complete runs are conflict-serializable on any shard
// layout — the same composition argument as ConcurrentTO, with claims
// standing in for write timestamps until commit.
//
// Read-only transactions never reach the scheduler at all: ConcurrentMV
// implements SnapshotSource, and the runtime serves them from a pinned
// storage snapshot (storage.SnapshotBackend) with zero locks, zero rail
// traffic and zero shard-mutex acquisitions. Write claims are held to
// commit, so writes execute strictly (no transaction overwrites or — via
// the read rule — reads an uncommitted value), which is what makes the
// committed write-set state equal the serial replay of the committed
// schedule (E12's self-check).
type ConcurrentMV struct {
	base
	shards int

	sys   *core.System
	table *tstable.Table
	clock atomic.Int64
	ts    []atomic.Int64 // per-transaction timestamp; 0 = unassigned
	ws    [][]wsEntry    // per-transaction write claims, released at commit/abort
}

// NewConcurrentMV returns a natively concurrent multiversion/optimistic
// scheduler over the given shard count (minimum 1).
func NewConcurrentMV(shards int) *ConcurrentMV {
	if shards < 1 {
		shards = 1
	}
	return &ConcurrentMV{shards: shards}
}

// Name implements Scheduler.
func (s *ConcurrentMV) Name() string { return fmt.Sprintf("mv(%d)", s.shards) }

// ReadOnlySnapshots implements SnapshotSource.
func (s *ConcurrentMV) ReadOnlySnapshots() bool { return true }

// Begin implements Scheduler. Re-beginning over the same system reuses the
// timestamp table and the write-claim slices instead of rebuilding them.
func (s *ConcurrentMV) Begin(sys *core.System) {
	s.clock.Store(0)
	if sys == s.sys && s.table != nil {
		s.table.Reset()
		for i := range s.ts {
			s.ts[i].Store(0)
			s.ws[i] = s.ws[i][:0]
		}
		return
	}
	s.sys = sys
	s.ts = make([]atomic.Int64, sys.NumTxs())
	s.ws = make([][]wsEntry, sys.NumTxs())
	s.table = tstable.New(sys.Vars(), s.shards)
}

// Try implements Scheduler. Lock-free: one immutable map lookup plus
// atomic loads and CASes; it never returns Delay — every conflict is
// resolved by aborting the requester.
func (s *ConcurrentMV) Try(id core.StepID) Decision {
	ts := s.ts[id.Tx].Load()
	if ts == 0 {
		ts = s.clock.Add(1)
		s.ts[id.Tx].Store(ts)
	}
	step := s.sys.Step(id)
	e := s.table.Entry(step.Var)
	if conflict.Reads(step.Kind) {
		w := e.WriteTS()
		if w < 0 && w != -ts {
			return AbortTx // claimed by an active writer: no dirty read, no wait
		}
		if w > ts {
			return AbortTx // committed by a younger writer: stale view
		}
	}
	if conflict.Writes(step.Kind) {
		if ts < e.ReadTS() {
			return AbortTx // a younger reader saw the current version
		}
		for {
			w := e.WriteTS()
			if w == -ts {
				break // this transaction already holds the claim
			}
			if w < 0 {
				return AbortTx // first-writer-wins: another writer's claim
			}
			if w > ts {
				return AbortTx // committed by a younger writer
			}
			if e.CASWrite(w, -ts) {
				s.ws[id.Tx] = append(s.ws[id.Tx], wsEntry{e: e, prev: w})
				break
			}
		}
	}
	if conflict.Reads(step.Kind) {
		e.MaxRead(ts)
	}
	return Grant
}

// TryBatch implements BatchTrier. The hot path is already lock-free, so
// there is no synchronization to amortize: the native batch path simply
// decides in order without the adapter's indirection.
func (s *ConcurrentMV) TryBatch(ids []core.StepID) []Decision {
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = s.Try(id)
	}
	return out
}

// Commit implements Scheduler: release every write claim to the
// transaction's own timestamp, which becomes the variable's committed
// write timestamp.
func (s *ConcurrentMV) Commit(tx int) {
	ts := s.ts[tx].Load()
	for _, w := range s.ws[tx] {
		w.e.CASWrite(-ts, ts)
	}
	s.ws[tx] = s.ws[tx][:0]
}

// Abort implements Scheduler: restore each claimed entry's previous
// committed write timestamp and restart the transaction with a fresh
// (strictly later) timestamp, which guarantees progress.
func (s *ConcurrentMV) Abort(tx int) {
	ts := s.ts[tx].Load()
	if ts != 0 {
		for _, w := range s.ws[tx] {
			w.e.CASWrite(-ts, w.prev)
		}
	}
	s.ws[tx] = s.ws[tx][:0]
	s.ts[tx].Store(0)
}

// NumShards implements ConcurrentScheduler.
func (s *ConcurrentMV) NumShards() int { return s.shards }

// ShardOf implements ConcurrentScheduler.
func (s *ConcurrentMV) ShardOf(v core.Var) int { return shardOfVar(v, s.shards) }
