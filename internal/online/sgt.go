package online

import (
	"fmt"

	"optcc/internal/conflict"
	"optcc/internal/core"
)

// node identifies a transaction incarnation in the SGT graph.
type node struct {
	tx, epoch int
}

// stepRec records one executed step for conflict computation.
type stepRec struct {
	n    node
	step core.Step
}

// SGT is a serialization-graph-testing scheduler: it grants a step exactly
// when doing so keeps the conflict graph over live transaction
// incarnations acyclic. With delay-on-cycle, its fixpoint set is precisely
// the conflict-serializable schedules — the practical realization of the
// serialization scheduler of Theorem 3 (CSR ⊆ SR).
type SGT struct {
	base
	sys *core.System
	// AbortOnCycle aborts the requester when a grant would close a cycle
	// instead of delaying it (the classic SGT certifier). Delays preserve
	// the fixpoint; aborts guarantee progress.
	AbortOnCycle bool

	epoch     []int
	steps     []stepRec
	edges     map[node]map[node]bool
	committed map[node]bool
}

// NewSGT returns an SGT scheduler that delays on cycles.
func NewSGT() *SGT { return &SGT{} }

// NewSGTAborting returns an SGT scheduler that aborts the requester on
// cycles.
func NewSGTAborting() *SGT { return &SGT{AbortOnCycle: true} }

// Name implements Scheduler.
func (s *SGT) Name() string {
	if s.AbortOnCycle {
		return "sgt/abort"
	}
	return "sgt/delay"
}

// Begin implements Scheduler.
func (s *SGT) Begin(sys *core.System) {
	s.sys = sys
	s.epoch = make([]int, sys.NumTxs())
	s.steps = nil
	s.edges = map[node]map[node]bool{}
	s.committed = map[node]bool{}
}

func (s *SGT) addEdge(from, to node) {
	if from == to {
		return
	}
	if s.edges[from] == nil {
		s.edges[from] = map[node]bool{}
	}
	s.edges[from][to] = true
}

// cyclicWith reports whether the graph plus the tentative edges reaches
// back to target.
func (s *SGT) wouldCycle(target node, tentative []node) bool {
	// DFS from each tentative source to see if target is reachable — a
	// path target →* source plus edge source → target closes a cycle;
	// equivalently, adding source→target edges creates a cycle iff target
	// already reaches some source.
	seen := map[node]bool{}
	var stack []node
	stack = append(stack, target)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		for v := range s.edges[u] {
			stack = append(stack, v)
		}
	}
	for _, src := range tentative {
		if seen[src] {
			return true
		}
	}
	return false
}

// Try implements Scheduler.
func (s *SGT) Try(id core.StepID) Decision {
	me := node{id.Tx, s.epoch[id.Tx]}
	step := s.sys.Step(id)
	var sources []node
	seen := map[node]bool{}
	for _, rec := range s.steps {
		if rec.n.tx == id.Tx && rec.n.epoch == s.epoch[id.Tx] {
			continue
		}
		if conflict.Conflicts(rec.step, step) && !seen[rec.n] {
			seen[rec.n] = true
			sources = append(sources, rec.n)
		}
	}
	if s.wouldCycle(me, sources) {
		if s.AbortOnCycle {
			return AbortTx
		}
		return Delay
	}
	for _, src := range sources {
		s.addEdge(src, me)
	}
	s.steps = append(s.steps, stepRec{n: me, step: step})
	return Grant
}

// Commit implements Scheduler.
func (s *SGT) Commit(tx int) {
	s.committed[node{tx, s.epoch[tx]}] = true
	s.prune()
}

// Abort implements Scheduler.
func (s *SGT) Abort(tx int) {
	gone := node{tx, s.epoch[tx]}
	s.epoch[tx]++
	delete(s.edges, gone)
	for _, m := range s.edges {
		delete(m, gone)
	}
	kept := s.steps[:0]
	for _, rec := range s.steps {
		if rec.n != gone {
			kept = append(kept, rec)
		}
	}
	s.steps = kept
	s.prune()
}

// prune removes committed incarnations with no incoming edges: they can
// never join a future cycle (new edges only leave committed nodes), so
// their steps and edges are garbage. Removing one may expose another.
func (s *SGT) prune() {
	for {
		indeg := map[node]int{}
		nodes := map[node]bool{}
		for _, rec := range s.steps {
			nodes[rec.n] = true
		}
		for from, tos := range s.edges {
			nodes[from] = true
			for to := range tos {
				indeg[to]++
				nodes[to] = true
			}
		}
		removed := false
		for n := range nodes {
			if s.committed[n] && indeg[n] == 0 {
				delete(s.edges, n)
				delete(s.committed, n)
				kept := s.steps[:0]
				for _, rec := range s.steps {
					if rec.n != n {
						kept = append(kept, rec)
					}
				}
				s.steps = kept
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}

// GraphSize returns the number of live nodes and recorded steps (for tests
// of the pruning logic).
func (s *SGT) GraphSize() (nodes, steps int) {
	set := map[node]bool{}
	for _, rec := range s.steps {
		set[rec.n] = true
	}
	for from, tos := range s.edges {
		set[from] = true
		for to := range tos {
			set[to] = true
		}
	}
	return len(set), len(s.steps)
}

// Victim implements Scheduler: abort the stuck transaction with the most
// incoming conflict edges (most constrained).
func (s *SGT) Victim(stuck []int) (int, bool) {
	if len(stuck) == 0 {
		return 0, false
	}
	best, bestIn := stuck[0], -1
	for _, tx := range stuck {
		me := node{tx, s.epoch[tx]}
		in := 0
		for _, tos := range s.edges {
			if tos[me] {
				in++
			}
		}
		if in > bestIn {
			best, bestIn = tx, in
		}
	}
	return best, true
}

// String renders a summary for debugging.
func (s *SGT) String() string {
	nodes, steps := s.GraphSize()
	return fmt.Sprintf("sgt{nodes=%d steps=%d}", nodes, steps)
}
