package storage

import (
	"fmt"
	"sync"
	"testing"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

func upd(v core.Var, fn core.StepFunc) core.Step {
	return core.Step{Var: v, Kind: core.Update, Fn: fn}
}

func inc(l []core.Value) core.Value { return l[len(l)-1] + 1 }

func mustApply(t *testing.T, kv *KV, tx int, step core.Step) {
	t.Helper()
	if err := kv.ApplyStep(tx, step); err != nil {
		t.Fatalf("apply: %v", err)
	}
}

// sameRecords reports whether two snapshots are byte-identical.
func sameRecords(a, b map[core.Var]Record) error {
	if len(a) != len(b) {
		return fmt.Errorf("variable count %d vs %d", len(a), len(b))
	}
	for v, ra := range a {
		rb, ok := b[v]
		if !ok {
			return fmt.Errorf("%s missing", v)
		}
		if ra.Scalar != rb.Scalar || ra.Sum != rb.Sum {
			return fmt.Errorf("%s scalar/sum differ: %v/%d vs %v/%d", v, ra.Scalar, ra.Sum, rb.Scalar, rb.Sum)
		}
		if len(ra.Payload) != len(rb.Payload) {
			return fmt.Errorf("%s payload length %d vs %d", v, len(ra.Payload), len(rb.Payload))
		}
		for i := range ra.Payload {
			if ra.Payload[i] != rb.Payload[i] {
				return fmt.Errorf("%s payload byte %d differs", v, i)
			}
		}
	}
	return nil
}

func TestKVGetPutScanState(t *testing.T) {
	kv := NewKV(Config{Shards: 4, ValueSize: 64})
	kv.Reset(core.DB{"a": 1, "b": 2, "c": 0})
	if got := kv.Get(0, "a"); got != 1 {
		t.Fatalf("Get(a) = %d", got)
	}
	if got := kv.Get(0, "nope"); got != 0 {
		t.Fatalf("Get of absent var = %d", got)
	}
	kv.Put(0, "c", 42)
	kv.Commit(0)
	seen := map[core.Var]core.Value{}
	kv.Scan(func(v core.Var, val core.Value) bool {
		seen[v] = val
		return true
	})
	want := core.DB{"a": 1, "b": 2, "c": 42}
	if !want.Equal(core.DB(seen)) {
		t.Fatalf("Scan saw %v, want %v", seen, want)
	}
	if !kv.State().Equal(want) {
		t.Fatalf("State() = %v, want %v", kv.State(), want)
	}
	st := kv.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BytesWritten != 64 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestKVPayloadSizing(t *testing.T) {
	kv := NewKV(Config{
		Shards:    2,
		ValueSize: 16,
		Sizer: func(v core.Var) int {
			if v == "big" {
				return 1024
			}
			return 16
		},
	})
	kv.Reset(core.DB{"big": 7, "small": 3})
	snap := kv.Snapshot()
	if len(snap["big"].Payload) != 1024 || len(snap["small"].Payload) != 16 {
		t.Fatalf("payload sizes %d/%d", len(snap["big"].Payload), len(snap["small"].Payload))
	}
	// The scalar is stamped into the payload and covered by the checksum.
	if snap["big"].Payload[0] != 7 {
		t.Fatalf("scalar not stamped: %d", snap["big"].Payload[0])
	}
	if checksum(snap["big"].Payload) != snap["big"].Sum {
		t.Fatal("stored checksum does not cover payload")
	}
}

func TestKVCopyOnWrite(t *testing.T) {
	kv := NewKV(Config{Shards: 1, ValueSize: 32})
	kv.Reset(core.DB{"x": 5})
	before := kv.Snapshot()["x"]
	kv.Put(1, "x", 6)
	// The displaced record is untouched: same bytes as before the write.
	after := kv.Snapshot()["x"]
	if after.Scalar != 6 {
		t.Fatalf("new scalar = %d", after.Scalar)
	}
	if before.Scalar != 5 || before.Payload[0] != 5 {
		t.Fatal("old record mutated by Put")
	}
}

// TestKVApplyStepMatchesExec: applying a serial schedule step by step must
// land on exactly the state core.Exec computes.
func TestKVApplyStepMatchesExec(t *testing.T) {
	sys := (&core.System{
		Name: "serialcheck",
		Txs: []core.Transaction{
			{Steps: []core.Step{upd("x", inc), {Var: "y", Kind: core.Read}}},
			{Steps: []core.Step{upd("y", func(l []core.Value) core.Value { return 2 * l[len(l)-1] }), upd("x", inc)}},
			{Steps: []core.Step{{Var: "x", Kind: core.Write, Fn: func(l []core.Value) core.Value { return l[0] + 10 }}}},
		},
	}).Normalize()
	init := core.DB{"x": 3, "y": 4}
	kv := NewKV(Config{Shards: 4, ValueSize: 128})
	kv.Reset(init)
	var h core.Schedule
	for tx := range sys.Txs {
		for idx, step := range sys.Txs[tx].Steps {
			mustApply(t, kv, tx, step)
			h = append(h, core.StepID{Tx: tx, Idx: idx})
		}
		kv.Commit(tx)
	}
	want, err := core.Exec(sys, h, init)
	if err != nil {
		t.Fatal(err)
	}
	if !kv.State().Equal(want) {
		t.Fatalf("state %v, want %v", kv.State(), want)
	}
}

// TestRollbackByteIdentical is the core abort guarantee: a transaction that
// writes (including repeated writes to the same variable and writes to a
// fresh variable) and then rolls back leaves the store byte-identical.
func TestRollbackByteIdentical(t *testing.T) {
	kv := NewKV(Config{Shards: 4, ValueSize: 256})
	kv.Reset(core.DB{"a": 1, "b": 2, "c": 3})
	before := kv.Snapshot()
	mustApply(t, kv, 0, upd("a", inc))
	mustApply(t, kv, 0, upd("b", inc))
	mustApply(t, kv, 0, upd("a", inc)) // second write to a: undo must restore the original
	kv.Put(0, "fresh", 99)             // write to a previously absent variable
	if kv.Get(0, "a") != 3 || kv.Get(0, "fresh") != 99 {
		t.Fatal("writes not visible before rollback")
	}
	kv.Rollback(0)
	if err := sameRecords(before, kv.Snapshot()); err != nil {
		t.Fatalf("state not byte-identical after rollback: %v", err)
	}
	if kv.Stats().Rollbacks != 1 {
		t.Fatalf("rollbacks = %d", kv.Stats().Rollbacks)
	}
	// Locals were discarded: a restart starts from t_i1 again.
	mustApply(t, kv, 0, upd("a", func(l []core.Value) core.Value {
		if len(l) != 1 {
			t.Errorf("restart saw %d locals", len(l))
		}
		return l[0] + 5
	}))
	kv.Commit(0)
	if kv.Get(1, "a") != 6 {
		t.Fatalf("a = %d after restart commit", kv.Get(1, "a"))
	}
}

// TestConcurrentRollbackLeavesOthersIntact drives many transactions from
// their own goroutines against a shared sharded store — each owning a
// disjoint key set, the access discipline locks would enforce — and rolls
// half of them back. Rolled-back keys must be byte-identical to the initial
// state, committed keys must hold their writes. Run under -race in CI.
func TestConcurrentRollbackLeavesOthersIntact(t *testing.T) {
	const txs, keysPerTx = 16, 4
	kv := NewKV(Config{Shards: 8, ValueSize: 512})
	init := core.DB{}
	for i := 0; i < txs*keysPerTx; i++ {
		init[core.Var(fmt.Sprintf("k%d", i))] = core.Value(i)
	}
	kv.Reset(init)
	before := kv.Snapshot()
	var wg sync.WaitGroup
	for tx := 0; tx < txs; tx++ {
		wg.Add(1)
		go func(tx int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for k := 0; k < keysPerTx; k++ {
					v := core.Var(fmt.Sprintf("k%d", tx*keysPerTx+k))
					mustApply(t, kv, tx, upd(v, inc))
					mustApply(t, kv, tx, upd(v, inc))
				}
				if tx%2 == 0 {
					kv.Rollback(tx)
				} else {
					kv.Commit(tx)
				}
			}
		}(tx)
	}
	wg.Wait()
	after := kv.Snapshot()
	for tx := 0; tx < txs; tx++ {
		for k := 0; k < keysPerTx; k++ {
			v := core.Var(fmt.Sprintf("k%d", tx*keysPerTx+k))
			if tx%2 == 0 {
				if err := sameRecords(
					map[core.Var]Record{v: before[v]},
					map[core.Var]Record{v: after[v]},
				); err != nil {
					t.Fatalf("rolled-back tx %d left residue: %v", tx, err)
				}
			} else {
				want := before[v].Scalar + 40 // 20 rounds × 2 increments
				if after[v].Scalar != want {
					t.Fatalf("committed tx %d: %s = %d, want %d", tx, v, after[v].Scalar, want)
				}
			}
		}
	}
}

func TestResetClearsEverything(t *testing.T) {
	kv := NewKV(Config{Shards: 2, ValueSize: 8})
	kv.Reset(core.DB{"x": 1})
	kv.Put(3, "x", 9)
	kv.Reset(core.DB{"y": 2})
	if !kv.State().Equal(core.DB{"y": 2}) {
		t.Fatalf("state after reset = %v", kv.State())
	}
	// The old undo log must be gone: rolling back tx 3 is a no-op now.
	kv.Rollback(3)
	if !kv.State().Equal(core.DB{"y": 2}) {
		t.Fatalf("stale undo applied after reset: %v", kv.State())
	}
	if st := kv.Stats(); st.Writes != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestShardAlignment(t *testing.T) {
	// The KV must place variables exactly where the sharded lock table
	// does, so storage, locks and dispatch agree on ownership.
	kv := NewKV(Config{Shards: 8})
	for i := 0; i < 100; i++ {
		v := core.Var(fmt.Sprintf("v%d", i))
		want := lockmgr.ShardOfVar(v, 8)
		if got := kv.shard(v); got != &kv.shards[want] {
			t.Fatalf("variable %s misplaced", v)
		}
	}
}

func TestNewRegistry(t *testing.T) {
	be, err := New("kv", Config{Shards: 2, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(*KV); !ok {
		t.Fatalf("New(kv) returned %T", be)
	}
	if _, err := New("bogus", Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestApplyStepErrors(t *testing.T) {
	kv := NewKV(Config{Shards: 1})
	kv.Reset(core.DB{"x": 0})
	if err := kv.ApplyStep(0, core.Step{Var: "x", Kind: core.Update}); err == nil {
		t.Fatal("uninterpreted update did not error")
	}
	if err := kv.ApplyStep(0, core.Step{Var: "x", Kind: core.Read}); err != nil {
		t.Fatalf("read errored: %v", err)
	}
}
