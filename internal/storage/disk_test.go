package storage

import (
	"bytes"
	"testing"

	"optcc/internal/core"
)

// TestWALRoundTrip encodes every record kind and decodes it back through
// the frame scanner.
func TestWALRoundTrip(t *testing.T) {
	var enc walEncoder
	var log []byte
	log = append(log, enc.encodeUpdate(3, "x", 7, 9, true)...)
	log = append(log, enc.encodeUpdate(4, "fresh", 0, 1, false)...)
	log = append(log, enc.encodeCommit(3, nil)...)
	log = append(log, enc.encodeCommit(5, []walWrite{{v: "a", val: -2}, {v: "b", val: 1 << 40}})...)
	log = append(log, enc.encodeAbort(4)...)
	log = append(log, enc.encodeSnapshot(core.DB{"x": 9, "y": -1})...)

	var recs []walRec
	valid, clean := walScan(log, func(r walRec) { recs = append(recs, r) })
	if !clean || valid != len(log) {
		t.Fatalf("scan: valid=%d clean=%v, want %d true", valid, clean, len(log))
	}
	if len(recs) != 6 {
		t.Fatalf("decoded %d records, want 6", len(recs))
	}
	if r := recs[0]; r.kind != walUpdate || r.tx != 3 || r.v != "x" || r.old != 7 || r.new != 9 || !r.existed {
		t.Errorf("update record mismatch: %+v", r)
	}
	if r := recs[1]; r.existed {
		t.Errorf("fresh-variable update decoded existed=true")
	}
	if r := recs[3]; r.kind != walCommit || r.tx != 5 || len(r.writes) != 2 || r.writes[1].val != 1<<40 {
		t.Errorf("buffered commit record mismatch: %+v", r)
	}
	if r := recs[5]; r.kind != walSnapshot || len(r.writes) != 2 {
		t.Errorf("snapshot record mismatch: %+v", r)
	}
}

// TestWALScanStopsAtTear checks the scanner's three failure modes — short
// frame, bad checksum, garbage payload — all end the valid prefix exactly
// at the last good record.
func TestWALScanStopsAtTear(t *testing.T) {
	var enc walEncoder
	good := append([]byte(nil), enc.encodeCommit(1, []walWrite{{v: "x", val: 1}})...)
	good = append(good, enc.encodeCommit(2, []walWrite{{v: "y", val: 2}})...)

	tail := append([]byte(nil), enc.encodeCommit(3, []walWrite{{v: "z", val: 3}})...)
	cases := map[string][]byte{
		"truncated header": append(append([]byte(nil), good...), tail[:4]...),
		"truncated body":   append(append([]byte(nil), good...), tail[:len(tail)-3]...),
		"flipped byte": func() []byte {
			b := append(append([]byte(nil), good...), tail...)
			b[len(good)+walHeaderSize+2] ^= 0xff
			return b
		}(),
		"zero garbage": append(append([]byte(nil), good...), make([]byte, 40)...),
	}
	for name, log := range cases {
		var n int
		valid, clean := walScan(log, func(walRec) { n++ })
		if clean || valid != len(good) || n != 2 {
			t.Errorf("%s: valid=%d clean=%v records=%d, want valid=%d clean=false records=2",
				name, valid, clean, n, len(good))
		}
	}
}

// applyTx runs one write transaction through the Backend interface: each
// (var, value) pair becomes a write step storing the value.
func applyTx(t *testing.T, be Backend, tx int, writes []walWrite) {
	t.Helper()
	for _, w := range writes {
		w := w
		step := core.Step{Var: w.v, Kind: core.Write, Fn: func([]core.Value) core.Value { return w.val }}
		if err := be.ApplyStep(tx, step); err != nil {
			t.Fatalf("ApplyStep tx %d on %s: %v", tx, w.v, err)
		}
	}
}

func dbEqual(a, b core.DB) bool {
	if len(a) != len(b) {
		return false
	}
	for v, val := range a {
		if b[v] != val {
			return false
		}
	}
	return true
}

// TestDiskBackendContract exercises the Backend surface in both execution
// modes: read-your-writes, commit permanence, rollback atomicity, and the
// durability core — State() survives Close + OpenDisk byte for byte.
func TestDiskBackendContract(t *testing.T) {
	for _, buffered := range []bool{false, true} {
		name := "eager"
		if buffered {
			name = "buffered"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := NewDisk(Config{Dir: dir, Buffered: buffered, Fsync: FsyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			init := core.DB{"x": 1, "y": 2}
			d.Reset(init)

			applyTx(t, d, 0, []walWrite{{v: "x", val: 10}, {v: "z", val: 30}})
			if got := d.Get(0, "x"); got != 10 {
				t.Fatalf("read-your-writes: Get(x) = %d, want 10", got)
			}
			if buffered {
				if got := d.Get(1, "x"); got != 1 {
					t.Fatalf("buffered isolation: other tx sees %d for x, want committed 1", got)
				}
			}
			d.Commit(0)

			applyTx(t, d, 1, []walWrite{{v: "y", val: 20}, {v: "w", val: 40}})
			d.Rollback(1)

			want := core.DB{"x": 10, "y": 2, "z": 30}
			if got := d.State(); !dbEqual(got, want) {
				t.Fatalf("state after commit+rollback = %v, want %v", got, want)
			}

			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := OpenDisk(Config{Dir: dir, Buffered: buffered})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.State(); !dbEqual(got, want) {
				t.Fatalf("recovered state = %v, want %v", got, want)
			}
			if ds := r.DurabilityStats(); ds.WALTruncated != 0 {
				t.Fatalf("clean close recovered with WALTruncated=%d", ds.WALTruncated)
			}
			if ds := r.DurabilityStats(); ds.RecoveryNs <= 0 {
				t.Fatalf("RecoveryNs not recorded")
			}
		})
	}
}

// TestDiskSegmentRoll forces segment rotation with a tiny segment cap and
// checks recovery replays across the segment boundary.
func TestDiskSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir, SegmentBytes: 128, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(core.DB{})
	want := core.DB{}
	for i := 0; i < 200; i++ {
		v := core.Var(bytes.Repeat([]byte{'a' + byte(i%26)}, 3))
		applyTx(t, d, i, []walWrite{{v: v, val: core.Value(i)}})
		d.Commit(i)
		want[v] = core.Value(i)
	}
	if d.seq < 3 {
		t.Fatalf("segment cap 128 produced only %d segments", d.seq)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.State(); !dbEqual(got, want) {
		t.Fatalf("recovered state across segments = %v, want %v", got, want)
	}
}

// TestDiskRegistry builds the backend through the storage.New registry.
func TestDiskRegistry(t *testing.T) {
	be, err := New("disk", Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	d := be.(*Disk)
	d.Reset(core.DB{"x": 1})
	applyTx(t, d, 0, []walWrite{{v: "x", val: 5}})
	d.Commit(0)
	if got := d.State()["x"]; got != 5 {
		t.Fatalf("registry disk backend: x = %d, want 5", got)
	}
	if _, ok := be.(DurableBackend); !ok {
		t.Fatalf("disk backend does not implement DurableBackend")
	}
	d.Close()
}

// TestDiskFsyncPolicies checks the sync accounting each policy implies:
// always syncs per commit, group syncs only on GroupSync, never never.
func TestDiskFsyncPolicies(t *testing.T) {
	commitN := func(d *Disk, n int) {
		for i := 0; i < n; i++ {
			applyTx(t, d, i, []walWrite{{v: "x", val: core.Value(i)}})
			d.Commit(i)
		}
	}
	d, _ := NewDisk(Config{Dir: t.TempDir(), Fsync: FsyncAlways})
	d.Reset(core.DB{})
	base := d.DurabilityStats().Fsyncs
	commitN(d, 5)
	if got := d.DurabilityStats().Fsyncs - base; got != 5 {
		t.Errorf("always: %d fsyncs for 5 commits, want 5", got)
	}
	if err := d.GroupSync(); err != nil {
		t.Errorf("always: GroupSync on clean log: %v", err)
	}
	if got := d.DurabilityStats().Fsyncs - base; got != 5 {
		t.Errorf("always: GroupSync on clean log added a sync (%d total)", got)
	}
	d.Close()

	d, _ = NewDisk(Config{Dir: t.TempDir(), Fsync: FsyncGroup})
	d.Reset(core.DB{})
	base = d.DurabilityStats().Fsyncs
	commitN(d, 5)
	if got := d.DurabilityStats().Fsyncs - base; got != 0 {
		t.Errorf("group: %d fsyncs before GroupSync, want 0", got)
	}
	if err := d.GroupSync(); err != nil {
		t.Fatal(err)
	}
	if got := d.DurabilityStats().Fsyncs - base; got != 1 {
		t.Errorf("group: %d fsyncs after one GroupSync, want 1", got)
	}
	d.Close()

	d, _ = NewDisk(Config{Dir: t.TempDir(), Fsync: FsyncNever})
	d.Reset(core.DB{})
	base = d.DurabilityStats().Fsyncs
	commitN(d, 5)
	if err := d.GroupSync(); err != nil {
		t.Fatal(err)
	}
	if got := d.DurabilityStats().Fsyncs - base; got != 0 {
		t.Errorf("never: %d fsyncs, want 0", got)
	}
	d.Close()
}

// TestParseFsyncPolicy covers the CLI mapping both ways.
func TestParseFsyncPolicy(t *testing.T) {
	for _, s := range []string{"always", "group", "never"} {
		p, err := ParseFsyncPolicy(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round trip %q -> %v -> %q", s, p, p.String())
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}
