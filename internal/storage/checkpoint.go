package storage

// The online fuzzy checkpointer: what lets a disk backend run forever.
//
// Without it the log only shrinks at OpenDisk — a serving process
// accumulates sealed segments without bound and its recovery time grows
// with log-since-birth. The checkpointer bounds both, ARIES-style adapted
// to this log's record algebra:
//
//  1. Capture (fuzzy, under d.mu, O(table) copy — commits proceed the
//     moment the mutex drops): copy the table, copy the undo chains of
//     live eager transactions, and note the anchor — (segment aseq, byte
//     offset aoff) of the active segment. Because every table mutation and
//     its log append happen together under d.mu, the capture equals the
//     replay of the log prefix [.., aseq:aoff) exactly; the chains make
//     the snapshot self-sufficient even while transactions are in flight
//     (a captured live transaction that later aborts, or never ends, is
//     undone from the checkpoint's own chains — its update records may be
//     behind the checkpoint and already retired).
//  2. Write the checkpoint file ckpt-N.ckpt off-mutex with the established
//     tmp → sync → rename protocol: a header marker record (anchor), one
//     snapshot record (the table), one update record per live chain entry.
//     Same framing and checksums as the WAL, so torn checkpoints are
//     detected exactly like torn segments — and ignored by recovery.
//  3. Append the checkpoint marker to the WAL and sync it durable. The
//     marker is what recovery and the torture harness cross-check; nothing
//     is unlinked before it is on disk.
//  4. Retire: close and unlink every sealed segment with seq < aseq (all
//     of them are wholly behind the anchor), and GC superseded checkpoint
//     files. Recovery (recovery.go) then starts from the newest complete
//     checkpoint and replays only the tail — log-since-checkpoint, not
//     log-since-birth.
//
// Graceful degradation is the contract, not an afterthought: a transient
// fault in steps 2–4 fails only the checkpoint attempt — the commit path
// never sees it — and the background loop retries with exponential
// backoff; after ckptMaxFailures consecutive failures the checkpointer
// disables itself and surfaces CheckpointerOff, leaving commits correct
// and fast (the log merely stops being retired) — a later Reset clears the
// flag and respawns the loop (disk.go), so the flag never claims a
// checkpointer that does not exist. A fault in step 3 is a
// real log-append failure and poisons the store like any other append —
// at which point the checkpointer (like GroupSync) observes the sticky
// error and stops cleanly, performing no further unlinks.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"optcc/internal/core"
)

// errCkptSuperseded is returned by checkpointOnce when a Reset bumped the
// generation after the capture: the attempt is abandoned — its file names a
// discarded incarnation and must never gate the new log's segments — and it
// counts neither as a completed checkpoint nor as a failure.
var errCkptSuperseded = errors.New("storage: checkpoint superseded by Reset")

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
	ckptTmpExt = ".tmp"
)

// ckptName formats checkpoint file names so lexicographic order is
// creation order, mirroring segName.
func ckptName(seq int) string { return fmt.Sprintf("ckpt-%08d.ckpt", seq) }

// ckptMaxFailures is how many consecutive failed attempts the background
// loop tolerates before disabling checkpointing (CheckpointerOff).
const ckptMaxFailures = 5

// ckptBackoffInitial seeds the exponential retry backoff.
const ckptBackoffInitial = time.Millisecond

// checkpointLoop is the background goroutine armed by
// Config.CheckpointBytes: appendLocked kicks it when the bytes appended
// since the last capture cross the threshold. Exits on Close, on a
// poisoned store, or after persistent failures disable checkpointing.
// Every exit clears ckptRunning in the same critical section as the state
// that justifies it, so Reset's respawn decision (disk.go) never races a
// dying loop into a flag-says-healthy-but-no-loop state.
func (d *Disk) checkpointLoop() {
	defer d.ckptWG.Done()
	failures := 0
	backoff := ckptBackoffInitial
	for {
		select {
		case <-d.ckptStop:
			d.checkpointLoopExit()
			return
		case <-d.ckptKick:
		}
		for {
			err := d.Checkpoint()
			if err == nil {
				failures, backoff = 0, ckptBackoffInitial
				break
			}
			d.mu.Lock()
			if d.err != nil {
				// Sticky store error: stop cleanly, no more unlinks. A later
				// Reset that revives the store respawns the loop.
				d.ckptRunning = false
				d.mu.Unlock()
				return
			}
			if failures++; failures >= ckptMaxFailures {
				d.ckptOff = true // health flag; commits continue unaffected
				d.ckptRunning = false
				d.mu.Unlock()
				return
			}
			d.mu.Unlock()
			select {
			case <-d.ckptStop:
				d.checkpointLoopExit()
				return
			case <-time.After(backoff):
			}
			backoff *= 2
		}
	}
}

// checkpointLoopExit marks the background loop dead under mu.
func (d *Disk) checkpointLoopExit() {
	d.mu.Lock()
	d.ckptRunning = false
	d.mu.Unlock()
}

// stopCheckpointer signals the background loop and waits for it — and any
// in-flight checkpoint — to finish. Idempotent; called by Close before it
// touches the segments, with no locks held (the loop needs d.mu to exit a
// running attempt). ckptStopped is set under mu BEFORE the channel closes,
// so a concurrent Reset either respawns before the close (the new loop sees
// the closed channel and exits, covered by the Wait) or observes the flag
// and leaves the checkpointer down for good.
func (d *Disk) stopCheckpointer() {
	d.mu.Lock()
	d.ckptStopped = true
	d.mu.Unlock()
	d.ckptOnce.Do(func() { close(d.ckptStop) })
	d.ckptWG.Wait()
}

// Checkpoint performs one synchronous fuzzy checkpoint attempt: capture,
// checkpoint file (tmp → sync → rename), durable WAL marker, segment
// retirement. Safe to call while commits are running; must not race
// Close. Counts CheckpointFailures on error. The background loop calls
// this with retry + backoff; tests and operators may call it directly.
func (d *Disk) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	switch err := d.checkpointOnce(); {
	case err == nil:
		d.checkpoints.Add(1)
		return nil
	case errors.Is(err, errCkptSuperseded):
		// Abandoned by a concurrent Reset: nothing was published for the
		// current log, so it is neither a completed checkpoint nor a failure.
		return nil
	default:
		d.ckptFailures.Add(1)
		return err
	}
}

func (d *Disk) checkpointOnce() error {
	// Step 1: fuzzy capture under d.mu. The anchor (aseq, aoff) names the
	// exact log position the copied state equals; everything the store
	// appends after the unlock lands at or beyond it and will be replayed
	// by recovery on top of the checkpoint.
	d.mu.Lock()
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		return err
	}
	if d.active == nil {
		d.mu.Unlock()
		return fmt.Errorf("storage: checkpoint before Reset/OpenDisk")
	}
	gen := d.ckptGen
	aseq := d.seq
	aoff := d.activeBytes
	d.ckptSeq++
	cseq := d.ckptSeq
	table := make(map[core.Var]core.Value, len(d.table))
	for v, val := range d.table {
		table[v] = val
	}
	var liveTx []int
	var liveChains [][]diskUndo
	if !d.buffered {
		// Live eager transactions have updates in the table (and possibly
		// only in retired segments); their undo chains ride along so the
		// checkpoint alone can revert them. Buffered transactions keep
		// uncommitted writes out of both table and log — nothing to carry.
		for tx, c := range d.ctx {
			if len(c.undo) > 0 {
				liveTx = append(liveTx, tx)
				liveChains = append(liveChains, append([]diskUndo(nil), c.undo...))
			}
		}
	}
	d.sinceCkpt = 0
	d.mu.Unlock()

	// Step 2: write the checkpoint file off-mutex, tmp → sync → rename.
	// Separate frames per record keep the fault injector's granularity:
	// every write is its own crash point. d.enc belongs to the append path
	// (under mu); this uses its own encoder.
	var enc walEncoder
	tmp := segPath(d.dir, ckptName(cseq)+ckptTmpExt)
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: checkpoint create: %w", err)
	}
	written := int64(0)
	write := func(frame []byte) error {
		n, werr := f.Write(frame)
		written += int64(n)
		return werr
	}
	werr := write(enc.encodeCkpt(cseq, aseq, aoff))
	if werr == nil {
		db := make(core.DB, len(table))
		for v, val := range table {
			db[v] = val
		}
		werr = write(enc.encodeSnapshot(db))
	}
	for i := 0; werr == nil && i < len(liveTx); i++ {
		for _, u := range liveChains[i] {
			if werr = write(enc.encodeUpdate(liveTx[i], u.v, u.old, table[u.v], u.existed)); werr != nil {
				break
			}
		}
	}
	if werr == nil {
		werr = f.Sync()
	}
	f.Close()
	d.ckptBytes.Add(written)
	if werr != nil {
		return fmt.Errorf("storage: checkpoint write: %w", werr)
	}
	d.fsyncs.Add(1)
	if err := d.fs.Rename(tmp, segPath(d.dir, ckptName(cseq))); err != nil {
		return fmt.Errorf("storage: checkpoint rename: %w", err)
	}

	// Step 3: durable marker in the WAL. A failure here is a real append
	// failure — appendLocked/syncLocked poison the store and the sticky
	// error stops everything, this checkpoint included. A Reset since the
	// capture (generation bump) abandons the checkpoint: its file refers
	// to a discarded incarnation and must never gate that log's segments.
	d.mu.Lock()
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		return err
	}
	if d.ckptGen != gen {
		d.mu.Unlock()
		return errCkptSuperseded
	}
	if err := d.appendLocked(d.enc.encodeCkpt(cseq, aseq, aoff)); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.syncLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	d.mu.Unlock()

	// Step 4: retire. Only now — marker durably synced — may segments
	// wholly behind the anchor disappear.
	return d.retire(gen, aseq, cseq)
}

// retire is checkpoint step 4: close and unlink every sealed segment wholly
// behind the anchor, and GC superseded checkpoint files. The whole step —
// generation/error re-check, handle close, directory listing and unlinks —
// is ONE critical section under syncMu+mu, and that atomicity is
// load-bearing twice over: a concurrent Reset (which requires mu) can never
// bump the generation and lay down a fresh seg-00000001.wal between our
// re-check and an unlink that would destroy it, and a concurrent poisoning
// (poisonLocked, also under mu, which releases the data-dir flock) can never
// let a fresh OpenDisk claim the directory while we are still unlinking
// under the old incarnation's feet. syncMu additionally excludes an
// in-flight GroupSync that may be fsyncing a captured handle that has since
// rolled into sealed. Holding mu across unlinks stalls the commit path for
// the duration of a few Removes, once per checkpoint — the one deliberate
// exception to the "no I/O under mu" rule, bought for Reset/poison atomicity.
func (d *Disk) retire(gen int64, aseq, cseq int) error {
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err // poisoned stores perform no unlinks
	}
	if d.ckptGen != gen {
		return errCkptSuperseded
	}
	keep := d.sealed[:0]
	for _, s := range d.sealed {
		if s.seq < aseq {
			s.f.Close()
		} else {
			keep = append(keep, s)
		}
	}
	d.sealed = keep
	names, err := d.fs.List(d.dir)
	if err != nil {
		return fmt.Errorf("storage: checkpoint retire list: %w", err)
	}
	for _, n := range names {
		var seq int
		switch {
		case strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".wal"):
			if _, err := fmt.Sscanf(n, "seg-%d.wal", &seq); err != nil || seq >= aseq {
				continue // the anchor segment and everything after must stay
			}
			if err := d.fs.Remove(segPath(d.dir, n)); err != nil {
				return fmt.Errorf("storage: checkpoint retire %s: %w", n, err)
			}
			d.segsRetired.Add(1)
		case strings.HasPrefix(n, ckptPrefix):
			// GC superseded checkpoints (and stale .tmp leftovers of failed
			// attempts); best-effort — recovery picks the newest valid one
			// regardless, and the compaction at OpenDisk sweeps stragglers.
			trimmed := strings.TrimSuffix(n, ckptTmpExt)
			if _, err := fmt.Sscanf(trimmed, "ckpt-%d.ckpt", &seq); err == nil &&
				(seq < cseq || (n != trimmed && seq <= cseq)) {
				d.fs.Remove(segPath(d.dir, n))
			}
		}
	}
	return nil
}
