package storage

import "optcc/internal/core"

// Noop is the backend that does no storage work at all: every operation is
// a constant-time no-op and State is always empty. It exists to measure
// the runtime around the storage layer — with Noop plugged in, a run's
// execution path is exercised end to end (ApplyStep, Commit, Rollback all
// flow through the Backend interface) while the step cost and allocation
// count are exactly zero, which is what the hot-path allocation ceilings
// (BenchmarkHotPathAllocs) and pure scheduler-overhead benchmarks need.
// The replay invariant does not apply: State returns an empty database by
// construction, so self-checking experiments must not use it.
type Noop struct{}

var _ Backend = Noop{}

// NewNoop returns the no-op backend.
func NewNoop() Noop { return Noop{} }

// Name implements Backend.
func (Noop) Name() string { return "noop" }

// Reset implements Backend.
func (Noop) Reset(core.DB) {}

// Get implements Backend.
func (Noop) Get(int, core.Var) core.Value { return 0 }

// Put implements Backend.
func (Noop) Put(int, core.Var, core.Value) {}

// Scan implements Backend.
func (Noop) Scan(func(v core.Var, scalar core.Value) bool) {}

// ApplyStep implements Backend: the step is accepted without evaluating
// its interpretation — zero work, zero allocations.
func (Noop) ApplyStep(int, core.Step) error { return nil }

// Commit implements Backend.
func (Noop) Commit(int) {}

// Rollback implements Backend.
func (Noop) Rollback(int) {}

// State implements Backend.
func (Noop) State() core.DB { return core.DB{} }
