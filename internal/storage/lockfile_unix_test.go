//go:build unix

package storage

import (
	"strings"
	"testing"

	"optcc/internal/core"
)

// TestDoubleOpenLock pins the flock double-open protection: a second live
// disk backend on the same data dir must fail fast with a clear error,
// and the lock must come free on Close — and on poison, which models the
// dead process whose flock the kernel releases.
func TestDoubleOpenLock(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(core.DB{"x": 1})

	if _, err := NewDisk(Config{Dir: dir}); err == nil {
		t.Fatal("second NewDisk on a live data dir succeeded")
	} else if !strings.Contains(err.Error(), "locked by another live disk backend") {
		t.Fatalf("double-open error does not explain itself: %v", err)
	}
	if _, err := OpenDisk(Config{Dir: dir}); err == nil {
		t.Fatal("OpenDisk on a live data dir succeeded")
	}

	// Close releases the lock; recovery may proceed.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if got := r.State()["x"]; got != 1 {
		t.Fatalf("recovered x = %d, want 1", got)
	}

	// Poison releases it too: the in-process crash sweeps depend on a
	// poisoned (never Closed) store not wedging its directory.
	efs := NewErrFS(OSFS{})
	dir2 := t.TempDir()
	d2, err := NewDisk(Config{Dir: dir2, FS: efs, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d2.Reset(core.DB{"x": 1})
	efs.FailAt(efs.Ops() + 1)
	step := core.Step{Var: "x", Kind: core.Write, Fn: func([]core.Value) core.Value { return 2 }}
	if err := d2.ApplyStep(5, step); err == nil {
		t.Fatal("armed fault did not fire")
	}
	if d2.Err() == nil {
		t.Fatal("store not poisoned")
	}
	r2, err := OpenDisk(Config{Dir: dir2})
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	r2.Close()
	r.Close()
}
