package storage

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"optcc/internal/core"
)

// OpenDisk recovers a disk backend from the segments in cfg.Dir, ARIES
// style restricted to what this log needs:
//
//  1. Redo by history: replay every valid record of every segment in
//     order. Snapshot records reset the state; update records apply their
//     redo value and join their transaction's undo chain; commit records
//     apply a buffered write set (if any) and retire the chain; abort
//     records undo the chain in reverse.
//  2. Stop at the torn tail: the first incomplete frame, checksum
//     mismatch, or undecodable payload ends the trusted prefix — that
//     record and everything after it (including any later segments) is
//     discarded and counted in WALTruncated. A torn commit record is
//     therefore never admitted: its transaction is a loser.
//  3. Undo the losers: transactions with a live undo chain at the end of
//     the log never committed; their updates are reverted in reverse
//     order. (Eager updates come only from strict schedulers, so live
//     transactions never share a variable and per-transaction reverse
//     undo is exact.) Buffered transactions need no undo — their writes
//     only ever reach the log inside a commit record.
//
// The recovered state is then compacted: one snapshot record is written
// to a fresh segment (via temp file + atomic rename, so a crash during
// recovery is itself recoverable), the old segments are removed, and a
// new active segment is opened. A second OpenDisk on the result is
// therefore clean — recovery converges in one pass, which the torture
// harness asserts as "converges in ≤2".
//
// The invariant this buys (DESIGN.md "Durability"): after a crash, the
// recovered state equals the serial replay of exactly the transactions
// whose commit records are on the synced prefix of the log — every synced
// commit survives, no uncommitted write is visible.
func OpenDisk(cfg Config) (*Disk, error) {
	start := time.Now()
	d, err := NewDisk(cfg)
	if err != nil {
		return nil, err
	}
	names, err := d.fs.List(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: recovery list %s: %w", d.dir, err)
	}
	var segs []string
	maxSeq := 0
	for _, n := range names {
		if !strings.HasPrefix(n, "seg-") || !strings.HasSuffix(n, ".wal") {
			continue // leftovers (e.g. a .tmp from a crashed compaction)
		}
		segs = append(segs, n)
		var seq int
		if _, err := fmt.Sscanf(n, "seg-%d.wal", &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Strings(segs)

	table := make(map[core.Var]core.Value)
	live := make(map[int][]diskUndo) // eager updates of not-yet-ended txs
	truncated := false
	for _, name := range segs {
		data, err := d.fs.ReadFile(segPath(d.dir, name))
		if err != nil {
			return nil, fmt.Errorf("storage: recovery read %s: %w", name, err)
		}
		_, clean := walScan(data, func(r walRec) {
			switch r.kind {
			case walSnapshot:
				table = make(map[core.Var]core.Value, len(r.writes))
				for _, w := range r.writes {
					table[w.v] = w.val
				}
				live = make(map[int][]diskUndo)
			case walUpdate:
				live[r.tx] = append(live[r.tx], diskUndo{v: r.v, old: r.old, existed: r.existed})
				table[r.v] = r.new
			case walCommit:
				for _, w := range r.writes {
					table[w.v] = w.val
				}
				delete(live, r.tx)
			case walAbort:
				undoChain(table, live[r.tx])
				delete(live, r.tx)
			}
		})
		if !clean {
			truncated = true
			break // later segments are beyond the torn tail: discard
		}
	}
	for _, chain := range live {
		undoChain(table, chain)
	}

	// Compact: persist the recovered state as a snapshot segment, drop the
	// replayed log, open a fresh active segment. Written under temp name
	// then renamed, so every intermediate crash state re-recovers to the
	// same database.
	snapSeq := maxSeq + 1
	snapName := segName(snapSeq)
	tmpName := snapName + ".tmp"
	f, err := d.fs.Create(segPath(d.dir, tmpName))
	if err != nil {
		return nil, fmt.Errorf("storage: recovery snapshot: %w", err)
	}
	db := make(core.DB, len(table))
	for v, val := range table {
		db[v] = val
	}
	frame := d.enc.encodeSnapshot(db)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: recovery snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: recovery snapshot sync: %w", err)
	}
	f.Close()
	d.fsyncs.Add(1)
	d.walBytes.Add(int64(len(frame)))
	if err := d.fs.Rename(segPath(d.dir, tmpName), segPath(d.dir, snapName)); err != nil {
		return nil, fmt.Errorf("storage: recovery snapshot rename: %w", err)
	}
	for _, name := range segs {
		if err := d.fs.Remove(segPath(d.dir, name)); err != nil {
			return nil, fmt.Errorf("storage: recovery compact: %w", err)
		}
	}
	d.seq = snapSeq + 1
	active, err := d.fs.Create(segPath(d.dir, segName(d.seq)))
	if err != nil {
		return nil, fmt.Errorf("storage: recovery open active: %w", err)
	}
	d.active = active
	d.activeBytes = 0
	d.table = table
	if truncated {
		d.walTruncated.Add(1)
	}
	d.recoveryNs.Store(time.Since(start).Nanoseconds())
	return d, nil
}

// undoChain reverts one transaction's eager updates, newest first.
func undoChain(table map[core.Var]core.Value, chain []diskUndo) {
	for i := len(chain) - 1; i >= 0; i-- {
		u := chain[i]
		if u.existed {
			table[u.v] = u.old
		} else {
			delete(table, u.v)
		}
	}
}
