package storage

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"optcc/internal/core"
)

// OpenDisk recovers a disk backend from the files in cfg.Dir, ARIES style
// restricted to what this log needs:
//
//  1. Start from the newest complete checkpoint, if any (checkpoint.go):
//     its snapshot record seeds the table and its update records seed the
//     undo chains of the transactions that were live at the capture. A
//     torn or incomplete checkpoint file — one whose scan is unclean or
//     whose anchor segment is gone — is ignored and an older one (or the
//     empty state) is used instead; checkpoint files share the WAL's
//     framing and checksums precisely so this judgment is mechanical.
//  2. Redo by history from the checkpoint's anchor — byte aoff of segment
//     aseq, then every later segment in order; without a checkpoint, from
//     the start of the oldest segment. Snapshot records reset the state;
//     update records apply their redo value and join their transaction's
//     undo chain; commit records apply a buffered write set (if any) and
//     retire the chain; abort records undo the chain in reverse;
//     checkpoint markers carry no state and are skipped. Segments wholly
//     behind the anchor are leftovers of an interrupted retirement —
//     their effects are inside the checkpoint — and are not replayed.
//  3. Stop at the torn tail: the first incomplete frame, checksum
//     mismatch, or undecodable payload ends the trusted prefix — that
//     record and everything after it (including any later segments) is
//     discarded and counted in WALTruncated. A torn commit record is
//     therefore never admitted: its transaction is a loser.
//  4. Undo the losers: transactions with a live undo chain at the end of
//     the log never committed; their updates are reverted in reverse
//     order. (Eager updates come only from strict schedulers, so live
//     transactions never share a variable and per-transaction reverse
//     undo is exact.) A chain seeded from the checkpoint undoes the same
//     way even though its update records may live in retired segments —
//     that is why checkpoints carry live chains. Buffered transactions
//     need no undo: their writes only ever reach the log inside a commit
//     record.
//
// The recovered state is then compacted: one snapshot record is written
// to a fresh segment (via temp file + atomic rename, so a crash during
// recovery is itself recoverable), every pre-existing segment, checkpoint
// and temp file is removed, and a new active segment is opened. A second
// OpenDisk on the result is therefore clean — recovery converges in one
// pass, which the torture harness asserts as "converges in ≤2".
//
// The invariant this buys (DESIGN.md "Durability"): after a crash, the
// recovered state equals the serial replay of exactly the transactions
// whose commit records are on the synced prefix of the log — every synced
// commit survives, no uncommitted write is visible. Checkpoints only ever
// widen the durable set (a checkpoint may preserve a commit that was
// appended but not yet synced when captured), never shrink it: nothing is
// unlinked before the covering marker is synced durable.
//
// RecoveryBytes reports how much this open actually read back — checkpoint
// plus replayed tail. With checkpointing that is log-since-checkpoint, not
// log-since-birth, which is the whole point: it is the deterministic proxy
// the bounded-recovery tests assert on.
func OpenDisk(cfg Config) (*Disk, error) {
	start := time.Now()
	d, err := NewDisk(cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Disk, error) {
		d.Close() // stop the checkpointer, release the dir lock
		return nil, err
	}
	names, err := d.fs.List(d.dir)
	if err != nil {
		return fail(fmt.Errorf("storage: recovery list %s: %w", d.dir, err))
	}
	var segs, ckpts []string
	segSeq := make(map[string]int)
	hasSeg := make(map[int]bool)
	maxSeq := 0
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, "seg-") && strings.HasSuffix(n, ".wal"):
			var seq int
			if _, err := fmt.Sscanf(n, "seg-%d.wal", &seq); err != nil {
				continue
			}
			segs = append(segs, n)
			segSeq[n] = seq
			hasSeg[seq] = true
			if seq > maxSeq {
				maxSeq = seq
			}
		case strings.HasPrefix(n, ckptPrefix) && strings.HasSuffix(n, ckptSuffix):
			ckpts = append(ckpts, n)
		}
		// Anything else — .tmp leftovers of a crashed checkpoint or
		// compaction, the LOCK file — carries no recoverable state; the
		// compaction sweep below disposes of the leftovers.
	}
	sort.Strings(segs)
	sort.Strings(ckpts)

	// Newest usable checkpoint wins. The anchor segment must still exist:
	// only a newer checkpoint's retirement removes it, and that newer
	// checkpoint is tried first, so a missing anchor marks a stale or
	// foreign file, not a protocol state.
	var img *ckptImage
	for i := len(ckpts) - 1; i >= 0 && img == nil; i-- {
		if c, ok := loadCheckpoint(d.fs, d.dir, ckpts[i]); ok && hasSeg[c.aseq] {
			img = c
		}
	}

	table := make(map[core.Var]core.Value)
	live := make(map[int][]diskUndo) // undo chains of not-yet-ended eager txs
	truncated := false
	replayed := int64(0)
	apply := func(r walRec) {
		switch r.kind {
		case walSnapshot:
			table = make(map[core.Var]core.Value, len(r.writes))
			for _, w := range r.writes {
				table[w.v] = w.val
			}
			live = make(map[int][]diskUndo)
		case walUpdate:
			live[r.tx] = append(live[r.tx], diskUndo{v: r.v, old: r.old, existed: r.existed})
			table[r.v] = r.new
		case walCommit:
			for _, w := range r.writes {
				table[w.v] = w.val
			}
			delete(live, r.tx)
		case walAbort:
			undoChain(table, live[r.tx])
			delete(live, r.tx)
		case walCkpt:
			// Markers gate retirement; they carry no state to replay.
		}
	}

	tail := segs
	if img != nil {
		table, live = img.table, img.live
		replayed += int64(img.bytes)
		tail = tail[:0:0]
		for _, n := range segs {
			if segSeq[n] >= img.aseq {
				tail = append(tail, n)
			}
		}
	}
	for i, name := range tail {
		data, err := d.fs.ReadFile(segPath(d.dir, name))
		if err != nil {
			return fail(fmt.Errorf("storage: recovery read %s: %w", name, err))
		}
		if img != nil && i == 0 {
			// The anchor segment's prefix [0, aoff) is inside the checkpoint
			// already; replay resumes at the anchor. A file shorter than the
			// anchor means the unsynced pre-anchor tail was lost to real
			// power loss before the marker sync made it durable — nothing
			// past the checkpoint can be trusted then.
			if int64(len(data)) < img.aoff {
				truncated = true
				break
			}
			data = data[img.aoff:]
		}
		valid, clean := walScan(data, apply)
		replayed += int64(valid)
		if !clean {
			truncated = true
			break // later segments are beyond the torn tail: discard
		}
	}
	for _, chain := range live {
		undoChain(table, chain)
	}

	// Compact: persist the recovered state as a snapshot segment, drop
	// every replayed or superseded file, open a fresh active segment.
	// Written under temp name then renamed, so every intermediate crash
	// state re-recovers to the same database.
	snapSeq := maxSeq + 1
	snapName := segName(snapSeq)
	tmpName := snapName + ".tmp"
	f, err := d.fs.Create(segPath(d.dir, tmpName))
	if err != nil {
		return fail(fmt.Errorf("storage: recovery snapshot: %w", err))
	}
	db := make(core.DB, len(table))
	for v, val := range table {
		db[v] = val
	}
	frame := d.enc.encodeSnapshot(db)
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fail(fmt.Errorf("storage: recovery snapshot write: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fail(fmt.Errorf("storage: recovery snapshot sync: %w", err))
	}
	f.Close()
	d.fsyncs.Add(1)
	d.walBytes.Add(int64(len(frame)))
	if err := d.fs.Rename(segPath(d.dir, tmpName), segPath(d.dir, snapName)); err != nil {
		return fail(fmt.Errorf("storage: recovery snapshot rename: %w", err))
	}
	for _, name := range names {
		if name == lockFileName {
			continue
		}
		if err := d.fs.Remove(segPath(d.dir, name)); err != nil {
			return fail(fmt.Errorf("storage: recovery compact: %w", err))
		}
	}
	d.seq = snapSeq + 1
	active, err := d.fs.Create(segPath(d.dir, segName(d.seq)))
	if err != nil {
		return fail(fmt.Errorf("storage: recovery open active: %w", err))
	}
	d.active = active
	d.activeBytes = 0
	d.table = table
	if truncated {
		d.walTruncated.Add(1)
	}
	d.recoveryBytes.Store(replayed)
	d.recoveryNs.Store(time.Since(start).Nanoseconds())
	return d, nil
}

// ckptImage is a decoded checkpoint file: the captured table, the undo
// chains of the transactions live at the capture, and the log anchor the
// capture equals.
type ckptImage struct {
	table map[core.Var]core.Value
	live  map[int][]diskUndo
	aseq  int
	aoff  int64
	bytes int
}

// loadCheckpoint reads and validates one checkpoint file: a clean scan
// whose first record is the walCkpt header, followed by exactly one
// snapshot and any number of live-chain update records. Anything else —
// torn tail, wrong shape, unreadable — disqualifies the file; recovery
// falls back to an older checkpoint or a full replay.
func loadCheckpoint(fs FS, dir, name string) (*ckptImage, bool) {
	data, err := fs.ReadFile(segPath(dir, name))
	if err != nil {
		return nil, false
	}
	img := &ckptImage{
		table: make(map[core.Var]core.Value),
		live:  make(map[int][]diskUndo),
	}
	first, sawSnap, wellFormed := true, false, true
	valid, clean := walScan(data, func(r walRec) {
		if first {
			first = false
			if r.kind != walCkpt {
				wellFormed = false
				return
			}
			img.aseq, img.aoff = r.aseq, r.aoff
			return
		}
		switch r.kind {
		case walSnapshot:
			if sawSnap {
				wellFormed = false
				return
			}
			sawSnap = true
			for _, w := range r.writes {
				img.table[w.v] = w.val
			}
		case walUpdate:
			// Live-chain entries: the redo value is already in the snapshot
			// (the capture copied the table last-writer-wins), so applying it
			// is a no-op; what matters is rebuilding the undo chain.
			img.live[r.tx] = append(img.live[r.tx], diskUndo{v: r.v, old: r.old, existed: r.existed})
			img.table[r.v] = r.new
		default:
			wellFormed = false
		}
	})
	if !clean || first || !sawSnap || !wellFormed {
		return nil, false
	}
	img.bytes = valid
	return img, true
}

// undoChain reverts one transaction's eager updates, newest first.
func undoChain(table map[core.Var]core.Value, chain []diskUndo) {
	for i := len(chain) - 1; i >= 0; i-- {
		u := chain[i]
		if u.existed {
			table[u.v] = u.old
		} else {
			delete(table, u.v)
		}
	}
}
