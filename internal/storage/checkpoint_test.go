package storage

// Checkpoint torture and contract tests. The crash sweeps extend the
// torture harness (torture_test.go) through every checkpointer step:
// Rename and Remove are countable ErrFS operations, so CrashAt visits
// mid-checkpoint-file-write, pre-rename, post-rename-pre-marker,
// post-marker-pre-unlink and mid-unlink, and checkRecovered asserts the
// full recovery invariant at each. The rest pins the operational
// contract: retirement bounds the on-disk footprint and recovery work,
// transient faults retry, persistent faults degrade gracefully without
// touching the commit path, and a poisoned store never unlinks again.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"optcc/internal/core"
)

// dropLock simulates process death for the in-process crash sweeps. The
// kernel releases a dead process's flock, but a "crashed" store object in
// these tests is still alive in this process — without this it would
// wedge its directory against the recovering OpenDisk. (The WAL crash
// paths release the lock themselves via poisonLocked; a crash confined to
// the checkpoint path deliberately leaves the store healthy, so only the
// simulated death releases it.)
func dropLock(d *Disk) {
	d.mu.Lock()
	if d.lock != nil {
		d.lock.Close()
		d.lock = nil
	}
	d.mu.Unlock()
}

// runCkptTortureWorkload is runTortureWorkload with an explicit checkpoint
// every other commit. Checkpoint errors are deliberately ignored: the
// graceful-degradation contract says a failed checkpoint must not disturb
// the commit path, so the workload keeps going until the log itself
// poisons the store.
func runCkptTortureWorkload(d *Disk, sys *core.System) (synced []int) {
	for tx := range sys.Txs {
		for _, step := range sys.Txs[tx].Steps {
			if err := d.ApplyStep(tx, step); err != nil {
				d.Rollback(tx)
				return synced
			}
		}
		d.Commit(tx)
		if d.Err() != nil {
			return synced
		}
		synced = append(synced, tx)
		if tx%2 == 1 {
			d.Checkpoint()
		}
	}
	return synced
}

// ckptTortureConfig: segments small enough that every checkpoint has
// something to retire, no background loop (explicit checkpoints keep the
// operation sequence deterministic for the injection sweep).
func ckptTortureConfig(dir string, fs FS, buffered bool) Config {
	return Config{Dir: dir, FS: fs, Fsync: FsyncAlways, Buffered: buffered, SegmentBytes: 192}
}

// TestCheckpointCrashRecoveryEveryInjectionPoint is the exhaustive sweep
// through the checkpointer: the workload checkpoints every other commit,
// and the crash lands at EVERY countable operation in turn — including
// the checkpoint file's writes and sync, its publishing rename, the WAL
// marker append and sync, and each retirement unlink. Recovery must be
// exact at all of them, in both execution modes.
func TestCheckpointCrashRecoveryEveryInjectionPoint(t *testing.T) {
	sys := tortureSystem(8)
	for _, buffered := range []bool{false, true} {
		mode := "eager"
		if buffered {
			mode = "buffered"
		}
		t.Run(mode, func(t *testing.T) {
			// Fault-free run sizes the injection space.
			efs := NewErrFS(OSFS{})
			d, err := NewDisk(ckptTortureConfig(t.TempDir(), efs, buffered))
			if err != nil {
				t.Fatal(err)
			}
			d.Reset(tortureInit)
			if got := len(runCkptTortureWorkload(d, sys)); got != len(sys.Txs) {
				t.Fatalf("fault-free run committed %d of %d", got, len(sys.Txs))
			}
			if ds := d.DurabilityStats(); ds.Checkpoints == 0 || ds.SegmentsRetired == 0 {
				t.Fatalf("fault-free run exercised no retirement: %+v", ds)
			}
			d.Close()
			total := efs.Ops()

			for k := int64(1); k <= total; k++ {
				dir := t.TempDir()
				efs := NewErrFS(OSFS{})
				d, err := NewDisk(ckptTortureConfig(dir, efs, buffered))
				if err != nil {
					t.Fatal(err)
				}
				efs.CrashAt(k)
				d.Reset(tortureInit)
				synced := runCkptTortureWorkload(d, sys)
				// No Close: the process "died". Recover from the real files.
				dropLock(d)
				checkRecovered(t, fmt.Sprintf("%s/ckpt-crash@%d", mode, k), dir, sys, synced)
			}
		})
	}
}

// TestCheckpointTransientFaultSweep is the FailAt/ShortWriteAt analogue:
// a one-shot fault anywhere in the checkpointed workload. Faults on the
// log poison the store; faults on the checkpoint path merely fail that
// checkpoint. Either way recovery must be exact.
func TestCheckpointTransientFaultSweep(t *testing.T) {
	sys := tortureSystem(8)
	for _, buffered := range []bool{false, true} {
		mode := "eager"
		if buffered {
			mode = "buffered"
		}
		t.Run(mode, func(t *testing.T) {
			efs := NewErrFS(OSFS{})
			d, err := NewDisk(ckptTortureConfig(t.TempDir(), efs, buffered))
			if err != nil {
				t.Fatal(err)
			}
			d.Reset(tortureInit)
			runCkptTortureWorkload(d, sys)
			d.Close()
			total := efs.Ops()

			for k := int64(1); k <= total; k += 3 { // sample a third of the space
				for _, fault := range []string{"fail", "short"} {
					dir := t.TempDir()
					efs := NewErrFS(OSFS{})
					d, err := NewDisk(ckptTortureConfig(dir, efs, buffered))
					if err != nil {
						t.Fatal(err)
					}
					if fault == "fail" {
						efs.FailAt(k)
					} else {
						efs.ShortWriteAt(k)
					}
					d.Reset(tortureInit)
					synced := runCkptTortureWorkload(d, sys)
					d.Close()
					checkRecovered(t, fmt.Sprintf("%s/ckpt-%s@%d", mode, fault, k), dir, sys, synced)
				}
			}
		})
	}
}

// TestCheckpointRetiresSegments pins the tentpole's visible effect: after
// a checkpoint, every segment wholly behind the anchor is gone from disk,
// the live state is untouched, and recovery from what remains is exact.
func TestCheckpointRetiresSegments(t *testing.T) {
	sys := tortureSystem(40)
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	if got := len(runTortureWorkload(d, sys)); got != 40 {
		t.Fatalf("committed %d of 40", got)
	}
	before := len(listSegments(t, dir))
	if before < 5 {
		t.Fatalf("only %d segments before checkpoint; nothing to retire", before)
	}
	live := d.State()
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := len(listSegments(t, dir))
	if after >= before {
		t.Fatalf("checkpoint retired nothing: %d segments before, %d after", before, after)
	}
	if after > 1 {
		t.Fatalf("post-checkpoint footprint is %d segments, want just the active one", after)
	}
	if !d.State().Equal(live) {
		t.Fatalf("checkpoint disturbed the live state")
	}
	ds := d.DurabilityStats()
	if ds.Checkpoints != 1 || ds.SegmentsRetired == 0 || ds.CheckpointBytes == 0 {
		t.Fatalf("stats after checkpoint: %+v", ds)
	}
	if ds.CheckpointerOff {
		t.Fatalf("CheckpointerOff after a successful checkpoint")
	}
	d.Close()
	checkRecovered(t, "retire", dir, sys, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
}

// TestCheckpointLiveTransactions is the "fuzzy" in fuzzy checkpoint: a
// checkpoint captured while an eager transaction is mid-flight must carry
// its undo chain, because its update records may be retired with the
// segments. Whatever the transaction then does — crash-never-ends, abort,
// or commit — recovery must resolve it correctly from the checkpoint plus
// the tail.
func TestCheckpointLiveTransactions(t *testing.T) {
	for _, outcome := range []string{"crash", "abort", "commit"} {
		t.Run(outcome, func(t *testing.T) {
			dir := t.TempDir()
			d, err := NewDisk(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 128})
			if err != nil {
				t.Fatal(err)
			}
			d.Reset(core.DB{"x": 1, "y": 2})
			// Committed baseline the checkpoint must preserve.
			applyTx(t, d, 1, []walWrite{{v: "x", val: 10}})
			d.Commit(1)
			// Transaction 2 is live across the checkpoint: two writes to y
			// (a two-entry undo chain), nothing committed.
			step := func(val core.Value) core.Step {
				return core.Step{Var: "y", Kind: core.Write, Fn: func([]core.Value) core.Value { return val }}
			}
			if err := d.ApplyStep(2, step(20)); err != nil {
				t.Fatal(err)
			}
			if err := d.ApplyStep(2, step(21)); err != nil {
				t.Fatal(err)
			}
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			want := core.DB{"x": 10, "y": 2} // live tx 2 is a loser...
			switch outcome {
			case "crash":
				// ...the process dies with tx 2 still open: nothing to do.
			case "abort":
				d.Rollback(2)
			case "commit":
				d.Commit(2)
				want = core.DB{"x": 10, "y": 21}
			}
			if err := d.Err(); err != nil {
				t.Fatal(err)
			}
			// No Close on "crash"; the others close cleanly.
			if outcome == "crash" {
				dropLock(d)
			} else {
				d.Close()
			}
			r, err := OpenDisk(Config{Dir: dir})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer r.Close()
			if got := r.State(); !got.Equal(want) {
				t.Fatalf("recovered %v, want %v", got, want)
			}
		})
	}
}

// ckptFailFS fails operations that touch checkpoint files ("ckpt-" names)
// while letting the log through untouched — the selective injector for
// the graceful-degradation tests. remaining < 0 means fail forever.
type ckptFailFS struct {
	FS
	mu        sync.Mutex
	remaining int
	failures  int
}

var errCkptInjected = errors.New("ckptfail: injected checkpoint-path failure")

func (c *ckptFailFS) hit(name string) bool {
	if !strings.HasPrefix(filepath.Base(name), ckptPrefix) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining == 0 {
		return false
	}
	if c.remaining > 0 {
		c.remaining--
	}
	c.failures++
	return true
}

func (c *ckptFailFS) Create(name string) (File, error) {
	if c.hit(name) {
		return nil, errCkptInjected
	}
	return c.FS.Create(name)
}

func (c *ckptFailFS) Rename(oldname, newname string) error {
	if c.hit(newname) {
		return errCkptInjected
	}
	return c.FS.Rename(oldname, newname)
}

// fillDisk appends committed transactions until the WAL has grown by at
// least bytes (as seen by WALBytes), failing the test on any store error.
func fillDisk(t *testing.T, d *Disk, from int, bytes int64) int {
	t.Helper()
	start := d.DurabilityStats().WALBytes
	tx := from
	for d.DurabilityStats().WALBytes < start+bytes {
		v := core.Var(fmt.Sprintf("fill%04d", tx%512))
		val := core.Value(tx)
		if err := d.ApplyStep(tx, core.Step{Var: v, Kind: core.Write, Fn: func([]core.Value) core.Value { return val }}); err != nil {
			t.Fatalf("fill apply: %v", err)
		}
		d.Commit(tx)
		if err := d.Err(); err != nil {
			t.Fatalf("fill commit: %v", err)
		}
		tx++
	}
	return tx
}

// waitStats polls DurabilityStats until cond holds or the deadline hits.
func waitStats(t *testing.T, d *Disk, what string, cond func(DurabilityStats) bool) DurabilityStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ds := d.DurabilityStats()
		if cond(ds) {
			return ds
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, ds)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointBackgroundThreshold pins the background trigger: crossing
// CheckpointBytes of appended WAL wakes the checkpointer without any
// explicit call, and the footprint stays bounded while commits continue.
func TestCheckpointBackgroundThreshold(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 1024, CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	next := fillDisk(t, d, 0, 16*1024)
	waitStats(t, d, "a background checkpoint", func(ds DurabilityStats) bool {
		return ds.Checkpoints >= 1
	})
	// Keep committing; retirement must keep the segment count bounded.
	fillDisk(t, d, next, 16*1024)
	waitStats(t, d, "retirement to catch up", func(ds DurabilityStats) bool {
		return ds.SegmentsRetired >= 4
	})
	if ds := d.DurabilityStats(); ds.CheckpointerOff {
		t.Fatalf("CheckpointerOff with a healthy filesystem: %+v", ds)
	}
	live := d.State()
	d.Close()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.State().Equal(live) {
		t.Fatalf("recovered state diverged from live state")
	}
}

// TestCheckpointTransientFaultRetry: the first checkpoint attempts fail
// (checkpoint path only), the background loop retries with backoff, and a
// later attempt lands. The store stays healthy throughout.
func TestCheckpointTransientFaultRetry(t *testing.T) {
	cfs := &ckptFailFS{FS: OSFS{}, remaining: 2}
	d, err := NewDisk(Config{Dir: t.TempDir(), FS: cfs, Fsync: FsyncAlways, SegmentBytes: 1024, CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Reset(tortureInit)
	fillDisk(t, d, 0, 8*1024)
	ds := waitStats(t, d, "a checkpoint after transient faults", func(ds DurabilityStats) bool {
		return ds.Checkpoints >= 1
	})
	if ds.CheckpointFailures != 2 {
		t.Fatalf("CheckpointFailures = %d, want exactly the 2 injected", ds.CheckpointFailures)
	}
	if ds.CheckpointerOff {
		t.Fatalf("transient faults disabled the checkpointer: %+v", ds)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("checkpoint faults poisoned the store: %v", err)
	}
}

// TestCheckpointPersistentFailureDegrades is the ENOSPC-shaped contract:
// when every checkpoint attempt fails, the checkpointer backs off, gives
// up, and surfaces CheckpointerOff — while commits keep succeeding, the
// store stays unpoisoned, and recovery of the (unretired) log is exact.
func TestCheckpointPersistentFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	cfs := &ckptFailFS{FS: OSFS{}, remaining: -1}
	d, err := NewDisk(Config{Dir: dir, FS: cfs, Fsync: FsyncAlways, SegmentBytes: 1024, CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	next := fillDisk(t, d, 0, 8*1024)
	ds := waitStats(t, d, "the checkpointer to disable itself", func(ds DurabilityStats) bool {
		return ds.CheckpointerOff
	})
	if ds.Checkpoints != 0 || ds.SegmentsRetired != 0 {
		t.Fatalf("persistently failing checkpointer reported progress: %+v", ds)
	}
	if ds.CheckpointFailures < int64(ckptMaxFailures) {
		t.Fatalf("CheckpointFailures = %d before disabling, want >= %d", ds.CheckpointFailures, ckptMaxFailures)
	}
	// The commit path must not have noticed.
	if err := d.Err(); err != nil {
		t.Fatalf("checkpoint failures poisoned the store: %v", err)
	}
	fillDisk(t, d, next, 4*1024)
	live := d.State()
	d.Close()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.State().Equal(live) {
		t.Fatalf("recovered state diverged after degraded run")
	}
}

// TestPoisonedStoreNoUnlinks is the sticky-error hygiene regression test:
// once the log poisons the store, Checkpoint refuses with the sticky
// error, GroupSync keeps returning it, and — crucially — no file is
// unlinked anymore: the poisoned log is the only evidence recovery has.
func TestPoisonedStoreNoUnlinks(t *testing.T) {
	sys := tortureSystem(30)
	dir := t.TempDir()
	efs := NewErrFS(OSFS{})
	d, err := NewDisk(Config{Dir: dir, FS: efs, Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	synced := runTortureWorkload(d, sys)
	efs.FailAt(efs.Ops() + 1) // poison the very next log write
	step := core.Step{Var: "poison", Kind: core.Write, Fn: func([]core.Value) core.Value { return 1 }}
	if err := d.ApplyStep(900, step); err == nil {
		t.Fatal("armed fault did not fail the write")
	}
	sticky := d.Err()
	if sticky == nil {
		t.Fatal("store not poisoned")
	}
	files := func() []string {
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range names {
			out = append(out, e.Name())
		}
		return out
	}
	before := files()
	if err := d.Checkpoint(); !errors.Is(err, sticky) {
		t.Fatalf("Checkpoint on poisoned store = %v, want the sticky %v", err, sticky)
	}
	if err := d.GroupSync(); !errors.Is(err, sticky) {
		t.Fatalf("GroupSync on poisoned store = %v, want the sticky %v", err, sticky)
	}
	after := files()
	if len(before) != len(after) {
		t.Fatalf("poisoned store changed the directory: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("poisoned store changed the directory: %v -> %v", before, after)
		}
	}
	checkRecovered(t, "poisoned", dir, sys, synced)
}

// TestCheckpointRecoveryBounded is the bounded-recovery contract: with
// periodic checkpoints, the on-disk segment count and the bytes recovery
// replays stay bounded no matter how much history the store has committed
// — while the same workload without checkpointing grows both monotonically.
func TestCheckpointRecoveryBounded(t *testing.T) {
	const rounds, bytesPerRound = 8, 8 * 1024
	run := func(checkpoint bool) (maxSegs int, recovered int64) {
		dir := t.TempDir()
		d, err := NewDisk(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		d.Reset(tortureInit)
		next := 0
		for r := 0; r < rounds; r++ {
			next = fillDisk(t, d, next, bytesPerRound)
			if checkpoint {
				if err := d.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			if n := len(listSegments(t, dir)); n > maxSegs {
				maxSegs = n
			}
		}
		live := d.State()
		d.Close()
		r, err := OpenDisk(Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if !r.State().Equal(live) {
			t.Fatal("recovered state diverged")
		}
		return maxSegs, r.DurabilityStats().RecoveryBytes
	}
	boundedSegs, boundedBytes := run(true)
	growingSegs, growingBytes := run(false)
	// One round's worth of segments plus slack: the bound must not scale
	// with rounds. The unchecked run keeps every segment it ever sealed.
	segBound := bytesPerRound/1024 + 3
	if boundedSegs > segBound {
		t.Fatalf("checkpointed run peaked at %d segments, want <= %d (footprint not bounded)", boundedSegs, segBound)
	}
	if growingSegs <= segBound {
		t.Fatalf("control run peaked at %d segments; the workload is too small to distinguish growth", growingSegs)
	}
	if boundedBytes*2 >= growingBytes {
		t.Fatalf("RecoveryBytes %d with checkpoints vs %d without: replay not meaningfully bounded", boundedBytes, growingBytes)
	}
}

// postRenameFS invokes a one-shot hook immediately AFTER a successful
// rename — the post-rename-pre-marker window, where a checkpoint file has
// been published but its WAL marker has not. The superseded-by-Reset test
// lands a full Reset in exactly that window, deterministically.
type postRenameFS struct {
	FS
	mu   sync.Mutex
	hook func()
}

func (p *postRenameFS) Rename(oldname, newname string) error {
	err := p.FS.Rename(oldname, newname)
	p.mu.Lock()
	hook := p.hook
	p.hook = nil
	p.mu.Unlock()
	if hook != nil {
		hook()
	}
	return err
}

// TestCheckpointSupersededByReset pins the Reset-abandons-checkpoint
// contract: a Reset landing after the checkpoint file is published but
// before the marker must abandon the attempt — counted neither as a
// completed checkpoint nor as a failure, since it published nothing usable
// for the new incarnation's log — and the fresh incarnation's segments
// must survive the dead generation's retirement untouched.
func TestCheckpointSupersededByReset(t *testing.T) {
	dir := t.TempDir()
	pfs := &postRenameFS{FS: OSFS{}}
	d, err := NewDisk(Config{Dir: dir, FS: pfs, Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	fillDisk(t, d, 0, 4*1024) // several sealed segments to tempt retirement
	pfs.mu.Lock()
	pfs.hook = func() { d.Reset(tortureInit) }
	pfs.mu.Unlock()
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("superseded checkpoint must not report an error: %v", err)
	}
	ds := d.DurabilityStats()
	if ds.Checkpoints != 0 {
		t.Fatalf("superseded checkpoint counted as completed: %+v", ds)
	}
	if ds.CheckpointFailures != 0 {
		t.Fatalf("superseded checkpoint counted as failed: %+v", ds)
	}
	if ds.SegmentsRetired != 0 {
		t.Fatalf("dead generation's checkpoint retired segments: %+v", ds)
	}
	if segs := listSegments(t, dir); len(segs) != 1 || filepath.Base(segs[0]) != segName(1) {
		t.Fatalf("fresh incarnation's log damaged: segments %v, want [%s]", segs, segName(1))
	}
	if err := d.Err(); err != nil {
		t.Fatalf("superseded checkpoint poisoned the store: %v", err)
	}
	// The new incarnation must still work end to end.
	fillDisk(t, d, 0, 1024)
	live := d.State()
	d.Close()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after superseded checkpoint: %v", err)
	}
	defer r.Close()
	if !r.State().Equal(live) {
		t.Fatalf("recovered state diverged after superseded checkpoint")
	}
}

// TestCheckpointResetRace hammers Reset against in-flight checkpoints. The
// regression surface: retirement unlinking the fresh incarnation's opening
// segment when a Reset lands between the marker and the unlinks — which
// silently destroys the new log while the store keeps appending to an
// unlinked inode. Whatever the interleaving, the surviving incarnation's
// seg-00000001.wal must stay on disk, the store must stay healthy, and
// recovery must be exact. (A checkpoint racing a Reset may legitimately
// fail transiently — its tmp file can vanish under it — but must never
// poison the store or touch the new log.)
func TestCheckpointResetRace(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncNever, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		d.Reset(tortureInit)
		if err := d.Err(); err != nil {
			t.Fatalf("round %d: reset: %v", round, err)
		}
		fillDisk(t, d, 0, 2048) // a handful of sealed segments to retire
		done := make(chan error, 1)
		go func() { done <- d.Checkpoint() }()
		d.Reset(tortureInit) // races the checkpoint's marker/retire steps
		<-done
		if err := d.Err(); err != nil {
			t.Fatalf("round %d: race poisoned the store: %v", round, err)
		}
		found := false
		for _, s := range listSegments(t, dir) {
			if filepath.Base(s) == segName(1) {
				found = true
			}
		}
		if !found {
			t.Fatalf("round %d: fresh incarnation's %s was unlinked by a dead checkpoint", round, segName(1))
		}
	}
	fillDisk(t, d, 0, 512)
	live := d.State()
	d.Close()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.State().Equal(live) {
		t.Fatalf("recovered state diverged after reset/checkpoint races")
	}
}

// TestCheckpointerRespawnsAfterDegraded: after persistent failures park the
// background loop, a Reset must not merely clear the CheckpointerOff flag —
// it must bring back a live checkpointer, or the store reports healthy
// while its log grows without bound.
func TestCheckpointerRespawnsAfterDegraded(t *testing.T) {
	cfs := &ckptFailFS{FS: OSFS{}, remaining: -1}
	d, err := NewDisk(Config{Dir: t.TempDir(), FS: cfs, Fsync: FsyncAlways, SegmentBytes: 1024, CheckpointBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Reset(tortureInit)
	fillDisk(t, d, 0, 8*1024)
	waitStats(t, d, "the checkpointer to disable itself", func(ds DurabilityStats) bool {
		return ds.CheckpointerOff
	})
	// The fault condition resolves (the disk stops being full); a Reset
	// restarts the world — and must restart the checkpointer with it.
	cfs.mu.Lock()
	cfs.remaining = 0
	cfs.mu.Unlock()
	d.Reset(tortureInit)
	if ds := d.DurabilityStats(); ds.CheckpointerOff {
		t.Fatalf("CheckpointerOff still set after Reset: %+v", ds)
	}
	fillDisk(t, d, 0, 16*1024)
	waitStats(t, d, "a checkpoint from the respawned loop", func(ds DurabilityStats) bool {
		return ds.Checkpoints >= 1 && ds.SegmentsRetired >= 1
	})
	if err := d.Err(); err != nil {
		t.Fatalf("respawned checkpointer broke the store: %v", err)
	}
}

// TestCheckpointConcurrentCommits runs the background checkpointer against
// concurrent committers (write-buffered mode, disjoint keys) — the
// race-detector workout for the capture/retire locking. The final state
// must be exact after recovery and at least one checkpoint must land.
func TestCheckpointConcurrentCommits(t *testing.T) {
	const workers, iters = 4, 300
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncGroup, Buffered: true, SegmentBytes: 2048, CheckpointBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	init := core.DB{}
	for w := 0; w < workers; w++ {
		init[core.Var(fmt.Sprintf("w%d", w))] = 0
	}
	d.Reset(init)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := core.Var(fmt.Sprintf("w%d", w))
			for i := 1; i <= iters; i++ {
				tx := w*1_000_000 + i
				val := core.Value(i)
				if err := d.ApplyStep(tx, core.Step{Var: v, Kind: core.Write, Fn: func([]core.Value) core.Value { return val }}); err != nil {
					t.Error(err)
					return
				}
				d.Commit(tx)
				if i%8 == 0 {
					if err := d.GroupSync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	waitStats(t, d, "a checkpoint under concurrency", func(ds DurabilityStats) bool {
		return ds.Checkpoints >= 1
	})
	live := d.State()
	d.Close()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	recovered := r.State()
	if !recovered.Equal(live) {
		t.Fatalf("recovered != live\n  live      %v\n  recovered %v", live, recovered)
	}
	for w := 0; w < workers; w++ {
		if got := recovered[core.Var(fmt.Sprintf("w%d", w))]; got != iters {
			t.Fatalf("w%d = %d after recovery, want %d", w, got, iters)
		}
	}
}
