//go:build !unix

package storage

import "os"

const lockFileName = "LOCK"

// lockDir is a no-op on platforms without flock: double-open protection
// is advisory and unix-only; the rest of the backend works unchanged.
func lockDir(dir string) (*os.File, error) { return nil, nil }
