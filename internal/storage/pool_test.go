package storage

// Pooled-buffer correctness: payload recycling (Config.Recycle) must never
// alias a buffer that is still reachable through a committed record. The
// deterministic test forces freelist reuse through a single shard and
// checks committed bytes survive; the concurrent test hammers recycling
// commits, rollbacks and readers under the race detector — any aliasing
// shows up as a checksum panic, a race report, or a wrong final state.

import (
	"fmt"
	"sync"
	"testing"

	"optcc/internal/core"
)

// step returns an Update step on v incrementing the stored scalar.
func incStep(v core.Var) core.Step {
	return core.Step{Var: v, Kind: core.Update,
		Fn: func(l []core.Value) core.Value { return l[len(l)-1] + 1 }}
}

// TestRecycleNoAliasingDeterministic drives one shard (Shards: 1, so every
// variable shares a freelist) through displace→commit→reuse cycles: after
// a commit recycles v's displaced record, writes to other variables of the
// same size class must reuse that buffer without disturbing v's committed
// record — Get re-checksums the payload on every read and panics on
// corruption, and the scalar must still match.
func TestRecycleNoAliasingDeterministic(t *testing.T) {
	kv := NewKV(Config{Shards: 1, ValueSize: 128, Recycle: true})
	init := core.DB{}
	vars := make([]core.Var, 8)
	for i := range vars {
		vars[i] = core.Var(fmt.Sprintf("v%d", i))
		init[vars[i]] = 0
	}
	kv.Reset(init)

	// Commit one write per variable, round-robin, several times: every
	// commit feeds the freelist and every write draws from it.
	for round := 1; round <= 5; round++ {
		for tx, v := range vars {
			if err := kv.ApplyStep(tx, incStep(v)); err != nil {
				t.Fatal(err)
			}
			kv.Commit(tx)
		}
		for tx, v := range vars {
			if got := kv.Get(tx, v); got != core.Value(round) {
				t.Fatalf("round %d: %s = %d, want %d (recycled buffer aliased a committed record?)",
					round, v, got, round)
			}
		}
	}
	// Rollback recycling: the dying write's buffer returns to the pool and
	// the restored record must be byte-identical to the pre-write snapshot.
	before := kv.Snapshot()
	if err := kv.ApplyStep(0, incStep(vars[0])); err != nil {
		t.Fatal(err)
	}
	kv.Rollback(0)
	// Reuse the freshly recycled buffer for a different variable.
	if err := kv.ApplyStep(1, incStep(vars[1])); err != nil {
		t.Fatal(err)
	}
	kv.Commit(1)
	after := kv.Snapshot()
	rec, ok := after[vars[0]]
	if !ok || rec.Scalar != before[vars[0]].Scalar || string(rec.Payload) != string(before[vars[0]].Payload) {
		t.Fatalf("rollback-recycled buffer corrupted %s's restored record", vars[0])
	}
}

// TestRecycleConcurrentRace is the -race stress for the satellite: many
// writers commit and roll back against recycling freelists while readers
// checksum records of every variable, all funneled into two shards so
// cross-goroutine freelist reuse is constant. The goroutines observe the
// recycling soundness envelope — strict execution — through per-variable
// reader/writer locks exactly as the runtime's schedulers do (a reader
// holds its lock until it is done with the record, so a displaced record
// is never recycled under a reader). Aliasing would surface as a checksum
// panic, a race report, or a wrong final state.
func TestRecycleConcurrentRace(t *testing.T) {
	const (
		writers = 8
		rounds  = 200
	)
	kv := NewKV(Config{Shards: 2, ValueSize: 256, Recycle: true})
	init := core.DB{}
	vars := make([]core.Var, writers)
	locks := make([]sync.RWMutex, writers)
	for i := range vars {
		vars[i] = core.Var(fmt.Sprintf("w%d", i))
		init[vars[i]] = 0
	}
	kv.Reset(init)

	var writerWg, readerWg sync.WaitGroup
	commits := make([]int, writers)
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			v := vars[w]
			for r := 0; r < rounds; r++ {
				locks[w].Lock()
				if err := kv.ApplyStep(w, incStep(v)); err != nil {
					panic(err)
				}
				if r%3 == 2 {
					kv.Rollback(w) // exercise dying-write recycling
				} else {
					kv.Commit(w)
					commits[w]++
				}
				locks[w].Unlock()
			}
		}(w)
	}
	// Readers continuously checksum every record (Get verifies the payload
	// checksum and panics on corruption) until the writers finish.
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readerWg.Add(1)
		go func(r int) {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, v := range vars {
					locks[i].RLock()
					kv.Get(1000+r, v)
					locks[i].RUnlock()
				}
			}
		}(r)
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()

	for w, v := range vars {
		if got := kv.Get(0, v); got != core.Value(commits[w]) {
			t.Fatalf("%s = %d, want %d committed increments", v, got, commits[w])
		}
	}
}
