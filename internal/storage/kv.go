package storage

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// Record is one stored value: the paper's int64 scalar plus an opaque
// payload of configurable size, protected by a checksum. Records are
// immutable once stored — a write builds a fresh record (copy-on-write), so
// an undo-log entry holding the previous record restores it byte-identically
// and readers may checksum a record after the shard lock is released.
type Record struct {
	// Scalar is the core.Value visible to step interpretations.
	Scalar core.Value
	// Payload is the opaque value body; reads checksum it, writes copy it.
	Payload []byte
	// Sum is the XOR checksum of Payload, verified on every read.
	Sum byte
}

// Stats counts the physical work a backend performed since Reset.
type Stats struct {
	// Reads and Writes count record accesses.
	Reads, Writes int64
	// BytesRead and BytesWritten count payload bytes touched.
	BytesRead, BytesWritten int64
	// Rollbacks counts undo-log replays (aborted transactions).
	Rollbacks int64
}

// Config parameterizes the in-memory KV backend.
type Config struct {
	// Shards is the number of map partitions; variables are placed with
	// lockmgr.ShardOfVar, the same partition function as the sharded lock
	// table and the dispatch loops, so storage, locks and dispatch always
	// agree on ownership (minimum 1).
	Shards int
	// ValueSize is the payload size in bytes for every record (0 keeps
	// records scalar-only). Sizer overrides it per variable when set.
	ValueSize int
	// Sizer, when non-nil, gives each variable its payload size; workloads
	// supply sizers (e.g. workload.UniformPayload) to model value-size skew.
	Sizer func(v core.Var) int
	// Recycle returns dead payload buffers to the per-shard size-classed
	// freelists: a Commit recycles the records its undo log displaced, and
	// a Rollback recycles the dying writes it removes from the store, so a
	// warmed-up run's Put path allocates no payload bytes at all.
	//
	// Aliasing rule (DESIGN.md "Memory discipline"): Recycle is sound only
	// under STRICT execution — no transaction reads or overwrites a value
	// written by an uncommitted transaction. Strictness guarantees every
	// reader of a displaced record finished with it (its checksum read
	// completes before the reader releases the lock that blocked the
	// displacing writer), and that a rolled-back record was only ever seen
	// by its own transaction. Under a non-strict scheduler (SGT-style, TO,
	// OCC) a dirty reader may still hold a record when its buffer is
	// recycled — leave Recycle off there, as the runtime does.
	Recycle bool
}

// kvShard is one map partition with its own lock, plus the shard's
// size-classed payload freelists (sharding the freelists with the data
// keeps recycling contention as partitioned as the writes themselves).
type kvShard struct {
	mu   sync.RWMutex
	data map[core.Var]*Record

	freeMu sync.Mutex
	free   [numClasses][][]byte
}

// numClasses bounds the power-of-two size classes of the payload
// freelists: class c holds buffers of capacity 1<<c, up to 8 MiB. Larger
// payloads fall back to the allocator.
const numClasses = 24

// classFree caps each per-shard, per-class freelist so a burst of aborts
// cannot pin an unbounded amount of dead payload memory.
const classFree = 256

// classOf returns the size class whose buffers hold size bytes, or -1 when
// the size is out of the classed range.
func classOf(size int) int {
	if size <= 0 || size > 1<<(numClasses-1) {
		return -1
	}
	c := bits.Len(uint(size - 1))
	return c
}

// getBuf returns a payload buffer of the given size from the shard's
// freelist, or a fresh one with class-rounded capacity so it can be
// recycled later.
func (sh *kvShard) getBuf(size int) []byte {
	c := classOf(size)
	if c < 0 {
		return make([]byte, size)
	}
	sh.freeMu.Lock()
	if n := len(sh.free[c]); n > 0 {
		p := sh.free[c][n-1]
		sh.free[c][n-1] = nil
		sh.free[c] = sh.free[c][:n-1]
		sh.freeMu.Unlock()
		return p[:size]
	}
	sh.freeMu.Unlock()
	return make([]byte, size, 1<<c)
}

// putBuf returns a dead payload buffer to the shard's freelist. Buffers
// whose capacity is not an exact class size (or whose class is full) are
// dropped to the garbage collector.
func (sh *kvShard) putBuf(p []byte) {
	if cap(p) == 0 {
		return
	}
	c := bits.Len(uint(cap(p)) - 1)
	if c >= numClasses || cap(p) != 1<<c {
		return
	}
	sh.freeMu.Lock()
	if len(sh.free[c]) < classFree {
		sh.free[c] = append(sh.free[c], p[:cap(p)])
	}
	sh.freeMu.Unlock()
}

// txCtx is a transaction's execution context: the paper's local variables
// t_i1..t_ij and the undo log of overwritten records.
type txCtx struct {
	locals []core.Value
	undo   []undoRec
}

// undoRec remembers the record a Put displaced (nil: the variable was
// absent, so rollback deletes it).
type undoRec struct {
	v    core.Var
	prev *Record
}

// KV is the sharded in-memory implementation of Backend: per-shard maps
// partitioned exactly like lockmgr.ShardedTable, immutable copy-on-write
// records, and per-transaction undo logs for abort rollback. See the
// package comment for the concurrency contract and the replay invariant.
type KV struct {
	cfg    Config
	shards []kvShard

	ctxMu sync.Mutex
	ctx   map[int]*txCtx
	// ctxPool recycles transaction contexts (locals and undo slices keep
	// their capacity), so a warmed-up commit/restart cycle allocates no
	// per-transaction bookkeeping.
	ctxPool sync.Pool

	reads, writes, bytesRead, bytesWritten, rollbacks atomic.Int64
}

var _ Backend = (*KV)(nil)

// NewKV returns an empty sharded KV backend; call Reset to load state.
func NewKV(cfg Config) *KV {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	kv := &KV{cfg: cfg, shards: make([]kvShard, cfg.Shards), ctx: map[int]*txCtx{}}
	for i := range kv.shards {
		kv.shards[i].data = map[core.Var]*Record{}
	}
	return kv
}

// Name implements Backend.
func (kv *KV) Name() string { return fmt.Sprintf("kv(%d)", len(kv.shards)) }

// NumShards returns the map partition count.
func (kv *KV) NumShards() int { return len(kv.shards) }

func (kv *KV) shard(v core.Var) *kvShard {
	return &kv.shards[lockmgr.ShardOfVar(v, len(kv.shards))]
}

func (kv *KV) sizeOf(v core.Var) int {
	if kv.cfg.Sizer != nil {
		return kv.cfg.Sizer(v)
	}
	return kv.cfg.ValueSize
}

// checksum is the XOR fold of a payload; recomputed on every read so a read
// touches every byte, the way a real engine's page checksum does.
func checksum(p []byte) byte {
	var s byte
	for _, b := range p {
		s ^= b
	}
	return s
}

// newRecord builds an immutable record: prev's payload is copied (or a
// fresh deterministic fill when prev is nil or resized), the scalar is
// stamped into the first 8 bytes, and the checksum is computed. The buffer
// comes from the variable's shard freelist; a recycled buffer may hold
// stale bytes, so both branches overwrite all size bytes.
func (kv *KV) newRecord(v core.Var, scalar core.Value, prev *Record) *Record {
	size := kv.sizeOf(v)
	p := kv.shard(v).getBuf(size)
	if prev != nil && len(prev.Payload) == size {
		copy(p, prev.Payload)
	} else {
		for i := range p {
			p[i] = byte(i)
		}
	}
	u := uint64(scalar)
	for i := 0; i < 8 && i < len(p); i++ {
		p[i] = byte(u >> (8 * i))
	}
	return &Record{Scalar: scalar, Payload: p, Sum: checksum(p)}
}

// Reset implements Backend: drop everything and load init, one record per
// variable with its configured payload size.
func (kv *KV) Reset(init core.DB) {
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.Lock()
		sh.data = map[core.Var]*Record{}
		sh.mu.Unlock()
	}
	kv.ctxMu.Lock()
	kv.ctx = map[int]*txCtx{}
	kv.ctxMu.Unlock()
	kv.reads.Store(0)
	kv.writes.Store(0)
	kv.bytesRead.Store(0)
	kv.bytesWritten.Store(0)
	kv.rollbacks.Store(0)
	for v, val := range init {
		rec := kv.newRecord(v, val, nil)
		sh := kv.shard(v)
		sh.mu.Lock()
		sh.data[v] = rec
		sh.mu.Unlock()
	}
}

// ctxOf returns tx's execution context, drawing a recycled one from the
// pool on first use.
func (kv *KV) ctxOf(tx int) *txCtx {
	kv.ctxMu.Lock()
	defer kv.ctxMu.Unlock()
	c := kv.ctx[tx]
	if c == nil {
		if p, ok := kv.ctxPool.Get().(*txCtx); ok {
			c = p
		} else {
			c = &txCtx{}
		}
		kv.ctx[tx] = c
	}
	return c
}

// releaseCtx clears a finished context (dropping record references so the
// pool does not pin them) and returns it to the pool.
func (kv *KV) releaseCtx(c *txCtx) {
	c.locals = c.locals[:0]
	for i := range c.undo {
		c.undo[i] = undoRec{}
	}
	c.undo = c.undo[:0]
	kv.ctxPool.Put(c)
}

// Get implements Backend. The checksum is verified outside the shard lock —
// records are immutable, so the pointer read under RLock suffices.
func (kv *KV) Get(tx int, v core.Var) core.Value {
	sh := kv.shard(v)
	sh.mu.RLock()
	rec := sh.data[v]
	sh.mu.RUnlock()
	if rec == nil {
		return 0
	}
	kv.reads.Add(1)
	kv.bytesRead.Add(int64(len(rec.Payload)))
	if checksum(rec.Payload) != rec.Sum {
		panic(fmt.Sprintf("storage: payload corruption on %s", v))
	}
	return rec.Scalar
}

// Put implements Backend: build the copy-on-write record outside the lock,
// swap it in, and log the displaced record for undo.
func (kv *KV) Put(tx int, v core.Var, scalar core.Value) {
	sh := kv.shard(v)
	sh.mu.RLock()
	prev := sh.data[v]
	sh.mu.RUnlock()
	rec := kv.newRecord(v, scalar, prev)
	sh.mu.Lock()
	// Re-read under the write lock: prev may be stale if another
	// transaction wrote between the peek and the swap (only non-strict
	// schedulers allow that; the undo entry records what was truly there).
	prev = sh.data[v]
	sh.data[v] = rec
	sh.mu.Unlock()
	kv.writes.Add(1)
	kv.bytesWritten.Add(int64(len(rec.Payload)))
	c := kv.ctxOf(tx)
	c.undo = append(c.undo, undoRec{v: v, prev: prev})
}

// Scan implements Backend: shard by shard, snapshot under RLock, then visit.
func (kv *KV) Scan(fn func(v core.Var, scalar core.Value) bool) {
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.RLock()
		snap := make(map[core.Var]core.Value, len(sh.data))
		for v, rec := range sh.data {
			snap[v] = rec.Scalar
		}
		sh.mu.RUnlock()
		for v, val := range snap {
			if !fn(v, val) {
				return
			}
		}
	}
}

// ApplyStep implements Backend with the paper's step semantics.
func (kv *KV) ApplyStep(tx int, step core.Step) error {
	c := kv.ctxOf(tx)
	val := kv.Get(tx, step.Var)
	c.locals = append(c.locals, val)
	if step.Kind == core.Read {
		return nil // write-back is the identity on t_ij
	}
	if step.Fn == nil {
		return fmt.Errorf("storage: step on %s has no interpretation", step.Var)
	}
	kv.Put(tx, step.Var, step.Fn(c.locals))
	return nil
}

// Commit implements Backend: drop tx's undo log and locals. With Recycle
// on, the displaced records in the undo log are dead — under strict
// execution every reader of a displaced record finished with it before the
// displacing write could be granted — so their payload buffers go back to
// the shard freelists.
func (kv *KV) Commit(tx int) {
	kv.ctxMu.Lock()
	c := kv.ctx[tx]
	delete(kv.ctx, tx)
	kv.ctxMu.Unlock()
	if c == nil {
		return
	}
	if kv.cfg.Recycle {
		for _, u := range c.undo {
			if u.prev != nil {
				kv.shard(u.v).putBuf(u.prev.Payload)
			}
		}
	}
	kv.releaseCtx(c)
}

// Rollback implements Backend: replay tx's undo log in reverse, restoring
// each displaced record (byte-identical — records are immutable), then drop
// the context so the restart begins with fresh locals. With Recycle on,
// the dying writes the restore removes from the store — records only this
// transaction ever saw, under strict execution — return their payload
// buffers to the shard freelists.
func (kv *KV) Rollback(tx int) {
	kv.ctxMu.Lock()
	c := kv.ctx[tx]
	delete(kv.ctx, tx)
	kv.ctxMu.Unlock()
	if c == nil {
		return
	}
	if len(c.undo) > 0 {
		kv.rollbacks.Add(1)
	}
	for i := len(c.undo) - 1; i >= 0; i-- {
		u := c.undo[i]
		sh := kv.shard(u.v)
		sh.mu.Lock()
		dying := sh.data[u.v]
		if u.prev == nil {
			delete(sh.data, u.v)
		} else {
			sh.data[u.v] = u.prev
		}
		sh.mu.Unlock()
		if kv.cfg.Recycle && dying != nil && dying != u.prev {
			sh.putBuf(dying.Payload)
		}
	}
	kv.releaseCtx(c)
}

// State implements Backend.
func (kv *KV) State() core.DB {
	db := core.DB{}
	kv.Scan(func(v core.Var, val core.Value) bool {
		db[v] = val
		return true
	})
	return db
}

// Snapshot deep-copies every record, for byte-level comparisons in tests
// and tools.
func (kv *KV) Snapshot() map[core.Var]Record {
	out := map[core.Var]Record{}
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.RLock()
		for v, rec := range sh.data {
			out[v] = Record{
				Scalar:  rec.Scalar,
				Payload: append([]byte(nil), rec.Payload...),
				Sum:     rec.Sum,
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats returns the physical work counters since Reset.
func (kv *KV) Stats() Stats {
	return Stats{
		Reads:        kv.reads.Load(),
		Writes:       kv.writes.Load(),
		BytesRead:    kv.bytesRead.Load(),
		BytesWritten: kv.bytesWritten.Load(),
		Rollbacks:    kv.rollbacks.Load(),
	}
}
