package storage

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// Record is one stored value: the paper's int64 scalar plus an opaque
// payload of configurable size, protected by a checksum. Records are
// immutable once stored — a write builds a fresh record (copy-on-write), so
// an undo-log entry holding the previous version restores it byte-identically
// and readers may checksum a record without holding anything.
type Record struct {
	// Scalar is the core.Value visible to step interpretations.
	Scalar core.Value
	// Payload is the opaque value body; reads checksum it, writes copy it.
	Payload []byte
	// Sum is the XOR checksum of Payload, verified on every read.
	Sum byte
}

// version is one link of a variable's version chain: an immutable Record
// stamped with the commit timestamps bounding its visibility. Chains are
// latest-first — a variable's chain head is its newest version and next
// walks toward older ones. Writers install a fresh head with CAS; nothing
// in a chain is ever mutated in place except the begin/end stamps (set once
// each, at commit) and the GC's unlink of an unreachable older suffix.
type version struct {
	rec Record
	// begin is the commit timestamp from which the version is visible
	// (0 for the initial load). While the writing transaction is
	// uncommitted it holds the negative transaction mark -(tx+1), which no
	// snapshot admits and only the writing transaction itself reads through.
	begin atomic.Int64
	// end is the commit timestamp of the superseding version, 0 while the
	// version is still current. A version is visible to snapshot s iff
	// 0 <= begin <= s and (end == 0 || end > s).
	end atomic.Int64
	// next is the immediately older version. The GC clears it (see
	// kvShard.collect) once the older suffix is invisible to every pinned
	// snapshot, so superseded versions do not accumulate.
	next atomic.Pointer[version]
}

// uncommittedMark is the begin stamp of a version whose writing transaction
// has not committed: negative, so it compares below every snapshot.
//
//optcc:hotpath
func uncommittedMark(tx int) int64 { return -int64(tx) - 1 }

// chain is one variable's version list: just the CAS-installed head.
// Chains are created once per variable (at Reset for declared variables,
// through the extra map for stragglers) and never removed, so looking one
// up is a pure read of an immutable map.
type chain struct{ head atomic.Pointer[version] }

// Stats counts the physical work a backend performed since Reset.
type Stats struct {
	// Reads and Writes count record accesses through the transactional
	// Get/Put path.
	Reads, Writes int64
	// BytesRead and BytesWritten count payload bytes touched.
	BytesRead, BytesWritten int64
	// Rollbacks counts undo-log replays (aborted transactions).
	Rollbacks int64
	// SnapshotReads counts reads served through the lock-free snapshot
	// path (SnapshotRead), outside Reads.
	SnapshotReads int64
	// VersionsGCed counts superseded versions the garbage collector
	// unlinked once no snapshot could see them (their payloads return to
	// the freelists when Recycle is on).
	VersionsGCed int64
}

// Config parameterizes the in-memory KV backend.
type Config struct {
	// Shards is the number of map partitions; variables are placed with
	// lockmgr.ShardOfVar, the same partition function as the sharded lock
	// table and the dispatch loops, so storage, locks and dispatch always
	// agree on ownership (minimum 1).
	Shards int
	// ValueSize is the payload size in bytes for every record (0 keeps
	// records scalar-only). Sizer overrides it per variable when set.
	ValueSize int
	// Sizer, when non-nil, gives each variable its payload size; workloads
	// supply sizers (e.g. workload.UniformPayload) to model value-size skew.
	Sizer func(v core.Var) int
	// Recycle returns dead payload buffers to the per-shard size-classed
	// freelists: superseded versions are recycled by the GC once no pinned
	// snapshot can see them, and a Rollback recycles the dying write it
	// removes from the chain, so a warmed-up run's Put path allocates no
	// payload bytes at all.
	//
	// Aliasing rule (DESIGN.md "Memory discipline" and "Multiversion
	// storage"): Recycle is sound when every reader of a record is either
	// (a) covered by strict execution — no transaction reads or overwrites
	// a value written by an uncommitted transaction, as under serial and
	// the strict 2PL family — or (b) a snapshot reader holding a pin
	// (SnapshotAcquire), which the GC's minimum-active-snapshot horizon
	// respects. Under a non-strict scheduler (SGT-style, TO, OCC, MV) an
	// unpinned Get may still be checksumming a version when a concurrent
	// commit supersedes and collects it — leave Recycle off there, as the
	// runtime does.
	Recycle bool
	// SnapshotSlots is the number of concurrent snapshot pins the store
	// supports (0 = defaultSnapshotSlots). Each reader of the snapshot
	// path owns one slot; the runtime maps user goroutines onto slots and
	// falls back to the transactional path when it has more users than
	// slots.
	SnapshotSlots int

	// The fields below configure the durable disk backend (disk.go) and
	// are ignored by the in-memory KV.

	// Dir is the disk backend's directory of log segments ("" = a fresh
	// temporary directory).
	Dir string
	// Fsync is when the disk backend forces its log to stable storage
	// (default FsyncGroup: one fsync per group-commit drain).
	Fsync FsyncPolicy
	// Buffered selects write-buffered execution: uncommitted writes stay
	// in a per-transaction buffer and reach the log only inside the
	// commit record, which is what makes non-strict schedulers
	// recoverable. Leave false for strict schedulers (eager writes with
	// undo logging).
	Buffered bool
	// SegmentBytes seals the active log segment past this size
	// (0 = 1 MiB).
	SegmentBytes int
	// CheckpointBytes arms the online fuzzy checkpointer (checkpoint.go):
	// once this many bytes have been appended to the WAL since the last
	// checkpoint, a background goroutine snapshots the store to a
	// checkpoint file, records a marker in the log and retires every
	// sealed segment behind the anchor, bounding the on-disk footprint and
	// recovery time of a long-running store. 0 (the default) disables the
	// background checkpointer; Disk.Checkpoint can still be called
	// explicitly.
	CheckpointBytes int
	// FS is the filesystem the disk backend writes through (nil = the
	// real one). Tests inject faults by supplying an ErrFS.
	FS FS
}

// defaultSnapshotSlots is the snapshot pin capacity when Config leaves it 0:
// comfortably above the experiments' largest user counts.
const defaultSnapshotSlots = 256

// retiredVer is a superseded version awaiting garbage collection: it may be
// collected — its older suffix unlinked and, with Recycle, its payload
// returned to the freelists — once every snapshot that could still see it
// (any snapshot older than at, the superseding commit's timestamp) has been
// released.
type retiredVer struct {
	ver  *version // the superseded version; at == ver.end
	succ *version // its superseder, whose next pointer the unlink clears
	at   int64    // the superseding commit timestamp
}

// kvShard is one map partition: its immutable variable→chain map, the
// shard's size-classed payload freelists, and the retired-version queue
// feeding them (sharding GC state with the data keeps collection contention
// as partitioned as the writes themselves).
type kvShard struct {
	data map[core.Var]*chain // immutable after Reset

	freeMu  sync.Mutex
	free    [numClasses][][]byte
	retired []retiredVer
}

// numClasses bounds the power-of-two size classes of the payload
// freelists: class c holds buffers of capacity 1<<c, up to 8 MiB. Larger
// payloads fall back to the allocator.
const numClasses = 24

// classFree caps each per-shard, per-class freelist so a burst of aborts
// cannot pin an unbounded amount of dead payload memory.
const classFree = 256

// classOf returns the size class whose buffers hold size bytes, or -1 when
// the size is out of the classed range.
//
//optcc:hotpath
func classOf(size int) int {
	if size <= 0 || size > 1<<(numClasses-1) {
		return -1
	}
	c := bits.Len(uint(size - 1))
	return c
}

// getBuf returns a payload buffer of the given size from the shard's
// freelist, or a fresh one with class-rounded capacity so it can be
// recycled later.
//
//optcc:hotpath
func (sh *kvShard) getBuf(size int) []byte {
	c := classOf(size)
	if c < 0 {
		//cclint:ignore hotpath out-of-class payloads (>8 MiB) fall back to the allocator by design
		return make([]byte, size)
	}
	sh.freeMu.Lock()
	if n := len(sh.free[c]); n > 0 {
		p := sh.free[c][n-1]
		sh.free[c][n-1] = nil
		sh.free[c] = sh.free[c][:n-1]
		sh.freeMu.Unlock()
		return p[:size]
	}
	sh.freeMu.Unlock()
	//cclint:ignore hotpath freelist miss is the warm-up path; steady state hits the freelist
	return make([]byte, size, 1<<c)
}

// putBuf returns a dead payload buffer to the shard's freelist. Buffers
// whose capacity is not an exact class size (or whose class is full) are
// dropped to the garbage collector.
//
//optcc:hotpath
//optcc:release
func (sh *kvShard) putBuf(p []byte) {
	sh.freeMu.Lock()
	sh.putBufLocked(p)
	sh.freeMu.Unlock()
}

// putBufLocked is putBuf for callers already holding freeMu.
//
//optcc:hotpath
//optcc:release
func (sh *kvShard) putBufLocked(p []byte) {
	if cap(p) == 0 {
		return
	}
	c := bits.Len(uint(cap(p)) - 1)
	if c >= numClasses || cap(p) != 1<<c {
		return
	}
	if len(sh.free[c]) < classFree {
		//cclint:ignore hotpath freelist append is bounded by classFree and reuses capacity after warm-up
		sh.free[c] = append(sh.free[c], p[:cap(p)])
	}
}

// retire queues a superseded version for collection once no snapshot can
// see it.
func (sh *kvShard) retire(ver, succ *version, at int64) {
	sh.freeMu.Lock()
	sh.retired = append(sh.retired, retiredVer{ver: ver, succ: succ, at: at})
	sh.freeMu.Unlock()
}

// collect garbage-collects the shard's retired versions that no snapshot
// can reach: every version superseded at or before minActive is invisible
// to all pinned snapshots (their timestamps are >= minActive) and to every
// future one (the published clock is >= minActive), so its older suffix is
// unlinked from the chain and its payload returns to the freelist when
// Recycle is on. The unlink is safe against concurrent readers: a walker
// only dereferences a version's next after rejecting it, and the superseder
// (begin == at <= minActive <= any pinned snapshot) is always accepted
// first — see DESIGN.md "Multiversion storage" for the full argument.
func (sh *kvShard) collect(kv *KV, minActive int64) {
	sh.freeMu.Lock()
	kept := sh.retired[:0]
	for _, r := range sh.retired {
		if r.at > minActive {
			kept = append(kept, r)
			continue
		}
		r.succ.next.Store(nil)
		if kv.cfg.Recycle {
			sh.putBufLocked(r.ver.rec.Payload)
		}
		kv.versionsGCed.Add(1)
	}
	for i := len(kept); i < len(sh.retired); i++ {
		sh.retired[i] = retiredVer{} // drop version refs
	}
	sh.retired = kept
	sh.freeMu.Unlock()
}

// txCtx is a transaction's execution context: the paper's local variables
// t_i1..t_ij and the undo log of installed versions.
type txCtx struct {
	locals []core.Value
	undo   []undoRec
}

// undoRec remembers one installed version and the head it displaced (nil:
// the variable was absent, so rollback empties the chain).
type undoRec struct {
	v    core.Var
	ver  *version
	prev *version
}

// readerSlot is one snapshot pin plus its reader's local counters, padded
// to a cache line so concurrent readers on adjacent slots do not
// false-share. ts == -1 means the slot is unpinned.
type readerSlot struct {
	ts    atomic.Int64
	reads atomic.Int64
	bytes atomic.Int64
	_     [40]byte
}

// KV is the sharded in-memory implementation of Backend: per-shard
// immutable variable→chain maps partitioned exactly like
// lockmgr.ShardedTable, timestamp-stamped version chains with CAS head
// install, per-transaction undo logs for abort rollback, and a pinned
// snapshot-read path that takes no lock of any kind. See the package
// comment for the concurrency contract and the replay invariant, and
// DESIGN.md "Multiversion storage" for visibility and GC safety.
type KV struct {
	cfg    Config
	shards []kvShard
	extra  sync.Map // core.Var → *chain, for undeclared variables only

	// commitSeq hands out commit timestamps; snapClock publishes them in
	// order once a commit's versions are fully stamped, so a snapshot at
	// snapClock never observes a half-stamped commit.
	commitSeq atomic.Int64
	snapClock atomic.Int64

	// slots are the snapshot pins; activePins counts pinned slots so the
	// GC's horizon scan is one atomic load when the snapshot path is idle.
	slots      []readerSlot
	activePins atomic.Int64

	ctxMu sync.Mutex
	ctx   map[int]*txCtx
	// ctxPool recycles transaction contexts (locals and undo slices keep
	// their capacity), so a warmed-up commit/restart cycle allocates no
	// per-transaction bookkeeping.
	ctxPool sync.Pool

	reads, writes, bytesRead, bytesWritten, rollbacks atomic.Int64
	versionsGCed                                      atomic.Int64
}

var _ Backend = (*KV)(nil)
var _ SnapshotBackend = (*KV)(nil)

// NewKV returns an empty sharded KV backend; call Reset to load state.
func NewKV(cfg Config) *KV {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.SnapshotSlots <= 0 {
		cfg.SnapshotSlots = defaultSnapshotSlots
	}
	kv := &KV{
		cfg:    cfg,
		shards: make([]kvShard, cfg.Shards),
		slots:  make([]readerSlot, cfg.SnapshotSlots),
		ctx:    map[int]*txCtx{},
	}
	for i := range kv.shards {
		kv.shards[i].data = map[core.Var]*chain{}
	}
	for i := range kv.slots {
		kv.slots[i].ts.Store(-1)
	}
	return kv
}

// Name implements Backend.
func (kv *KV) Name() string { return fmt.Sprintf("kv(%d)", len(kv.shards)) }

// NumShards returns the map partition count.
func (kv *KV) NumShards() int { return len(kv.shards) }

//optcc:hotpath
func (kv *KV) shard(v core.Var) *kvShard {
	return &kv.shards[lockmgr.ShardOfVar(v, len(kv.shards))]
}

func (kv *KV) sizeOf(v core.Var) int {
	if kv.cfg.Sizer != nil {
		return kv.cfg.Sizer(v)
	}
	return kv.cfg.ValueSize
}

// chainOf returns v's version chain with one immutable map lookup (the
// lock-free fast path for every variable declared at Reset). Undeclared
// variables fall back to the extra sync.Map; with create false a fully
// unknown variable returns nil.
//
//optcc:hotpath
func (kv *KV) chainOf(v core.Var, create bool) *chain {
	if ch, ok := kv.shard(v).data[v]; ok {
		return ch
	}
	//cclint:ignore hotpath undeclared-variable fallback; Reset declares every variable the experiments touch
	if e, ok := kv.extra.Load(v); ok {
		return e.(*chain)
	}
	if !create {
		return nil
	}
	//cclint:ignore hotpath undeclared-variable fallback; Reset declares every variable the experiments touch
	e, _ := kv.extra.LoadOrStore(v, &chain{})
	return e.(*chain)
}

// checksum is the XOR fold of a payload; recomputed on every read so a read
// touches every byte, the way a real engine's page checksum does.
//
//optcc:hotpath
func checksum(p []byte) byte {
	var s byte
	for _, b := range p {
		s ^= b
	}
	return s
}

// newVersion builds an immutable version stamped begin=mark: prev's payload
// is copied (or a fresh deterministic fill when prev is nil or resized),
// the scalar is stamped into the first 8 bytes, and the checksum is
// computed. The buffer comes from the shard freelist; a recycled buffer may
// hold stale bytes, so both branches overwrite all size bytes. The copy
// from prev is validated by the caller's CAS install: if prev was
// superseded (and possibly collected) mid-copy, the CAS fails and the
// garbage copy is discarded.
func (kv *KV) newVersion(sh *kvShard, size int, scalar core.Value, prev *version, mark int64) *version {
	p := sh.getBuf(size)
	if prev != nil && len(prev.rec.Payload) == size {
		copy(p, prev.rec.Payload)
	} else {
		for i := range p {
			p[i] = byte(i)
		}
	}
	u := uint64(scalar)
	for i := 0; i < 8 && i < len(p); i++ {
		p[i] = byte(u >> (8 * i))
	}
	ver := &version{rec: Record{Scalar: scalar, Payload: p, Sum: checksum(p)}}
	ver.begin.Store(mark)
	ver.next.Store(prev)
	return ver
}

// Reset implements Backend: drop everything and load init, one chain with
// one begin=0 version per variable with its configured payload size.
func (kv *KV) Reset(init core.DB) {
	perShard := len(init)/len(kv.shards) + 1
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.data = make(map[core.Var]*chain, perShard)
		sh.freeMu.Lock()
		for j := range sh.retired {
			sh.retired[j] = retiredVer{}
		}
		sh.retired = sh.retired[:0]
		sh.freeMu.Unlock()
	}
	kv.extra.Range(func(k, _ any) bool {
		kv.extra.Delete(k)
		return true
	})
	kv.ctxMu.Lock()
	kv.ctx = map[int]*txCtx{}
	kv.ctxMu.Unlock()
	kv.commitSeq.Store(0)
	kv.snapClock.Store(0)
	kv.activePins.Store(0)
	for i := range kv.slots {
		kv.slots[i].ts.Store(-1)
		kv.slots[i].reads.Store(0)
		kv.slots[i].bytes.Store(0)
	}
	kv.reads.Store(0)
	kv.writes.Store(0)
	kv.bytesRead.Store(0)
	kv.bytesWritten.Store(0)
	kv.rollbacks.Store(0)
	kv.versionsGCed.Store(0)
	for v, val := range init {
		sh := kv.shard(v)
		ver := kv.newVersion(sh, kv.sizeOf(v), val, nil, 0)
		ch := &chain{}
		ch.head.Store(ver)
		sh.data[v] = ch
	}
}

// ctxOf returns tx's execution context, drawing a recycled one from the
// pool on first use.
func (kv *KV) ctxOf(tx int) *txCtx {
	kv.ctxMu.Lock()
	defer kv.ctxMu.Unlock()
	c := kv.ctx[tx]
	if c == nil {
		if p, ok := kv.ctxPool.Get().(*txCtx); ok {
			c = p
		} else {
			c = &txCtx{}
		}
		kv.ctx[tx] = c
	}
	return c
}

// releaseCtx clears a finished context (dropping version references so the
// pool does not pin them) and returns it to the pool.
func (kv *KV) releaseCtx(c *txCtx) {
	c.locals = c.locals[:0]
	for i := range c.undo {
		c.undo[i] = undoRec{}
	}
	c.undo = c.undo[:0]
	kv.ctxPool.Put(c)
}

// Get implements Backend: walk tx's chain view lock-free and return the
// newest version that is either committed or tx's own uncommitted write
// (read-your-writes). Another transaction's uncommitted version is skipped
// without being checksummed, so a concurrent rollback recycling it never
// races a reader's checksum. The walk retries from a fresh head if a
// concurrent GC unlink cuts it short — possible only for unpinned readers
// racing a supersede, where any committed successor is an acceptable
// answer.
//
//optcc:hotpath
func (kv *KV) Get(tx int, v core.Var) core.Value {
	ch := kv.chainOf(v, false)
	if ch == nil {
		return 0
	}
	mark := uncommittedMark(tx)
	for attempt := 0; attempt < 4; attempt++ {
		for ver := ch.head.Load(); ver != nil; ver = ver.next.Load() {
			b := ver.begin.Load()
			if b < 0 && b != mark {
				continue // another transaction's uncommitted version
			}
			kv.reads.Add(1)
			kv.bytesRead.Add(int64(len(ver.rec.Payload)))
			if checksum(ver.rec.Payload) != ver.rec.Sum {
				//cclint:ignore hotpath corruption panic is the failure path; it never executes on a healthy run
				panic(fmt.Sprintf("storage: payload corruption on %s", v))
			}
			return ver.rec.Scalar
		}
		if ch.head.Load() == nil {
			break // variable genuinely absent
		}
	}
	return 0
}

// Put implements Backend: build the copy-on-write version outside any
// critical section and CAS-install it as the chain head, stamped with tx's
// uncommitted mark; the displaced head goes to tx's undo log. A lost
// install race (concurrent writers — non-strict schedulers only) recycles
// the speculative buffer and rebuilds against the new head.
func (kv *KV) Put(tx int, v core.Var, scalar core.Value) {
	ch := kv.chainOf(v, true)
	sh := kv.shard(v)
	size := kv.sizeOf(v)
	mark := uncommittedMark(tx)
	for {
		prev := ch.head.Load()
		ver := kv.newVersion(sh, size, scalar, prev, mark)
		if ch.head.CompareAndSwap(prev, ver) {
			kv.writes.Add(1)
			kv.bytesWritten.Add(int64(len(ver.rec.Payload)))
			c := kv.ctxOf(tx)
			c.undo = append(c.undo, undoRec{v: v, ver: ver, prev: prev})
			return
		}
		sh.putBuf(ver.rec.Payload)
	}
}

// Scan implements Backend: visit every chain head's scalar, shard by shard
// then the extra map, without taking any lock (the maps are immutable and
// heads are atomic). The view is not a consistent cut while writers are
// active; State after quiescence is.
func (kv *KV) Scan(fn func(v core.Var, scalar core.Value) bool) {
	for i := range kv.shards {
		for v, ch := range kv.shards[i].data {
			if ver := ch.head.Load(); ver != nil {
				if !fn(v, ver.rec.Scalar) {
					return
				}
			}
		}
	}
	kv.extra.Range(func(k, val any) bool {
		if ver := val.(*chain).head.Load(); ver != nil {
			return fn(k.(core.Var), ver.rec.Scalar)
		}
		return true
	})
}

// ApplyStep implements Backend with the paper's step semantics.
func (kv *KV) ApplyStep(tx int, step core.Step) error {
	c := kv.ctxOf(tx)
	val := kv.Get(tx, step.Var)
	c.locals = append(c.locals, val)
	if step.Kind == core.Read {
		return nil // write-back is the identity on t_ij
	}
	if step.Fn == nil {
		return fmt.Errorf("storage: step on %s has no interpretation", step.Var)
	}
	kv.Put(tx, step.Var, step.Fn(c.locals))
	return nil
}

// Commit implements Backend: stamp tx's installed versions with one fresh
// commit timestamp (begin on each new version, end on each displaced one),
// publish the timestamp in commit order — snapshots only admit timestamps
// whose commits are fully stamped — retire the displaced versions, and run
// the GC up to the minimum active snapshot. A transaction that wrote
// nothing takes no timestamp.
func (kv *KV) Commit(tx int) {
	kv.ctxMu.Lock()
	c := kv.ctx[tx]
	delete(kv.ctx, tx)
	kv.ctxMu.Unlock()
	if c == nil {
		return
	}
	if len(c.undo) > 0 {
		ts := kv.commitSeq.Add(1)
		for _, u := range c.undo {
			u.ver.begin.Store(ts)
			if u.prev != nil {
				u.prev.end.Store(ts)
				kv.shard(u.v).retire(u.prev, u.ver, ts)
			}
		}
		// Publish in commit order: a reader pinning snapClock == ts sees
		// every version of every commit up to ts fully stamped.
		for !kv.snapClock.CompareAndSwap(ts-1, ts) {
			runtime.Gosched()
		}
		min := kv.minActiveSnapshot()
		for _, u := range c.undo {
			if u.prev != nil {
				kv.shard(u.v).collect(kv, min)
			}
		}
	}
	kv.releaseCtx(c)
}

// Rollback implements Backend: replay tx's undo log in reverse, restoring
// each displaced chain head (byte-identical — versions are immutable), then
// drop the context so the restart begins with fresh locals. With Recycle
// on, a dying write still at its chain head — a version only this
// transaction could read, since its begin mark admits no snapshot and
// Get skips other transactions' uncommitted versions — returns its payload
// buffer to the shard freelist.
func (kv *KV) Rollback(tx int) {
	kv.ctxMu.Lock()
	c := kv.ctx[tx]
	delete(kv.ctx, tx)
	kv.ctxMu.Unlock()
	if c == nil {
		return
	}
	if len(c.undo) > 0 {
		kv.rollbacks.Add(1)
	}
	for i := len(c.undo) - 1; i >= 0; i-- {
		u := c.undo[i]
		ch := kv.chainOf(u.v, false)
		if ch == nil {
			continue
		}
		dying := ch.head.Load()
		ch.head.Store(u.prev)
		if kv.cfg.Recycle && dying == u.ver {
			kv.shard(u.v).putBuf(dying.rec.Payload)
		}
	}
	kv.releaseCtx(c)
}

// State implements Backend.
func (kv *KV) State() core.DB {
	db := core.DB{}
	kv.Scan(func(v core.Var, val core.Value) bool {
		db[v] = val
		return true
	})
	return db
}

// Snapshot deep-copies every chain head's record, for byte-level
// comparisons in tests and tools.
func (kv *KV) Snapshot() map[core.Var]Record {
	out := map[core.Var]Record{}
	kv.scanHeads(func(v core.Var, ver *version) {
		out[v] = Record{
			Scalar:  ver.rec.Scalar,
			Payload: append([]byte(nil), ver.rec.Payload...),
			Sum:     ver.rec.Sum,
		}
	})
	return out
}

// scanHeads visits every non-empty chain head.
func (kv *KV) scanHeads(fn func(v core.Var, ver *version)) {
	for i := range kv.shards {
		for v, ch := range kv.shards[i].data {
			if ver := ch.head.Load(); ver != nil {
				fn(v, ver)
			}
		}
	}
	kv.extra.Range(func(k, val any) bool {
		if ver := val.(*chain).head.Load(); ver != nil {
			fn(k.(core.Var), ver)
		}
		return true
	})
}

// SnapshotSlots implements SnapshotBackend.
func (kv *KV) SnapshotSlots() int { return len(kv.slots) }

// SnapshotAcquire implements SnapshotBackend: pin the given reader slot to
// the current published commit clock and return the snapshot timestamp.
// The store-then-revalidate loop closes the race with a concurrent GC
// horizon scan: the GC loads the clock before scanning the pins, so a pin
// whose revalidation saw an unchanged clock is either observed by the scan
// or at least as new as the horizon the GC used. Lock-free and
// allocation-free: two atomic loads and a store on the uncontended path.
func (kv *KV) SnapshotAcquire(slot int) int64 {
	sl := &kv.slots[slot]
	kv.activePins.Add(1)
	for {
		s := kv.snapClock.Load()
		sl.ts.Store(s)
		if kv.snapClock.Load() == s {
			return s
		}
	}
}

// SnapshotRelease implements SnapshotBackend: unpin the slot.
func (kv *KV) SnapshotRelease(slot int) {
	kv.slots[slot].ts.Store(-1)
	kv.activePins.Add(-1)
}

// SnapshotRead implements SnapshotBackend: return v's value as of the
// pinned snapshot snap, walking the chain latest-first to the newest
// version with a committed begin <= snap. No lock, no shard mutex, no
// allocation: an immutable map lookup plus atomic pointer loads and the
// payload checksum. The pin guarantees every version the walk accepts is
// safe to checksum — the GC never collects a version whose end exceeds the
// minimum active snapshot. The slot indexes the reader's local counters
// only; visibility comes from snap.
func (kv *KV) SnapshotRead(slot int, v core.Var, snap int64) core.Value {
	ch := kv.chainOf(v, false)
	if ch == nil {
		return 0
	}
	for ver := ch.head.Load(); ver != nil; ver = ver.next.Load() {
		b := ver.begin.Load()
		if b < 0 || b > snap {
			continue // uncommitted, or committed after the snapshot
		}
		if e := ver.end.Load(); e != 0 && e <= snap {
			continue // defensive: superseded before the snapshot
		}
		sl := &kv.slots[slot]
		sl.reads.Add(1)
		sl.bytes.Add(int64(len(ver.rec.Payload)))
		if checksum(ver.rec.Payload) != ver.rec.Sum {
			panic(fmt.Sprintf("storage: payload corruption on %s (snapshot %d)", v, snap))
		}
		return ver.rec.Scalar
	}
	return 0
}

// VersionsGCed implements SnapshotBackend.
func (kv *KV) VersionsGCed() int64 { return kv.versionsGCed.Load() }

// SnapshotReads implements SnapshotBackend: total reads served through the
// snapshot path (summed over the per-slot counters).
func (kv *KV) SnapshotReads() int64 {
	var n int64
	for i := range kv.slots {
		n += kv.slots[i].reads.Load()
	}
	return n
}

// minActiveSnapshot returns the GC horizon: the oldest snapshot any reader
// has pinned, or the published commit clock when none is pinned (every
// future snapshot will be at least that new). The clock is loaded before
// the pins are scanned — the ordering SnapshotAcquire's revalidation pairs
// with. When the snapshot path is idle the scan is one extra atomic load.
func (kv *KV) minActiveSnapshot() int64 {
	min := kv.snapClock.Load()
	if kv.activePins.Load() == 0 {
		return min
	}
	for i := range kv.slots {
		if s := kv.slots[i].ts.Load(); s >= 0 && s < min {
			min = s
		}
	}
	return min
}

// Stats returns the physical work counters since Reset.
func (kv *KV) Stats() Stats {
	var snapBytes int64
	for i := range kv.slots {
		snapBytes += kv.slots[i].bytes.Load()
	}
	return Stats{
		Reads:         kv.reads.Load(),
		Writes:        kv.writes.Load(),
		BytesRead:     kv.bytesRead.Load() + snapBytes,
		BytesWritten:  kv.bytesWritten.Load(),
		Rollbacks:     kv.rollbacks.Load(),
		SnapshotReads: kv.SnapshotReads(),
		VersionsGCed:  kv.versionsGCed.Load(),
	}
}
