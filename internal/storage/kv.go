package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"optcc/internal/core"
	"optcc/internal/lockmgr"
)

// Record is one stored value: the paper's int64 scalar plus an opaque
// payload of configurable size, protected by a checksum. Records are
// immutable once stored — a write builds a fresh record (copy-on-write), so
// an undo-log entry holding the previous record restores it byte-identically
// and readers may checksum a record after the shard lock is released.
type Record struct {
	// Scalar is the core.Value visible to step interpretations.
	Scalar core.Value
	// Payload is the opaque value body; reads checksum it, writes copy it.
	Payload []byte
	// Sum is the XOR checksum of Payload, verified on every read.
	Sum byte
}

// Stats counts the physical work a backend performed since Reset.
type Stats struct {
	// Reads and Writes count record accesses.
	Reads, Writes int64
	// BytesRead and BytesWritten count payload bytes touched.
	BytesRead, BytesWritten int64
	// Rollbacks counts undo-log replays (aborted transactions).
	Rollbacks int64
}

// Config parameterizes the in-memory KV backend.
type Config struct {
	// Shards is the number of map partitions; variables are placed with
	// lockmgr.ShardOfVar, the same partition function as the sharded lock
	// table and the dispatch loops, so storage, locks and dispatch always
	// agree on ownership (minimum 1).
	Shards int
	// ValueSize is the payload size in bytes for every record (0 keeps
	// records scalar-only). Sizer overrides it per variable when set.
	ValueSize int
	// Sizer, when non-nil, gives each variable its payload size; workloads
	// supply sizers (e.g. workload.UniformPayload) to model value-size skew.
	Sizer func(v core.Var) int
}

// kvShard is one map partition with its own lock.
type kvShard struct {
	mu   sync.RWMutex
	data map[core.Var]*Record
}

// txCtx is a transaction's execution context: the paper's local variables
// t_i1..t_ij and the undo log of overwritten records.
type txCtx struct {
	locals []core.Value
	undo   []undoRec
}

// undoRec remembers the record a Put displaced (nil: the variable was
// absent, so rollback deletes it).
type undoRec struct {
	v    core.Var
	prev *Record
}

// KV is the sharded in-memory implementation of Backend: per-shard maps
// partitioned exactly like lockmgr.ShardedTable, immutable copy-on-write
// records, and per-transaction undo logs for abort rollback. See the
// package comment for the concurrency contract and the replay invariant.
type KV struct {
	cfg    Config
	shards []kvShard

	ctxMu sync.Mutex
	ctx   map[int]*txCtx

	reads, writes, bytesRead, bytesWritten, rollbacks atomic.Int64
}

var _ Backend = (*KV)(nil)

// NewKV returns an empty sharded KV backend; call Reset to load state.
func NewKV(cfg Config) *KV {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	kv := &KV{cfg: cfg, shards: make([]kvShard, cfg.Shards), ctx: map[int]*txCtx{}}
	for i := range kv.shards {
		kv.shards[i].data = map[core.Var]*Record{}
	}
	return kv
}

// Name implements Backend.
func (kv *KV) Name() string { return fmt.Sprintf("kv(%d)", len(kv.shards)) }

// NumShards returns the map partition count.
func (kv *KV) NumShards() int { return len(kv.shards) }

func (kv *KV) shard(v core.Var) *kvShard {
	return &kv.shards[lockmgr.ShardOfVar(v, len(kv.shards))]
}

func (kv *KV) sizeOf(v core.Var) int {
	if kv.cfg.Sizer != nil {
		return kv.cfg.Sizer(v)
	}
	return kv.cfg.ValueSize
}

// checksum is the XOR fold of a payload; recomputed on every read so a read
// touches every byte, the way a real engine's page checksum does.
func checksum(p []byte) byte {
	var s byte
	for _, b := range p {
		s ^= b
	}
	return s
}

// newRecord builds an immutable record: prev's payload is copied (or a
// fresh deterministic fill when prev is nil or resized), the scalar is
// stamped into the first 8 bytes, and the checksum is computed.
func (kv *KV) newRecord(v core.Var, scalar core.Value, prev *Record) *Record {
	size := kv.sizeOf(v)
	p := make([]byte, size)
	if prev != nil && len(prev.Payload) == size {
		copy(p, prev.Payload)
	} else {
		for i := range p {
			p[i] = byte(i)
		}
	}
	u := uint64(scalar)
	for i := 0; i < 8 && i < len(p); i++ {
		p[i] = byte(u >> (8 * i))
	}
	return &Record{Scalar: scalar, Payload: p, Sum: checksum(p)}
}

// Reset implements Backend: drop everything and load init, one record per
// variable with its configured payload size.
func (kv *KV) Reset(init core.DB) {
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.Lock()
		sh.data = map[core.Var]*Record{}
		sh.mu.Unlock()
	}
	kv.ctxMu.Lock()
	kv.ctx = map[int]*txCtx{}
	kv.ctxMu.Unlock()
	kv.reads.Store(0)
	kv.writes.Store(0)
	kv.bytesRead.Store(0)
	kv.bytesWritten.Store(0)
	kv.rollbacks.Store(0)
	for v, val := range init {
		rec := kv.newRecord(v, val, nil)
		sh := kv.shard(v)
		sh.mu.Lock()
		sh.data[v] = rec
		sh.mu.Unlock()
	}
}

// ctxOf returns tx's execution context, creating it on first use.
func (kv *KV) ctxOf(tx int) *txCtx {
	kv.ctxMu.Lock()
	defer kv.ctxMu.Unlock()
	c := kv.ctx[tx]
	if c == nil {
		c = &txCtx{}
		kv.ctx[tx] = c
	}
	return c
}

// Get implements Backend. The checksum is verified outside the shard lock —
// records are immutable, so the pointer read under RLock suffices.
func (kv *KV) Get(tx int, v core.Var) core.Value {
	sh := kv.shard(v)
	sh.mu.RLock()
	rec := sh.data[v]
	sh.mu.RUnlock()
	if rec == nil {
		return 0
	}
	kv.reads.Add(1)
	kv.bytesRead.Add(int64(len(rec.Payload)))
	if checksum(rec.Payload) != rec.Sum {
		panic(fmt.Sprintf("storage: payload corruption on %s", v))
	}
	return rec.Scalar
}

// Put implements Backend: build the copy-on-write record outside the lock,
// swap it in, and log the displaced record for undo.
func (kv *KV) Put(tx int, v core.Var, scalar core.Value) {
	sh := kv.shard(v)
	sh.mu.RLock()
	prev := sh.data[v]
	sh.mu.RUnlock()
	rec := kv.newRecord(v, scalar, prev)
	sh.mu.Lock()
	// Re-read under the write lock: prev may be stale if another
	// transaction wrote between the peek and the swap (only non-strict
	// schedulers allow that; the undo entry records what was truly there).
	prev = sh.data[v]
	sh.data[v] = rec
	sh.mu.Unlock()
	kv.writes.Add(1)
	kv.bytesWritten.Add(int64(len(rec.Payload)))
	c := kv.ctxOf(tx)
	c.undo = append(c.undo, undoRec{v: v, prev: prev})
}

// Scan implements Backend: shard by shard, snapshot under RLock, then visit.
func (kv *KV) Scan(fn func(v core.Var, scalar core.Value) bool) {
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.RLock()
		snap := make(map[core.Var]core.Value, len(sh.data))
		for v, rec := range sh.data {
			snap[v] = rec.Scalar
		}
		sh.mu.RUnlock()
		for v, val := range snap {
			if !fn(v, val) {
				return
			}
		}
	}
}

// ApplyStep implements Backend with the paper's step semantics.
func (kv *KV) ApplyStep(tx int, step core.Step) error {
	c := kv.ctxOf(tx)
	val := kv.Get(tx, step.Var)
	c.locals = append(c.locals, val)
	if step.Kind == core.Read {
		return nil // write-back is the identity on t_ij
	}
	if step.Fn == nil {
		return fmt.Errorf("storage: step on %s has no interpretation", step.Var)
	}
	kv.Put(tx, step.Var, step.Fn(c.locals))
	return nil
}

// Commit implements Backend: drop tx's undo log and locals.
func (kv *KV) Commit(tx int) {
	kv.ctxMu.Lock()
	delete(kv.ctx, tx)
	kv.ctxMu.Unlock()
}

// Rollback implements Backend: replay tx's undo log in reverse, restoring
// each displaced record (byte-identical — records are immutable), then drop
// the context so the restart begins with fresh locals.
func (kv *KV) Rollback(tx int) {
	kv.ctxMu.Lock()
	c := kv.ctx[tx]
	delete(kv.ctx, tx)
	kv.ctxMu.Unlock()
	if c == nil {
		return
	}
	if len(c.undo) > 0 {
		kv.rollbacks.Add(1)
	}
	for i := len(c.undo) - 1; i >= 0; i-- {
		u := c.undo[i]
		sh := kv.shard(u.v)
		sh.mu.Lock()
		if u.prev == nil {
			delete(sh.data, u.v)
		} else {
			sh.data[u.v] = u.prev
		}
		sh.mu.Unlock()
	}
}

// State implements Backend.
func (kv *KV) State() core.DB {
	db := core.DB{}
	kv.Scan(func(v core.Var, val core.Value) bool {
		db[v] = val
		return true
	})
	return db
}

// Snapshot deep-copies every record, for byte-level comparisons in tests
// and tools.
func (kv *KV) Snapshot() map[core.Var]Record {
	out := map[core.Var]Record{}
	for i := range kv.shards {
		sh := &kv.shards[i]
		sh.mu.RLock()
		for v, rec := range sh.data {
			out[v] = Record{
				Scalar:  rec.Scalar,
				Payload: append([]byte(nil), rec.Payload...),
				Sum:     rec.Sum,
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Stats returns the physical work counters since Reset.
func (kv *KV) Stats() Stats {
	return Stats{
		Reads:        kv.reads.Load(),
		Writes:       kv.writes.Load(),
		BytesRead:    kv.bytesRead.Load(),
		BytesWritten: kv.bytesWritten.Load(),
		Rollbacks:    kv.rollbacks.Load(),
	}
}
