package storage

// The crash-recovery torture harness. Three layers, in increasing realism:
//
//  1. In-process injection sweep (TestCrashRecoveryEveryInjectionPoint):
//     run a self-describing workload against the disk backend on an ErrFS,
//     crash at EVERY countable operation index in turn, recover with the
//     real filesystem and assert the recovery invariant each time.
//  2. Transient-fault sweeps (TestTransientFaultRecovery): FailAt and
//     ShortWriteAt instead of a full crash — the store poisons itself
//     (sticky error) and recovery must still be exact.
//  3. Subprocess kill-and-restart (TestTortureKillRestart): re-exec the
//     test binary as a child that commits forever, SIGKILL it at a random
//     moment — including possibly mid-recovery — recover, verify, repeat.
//
// The recovery invariant asserted everywhere: the recovered state equals
// the serial replay (core.Exec) of exactly the committed transactions; any
// transaction whose commit was synced before the fault MUST be in that
// set; no uncommitted or torn write is ever visible; and recovery
// converges — a second OpenDisk reports no truncation and the identical
// state.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"optcc/internal/core"
)

// tortureVarA/B name transaction i's two marker variables. Every
// transaction writes both to i+1, which makes the on-disk state
// self-describing: the committed set is readable off the recovered
// database, and a half-visible transaction is an atomicity violation.
func tortureVarA(i int) core.Var { return core.Var(fmt.Sprintf("t%03d.a", i)) }
func tortureVarB(i int) core.Var { return core.Var(fmt.Sprintf("t%03d.b", i)) }

// tortureSystem builds the n-transaction self-describing system.
func tortureSystem(n int) *core.System {
	sys := &core.System{Name: "torture"}
	for i := 0; i < n; i++ {
		val := core.Value(i + 1)
		fn := func([]core.Value) core.Value { return val }
		sys.Txs = append(sys.Txs, core.Transaction{
			Name: fmt.Sprintf("t%d", i),
			Steps: []core.Step{
				{Var: tortureVarA(i), Kind: core.Write, Fn: fn},
				{Var: tortureVarB(i), Kind: core.Write, Fn: fn},
			},
		})
	}
	return sys.Normalize()
}

var tortureInit = core.DB{"base": 42}

// runTortureWorkload drives the system's transactions serially against d
// (FsyncAlways, so every successful Commit is durable) and returns the
// transactions that committed with no durability error — the set whose
// survival recovery must guarantee. It stops at the first fault.
func runTortureWorkload(d *Disk, sys *core.System) (synced []int) {
	for tx := range sys.Txs {
		for _, step := range sys.Txs[tx].Steps {
			if err := d.ApplyStep(tx, step); err != nil {
				d.Rollback(tx)
				return synced
			}
		}
		d.Commit(tx)
		if d.Err() != nil {
			return synced
		}
		synced = append(synced, tx)
	}
	return synced
}

// checkRecovered opens dir with the real filesystem and asserts the full
// recovery invariant. synced is the must-survive set; label names the
// failing injection point. Returns the recovered committed set.
func checkRecovered(t *testing.T, label, dir string, sys *core.System, synced []int) []int {
	t.Helper()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	state := r.State()
	stats := r.DurabilityStats()
	r.Close()

	// Derive the committed set from the markers; reject torn transactions
	// and stray values on the way.
	var committed []int
	for i := range sys.Txs {
		a, b := state[tortureVarA(i)], state[tortureVarB(i)]
		want := core.Value(i + 1)
		switch {
		case a == want && b == want:
			committed = append(committed, i)
		case a == 0 && b == 0:
			// never committed (or fully undone) — fine
		default:
			t.Fatalf("%s: torn transaction %d visible after recovery: a=%d b=%d", label, i, a, b)
		}
	}
	// Every synced commit must have survived.
	inCommitted := make(map[int]bool, len(committed))
	for _, i := range committed {
		inCommitted[i] = true
	}
	for _, i := range synced {
		if !inCommitted[i] {
			t.Fatalf("%s: durably committed transaction %d lost by recovery (recovered set %v)", label, i, committed)
		}
	}
	// A fault can land inside Reset itself, before the init snapshot was
	// durable. Then — and only then — recovering an empty database is
	// correct: the store was never initialized, so nothing may have
	// committed and nothing may be visible.
	if state["base"] == 0 {
		if len(synced) != 0 || len(committed) != 0 {
			t.Fatalf("%s: init snapshot lost but %d transactions recovered", label, len(committed))
		}
		for v, val := range state {
			if val != 0 {
				t.Fatalf("%s: init snapshot lost but %s=%d visible", label, v, val)
			}
		}
		return committed
	}
	// The recovered state must equal the serial replay of the committed
	// transactions, in commit order.
	replay, err := core.ExecSerialOrder(sys, committed, tortureInit)
	if err != nil {
		t.Fatalf("%s: replay: %v", label, err)
	}
	if !state.Equal(replay) {
		t.Fatalf("%s: recovered state != committed replay\n  recovered %v\n  replay    %v", label, state, replay)
	}
	// Convergence: the second pass must be clean and identical.
	r2, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatalf("%s: second recovery failed: %v", label, err)
	}
	state2 := r2.State()
	stats2 := r2.DurabilityStats()
	r2.Close()
	if stats2.WALTruncated != 0 {
		t.Fatalf("%s: recovery did not converge: second pass still truncated (first pass truncated=%d)", label, stats.WALTruncated)
	}
	if !state2.Equal(state) {
		t.Fatalf("%s: second recovery diverged\n  first  %v\n  second %v", label, state, state2)
	}
	return committed
}

// tortureOps runs the workload fault-free on an ErrFS and returns the
// total countable operations — the size of the injection-point space.
func tortureOps(t *testing.T, sys *core.System, buffered bool) int64 {
	t.Helper()
	efs := NewErrFS(OSFS{})
	d, err := NewDisk(Config{Dir: t.TempDir(), FS: efs, Fsync: FsyncAlways, Buffered: buffered})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	if got := len(runTortureWorkload(d, sys)); got != len(sys.Txs) {
		t.Fatalf("fault-free run committed %d of %d", got, len(sys.Txs))
	}
	d.Close()
	return efs.Ops()
}

// TestCrashRecoveryEveryInjectionPoint is the exhaustive sweep: for every
// operation index the workload performs, crash there (all later ops fail
// with ErrCrashed, the crashing write persisting only a torn prefix) and
// assert the recovery invariant. Both execution modes are swept — eager
// (redo+undo update records) and write-buffered (commit-record-only).
func TestCrashRecoveryEveryInjectionPoint(t *testing.T) {
	sys := tortureSystem(10)
	for _, buffered := range []bool{false, true} {
		mode := "eager"
		if buffered {
			mode = "buffered"
		}
		t.Run(mode, func(t *testing.T) {
			total := tortureOps(t, sys, buffered)
			if total < int64(len(sys.Txs)) {
				t.Fatalf("suspiciously few injection points: %d", total)
			}
			for k := int64(1); k <= total; k++ {
				dir := t.TempDir()
				efs := NewErrFS(OSFS{})
				d, err := NewDisk(Config{Dir: dir, FS: efs, Fsync: FsyncAlways, Buffered: buffered})
				if err != nil {
					t.Fatal(err)
				}
				efs.CrashAt(k)
				d.Reset(tortureInit)
				synced := runTortureWorkload(d, sys)
				// No Close: the process "died". Recover from the real files.
				checkRecovered(t, fmt.Sprintf("%s/crash@%d", mode, k), dir, sys, synced)
			}
		})
	}
}

// TestTransientFaultRecovery sweeps the one-shot injection points: a
// failed write/sync (FailAt) and a torn write (ShortWriteAt). The store
// poisons itself — the workload stops — and recovery must still be exact:
// nothing synced is lost, nothing torn is admitted.
func TestTransientFaultRecovery(t *testing.T) {
	sys := tortureSystem(10)
	for _, buffered := range []bool{false, true} {
		mode := "eager"
		if buffered {
			mode = "buffered"
		}
		t.Run(mode, func(t *testing.T) {
			total := tortureOps(t, sys, buffered)
			for k := int64(1); k <= total; k += 3 { // sample a third of the space
				for _, fault := range []string{"fail", "short"} {
					dir := t.TempDir()
					efs := NewErrFS(OSFS{})
					d, err := NewDisk(Config{Dir: dir, FS: efs, Fsync: FsyncAlways, Buffered: buffered})
					if err != nil {
						t.Fatal(err)
					}
					if fault == "fail" {
						efs.FailAt(k)
					} else {
						efs.ShortWriteAt(k)
					}
					d.Reset(tortureInit)
					synced := runTortureWorkload(d, sys)
					d.Close()
					checkRecovered(t, fmt.Sprintf("%s/%s@%d", mode, fault, k), dir, sys, synced)
				}
			}
		})
	}
}

// TestWALTornTailRecovery truncates the tail of the active segment after a
// clean run: the last commit record becomes torn, recovery must stop at
// the last valid record, refuse the torn commit, and report WALTruncated.
func TestWALTornTailRecovery(t *testing.T) {
	sys := tortureSystem(10)
	dir := t.TempDir()
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	if got := len(runTortureWorkload(d, sys)); got != 10 {
		t.Fatalf("committed %d of 10", got)
	}
	d.Close()

	last := newestSegment(t, dir)
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	// Transaction 9's commit record lost its tail: it must come back as a
	// loser; 0..8 were synced earlier and must survive.
	committed := checkRecovered(t, "torn-tail", dir, sys, []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	for _, i := range committed {
		if i == 9 {
			t.Fatalf("torn commit of transaction 9 admitted by recovery")
		}
	}

	// WALTruncated must have been reported by the truncating pass.
	r, err := OpenDisk(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}

// TestWALTruncatedStat pins the stat itself: a torn tail reports
// WALTruncated=1 on the recovering open and 0 once recovered.
func TestWALTruncatedStat(t *testing.T) {
	sys := tortureSystem(5)
	dir := t.TempDir()
	d, _ := NewDisk(Config{Dir: dir, Fsync: FsyncAlways})
	d.Reset(tortureInit)
	runTortureWorkload(d, sys)
	d.Close()
	last := newestSegment(t, dir)
	info, _ := os.Stat(last)
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ds := r.DurabilityStats(); ds.WALTruncated != 1 {
		t.Fatalf("WALTruncated = %d after torn-tail recovery, want 1", ds.WALTruncated)
	}
	r.Close()
	r2, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if ds := r2.DurabilityStats(); ds.WALTruncated != 0 {
		t.Fatalf("WALTruncated = %d on clean reopen, want 0", ds.WALTruncated)
	}
	r2.Close()
}

// TestSegmentCorruptionRecovery flips a byte in the middle of a sealed
// (non-tail) segment: recovery must stop at the corruption, discard every
// later segment, and still satisfy the invariant for the admitted prefix.
func TestSegmentCorruptionRecovery(t *testing.T) {
	sys := tortureSystem(60)
	dir := t.TempDir()
	// Tiny segments force several sealed files.
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(tortureInit)
	if got := len(runTortureWorkload(d, sys)); got != 60 {
		t.Fatalf("committed %d of 60", got)
	}
	d.Close()

	segs := listSegments(t, dir)
	if len(segs) < 4 {
		t.Fatalf("only %d segments; corruption test needs a middle one", len(segs))
	}
	victim := segs[len(segs)/2]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Nothing after the corrupted record is guaranteed; the invariant
	// machinery verifies atomicity, replay equality and convergence for
	// whatever prefix survived. The corruption must cost us something but
	// not everything before the victim segment.
	committed := checkRecovered(t, "segment-corruption", dir, sys, nil)
	if len(committed) == 60 {
		t.Fatalf("corrupted segment recovered all 60 transactions")
	}
	if len(committed) == 0 {
		t.Fatalf("corruption in a middle segment wiped the whole database")
	}
	// The committed set must be a prefix: commits were sequential, so a
	// gap would mean recovery admitted a record beyond the corruption.
	for j, i := range committed {
		if i != j {
			t.Fatalf("recovered set has a gap beyond the corruption: %v", committed)
		}
	}
}

// newestSegment returns the path of the newest log segment in dir.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := listSegments(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segs[len(segs)-1]
}

// listSegments returns the sorted segment paths in dir.
func listSegments(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".wal") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs
}

// gateSyncer is a GroupSyncer double whose GroupSync blocks until the test
// supplies a result — the handle for assembling multi-member groups
// deterministically.
type gateSyncer struct {
	Noop
	entered chan struct{}
	result  chan error
}

func (g *gateSyncer) GroupSync() error {
	g.entered <- struct{}{}
	return <-g.result
}

// TestGroupCommitFsyncFailure is the silent-durability-loss regression
// test: when a lane's group fsync fails, EVERY member of that group —
// leader and followers alike — must be reported failed through OnFail,
// and the release callback must still run so the runtime can free locks.
func TestGroupCommitFsyncFailure(t *testing.T) {
	gs := &gateSyncer{entered: make(chan struct{}), result: make(chan error)}
	var mu sync.Mutex
	var failed, released [][]int
	errBoom := errors.New("fsync: boom")

	gc := NewGroupCommitter(gs, 1, func(txs []int) {
		mu.Lock()
		released = append(released, append([]int(nil), txs...))
		mu.Unlock()
	})
	gc.OnFail(func(txs []int, err error) {
		if !errors.Is(err, errBoom) {
			t.Errorf("OnFail error = %v, want errBoom", err)
		}
		mu.Lock()
		failed = append(failed, append([]int(nil), txs...))
		mu.Unlock()
	})

	done := make(chan struct{})
	go func() {
		gc.Enqueue(1) // becomes the lane driver, blocks in GroupSync
		close(done)
	}()
	<-gs.entered  // driver committed tx 1, now inside the group fsync
	gc.Enqueue(2) // followers: returned immediately, the driver owns them
	gc.Enqueue(3)
	gs.result <- errBoom // group {1} fails
	<-gs.entered         // driver drains the follower group {2,3}
	gs.result <- errBoom // it fails too
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(failed) != 2 || len(failed[0]) != 1 || failed[0][0] != 1 {
		t.Fatalf("failure groups = %v, want [[1] [2 3]]", failed)
	}
	group2 := append([]int(nil), failed[1]...)
	sort.Ints(group2)
	if len(group2) != 2 || group2[0] != 2 || group2[1] != 3 {
		t.Fatalf("follower failure group = %v, want both followers [2 3]", failed[1])
	}
	if len(released) != 2 {
		t.Fatalf("release ran %d times, want 2 (locks must free even on failure)", len(released))
	}
	if gc.Err() == nil {
		t.Fatal("GroupCommitter.Err() nil after fsync failure")
	}
	if gc.Failed() != 3 {
		t.Fatalf("Failed() = %d, want 3", gc.Failed())
	}
}

// TestGroupCommitFsyncFailureDisk is the same property end to end: a real
// Disk under FsyncGroup whose group fsync hits an injected fault.
func TestGroupCommitFsyncFailureDisk(t *testing.T) {
	efs := NewErrFS(OSFS{})
	d, err := NewDisk(Config{Dir: t.TempDir(), FS: efs, Fsync: FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(core.DB{"x": 1})
	applyTx(t, d, 7, []walWrite{{v: "x", val: 9}})

	var failed []int
	gc := NewGroupCommitter(d, 1, nil)
	gc.OnFail(func(txs []int, err error) {
		if !errors.Is(err, ErrInjected) {
			t.Errorf("OnFail error = %v, want ErrInjected", err)
		}
		failed = append(failed, txs...)
	})
	// The next ops are: commit-record write, then the group fsync — fail
	// the fsync.
	efs.FailAt(efs.Ops() + 2)
	gc.Enqueue(7)
	if len(failed) != 1 || failed[0] != 7 {
		t.Fatalf("failed = %v, want [7]", failed)
	}
	if d.Err() == nil {
		t.Fatal("disk backend not poisoned by failed group fsync")
	}
	if ds := d.DurabilityStats(); ds.SyncFailures != 1 {
		t.Fatalf("SyncFailures = %d, want 1", ds.SyncFailures)
	}
}

// TestSnapshotGCRecovery (race-enabled in CI's multiversion stress): the
// multiversion KV garbage-collects superseded versions up to the pinned
// snapshot horizon while a durable disk backend logs the same commits.
// After a restart — recover the disk, rebuild the KV from the recovered
// state — pinned snapshot readers must see exactly the recovered committed
// values: GC'd versions must not resurrect, recovered values must not be
// stale.
func TestSnapshotGCRecovery(t *testing.T) {
	const (
		writers = 4
		iters   = 200
		readers = 3
	)
	dir := t.TempDir()
	init := core.DB{}
	for g := 0; g < writers; g++ {
		init[core.Var(fmt.Sprintf("v%d", g))] = 0
	}
	kv := NewKV(Config{Shards: 4, Recycle: true, SnapshotSlots: writers + readers, ValueSize: 64})
	kv.Reset(init)
	d, err := NewDisk(Config{Dir: dir, Fsync: FsyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(init)

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(slot int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := kv.SnapshotAcquire(slot)
				for g := 0; g < writers; g++ {
					kv.SnapshotRead(slot, core.Var(fmt.Sprintf("v%d", g)), snap)
				}
				kv.SnapshotRelease(slot)
			}
		}(writers + rd)
	}
	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			v := core.Var(fmt.Sprintf("v%d", g))
			for i := 1; i <= iters; i++ {
				tx := g*100000 + i
				val := core.Value(i)
				step := core.Step{Var: v, Kind: core.Write, Fn: func([]core.Value) core.Value { return val }}
				if err := kv.ApplyStep(tx, step); err != nil {
					t.Error(err)
					return
				}
				if err := d.ApplyStep(tx, step); err != nil {
					t.Error(err)
					return
				}
				kv.Commit(tx)
				d.Commit(tx)
				if i%16 == 0 {
					if err := d.GroupSync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	// Writers finish, then stop the readers.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	if kv.VersionsGCed() == 0 {
		t.Fatal("no versions GC'd; the horizon machinery was not exercised")
	}

	// Restart: sync, snapshot the live state, recover from disk.
	if err := d.GroupSync(); err != nil {
		t.Fatal(err)
	}
	live := d.State()
	d.Close()
	r, err := OpenDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recovered := r.State()
	r.Close()
	if !recovered.Equal(live) {
		t.Fatalf("recovered state != pre-restart state\n  live      %v\n  recovered %v", live, recovered)
	}
	for g := 0; g < writers; g++ {
		if got := recovered[core.Var(fmt.Sprintf("v%d", g))]; got != iters {
			t.Fatalf("recovered v%d = %d, want %d", g, got, iters)
		}
	}

	// Rebuild the multiversion store from the recovered state: a pinned
	// snapshot must see exactly the recovered values — no GC'd version of
	// the old incarnation resurrected, nothing stale.
	kv2 := NewKV(Config{Shards: 4, Recycle: true, SnapshotSlots: 4, ValueSize: 64})
	kv2.Reset(recovered)
	snap := kv2.SnapshotAcquire(0)
	for v, want := range recovered {
		if got := kv2.SnapshotRead(0, v, snap); got != want {
			t.Fatalf("post-recovery snapshot read %s = %d, want %d", v, got, want)
		}
	}
	kv2.SnapshotRelease(0)
}

// childEnvDir is how the kill-and-restart parent passes the store to its
// re-exec'd child.
const childEnvDir = "OPTCC_TORTURE_DIR"

// TestTortureChild is the subprocess body: it recovers the store, finds
// where the previous incarnation stopped, and commits sequentially
// (FsyncAlways) until it is killed. Not a test when run directly.
func TestTortureChild(t *testing.T) {
	dir := os.Getenv(childEnvDir)
	if dir == "" {
		t.Skip("torture child body; driven by TestTortureKillRestart")
	}
	buffered := os.Getenv("OPTCC_TORTURE_BUFFERED") == "1"
	cfg := Config{Dir: dir, Fsync: FsyncAlways, Buffered: buffered}
	if os.Getenv("OPTCC_TORTURE_CKPT") == "1" {
		// Tiny segments and an aggressive threshold keep the background
		// checkpointer constantly mid-flight, so the parent's SIGKILL
		// regularly lands inside an active checkpoint — capture, file write,
		// rename, marker, retirement all get their turn under real death.
		cfg.SegmentBytes = 2048
		cfg.CheckpointBytes = 4096
	}
	d, err := OpenDisk(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: recover: %v\n", err)
		os.Exit(3)
	}
	state := d.State()
	next := 0
	for state[tortureVarA(next)] != 0 {
		next++
	}
	for i := next; i < next+1_000_000; i++ {
		val := core.Value(i + 1)
		fn := func([]core.Value) core.Value { return val }
		for _, v := range []core.Var{tortureVarA(i), tortureVarB(i)} {
			if err := d.ApplyStep(i, core.Step{Var: v, Kind: core.Write, Fn: fn}); err != nil {
				fmt.Fprintf(os.Stderr, "torture child: apply: %v\n", err)
				os.Exit(3)
			}
		}
		d.Commit(i)
		if err := d.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "torture child: commit: %v\n", err)
			os.Exit(3)
		}
	}
}

// TestTortureKillRestart is the kill-and-restart torture driver: re-exec
// this test binary as a child committing transactions with per-commit
// fsyncs, SIGKILL it at a random point (sometimes mid-recovery — the
// child recovers on startup, and from round 1 on sometimes mid-checkpoint
// — the child runs the background checkpointer on tiny segments), then
// recover here and assert the invariant: the committed set is a gap-free
// prefix that never shrinks, every value matches the serial replay, and
// recovery converges in ≤ 2 passes. Execution mode alternates between
// eager and write-buffered per round.
func TestTortureKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess torture loop; skipped with -short")
	}
	dir := t.TempDir()
	seed, _ := os.LookupEnv("OPTCC_TORTURE_SEED")
	rng := rand.New(rand.NewSource(int64(len(seed)) + 17))
	d, err := NewDisk(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(core.DB{})
	d.Close()

	prevMax := -1
	const rounds = 5
	for round := 0; round < rounds; round++ {
		ckpt := 0
		if round >= 1 { // round 0 is the checkpoint-free baseline
			ckpt = 1
		}
		cmd := exec.Command(os.Args[0], "-test.run", "TestTortureChild$")
		cmd.Env = append(os.Environ(), childEnvDir+"="+dir,
			fmt.Sprintf("OPTCC_TORTURE_BUFFERED=%d", round%2),
			fmt.Sprintf("OPTCC_TORTURE_CKPT=%d", ckpt))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Random kill point: long enough for startup + recovery + some
		// commits, short enough to regularly land mid-activity.
		time.Sleep(time.Duration(30+rng.Intn(150)) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		r, err := OpenDisk(Config{Dir: dir})
		if err != nil {
			t.Fatalf("round %d: recovery failed: %v", round, err)
		}
		state := r.State()
		r.Close()

		// The committed set must be a gap-free prefix (the child commits
		// sequentially with synced commits), atomic and value-exact.
		max := -1
		for i := 0; state[tortureVarA(i)] != 0; i++ {
			if a, b := state[tortureVarA(i)], state[tortureVarB(i)]; a != core.Value(i+1) || b != core.Value(i+1) {
				t.Fatalf("round %d: transaction %d recovered torn or wrong: a=%d b=%d", round, i, a, b)
			}
			max = i
		}
		for v, val := range state {
			var i int
			if _, err := fmt.Sscanf(string(v), "t%d.", &i); err == nil && i > max {
				t.Fatalf("round %d: stray write %s=%d beyond committed prefix %d", round, v, val, max)
			}
		}
		if max < prevMax {
			t.Fatalf("round %d: committed prefix shrank: %d -> %d", round, prevMax, max)
		}
		prevMax = max

		// Convergence: second pass clean, identical state.
		r2, err := OpenDisk(Config{Dir: dir})
		if err != nil {
			t.Fatalf("round %d: second recovery failed: %v", round, err)
		}
		if ds := r2.DurabilityStats(); ds.WALTruncated != 0 {
			t.Fatalf("round %d: recovery did not converge (second pass truncated)", round)
		}
		if !r2.State().Equal(state) {
			t.Fatalf("round %d: second recovery diverged", round)
		}
		r2.Close()
	}
	if prevMax < 0 {
		t.Fatal("no child made any progress; the torture loop tested nothing")
	}
}
