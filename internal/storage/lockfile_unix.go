//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockFileName is the exclusive data-dir lock the disk backend holds for
// its lifetime. It lives beside the segments but is invisible to them:
// Reset skips it, recovery and retirement only ever touch seg-*/ckpt-*
// names.
const lockFileName = "LOCK"

// lockDir takes the exclusive advisory lock on dir's LOCK file. Two live
// disk backends on one WAL directory would silently corrupt each other
// (interleaved appends, double recovery), so the second opener fails fast
// here. The lock goes through the real filesystem deliberately — flock is
// a kernel facility, not an FS-interface operation, and fault injection
// (ErrFS) has no business tearing it.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: lock file in %s: %w", dir, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: data dir %s is locked by another live disk backend (close it or let it die first): %w", dir, err)
	}
	return f, nil
}
